package pipeline

// Pipeline event tracing — the equivalent of SimpleScalar's ptrace. When
// enabled, the CPU writes one line per pipeline event (fetch, dispatch,
// issue, writeback, RSQ entry, R-dispatch, verify, commit, recovery) to
// an io.Writer, letting a developer watch instructions move through the
// machine cycle by cycle.

import (
	"fmt"
	"io"

	"reese/internal/emu"
)

// EventKind labels a pipeline trace event.
type EventKind uint8

// Pipeline trace events.
const (
	EvFetch EventKind = iota
	EvDispatch
	EvIssue
	EvWriteback
	EvEnterRSQ
	EvDispatchR
	EvIssueR
	EvVerify
	EvCommit
	EvMispredict
	EvFaultInjected
	EvMismatch
	EvRecovery
)

var eventNames = [...]string{
	EvFetch:         "FETCH",
	EvDispatch:      "DISPATCH",
	EvIssue:         "ISSUE",
	EvWriteback:     "WRITEBACK",
	EvEnterRSQ:      "ENTER-RSQ",
	EvDispatchR:     "DISPATCH-R",
	EvIssueR:        "ISSUE-R",
	EvVerify:        "VERIFY",
	EvCommit:        "COMMIT",
	EvMispredict:    "MISPREDICT",
	EvFaultInjected: "FAULT",
	EvMismatch:      "MISMATCH",
	EvRecovery:      "RECOVERY",
}

func (k EventKind) String() string {
	if int(k) < len(eventNames) {
		return eventNames[k]
	}
	return fmt.Sprintf("event(%d)", uint8(k))
}

// SetTrace directs pipeline event lines to w (nil disables tracing).
// Call before Run; tracing large runs produces a lot of output.
func (c *CPU) SetTrace(w io.Writer) { c.traceW = w }

// traceEvent emits one event line if tracing is enabled.
func (c *CPU) traceEvent(kind EventKind, tr *emu.Trace, detail string) {
	if c.traceW == nil {
		return
	}
	if detail != "" {
		fmt.Fprintf(c.traceW, "%8d %-10s %#08x %-24s %s\n", c.cycle, kind, tr.PC, tr.Inst.String(), detail)
		return
	}
	fmt.Fprintf(c.traceW, "%8d %-10s %#08x %s\n", c.cycle, kind, tr.PC, tr.Inst.String())
}
