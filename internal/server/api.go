package server

// Wire types of the v1 JSON API and the normalization that turns a
// sparse request into the canonical form used both to run the job and
// to address the result cache. Normalization must be total: two
// requests meaning the same simulation must normalize to identical
// structs, or the cache fragments.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"time"

	"reese/internal/config"
	"reese/internal/fault"
	"reese/internal/harness"
	"reese/internal/obs"
	"reese/internal/workload"
)

// Limits bound per-request work so one client cannot park the service
// on a month-long simulation.
type Limits struct {
	// MaxInsts caps the committed-instruction budget of any single
	// simulation (runs and figure cells alike).
	MaxInsts uint64
	// DefaultRunInsts/DefaultFigureInsts fill omitted budgets, matching
	// the reese-sim and harness defaults.
	DefaultRunInsts    uint64
	DefaultFigureInsts uint64
}

// DefaultLimits mirror the CLI defaults with a generous ceiling.
func DefaultLimits() Limits {
	return Limits{MaxInsts: 50_000_000, DefaultRunInsts: 200_000, DefaultFigureInsts: 150_000}
}

// RunRequest asks for one workload on one machine — the reese-sim CLI
// as an endpoint.
type RunRequest struct {
	// Workload names a Table 2 benchmark (gcc, go, ijpeg, li, perl,
	// vortex).
	Workload string `json:"workload"`
	// Insts is the committed-instruction budget (0 = server default).
	Insts uint64 `json:"insts,omitempty"`
	// Iters overrides the workload's outer iteration count.
	Iters int `json:"iters,omitempty"`
	// Machine is the full configuration (omit for the Table 1 starting
	// configuration). Serialize one from config.Starting() and edit.
	Machine *config.Machine `json:"machine,omitempty"`
	// FaultAt, when non-zero, injects one bit flip into instruction
	// #FaultAt at position FaultBit, as reese-sim -fault-at.
	FaultAt  uint64 `json:"fault_at,omitempty"`
	FaultBit uint8  `json:"fault_bit,omitempty"`
}

// normalize applies defaults and validates; the result is the canonical
// request the cache key hashes.
func (r RunRequest) normalize(lim Limits) (RunRequest, error) {
	spec, ok := workload.ByName(r.Workload)
	if !ok {
		return r, fmt.Errorf("unknown workload %q (have %v)", r.Workload, workload.Names())
	}
	if r.Insts == 0 {
		r.Insts = lim.DefaultRunInsts
	}
	if r.Insts > lim.MaxInsts {
		return r, fmt.Errorf("insts %d exceeds server limit %d", r.Insts, lim.MaxInsts)
	}
	if r.Iters < 0 {
		return r, fmt.Errorf("negative iters %d", r.Iters)
	}
	if r.Iters == 0 {
		// Canonicalize the default here (not in the runner) so sparse and
		// explicit spellings of the same job share one cache key.
		r.Iters = spec.DefaultIters * 2
	}
	if r.Machine == nil {
		m := config.Starting()
		r.Machine = &m
	}
	if err := r.Machine.Validate(); err != nil {
		return r, err
	}
	if r.FaultAt == 0 {
		r.FaultBit = 0
	} else if r.FaultBit > 31 {
		return r, fmt.Errorf("fault bit %d out of range [0,31]", r.FaultBit)
	}
	return r, nil
}

// figureNames are the accepted FigureRequest.Figure values.
var figureRunners = map[string]bool{"2": true, "3": true, "4": true, "5": true, "6": true, "7": true}

// FigureRequest asks for one of the paper's figures.
type FigureRequest struct {
	// Figure selects the experiment: "2".."7".
	Figure string `json:"figure"`
	// Insts is the per-cell committed-instruction budget (0 = server
	// default).
	Insts uint64 `json:"insts,omitempty"`
}

func (r FigureRequest) normalize(lim Limits) (FigureRequest, error) {
	if !figureRunners[r.Figure] {
		return r, fmt.Errorf("unknown figure %q (have 2..7)", r.Figure)
	}
	if r.Insts == 0 {
		r.Insts = lim.DefaultFigureInsts
	}
	if r.Insts > lim.MaxInsts {
		return r, fmt.Errorf("insts %d exceeds server limit %d", r.Insts, lim.MaxInsts)
	}
	return r, nil
}

// FaultsRequest asks for a statistical fault-injection campaign: seeded
// random faults over (instruction, structure, bit), each classified
// against a golden run (see harness.Campaign).
type FaultsRequest struct {
	// Workload limits the campaign to one benchmark; empty runs all six
	// (REESE vs baseline on each).
	Workload string `json:"workload,omitempty"`
	// Injections is the number of trials per campaign (0 = 200).
	Injections int `json:"injections,omitempty"`
	// Seed drives victim sampling; equal requests reproduce exactly
	// (which is what makes the result cache sound). 0 means 1.
	Seed uint64 `json:"seed,omitempty"`
	// Structures names the fault targets to sample (fault.ParseStruct
	// spellings, e.g. "result", "fetch-pc"); empty selects every
	// structure each machine supports.
	Structures []string `json:"structures,omitempty"`
	// TargetInsts is the approximate golden-run length per trial (0 =
	// the harness default).
	TargetInsts uint64 `json:"target_insts,omitempty"`
	// CheckpointInterval is the golden-run snapshot spacing in committed
	// instructions for checkpoint/fork replay (0 = the harness default).
	// Results are byte-identical at any interval; only throughput and
	// memory footprint change.
	CheckpointInterval uint64 `json:"checkpoint_interval,omitempty"`
	// L2ECC enables SECDED ECC on both machines' L2 cache: single-bit
	// L2 data faults are corrected (outcome "corrected"), double-bit
	// faults are detected-uncorrectable.
	L2ECC bool `json:"l2_ecc,omitempty"`
	// Triage re-runs every SDC/Hang trial from its checkpoint with the
	// flight recorder and first-divergence attribution armed; the
	// escaped trials and their Perfetto traces ride in the payload (see
	// FaultsPayload.Escapes/Traces and GET /v1/jobs/{id}/trace/{key}).
	Triage bool `json:"triage,omitempty"`
	// TriageDetected widens the triage pass to Detected outcomes.
	TriageDetected bool `json:"triage_detected,omitempty"`
}

// maxFaultInjections bounds campaign size per request; at the default
// run length this is roughly the cost of one large figure.
const maxFaultInjections = 5_000

func (r FaultsRequest) normalize(lim Limits) (FaultsRequest, error) {
	if r.Workload != "" {
		if _, ok := workload.ByName(r.Workload); !ok {
			return r, fmt.Errorf("unknown workload %q (have %v)", r.Workload, workload.Names())
		}
	}
	if r.Injections == 0 {
		r.Injections = 200
	}
	if r.Injections < 0 || r.Injections > maxFaultInjections {
		return r, fmt.Errorf("injections %d out of range [1,%d]", r.Injections, maxFaultInjections)
	}
	if r.Seed == 0 {
		// Canonicalize so sparse and explicit spellings of the default
		// share one cache key.
		r.Seed = 1
	}
	for _, name := range r.Structures {
		if _, ok := fault.ParseStruct(name); !ok {
			return r, fmt.Errorf("unknown fault structure %q", name)
		}
	}
	if r.TargetInsts == 0 {
		r.TargetInsts = 8_000
	}
	if r.TargetInsts > lim.MaxInsts {
		return r, fmt.Errorf("target_insts %d exceeds server limit %d", r.TargetInsts, lim.MaxInsts)
	}
	if r.CheckpointInterval != 0 && r.CheckpointInterval < 64 {
		// A denser schedule than one snapshot per 64 instructions costs
		// more memory than it saves simulation.
		return r, fmt.Errorf("checkpoint_interval %d too small (min 64, or 0 for the default)", r.CheckpointInterval)
	}
	if r.Triage && r.Workload == "" {
		// The all-workloads sweep is a summary view; triage artifacts only
		// make sense against one campaign's trial log.
		return r, fmt.Errorf("triage requires a single workload")
	}
	if !r.Triage {
		// Canonicalize: triage_detected is meaningless without triage, and
		// must not fragment the cache.
		r.TriageDetected = false
	}
	return r, nil
}

// ShardSpec asks for one shard of a distributed fault campaign: trials
// [shard_offset, shard_offset+shard_count) of the full
// injections-trial plan. Per-trial substream planning (see
// harness.CampaignSpec.Shard) guarantees the shard executes exactly
// the trials the single-process campaign would run at those indices,
// so a coordinator can merge shard reports into the byte-identical
// whole. Unlike FaultsRequest this carries an explicit machine — the
// coordinator shards one (workload, machine) campaign at a time.
type ShardSpec struct {
	Workload string `json:"workload"`
	// Machine is the exact configuration under test (omit for the
	// REESE starting configuration).
	Machine    *config.Machine `json:"machine,omitempty"`
	Structures []string        `json:"structures,omitempty"`
	// Injections is the FULL plan size, not this shard's share; it may
	// exceed the single-request campaign cap because only shard_count
	// trials run here.
	Injections         int    `json:"injections"`
	Seed               uint64 `json:"seed,omitempty"`
	TargetInsts        uint64 `json:"target_insts,omitempty"`
	CheckpointInterval uint64 `json:"checkpoint_interval,omitempty"`
	ShardOffset        int    `json:"shard_offset"`
	ShardCount         int    `json:"shard_count"`
	// Triage/TriageDetected mirror FaultsRequest: escaped trials in this
	// shard carry triage records, and their trace blobs travel in
	// ShardPayload.Traces keyed by global trial index.
	Triage         bool `json:"triage,omitempty"`
	TriageDetected bool `json:"triage_detected,omitempty"`
}

// maxPlanInjections bounds the full distributed plan a shard may
// reference; the per-worker work is still bounded by maxFaultInjections
// trials per shard.
const maxPlanInjections = 10_000_000

func (r ShardSpec) normalize(lim Limits) (ShardSpec, error) {
	if _, ok := workload.ByName(r.Workload); !ok {
		return r, fmt.Errorf("unknown workload %q (have %v)", r.Workload, workload.Names())
	}
	if r.Machine == nil {
		m := config.Starting().WithReese()
		r.Machine = &m
	}
	if err := r.Machine.Validate(); err != nil {
		return r, err
	}
	for _, name := range r.Structures {
		if _, ok := fault.ParseStruct(name); !ok {
			return r, fmt.Errorf("unknown fault structure %q", name)
		}
	}
	if r.Injections <= 0 || r.Injections > maxPlanInjections {
		return r, fmt.Errorf("injections %d out of range [1,%d]", r.Injections, maxPlanInjections)
	}
	if r.ShardCount <= 0 || r.ShardCount > maxFaultInjections {
		return r, fmt.Errorf("shard_count %d out of range [1,%d]", r.ShardCount, maxFaultInjections)
	}
	if r.ShardOffset < 0 || r.ShardOffset+r.ShardCount > r.Injections {
		return r, fmt.Errorf("shard [%d,%d) outside the %d-trial plan",
			r.ShardOffset, r.ShardOffset+r.ShardCount, r.Injections)
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	if r.TargetInsts == 0 {
		r.TargetInsts = 8_000
	}
	if r.TargetInsts > lim.MaxInsts {
		return r, fmt.Errorf("target_insts %d exceeds server limit %d", r.TargetInsts, lim.MaxInsts)
	}
	if r.CheckpointInterval != 0 && r.CheckpointInterval < 64 {
		return r, fmt.Errorf("checkpoint_interval %d too small (min 64, or 0 for the default)", r.CheckpointInterval)
	}
	if !r.Triage {
		r.TriageDetected = false
	}
	return r, nil
}

// campaignSpec converts the normalized wire form into the harness spec.
func (r ShardSpec) campaignSpec() harness.CampaignSpec {
	spec := harness.CampaignSpec{
		Workload:           r.Workload,
		Machine:            *r.Machine,
		Injections:         r.Injections,
		Seed:               r.Seed,
		TargetInsts:        r.TargetInsts,
		CheckpointInterval: r.CheckpointInterval,
		Triage:             r.Triage,
		TriageDetected:     r.TriageDetected,
		Shard:              &harness.ShardRange{Offset: r.ShardOffset, Count: r.ShardCount, Plan: r.Injections},
	}
	for _, name := range r.Structures {
		if st, ok := fault.ParseStruct(name); ok {
			spec.Structures = append(spec.Structures, st)
		}
	}
	return spec
}

// BatchRequest is the body of POST /v1/faults/batch: several shards
// submitted in one round trip — the coordinator's fan-out primitive.
type BatchRequest struct {
	Shards []ShardSpec `json:"shards"`
}

// maxBatchShards bounds one batch submit.
const maxBatchShards = 256

// BatchItem is the per-shard outcome of a batch submit: either an
// accepted (or cache-satisfied) job, or a shard-level error with the
// same Retry-After hint a single submit would have carried. Shards are
// answered positionally — item i is request shard i.
type BatchItem struct {
	Job          *JobView `json:"job,omitempty"`
	Error        string   `json:"error,omitempty"`
	RetryAfterMS int64    `json:"retry_after_ms,omitempty"`
}

// BatchResponse answers POST /v1/faults/batch.
type BatchResponse struct {
	Items []BatchItem `json:"items"`
}

// ShardPayload is a shard job's result: the shard slice of the
// campaign report plus its per-trial records (CampaignReport excludes
// trials from its own JSON form, so they travel alongside). The
// coordinator feeds these to harness.MergeReports.
type ShardPayload struct {
	Report harness.CampaignReport `json:"report"`
	Trials []harness.Trial        `json:"trials,omitempty"`
	// Traces holds the Perfetto trace blob of every triaged trial in
	// this shard, keyed by the trial's global plan index. They travel
	// separately from the trial records because the trace blob is
	// excluded from Trial JSON (it would bloat every JSONL consumer).
	Traces map[string]json.RawMessage `json:"traces,omitempty"`
	// Digest is the hex sha256 of the payload's canonical JSON with
	// this field empty, computed by the worker that ran the shard. The
	// coordinator recomputes it after decoding; a mismatch means the
	// body was damaged in flight (bit flip, truncation that still
	// parses) and the shard is retried rather than merged — corrupt
	// tallies must never reach the report. See CanonicalDigest.
	Digest string `json:"digest,omitempty"`
}

// CanonicalDigest returns the hex sha256 of the payload's canonical
// JSON form with the Digest field cleared. Sound as an end-to-end
// integrity check because encoding/json marshals the same struct
// values to the same bytes (map keys sorted, floats shortest-round-
// trip), so decode→re-marshal is byte-stable across worker and
// coordinator.
func (p *ShardPayload) CanonicalDigest() (string, error) {
	saved := p.Digest
	p.Digest = ""
	raw, err := json.Marshal(p)
	p.Digest = saved
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:]), nil
}

// JobView is the wire form of a job, returned by submits and polls.
type JobView struct {
	ID      string    `json:"id"`
	Kind    string    `json:"kind"`
	State   JobState  `json:"state"`
	Created time.Time `json:"created"`
	// Started/Finished are set once the job leaves the queue / reaches a
	// terminal state.
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
	// Cached marks a job satisfied from the result cache; Replayed marks
	// a job recovered from the journal after a restart (terminal
	// replayed jobs carry no Result — payloads are not persisted, an
	// identical resubmission recomputes them deterministically).
	Cached   bool   `json:"cached,omitempty"`
	Replayed bool   `json:"replayed,omitempty"`
	Error    string `json:"error,omitempty"`
	// Attempt counts execution attempts so far; Attempts is the full
	// per-attempt history (cause and panic stack included); LastCause is
	// the most recent failure cause; NextRetry is set while State is
	// "retrying"; Progress is the committed-instruction heartbeat the
	// watchdog samples.
	Attempt   int           `json:"attempt,omitempty"`
	Attempts  []AttemptView `json:"attempts,omitempty"`
	LastCause string        `json:"last_cause,omitempty"`
	NextRetry *time.Time    `json:"next_retry,omitempty"`
	Progress  uint64        `json:"progress_insts,omitempty"`
	// Result is the kind-specific payload (RunPayload, FigurePayload,
	// FaultsPayload), present once State is "done".
	Result json.RawMessage `json:"result,omitempty"`
	// Spans is the job's trace: a root span from submit to terminal
	// state with a child per phase (queue-wait, attempt N, backoff N,
	// journal appends), each carrying start/end times and an outcome.
	Spans *obs.Span `json:"spans,omitempty"`
}

// AttemptView is one execution attempt of a job: when it ran and, if it
// failed, why — including the recovered stack for contained panics.
type AttemptView struct {
	Number   int        `json:"number"`
	Started  time.Time  `json:"started"`
	Finished *time.Time `json:"finished,omitempty"`
	Cause    string     `json:"cause,omitempty"`
	Stack    string     `json:"stack,omitempty"`
}

// FigurePayload is the /v1/figure result: the structured series plus
// the same rendered table the CLI prints (byte-identical to an
// in-process harness call, which the e2e test asserts).
type FigurePayload struct {
	Figure *harness.FigureResult  `json:"figure,omitempty"`
	Rows   []harness.SummaryRow   `json:"rows,omitempty"`
	Points []harness.Figure7Point `json:"points,omitempty"`
	Table  string                 `json:"table"`
}

// FaultsPayload is the /v1/faults result: one CampaignReport per
// (workload, machine) pair with per-structure coverage and confidence
// intervals, plus the rendered table. When the request set Triage, the
// escaped trials (with their TriageRecords) and the Perfetto trace
// blobs ride along; traces are keyed "reportIdx/trialIdx" and are also
// served individually at GET /v1/jobs/{id}/trace/{key}.
type FaultsPayload struct {
	Reports []harness.CampaignReport   `json:"reports"`
	Table   string                     `json:"table"`
	Escapes []harness.Trial            `json:"escapes,omitempty"`
	Traces  map[string]json.RawMessage `json:"traces,omitempty"`
}

// errorResponse is the JSON body of every non-2xx response. 503s also
// carry RetryAfterMS (mirrored in the Retry-After header), derived from
// the observed queue drain rate, so shed load comes back at a sensible
// time instead of hammering.
type errorResponse struct {
	Error        string `json:"error"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
}
