// Command reese-faults runs fault-injection campaigns: transient bit
// flips into P-stream results, measuring REESE's coverage, detection
// latency, and recovery cost against the undefended baseline.
//
// Usage:
//
//	reese-faults                       # all six workloads, REESE vs baseline
//	reese-faults -workload li          # one workload, detailed
//	reese-faults -interval 2000        # denser faults
package main

import (
	"flag"
	"fmt"
	"os"

	"reese/internal/config"
	"reese/internal/harness"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		workloadName = flag.String("workload", "", "single workload (default: all six)")
		interval     = flag.Uint64("interval", 10_000, "instructions between injected faults")
		insts        = flag.Uint64("insts", 150_000, "committed-instruction budget")
		grid         = flag.Bool("grid", false, "sweep all 32 bit positions at one injection point")
		gridAt       = flag.Uint64("grid-at", 5_000, "injection point (instruction #) for -grid")
	)
	flag.Parse()
	opt := harness.Options{Insts: *insts}

	if *grid {
		w := *workloadName
		if w == "" {
			w = "gcc"
		}
		cells, err := harness.BitGrid(config.Starting().WithReese(), w, *gridAt, opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "reese-faults:", err)
			return 1
		}
		fmt.Println(harness.BitGridTable(cells))
		missed := 0
		for _, c := range cells {
			if !c.Detected {
				missed++
			}
		}
		fmt.Printf("%d/32 bit positions detected\n", 32-missed)
		if missed > 0 {
			return 3
		}
		return 0
	}

	if *workloadName == "" {
		tbl, _, err := harness.CampaignAll(*interval, opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "reese-faults:", err)
			return 1
		}
		fmt.Println(tbl)
		return 0
	}

	for _, cfg := range []config.Machine{config.Starting().WithReese(), config.Starting()} {
		r, err := harness.Campaign(cfg, *workloadName, *interval, opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "reese-faults:", err)
			return 1
		}
		fmt.Printf("%s on %s:\n", r.Workload, r.Config)
		fmt.Printf("  injected:   %d\n", r.Injected)
		fmt.Printf("  detected:   %d (coverage %.1f%%)\n", r.Detected, r.Coverage*100)
		fmt.Printf("  silent:     %d\n", r.Silent)
		fmt.Printf("  recoveries: %d\n", r.Recovered)
		if r.Detected > 0 {
			fmt.Printf("  detection latency: mean %.1f, p95 %d, max %d cycles\n",
				r.DetectionLatencyMean, r.DetectionLatencyP95, r.DetectionLatencyMax)
		}
		fmt.Printf("  IPC: clean %.3f, under faults %.3f\n\n", r.CleanIPC, r.FaultyIPC)
	}
	return 0
}
