// Package obs is the observability layer shared by the simulator and
// the serving stack: per-cycle stall attribution (this file), a
// fixed-size flight recorder of instruction lifecycle events
// (recorder.go), and span trees for reese-serve jobs (span.go).
//
// Stall attribution answers the question the REESE paper keeps asking
// of its figures — *where did the issue and commit slots go?* Every
// cycle the pipeline charges each unused dispatch, issue, and commit
// slot to exactly one cause, so the per-cause counts plus the used
// slots always sum to width × cycles. The bookkeeping is a fixed
// integer matrix with no maps, pointers, or allocations, cheap enough
// to stay compiled in and enabled on every run.
package obs

import (
	"encoding/json"
	"fmt"
)

// StallCause says why a pipeline slot went unused for one cycle. A
// slot is charged to exactly one cause, chosen by inspecting the
// oldest blocked instruction (top-down style accounting): upstream
// emptiness beats downstream fullness only when the window truly has
// nothing to offer.
type StallCause uint8

// Stall causes, ordered roughly front-to-back through the pipeline.
const (
	// CauseNone is the zero value; it is never charged.
	CauseNone StallCause = iota
	// CauseFetchEmpty: the front end delivered nothing — I-cache miss,
	// branch-resolution stall, or the fetch queue simply hasn't filled
	// the window yet.
	CauseFetchEmpty
	// CauseDispatchRUUFull: instructions are waiting in the fetch queue
	// but the RUU (or the REESE R-reserve) has no free window slot.
	CauseDispatchRUUFull
	// CauseDispatchLSQFull: a memory instruction is at the head of the
	// fetch queue and the LSQ is full.
	CauseDispatchLSQFull
	// CauseIssueWait: the oldest unissued instruction's operands are
	// not ready yet (waiting on producers still executing).
	CauseIssueWait
	// CauseIssueNoFU: an instruction is ready but every functional unit
	// of the class it needs is busy — the shortage REESE's spare
	// elements exist to relieve.
	CauseIssueNoFU
	// CauseExecLatency: everything dispatchable has issued; the slot
	// waits for an in-flight execution to finish.
	CauseExecLatency
	// CauseRSQFull: the R-stream Queue is full, back-pressuring commit
	// (paper §4.3's overflow condition).
	CauseRSQFull
	// CauseRecheckPending: the RSQ head has not been re-executed and
	// verified yet, so nothing may retire (REESE's detection window).
	CauseRecheckPending
	// CauseDrain: the program is over — the oracle halted and the
	// machine is emptying its last instructions.
	CauseDrain

	// NumCauses sizes per-cause arrays.
	NumCauses
)

var causeNames = [NumCauses]string{
	CauseNone:            "none",
	CauseFetchEmpty:      "fetch-empty",
	CauseDispatchRUUFull: "dispatch-ruu-full",
	CauseDispatchLSQFull: "dispatch-lsq-full",
	CauseIssueWait:       "issue-wait",
	CauseIssueNoFU:       "issue-no-fu",
	CauseExecLatency:     "exec-latency",
	CauseRSQFull:         "rsq-full",
	CauseRecheckPending:  "recheck-pending",
	CauseDrain:           "drain",
}

func (s StallCause) String() string {
	if int(s) < len(causeNames) {
		return causeNames[s]
	}
	return fmt.Sprintf("cause(%d)", uint8(s))
}

// CauseByName resolves a kebab-case cause name (the String form).
func CauseByName(name string) (StallCause, bool) {
	for i, n := range causeNames {
		if n == name {
			return StallCause(i), true
		}
	}
	return CauseNone, false
}

// SlotClass names the per-cycle slot budget being accounted: dispatch
// and commit slots number Width per cycle, issue slots IssueWidth.
type SlotClass uint8

// Slot classes.
const (
	SlotDispatch SlotClass = iota
	SlotIssue
	SlotCommit

	// NumSlotClasses sizes per-class arrays.
	NumSlotClasses
)

var slotNames = [NumSlotClasses]string{
	SlotDispatch: "dispatch",
	SlotIssue:    "issue",
	SlotCommit:   "commit",
}

func (s SlotClass) String() string {
	if int(s) < len(slotNames) {
		return slotNames[s]
	}
	return fmt.Sprintf("slot(%d)", uint8(s))
}

// Matrix is the zero-allocation stall counter matrix embedded in
// pipeline.CPU: used-slot totals and per-cause unused-slot totals for
// every slot class. All methods are O(1) integer arithmetic.
type Matrix struct {
	Used   [NumSlotClasses]uint64
	Stalls [NumSlotClasses][NumCauses]uint64
}

// Use records n consumed slots of class s this cycle.
func (m *Matrix) Use(s SlotClass, n int) {
	m.Used[s] += uint64(n)
}

// Charge attributes n unused slots of class s to cause. CauseNone is
// ignored so callers can charge unconditionally.
func (m *Matrix) Charge(s SlotClass, cause StallCause, n int) {
	if cause == CauseNone || n <= 0 {
		return
	}
	m.Stalls[s][cause] += uint64(n)
}

// Breakdown snapshots the matrix into the reportable form. widths maps
// slot class → slots per cycle.
func (m *Matrix) Breakdown(cycles uint64, widths [NumSlotClasses]int) StallBreakdown {
	b := StallBreakdown{Cycles: cycles}
	for s := SlotClass(0); s < NumSlotClasses; s++ {
		sb := SlotBreakdown{
			Width:  widths[s],
			Slots:  uint64(widths[s]) * cycles,
			Used:   m.Used[s],
			Stalls: m.Stalls[s],
		}
		switch s {
		case SlotDispatch:
			b.Dispatch = sb
		case SlotIssue:
			b.Issue = sb
		case SlotCommit:
			b.Commit = sb
		}
	}
	return b
}

// StallBreakdown is the per-run stall attribution report carried on
// pipeline.Result. Invariant (checked in tests): for every slot class,
// Used + sum(Stalls) == Width × Cycles.
type StallBreakdown struct {
	Cycles   uint64        `json:"cycles"`
	Dispatch SlotBreakdown `json:"dispatch"`
	Issue    SlotBreakdown `json:"issue"`
	Commit   SlotBreakdown `json:"commit"`
}

// Add accumulates another run's breakdown (for aggregating grids).
func (b *StallBreakdown) Add(o StallBreakdown) {
	b.Cycles += o.Cycles
	b.Dispatch.add(o.Dispatch)
	b.Issue.add(o.Issue)
	b.Commit.add(o.Commit)
}

// SlotBreakdown reports one slot class: the per-cycle width, the total
// slot budget over the run, how many slots did work, and where the
// rest went.
type SlotBreakdown struct {
	Width  int
	Slots  uint64
	Used   uint64
	Stalls [NumCauses]uint64
}

func (b *SlotBreakdown) add(o SlotBreakdown) {
	if b.Width == 0 {
		b.Width = o.Width
	}
	b.Slots += o.Slots
	b.Used += o.Used
	for i := range b.Stalls {
		b.Stalls[i] += o.Stalls[i]
	}
}

// Unused returns the slot budget that went idle.
func (b SlotBreakdown) Unused() uint64 { return b.Slots - b.Used }

// StallSum totals the per-cause counts; it must equal Unused().
func (b SlotBreakdown) StallSum() uint64 {
	var t uint64
	for _, n := range b.Stalls {
		t += n
	}
	return t
}

// Pct returns cause's share of the total slot budget, in percent.
func (b SlotBreakdown) Pct(cause StallCause) float64 {
	if b.Slots == 0 {
		return 0
	}
	return 100 * float64(b.Stalls[cause]) / float64(b.Slots)
}

// UtilPct returns the fraction of the slot budget that did work, in
// percent.
func (b SlotBreakdown) UtilPct() float64 {
	if b.Slots == 0 {
		return 0
	}
	return 100 * float64(b.Used) / float64(b.Slots)
}

// CausePcts returns the non-zero causes as a name → percent-of-slots
// map (the JSON-friendly form used by harness summary rows).
func (b SlotBreakdown) CausePcts() map[string]float64 {
	out := make(map[string]float64)
	for c := StallCause(0); c < NumCauses; c++ {
		if b.Stalls[c] > 0 {
			out[c.String()] = b.Pct(c)
		}
	}
	return out
}

// slotBreakdownJSON is the wire form: causes keyed by name, zero
// counts omitted. encoding/json sorts map keys, so output is
// deterministic.
type slotBreakdownJSON struct {
	Width  int               `json:"width"`
	Slots  uint64            `json:"slots"`
	Used   uint64            `json:"used"`
	Stalls map[string]uint64 `json:"stalls,omitempty"`
}

// MarshalJSON emits the cause array as a name-keyed object, omitting
// zero counts.
func (b SlotBreakdown) MarshalJSON() ([]byte, error) {
	w := slotBreakdownJSON{Width: b.Width, Slots: b.Slots, Used: b.Used}
	for c := StallCause(0); c < NumCauses; c++ {
		if b.Stalls[c] == 0 {
			continue
		}
		if w.Stalls == nil {
			w.Stalls = make(map[string]uint64, int(NumCauses))
		}
		w.Stalls[c.String()] = b.Stalls[c]
	}
	return json.Marshal(w)
}

// UnmarshalJSON inverts MarshalJSON. Unknown cause names are an error
// so schema drift fails loudly.
func (b *SlotBreakdown) UnmarshalJSON(data []byte) error {
	var w slotBreakdownJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	*b = SlotBreakdown{Width: w.Width, Slots: w.Slots, Used: w.Used}
	for name, n := range w.Stalls {
		c, ok := CauseByName(name)
		if !ok {
			return fmt.Errorf("obs: unknown stall cause %q", name)
		}
		b.Stalls[c] = n
	}
	return nil
}
