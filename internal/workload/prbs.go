package workload

import (
	"fmt"
	"strings"

	"reese/internal/asm"
	"reese/internal/program"
)

// prbsMagic is the first word the PRBS workload emits — "SBRP" little-
// endian — so symptom-based fault localization (internal/harness) can
// recognise PRBS self-check records in any program's output without
// knowing which workload ran.
const prbsMagic = 0x50524253

// prbsWordsPerIter sizes the resident region: 256 words (1 KiB) per
// outer iteration, so growing the iteration count toward a campaign's
// instruction target grows the memory footprint with it (past L1, into
// L2 and RAM).
const prbsWordsPerIter = 256

// buildPRBS is a memory-resident self-checking workload for
// memory-hierarchy fault campaigns: fill a region with a PRBS
// (xorshift32) pattern, then sweep it with three read-only verify
// passes that regenerate the sequence and compare. Each pass emits a
// 16-byte record — mismatch count, first and last mismatching word
// offset, XOR of all mismatches — so a corrupted word, a lost
// write-back, or a wrong-line write-back shows up in the output as a
// precise symptom (how many words, how clustered) even when nothing
// else in the program ever consumes the damaged location.
//
// The fill phase dirties every line of the region, which is what makes
// dirty-bit faults consequential; the verify passes are pure loads, so
// any mismatch they report is memory-plane damage, not a wild store.
func buildPRBS(iters int) (*program.Program, error) {
	words := prbsWordsPerIter * iters
	var verify strings.Builder
	for p := 0; p < 3; p++ {
		fmt.Fprintf(&verify, `
	; verify pass %[1]d: regenerate the PRBS stream and compare
	li r2, 0x1234567
	li r10, 0
	li r11, 0             ; mismatch count
	li r12, 0             ; first mismatching word offset
	li r13, 0             ; last mismatching word offset
	li r14, 0             ; xor of (got ^ want) over mismatches
vloop%[1]d:
	slli r3, r2, 13
	xor r2, r2, r3
	srli r3, r2, 17
	xor r2, r2, r3
	slli r3, r2, 5
	xor r2, r2, r3
	slli r3, r10, 2
	add r3, r3, r21
	lw r4, 0(r3)
	beq r4, r2, vnext%[1]d
	bne r11, r0, vseen%[1]d
	move r12, r10
vseen%[1]d:
	addi r11, r11, 1
	move r13, r10
	xor r4, r4, r2
	xor r14, r14, r4
vnext%[1]d:
	addi r10, r10, 1
	bne r10, r22, vloop%[1]d
%[2]s%[3]s%[4]s%[5]s`, p,
			emitWord("r11"), emitWord("r12"), emitWord("r13"), emitWord("r14"))
	}
	src := fmt.Sprintf(`
	; PRBS memory self-check: fill, then 3 verify sweeps.
main:
	li r23, %d            ; magic "SBRP"
%s	la r21, region
	li r22, %d            ; region words
	; fill the region with the PRBS pattern (dirties every line)
	li r2, 0x1234567
	li r10, 0
fill:
	slli r3, r2, 13
	xor r2, r2, r3
	srli r3, r2, 17
	xor r2, r2, r3
	slli r3, r2, 5
	xor r2, r2, r3
	slli r3, r10, 2
	add r3, r3, r21
	sw r2, 0(r3)
	addi r10, r10, 1
	bne r10, r22, fill
%s
	halt
.data
.align 64
region:
	.space %d
`, prbsMagic, emitWord("r23"), words, verify.String(), words*4)
	return asm.Assemble("prbs", src)
}

// emitWord emits the 4 bytes of reg little-endian without halting
// (emitChecksum's epilogue, minus the halt).
func emitWord(reg string) string {
	return fmt.Sprintf(`	out %[1]s
	srli r15, %[1]s, 8
	out r15
	srli r15, %[1]s, 16
	out r15
	srli r15, %[1]s, 24
	out r15
`, reg)
}
