// Package ruu implements the Register Update Unit and Load/Store Queue of
// the simulated machine — the same machine model as SimpleScalar's
// sim-outorder, which the REESE paper modified.
//
// The RUU is a circular queue that serves as combined reorder buffer,
// issue window, and renaming mechanism: dispatch allocates entries in
// program order at the tail, a create vector maps each architectural
// register to its most recent in-flight producer, and instructions leave
// from the head in program order once complete. Under REESE the head
// entries move into the R-stream Queue instead of committing directly.
//
// Entries are addressed by sequence number; an entry with sequence s
// occupies slot s mod size while resident, so lookups are O(1) with no
// generation counters.
package ruu

import (
	"fmt"

	"reese/internal/emu"
	"reese/internal/isa"
)

// NoProducer marks an operand whose value is already architectural (no
// in-flight producer).
const NoProducer = ^uint64(0)

// Entry is one in-flight instruction in the RUU.
type Entry struct {
	// Seq is the global program-order sequence number (also the slot
	// key).
	Seq uint64
	// Trace is the oracle record: decoded instruction, true operand
	// values, true result, true next PC.
	Trace emu.Trace

	// Dep1 and Dep2 are the sequence numbers of the in-flight producers
	// of the two source operands, or NoProducer when the operand is
	// architectural.
	Dep1, Dep2 uint64

	// Issued and Completed track execution state. DoneAt is the cycle
	// execution finishes (valid once Issued).
	Issued    bool
	Completed bool
	IssuedAt  uint64
	DoneAt    uint64

	// FUKind/FUUnit record which functional unit executed the
	// instruction (-1 = none acquired, e.g. forwarded loads), for
	// unit-level fault modelling.
	FUKind uint8
	FUUnit int

	// Mispredicted records that fetch predicted this control transfer
	// wrong; resolution unblocks fetch. BpHistory is the predictor
	// history snapshot the prediction used (trained at resolution).
	Mispredicted bool
	BpHistory    uint32

	// LSQSeq is the instruction's load/store queue sequence number, or
	// NoProducer for non-memory instructions.
	LSQSeq uint64

	// Dup marks a duplicate-at-dispatch redundant copy (the Franklin
	// [24] comparison scheme). PairSeq links it to its original.
	Dup     bool
	PairSeq uint64

	// Bogus marks a wrong-path instruction (fetched past a mispredicted
	// branch when wrong-path modelling is on). Bogus entries consume
	// resources but never resolve branches, train predictors, take
	// faults, or commit — they are squashed when the branch resolves.
	Bogus bool

	// destIdx/prevProducer record the create-vector slot this entry
	// claimed and its previous value, so TruncateAfter can unwind the
	// rename state when squashing wrong-path tails.
	destIdx      int
	prevProducer uint64

	// ResultP, NextPCP, AddrP and StoreValueP are the P-stream outcomes
	// as latched by the pipeline — normally equal to the trace, but a
	// fault injector may corrupt one of them at writeback.
	ResultP     uint32
	NextPCP     uint32
	AddrP       uint32
	StoreValueP uint32
	// FaultBit is the bit flipped by the injector (255 = none).
	FaultBit uint8
	// FaultCycle is the cycle the fault was injected (valid when
	// FaultBit != 255).
	FaultCycle uint64
}

// HasFault reports whether a fault was injected into this instruction.
func (e *Entry) HasFault() bool { return e.FaultBit != 255 }

// RUU is the register update unit.
type RUU struct {
	slots []Entry
	size  uint64

	headSeq uint64 // sequence number of the oldest resident entry
	nextSeq uint64 // sequence number the next dispatch receives

	// producer maps each architectural register (integer file first,
	// then FP file) to the sequence number of its latest in-flight
	// producer (the create vector).
	producer [2 * isa.NumRegs]uint64
}

// regIndex flattens (register, file) into the create-vector index.
func regIndex(r isa.Reg, f isa.RegFile) int {
	if f == isa.FileFP {
		return int(r) + isa.NumRegs
	}
	return int(r)
}

// New builds an RUU with the given capacity.
func New(size int) (*RUU, error) {
	if size < 2 {
		return nil, fmt.Errorf("ruu: size %d too small", size)
	}
	r := &RUU{slots: make([]Entry, size), size: uint64(size)}
	for i := range r.producer {
		r.producer[i] = NoProducer
	}
	return r, nil
}

// Len returns the number of resident entries.
func (r *RUU) Len() int { return int(r.nextSeq - r.headSeq) }

// Cap returns the capacity.
func (r *RUU) Cap() int { return int(r.size) }

// Full reports whether dispatch must stall.
func (r *RUU) Full() bool { return r.nextSeq-r.headSeq >= r.size }

// Empty reports whether no instructions are in flight.
func (r *RUU) Empty() bool { return r.nextSeq == r.headSeq }

// NextSeq returns the sequence number the next dispatched instruction
// will receive.
func (r *RUU) NextSeq() uint64 { return r.nextSeq }

// HeadSeq returns the sequence number of the oldest resident entry
// (meaningless when empty).
func (r *RUU) HeadSeq() uint64 { return r.headSeq }

// Resident reports whether the entry with sequence seq is still in the
// RUU.
func (r *RUU) Resident(seq uint64) bool {
	return seq >= r.headSeq && seq < r.nextSeq
}

// Get returns the resident entry with sequence seq.
func (r *RUU) Get(seq uint64) *Entry {
	if !r.Resident(seq) {
		panic(fmt.Sprintf("ruu: Get(%d) not resident [%d,%d)", seq, r.headSeq, r.nextSeq))
	}
	return &r.slots[seq%r.size]
}

// Head returns the oldest entry, or nil when empty.
func (r *RUU) Head() *Entry {
	if r.Empty() {
		return nil
	}
	return &r.slots[r.headSeq%r.size]
}

// Dispatch allocates the tail entry for tr, wiring operand dependencies
// through the create vector and updating it for the destination. lsqSeq
// is the memory-order sequence for loads/stores (NoProducer otherwise).
// It returns nil if the RUU is full.
func (r *RUU) Dispatch(tr emu.Trace, lsqSeq uint64) *Entry {
	if r.Full() {
		return nil
	}
	seq := r.nextSeq
	e := &r.slots[seq%r.size]
	*e = Entry{
		Seq:         seq,
		Trace:       tr,
		Dep1:        NoProducer,
		Dep2:        NoProducer,
		LSQSeq:      lsqSeq,
		ResultP:     tr.Result,
		NextPCP:     tr.NextPC,
		AddrP:       tr.Addr,
		StoreValueP: tr.StoreValue,
		FaultBit:    255,
	}
	e.destIdx = -1
	e.FUUnit = -1
	rs1, uses1, rs2, uses2 := tr.Inst.Sources()
	rs1File, rs2File := tr.Inst.Op.SourceFiles()
	if uses1 && !(rs1File == isa.FileInt && rs1 == isa.RegZero) {
		if p := r.producer[regIndex(rs1, rs1File)]; p != NoProducer && r.Resident(p) {
			e.Dep1 = p
		}
	}
	if uses2 && !(rs2File == isa.FileInt && rs2 == isa.RegZero) {
		if p := r.producer[regIndex(rs2, rs2File)]; p != NoProducer && r.Resident(p) {
			e.Dep2 = p
		}
	}
	if rd, ok := tr.Inst.Dest(); ok {
		rdFile := tr.Inst.Op.DestFile()
		if !(rdFile == isa.FileInt && rd == isa.RegZero) {
			idx := regIndex(rd, rdFile)
			e.destIdx = idx
			e.prevProducer = r.producer[idx]
			r.producer[idx] = seq
		}
	}
	r.nextSeq = seq + 1
	return e
}

// DispatchDup allocates the tail entry for a redundant duplicate of the
// instruction with the given dependencies (copied from the original, so
// the duplicate waits on the same producers — it inherits the
// original's scheduling constraints, unlike an R-stream copy). It does
// not touch the create vector. Returns nil if full.
func (r *RUU) DispatchDup(tr emu.Trace, pairSeq, dep1, dep2, lsqSeq uint64) *Entry {
	if r.Full() {
		return nil
	}
	seq := r.nextSeq
	e := &r.slots[seq%r.size]
	*e = Entry{
		Seq:         seq,
		Trace:       tr,
		Dep1:        dep1,
		Dep2:        dep2,
		LSQSeq:      lsqSeq,
		Dup:         true,
		PairSeq:     pairSeq,
		ResultP:     tr.Result,
		NextPCP:     tr.NextPC,
		AddrP:       tr.Addr,
		StoreValueP: tr.StoreValue,
		FaultBit:    255,
	}
	e.destIdx = -1
	e.FUUnit = -1
	r.nextSeq = seq + 1
	return e
}

// TruncateAfter squashes every entry younger than seq (the wrong-path
// tail behind a resolved mispredicted branch), unwinding the create
// vector so rename state is as if they were never dispatched.
func (r *RUU) TruncateAfter(seq uint64) {
	if seq+1 >= r.nextSeq {
		return
	}
	for s := r.nextSeq - 1; s > seq; s-- {
		e := &r.slots[s%r.size]
		if e.destIdx >= 0 && r.producer[e.destIdx] == e.Seq {
			r.producer[e.destIdx] = e.prevProducer
		}
	}
	r.nextSeq = seq + 1
}

// depReady reports whether the producer with sequence dep has made its
// value available by cycle now.
func (r *RUU) depReady(dep uint64, now uint64) bool {
	if dep == NoProducer {
		return true
	}
	if !r.Resident(dep) {
		// Producer already left the RUU: value is architectural (or in
		// the R-stream Queue carrying its result), so it is available.
		return true
	}
	p := &r.slots[dep%r.size]
	return p.Completed && p.DoneAt <= now
}

// OperandsReady reports whether both source operands of e are available
// at cycle now (results forward the cycle they complete).
func (r *RUU) OperandsReady(e *Entry, now uint64) bool {
	return r.depReady(e.Dep1, now) && r.depReady(e.Dep2, now)
}

// RemoveHead pops the oldest entry. The caller must have decided it is
// allowed to leave (completed, and under REESE that the R-stream Queue
// has room).
func (r *RUU) RemoveHead() Entry {
	if r.Empty() {
		panic("ruu: RemoveHead on empty RUU")
	}
	e := r.slots[r.headSeq%r.size]
	r.headSeq++
	return e
}

// Scan calls fn for each resident entry in program order, stopping early
// if fn returns false.
func (r *RUU) Scan(fn func(*Entry) bool) {
	for seq := r.headSeq; seq < r.nextSeq; seq++ {
		if !fn(&r.slots[seq%r.size]) {
			return
		}
	}
}

// Flush discards every in-flight instruction and clears the create
// vector (used for fault recovery; with oracle-path fetch there are no
// branch-mispredict flushes).
func (r *RUU) Flush() {
	r.headSeq = r.nextSeq
	for i := range r.producer {
		r.producer[i] = NoProducer
	}
}
