package pipeline

// Permanent functional-unit faults and RESO (recomputation with shifted
// operands, the paper's §3 reference [15]).
//
// A stuck bit in one functional unit corrupts every computation that
// unit performs. Plain re-execution detects it only when the P- and
// R-stream executions land on DIFFERENT units; when both use the faulty
// one, the two results are corrupted identically and the comparator is
// blind. RESO breaks the symmetry: the redundant computation runs on
// shifted operands, so the same stuck bit lands in a different result
// position and the comparison fails.

import (
	"testing"

	"reese/internal/config"
	"reese/internal/fault"
	"reese/internal/fu"
)

// singleALU forces every integer ALU operation (P and R) onto one unit,
// the worst case for plain re-execution.
func singleALU() config.Machine {
	m := config.Starting()
	m.FU.IntALU = 1
	m.Width = 2
	m.IssueWidth = 2
	return m
}

func stuckALU() fault.StuckUnit {
	return fault.StuckUnit{Kind: uint8(fu.IntALU), Unit: 0, Bit: 5}
}

// aluLoop is a small all-ALU kernel (the branch resolves on the ALU too,
// but branches carry no comparable result, so corruption lands on the
// adds).
const aluLoop = `
	li r9, 200
	li r1, 1
loop:
	add r1, r1, r9
	xor r1, r1, r9
	addi r9, r9, -1
	bne r9, r0, loop
	halt
`

func TestStuckUnitBlindSpotWithoutRESO(t *testing.T) {
	cpu, err := New(singleALU().WithReese(), mustProg(t, aluLoop), nil)
	if err != nil {
		t.Fatal(err)
	}
	cpu.SetStuckUnit(stuckALU())
	res, err := cpu.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	// With one ALU, both executions are corrupted identically: the
	// comparator sees matching (wrong) results everywhere.
	if res.FaultsDetected != 0 {
		t.Errorf("plain re-execution on the same faulty unit detected %d faults; it should be blind", res.FaultsDetected)
	}
	if !res.Halted {
		t.Error("the program should run to completion, silently corrupted")
	}
}

func TestStuckUnitDetectedWithRESO(t *testing.T) {
	cpu, err := New(singleALU().WithReese().WithRESO(), mustProg(t, aluLoop), nil)
	if err != nil {
		t.Fatal(err)
	}
	cpu.SetStuckUnit(stuckALU())
	res, err := cpu.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.FaultsDetected == 0 {
		t.Fatal("RESO should expose the stuck unit")
	}
	// A permanent fault keeps failing at the same PC after replay: the
	// machine must stop and report it (§4.3).
	if !res.PermError {
		t.Error("recurring mismatch should escalate to a permanent-error stop")
	}
}

func TestStuckUnitDetectedAcrossUnitsWithoutRESO(t *testing.T) {
	// With 4 ALUs, the R-stream execution frequently lands on a healthy
	// unit, so even plain re-execution catches the stuck bit.
	cpu, err := New(config.Starting().WithReese(), mustProg(t, aluLoop), nil)
	if err != nil {
		t.Fatal(err)
	}
	cpu.SetStuckUnit(stuckALU())
	res, err := cpu.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.FaultsDetected == 0 {
		t.Error("with multiple ALUs the P and R executions diverge onto different units; the fault should be caught")
	}
}

func TestRESOCleanRunStillVerifies(t *testing.T) {
	// RESO must not change behaviour on a healthy machine.
	src := loopProgram(300)
	want := oracleCount(t, src)
	res := runOn(t, config.Starting().WithReese().WithRESO(), src, nil)
	if !res.Halted || res.Committed != want {
		t.Fatalf("halted=%v committed=%d want=%d", res.Halted, res.Committed, want)
	}
	if res.Reese.Mismatches != 0 {
		t.Errorf("clean RESO run mismatched %d times", res.Reese.Mismatches)
	}
}

func TestRESOStillCatchesTransients(t *testing.T) {
	src := loopProgram(200)
	inj := &fault.AtSeq{Seq: 100, Bit: 3}
	res := runOn(t, config.Starting().WithReese().WithRESO(), src, inj)
	if res.FaultsDetected != 1 {
		t.Errorf("RESO machine detected %d transients, want 1", res.FaultsDetected)
	}
}

func TestStuckMemPortCorruptsLoads(t *testing.T) {
	// A stuck memory port corrupts loaded values; REESE's comparator
	// checks the loaded value against the re-read and catches it when
	// the re-read uses the other port.
	src := `
		li r9, 300
		la r1, buf
	loop:
		lw r2, 0(r1)
		add r3, r2, r9
		addi r9, r9, -1
		bne r9, r0, loop
		halt
	.data
	buf:
		.word 42
	`
	cpu, err := New(config.Starting().WithReese(), mustProg(t, src), nil)
	if err != nil {
		t.Fatal(err)
	}
	cpu.SetStuckUnit(fault.StuckUnit{Kind: uint8(fu.MemPort), Unit: 0, Bit: 2})
	res, err := cpu.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.FaultsDetected == 0 {
		t.Error("stuck memory port should be caught by value comparison")
	}
}

func TestStuckUnitOnBaselineIsInvisible(t *testing.T) {
	cpu, err := New(singleALU(), mustProg(t, aluLoop), nil)
	if err != nil {
		t.Fatal(err)
	}
	cpu.SetStuckUnit(stuckALU())
	res, err := cpu.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.FaultsDetected != 0 || res.PermError {
		t.Error("the baseline has no comparator; a stuck unit corrupts silently")
	}
	if !res.Halted {
		t.Error("should complete (corrupted)")
	}
}
