// Package fault injects soft errors into the simulated pipeline: single
// bit flips in the outcome of a P-stream instruction, the fault model
// the REESE paper assumes (arbitrary short-lived transients that affect
// an instruction's result, §2 and §4.2).
//
// An Injector is consulted by the pipeline when a P-stream instruction
// completes execution; if it fires, the latched result (the value that
// would be written back and carried into the R-stream Queue) has one bit
// flipped. REESE detects the corruption at the comparator; a baseline
// machine silently propagates it.
package fault

import "reese/internal/emu"

// NoBit is the FaultBit value meaning "no fault".
const NoBit uint8 = 255

// Target selects which latched outcome of an instruction a fault
// corrupts.
type Target uint8

// Fault targets.
const (
	// TargetResult flips a bit in the destination-register value (or the
	// next-PC for branches/jumps, the store value for stores).
	TargetResult Target = iota
	// TargetAddress flips a bit in a load/store effective address.
	TargetAddress
)

// Injection describes one fault to apply.
type Injection struct {
	Bit    uint8
	Target Target
}

// Injector decides, per completing P-stream instruction, whether to
// inject a fault.
type Injector interface {
	// Decide is called once per P-stream completion with the
	// instruction's sequence number and oracle trace. Returning ok=false
	// injects nothing.
	Decide(seq uint64, tr emu.Trace) (Injection, bool)
}

// None never injects. The zero value is ready to use.
type None struct{}

// Decide implements Injector.
func (None) Decide(uint64, emu.Trace) (Injection, bool) { return Injection{}, false }

// AtSeq injects a single fault into the instruction with the given
// sequence number. The zero Bit flips bit 0.
type AtSeq struct {
	Seq    uint64
	Bit    uint8
	Target Target

	fired bool
}

// Decide implements Injector.
func (a *AtSeq) Decide(seq uint64, tr emu.Trace) (Injection, bool) {
	if a.fired || seq != a.Seq {
		return Injection{}, false
	}
	a.fired = true
	return Injection{Bit: a.Bit % 32, Target: a.Target}, true
}

// Fired reports whether the fault has been injected.
func (a *AtSeq) Fired() bool { return a.fired }

// Window injects exactly one fault at a sequence number drawn uniformly
// from [Lo, Hi) by a seeded PRNG, with the bit position drawn from the
// same stream. Campaigns sweeping the paper's §4.2 commit-phase windows
// build one Window per trial: the same seed always picks the same
// (seq, bit), so trials are reproducible, and the fired latch means a
// replayed sequence number (REESE recovery re-fetches the faulted
// region) never re-injects.
type Window struct {
	Lo, Hi uint64
	Bit    uint8
	Target Target

	seq   uint64
	fired bool
}

// NewWindow builds a Window over [lo, hi) (hi must exceed lo) seeded
// with seed (0 is replaced with a fixed constant, as NewRandom).
func NewWindow(lo, hi, seed uint64) *Window {
	if hi <= lo {
		hi = lo + 1
	}
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	r := &Random{state: seed}
	v := r.next()
	return &Window{
		Lo:  lo,
		Hi:  hi,
		Bit: uint8(r.next()>>32) % 32,
		seq: lo + v%(hi-lo),
	}
}

// Seq returns the chosen injection sequence number.
func (w *Window) Seq() uint64 { return w.seq }

// Fired reports whether the fault has been injected.
func (w *Window) Fired() bool { return w.fired }

// Decide implements Injector.
func (w *Window) Decide(seq uint64, tr emu.Trace) (Injection, bool) {
	if w.fired || seq != w.seq {
		return Injection{}, false
	}
	w.fired = true
	return Injection{Bit: w.Bit % 32, Target: w.Target}, true
}

// Periodic injects a fault every Interval instructions, cycling through
// bit positions. It drives fault-injection campaigns.
type Periodic struct {
	// Interval is the sequence-number spacing between injections.
	Interval uint64
	// Start offsets the first injection.
	Start uint64

	injected uint64
}

// Decide implements Injector.
func (p *Periodic) Decide(seq uint64, tr emu.Trace) (Injection, bool) {
	if p.Interval == 0 || seq < p.Start || (seq-p.Start)%p.Interval != 0 {
		return Injection{}, false
	}
	p.injected++
	return Injection{Bit: uint8(p.injected % 32)}, true
}

// Injected returns how many faults have been injected.
func (p *Periodic) Injected() uint64 { return p.injected }

// Random injects faults with a fixed per-instruction probability using a
// deterministic xorshift PRNG, so campaigns are reproducible.
type Random struct {
	// PerInst is the injection probability per instruction, expressed as
	// numerator over 2^32 (e.g. 1<<22 ≈ 1 in 1024).
	PerInst uint32

	state    uint64
	injected uint64
}

// NewRandom builds a Random injector with probability num/2^32 per
// instruction and the given seed (0 is replaced with a fixed constant).
func NewRandom(num uint32, seed uint64) *Random {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &Random{PerInst: num, state: seed}
}

func (r *Random) next() uint64 {
	// xorshift64*.
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Decide implements Injector.
func (r *Random) Decide(seq uint64, tr emu.Trace) (Injection, bool) {
	v := r.next()
	if uint32(v) >= r.PerInst {
		return Injection{}, false
	}
	r.injected++
	return Injection{Bit: uint8(v>>32) % 32}, true
}

// Injected returns how many faults have been injected.
func (r *Random) Injected() uint64 { return r.injected }

// StuckUnit models a permanent fault in one functional unit: every
// operation executed on unit Unit of kind Kind has bit Bit of its result
// flipped. Unlike the transient Injector faults, this corrupts BOTH the
// P-stream and any redundant execution that lands on the same unit —
// the common-mode case that plain re-execution cannot detect and RESO
// (recomputation with shifted operands, the paper's §3 reference [15])
// can.
type StuckUnit struct {
	// Kind is the fu.Kind value of the faulty unit's class.
	Kind uint8
	// Unit is the index within the class.
	Unit int
	// Bit is the flipped result bit.
	Bit uint8
}

// Mask returns the XOR mask the fault applies to a result computed on
// the faulty unit.
func (s StuckUnit) Mask() uint32 { return 1 << (s.Bit % 32) }

// Hits reports whether an operation executed on (kind, unit) is
// affected.
func (s StuckUnit) Hits(kind uint8, unit int) bool {
	return unit >= 0 && s.Kind == kind && s.Unit == unit
}

// Apply corrupts the latched P-stream outcomes of tr according to inj,
// returning the corrupted (result, nextPC, addr, storeValue) tuple. The
// faulted field depends on the instruction kind, mirroring where a
// transient in the datapath would land.
func Apply(inj Injection, tr emu.Trace) (result, nextPC, addr, storeValue uint32) {
	result = tr.Result
	nextPC = tr.NextPC
	addr = tr.Addr
	storeValue = tr.StoreValue
	mask := uint32(1) << (inj.Bit % 32)
	op := tr.Inst.Op
	switch {
	case inj.Target == TargetAddress && op.IsMem():
		addr ^= mask
	case op.IsStore():
		storeValue ^= mask
	case op.IsControl() && !tr.HasResult:
		nextPC ^= mask
	case tr.HasResult:
		result ^= mask
	default:
		// halt/out and friends: fault the next PC (control corruption).
		nextPC ^= mask
	}
	return result, nextPC, addr, storeValue
}
