package harness

import (
	"fmt"

	"reese/internal/config"
	"reese/internal/fault"
	"reese/internal/fu"
	"reese/internal/pipeline"
	"reese/internal/stats"
	"reese/internal/workload"
)

// PredictorSweep compares branch predictors on both machines — a
// sensitivity check the paper doesn't run (it fixes gshare) but whose
// outcome it depends on: REESE inherits the baseline's control-flow
// behaviour because R-stream instructions carry resolved outcomes, so
// the gap should be roughly predictor independent.
func PredictorSweep(opt Options) (string, map[config.PredictorKind]float64, error) {
	opt = opt.normalize()
	kinds := []config.PredictorKind{
		config.PredGshare,
		config.PredCombining,
		config.PredBimodal,
		config.PredStaticTaken,
		config.PredStaticNotTaken,
	}
	gaps := make(map[config.PredictorKind]float64, len(kinds))
	t := stats.NewTable("Ablation: branch predictor sensitivity (average over 6 benchmarks)",
		"predictor", "baseline IPC", "REESE IPC", "gap %")
	for _, k := range kinds {
		base := config.Starting().WithPredictor(k)
		b, err := averageIPC(base, opt)
		if err != nil {
			return "", nil, err
		}
		r, err := averageIPC(base.WithReese(), opt)
		if err != nil {
			return "", nil, err
		}
		gap := stats.PercentDelta(b, r)
		gaps[k] = gap
		t.AddRow(k.String(), fmt.Sprintf("%.3f", b), fmt.Sprintf("%.3f", r), fmt.Sprintf("%.1f", gap))
	}
	return t.String(), gaps, nil
}

// HighWaterSweep varies the RSQ occupancy threshold at which R-stream
// instructions take scheduling priority (the paper's counter logic,
// §4.3). Too low starves the P stream; too high risks full-queue stalls.
func HighWaterSweep(marks []int, opt Options) (string, map[int]float64, error) {
	opt = opt.normalize()
	out := make(map[int]float64, len(marks))
	t := stats.NewTable("Ablation: R-priority high-water mark (RSQ=32, starting config)",
		"high water", "avg IPC", "gap vs baseline %", "priority cycles (gcc)")
	baseAvg, err := averageIPC(config.Starting(), opt)
	if err != nil {
		return "", nil, err
	}
	for _, hw := range marks {
		cfg := config.Starting().WithReese().WithRSQHighWater(hw)
		avg, err := averageIPC(cfg, opt)
		if err != nil {
			return "", nil, err
		}
		out[hw] = avg
		res, err := runOne(cfg, "gcc", opt)
		if err != nil {
			return "", nil, err
		}
		t.AddRow(fmt.Sprint(hw), fmt.Sprintf("%.3f", avg),
			fmt.Sprintf("%.1f", stats.PercentDelta(baseAvg, avg)),
			fmt.Sprint(res.Reese.PriorityCycles))
	}
	return t.String(), out, nil
}

// DetectionLatencyVsRSQ measures how the RSQ size stretches the
// P-to-R-execution separation — the Δt of the paper's §2 argument: a
// longer separation tolerates longer-lived transients, at the cost of
// delaying every commit.
func DetectionLatencyVsRSQ(sizes []int, opt Options) (string, map[int]float64, error) {
	opt = opt.normalize()
	out := make(map[int]float64, len(sizes))
	t := stats.NewTable("Ablation: detection latency vs R-stream Queue size (gcc, faults every 5k insts)",
		"rsq size", "mean detect cycles", "p95", "max", "IPC")
	for _, size := range sizes {
		cfg := config.Starting().WithReese().WithRSQ(size)
		spec, _ := workload.ByName("gcc")
		prog, err := spec.Build(spec.DefaultIters * 2)
		if err != nil {
			return "", nil, err
		}
		inj := &fault.Periodic{Interval: 5_000, Start: 2_500}
		cpu, err := pipeline.New(cfg, prog, inj)
		if err != nil {
			return "", nil, err
		}
		res, err := cpu.Run(opt.Insts)
		if err != nil {
			return "", nil, err
		}
		h := cpu.DetectionLatencies()
		out[size] = res.DetectionLatencyMean
		t.AddRow(fmt.Sprint(size),
			fmt.Sprintf("%.1f", res.DetectionLatencyMean),
			fmt.Sprint(h.Percentile(95)),
			fmt.Sprint(res.DetectionLatencyMax),
			fmt.Sprintf("%.3f", res.IPC))
	}
	return t.String(), out, nil
}

// WrongPathSweep compares the default stall-until-resolve misprediction
// model against full wrong-path execution modelling, for both machines.
// The REESE-vs-baseline gap should be robust to the choice — wrong-path
// work steals resources from both streams alike.
func WrongPathSweep(opt Options) (string, error) {
	opt = opt.normalize()
	t := stats.NewTable("Ablation: misprediction model (stall vs wrong-path execution)",
		"model", "baseline IPC", "REESE IPC", "gap %")
	for _, tt := range []struct {
		label string
		base  config.Machine
	}{
		{"stall", config.Starting()},
		{"wrong-path", config.Starting().WithWrongPath()},
	} {
		b, err := averageIPC(tt.base, opt)
		if err != nil {
			return "", err
		}
		r, err := averageIPC(tt.base.WithReese(), opt)
		if err != nil {
			return "", err
		}
		t.AddRow(tt.label, fmt.Sprintf("%.3f", b), fmt.Sprintf("%.3f", r),
			fmt.Sprintf("%.1f", stats.PercentDelta(b, r)))
	}
	return t.String(), nil
}

// SchemeComparison compares the three redundancy organisations on the
// starting configuration: none (baseline), duplicate-at-the-scheduler
// (Franklin [24], the paper's cited comparison — copies inherit the
// original's dependencies), and REESE's R-stream Queue (copies carry
// operands, dependency-free). This quantifies §4.4's argument for the
// RSQ.
func SchemeComparison(opt Options) (string, map[string]float64, error) {
	opt = opt.normalize()
	out := make(map[string]float64, 3)
	t := stats.NewTable("Redundancy schemes on the starting configuration (average IPC)",
		"scheme", "avg IPC", "gap vs baseline %")
	base, err := averageIPC(config.Starting(), opt)
	if err != nil {
		return "", nil, err
	}
	out["baseline"] = base
	t.AddRow("baseline (no redundancy)", fmt.Sprintf("%.3f", base), "-")
	dup, err := averageIPC(config.Starting().WithDupDispatch(), opt)
	if err != nil {
		return "", nil, err
	}
	out["dup-dispatch"] = dup
	t.AddRow("duplicate-at-scheduler [24]", fmt.Sprintf("%.3f", dup),
		fmt.Sprintf("%.1f", stats.PercentDelta(base, dup)))
	rsq, err := averageIPC(config.Starting().WithReese(), opt)
	if err != nil {
		return "", nil, err
	}
	out["reese"] = rsq
	t.AddRow("REESE (R-stream Queue)", fmt.Sprintf("%.3f", rsq),
		fmt.Sprintf("%.1f", stats.PercentDelta(base, rsq)))
	return t.String(), out, nil
}

// PermanentFaultCoverage compares how the redundancy schemes handle a
// permanent stuck bit in integer ALU 0, on a machine with a single ALU
// (the worst case: every computation, primary and redundant, uses the
// faulty unit). Plain duplication and plain REESE are blind to the
// common-mode corruption; REESE+RESO (recomputation with shifted
// operands, reference [15]) detects it and stops the machine, as §4.3
// prescribes for persistent errors.
func PermanentFaultCoverage(opt Options) (string, error) {
	opt = opt.normalize()
	single := config.Starting()
	single.FU.IntALU = 1
	single.Width = 2
	single.IssueWidth = 2
	stuck := fault.StuckUnit{Kind: uint8(fu.IntALU), Unit: 0, Bit: 5}

	t := stats.NewTable("Permanent fault in the only integer ALU (stuck bit 5)",
		"scheme", "detected", "machine stopped", "outcome")
	for _, tt := range []struct {
		label string
		cfg   config.Machine
	}{
		{"baseline", single},
		{"duplicate-at-scheduler [24]", single.WithDupDispatch()},
		{"REESE", single.WithReese()},
		{"REESE + RESO [15]", single.WithReese().WithRESO()},
	} {
		spec, _ := workload.ByName("gcc")
		prog, err := spec.Build(spec.DefaultIters)
		if err != nil {
			return "", err
		}
		cpu, err := pipeline.New(tt.cfg, prog, fault.None{})
		if err != nil {
			return "", err
		}
		cpu.SetStuckUnit(stuck)
		res, err := cpu.Run(opt.Insts)
		if err != nil {
			return "", err
		}
		outcome := "silent corruption"
		if res.PermError {
			outcome = "reported to the user (§4.3)"
		} else if res.FaultsDetected > 0 {
			outcome = "detected, recovered repeatedly"
		}
		t.AddRow(tt.label, fmt.Sprint(res.FaultsDetected), fmt.Sprint(res.PermError), outcome)
	}
	return t.String(), nil
}
