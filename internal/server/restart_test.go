package server

// End-to-end restart recovery: jobs accepted before a crash are
// replayed and finished by the next server generation on the same
// journal, and a clean shutdown compacts the journal to nothing.

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestRestartRecovery(t *testing.T) {
	journalPath := filepath.Join(t.TempDir(), "jobs.wal")
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))

	// Generation A: every attempt blocks until its context dies, so
	// accepted jobs are mid-flight (one running, rest queued) when the
	// server "loses power".
	var blockAttempts atomic.Bool
	blockAttempts.Store(true)
	cfg := Config{
		Workers:     1,
		JournalPath: journalPath,
		Logger:      quiet,
		BeforeAttempt: func(ctx context.Context, jobID, kind string, attempt int) {
			if blockAttempts.Load() {
				<-ctx.Done()
			}
		},
	}
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tsA := httptest.NewServer(a.Handler())

	reqs := []RunRequest{
		{Workload: "li", Insts: testInsts},
		{Workload: "gcc", Insts: testInsts},
		{Workload: "ijpeg", Insts: testInsts},
	}
	ids := make([]string, len(reqs))
	for i, rr := range reqs {
		v := postJSON(t, tsA.URL+"/v1/run", rr)
		ids[i] = v.ID
	}
	waitFor(t, 10*time.Second, func() bool { return a.jobs.running.Load() == 1 })
	tsA.Close()
	a.Crash()

	// Generation B: same journal, attempts run normally. Every accepted
	// job must be replayed, re-enqueued, and finished — none lost, none
	// duplicated, IDs preserved.
	blockAttempts.Store(false)
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tsB := httptest.NewServer(b.Handler())

	for _, id := range ids {
		v := getJob(t, tsB.URL, id)
		deadline := time.Now().Add(2 * time.Minute)
		for !v.State.terminal() {
			if time.Now().After(deadline) {
				t.Fatalf("replayed job %s still %q at deadline", id, v.State)
			}
			time.Sleep(25 * time.Millisecond)
			v = getJob(t, tsB.URL, id)
		}
		if v.State != StateDone {
			t.Errorf("replayed job %s finished %q: %s", id, v.State, v.Error)
		}
		if !v.Replayed {
			t.Errorf("job %s not marked replayed", id)
		}
		if len(v.Result) == 0 {
			t.Errorf("replayed job %s has no result", id)
		}
	}
	if views := b.jobs.list(); len(views) != len(reqs) {
		t.Errorf("generation B has %d jobs, want exactly the %d accepted", len(views), len(reqs))
	}
	metrics := scrapeMetrics(t, tsB.URL)
	if !strings.Contains(metrics, "reese_serve_journal_replayed_jobs_total 3") {
		t.Errorf("metrics missing journal_replayed_jobs_total 3:\n%s", grepMetrics(metrics, "journal"))
	}

	// Replayed results must be cache-verified: resubmitting an identical
	// request hits the cache with byte-identical payload.
	second := postJSON(t, tsB.URL+"/v1/run?wait=120s", reqs[0])
	if !second.Cached {
		t.Error("identical resubmission after replay missed the cache")
	}
	if string(second.Result) != string(getJob(t, tsB.URL, ids[0]).Result) {
		t.Error("cached result differs from the replayed job's result")
	}

	// Clean shutdown compacts: generation C replays an empty journal.
	tsB.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := b.Shutdown(ctx); err != nil {
		t.Fatalf("clean shutdown: %v", err)
	}
	replayed, _, err := replayJournal(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != 0 {
		t.Errorf("journal not compacted after clean shutdown: %d records remain", len(replayed))
	}
}

// TestReplayKeepsTerminalStates: a journal whose jobs already finished
// replays them as terminal records (no re-execution), visible with
// their causes over the API.
func TestReplayKeepsTerminalStates(t *testing.T) {
	journalPath := filepath.Join(t.TempDir(), "jobs.wal")
	jl, err := openJournal(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	req := json.RawMessage(`{"workload":"li","insts":5000,"iters":68,"machine":null}`)
	mustAppend(t, jl, journalRecord{T: recSubmit, Job: "j-000007", Kind: "run", Key: "k7", Req: req})
	mustAppend(t, jl, journalRecord{T: recStart, Job: "j-000007", Attempt: 1})
	mustAppend(t, jl, journalRecord{T: recFail, Job: "j-000007", Attempt: 3, Cause: "panic: chaos (retries exhausted)"})
	jl.close()

	s, ts := newTestServer(t, Config{JournalPath: journalPath})
	v := getJob(t, ts.URL, "j-000007")
	if v.State != StateFailed || !v.Replayed {
		t.Errorf("replayed terminal job: state %q replayed %v, want failed/true", v.State, v.Replayed)
	}
	if !strings.Contains(v.Error, "panic: chaos") {
		t.Errorf("replayed cause %q lost", v.Error)
	}
	// The ID counter must resume past journaled IDs — no collisions.
	fresh := postJSON(t, ts.URL+"/v1/run", RunRequest{Workload: "li", Insts: testInsts})
	if fresh.ID <= "j-000007" {
		t.Errorf("fresh job ID %q collides with journaled range", fresh.ID)
	}
	_ = s

	resp, err := http.Get(ts.URL + "/v1/jobs/j-000007")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("terminal replayed job GET status %d, want 200", resp.StatusCode)
	}
}
