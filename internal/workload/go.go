package workload

import (
	"fmt"

	"reese/internal/asm"
	"reese/internal/program"
)

// buildGo models go (the game player): repeated scans of a bordered
// 19x19 board, counting empty neighbours of every stone and updating an
// influence map. The work is almost entirely integer ALU operations and
// dense, moderately predictable conditionals, with byte loads dominating
// the memory traffic — the profile of board-evaluation code.
func buildGo(iters int) (*program.Program, error) {
	const dim = 21 // 19x19 board with a 1-cell border
	g := newPRNG(0xB0A2D)
	src := fmt.Sprintf(`
	; go stand-in: board influence evaluation.
main:
	li r20, %d            ; outer iterations
	la r21, board
	la r22, influence
	li r23, 0             ; checksum
outer:
	li r10, 1             ; row
row_loop:
	; r12 = &board[row*dim+1], r2 = row*dim+1 (index)
	li r1, %d
	mul r2, r10, r1
	addi r2, r2, 1
	add r12, r2, r21
	li r11, 1             ; col
col_loop:
	; evaluate the cell and its right-hand neighbour in parallel
	lbu r3, 0(r12)
	lbu r13, 1(r12)
	; liberties of cell 0 (r4) and cell 1 (r14), independent chains
	li r4, 0
	li r14, 0
	lbu r5, -1(r12)
	lbu r16, 0(r12)
	bne r5, r0, n1
	addi r4, r4, 1
n1:
	bne r16, r0, n1b
	addi r14, r14, 1
n1b:
	lbu r5, 1(r12)
	lbu r16, 2(r12)
	bne r5, r0, n2
	addi r4, r4, 1
n2:
	bne r16, r0, n2b
	addi r14, r14, 1
n2b:
	lbu r5, -%[2]d(r12)
	lbu r16, -%[3]d(r12)
	bne r5, r0, n3
	addi r4, r4, 1
n3:
	bne r16, r0, n3b
	addi r14, r14, 1
n3b:
	lbu r5, %[2]d(r12)
	lbu r16, %[4]d(r12)
	bne r5, r0, n4
	addi r4, r4, 1
n4:
	bne r16, r0, n4b
	addi r14, r14, 1
n4b:
	beq r3, r0, cell1      ; empty point: skip influence update
	; influence[idx] += liberties * colour sign
	slli r6, r2, 2
	add r6, r6, r22
	lw r7, 0(r6)
	addi r8, r3, -1
	beq r8, r0, black
	sub r7, r7, r4        ; white stone: negative influence
	j upd
black:
	add r7, r7, r4
upd:
	sw r7, 0(r6)
	; stones in atari (1 liberty) get special handling
	addi r9, r4, -1
	bne r9, r0, cell1
	xor r23, r23, r2
	add r23, r23, r7
cell1:
	beq r13, r0, cells_done
	addi r17, r2, 1
	slli r6, r17, 2
	add r6, r6, r22
	lw r7, 0(r6)
	addi r8, r13, -1
	beq r8, r0, black1
	sub r7, r7, r14
	j upd1
black1:
	add r7, r7, r14
upd1:
	sw r7, 0(r6)
	addi r9, r14, -1
	bne r9, r0, cells_done
	xor r23, r23, r17
	add r23, r23, r7
cells_done:
	addi r11, r11, 2
	addi r12, r12, 2
	addi r2, r2, 2
	slti r1, r11, %[5]d
	bne r1, r0, col_loop
	addi r10, r10, 1
	slti r1, r10, %[5]d
	bne r1, r0, row_loop
	; fold a stripe of the influence map into the checksum
	li r10, 0
fold:
	slli r1, r10, 4
	add r1, r1, r22
	lw r2, 0(r1)
	add r23, r23, r2
	addi r10, r10, 1
	slti r1, r10, 24
	bne r1, r0, fold
	addi r20, r20, -1
	bne r20, r0, outer
%s
.data
board:
%s
.align 4
influence:
	.space %d
`, iters, dim, dim-1, dim+1, dim-1, emitChecksum("r23"),
		byteList(g, dim*dim, 0, 2), dim*dim*4)
	return asm.Assemble("go", src)
}
