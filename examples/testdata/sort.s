; sort.s — insertion sort over a word array, then a verification pass.
; Emits 1 if sorted correctly, 0 otherwise.
.equ N, 24
main:
	la r1, arr
	li r2, 1              ; i
outer:
	slli r3, r2, 2
	add r3, r3, r1
	lw r4, 0(r3)          ; key = arr[i]
	addi r5, r2, -1       ; j
inner:
	slti r6, r5, 0
	bne r6, r0, place
	slli r7, r5, 2
	add r7, r7, r1
	lw r8, 0(r7)
	ble r8, r4, place     ; arr[j] <= key: stop shifting
	sw r8, 4(r7)          ; arr[j+1] = arr[j]
	addi r5, r5, -1
	j inner
place:
	addi r7, r5, 1
	slli r7, r7, 2
	add r7, r7, r1
	sw r4, 0(r7)          ; arr[j+1] = key
	addi r2, r2, 1
	slti r6, r2, N
	bne r6, r0, outer
	; verify ascending order
	li r2, 1
	li r9, 1              ; result
verify:
	slli r3, r2, 2
	add r3, r3, r1
	lw r4, 0(r3)
	lw r5, -4(r3)
	ble r5, r4, vok
	li r9, 0
vok:
	addi r2, r2, 1
	slti r6, r2, N
	bne r6, r0, verify
	out r9
	halt
.data
arr:
	.word 170, 45, 75, 90, 802, 24, 2, 66, 15, 1, 999, 3
	.word 501, 33, 7, 88, 250, 12, 640, 5, 77, 31, 414, 100
