// Command reese-faults runs statistical fault-injection campaigns:
// seeded random samples over (victim instruction, target structure, bit
// position), each injected run classified against an uninjected golden
// execution as detected, recovered, SDC, masked, or hang — with
// per-structure coverage and Wilson 95% confidence intervals.
//
// Usage:
//
//	reese-faults                         # all six workloads, REESE vs baseline
//	reese-faults -workload li -n 1000    # one workload, 1000 injections
//	reese-faults -structures result,fetch-pc
//	reese-faults -jsonl trials.jsonl     # stream per-trial records
//	reese-faults -smoke                  # tiny seeded campaign with assertions
//	reese-faults -grid                   # sweep all 32 bit positions at one point
//	reese-faults -workload gcc -n 10000 -workers http://a:8321,http://b:8321
//	                                     # shard the campaign across replicas
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"reese/internal/cluster"
	"reese/internal/config"
	"reese/internal/fault"
	"reese/internal/harness"
	"reese/internal/mem"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		workloadName = flag.String("workload", "", "single workload (default: all six)")
		injections   = flag.Int("n", 400, "injections per campaign")
		seed         = flag.Uint64("seed", 1, "campaign seed (same seed = byte-identical results)")
		structures   = flag.String("structures", "", "comma-separated fault structures (default: all for the machine)")
		targetInsts  = flag.Uint64("target-insts", 0, "approximate golden-run length in instructions (0 = default)")
		jsonOut      = flag.Bool("json", false, "emit campaign reports as JSON instead of tables")
		jsonlPath    = flag.String("jsonl", "", "stream per-trial JSONL records to this file (\"-\" = stdout)")
		ckInterval   = flag.Uint64("checkpoint-interval", 0, "golden-run snapshot spacing in committed instructions (0 = default)")
		parallel     = flag.Int("parallel", 0, "worker pool size (0 = GOMAXPROCS)")
		smoke        = flag.Bool("smoke", false, "tiny seeded campaign; exits non-zero unless in-sphere coverage is 100% with no hangs")
		memSmoke     = flag.Bool("mem-smoke", false, "seeded memory-hierarchy campaign on small caches with SECDED L2; asserts ECC absorbs single-bit L2 faults and localization accuracy >= 90%")
		ecc          = flag.Bool("ecc", false, "enable SECDED ECC on the L2 cache for the campaign machines")
		grid         = flag.Bool("grid", false, "sweep all 32 bit positions at one injection point")
		gridAt       = flag.Uint64("grid-at", 5_000, "injection point (instruction #) for -grid")
		workersStr   = flag.String("workers", "", "comma-separated reese-serve replica URLs; shards the campaign across them (requires -workload)")
		shardSize    = flag.Int("shard-size", 0, "trials per shard with -workers (0 = auto)")
		triage       = flag.Bool("triage", false, "re-run every SDC/hang trial from its checkpoint with the flight recorder and first-divergence attribution armed (requires -workload)")
		triageDet    = flag.Bool("triage-detected", false, "with -triage, also triage detected outcomes")
		triageDir    = flag.String("triage-dir", "", "with -triage, write each triaged trial's Perfetto trace here (trace_path lands in the JSONL record)")
		triageSmoke  = flag.Bool("triage-smoke", false, "seeded triage campaign with assertions; exits non-zero unless every escape carries a trace with injection and first-divergence markers")
	)
	flag.Parse()
	opt := harness.Options{Parallel: *parallel}

	structs, err := parseStructures(*structures)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reese-faults:", err)
		return 2
	}

	if *grid {
		return runGrid(*workloadName, *gridAt, opt)
	}
	if *smoke {
		return runSmoke(*seed, opt)
	}
	if *memSmoke {
		return runMemSmoke(*seed, opt)
	}
	if *triageSmoke {
		return runTriageSmoke(*seed, opt)
	}
	if *triage && *workloadName == "" {
		fmt.Fprintln(os.Stderr, "reese-faults: -triage requires -workload (triage artifacts attach to one campaign's trial log)")
		return 2
	}
	if *workersStr != "" {
		return runDistributed(distributedArgs{
			workers:        splitWorkers(*workersStr),
			workload:       *workloadName,
			injections:     *injections,
			seed:           *seed,
			targetInsts:    *targetInsts,
			ckInterval:     *ckInterval,
			shardSize:      *shardSize,
			structs:        structs,
			jsonOut:        *jsonOut,
			triage:         *triage,
			triageDetected: *triageDet,
			triageDir:      *triageDir,
		})
	}

	workloads := []string{*workloadName}
	if *workloadName == "" {
		// No single workload selected: run the full REESE-vs-baseline
		// comparison across all six.
		tbl, reports, err := harness.CampaignAll(*injections, *seed, opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "reese-faults:", err)
			return 1
		}
		if *jsonOut {
			return emitJSON(reports)
		}
		fmt.Println(tbl)
		return 0
	}

	// Trials stream to the sink as they complete rather than being
	// buffered until every campaign finishes: a killed or wedged run
	// keeps everything already classified.
	var sink *json.Encoder
	if *jsonlPath != "" {
		w := os.Stdout
		if *jsonlPath != "-" {
			f, err := os.Create(*jsonlPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "reese-faults:", err)
				return 1
			}
			defer f.Close()
			w = f
		}
		sink = json.NewEncoder(w)
	}

	var reports []harness.CampaignReport
	for _, w := range workloads {
		for _, cfg := range []config.Machine{config.Starting().WithReese(), config.Starting()} {
			if *ecc {
				cfg.Memory.L2.ECC = true
			}
			spec := harness.CampaignSpec{
				Workload:           w,
				Machine:            cfg,
				Injections:         *injections,
				Seed:               *seed,
				TargetInsts:        *targetInsts,
				CheckpointInterval: *ckInterval,
				Triage:             *triage,
				TriageDetected:     *triageDet,
			}
			if len(structs) > 0 {
				spec.Structures = usable(structs, cfg)
			}
			if sink != nil || *triage || *triageDet {
				// Traces are persisted (and trace_path stamped) inside the
				// sink, before the record is encoded, so the JSONL line
				// already points at its artifact.
				enc, dir, machine := sink, *triageDir, cfg.Name
				spec.TrialSink = func(t harness.Trial) error {
					if t.Triage != nil && dir != "" {
						path, err := writeTrace(dir, machine, t.Index, t.Triage.Trace)
						if err != nil {
							return err
						}
						t.Triage.TracePath = path
					}
					if enc != nil {
						if err := enc.Encode(&t); err != nil {
							return err
						}
					}
					if t.Triage != nil {
						// Every consumer of the blob in this front end has
						// run (trace file written, JSONL line emitted); drop
						// it so hundreds of escapes' traces don't sit on the
						// heap for the rest of the run. The attribution
						// fields stay on the record for the summary table.
						t.Triage.Trace = nil
					}
					return nil
				}
			}
			r, err := harness.Campaign(spec, opt)
			if err != nil {
				fmt.Fprintln(os.Stderr, "reese-faults:", err)
				return 1
			}
			// A triage trace that wrapped its ring evicted early events;
			// say so instead of letting a partial record pass as complete.
			for ti := range r.Trials {
				if tg := r.Trials[ti].Triage; tg != nil && tg.TraceDropped > 0 {
					fmt.Fprintf(os.Stderr, "reese-faults: warning: trial %d triage trace wrapped (%d events evicted); the trace is a partial record\n",
						r.Trials[ti].Index, tg.TraceDropped)
				}
			}
			reports = append(reports, *r)
		}
	}
	if *jsonOut {
		return emitJSON(reports)
	}
	for i := range reports {
		fmt.Println(reports[i].Table())
		if reports[i].Localized > 0 {
			fmt.Println(reports[i].LevelsTable())
		}
		if reports[i].Detected+reports[i].Recovered > 0 {
			fmt.Printf("detection latency: mean %.1f, p95 %d, max %d cycles\n",
				reports[i].DetectionLatencyMean, reports[i].DetectionLatencyP95, reports[i].DetectionLatencyMax)
		}
		if reports[i].Triaged > 0 {
			fmt.Printf("triage: %d escapes replayed with attribution, %d with a first divergent commit\n",
				reports[i].Triaged, reports[i].Diverged)
		}
		fmt.Printf("throughput: %d injections in %.2fs wall (%.0f injections/s)\n\n",
			reports[i].Injected, reports[i].WallSeconds, reports[i].InjectionsPerSec)
	}
	return 0
}

// splitWorkers turns "http://a,http://b" into clean base URLs.
func splitWorkers(s string) []string {
	var out []string
	for _, w := range strings.Split(s, ",") {
		if w = strings.TrimSpace(w); w != "" {
			out = append(out, strings.TrimRight(w, "/"))
		}
	}
	return out
}

type distributedArgs struct {
	workers        []string
	workload       string
	injections     int
	seed           uint64
	targetInsts    uint64
	ckInterval     uint64
	shardSize      int
	structs        []fault.Struct
	jsonOut        bool
	triage         bool
	triageDetected bool
	triageDir      string
}

// runDistributed shards the campaign across reese-serve replicas via
// the cluster coordinator and prints the merged reports — the same
// REESE-vs-baseline pair the local path produces, byte-identical to a
// single-process run with the same seed.
func runDistributed(a distributedArgs) int {
	if a.workload == "" {
		fmt.Fprintln(os.Stderr, "reese-faults: -workers requires -workload (pick one benchmark to shard)")
		return 2
	}
	cfg := cluster.Config{Workers: a.workers, ShardSize: a.shardSize}
	cfg.OnEvent = func(ev cluster.Event) {
		if ev.Type == "completed" || ev.Type == "reassigned" {
			fmt.Fprintf(os.Stderr, "reese-faults: shard %d %s on %s (%d/%d shards, %d/%d trials, %.1fs)\n",
				ev.Shard, ev.Type, ev.Worker, ev.CompletedShards, ev.TotalShards,
				ev.CompletedTrials, ev.TotalTrials, ev.ElapsedS)
		}
	}
	var reports []harness.CampaignReport
	for _, m := range []config.Machine{config.Starting().WithReese(), config.Starting()} {
		machine := m
		var names []string
		if len(a.structs) > 0 {
			for _, st := range usable(a.structs, machine) {
				names = append(names, st.String())
			}
		}
		rep, err := cluster.Run(context.Background(), cfg, cluster.Campaign{
			Workload:           a.workload,
			Machine:            &machine,
			Structures:         names,
			Injections:         a.injections,
			Seed:               a.seed,
			TargetInsts:        a.targetInsts,
			CheckpointInterval: a.ckInterval,
			Triage:             a.triage,
			TriageDetected:     a.triageDetected,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "reese-faults:", err)
			return 1
		}
		for ti := range rep.Trials {
			tg := rep.Trials[ti].Triage
			if tg == nil {
				continue
			}
			if a.triageDir != "" && len(tg.Trace) > 0 {
				path, werr := writeTrace(a.triageDir, machine.Name, rep.Trials[ti].Index, tg.Trace)
				if werr != nil {
					fmt.Fprintln(os.Stderr, "reese-faults:", werr)
					return 1
				}
				tg.TracePath = path
			}
		}
		reports = append(reports, *rep)
	}
	if a.jsonOut {
		return emitJSON(reports)
	}
	for i := range reports {
		fmt.Println(reports[i].Table())
		fmt.Printf("throughput: %d injections in %.2fs wall across %d workers (%.0f injections/s)\n\n",
			reports[i].Injected, reports[i].WallSeconds, len(a.workers), reports[i].InjectionsPerSec)
	}
	return 0
}

// writeTrace persists one triaged trial's Perfetto trace under dir,
// creating it if needed. The name carries the machine and the trial's
// global plan index, so the REESE and baseline halves of a comparison
// never collide.
func writeTrace(dir, machine string, index int, trace []byte) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	name := strings.Map(func(r rune) rune {
		switch r {
		case '/', '\\', ' ':
			return '-'
		}
		return r
	}, machine)
	path := filepath.Join(dir, fmt.Sprintf("%s-trial-%04d.trace.json", name, index))
	if err := os.WriteFile(path, trace, 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// parseStructures turns "result,fetch-pc" into fault structures.
func parseStructures(s string) ([]fault.Struct, error) {
	if s == "" {
		return nil, nil
	}
	var out []fault.Struct
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		st, ok := fault.ParseStruct(name)
		if !ok {
			var have []string
			for _, k := range fault.Structures(true) {
				have = append(have, k.String())
			}
			return nil, fmt.Errorf("unknown structure %q (have %s)", name, strings.Join(have, ", "))
		}
		out = append(out, st)
	}
	return out, nil
}

// usable drops RSQ-only structures when cfg has no R-stream Queue, so
// one -structures list works for both halves of the comparison.
func usable(structs []fault.Struct, cfg config.Machine) []fault.Struct {
	rsq := cfg.Reese.Enabled && cfg.Reese.Mode != config.ModeDupDispatch
	var out []fault.Struct
	for _, st := range structs {
		if st.NeedsRSQ() && !rsq {
			continue
		}
		out = append(out, st)
	}
	if len(out) == 0 {
		// Only RSQ structures were requested and this machine has none;
		// fall back to the result structure so the campaign is non-empty.
		out = []fault.Struct{fault.StructResult}
	}
	return out
}

func emitJSON(reports []harness.CampaignReport) int {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(reports); err != nil {
		fmt.Fprintln(os.Stderr, "reese-faults:", err)
		return 1
	}
	return 0
}

// runSmoke is the CI gate: a small seeded campaign on the REESE machine
// asserting the invariants the fault model promises — every injection
// classified (counts sum to injected), 100% coverage for result-target
// faults, and no in-sphere fault able to hang the machine.
func runSmoke(seed uint64, opt harness.Options) int {
	rep, err := harness.Campaign(harness.CampaignSpec{
		Workload:   "li",
		Machine:    config.Starting().WithReese(),
		Injections: 120,
		Seed:       seed,
	}, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reese-faults:", err)
		return 1
	}
	fmt.Println(rep.Table())
	failed := false
	if got := rep.Total(); got != rep.Injected {
		fmt.Fprintf(os.Stderr, "FAIL: outcome counts sum to %d, want %d injected\n", got, rep.Injected)
		failed = true
	}
	for _, s := range rep.Structures {
		if s.Structure == fault.StructResult.String() && s.Coverage < 1 {
			fmt.Fprintf(os.Stderr, "FAIL: result-structure coverage %.1f%%, want 100%%\n", s.Coverage*100)
			failed = true
		}
		if s.InSphere && s.SDC > 0 {
			fmt.Fprintf(os.Stderr, "FAIL: in-sphere structure %s let %d faults through as SDC\n", s.Structure, s.SDC)
			failed = true
		}
		if s.InSphere && s.Hang > 0 {
			fmt.Fprintf(os.Stderr, "FAIL: in-sphere structure %s hung %d runs\n", s.Structure, s.Hang)
			failed = true
		}
	}
	if failed {
		return 3
	}
	fmt.Println("smoke OK: all injections classified, result coverage 100%, no in-sphere SDC or hangs")
	return 0
}

// runTriageSmoke is the triage CI gate: a seeded campaign over
// structures known to produce out-of-sphere escapes (regfile, fetch-pc,
// mem-word faults the comparator cannot see), with -triage semantics
// hard-enabled. It asserts the triage contract end to end: every
// SDC/hang trial carries a triage record whose replay reproduced the
// original exactly, with a Perfetto trace containing the injection
// marker, and — for SDCs — a first divergent commit no earlier than the
// victim instruction.
func runTriageSmoke(seed uint64, opt harness.Options) int {
	rep, err := harness.Campaign(harness.CampaignSpec{
		Workload: "li",
		Machine:  config.Starting().WithReese(),
		Structures: []fault.Struct{
			fault.StructResult, fault.StructRegFile, fault.StructFetchPC, fault.StructMemWord,
		},
		Injections: 150,
		Seed:       seed,
		Triage:     true,
	}, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reese-faults:", err)
		return 1
	}
	fmt.Println(rep.Table())
	failed := false
	escapes := 0
	for i := range rep.Trials {
		t := &rep.Trials[i]
		if t.Outcome != "sdc" && t.Outcome != "hang" {
			continue
		}
		escapes++
		tg := t.Triage
		if tg == nil {
			fmt.Fprintf(os.Stderr, "FAIL: trial %d (%s, %s) escaped without a triage record\n", t.Index, t.Structure, t.Outcome)
			failed = true
			continue
		}
		if !tg.ReplayOK {
			fmt.Fprintf(os.Stderr, "FAIL: trial %d triage replay did not reproduce the original run\n", t.Index)
			failed = true
		}
		if len(tg.Trace) == 0 {
			fmt.Fprintf(os.Stderr, "FAIL: trial %d triage record has no trace artifact\n", t.Index)
			failed = true
		} else if !bytes.Contains(tg.Trace, []byte(`"FAULT`)) {
			fmt.Fprintf(os.Stderr, "FAIL: trial %d trace has no injection marker\n", t.Index)
			failed = true
		}
		if t.Outcome == "sdc" && tg.FirstDivergence == nil {
			fmt.Fprintf(os.Stderr, "FAIL: trial %d is an SDC with no first-divergence attribution\n", t.Index)
			failed = true
		}
		if d := tg.FirstDivergence; d != nil && d.Seq < t.Seq {
			fmt.Fprintf(os.Stderr, "FAIL: trial %d first divergence at seq %d precedes the victim seq %d\n", t.Index, d.Seq, t.Seq)
			failed = true
		}
		if t.Outcome == "hang" && tg.HangPeriod == 0 {
			fmt.Fprintf(os.Stderr, "FAIL: trial %d is a hang with no detected loop period\n", t.Index)
			failed = true
		}
	}
	if escapes == 0 {
		fmt.Fprintln(os.Stderr, "FAIL: campaign produced no escapes; the triage gate exercised nothing")
		failed = true
	}
	if rep.Triaged == 0 || rep.Diverged == 0 {
		fmt.Fprintf(os.Stderr, "FAIL: report triage totals empty (triaged %d, diverged %d)\n", rep.Triaged, rep.Diverged)
		failed = true
	}
	if failed {
		return 3
	}
	fmt.Printf("triage-smoke OK: %d escapes triaged (%d diverged), every trace carries injection and divergence markers\n",
		rep.Triaged, rep.Diverged)
	return 0
}

// memSmokeMachine is the -mem-smoke configuration: the REESE machine
// with caches shrunk (2 KB L1s, 16 KB SECDED L2) so the PRBS workload's
// resident region spills past L1 and exercises L2 and RAM.
func memSmokeMachine() config.Machine {
	cfg := config.Starting().WithReese()
	cfg.Name = cfg.Name + "+memsmoke"
	cfg.Memory.L1D = mem.CacheConfig{Name: "dl1", SizeBytes: 2 * 1024, BlockBytes: 32, Assoc: 2, HitLatency: 2}
	cfg.Memory.L1I = mem.CacheConfig{Name: "il1", SizeBytes: 2 * 1024, BlockBytes: 32, Assoc: 2, HitLatency: 2}
	cfg.Memory.L2 = mem.CacheConfig{Name: "ul2", SizeBytes: 16 * 1024, BlockBytes: 64, Assoc: 4, HitLatency: 12, ECC: true}
	return cfg
}

// runMemSmoke is the memory-hierarchy CI gate: a seeded 200-injection
// campaign on the PRBS self-checking workload over memory and pipeline
// structures, asserting (a) the SECDED L2 turns every effective
// single-bit L2 fault into a correction (zero SDC), (b) the six-way
// outcome taxonomy accounts for every injection, and (c) symptom-based
// localization attributes at least 90% of non-masked trials to the
// right plane.
func runMemSmoke(seed uint64, opt harness.Options) int {
	structs := []fault.Struct{
		fault.StructResult, fault.StructRSQOperand, fault.StructFetchPC, fault.StructRegFile,
		fault.StructMemWord, fault.StructL1DDirty, fault.StructL1DTag,
		fault.StructL2Line, fault.StructDTLB,
	}
	rep, err := harness.Campaign(harness.CampaignSpec{
		Workload:    "prbs",
		Machine:     memSmokeMachine(),
		Structures:  structs,
		Injections:  200,
		Seed:        seed,
		TargetInsts: 70_000,
	}, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reese-faults:", err)
		return 1
	}
	fmt.Println(rep.Table())
	fmt.Println(rep.LevelsTable())
	failed := false
	if got := rep.Total(); got != rep.Injected {
		fmt.Fprintf(os.Stderr, "FAIL: outcome counts sum to %d, want %d injected\n", got, rep.Injected)
		failed = true
	}
	// Single-bit L2 faults (bit < 32) must never escape a SECDED L2.
	for _, t := range rep.Trials {
		if t.Structure == fault.StructL2Line.String() && t.Bit < 32 && t.Outcome == "sdc" {
			fmt.Fprintf(os.Stderr, "FAIL: single-bit L2 fault (trial %d, bit %d) escaped ECC as SDC\n", t.Index, t.Bit)
			failed = true
		}
	}
	if rep.Localized == 0 {
		fmt.Fprintln(os.Stderr, "FAIL: no trials were localized")
		failed = true
	} else if rep.LocAccuracy < 0.90 {
		fmt.Fprintf(os.Stderr, "FAIL: localization accuracy %.1f%% over %d trials, want >= 90%%\n",
			rep.LocAccuracy*100, rep.Localized)
		failed = true
	}
	if failed {
		return 3
	}
	fmt.Printf("mem-smoke OK: %d injections classified six ways, ECC absorbed all single-bit L2 faults, localization %.1f%% over %d trials\n",
		rep.Injected, rep.LocAccuracy*100, rep.Localized)
	return 0
}

func runGrid(workloadName string, gridAt uint64, opt harness.Options) int {
	w := workloadName
	if w == "" {
		w = "gcc"
	}
	// Say which workload the grid runs on — an unset -workload used to
	// silently mean gcc.
	fmt.Printf("bit grid: workload %s, injection at instruction %d\n", w, gridAt)
	cells, err := harness.BitGrid(config.Starting().WithReese(), w, gridAt, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reese-faults:", err)
		return 1
	}
	fmt.Println(harness.BitGridTable(cells))
	missed, notFired := 0, 0
	for _, c := range cells {
		switch {
		case c.NotFired:
			notFired++
		case !c.Detected:
			missed++
		}
	}
	if notFired > 0 {
		fmt.Fprintf(os.Stderr, "reese-faults: %d/32 injections never fired (is -grid-at %d beyond the program's end?)\n", notFired, gridAt)
		return 3
	}
	fmt.Printf("%d/32 bit positions detected\n", 32-missed)
	if missed > 0 {
		return 3
	}
	return 0
}
