package chaos

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"
)

// newEchoServer answers every request with a fixed body.
func newEchoServer(t *testing.T, body string) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, body)
	}))
	t.Cleanup(ts.Close)
	return ts
}

func get(t *testing.T, c *http.Client, url string) (int, string, http.Header, error) {
	t.Helper()
	resp, err := c.Get(url)
	if err != nil {
		return 0, "", nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, string(b), resp.Header, err
	}
	return resp.StatusCode, string(b), resp.Header, nil
}

// A zero-config transport must be transparent.
func TestTransportTransparentWhenDisabled(t *testing.T) {
	ts := newEchoServer(t, "hello")
	tr := NewTransport(TransportConfig{Seed: 1})
	c := &http.Client{Transport: tr}
	for i := 0; i < 20; i++ {
		code, body, _, err := get(t, c, ts.URL)
		if err != nil || code != http.StatusOK || body != "hello" {
			t.Fatalf("request %d: code %d body %q err %v", i, code, body, err)
		}
	}
	if n := tr.Injected(); n != 0 {
		t.Fatalf("transparent transport injected %d faults", n)
	}
}

// Equal seeds must produce equal fault schedules over a serial request
// sequence — the reproducibility contract.
func TestTransportDeterministicPerSeed(t *testing.T) {
	ts := newEchoServer(t, "payload-payload-payload")
	schedule := func(seed int64) []string {
		tr := NewTransport(TransportConfig{
			Seed: seed, DropProb: 0.2, Err5xxProb: 0.2, TruncateProb: 0.2, CorruptProb: 0.2,
		})
		c := &http.Client{Transport: tr}
		var out []string
		for i := 0; i < 40; i++ {
			code, body, _, err := get(t, c, ts.URL)
			switch {
			case err != nil:
				out = append(out, "drop")
			case code == http.StatusServiceUnavailable:
				out = append(out, "503")
			default:
				out = append(out, "ok:"+body)
			}
		}
		return out
	}
	a, b := schedule(42), schedule(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d differs across same-seed runs: %q vs %q", i, a[i], b[i])
		}
	}
	diff := schedule(43)
	same := true
	for i := range a {
		if a[i] != diff[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 42 and 43 produced identical 40-request schedules")
	}
}

// Synthesized 503s must carry Retry-After in both wire forms across a
// burst: delta-seconds and HTTP-date.
func TestTransport503BurstAlternatesRetryAfterForms(t *testing.T) {
	ts := newEchoServer(t, "x")
	tr := NewTransport(TransportConfig{Seed: 7, Err5xxProb: 1})
	c := &http.Client{Transport: tr}
	var secForm, dateForm int
	for i := 0; i < 10; i++ {
		code, _, h, err := get(t, c, ts.URL)
		if err != nil || code != http.StatusServiceUnavailable {
			t.Fatalf("request %d: code %d err %v, want synthesized 503", i, code, err)
		}
		ra := h.Get("Retry-After")
		if ra == "" {
			t.Fatalf("request %d: 503 without Retry-After", i)
		}
		if _, perr := strconv.Atoi(ra); perr == nil {
			secForm++
		} else if _, perr := http.ParseTime(ra); perr == nil {
			dateForm++
		} else {
			t.Fatalf("request %d: unparseable Retry-After %q", i, ra)
		}
	}
	if secForm == 0 || dateForm == 0 {
		t.Fatalf("burst used only one Retry-After form (%d seconds, %d dates)", secForm, dateForm)
	}
	if tr.Err5xx() != 10 {
		t.Errorf("counter says %d injected 503s, want 10", tr.Err5xx())
	}
}

// Corruption must change the body; truncation must shorten it — and
// both must be counted.
func TestTransportCorruptsAndTruncates(t *testing.T) {
	const body = "0123456789abcdef0123456789abcdef"
	ts := newEchoServer(t, body)

	tr := NewTransport(TransportConfig{Seed: 3, CorruptProb: 1})
	c := &http.Client{Transport: tr}
	_, got, _, err := get(t, c, ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if got == body {
		t.Error("corrupt roll left the body intact")
	}
	if len(got) != len(body) {
		t.Errorf("corruption changed the length: %d -> %d", len(body), len(got))
	}
	if tr.Corrupted() != 1 {
		t.Errorf("corrupted counter %d, want 1", tr.Corrupted())
	}

	tr = NewTransport(TransportConfig{Seed: 3, TruncateProb: 1})
	c = &http.Client{Transport: tr}
	_, got, _, err = get(t, c, ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) >= len(body) {
		t.Errorf("truncate roll kept %d of %d bytes", len(got), len(body))
	}
	if tr.Truncated() != 1 {
		t.Errorf("truncated counter %d, want 1", tr.Truncated())
	}
}

// A partition must fail every request to the host inside its window,
// heal on schedule, and never touch other hosts.
func TestTransportPartitionWindow(t *testing.T) {
	tsA := newEchoServer(t, "a")
	tsB := newEchoServer(t, "b")
	tr := NewTransport(TransportConfig{Seed: 1})
	c := &http.Client{Transport: tr}

	hostA := tsA.Listener.Addr().String()
	tr.PartitionFor(hostA, 200*time.Millisecond)
	if _, _, _, err := get(t, c, tsA.URL); err == nil {
		t.Fatal("partitioned host answered")
	}
	if _, body, _, err := get(t, c, tsB.URL); err != nil || body != "b" {
		t.Fatalf("partition of A leaked onto B: body %q err %v", body, err)
	}
	if tr.Partitioned() == 0 {
		t.Error("partition denial not counted")
	}

	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, body, _, err := get(t, c, tsA.URL); err == nil && body == "a" {
			break // healed
		}
		if time.Now().After(deadline) {
			t.Fatal("partition never healed")
		}
		time.Sleep(20 * time.Millisecond)
	}

	tr.PartitionFor(hostA, time.Minute)
	tr.Heal(hostA)
	if _, _, _, err := get(t, c, tsA.URL); err != nil {
		t.Fatalf("healed host still partitioned: %v", err)
	}
}
