// Command reese-serve runs the REESE simulator as a long-lived HTTP
// service: simulations, paper figures, and fault campaigns become
// asynchronous jobs with a content-addressed result cache and
// Prometheus metrics.
//
// Usage:
//
//	reese-serve                       # listen on :8321, no durability
//	reese-serve -journal /var/lib/reese/jobs.wal -workers 4 -queue 128
//
// With -journal set, accepted jobs survive a crash: the write-ahead
// journal is replayed at startup and unfinished work is re-enqueued.
// Worker panics, hung simulations, and per-attempt deadline expiries
// are contained and retried (-max-retries) with exponential backoff.
//
// Quick check:
//
//	curl -s localhost:8321/healthz
//	curl -s -X POST localhost:8321/v1/figure?wait=60s -d '{"figure":"2","insts":50000}'
//	curl -s localhost:8321/metrics | grep reese_serve
//
// SIGTERM/SIGINT drain gracefully: intake stops (new submits get 503),
// in-flight jobs get -drain to finish, then stragglers are cancelled
// through the context threaded into the simulator cycle loop.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux, served only on -debug-addr
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"reese/internal/cluster"
	"reese/internal/server"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr       = flag.String("addr", ":8321", "listen address")
		workers    = flag.Int("workers", 2, "concurrent simulation jobs (each uses GOMAXPROCS/workers grid parallelism)")
		queue      = flag.Int("queue", 64, "bounded job-queue depth (submits beyond it get 503 + Retry-After)")
		cache      = flag.Int("cache", 256, "result-cache entries (-1 disables caching)")
		maxInsts   = flag.Uint64("max-insts", 50_000_000, "per-simulation committed-instruction ceiling")
		maxWait    = flag.Duration("max-wait", 2*time.Minute, "cap on any ?wait= duration")
		drain      = flag.Duration("drain", 30*time.Second, "grace period for in-flight jobs on shutdown")
		journal    = flag.String("journal", "", "crash-safe job journal path (empty disables durability)")
		jobTimeout = flag.Duration("job-timeout", 10*time.Minute, "default per-attempt deadline when ?timeout= is absent")
		maxRetries = flag.Int("max-retries", 2, "retries per job after transient failures (panic, deadline, watchdog kill)")
		stall      = flag.Duration("watchdog-stall", time.Minute, "kill attempts making no progress for this long (negative disables)")
		logJSON    = flag.Bool("log-json", false, "emit logs as JSON instead of text")
		logLevel   = flag.String("log-level", "info", "minimum log level (debug, info, warn, error)")
		debugAddr  = flag.String("debug-addr", "", "serve net/http/pprof (/debug/pprof/) on this address (empty disables)")
		clusterStr = flag.String("cluster-workers", "", "comma-separated worker replica URLs; enables the coordinator endpoint POST /v1/cluster/faults")
		shardSize  = flag.Int("cluster-shard-size", 0, "trials per shard in coordinator mode (0 = auto)")
		clusterWAL = flag.String("cluster-wal", "", "coordinator write-ahead log directory; campaigns journaled here survive a coordinator crash (empty disables)")
		resume     = flag.Bool("resume", false, "on startup, finish any campaigns left in -cluster-wal by a previous coordinator")
	)
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "reese-serve: bad -log-level %q: %v\n", *logLevel, err)
		return 1
	}
	opts := &slog.HandlerOptions{Level: level}
	var handler slog.Handler = slog.NewTextHandler(os.Stderr, opts)
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, opts)
	}
	log := slog.New(handler)

	limits := server.DefaultLimits()
	limits.MaxInsts = *maxInsts
	srv, err := server.New(server.Config{
		Workers:       *workers,
		QueueDepth:    *queue,
		CacheEntries:  *cache,
		MaxWait:       *maxWait,
		Limits:        limits,
		Logger:        log,
		JournalPath:   *journal,
		JobTimeout:    *jobTimeout,
		MaxRetries:    *maxRetries,
		WatchdogStall: *stall,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "reese-serve:", err)
		return 1
	}

	// Coordinator mode: this replica additionally shards cluster
	// campaigns across the named workers (itself included, if listed)
	// and streams merged progress from POST /v1/cluster/faults.
	if *clusterStr != "" {
		var workers []string
		for _, w := range strings.Split(*clusterStr, ",") {
			if w = strings.TrimSpace(w); w != "" {
				workers = append(workers, strings.TrimRight(w, "/"))
			}
		}
		clusterCfg := cluster.Config{
			Workers:   workers,
			ShardSize: *shardSize,
			Metrics:   srv.ShardMetrics(),
			Logger:    log,
			WALDir:    *clusterWAL,
		}
		srv.Mount("POST /v1/cluster/faults", cluster.Handler(clusterCfg))
		log.Info("cluster coordinator enabled", "workers", workers, "shard_size", *shardSize, "wal", *clusterWAL)

		// -resume finishes campaigns a previous coordinator left in the
		// WAL: their clients are gone, so the merged reports land next to
		// the journals as <token>.report.json.
		if *resume && *clusterWAL != "" {
			go func() {
				for _, rc := range cluster.ResumeCampaigns(context.Background(), clusterCfg) {
					if rc.Err != nil {
						log.Warn("cluster: resume failed", "token", rc.Token, "err", rc.Err)
						continue
					}
					log.Info("cluster: campaign resumed to completion", "token", rc.Token, "report", rc.ReportPath)
				}
			}()
		}
	} else if *resume {
		fmt.Fprintln(os.Stderr, "reese-serve: -resume requires -cluster-workers and -cluster-wal")
		return 1
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// The pprof endpoints live on their own listener so profiling access
	// can be firewalled separately from the API (bind it to localhost).
	if *debugAddr != "" {
		dbg := &http.Server{
			Addr:              *debugAddr,
			Handler:           http.DefaultServeMux,
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			log.Info("debug server listening", "addr", *debugAddr, "endpoints", "/debug/pprof/")
			if err := dbg.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Warn("debug server", "err", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		log.Info("reese-serve listening", "addr", *addr, "workers", *workers, "queue", *queue, "cache", *cache)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		// Listen failed before any signal (port in use, bad address).
		fmt.Fprintln(os.Stderr, "reese-serve:", err)
		return 1
	case <-ctx.Done():
	}

	log.Info("signal received; draining", "grace", drain.String())
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Stop accepting HTTP first, then drain the job queue.
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		log.Warn("http shutdown", "err", err)
	}
	if err := srv.Shutdown(drainCtx); err != nil {
		log.Warn("jobs cancelled before finishing", "err", err)
		return 1
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "reese-serve:", err)
		return 1
	}
	log.Info("reese-serve: drained cleanly")
	return 0
}
