package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"reese/internal/chaos"
	"reese/internal/config"
	"reese/internal/harness"
	"reese/internal/server"
)

// The crash-safety property, end to end — this is the
// `make cluster-chaos-smoke` gate. A 2-worker gcc campaign runs under
// a seeded chaos transport (drops, latency, 503 bursts, truncated and
// bit-flipped response bodies) plus a timed partition of one worker.
// Mid-campaign the coordinator is killed (context canceled after at
// least two shards completed). A second coordinator with the same
// resume token and the same chaos then runs the campaign to the end.
//
// The property: the resumed run replays the completed shards from the
// WAL (campaigns-resumed and shards-restored counters say so, via the
// real Prometheus registry) and the merged report, per-trial JSONL,
// and rendered table are byte-identical to the fault-free
// single-process run.
func TestClusterChaosResume(t *testing.T) {
	machine := config.Starting().WithReese()
	const injections = 40
	single, err := harness.Campaign(harness.CampaignSpec{
		Workload: "gcc", Machine: machine, Injections: injections, Seed: 13,
	}, harness.Options{Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(stripWall(single))
	if err != nil {
		t.Fatal(err)
	}
	var wantJSONL bytes.Buffer
	if err := single.WriteJSONL(&wantJSONL); err != nil {
		t.Fatal(err)
	}

	workers := newWorkers(t, 2)
	walDir := t.TempDir()

	// The real server-side metrics registry, so the test asserts the
	// wire-visible counter names, not just the Hooks interface.
	metrics := server.NewMetrics()
	shardMetrics := server.NewShardMetrics(metrics)
	counter := func(name string) float64 {
		var b strings.Builder
		metrics.Render(&b)
		var total float64
		for _, line := range strings.Split(b.String(), "\n") {
			if !strings.HasPrefix(line, name) {
				continue
			}
			fields := strings.Fields(line)
			if len(fields) == 2 {
				if v, err := strconv.ParseFloat(fields[1], 64); err == nil {
					total += v
				}
			}
		}
		return total
	}

	newChaosClient := func(seed int64) (*chaos.Transport, *http.Client) {
		tr := chaos.NewTransport(chaos.TransportConfig{
			Seed:         seed,
			DropProb:     0.05,
			LatencyProb:  0.10,
			MaxLatency:   20 * time.Millisecond,
			Err5xxProb:   0.05,
			TruncateProb: 0.03,
			CorruptProb:  0.03,
		})
		return tr, &http.Client{Transport: tr, Timeout: 30 * time.Second}
	}
	baseConfig := func(client *http.Client) Config {
		cfg := testClusterConfig(workers)
		cfg.Client = client
		cfg.WALDir = walDir
		cfg.Metrics = shardMetrics
		cfg.MaxAttempts = 10_000 // chaos churn must exhaust nothing
		cfg.RetryPause = 10 * time.Millisecond
		cfg.ProbationBase = 10 * time.Millisecond
		cfg.ProbationMax = 50 * time.Millisecond
		cfg.AllLostTimeout = time.Minute
		return cfg
	}
	campaign := Campaign{
		Workload: "gcc", Machine: &machine, Injections: injections,
		Seed: 13, ShardSize: 5, ResumeToken: "chaos-resume-smoke",
	}

	// Run 1: chaos + a timed partition of worker B, killed (context
	// canceled — the in-process equivalent of kill -9 on the
	// coordinator; the WAL's fsync discipline is what makes the two the
	// same) once at least two shards have durably completed.
	tr1, client1 := newChaosClient(1)
	tr1.PartitionFor(strings.TrimPrefix(workers[1], "http://"), 300*time.Millisecond)
	ctx1, cancel1 := context.WithCancel(context.Background())
	defer cancel1()
	var mu sync.Mutex
	completed1 := 0
	cfg1 := baseConfig(client1)
	cfg1.OnEvent = func(ev Event) {
		if ev.Type != "completed" {
			return
		}
		mu.Lock()
		completed1++
		if completed1 == 2 {
			cancel1()
		}
		mu.Unlock()
	}
	_, err = Run(ctx1, cfg1, campaign)
	mu.Lock()
	got1 := completed1
	mu.Unlock()
	if err == nil {
		t.Fatal("killed run returned no error; the cancel landed after the campaign finished and nothing tests resume")
	}
	if got1 < 2 {
		t.Fatalf("killed run completed %d shards before dying, want >= 2", got1)
	}
	if matches, _ := filepath.Glob(filepath.Join(walDir, "*.wal")); len(matches) != 1 {
		t.Fatalf("killed run left %d WAL files, want 1", len(matches))
	}

	// Run 2: fresh coordinator, same token, chaos still on (different
	// seed — a restart does not replay the same network weather).
	_, client2 := newChaosClient(2)
	restoredEvents, assignedFresh := map[int]bool{}, map[int]bool{}
	cfg2 := baseConfig(client2)
	cfg2.OnEvent = func(ev Event) {
		mu.Lock()
		switch ev.Type {
		case "restored":
			restoredEvents[ev.Shard] = true
		case "assigned", "reassigned":
			assignedFresh[ev.Shard] = true
		}
		mu.Unlock()
	}
	resumedBefore := counter("reese_serve_campaigns_resumed_total")
	restoredBefore := counter("reese_serve_shards_restored_total")
	rep, err := Run(context.Background(), cfg2, campaign)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}

	// The resume must be visible in the wire metrics...
	if got := counter("reese_serve_campaigns_resumed_total") - resumedBefore; got != 1 {
		t.Errorf("reese_serve_campaigns_resumed_total rose by %v, want 1", got)
	}
	restored := counter("reese_serve_shards_restored_total") - restoredBefore
	if int(restored) < got1 {
		t.Errorf("reese_serve_shards_restored_total rose by %v, want >= %d (the durably completed shards)", restored, got1)
	}
	// ...and in the shard ledger: restored shards come from the WAL,
	// only the rest re-execute, and the two sets tile the plan.
	mu.Lock()
	for shard := range restoredEvents {
		if assignedFresh[shard] {
			t.Errorf("shard %d was restored from the WAL and still re-executed", shard)
		}
	}
	totalShards := (injections + 4) / 5
	if len(restoredEvents) == 0 {
		t.Error("no restored events: the resumed run re-executed everything")
	}
	if len(restoredEvents)+len(assignedFresh) < totalShards {
		t.Errorf("restored (%d) + fresh (%d) cover fewer than %d shards", len(restoredEvents), len(assignedFresh), totalShards)
	}
	mu.Unlock()

	// The property itself: byte-identical to the fault-free run.
	gotJSON, err := json.Marshal(stripWall(rep))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Errorf("resumed chaos report differs from fault-free single-process run:\n got %s\nwant %s", gotJSON, wantJSON)
	}
	var gotJSONL bytes.Buffer
	if err := rep.WriteJSONL(&gotJSONL); err != nil {
		t.Fatal(err)
	}
	if gotJSONL.String() != wantJSONL.String() {
		t.Error("resumed chaos JSONL differs from fault-free single-process run")
	}
	if rep.Table() != single.Table() {
		t.Error("resumed chaos table differs from fault-free single-process run")
	}

	// Success must clean the journal: nothing left to resume.
	if matches, _ := filepath.Glob(filepath.Join(walDir, "*.wal")); len(matches) != 0 {
		t.Errorf("finished campaign left WAL files behind: %v", matches)
	}
}
