package workload

import (
	"fmt"

	"reese/internal/asm"
	"reese/internal/program"
)

// buildGcc models gcc: a tokenizer feeding a hash table. Every token is
// hashed (djb2 over 8 bytes) and looked up with linear probing; misses
// insert, hits bump a counter. The probe loop's branches depend on data,
// giving the irregular, hard-to-predict control flow gcc shows, with a
// moderate load fraction and almost no multiplies.
func buildGcc(iters int) (*program.Program, error) {
	const nNames = 96 // distinct 8-byte tokens
	g := newPRNG(0xC0FFEE)
	src := fmt.Sprintf(`
	; gcc stand-in: token hashing with linear probing.
main:
	li r20, %d            ; outer iterations
	la r21, symtab
	la r22, names
	li r23, 0             ; checksum / hit counter
outer:
	li r10, 0             ; token index
token_loop:
	; hash 8 bytes of token r10 (djb2)
	slli r1, r10, 3
	add r1, r1, r22
	li r2, 5381
	li r3, 8
hash_loop:
	lbu r4, 0(r1)
	slli r5, r2, 5
	add r2, r5, r2
	add r2, r2, r4
	addi r1, r1, 1
	addi r3, r3, -1
	bne r3, r0, hash_loop
	; never let the hash be zero (zero marks an empty slot)
	ori r2, r2, 1
	; linear probe of a 256-entry table
	andi r5, r2, 255
probe:
	slli r6, r5, 2
	add r6, r6, r21
	lw r7, 0(r6)
	beq r7, r0, insert
	beq r7, r2, found
	addi r5, r5, 1
	andi r5, r5, 255
	j probe
insert:
	sw r2, 0(r6)
	addi r23, r23, 3
	j next_token
found:
	; "semantic action": mix the hash into the checksum, branchily
	andi r8, r2, 7
	beq r8, r0, act_a
	andi r9, r2, 3
	beq r9, r0, act_b
	addi r23, r23, 1
	j next_token
act_a:
	xor r23, r23, r2
	j next_token
act_b:
	add r23, r23, r2
next_token:
	addi r10, r10, 1
	slti r11, r10, %d
	bne r11, r0, token_loop
	addi r20, r20, -1
	bne r20, r0, outer
%s
.data
symtab:
	.space 1024
names:
%s`, iters, nNames, emitChecksum("r23"), byteList(g, nNames*8, 33, 126))
	return asm.Assemble("gcc", src)
}
