module reese

go 1.22
