// Command benchjson converts `go test -bench` output on stdin into a
// JSON benchmark record and appends it to a tracking file, so the
// repository's performance trajectory accumulates across commits:
//
//	go test -run '^$' -bench BenchmarkSimThroughput -benchmem . | \
//	    go run ./cmd/benchjson -out BENCH_pipeline.json -label my-change
//
// The output file holds {"entries": [...]}; each entry is one benchmark
// line with its standard metrics (ns/op, B/op, allocs/op) and any
// custom b.ReportMetric values (e.g. sim-insts/s) keyed by unit.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Entry is one parsed benchmark result line.
type Entry struct {
	Label   string             `json:"label,omitempty"`
	Name    string             `json:"name"`
	Iters   int64              `json:"iters"`
	Metrics map[string]float64 `json:"metrics"`
}

// File is the tracking file's shape.
type File struct {
	Entries []Entry `json:"entries"`
}

func main() {
	var (
		out   = flag.String("out", "BENCH_pipeline.json", "tracking file to append to")
		label = flag.String("label", "", "label stored with each entry (e.g. a change description)")
	)
	flag.Parse()
	if err := run(*out, *label); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(out, label string) error {
	var f File
	if data, err := os.ReadFile(out); err == nil {
		if err := json.Unmarshal(data, &f); err != nil {
			return fmt.Errorf("%s: %w", out, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}

	sc := bufio.NewScanner(os.Stdin)
	added := 0
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass the output through for the terminal
		e, ok := parseLine(line)
		if !ok {
			continue
		}
		e.Label = label
		f.Entries = append(f.Entries, e)
		added++
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if added == 0 {
		return fmt.Errorf("no benchmark lines found on stdin")
	}
	data, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchjson: appended %d entries to %s\n", added, out)
	return nil
}

// parseLine parses one result line of `go test -bench` output:
//
//	BenchmarkName-8   123   4567 ns/op   89 B/op   2 allocs/op   3.14 custom-unit
//
// i.e. name, iteration count, then value/unit pairs.
func parseLine(line string) (Entry, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Entry{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Entry{}, false
	}
	name := fields[0]
	if maxProcsSuffix(name) > 0 {
		name = name[:strings.LastIndexByte(name, '-')]
	}
	e := Entry{
		Name:    name,
		Iters:   iters,
		Metrics: make(map[string]float64),
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Entry{}, false
		}
		e.Metrics[fields[i+1]] = v
	}
	if len(e.Metrics) == 0 {
		return Entry{}, false
	}
	return e, true
}

// maxProcsSuffix extracts the trailing -N GOMAXPROCS marker from a
// benchmark name (0 when absent).
func maxProcsSuffix(name string) int {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return 0
	}
	n, err := strconv.Atoi(name[i+1:])
	if err != nil {
		return 0
	}
	return n
}
