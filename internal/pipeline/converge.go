package pipeline

// Convergence detection for checkpoint/fork fault replay (snapshot.go):
// ConvergedWith decides whether a forked trial has returned to the
// golden run's state at a commit boundary (so the rest of the run can
// be spliced from the golden result instead of simulated), and the hang
// fast-forward proves a wedged machine repeats a finite cycle of states
// forever and jumps straight to the watchdog threshold.

import (
	"reese/internal/bpred"
	"reese/internal/emu"
	"reese/internal/ruu"
)

// hangProbeMin is the commit-drought depth at which periodicity probing
// starts; the probe is refreshed at every power-of-two depth after it,
// so a loop of period p is caught once the probe is at least p cycles
// old (Brent's cycle-finding). Real stalls (a full window behind an L2
// miss) resolve in hundreds of cycles, so probing from 1024 keeps the
// clone and compare cost off every path that will ever commit again.
const hangProbeMin = 1024

func relTime(v, now uint64) uint64 {
	if v <= now {
		return 0
	}
	return v - now
}

// oracleEqual compares the oracles' scalar architectural state exactly
// (memory is the caller's job — trial memory is compared page-wise
// against the golden boundary image by the campaign, and the hang probe
// needs no memory check because an equal instruction count means the
// oracle — the only memory writer — did not step). The store digest is
// required equal, not folded: an oracle whose store history diverged
// and reconverged is vanishingly rare and simply falls back to full
// simulation.
func oracleEqual(a, b *emu.Machine) bool {
	if a.PC() != b.PC() || a.InstCount() != b.InstCount() || a.Halted() != b.Halted() {
		return false
	}
	if a.RegFile() != b.RegFile() || a.FRegFile() != b.FRegFile() {
		return false
	}
	if a.StoreHash() != b.StoreHash() || a.StoreCount() != b.StoreCount() {
		return false
	}
	ao, bo := a.Output(), b.Output()
	if len(ao) != len(bo) {
		return false
	}
	for i := range ao {
		if ao[i] != bo[i] {
			return false
		}
	}
	return true
}

// ConvergedWith reports whether this machine's microarchitectural and
// oracle state matches g's under sequence/time normalization — i.e.
// whether both machines provably behave identically from their
// respective "now" onward. Shadow commit state (registers, store
// digest) is deliberately excluded: it is output-only, and splicing
// folds it separately. Statistics counters are excluded likewise.
//
// Memory is NOT compared here; callers must establish it separately.
func (c *CPU) ConvergedWith(g *CPU) bool { return c.convergedAt(g, 0, nil) }

// convergedAt is ConvergedWith with two refinements. droughtDelta is an
// expected commit-drought skew: c's distance into its current no-commit
// stretch must exceed g's by exactly that much. Boundary splicing uses
// 0 (both machines must hang at the same relative time, or not at all);
// the hang probe uses the candidate period p, because it compares a
// machine against its own state p cycles earlier, mid-drought.
//
// predReads, when non-nil, bounds the branch-predictor comparison to
// the pattern-table entries the golden suffix is known to consult
// (bpred.ReadSet; see readset.go for the soundness argument). Recovery
// replay retrains the tables, so exact equality would reject most
// recovered trials over counters that are never read again. A nil set —
// or a predictor that cannot log reads — compares exactly.
func (c *CPU) convergedAt(g *CPU, droughtDelta uint64, predReads *bpred.ReadSet) bool {
	// A stuck-unit fault makes past unit assignments behaviorally
	// relevant (they are excluded from the entry comparison), so refuse
	// outright.
	if c.stuck != nil || g.stuck != nil {
		return false
	}
	if c.dupMode != g.dupMode || c.hangLimit != g.hangLimit {
		return false
	}
	if c.committed != g.committed || c.done != g.done || c.permError != g.permError ||
		c.hanged != g.hanged || c.oracleDone != g.oracleDone {
		return false
	}
	// Watchdog window: the distance into the current commit drought must
	// match (up to the caller's expected skew) or the two machines hang
	// at different relative times.
	if c.lastCommitted != g.lastCommitted ||
		c.cycle-c.lastCommitCycle != g.cycle-g.lastCommitCycle+droughtDelta {
		return false
	}
	// Front end.
	if c.fetchStalled != g.fetchStalled ||
		relTime(c.fetchReadyAt, c.cycle) != relTime(g.fetchReadyAt, g.cycle) {
		return false
	}
	if c.wrongPath != g.wrongPath {
		return false
	}
	if c.wrongPath {
		if c.wpPC != g.wpPC || c.wpHistSnap != g.wpHistSnap || c.wpMarked != g.wpMarked {
			return false
		}
		if c.wpMarked && c.lsq.NormSeq(c.wpLsqMark) != g.lsq.NormSeq(g.wpLsqMark) {
			return false
		}
	}
	if c.hasPending != g.hasPending || (c.hasPending && c.pending != g.pending) {
		return false
	}
	if c.hasWPPending != g.hasWPPending || (c.hasWPPending && c.wpPending != g.wpPending) {
		return false
	}
	if c.fetchLen != g.fetchLen {
		return false
	}
	for i := 0; i < c.fetchLen; i++ {
		a, b := c.fetchQAt(i), g.fetchQAt(i)
		if a.tr != b.tr || a.mispredicted != b.mispredicted ||
			a.histSnap != b.histSnap || a.bogus != b.bogus {
			return false
		}
		// fetchedAt is observability backdating only, always in the past:
		// it normalizes to zero on both sides.
	}
	if len(c.replayQ)-c.replayHead != len(g.replayQ)-g.replayHead {
		return false
	}
	for i := 0; i < len(c.replayQ)-c.replayHead; i++ {
		if c.replayQ[c.replayHead+i] != g.replayQ[g.replayHead+i] {
			return false
		}
	}
	if c.rLive != g.rLive {
		return false
	}
	// Oracle plane.
	if !oracleEqual(c.oracle, g.oracle) {
		return false
	}
	// Predictors and timing structures.
	if rl, ok := c.pred.(bpred.ReadLogger); predReads != nil && ok {
		if !rl.StateEqualOn(g.pred, predReads) {
			return false
		}
	} else if !c.pred.StateEqual(g.pred) {
		return false
	}
	if !c.btb.StateEqualRanked(g.btb) || !c.ras.StateEqual(g.ras) {
		return false
	}
	if !c.hier.StateEqualRanked(g.hier) {
		return false
	}
	if !c.pool.StateEqualAt(g.pool, c.cycle, g.cycle) {
		return false
	}
	// Window state.
	if !ruu.Converged(c.ruu, g.ruu, c.lsq, g.lsq, c.cycle, g.cycle) {
		return false
	}
	if (c.rsq == nil) != (g.rsq == nil) {
		return false
	}
	if c.rsq != nil {
		if !c.rsq.StateConverged(g.rsq, c.cycle, g.cycle, c.lsq.NormSeq, g.lsq.NormSeq) {
			return false
		}
		// Under partial re-execution the skip decision of FUTURE enqueues
		// depends on absolute sequence numbers, so relative convergence
		// is not enough: require exact alignment.
		if c.rsq.Every() > 1 && c.ruu.NextSeq() != g.ruu.NextSeq() {
			return false
		}
	}
	return true
}

// hangCounters is the per-cycle accumulator snapshot the hang
// fast-forward extrapolates: every counter that feeds Result and can
// advance during a wedged cycle.
type hangCounters struct {
	fetchICacheStallCycles uint64
	fetchBranchStallCycles uint64
	dispatchRUUFull        uint64
	dispatchLSQFull        uint64
	branches               uint64
	mispredicts            uint64
	wpFetched              uint64
	wpSquashed             uint64
	rsqOccSum              uint64
	injected               uint64
	detected               uint64
	silent                 uint64
	recoveries             uint64
}

func (c *CPU) hangCounters() hangCounters {
	return hangCounters{
		fetchICacheStallCycles: c.fetchICacheStallCycles,
		fetchBranchStallCycles: c.fetchBranchStallCycles,
		dispatchRUUFull:        c.dispatchRUUFull,
		dispatchLSQFull:        c.dispatchLSQFull,
		branches:               c.branches,
		mispredicts:            c.mispredicts,
		wpFetched:              c.wpFetched,
		wpSquashed:             c.wpSquashed,
		rsqOccSum:              c.rsqOccSum,
		injected:               c.injected,
		detected:               c.detected,
		silent:                 c.silent,
		recoveries:             c.recoveries,
	}
}

// tryHangFastForward checks whether the machine has become periodic —
// behaviorally identical to the probe snapshot g taken p = c.cycle -
// g.cycle cycles earlier in the same commit drought — and if so jumps
// the clock to the exact cycle at which the no-commit watchdog fires.
// Sound by induction: a deterministic machine whose complete behavioral
// state repeats after p cycles repeats it forever, so it can never
// commit again and the watchdog verdict is already decided.
//
// Two hang shapes occur in practice: a truly wedged machine (fetch PC
// off the text segment, oracle stream exhausted) reaches a period-1
// fixed point, while a REESE detection/recovery livelock — recovery
// restores clean state, replay re-derives the corruption, detection
// fires again — cycles with the period of the whole recovery loop.
// Holding one probe and comparing every subsequent cycle catches any
// period up to the probe's age (Brent's cycle-finding).
//
// Per-cycle accumulators (stall ledger, cache/FU stats, fault and
// recovery counters, latency histogram) are extrapolated over the k =
// floor((target-now)/p) whole periods that fit before the watchdog;
// the final sub-period tail (< p cycles) is attributed as if the loop
// stopped at its last whole period. The watchdog cycle count itself,
// the frozen commit state, and the hang verdict are exact.
func (c *CPU) tryHangFastForward(g *CPU) bool {
	if c.hanged || c.done || c.permError || c.committed != g.committed {
		return false
	}
	p := c.cycle - g.cycle
	if p == 0 {
		return false
	}
	// Detection bookkeeping that is behavioral (feeds recovery
	// decisions) must match at the same phase of the loop.
	if c.lastBadLive != g.lastBadLive || c.lastBadPC != g.lastBadPC {
		return false
	}
	if !c.convergedAt(g, p, nil) {
		return false
	}
	target := c.lastCommitCycle + c.hangLimit
	if target <= c.cycle {
		return false
	}
	k := (target - c.cycle) / p
	if k == 0 {
		return false
	}

	// Extrapolate accumulators: cur + (cur - prev) * k, where cur - prev
	// is exactly one period's growth.
	cur, prev := c.hangCounters(), g.hangCounters()
	c.fetchICacheStallCycles += (cur.fetchICacheStallCycles - prev.fetchICacheStallCycles) * k
	c.fetchBranchStallCycles += (cur.fetchBranchStallCycles - prev.fetchBranchStallCycles) * k
	c.dispatchRUUFull += (cur.dispatchRUUFull - prev.dispatchRUUFull) * k
	c.dispatchLSQFull += (cur.dispatchLSQFull - prev.dispatchLSQFull) * k
	c.branches += (cur.branches - prev.branches) * k
	c.mispredicts += (cur.mispredicts - prev.mispredicts) * k
	c.wpFetched += (cur.wpFetched - prev.wpFetched) * k
	c.wpSquashed += (cur.wpSquashed - prev.wpSquashed) * k
	c.rsqOccSum += (cur.rsqOccSum - prev.rsqOccSum) * k
	c.injected += (cur.injected - prev.injected) * k
	c.detected += (cur.detected - prev.detected) * k
	c.silent += (cur.silent - prev.silent) * k
	c.recoveries += (cur.recoveries - prev.recoveries) * k
	c.detectLat.ExtrapolateFrom(g.detectLat, k)
	for s := range c.stalls.Used {
		c.stalls.Used[s] += (c.stalls.Used[s] - g.stalls.Used[s]) * k
		for cause := range c.stalls.Stalls[s] {
			c.stalls.Stalls[s][cause] += (c.stalls.Stalls[s][cause] - g.stalls.Stalls[s][cause]) * k
		}
	}
	c.pool.ExtrapolateStats(g.pool.Stats(), k)
	c.hier.L1I.ExtrapolateStats(g.hier.L1I.Stats(), k)
	c.hier.L1D.ExtrapolateStats(g.hier.L1D.Stats(), k)
	c.hier.L2.ExtrapolateStats(g.hier.L2.Stats(), k)
	if c.rsq != nil {
		c.rsq.ExtrapolateStats(g.rsq.Stats(), k)
	}
	c.hangPeriod = p
	c.cycle = target
	return true
}
