package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// TestFaultsTriageEndToEnd drives the triage tentpole through the HTTP
// surface: a /v1/faults job with triage enabled must answer with the
// escaped trials and their trace blobs in the payload, serve each trace
// individually at /v1/jobs/{id}/trace/{key}, and account for every
// replay in the reese_faults_triaged_total counter and the
// triage-duration histogram.
func TestFaultsTriageEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	// Out-of-sphere structures guarantee escapes for the triage pass.
	v := postJSON(t, ts.URL+"/v1/faults", FaultsRequest{
		Workload:   "li",
		Injections: 60,
		Seed:       7,
		Structures: []string{"result", "regfile", "fetch-pc", "mem-word"},
		Triage:     true,
	})
	v = awaitJob(t, ts.URL, v.ID)
	if v.State != StateDone {
		t.Fatalf("faults job ended %s: %s", v.State, v.Error)
	}
	var payload FaultsPayload
	if err := json.Unmarshal(v.Result, &payload); err != nil {
		t.Fatal(err)
	}
	if len(payload.Escapes) == 0 {
		t.Fatal("triaged campaign reported no escapes; nothing was exercised")
	}
	if len(payload.Traces) == 0 {
		t.Fatal("triaged campaign payload carries no trace blobs")
	}
	for i := range payload.Escapes {
		e := &payload.Escapes[i]
		if e.Triage == nil {
			t.Errorf("escape trial %d (%s) carries no triage record", e.Index, e.Outcome)
			continue
		}
		if !e.Triage.ReplayOK {
			t.Errorf("escape trial %d: triage replay did not reproduce the original", e.Index)
		}
		if e.Outcome == "sdc" && e.Triage.FirstDivergence == nil {
			t.Errorf("escape trial %d: SDC without first-divergence attribution", e.Index)
		}
	}

	// Every payload trace must be individually retrievable.
	for key, blob := range payload.Traces {
		resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/trace/%s", ts.URL, v.ID, key))
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET trace %q: status %d: %s", key, resp.StatusCode, body)
		}
		// The job view pretty-prints its embedded result, so compare the
		// two JSON forms whitespace-insensitively.
		var served, inline bytes.Buffer
		if err := json.Compact(&served, body); err != nil {
			t.Fatalf("trace %q is not JSON: %v", key, err)
		}
		if err := json.Compact(&inline, blob); err != nil {
			t.Fatalf("payload trace %q is not JSON: %v", key, err)
		}
		if !bytes.Equal(served.Bytes(), inline.Bytes()) {
			t.Errorf("trace %q served bytes differ from the payload blob", key)
		}
		if !strings.Contains(string(body), `"FAULT`) {
			t.Errorf("trace %q has no injection marker", key)
		}
	}

	// An unknown trace key is a clean 404, not a decode error.
	resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/trace/99/99", ts.URL, v.ID))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown trace key answered %d, want 404", resp.StatusCode)
	}

	// The triage pass must be visible in the metrics: one counter
	// increment per triaged trial (the escapes above), and as many
	// histogram observations.
	metrics := scrapeMetrics(t, ts.URL)
	if total := sumMetric(metrics, `reese_faults_triaged_total\{outcome="[a-z]+"\} (\d+)`); total != len(payload.Escapes) {
		t.Errorf("reese_faults_triaged_total sums to %d, want %d escapes:\n%s",
			total, len(payload.Escapes), grepMetrics(metrics, "triage"))
	}
	if count := sumMetric(metrics, `reese_faults_triage_duration_seconds_count (\d+)`); count != len(payload.Escapes) {
		t.Errorf("triage duration histogram holds %d observations, want %d:\n%s",
			count, len(payload.Escapes), grepMetrics(metrics, "triage"))
	}
}

// TestFaultsTriageRequiresWorkload pins the normalize rule: triage over
// the all-workloads sweep is a 400, not a silently untriaged campaign.
func TestFaultsTriageRequiresWorkload(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	raw, _ := json.Marshal(FaultsRequest{Injections: 10, Triage: true})
	resp, err := http.Post(ts.URL+"/v1/faults", "application/json", strings.NewReader(string(raw)))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("triage without workload answered %d, want 400: %s", resp.StatusCode, body)
	}
}

// sumMetric sums the first capture group of every pattern match.
func sumMetric(metrics, pattern string) int {
	re := regexp.MustCompile(pattern)
	total := 0
	for _, m := range re.FindAllStringSubmatch(metrics, -1) {
		n, _ := strconv.Atoi(m[1])
		total += n
	}
	return total
}
