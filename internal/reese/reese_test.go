package reese

import (
	"testing"
	"testing/quick"

	"reese/internal/emu"
	"reese/internal/isa"
)

func newQ(t *testing.T, size int) *Queue {
	t.Helper()
	q, err := New(size, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func aluEntry(seq uint64, a, b, result uint32) Entry {
	return Entry{
		Seq: seq,
		Trace: emu.Trace{
			Inst:      isa.Instruction{Op: isa.OpAdd, Rd: 1, Rs1: 2, Rs2: 3},
			A:         a,
			B:         b,
			Result:    result,
			HasResult: true,
		},
		ResultP:  result,
		FaultBit: 255,
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 0, 1); err == nil {
		t.Error("size 0 should fail")
	}
	if _, err := New(8, 20, 1); err == nil {
		t.Error("high water beyond size should fail")
	}
	if _, err := New(8, 0, -1); err == nil {
		t.Error("negative reexec should fail")
	}
	q, err := New(8, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if q.Cap() != 8 {
		t.Error("cap")
	}
}

func TestFIFOOrder(t *testing.T) {
	q := newQ(t, 4)
	for i := uint64(0); i < 4; i++ {
		if q.Enqueue(aluEntry(i, 1, 2, 3), 0) == nil {
			t.Fatalf("enqueue %d", i)
		}
	}
	if !q.Full() {
		t.Error("should be full")
	}
	if q.Enqueue(aluEntry(9, 1, 2, 3), 0) != nil {
		t.Error("enqueue into full queue should fail")
	}
	// Dispatch order must be FIFO.
	for i := uint64(0); i < 4; i++ {
		e := q.NextToDispatch()
		if e == nil || e.Seq != i {
			t.Fatalf("dispatch order broken at %d: %+v", i, e)
		}
		q.MarkDispatched(e)
	}
	if q.NextToDispatch() != nil {
		t.Error("all dispatched")
	}
}

func TestRetireRequiresVerification(t *testing.T) {
	q := newQ(t, 4)
	e := q.Enqueue(aluEntry(0, 1, 2, 3), 5)
	defer func() {
		if recover() == nil {
			t.Error("RetireHead on unverified entry should panic")
		}
	}()
	_ = e
	q.RetireHead()
}

func TestCompareALUMatch(t *testing.T) {
	q := newQ(t, 4)
	e := q.Enqueue(aluEntry(0, 10, 32, 42), 0)
	if !q.Compare(e) {
		t.Error("correct result should verify")
	}
	if !e.Verified || e.Mismatch {
		t.Error("flags wrong")
	}
	st := q.Stats()
	if st.Verified != 1 || st.Mismatches != 0 {
		t.Errorf("stats %+v", st)
	}
	// Now retirement works.
	got := q.RetireHead()
	if got.Seq != 0 {
		t.Error("retired wrong entry")
	}
}

func TestCompareALUMismatch(t *testing.T) {
	q := newQ(t, 4)
	ent := aluEntry(0, 10, 32, 42)
	ent.ResultP = 42 ^ (1 << 7) // corrupted P result
	ent.FaultBit = 7
	e := q.Enqueue(ent, 0)
	if q.Compare(e) {
		t.Error("corrupted result must not verify")
	}
	if !e.Mismatch || e.Verified {
		t.Error("flags wrong")
	}
	if q.Stats().Mismatches != 1 {
		t.Error("mismatch not counted")
	}
}

func TestCompareEveryOpKind(t *testing.T) {
	mk := func(in isa.Instruction, tr emu.Trace) Entry {
		tr.Inst = in
		return Entry{
			Trace:       tr,
			ResultP:     tr.Result,
			NextPCP:     tr.NextPC,
			AddrP:       tr.Addr,
			StoreValueP: tr.StoreValue,
			FaultBit:    255,
		}
	}
	cases := []struct {
		name    string
		entry   Entry
		corrupt func(*Entry)
	}{
		{
			"load",
			mk(isa.Instruction{Op: isa.OpLw, Rd: 1, Rs1: 2, Imm: 8},
				emu.Trace{A: 100, Addr: 108, Result: 77, HasResult: true}),
			func(e *Entry) { e.ResultP ^= 1 },
		},
		{
			"load-addr",
			mk(isa.Instruction{Op: isa.OpLw, Rd: 1, Rs1: 2, Imm: 8},
				emu.Trace{A: 100, Addr: 108, Result: 77, HasResult: true}),
			func(e *Entry) { e.AddrP ^= 4 },
		},
		{
			"store",
			mk(isa.Instruction{Op: isa.OpSw, Rs1: 2, Rs2: 3, Imm: -4},
				emu.Trace{A: 100, B: 55, Addr: 96, StoreValue: 55}),
			func(e *Entry) { e.StoreValueP ^= 2 },
		},
		{
			"branch",
			mk(isa.Instruction{Op: isa.OpBeq, Rs1: 1, Rs2: 2, Imm: 3},
				emu.Trace{PC: 100, A: 5, B: 5, Taken: true, NextPC: 116}),
			func(e *Entry) { e.NextPCP ^= 8 },
		},
		{
			"jump",
			mk(isa.Instruction{Op: isa.OpJ, Imm: 2},
				emu.Trace{PC: 100, NextPC: 112, Taken: true}),
			func(e *Entry) { e.NextPCP ^= 16 },
		},
		{
			"jalr",
			mk(isa.Instruction{Op: isa.OpJalr, Rd: 31, Rs1: 5},
				emu.Trace{PC: 100, A: 200, NextPC: 200, Result: 104, HasResult: true, Taken: true}),
			func(e *Entry) { e.ResultP ^= 1 },
		},
		{
			"alu",
			mk(isa.Instruction{Op: isa.OpMul, Rd: 1, Rs1: 2, Rs2: 3},
				emu.Trace{A: 6, B: 7, Result: 42, HasResult: true}),
			func(e *Entry) { e.ResultP ^= 32 },
		},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			q := newQ(t, 4)
			good := tt.entry
			e := q.Enqueue(good, 0)
			if !q.Compare(e) {
				t.Fatalf("clean %s should verify", tt.name)
			}
			q2 := newQ(t, 4)
			bad := tt.entry
			e2 := q2.Enqueue(bad, 0)
			tt.corrupt(e2)
			if q2.Compare(e2) {
				t.Errorf("corrupted %s should mismatch", tt.name)
			}
		})
	}
}

func TestCompareHaltAndOutAlwaysVerify(t *testing.T) {
	q := newQ(t, 4)
	for _, op := range []isa.Op{isa.OpHalt, isa.OpOut} {
		e := q.Enqueue(Entry{Trace: emu.Trace{Inst: isa.Instruction{Op: op}}, FaultBit: 255}, 0)
		if !q.Compare(e) {
			t.Errorf("%s has no comparable result and must verify", op)
		}
	}
}

func TestPressureHighWater(t *testing.T) {
	q, err := New(8, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 5; i++ {
		q.Enqueue(aluEntry(i, 1, 2, 3), 0)
	}
	if q.PressureHigh() {
		t.Error("below high water")
	}
	q.Enqueue(aluEntry(5, 1, 2, 3), 0)
	if !q.PressureHigh() {
		t.Error("at high water")
	}
}

func TestDefaultHighWater(t *testing.T) {
	q, err := New(32, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 23; i++ {
		q.Enqueue(aluEntry(i, 1, 2, 3), 0)
	}
	if q.PressureHigh() {
		t.Error("23 of 32 should be below the default high water (24)")
	}
	q.Enqueue(aluEntry(23, 1, 2, 3), 0)
	if !q.PressureHigh() {
		t.Error("24 of 32 should trip the default high water")
	}
}

func TestPartialReexecutionMarksSkipped(t *testing.T) {
	q, err := New(16, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	skipped := 0
	for i := uint64(0); i < 10; i++ {
		e := q.Enqueue(aluEntry(i, 1, 2, 3), 0)
		if e.Skipped {
			skipped++
			if !e.Verified || !e.Done || !e.Issued {
				t.Error("skipped entries must be pre-verified")
			}
		}
	}
	if skipped != 5 {
		t.Errorf("skipped %d of 10, want 5", skipped)
	}
	if q.Stats().Skipped != 5 {
		t.Error("skip stat")
	}
}

func TestFlush(t *testing.T) {
	q := newQ(t, 4)
	q.Enqueue(aluEntry(0, 1, 2, 3), 0)
	q.Flush()
	if !q.Empty() {
		t.Error("flush should empty the queue")
	}
	if q.NextToDispatch() != nil {
		t.Error("nothing to dispatch after flush")
	}
}

func TestGetByQSeq(t *testing.T) {
	q := newQ(t, 4)
	e := q.Enqueue(aluEntry(7, 1, 2, 3), 0)
	got := q.Get(e.QSeq)
	if got.Seq != 7 {
		t.Errorf("Get returned seq %d", got.Seq)
	}
	if q.Resident(99) {
		t.Error("bogus qseq resident")
	}
}

// Property: a clean entry (ResultP etc. latched from the trace) always
// verifies; flipping any single bit of the latched result of an ALU op
// always mismatches. This is the comparator's soundness/completeness
// for the paper's fault model.
func TestCompareDetectsEverySingleBitFlip(t *testing.T) {
	f := func(a, b uint32, bit uint8) bool {
		q, _ := New(4, 0, 1)
		result := isa.EvalALU(isa.OpXor, a, b, 0)
		ent := Entry{
			Trace: emu.Trace{
				Inst:      isa.Instruction{Op: isa.OpXor, Rd: 1, Rs1: 2, Rs2: 3},
				A:         a,
				B:         b,
				Result:    result,
				HasResult: true,
			},
			ResultP:  result,
			FaultBit: 255,
		}
		e := q.Enqueue(ent, 0)
		if !q.Compare(e) {
			return false
		}
		q2, _ := New(4, 0, 1)
		ent.ResultP ^= 1 << (bit % 32)
		e2 := q2.Enqueue(ent, 0)
		return !q2.Compare(e2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestStatsCounters(t *testing.T) {
	q := newQ(t, 8)
	q.NoteFullStall()
	q.NotePriorityCycle()
	e := q.Enqueue(aluEntry(0, 1, 2, 3), 0)
	q.MarkDispatched(e)
	q.MarkIssued(e, 5, 7)
	if e.IssuedAt != 5 || e.DoneAt != 7 || !e.Issued {
		t.Error("issue marking")
	}
	st := q.Stats()
	if st.FullStalls != 1 || st.PriorityCycles != 1 || st.Reexecuted != 1 || st.Enqueued != 1 {
		t.Errorf("stats %+v", st)
	}
}
