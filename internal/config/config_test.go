package config

import (
	"strings"
	"testing"

	"reese/internal/fu"
)

// TestStartingMatchesTable1 pins the starting configuration to the
// paper's Table 1.
func TestStartingMatchesTable1(t *testing.T) {
	m := Starting()
	if err := m.Validate(); err != nil {
		t.Fatalf("starting config invalid: %v", err)
	}
	if m.FetchQueueSize != 16 {
		t.Errorf("fetch queue = %d, want 16", m.FetchQueueSize)
	}
	if m.Width != 8 {
		t.Errorf("width = %d, want 8 (max IPC for other stages)", m.Width)
	}
	if m.RUUSize != 16 || m.LSQSize != 8 {
		t.Errorf("RUU/LSQ = %d/%d, want 16/8", m.RUUSize, m.LSQSize)
	}
	if m.FU.IntALU != 4 || m.FU.IntMult != 1 || m.FU.MemPort != 2 {
		t.Errorf("FUs = %+v, want 4 IntALU / 1 IntMult / 2 ports", m.FU)
	}
	if m.Memory.L1D.SizeBytes != 32*1024 || m.Memory.L1D.Assoc != 2 || m.Memory.L1D.HitLatency != 2 {
		t.Errorf("L1D = %+v, want 32 KB 2-way 2-cycle", m.Memory.L1D)
	}
	if m.Memory.L1I.SizeBytes != 32*1024 || m.Memory.L1I.Assoc != 2 || m.Memory.L1I.HitLatency != 2 {
		t.Errorf("L1I = %+v, want 32 KB 2-way 2-cycle", m.Memory.L1I)
	}
	if m.Memory.L2.SizeBytes != 512*1024 || m.Memory.L2.Assoc != 4 || m.Memory.L2.HitLatency != 12 {
		t.Errorf("L2 = %+v, want 512 KB 4-way 12-cycle", m.Memory.L2)
	}
	if m.Reese.Enabled {
		t.Error("starting config must be the baseline")
	}
	if m.Reese.RSQSize != 32 {
		t.Errorf("RSQ = %d, want the paper's initial 32", m.Reese.RSQSize)
	}
}

func TestWithReese(t *testing.T) {
	m := Starting().WithReese()
	if !m.Reese.Enabled {
		t.Error("not enabled")
	}
	if !strings.Contains(m.Name, "reese") {
		t.Errorf("name = %q", m.Name)
	}
	if Starting().Reese.Enabled {
		t.Error("WithReese must not mutate the base")
	}
}

func TestWithSpares(t *testing.T) {
	m := Starting().WithSpares(2, 1)
	if m.FU.IntALU != 6 || m.FU.IntMult != 2 {
		t.Errorf("FUs = %+v", m.FU)
	}
	if !strings.Contains(m.Name, "2ALU") || !strings.Contains(m.Name, "1Mult") {
		t.Errorf("name = %q", m.Name)
	}
}

func TestWithRUUHalvesLSQ(t *testing.T) {
	m := Starting().WithRUU(64)
	if m.RUUSize != 64 || m.LSQSize != 32 {
		t.Errorf("RUU/LSQ = %d/%d", m.RUUSize, m.LSQSize)
	}
}

func TestWithWidthScalesIssue(t *testing.T) {
	m := Starting().WithWidth(16)
	if m.Width != 16 || m.IssueWidth != 16 {
		t.Errorf("width/issue = %d/%d", m.Width, m.IssueWidth)
	}
}

func TestWithMemPorts(t *testing.T) {
	m := Starting().WithMemPorts(4)
	if m.FU.MemPort != 4 {
		t.Errorf("ports = %d", m.FU.MemPort)
	}
}

func TestWithFUs(t *testing.T) {
	m := Starting().WithFUs(fu.Config{IntALU: 8, IntMult: 2, MemPort: 4})
	if m.FU.IntALU != 8 || m.FU.IntMult != 2 || m.FU.MemPort != 4 {
		t.Errorf("FUs = %+v", m.FU)
	}
}

func TestWithRSQAndPartial(t *testing.T) {
	m := Starting().WithReese().WithRSQ(64).WithPartialReexec(2)
	if m.Reese.RSQSize != 64 || m.Reese.ReexecuteEvery != 2 {
		t.Errorf("reese cfg = %+v", m.Reese)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	cases := []func(Machine) Machine{
		func(m Machine) Machine { m.FetchQueueSize = 0; return m },
		func(m Machine) Machine { m.Width = 0; return m },
		func(m Machine) Machine { m.IssueWidth = 0; return m },
		func(m Machine) Machine { m.RUUSize = 1; return m },
		func(m Machine) Machine { m.LSQSize = 0; return m },
		func(m Machine) Machine { m.FU.IntALU = 0; return m },
		func(m Machine) Machine { m.GshareBits = 0; return m },
		func(m Machine) Machine { m.Reese.Enabled = true; m.Reese.RSQSize = 0; return m },
	}
	for i, mod := range cases {
		if err := mod(Starting()).Validate(); err == nil {
			t.Errorf("case %d should be invalid", i)
		}
	}
}

func TestWithNameAndImmutability(t *testing.T) {
	base := Starting()
	named := base.WithName("custom")
	if named.Name != "custom" {
		t.Error("rename failed")
	}
	if base.Name == "custom" {
		t.Error("mutated receiver")
	}
	// Chain of With* calls never aliases FU state.
	a := base.WithSpares(2, 0)
	if base.FU.IntALU != 4 {
		t.Error("spares mutated base")
	}
	_ = a
}
