// Custom workload: write your own SS32 assembly, assemble it at
// runtime, check it architecturally on the emulator, then measure it on
// baseline and REESE machines.
package main

import (
	"fmt"
	"log"

	"reese"
)

// A string-reversal kernel: builds a buffer, reverses it in place many
// times, and emits a checksum byte. Loads/stores plus a data-dependent
// loop — a small but honest workload.
const source = `
main:
	li r20, 400           ; outer iterations
	la r21, buf
	li r23, 0             ; checksum
outer:
	; reverse buf[0..63] in place
	add r10, r21, r0      ; left
	addi r11, r21, 63     ; right
rev:
	lbu r1, 0(r10)
	lbu r2, 0(r11)
	sb r2, 0(r10)
	sb r1, 0(r11)
	addi r10, r10, 1
	addi r11, r11, -1
	bltu r10, r11, rev
	; fold two bytes into the checksum
	lbu r3, 0(r21)
	lbu r4, 63(r21)
	add r23, r23, r3
	xor r23, r23, r4
	addi r20, r20, -1
	bne r20, r0, outer
	out r23
	halt
.data
buf:
	.asciiz "the quick brown fox jumps over the lazy dog - reese demo xyz!!"
`

func main() {
	prog, err := reese.Assemble("reverse", source)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("assembled %d instructions, %d data bytes\n", len(prog.Text), len(prog.Data))

	// First, architectural ground truth on the functional emulator.
	m, err := reese.Emulate(prog, 1_000_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("emulator: %d instructions, checksum byte %#x\n", m.InstCount(), m.Output())

	// Then timing on both machines.
	for _, cfg := range []reese.Config{
		reese.StartingConfig(),
		reese.StartingConfig().WithReese(),
		reese.StartingConfig().WithReese().WithSpares(2, 0),
	} {
		prog, err := reese.Assemble("reverse", source)
		if err != nil {
			log.Fatal(err)
		}
		res, err := reese.Run(cfg, prog, nil, 0) // run to halt
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-34s %d cycles, IPC %.3f\n", res.Config, res.Cycles, res.IPC)
	}
}
