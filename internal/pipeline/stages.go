package pipeline

import (
	"fmt"

	"reese/internal/emu"
	"reese/internal/fault"
	"reese/internal/fu"
	"reese/internal/isa"
	"reese/internal/obs"
	"reese/internal/program"
	"reese/internal/reese"
	"reese/internal/ruu"
)

// ---------------------------------------------------------------------
// Fetch
// ---------------------------------------------------------------------

// nextTrace produces the next instruction on the (possibly replayed)
// program path, or nil when the oracle has halted and no replays remain.
// The returned pointer aliases c.trScratch and is only valid until the
// next call.
func (c *CPU) nextTrace() *emu.Trace {
	// Replayed traces are older than a pushed-back pending trace, so
	// they must drain first (only fault recovery populates replayQ).
	if c.replayHead < len(c.replayQ) {
		c.trScratch = c.replayQ[c.replayHead]
		c.replayHead++
		if c.replayHead == len(c.replayQ) {
			c.replayQ = c.replayQ[:0]
			c.replayHead = 0
		}
		return &c.trScratch
	}
	if c.hasPending {
		c.trScratch = c.pending
		c.hasPending = false
		return &c.trScratch
	}
	if c.oracleDone {
		return nil
	}
	if c.sites != nil && c.sites.OracleStep(c.oracle.InstCount(), c.oracle) {
		// An architectural-site fault (regfile, fetch PC) corrupted the
		// oracle directly; from here the machine executes the corrupted
		// program state — both streams, so the comparator sees nothing.
		c.injected++
		if c.faultCycle == 0 {
			c.faultCycle = c.cycle
		}
		if c.recorder != nil {
			inj := emu.Trace{PC: c.oracle.PC()}
			c.record(EvFaultInjected, c.oracle.InstCount(), &inj, 0, 0)
		}
	}
	if c.memSites != nil && c.memSites.MemStep(c.oracle.InstCount(), hierPlane{c}) {
		// A memory-hierarchy fault fired: a flipped architectural word,
		// a perturbed cache line or TLB entry — all outside the sphere
		// of replication, so the comparator sees nothing here either.
		c.injected++
		if c.faultCycle == 0 {
			c.faultCycle = c.cycle
		}
		if c.recorder != nil {
			inj := emu.Trace{PC: c.oracle.PC()}
			c.record(EvFaultInjected, c.oracle.InstCount(), &inj, 0, 0)
		}
	}
	tr, err := c.oracle.Step()
	if err != nil {
		// Off-the-end fetch or a memory fault in the workload itself:
		// treat as end of stream. Workloads in this repo always halt.
		c.oracleDone = true
		return nil
	}
	if tr.Halt {
		c.oracleDone = true
	}
	c.trScratch = tr
	return &c.trScratch
}

// fetch brings up to Width instructions into the fetch queue. It
// normally follows the oracle path; a mispredicted control transfer
// either stalls fetch until resolution (the default approximation) or,
// with config.ModelWrongPath, switches fetch onto the predicted (wrong)
// path until the branch resolves and the tail is squashed.
func (c *CPU) fetch() {
	if c.fetchStalled {
		c.fetchBranchStallCycles++
		return
	}
	if c.cycle < c.fetchReadyAt {
		c.fetchICacheStallCycles++
		return
	}
	var lastBlock uint32
	haveBlock := false
	blockMask := ^(c.cfg.Memory.L1I.BlockBytes - 1)
	for n := 0; n < c.cfg.Width && c.fetchLen < c.cfg.FetchQueueSize; n++ {
		var tr *emu.Trace
		if c.wrongPath {
			if c.hasWPPending {
				c.wpScratch = c.wpPending
				c.hasWPPending = false
				tr = &c.wpScratch
			} else {
				tr = c.wrongPathTrace()
			}
			if tr == nil {
				// Wrong path ran off decodable text: wait for the
				// branch to resolve.
				c.fetchBranchStallCycles++
				return
			}
		} else {
			tr = c.nextTrace()
		}
		if tr == nil {
			return
		}
		// Charge the I-cache once per block touched; a miss delivers
		// nothing this cycle — the instruction waits for the line.
		block := tr.PC & blockMask
		if !haveBlock || block != lastBlock {
			lat := c.hier.FetchLatency(tr.PC)
			lastBlock, haveBlock = block, true
			if lat > c.cfg.Memory.L1I.HitLatency {
				c.fetchReadyAt = c.cycle + uint64(lat)
				if c.wrongPath {
					c.wpPending = *tr
					c.hasWPPending = true
				} else {
					c.pending = *tr
					c.hasPending = true
				}
				return
			}
		}
		fe := c.fetchQPush(fetchEntry{tr: *tr, bogus: c.wrongPath, fetchedAt: c.cycle})
		c.traceEvent(EvFetch, tr, "")
		if c.wrongPath {
			c.wpFetched++
			// Wrong-path control flow already chose its own next PC in
			// wrongPathTrace; taken transfers still break the group.
			if tr.Inst.Op.IsControl() && tr.NextPC != tr.PC+isa.WordBytes {
				return
			}
			continue
		}
		if tr.Halt {
			return
		}
		if tr.Inst.Op.IsControl() {
			c.branches++
			if c.predictAndMaybeStall(fe) {
				if fe.mispredicted {
					if c.cfg.ModelWrongPath {
						c.traceEvent(EvMispredict, tr, "fetching down the wrong path")
					} else {
						c.traceEvent(EvMispredict, tr, "fetch stalled until resolution")
					}
					if c.recorder != nil {
						c.record(obs.EvMispredict, 0, tr, 0, -1)
					}
				}
				return
			}
		}
	}
}

// wrongPathTrace decodes the next wrong-path instruction at wpPC and
// predicts its successor. The pseudo-trace has no meaningful operand
// values — wrong-path instructions only consume resources. The returned
// pointer aliases c.wpScratch and is only valid until the next call.
func (c *CPU) wrongPathTrace() *emu.Trace {
	in, ok := c.dec.At(c.wpPC)
	if !ok {
		return nil
	}
	c.wpScratch = emu.Trace{PC: c.wpPC, Inst: in, NextPC: c.wpPC + isa.WordBytes}
	tr := &c.wpScratch
	// Wrong-path loads/stores get a placeholder address inside the data
	// segment so disambiguation logic sees something sane.
	if in.Op.IsMem() {
		tr.Addr = program.DataBase + uint32(in.Imm)&0xfff&^3
		tr.MemWidth = isa.MemWidth(in.Op)
	}
	op := in.Op
	pc := c.wpPC
	switch {
	case op == isa.OpHalt:
		// Treat as a fetch stop; the path parks here.
		c.wpPC = pc
		return tr
	case op.IsBranch():
		if c.pred.Predict(pc) {
			if tgt, ok := c.btb.Lookup(pc); ok {
				tr.NextPC = tgt
			}
		}
		// Speculative history shifts on the wrong path too; the squash
		// restores the snapshot.
		c.pred.ShiftHistory(tr.NextPC != pc+isa.WordBytes)
	case op == isa.OpJ || op == isa.OpJal:
		tr.NextPC = in.BranchTarget(pc)
	case op == isa.OpJr || op == isa.OpJalr:
		if op == isa.OpJr && in.Rs1 == isa.RegRA {
			if tgt, ok := c.ras.Pop(); ok {
				tr.NextPC = tgt
			}
		} else if tgt, ok := c.btb.Lookup(pc); ok {
			tr.NextPC = tgt
		}
	}
	c.wpPC = tr.NextPC
	return tr
}

// predictAndMaybeStall runs the front-end predictors for a control
// instruction, marks mispredictions, and reports whether fetch must stop
// this cycle (taken transfer or misprediction).
func (c *CPU) predictAndMaybeStall(fe *fetchEntry) (stop bool) {
	tr := &fe.tr
	op := tr.Inst.Op
	pc := tr.PC
	fallPC := pc + isa.WordBytes

	var predictedNext uint32
	switch {
	case op.IsBranch():
		// Speculative history update at fetch: a correct prediction
		// shifts the true outcome in; a misprediction stalls fetch, and
		// the redirect repairs the history — with oracle-path fetch the
		// repaired value is simply the true outcome, so shifting it
		// here models both cases. The pre-shift snapshot travels with
		// the branch so resolution trains the entry the prediction
		// actually consulted.
		fe.histSnap = c.pred.Snapshot()
		defer c.pred.ShiftHistory(tr.Taken)
		if c.pred.Predict(pc) {
			if tgt, ok := c.btb.Lookup(pc); ok {
				predictedNext = tgt
			} else {
				// Predicted taken but no target known: cannot redirect.
				predictedNext = fallPC
			}
		} else {
			predictedNext = fallPC
		}
	case op == isa.OpJ:
		predictedNext = tr.NextPC // direct target, decoded in fetch
	case op == isa.OpJal:
		predictedNext = tr.NextPC
		c.ras.Push(fallPC)
	case op == isa.OpJalr:
		c.ras.Push(fallPC)
		if tgt, ok := c.btb.Lookup(pc); ok {
			predictedNext = tgt
		} else {
			predictedNext = fallPC
		}
	case op == isa.OpJr:
		if tr.Inst.Rs1 == isa.RegRA {
			if tgt, ok := c.ras.Pop(); ok {
				predictedNext = tgt
			} else {
				predictedNext = fallPC
			}
		} else if tgt, ok := c.btb.Lookup(pc); ok {
			predictedNext = tgt
		} else {
			predictedNext = fallPC
		}
	}

	if predictedNext != tr.NextPC {
		fe.mispredicted = true
		c.mispredicts++
		if c.cfg.ModelWrongPath {
			// Fetch continues down the predicted (wrong) path; the
			// squash point is recorded for resolution. The history to
			// restore must already include THIS branch's true outcome
			// (the deferred ShiftHistory below applies it), so fold it
			// in here.
			c.wrongPath = true
			c.wpPC = predictedNext
			c.wpLsqMark = c.lsq.NextSeq()
			c.wpHistSnap = c.pred.Snapshot() << 1
			if tr.Taken {
				c.wpHistSnap |= 1
			}
			return true
		}
		c.fetchStalled = true
		return true
	}
	// Correctly predicted taken transfers still break the fetch group.
	return tr.NextPC != fallPC
}

// ---------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------

// rReserve is the number of RUU slots P-stream dispatch may never take
// on a REESE machine, guaranteeing the R-stream Queue can always
// dispatch copies and drain — without it a full RSQ and a P-full RUU
// would deadlock each other.
const rReserve = 2

// dispatch fills up to Width slots per cycle. On a REESE machine each
// slot chooses between the next decoded P-stream instruction and the
// head of the R-stream Queue (paper §4.3): P normally has priority, but
// once RSQ occupancy crosses the high-water mark the R stream goes
// first so the queue drains.
func (c *CPU) dispatch() int {
	rFirst := c.rsq != nil && c.rsq.PressureHigh()
	if rFirst {
		c.rsq.NotePriorityCycle()
	}
	moved := 0
	for n := 0; n < c.cfg.Width; n++ {
		if rFirst {
			if c.dispatchR() || c.dispatchP() {
				moved++
				continue
			}
			break
		}
		if c.dispatchP() || (c.rsq != nil && c.dispatchR()) {
			moved++
			continue
		}
		break
	}
	return moved
}

// noteDispatchBlock records the first structural reason dispatch
// stopped this cycle, for the slot-attribution matrix. The first
// blocker wins: it is what actually ended the dispatch group.
func (c *CPU) noteDispatchBlock(cause obs.StallCause) {
	if c.dispCause == obs.CauseNone {
		c.dispCause = cause
	}
}

// dispatchCause resolves where this cycle's unused dispatch slots went:
// a recorded structural block, otherwise an empty front end (or the
// post-halt drain).
func (c *CPU) dispatchCause() obs.StallCause {
	if c.dispCause != obs.CauseNone {
		return c.dispCause
	}
	if c.oracleDone && c.fetchLen == 0 && !c.hasPending && c.replayHead >= len(c.replayQ) {
		return obs.CauseDrain
	}
	return obs.CauseFetchEmpty
}

// windowFree returns the number of unoccupied window slots. P-stream
// instructions occupy a slot while resident in the RUU; dispatched,
// unfinished R copies occupy one until their comparison completes (the
// slot collapses as soon as the re-execution is checked).
func (c *CPU) windowFree() int {
	return c.cfg.RUUSize - c.ruu.Len() - c.rLive
}

// dispatchP moves one instruction from the fetch queue into the RUU
// (and LSQ for memory operations), reporting whether it did.
func (c *CPU) dispatchP() bool {
	if c.fetchLen == 0 {
		return false
	}
	free := c.windowFree()
	if free <= 0 || (c.rsq != nil && free <= rReserve) || c.ruu.Full() {
		c.dispatchRUUFull++
		c.noteDispatchBlock(obs.CauseDispatchRUUFull)
		return false
	}
	fe := *c.fetchQFront()
	if fe.bogus && !c.wpMarked {
		// First wrong-path entry reaching dispatch: everything in the
		// LSQ from here on is squashable.
		c.wpLsqMark = c.lsq.NextSeq()
		c.wpMarked = true
	}
	// Duplicate-at-dispatch mode needs room for the whole pair before
	// dispatching either half (bogus wrong-path entries stay single).
	needDup := c.dupMode && !fe.bogus
	if needDup {
		isMem := fe.tr.Inst.Op.IsMem()
		if c.windowFree() < 2 || c.ruu.Cap()-c.ruu.Len() < 2 {
			c.dispatchRUUFull++
			c.noteDispatchBlock(obs.CauseDispatchRUUFull)
			return false
		}
		if isMem && c.lsq.Cap()-c.lsq.Len() < 2 {
			c.dispatchLSQFull++
			c.noteDispatchBlock(obs.CauseDispatchLSQFull)
			return false
		}
	}
	lsqSeq := ruu.NoProducer
	if fe.tr.Inst.Op.IsMem() {
		if c.lsq.Full() {
			c.dispatchLSQFull++
			c.noteDispatchBlock(obs.CauseDispatchLSQFull)
			return false
		}
		le := c.lsq.Dispatch(fe.tr, c.ruu.NextSeq())
		lsqSeq = le.MemSeq
	}
	e := c.ruu.Dispatch(fe.tr, lsqSeq)
	e.Mispredicted = fe.mispredicted && !fe.bogus
	e.Bogus = fe.bogus
	e.BpHistory = fe.histSnap
	c.fetchQPop()
	if c.traceW != nil {
		c.traceEvent(EvDispatch, &e.Trace, fmt.Sprintf("seq=%d", e.Seq))
	}
	if c.recorder != nil {
		// The fetch event is backdated to queue entry: its sequence
		// number only exists now.
		c.recordAt(fe.fetchedAt, obs.EvFetch, e.Seq, &e.Trace, 0, -1)
		c.record(obs.EvDispatch, e.Seq, &e.Trace, 0, -1)
	}
	if needDup {
		dupLSQ := ruu.NoProducer
		if fe.tr.Inst.Op.IsMem() {
			le := c.lsq.Dispatch(fe.tr, c.ruu.NextSeq())
			dupLSQ = le.MemSeq
		}
		d := c.ruu.DispatchDup(fe.tr, e.Seq, e.Dep1, e.Dep2, dupLSQ)
		if c.traceW != nil {
			c.traceEvent(EvDispatch, &d.Trace, fmt.Sprintf("seq=%d (duplicate of %d)", d.Seq, e.Seq))
		}
	}
	return true
}

// dispatchR moves the R-stream Queue's oldest undispatched copy into
// the execution window, reporting whether it did. R copies carry their
// operands, so they claim no rename slot and track no dependencies, but
// they occupy a window slot and a dispatch slot like any other
// instruction — this sharing is where REESE's overhead comes from.
func (c *CPU) dispatchR() bool {
	e := c.rsq.NextToDispatch()
	if e == nil {
		return false
	}
	if c.windowFree() <= 0 {
		c.dispatchRUUFull++
		c.noteDispatchBlock(obs.CauseDispatchRUUFull)
		return false
	}
	c.rLive++
	c.rsq.MarkDispatched(e)
	if c.traceW != nil {
		c.traceEvent(EvDispatchR, &e.Trace, fmt.Sprintf("qseq=%d", e.QSeq))
	}
	if c.recorder != nil {
		c.record(obs.EvDispatchR, e.Seq, &e.Trace, 0, -1)
	}
	return true
}

// ---------------------------------------------------------------------
// Issue
// ---------------------------------------------------------------------

// issue selects up to IssueWidth ready instructions. P-stream
// instructions have priority; R-stream copies fill the remaining slots
// — unless the R-stream Queue has crossed its high-water mark, in which
// case the priorities invert so the queue drains (paper §4.3).
func (c *CPU) issue() int {
	budget := c.cfg.IssueWidth
	if c.rsq != nil && c.rsq.PressureHigh() {
		c.issueR(&budget)
		c.issueP(&budget)
		return c.cfg.IssueWidth - budget
	}
	c.issueP(&budget)
	if c.rsq != nil {
		c.issueR(&budget)
	}
	return c.cfg.IssueWidth - budget
}

// issueCause resolves where this cycle's unused issue slots went. A
// functional-unit shortage outranks operand waits — it is the signal
// REESE's spare elements act on; with neither recorded the window is
// either all in flight (execution latency) or empty (front end).
func (c *CPU) issueCause() obs.StallCause {
	if c.issueNoFU {
		return obs.CauseIssueNoFU
	}
	if c.issueNotReady {
		return obs.CauseIssueWait
	}
	if c.ruu.Len() > 0 || c.rLive > 0 {
		return obs.CauseExecLatency
	}
	if c.fetchLen > 0 {
		return obs.CauseFetchEmpty
	}
	if c.oracleDone && !c.hasPending && c.replayHead >= len(c.replayQ) {
		return obs.CauseDrain
	}
	return obs.CauseFetchEmpty
}

// issueP issues ready P-stream instructions from the RUU, oldest first.
func (c *CPU) issueP(budget *int) {
	c.ruu.Scan(func(e *ruu.Entry) bool {
		if *budget <= 0 {
			return false
		}
		if e.Issued {
			return true
		}
		if !c.ruu.OperandsReady(e, c.cycle) {
			c.issueNotReady = true
			return true
		}
		op := e.Trace.Inst.Op
		if e.Bogus && op.IsMem() {
			// Wrong-path memory operations consume a port but bypass
			// the data cache (their addresses are placeholders; real
			// hardware would access speculative state we don't model).
			unit, ok := c.pool.AcquireUnit(fu.MemPort, c.cycle, op.IssueLatency())
			if !ok {
				c.issueNoFU = true
				return true
			}
			e.FUKind, e.FUUnit = uint8(fu.MemPort), unit
			if e.LSQSeq != ruu.NoProducer && c.lsq.Resident(e.LSQSeq) {
				c.lsq.Get(e.LSQSeq).Issued = true
			}
			c.markIssued(e, c.cycle+uint64(c.cfg.Memory.L1D.HitLatency))
			*budget--
			return true
		}
		switch {
		case op.IsLoad():
			switch c.lsq.CheckLoad(e.LSQSeq) {
			case ruu.LoadBlocked:
				// Waiting for earlier store addresses: a readiness wait,
				// not an FU shortage.
				c.issueNotReady = true
				return true
			case ruu.LoadForward:
				// Store-to-load forwarding inside the LSQ: 1 cycle, no
				// cache port needed. The port fields are still stamped
				// (unit -1) so the recorder lanes stay truthful.
				le := c.lsq.Get(e.LSQSeq)
				le.Issued = true
				le.Forwarded = true
				e.FUKind, e.FUUnit = uint8(fu.MemPort), -1
				c.markIssued(e, c.cycle+1)
				*budget--
			case ruu.LoadFromCache:
				unit, ok := c.pool.AcquireUnit(fu.MemPort, c.cycle, op.IssueLatency())
				if !ok {
					c.issueNoFU = true
					return true
				}
				e.FUKind, e.FUUnit = uint8(fu.MemPort), unit
				lat := c.hier.DataLatency(e.Trace.Addr, false)
				c.lsq.Get(e.LSQSeq).Issued = true
				c.markIssued(e, c.cycle+uint64(lat))
				*budget--
			}
		case op.IsStore():
			unit, ok := c.pool.AcquireUnit(fu.MemPort, c.cycle, op.IssueLatency())
			if !ok {
				c.issueNoFU = true
				return true
			}
			e.FUKind, e.FUUnit = uint8(fu.MemPort), unit
			// The architectural cache write happens once, on the
			// verified side: at issue on a plain baseline, on the
			// duplicate copy in dup-dispatch mode, and at R-stream
			// issue under REESE.
			if (c.rsq == nil && !c.dupMode) || (c.dupMode && e.Dup) {
				c.hier.DataLatency(e.Trace.Addr, true)
			}
			c.lsq.Get(e.LSQSeq).Issued = true
			c.markIssued(e, c.cycle+1)
			*budget--
		default:
			kind := fu.KindFor(op.Class())
			unit, ok := c.pool.AcquireUnit(kind, c.cycle, op.IssueLatency())
			if !ok {
				c.issueNoFU = true
				return true
			}
			e.FUKind, e.FUUnit = uint8(kind), unit
			c.markIssued(e, c.cycle+uint64(op.OpLatency()))
			*budget--
		}
		return true
	})
}

func (c *CPU) markIssued(e *ruu.Entry, doneAt uint64) {
	e.Issued = true
	e.IssuedAt = c.cycle
	e.DoneAt = doneAt
	if c.traceW != nil {
		c.traceEvent(EvIssue, &e.Trace, fmt.Sprintf("done@%d", doneAt))
	}
	if c.recorder != nil {
		c.record(obs.EvIssue, e.Seq, &e.Trace, e.FUKind+1, int16(e.FUUnit))
	}
}

// issueR issues dispatched R-stream copies. They carry their operands,
// so readiness is never in question — only functional-unit
// availability. Copies blocked on a busy unit class are skipped; they
// hold their window slot until they get one, which is exactly how FU
// shortage turns into window pressure on the P stream (and why spare
// elements recover performance).
func (c *CPU) issueR(budget *int) {
	c.rsq.Scan(func(e *reese.Entry) bool {
		if *budget <= 0 {
			return false
		}
		if !e.Dispatched || e.Issued {
			return true
		}
		op := e.Trace.Inst.Op
		var doneAt uint64
		rKind := fu.MemPort
		rUnit := -1
		switch {
		case op.IsLoad():
			unit, ok := c.pool.AcquireUnit(fu.MemPort, c.cycle, op.IssueLatency())
			if !ok {
				c.issueNoFU = true
				return true
			}
			rUnit = unit
			// The R-stream load re-reads the D-cache; the P stream
			// brought the line in, so this almost always hits (§4.4).
			lat := c.hier.DataLatency(e.Trace.Addr, false)
			doneAt = c.cycle + uint64(lat)
		case op.IsStore():
			unit, ok := c.pool.AcquireUnit(fu.MemPort, c.cycle, op.IssueLatency())
			if !ok {
				c.issueNoFU = true
				return true
			}
			rUnit = unit
			// This is the architectural cache write, performed only on
			// the verified path (the store buffer drains here).
			c.hier.DataLatency(e.Trace.Addr, true)
			doneAt = c.cycle + 1
		default:
			kind := fu.KindFor(op.Class())
			unit, ok := c.pool.AcquireUnit(kind, c.cycle, op.IssueLatency())
			if !ok {
				c.issueNoFU = true
				return true
			}
			rKind, rUnit = kind, unit
			doneAt = c.cycle + uint64(op.OpLatency())
		}
		e.RKind, e.RUnit = uint8(rKind), rUnit
		if c.stuck != nil && c.stuck.Hits(uint8(rKind), rUnit) {
			e.RFaultMask = c.stuck.Mask()
		}
		c.rsq.MarkIssued(e, c.cycle, doneAt)
		if c.traceW != nil {
			c.traceEvent(EvIssueR, &e.Trace, fmt.Sprintf("done@%d", doneAt))
		}
		if c.recorder != nil {
			c.record(obs.EvIssueR, e.Seq, &e.Trace, uint8(rKind)+1, int16(rUnit))
		}
		*budget--
		return true
	})
}

// ---------------------------------------------------------------------
// Writeback
// ---------------------------------------------------------------------

// writeback completes executions whose latency has elapsed: P-stream
// completions resolve branches (unblocking fetch on mispredictions) and
// latch results — the point where the fault injector may corrupt them.
// R-stream completions run the comparator.
func (c *CPU) writeback() {
	c.ruu.Scan(func(e *ruu.Entry) bool {
		if !e.Issued || e.Completed || e.DoneAt > c.cycle {
			return true
		}
		e.Completed = true
		c.traceEvent(EvWriteback, &e.Trace, "")
		if c.recorder != nil {
			c.record(obs.EvWriteback, e.Seq, &e.Trace, e.FUKind+1, int16(e.FUUnit))
		}
		if e.Bogus {
			// Wrong-path completions update nothing architectural: no
			// predictor training, no fault injection.
			return true
		}
		op := e.Trace.Inst.Op
		if op.IsControl() && !e.Dup {
			c.resolveControl(e)
		}
		if c.stuck != nil && c.stuck.Hits(e.FUKind, e.FUUnit) {
			// A permanent unit fault corrupts the latched outcome of
			// every computation it performs.
			switch {
			case e.Trace.HasResult:
				e.ResultP ^= c.stuck.Mask()
			case op.IsStore():
				e.StoreValueP ^= c.stuck.Mask()
			}
		}
		if e.Seq >= c.hookHorizon {
			c.hookHorizon = e.Seq + 1
		}
		if inj, ok := c.injector.Decide(e.Seq, e.Trace); ok {
			e.ResultP, e.NextPCP, e.AddrP, e.StoreValueP = fault.Apply(inj, e.Trace)
			e.FaultBit = inj.Bit % 32
			e.FaultCycle = c.cycle
			if c.faultCycle == 0 {
				c.faultCycle = c.cycle
			}
			c.injected++
			if c.traceW != nil {
				c.traceEvent(EvFaultInjected, &e.Trace, fmt.Sprintf("bit %d", e.FaultBit))
			}
			if c.recorder != nil {
				c.record(obs.EvFaultInjected, e.Seq, &e.Trace, 0, -1)
			}
		}
		return true
	})

	if c.rsq == nil {
		return
	}
	// The comparator sits between writeback and commit: completed
	// re-executions check against the latched P-stream outcome and
	// release their window slot.
	var bad *reese.Entry
	c.rsq.Scan(func(e *reese.Entry) bool {
		if !e.Issued || e.Done || e.DoneAt > c.cycle {
			return true
		}
		c.rLive--
		if !c.rsq.Compare(e) {
			bad = e
			c.traceEvent(EvMismatch, &e.Trace, "comparator hit: soft error detected")
			if c.recorder != nil {
				c.record(obs.EvMismatch, e.Seq, &e.Trace, e.RKind+1, int16(e.RUnit))
			}
			return false // recovery flushes everything anyway
		}
		c.traceEvent(EvVerify, &e.Trace, "")
		if c.recorder != nil {
			c.record(obs.EvVerify, e.Seq, &e.Trace, e.RKind+1, int16(e.RUnit))
		}
		return true
	})
	if bad != nil {
		c.onMismatch(bad)
	}
}

// resolveControl trains the predictors with the true outcome and, for
// mispredicted transfers, restarts fetch after the redirect penalty.
func (c *CPU) resolveControl(e *ruu.Entry) {
	tr := &e.Trace
	op := tr.Inst.Op
	if op.IsBranch() {
		c.pred.TrainAt(tr.PC, e.BpHistory, tr.Taken)
	}
	if tr.Taken && tr.NextPC != tr.PC+isa.WordBytes {
		c.btb.Insert(tr.PC, tr.NextPC)
	}
	if e.Mispredicted {
		if c.cfg.ModelWrongPath {
			c.squashWrongPath(e)
			return
		}
		c.fetchStalled = false
		resume := c.cycle + 1 + redirectPenalty
		if resume > c.fetchReadyAt {
			c.fetchReadyAt = resume
		}
	}
}

// squashWrongPath removes every wrong-path instruction behind the
// resolved branch and redirects fetch to the correct path. The squashed
// work consumed real bandwidth, window slots, and functional units —
// the cost the stall model approximates with a flat penalty.
func (c *CPU) squashWrongPath(branch *ruu.Entry) {
	cut := branch.Seq
	if c.dupMode {
		// The branch's duplicate (dispatched atomically with it, before
		// any wrong-path entry) must survive the squash.
		cut++
	}
	squashed := c.ruu.NextSeq() - cut - 1
	c.wpSquashed += squashed
	c.ruu.TruncateAfter(cut)
	if c.wpMarked {
		c.lsq.TruncateTo(c.wpLsqMark)
	}
	// Everything still in the fetch queue is bogus (nothing real is
	// fetched after a mispredicted branch).
	c.fetchQClear()
	c.hasWPPending = false
	c.pred.Restore(c.wpHistSnap)
	c.wrongPath = false
	c.wpMarked = false
	resume := c.cycle + 1
	if resume > c.fetchReadyAt {
		c.fetchReadyAt = resume
	}
	if c.traceW != nil {
		fmt.Fprintf(c.traceW, "%8d SQUASH     %d wrong-path instructions behind %#08x\n", c.cycle, squashed, branch.Trace.PC)
	}
}

// ---------------------------------------------------------------------
// Commit
// ---------------------------------------------------------------------

// commit retires instructions in program order, returning how many
// commit slots did work this cycle. Baseline machines retire directly
// from the RUU head. REESE machines retire verified instructions from
// the R-stream Queue head and refill the queue from the RUU head (this
// is the only place a full RSQ back-pressures the P stream). When
// slots go unused, the blocking cause is resolved from the machine
// state the moment commit gave up — before writeback and issue mutate
// it — and charged in chargeStalls at the end of the cycle.
func (c *CPU) commit() int {
	var used int
	switch {
	case c.dupMode:
		used = c.commitDup()
	case c.rsq == nil:
		used = c.commitBaseline()
	default:
		used = c.commitReese()
	}
	if used < c.cfg.Width {
		c.commitBlock = c.commitCause()
	} else {
		c.commitBlock = obs.CauseNone
	}
	return used
}

// commitCause inspects the oldest blocked instruction and names the one
// thing stopping commit — top-down accounting in the style of the
// paper's utilization figures. Precedence runs back-to-front: an
// unverified RSQ head outranks anything upstream; an empty machine
// blames the front end (or the post-halt drain).
func (c *CPU) commitCause() obs.StallCause {
	if c.done || c.permError {
		return obs.CauseDrain
	}
	if c.rsq != nil && !c.rsq.Empty() {
		// The RSQ head has not been verified yet. When the queue is also
		// full it is crammed faster than the R stream can drain it — the
		// paper's overflow condition (§4.3) — which is the actionable
		// signal, so it takes the charge.
		if c.rsq.Full() {
			return obs.CauseRSQFull
		}
		return obs.CauseRecheckPending
	}
	if c.ruu.Empty() {
		if c.fetchLen == 0 && c.oracleDone && !c.hasPending && c.replayHead >= len(c.replayQ) {
			return obs.CauseDrain
		}
		return obs.CauseFetchEmpty
	}
	h := c.ruu.Head()
	if !h.Issued {
		if c.ruu.OperandsReady(h, c.cycle) {
			// Ready but never picked: every unit of its class was busy
			// (or, for loads, the LSQ blocked disambiguation).
			return obs.CauseIssueNoFU
		}
		return obs.CauseIssueWait
	}
	if !h.Completed || h.DoneAt > c.cycle {
		return obs.CauseExecLatency
	}
	// Head latched its result but could not move on. In dup mode it
	// waits for its duplicate; under REESE a latched head failing to
	// enter the queue means the refill loop hit a full RSQ.
	if c.rsq != nil {
		return obs.CauseRSQFull
	}
	return obs.CauseExecLatency
}

func (c *CPU) commitReese() int {
	// Retire verified instructions from the RSQ head. Their LSQ entries
	// were already released when they entered the RSQ: the queue entry
	// carries the operands and result, and unverified stores forward to
	// younger loads from there (the paper's extra forwarding hardware,
	// §4.3).
	used := 0
	for n := 0; n < c.cfg.Width && !c.rsq.Empty(); n++ {
		h := c.rsq.Head()
		if !h.Verified {
			break
		}
		e := c.rsq.RetireHead()
		used++
		c.traceEvent(EvCommit, &e.Trace, "verified")
		if c.recorder != nil {
			c.record(obs.EvCommit, e.Seq, &e.Trace, 0, -1)
		}
		c.retire(e.Trace, false, e.HasFault(), e.ResultP, e.AddrP, e.StoreValueP)
		if c.done {
			return used
		}
	}

	// Move completed instructions from the RUU head into the RSQ.
	for n := 0; n < c.cfg.Width && !c.ruu.Empty(); n++ {
		h := c.ruu.Head()
		if !h.Completed || h.DoneAt > c.cycle {
			break
		}
		if c.rsq.Full() {
			c.rsq.NoteFullStall()
			break
		}
		e := c.ruu.RemoveHead()
		if e.Bogus {
			panic(fmt.Sprintf("pipeline: bogus instruction reached the R-stream Queue: seq=%d pc=%#x %s", e.Seq, e.Trace.PC, e.Trace.Inst))
		}
		if e.LSQSeq != ruu.NoProducer {
			c.lsq.RemoveHead()
		}
		c.traceEvent(EvEnterRSQ, &e.Trace, "")
		if c.recorder != nil {
			c.record(obs.EvEnterRSQ, e.Seq, &e.Trace, 0, -1)
		}
		ent := reese.Entry{
			Seq:         e.Seq,
			Trace:       e.Trace,
			ResultP:     e.ResultP,
			NextPCP:     e.NextPCP,
			AddrP:       e.AddrP,
			StoreValueP: e.StoreValueP,
			FaultBit:    e.FaultBit,
			FaultCycle:  e.FaultCycle,
			LSQSeq:      e.LSQSeq,
		}
		if e.Seq >= c.hookHorizon {
			c.hookHorizon = e.Seq + 1
		}
		if c.sites != nil {
			if cor, ok := c.sites.RSQEnqueue(e.Seq, e.Trace); ok {
				// A transient in the RSQ itself: the stored copies are
				// corrupted while e.Trace (what recovery replays) stays
				// clean, so a detected RSQ fault recovers cleanly.
				ent.ResultP ^= cor.ResultMask
				ent.NextPCP ^= cor.NextPCMask
				ent.AddrP ^= cor.AddrMask
				ent.StoreValueP ^= cor.StoreMask
				ent.OperandAMask = cor.OperandAMask
				ent.OperandBMask = cor.OperandBMask
				ent.CompIgnore = cor.CompIgnoreMask
				ent.FaultBit = cor.Bit % 32
				ent.FaultCycle = c.cycle
				if c.faultCycle == 0 {
					c.faultCycle = c.cycle
				}
				c.injected++
				if c.traceW != nil {
					c.traceEvent(EvFaultInjected, &e.Trace, fmt.Sprintf("rsq bit %d", ent.FaultBit))
				}
				if c.recorder != nil {
					c.record(obs.EvFaultInjected, e.Seq, &e.Trace, 0, -1)
				}
			}
		}
		c.rsq.Enqueue(ent, c.cycle)
	}
	return used
}

func (c *CPU) commitBaseline() int {
	used := 0
	for n := 0; n < c.cfg.Width && !c.ruu.Empty(); n++ {
		h := c.ruu.Head()
		if !h.Completed || h.DoneAt > c.cycle {
			break
		}
		e := c.ruu.RemoveHead()
		if e.Bogus {
			// A wrong-path instruction can never reach commit: its
			// mispredicted branch resolves (and squashes it) strictly
			// before leaving the window.
			panic(fmt.Sprintf("pipeline: bogus instruction reached commit: seq=%d pc=%#x %s", e.Seq, e.Trace.PC, e.Trace.Inst))
		}
		used++
		c.traceEvent(EvCommit, &e.Trace, "")
		if c.recorder != nil {
			c.record(obs.EvCommit, e.Seq, &e.Trace, 0, -1)
		}
		c.retire(e.Trace, e.LSQSeq != ruu.NoProducer, e.HasFault(), e.ResultP, e.AddrP, e.StoreValueP)
		if c.done {
			break
		}
	}
	return used
}

// commitDup retires (original, duplicate) pairs in order, comparing the
// two executions' latched outcomes — the Franklin [24] scheme the paper
// positions REESE against. Both halves consume commit bandwidth.
func (c *CPU) commitDup() int {
	used := 0
	for n := 0; n+1 < c.cfg.Width && c.ruu.Len() >= 2; n += 2 {
		h := c.ruu.Head()
		if !h.Completed || h.DoneAt > c.cycle {
			return used
		}
		if h.Bogus {
			// Should be unreachable (squash precedes commit), but a
			// single bogus entry has no pair; guard explicitly.
			panic("pipeline: bogus instruction reached dup commit")
		}
		d := c.ruu.Get(h.Seq + 1)
		if !d.Dup || d.PairSeq != h.Seq {
			panic(fmt.Sprintf("pipeline: dup pairing broken at seq %d", h.Seq))
		}
		if !d.Completed || d.DoneAt > c.cycle {
			return used
		}
		match := h.ResultP == d.ResultP && h.NextPCP == d.NextPCP &&
			h.AddrP == d.AddrP && h.StoreValueP == d.StoreValueP
		if !match {
			c.onMismatchDup(h, d)
			return used
		}
		// A fault that corrupted BOTH copies identically (a common-mode
		// or permanent fault hitting the same computation twice) passes
		// the comparator: that is pure duplication's blind spot, and it
		// retires as silent corruption. REESE's recomputation-based
		// comparator does not share it.
		commonMode := h.HasFault() || d.HasFault()
		e := c.ruu.RemoveHead()
		c.ruu.RemoveHead()
		if e.LSQSeq != ruu.NoProducer {
			c.lsq.RemoveHead()
			c.lsq.RemoveHead() // the duplicate's entry is adjacent
		}
		used += 2 // both halves of the pair consume commit bandwidth
		c.traceEvent(EvCommit, &e.Trace, "pair verified")
		if c.recorder != nil {
			c.record(obs.EvCommit, e.Seq, &e.Trace, 0, -1)
		}
		c.retire(e.Trace, false, commonMode, e.ResultP, e.AddrP, e.StoreValueP)
		if c.done {
			return used
		}
	}
	return used
}

// onMismatchDup handles a failed pair comparison: account the
// detection, then flush and replay, mirroring the RSQ path.
func (c *CPU) onMismatchDup(orig, dup *ruu.Entry) {
	c.detected++
	c.traceEvent(EvMismatch, &orig.Trace, "pair comparator hit")
	if c.recorder != nil {
		c.record(obs.EvMismatch, orig.Seq, &orig.Trace, 0, -1)
	}
	switch {
	case orig.HasFault():
		c.detectLat.Add(c.cycle - orig.FaultCycle)
	case dup.HasFault():
		c.detectLat.Add(c.cycle - dup.FaultCycle)
	}
	if c.lastBadLive && orig.Trace.PC == c.lastBadPC {
		c.permError = true
		return
	}
	c.lastBadPC = orig.Trace.PC
	c.lastBadLive = true
	c.recover(orig.Seq)
}

// retire performs the architectural retirement bookkeeping shared by
// both machines.
// retire commits one instruction architecturally. resultP, addrP and
// storeValueP are the latched values that actually commit (possibly
// corrupted by an undetected fault); they feed the shadow register file
// and store hash behind CommitDigest.
func (c *CPU) retire(tr emu.Trace, isMem, hadFault bool, resultP, addrP, storeValueP uint32) {
	if c.commitWatch != nil {
		// The commit index before increment is the instruction's global
		// program-order position — the lockstep alignment key.
		c.commitWatch(c.committed, c.cycle, tr, resultP, addrP, storeValueP)
	}
	c.committed++
	if r, fp, ok := tr.DestReg(); ok {
		if fp {
			c.shadowFRegs[r] = resultP
		} else if r != isa.RegZero {
			c.shadowRegs[r] = resultP
		}
	}
	if tr.Inst.Op.IsStore() {
		c.storeHash = emu.MixStore(c.storeHash, addrP, tr.MemWidth, storeValueP)
		c.storeCount++
	}
	op := tr.Inst.Op
	switch {
	case op.IsControl():
		c.classCommits[4]++
	case op.IsFP() && !op.IsMem():
		c.classCommits[5]++
	case op.IsLoad():
		c.classCommits[2]++
	case op.IsStore():
		c.classCommits[3]++
	case op.Class() == isa.ClassIntMult:
		c.classCommits[1]++
	default:
		c.classCommits[0]++
	}
	if isMem {
		c.lsq.RemoveHead()
	}
	if hadFault {
		// A corrupted instruction retired without detection. On the
		// baseline this is the expected silent data corruption; on
		// REESE it can only be a fault landing where the comparator has
		// no coverage (e.g. a skipped instruction under partial
		// re-execution).
		c.silent++
	} else if c.lastBadLive && tr.PC == c.lastBadPC {
		// The previously faulting instruction retired cleanly: the
		// transient is gone.
		c.lastBadLive = false
	}
	if tr.Halt {
		c.done = true
	}
}

// ---------------------------------------------------------------------
// Fault recovery
// ---------------------------------------------------------------------

// onMismatch handles a comparator hit: account for the detection, then
// flush the pipeline and replay from the faulting instruction (§4.3). A
// second consecutive mismatch at the same PC is treated as a permanent
// error and stops the machine.
func (c *CPU) onMismatch(bad *reese.Entry) {
	c.detected++
	if bad.HasFault() {
		c.detectLat.Add(c.cycle - bad.FaultCycle)
	}
	if c.lastBadLive && bad.Trace.PC == c.lastBadPC {
		c.permError = true
		return
	}
	c.lastBadPC = bad.Trace.PC
	c.lastBadLive = true
	c.recover(bad.Seq)
}

// recover force-retires everything older than faultSeq, then flushes all
// in-flight state and queues the flushed instructions (from faultSeq on)
// for re-fetch.
func (c *CPU) recover(faultSeq uint64) {
	c.recoveries++
	if c.traceW != nil {
		fmt.Fprintf(c.traceW, "%8d RECOVERY   flush + replay from seq %d\n", c.cycle, faultSeq)
	}
	if c.recorder != nil {
		tr := emu.Trace{PC: c.lastBadPC}
		c.record(obs.EvRecovery, faultSeq, &tr, 0, -1)
	}

	// Rebuild the replay queue into the spare buffer, then swap the two
	// so the next recovery reuses this one's backing array: after the
	// first couple of recoveries the rebuild allocates nothing.
	replay := c.replayScratch[:0]
	if c.rsq != nil {
		c.rsq.Scan(func(e *reese.Entry) bool {
			if e.Seq >= faultSeq {
				replay = append(replay, e.Trace)
			} else {
				// Older than the fault: already executed; it retires
				// with the flush (its verification outcome is what it
				// is).
				c.retire(e.Trace, false, false, e.ResultP, e.AddrP, e.StoreValueP)
			}
			return true
		})
	}
	c.ruu.Scan(func(e *ruu.Entry) bool {
		if !e.Bogus && !e.Dup {
			replay = append(replay, e.Trace)
		}
		return true
	})
	for i := 0; i < c.fetchLen; i++ {
		// Wrong-path entries are squashed work, not program state; they
		// must never re-enter the real instruction stream.
		if fe := c.fetchQAt(i); !fe.bogus {
			replay = append(replay, fe.tr)
		}
	}
	replay = append(replay, c.replayQ[c.replayHead:]...)

	c.replayScratch = c.replayQ[:0]
	c.replayQ = replay
	c.replayHead = 0
	if c.rsq != nil {
		c.rsq.Flush()
	}
	c.ruu.Flush()
	c.lsq.Flush()
	c.fetchQClear()
	c.rLive = 0
	c.pool.Reset()
	c.fetchStalled = false
	c.wrongPath = false
	c.wpMarked = false
	c.hasWPPending = false
	c.fetchReadyAt = c.cycle + 1 + recoveryPenalty
}
