# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test test-race vet bench bench-all bench-smoke trace figures faults faults-smoke faults-mem-smoke triage-smoke claims serve chaos fuzz cluster-smoke cluster-chaos-smoke load clean

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet
	$(GO) test ./...

# The full suite under the race detector (vets the workload build
# cache, the harness worker pool, and the reese-serve job queue, cache,
# and metrics registry).
test-race: vet
	$(GO) test -race ./...

# The tracked hot-path benchmark; results are appended to
# BENCH_pipeline.json so the perf trajectory accumulates across commits.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkSimThroughput|BenchmarkCampaignThroughput' -benchmem . | $(GO) run ./cmd/benchjson -out BENCH_pipeline.json -label "$(BENCH_LABEL)"

# One benchmark per paper table/figure, run once each.
bench-all:
	$(GO) test -bench=. -benchmem -benchtime=1x .

# Performance gate: rerun the tracked benchmark (instrumentation
# compiled in but disabled) and fail if sim-insts/s dropped >5% or
# allocs/op grew versus the newest entry in BENCH_pipeline.json.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkSimThroughput|BenchmarkCampaignThroughput' -benchmem . | $(GO) run ./cmd/benchjson -check -out BENCH_pipeline.json

# Observability demo: run a REESE simulation with the flight recorder
# armed, print the stall attribution report, and dump a Perfetto trace.
trace:
	$(GO) run ./cmd/reese-sim -workload gcc -insts 50000 -reese -why -trace-out trace.json
	@echo "load trace.json at https://ui.perfetto.dev"

# Regenerate every table and figure of the paper.
figures:
	$(GO) run ./cmd/reese-sweep -figure all

faults:
	$(GO) run ./cmd/reese-faults

# Fault-model gate: a small seeded campaign that fails unless every
# injection is classified, result-target faults are 100% detected, and
# no in-sphere fault hangs the machine (see DESIGN §13).
faults-smoke:
	$(GO) run ./cmd/reese-faults -smoke

# Memory-hierarchy gate: a 200-injection campaign over pipeline and
# memory structures on an ECC-L2 machine running the PRBS memory
# workload. Fails unless outcome counts sum to injections six ways, no
# single-bit L2 fault escapes as SDC (SECDED must absorb them), and
# symptom-based localization is >= 90% accurate (see DESIGN §16).
faults-mem-smoke:
	$(GO) run ./cmd/reese-faults -mem-smoke

# SDC triage gate: a seeded campaign over out-of-sphere structures with
# triage enabled. Fails unless every SDC/hang trial carries a Perfetto
# trace with the injection marker, the replay reproduced the original
# exactly, and every SDC's first divergent commit is at or after the
# victim instruction (see DESIGN §17).
triage-smoke:
	$(GO) run ./cmd/reese-faults -triage-smoke

# Run the HTTP simulation service (see README "Serving" and DESIGN §10).
serve:
	$(GO) run ./cmd/reese-serve

# The fault-injection suite for reese-serve (panics, stalls,
# disconnects, kill/restart cycles) plus the serving layer, under the
# race detector, twice, to shake out ordering-dependent bugs (see
# DESIGN §11). Kept separate from the slow harness grids so it stays
# fast enough to run on every change.
chaos:
	$(GO) test -race -count=2 ./internal/chaos/ ./internal/server/

# Cluster gate: an in-process coordinator + 2 worker replicas run a
# small gcc campaign, one worker is hard-killed mid-campaign, and the
# run must still complete with merged counts summing to the injection
# count — byte-identical to the single-process run (see DESIGN §15).
cluster-smoke:
	$(GO) test ./internal/cluster/ -run 'TestClusterKillWorkerSmoke' -count=1 -v

# Crash-safety gate: a 2-worker gcc campaign runs under the seeded
# chaos transport (drops, 503 bursts, truncated/bit-flipped bodies,
# a timed worker partition), the coordinator is killed mid-campaign,
# and a second coordinator resumes from the WAL. Gate: merged report
# and per-trial JSONL byte-identical to the fault-free single-process
# run, completed shards served from the WAL, zero lost or duplicated
# shards (see DESIGN §18).
cluster-chaos-smoke:
	$(GO) test ./internal/cluster/ -run 'TestClusterChaosResume' -count=1 -v

# Serving-layer load curves: drive an in-process 2-worker topology at
# stepped RPS and report p50/p99 latency and the saturation curve. Set
# LOAD_OUT=BENCH_pipeline.json to track the results.
load:
	$(GO) run ./cmd/reese-load -self 2 -rps 2,5,10,20 -step 5s -out "$(LOAD_OUT)" -label "$(BENCH_LABEL)"

# Short fuzz pass over the journal replayer (torn tails, garbage).
fuzz:
	$(GO) test ./internal/server/ -run FuzzReplayJournal -fuzz FuzzReplayJournal -fuzztime 30s

claims:
	$(GO) run ./cmd/reese-sweep -figure claims

clean:
	$(GO) clean ./...
