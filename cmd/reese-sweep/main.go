// Command reese-sweep regenerates the REESE paper's tables and figures.
//
// Usage:
//
//	reese-sweep -figure all            # everything (Tables 1-2, Figures 2-7)
//	reese-sweep -figure 2              # one figure
//	reese-sweep -figure faults         # fault-injection campaign
//	reese-sweep -figure ablations      # RSQ size + partial re-execution sweeps
//	reese-sweep -figure idle           # the §4.1 idle-capacity premise
//	reese-sweep -figure 2 -json        # the figure series as JSON (2-7, faults)
//	reese-sweep -insts 1000000         # bigger instruction budget per run
//	reese-sweep -parallel 1            # force strictly sequential runs
//	reese-sweep -cpuprofile cpu.pprof  # write a CPU profile of the sweep
//	reese-sweep -memprofile mem.pprof  # write a heap profile at exit
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"reese/internal/harness"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		figure     = flag.String("figure", "all", "which figure to regenerate: 2,3,4,5,6,7, table1, table2, faults, ablations, idle, claims, all")
		insts      = flag.Uint64("insts", 150_000, "committed-instruction budget per simulation")
		format     = flag.String("format", "table", "output format for figures 2-5: table or csv")
		asJSON     = flag.Bool("json", false, "emit the figure series as JSON (figures 2-7 and faults)")
		why        = flag.Bool("why", false, "append the commit-slot stall attribution table (figures 2-5)")
		parallel   = flag.Int("parallel", 0, "max concurrent simulations (0 = GOMAXPROCS, 1 = sequential)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	opt := harness.Options{Insts: *insts, Parallel: *parallel}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "reese-sweep:", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "reese-sweep:", err)
			return 1
		}
		// run() (not main) owns the deferred stop, so os.Exit cannot
		// truncate the profile.
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "reese-sweep:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live heap before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "reese-sweep:", err)
			}
		}()
	}

	emit := func(s string, err error) int {
		if err != nil {
			fmt.Fprintln(os.Stderr, "reese-sweep:", err)
			return 1
		}
		fmt.Println(s)
		return 0
	}
	// emitJSON renders v (a figure series) to stdout; mirrors
	// reese-sim -json so downstream tooling gets the same shapes the
	// reese-serve API returns.
	emitJSON := func(v any, err error) int {
		if err != nil {
			fmt.Fprintln(os.Stderr, "reese-sweep:", err)
			return 1
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(v); err != nil {
			fmt.Fprintln(os.Stderr, "reese-sweep:", err)
			return 1
		}
		return 0
	}

	switch *figure {
	case "table1":
		return emit(harness.Table1(), nil)
	case "table2":
		return emit(harness.Table2(), nil)
	case "2", "3", "4", "5":
		f := map[string]func(harness.Options) (*harness.FigureResult, error){
			"2": harness.Figure2, "3": harness.Figure3, "4": harness.Figure4, "5": harness.Figure5,
		}[*figure]
		fig, err := f(opt)
		if err != nil {
			return emit("", err)
		}
		if *asJSON {
			return emitJSON(fig, nil)
		}
		if *format == "csv" {
			return emit(harness.FigureCSV(fig), nil)
		}
		out := fig.Table() + fmt.Sprintf("REESE gap: %.1f%%  with 2 spare ALUs: %.1f%%\n",
			fig.GapPercent("Baseline", "REESE"), sparedGap(fig))
		if *why {
			out += "\n" + fig.StallTable()
		}
		return emit(out, nil)
	case "6":
		rows, err := harness.Figure6(opt)
		if err != nil {
			return emit("", err)
		}
		if *asJSON {
			return emitJSON(rows, nil)
		}
		return emit(harness.Figure6Table(rows), nil)
	case "7":
		points, err := harness.Figure7(opt)
		if err != nil {
			return emit("", err)
		}
		if *asJSON {
			return emitJSON(points, nil)
		}
		return emit(harness.Figure7Table(points), nil)
	case "faults":
		tbl, reports, err := harness.CampaignAll(200, 1, opt)
		if *asJSON {
			return emitJSON(reports, err)
		}
		return emit(tbl, err)
	case "ablations":
		rsq, _, err := harness.RSQSweep([]int{4, 8, 16, 32, 64}, opt)
		if err != nil {
			return emit("", err)
		}
		partial, err := harness.PartialReexecSweep([]int{1, 2, 4, 8}, opt)
		if err != nil {
			return emit("", err)
		}
		hw, _, err := harness.HighWaterSweep([]int{4, 8, 16, 24, 31}, opt)
		if err != nil {
			return emit("", err)
		}
		pred, _, err := harness.PredictorSweep(opt)
		if err != nil {
			return emit("", err)
		}
		lat, _, err := harness.DetectionLatencyVsRSQ([]int{8, 16, 32, 64}, opt)
		if err != nil {
			return emit("", err)
		}
		wp, err := harness.WrongPathSweep(opt)
		if err != nil {
			return emit("", err)
		}
		schemes, _, err := harness.SchemeComparison(opt)
		if err != nil {
			return emit("", err)
		}
		perm, err := harness.PermanentFaultCoverage(opt)
		if err != nil {
			return emit("", err)
		}
		return emit(rsq+"\n"+partial+"\n"+hw+"\n"+pred+"\n"+lat+"\n"+wp+"\n"+schemes+"\n"+perm, nil)
	case "idle":
		tbl, err := harness.IdleCapacity(opt)
		return emit(tbl, err)
	case "claims":
		claims, err := harness.CheckClaims(opt)
		if err != nil {
			return emit("", err)
		}
		out := harness.ClaimsReport(claims)
		for _, c := range claims {
			if !c.Pass {
				fmt.Println(out)
				return 3
			}
		}
		return emit(out, nil)
	case "all":
		report, err := harness.AllFigures(opt)
		return emit(report, err)
	default:
		fmt.Fprintf(os.Stderr, "reese-sweep: unknown figure %q\n", *figure)
		return 2
	}
}

func sparedGap(fig *harness.FigureResult) float64 {
	for _, v := range fig.Variants {
		if v == "R+2ALU" {
			return fig.GapPercent("Baseline", v)
		}
	}
	return 0
}
