package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(1)
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Error("empty histogram")
	}
	for _, v := range []uint64{5, 10, 15} {
		h.Add(v)
	}
	if h.Count() != 3 {
		t.Errorf("count = %d", h.Count())
	}
	if h.Mean() != 10 {
		t.Errorf("mean = %v", h.Mean())
	}
	if h.Min() != 5 || h.Max() != 15 {
		t.Errorf("min/max = %d/%d", h.Min(), h.Max())
	}
}

func TestHistogramZeroWidthDefaultsToOne(t *testing.T) {
	h := NewHistogram(0)
	h.Add(7)
	if h.Count() != 1 {
		t.Error("zero bucket width should not panic")
	}
}

func TestHistogramPercentile(t *testing.T) {
	h := NewHistogram(1)
	for i := uint64(1); i <= 100; i++ {
		h.Add(i)
	}
	if p := h.Percentile(50); p < 50 || p > 52 {
		t.Errorf("p50 = %d", p)
	}
	if p := h.Percentile(95); p < 95 || p > 97 {
		t.Errorf("p95 = %d", p)
	}
	if p := h.Percentile(100); p < 100 || p > 101 {
		t.Errorf("p100 = %d", p)
	}
	empty := NewHistogram(1)
	if empty.Percentile(50) != 0 {
		t.Error("empty percentile")
	}
}

// Property: mean lies within [min, max] for any non-empty sample.
func TestHistogramMeanBounds(t *testing.T) {
	f := func(vals []uint16) bool {
		if len(vals) == 0 {
			return true
		}
		h := NewHistogram(4)
		for _, v := range vals {
			h.Add(uint64(v))
		}
		m := h.Mean()
		return m >= float64(h.Min())-1e-9 && m <= float64(h.Max())+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("My Title", "name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRow("b", "22")
	s := tb.String()
	if !strings.Contains(s, "My Title") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	// title, header, rule, 2 rows
	if len(lines) != 5 {
		t.Errorf("lines = %d:\n%s", len(lines), s)
	}
	// Columns aligned: "alpha" and "b" rows have value at same offset.
	h := lines[1]
	idx := strings.Index(h, "value")
	if idx < 0 {
		t.Fatal("no value header")
	}
	if lines[3][idx] != '1' || lines[4][idx] != '2' {
		t.Errorf("misaligned:\n%s", s)
	}
}

func TestTableRowTruncationAndPadding(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("1", "2", "3") // extra cell dropped
	tb.AddRow("x")           // short row padded
	s := tb.String()
	if strings.Contains(s, "3") {
		t.Error("extra cell should be dropped")
	}
	if !strings.Contains(s, "x") {
		t.Error("short row lost")
	}
}

func TestAddRowf(t *testing.T) {
	tb := NewTable("", "v")
	tb.AddRowf(3.14159)
	if !strings.Contains(tb.String(), "3.142") {
		t.Errorf("float formatting:\n%s", tb.String())
	}
	tb2 := NewTable("", "v", "w")
	tb2.AddRowf("s", 42)
	if !strings.Contains(tb2.String(), "42") {
		t.Error("int formatting")
	}
}

func TestRatio(t *testing.T) {
	if Ratio(6, 3) != 2 {
		t.Error("ratio")
	}
	if Ratio(6, 0) != 0 {
		t.Error("zero denominator")
	}
}

func TestPercentDelta(t *testing.T) {
	if got := PercentDelta(2.0, 1.7); math.Abs(got-15) > 1e-9 {
		t.Errorf("delta = %v", got)
	}
	if PercentDelta(0, 5) != 0 {
		t.Error("zero base")
	}
	if got := PercentDelta(1.0, 1.2); got >= 0 {
		t.Error("faster should be negative")
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("empty mean")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Error("mean")
	}
}
