package server

// Content-addressed result cache. The simulator is deterministic — the
// same (machine config, workload, instruction budget, fault seed)
// always produces byte-identical results at any parallelism (see
// harness's TestParallelDeterminism) — so a cache keyed on the
// canonicalized request is exact: a hit IS the answer, not an
// approximation. Keys are sha256 over the canonical JSON encoding of
// the normalized request (defaults filled in, so sparse and explicit
// spellings of the same job collide as they should).

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"
)

// cacheKey canonicalizes a request into its content address. kind
// separates the endpoint namespaces; req must already be normalized
// (all defaults applied). encoding/json emits struct fields in
// declaration order, so the encoding — and therefore the hash — is
// deterministic.
func cacheKey(kind string, req any) (string, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return "", fmt.Errorf("server: canonicalize %s request: %w", kind, err)
	}
	h := sha256.New()
	h.Write([]byte(kind))
	h.Write([]byte{0})
	h.Write(body)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// resultCache is a bounded LRU from cache key to the job's result
// payload, with hit/miss/eviction accounting.
type resultCache struct {
	mu      sync.Mutex
	max     int
	order   *list.List // front = most recent; values are *cacheEntry
	entries map[string]*list.Element

	hits      *Counter
	misses    *Counter
	evictions *Counter
}

type cacheEntry struct {
	key     string
	payload json.RawMessage
}

// newResultCache builds a cache holding at most max entries (max <= 0
// disables caching: every lookup misses and nothing is stored).
func newResultCache(max int, m *Metrics) *resultCache {
	c := &resultCache{
		max:       max,
		order:     list.New(),
		entries:   make(map[string]*list.Element),
		hits:      m.Counter("reese_serve_cache_hits_total", "Result cache hits."),
		misses:    m.Counter("reese_serve_cache_misses_total", "Result cache misses."),
		evictions: m.Counter("reese_serve_cache_evictions_total", "Result cache LRU evictions."),
	}
	m.Gauge("reese_serve_cache_entries", "Result cache resident entries.", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(len(c.entries))
	})
	return c
}

// get returns the cached payload for key, recording a hit or miss.
func (c *resultCache) get(key string) (json.RawMessage, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses.Inc()
		return nil, false
	}
	c.order.MoveToFront(el)
	c.hits.Inc()
	return el.Value.(*cacheEntry).payload, true
}

// put stores payload under key, evicting the least recently used entry
// when over capacity.
func (c *resultCache) put(key string, payload json.RawMessage) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).payload = payload
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, payload: payload})
	for len(c.entries) > c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.evictions.Inc()
	}
}

// stats returns (hits, misses) for tests and the healthz payload.
func (c *resultCache) stats() (hits, misses uint64) {
	return c.hits.Value(), c.misses.Value()
}
