package harness

// Automatic SDC triage: time-travel replay with flight-recorder traces
// and first-divergence attribution.
//
// A campaign classifies escapes (SDC, hangs) but says nothing about
// *how* the corruption propagated — debugging one still meant re-running
// the trial by hand with tracing on. With CampaignSpec.Triage set, every
// trial that classifies as SDC or Hang (optionally Detected) is
// immediately re-run from the same checkpoint it originally forked from,
// with three instruments armed that the original run did not carry:
//
//   - the flight recorder, windowed around the injection cycle
//     (pipeline.CPU.SetRecorderWindow): the ring holds the pre-injection
//     context and freezes shortly after the fault fires, so the Perfetto
//     trace shows the corruption being planted instead of the tail of
//     the run;
//   - a lockstep golden emulator driven from the commit watch
//     (pipeline.CPU.SetCommitWatch): every architectural retire is
//     compared in program order against an independent emu.Machine, and
//     the first mismatch — register value, store address/value, or fetch
//     PC — is the first divergent commit, stamped into the trace as a
//     DIVERGENCE marker;
//   - the Brent hang probe's detected loop period
//     (pipeline.Result.HangPeriod) for hangs.
//
// The replay reuses the trial's exact fork and splice machinery, so it
// is byte-identical to the original run. Non-hang replays stop early
// once attribution is settled — the recorder window frozen and the
// divergence search resolved (see triageHorizon) — because the skipped
// tail is verification-only; TriageRecord.ReplayOK then asserts prefix
// fidelity (same fault, same cycle, within the original's commit
// budget), while replays that run to the end are held to exact
// reproduction: same outcome, cycle count, and digests. A replay that
// disagrees either way is reported rather than trusted.
//
// The lockstep emulator is deliberately independent of the pipeline's
// own oracle: oracle-site faults (regfile, fetch-pc) and memory-plane
// faults corrupt the oracle itself, so "compare against the oracle"
// would compare corrupted state against corrupted state and see nothing.

import (
	"bytes"
	"context"
	"fmt"

	"reese/internal/emu"
	"reese/internal/fault"
	"reese/internal/obs"
	"reese/internal/pipeline"
)

// triageRingCap is the flight-recorder ring size for triage replays:
// large enough to hold the full lifecycle of a few hundred instructions
// around the injection.
const triageRingCap = 8192

// triageWindow is the post-injection recording window in cycles:
// lifecycle recording freezes this many cycles after the fault fires
// (marker events still land), keeping the ring centred on the injection.
// It is sized well below the ring: a window's worth of lifecycle events
// must not wrap the ring, or the FAULT marker itself would be evicted.
// At ~10 events per instruction and IPC near 2, 128 cycles is ~2500
// events — comfortably under the 8192-event ring, leaving most of the
// ring for pre-injection context. The window does not bound the
// divergence search (triageHorizon does), and marker events — late
// detections, the divergence instant — record regardless.
const triageWindow = 128

// triageHorizon bounds the lockstep divergence search: a non-hang replay
// stops once the recorder window has frozen and either a divergence was
// found or this many cycles have passed since injection with every
// commit still matching the golden. Corruption that stays latent past
// the horizon is attributed from the original trial's final state
// ("memory" / "final-state") instead of a commit. The bound is what
// makes triage affordable — most of an escape's replay is tail the
// attribution never looks at — and it is generous: across the seeded
// gcc campaigns the slowest observed commit divergence lands ~4.6k
// cycles after injection, mean ~400.
const triageHorizon = 8192

// Divergence is the first architectural disagreement between a triaged
// trial's commit stream and the golden execution, found by lockstep
// comparison at retire.
type Divergence struct {
	// Seq is the global commit index (program-order instruction number)
	// of the first divergent commit.
	Seq uint64 `json:"seq"`
	// Kind says what disagreed first: "register" (destination value),
	// "store" (address or value), "pc" (control flow left the golden
	// path, including running past the golden halt), "memory" (no commit
	// diverged but the final memory image differs — a planted RAM fault
	// nothing reloaded, a lost write-back), or "final-state" (digest
	// mismatch with no attributable commit).
	Kind string `json:"kind"`
	// Reg is the destination register for "register" divergences.
	Reg uint8 `json:"reg,omitempty"`
	// Golden/Got are the disagreeing values: register results for
	// "register", store values (or addresses) for "store", fetch PCs for
	// "pc", and for "memory" Got is the lowest corrupted word address.
	Golden uint32 `json:"golden"`
	Got    uint32 `json:"got"`
	// Cycle is the replay cycle of the divergent commit; CycleDelta is
	// cycles from fault injection to that commit — how long the
	// corruption stayed latent before becoming architectural.
	Cycle      uint64 `json:"cycle,omitempty"`
	CycleDelta uint64 `json:"cycle_delta,omitempty"`
}

// TriageRecord is the triage pass's attachment to an escaped trial.
type TriageRecord struct {
	// ReplayOK reports the replay reproduced the original trial: a replay
	// that ran to the trial's natural end must match it exactly (outcome,
	// cycle count, committed count, final digests); a replay stopped
	// early — attribution complete, tail skipped (see triageHorizon) —
	// must have fired the same fault at the same cycle and stayed within
	// the original's cycle and commit counts. A false value means the
	// attribution below cannot be trusted.
	ReplayOK bool `json:"replay_ok"`
	// FirstDivergence is the first architectural divergence from the
	// golden execution (nil for hangs that wedge before any divergent
	// commit).
	FirstDivergence *Divergence `json:"first_divergence,omitempty"`
	// CyclesToDivergence mirrors FirstDivergence.CycleDelta at the top
	// level for aggregation.
	CyclesToDivergence uint64 `json:"cycles_to_divergence,omitempty"`
	// Transited is the ordered list of pipeline lifecycle stages the
	// victim instruction's corruption transited, from the flight
	// recorder's events for the victim sequence number.
	Transited []string `json:"transited,omitempty"`
	// HangPeriod is the cycle period of the wedged-machine loop the
	// Brent probe proved, for hang trials (0 otherwise).
	HangPeriod uint64 `json:"hang_period,omitempty"`
	// TraceEvents/TraceDropped describe the captured flight-recorder
	// ring: events retained and events the ring overwrote. A non-zero
	// TraceDropped means the Perfetto trace is a partial record. Both
	// depend on how much pre-injection context the replay recorded —
	// i.e. on the checkpoint schedule — so they are deliberately NOT
	// serialized into the trial record (which stays byte-identical at
	// any checkpoint interval); the trace blob's otherData carries the
	// same counters for consumers of the artifact itself.
	TraceEvents  int    `json:"-"`
	TraceDropped uint64 `json:"-"`
	// TracePath is where the Perfetto trace was written, when the caller
	// persists traces to disk (the CLI's -triage-dir).
	TracePath string `json:"trace_path,omitempty"`
	// Trace is the Perfetto (Chrome trace format) JSON blob. Excluded
	// from the trial's own JSON form — JSONL stays line-sized — and
	// shipped out of band (CLI trace files, server trace endpoints).
	Trace []byte `json:"-"`
}

// getLock returns a recycled lockstep golden emulator positioned at
// checkpoint bi: scalars cloned from the bundle's per-checkpoint golden
// snapshots (built once, lazily, by a single emulator pass over the
// program), memory page-diffed from the checkpoint image exactly like a
// trial worker's. No per-escape memory load, no fast-forward from
// instruction zero.
func (b *campaignBundle) getLock(bi int) (*campaignWorker, error) {
	b.lockOnce.Do(func() {
		m, err := emu.New(b.prog)
		if err != nil {
			b.lockErr = err
			return
		}
		snaps := make([]*emu.Machine, len(b.checkpoints))
		for i, ck := range b.checkpoints {
			if n := ck.Committed - m.InstCount(); n > 0 {
				if _, err := m.Run(n); err != nil {
					b.lockErr = fmt.Errorf("harness: golden emulator snapshot at %d insts: %w", ck.Committed, err)
					return
				}
			}
			if m.InstCount() != ck.Committed {
				b.lockErr = fmt.Errorf("harness: golden emulator stopped at %d insts, checkpoint at %d", m.InstCount(), ck.Committed)
				return
			}
			snaps[i] = m.Clone(nil) // detached: scalars only, memory comes from the checkpoint image
		}
		b.lockSnaps = snaps
	})
	if b.lockErr != nil {
		return nil, b.lockErr
	}
	w, _ := b.locks.Get().(*campaignWorker)
	if w == nil {
		w = &campaignWorker{}
	}
	if err := w.adopt(b.prog, b.checkpoints[bi].Mem); err != nil {
		return nil, err
	}
	w.lock = b.lockSnaps[bi].CloneInto(w.lock, w.mem)
	return w, nil
}

// triageWanted reports whether an outcome qualifies for the triage pass.
func triageWanted(o fault.Outcome, detected bool) bool {
	switch o {
	case fault.OutcomeSDC, fault.OutcomeHang:
		return true
	case fault.OutcomeDetected:
		return detected
	}
	return false
}

// triageTrial re-runs an escaped trial from its checkpoint with the
// flight recorder and the lockstep first-divergence watch armed, and
// attaches the TriageRecord to the trial. The replay reuses runTrial's
// fork/splice path unchanged, so it reproduces the original byte for
// byte; instruments are observers only.
func (b *campaignBundle) triageTrial(ctx context.Context, t *Trial, opt Options) error {
	// Replay into a scratch copy: the plan fields drive the re-run, the
	// result fields are recomputed and compared against the original.
	rt := *t
	rt.Triage = nil

	lw, err := b.getLock(b.forkPoint(t.Seq))
	if err != nil {
		return err
	}
	defer b.locks.Put(lw)
	lock := lw.lock
	// The flight-recorder ring rides the pooled worker: Reset reuses the
	// backing array instead of zeroing a fresh ~400KB ring per escape.
	if lw.rec == nil {
		lw.rec = obs.NewRecorder(triageRingCap)
	} else {
		lw.rec.Reset()
	}
	rec := lw.rec

	// Non-hang replays stop once attribution is settled: the recorder
	// window has frozen and the divergence search has either hit or
	// exhausted its horizon. The skipped tail is verification-only, and
	// for long trials it is most of the replay. Hang replays run to the
	// wedge — the Brent probe's loop period is the attribution.
	fullReplay := t.outcome == fault.OutcomeHang
	stopped := false

	var (
		cpu      *pipeline.CPU
		div      *Divergence
		divCycle uint64
		lockDead bool // lockstep emulator halted or errored; stop comparing
	)
	instrument := func(c *pipeline.CPU) {
		cpu = c
		c.SetRecorder(rec)
		c.SetRecorderWindow(triageWindow)
		// The lockstep golden was positioned at the fork checkpoint by
		// getLock; a mismatch here would mean the fork and the snapshot
		// chain disagree, so stop comparing rather than mis-attribute.
		if c.Committed() != lock.InstCount() {
			lockDead = true
		}
		c.SetCommitWatch(func(seq, cycle uint64, tr emu.Trace, resultP, addrP, storeValueP uint32) {
			if stopped {
				return
			}
			if !fullReplay {
				if fc := cpu.FaultCycle(); fc > 0 && cycle >= fc+triageWindow &&
					(div != nil || lockDead || cycle >= fc+triageHorizon) {
					stopped = true
					cpu.RequestStop()
					return
				}
			}
			if div != nil || lockDead {
				return
			}
			gtr, err := lock.Step()
			if err != nil {
				// The golden program is over but the replay is still
				// committing: control flow left the golden path.
				lockDead = true
				div = &Divergence{Seq: seq, Kind: "pc", Got: tr.PC}
				divCycle = cycle
				cpu.MarkDivergence(cycle, seq, tr)
				return
			}
			d := compareCommit(gtr, tr, resultP, addrP, storeValueP)
			if d == nil {
				return
			}
			d.Seq = seq
			div = d
			divCycle = cycle
			cpu.MarkDivergence(cycle, seq, tr)
		})
	}

	if err := b.runTrialInstr(ctx, &rt, opt, instrument); err != nil {
		return err
	}

	rec2 := &TriageRecord{
		HangPeriod:   rt.hangPeriod,
		TraceEvents:  rec.Len(),
		TraceDropped: rec.Dropped(),
	}
	if stopped {
		// The replay never reached the trial's end, so final state cannot
		// be compared; verify the replayed prefix instead. The injection
		// firing at the original's exact cycle pins the fault plant, and
		// the commit/cycle bounds catch a replay that ran away.
		rec2.ReplayOK = rt.Fired == t.Fired && rt.faultCycle == t.faultCycle &&
			rt.Committed <= t.Committed && rt.Cycles <= t.Cycles
	} else {
		rec2.ReplayOK = rt.Outcome == t.Outcome && rt.Cycles == t.Cycles &&
			rt.Committed == t.Committed && rt.Fired == t.Fired &&
			rt.commitDig == t.commitDig && rt.oracleDig == t.oracleDig
	}
	if div == nil {
		// No commit diverged within the horizon. Attribute what the
		// original trial's classifier saw instead: a corrupted final
		// memory image (a planted fault nothing reloaded, a lost
		// write-back), or — defensively — a digest mismatch with no
		// visible cause.
		switch {
		case t.diffWords > 0:
			div = &Divergence{Seq: t.Seq, Kind: "memory", Got: t.diffLo}
		case t.outcome == fault.OutcomeSDC:
			div = &Divergence{Seq: t.Seq, Kind: "final-state"}
		}
	}
	if div != nil {
		if fc := cpu.FaultCycle(); fc != 0 && divCycle > fc {
			div.Cycle = divCycle
			div.CycleDelta = divCycle - fc
		}
		rec2.FirstDivergence = div
		rec2.CyclesToDivergence = div.CycleDelta
	}
	rec2.Transited = transited(rec, t.Seq)

	var buf bytes.Buffer
	buf.Grow(110*rec.Len() + 1024) // compact events run ~100 bytes each; skip doubling churn
	if err := rec.WriteChromeTrace(&buf); err != nil {
		return fmt.Errorf("harness: triage trace for trial %d: %w", t.Index, err)
	}
	rec2.Trace = buf.Bytes()

	t.Triage = rec2
	return nil
}

// compareCommit checks one architectural retire against the lockstep
// golden step and returns the divergence, or nil when they agree. The
// comparison order matches severity: control flow first, then the
// destination-register value, then the store.
func compareCommit(gtr, tr emu.Trace, resultP, addrP, storeValueP uint32) *Divergence {
	if gtr.PC != tr.PC {
		return &Divergence{Kind: "pc", Golden: gtr.PC, Got: tr.PC}
	}
	if r, isFP, ok := tr.DestReg(); ok && (isFP || r != 0) {
		if resultP != gtr.Result {
			return &Divergence{Kind: "register", Reg: uint8(r), Golden: gtr.Result, Got: resultP}
		}
	}
	if tr.Inst.Op.IsStore() {
		if addrP != gtr.Addr {
			return &Divergence{Kind: "store", Golden: gtr.Addr, Got: addrP}
		}
		if storeValueP != gtr.StoreValue {
			return &Divergence{Kind: "store", Golden: gtr.StoreValue, Got: storeValueP}
		}
	}
	return nil
}

// transited lists the distinct lifecycle stages the victim sequence
// number's events moved through, in first-seen order — the structures
// the corruption transited on its way to (or past) the comparator.
func transited(rec *obs.Recorder, victim uint64) []string {
	var out []string
	var seen [obs.NumEventKinds]bool
	rec.Scan(func(e obs.Event) {
		if e.Seq != victim || seen[e.Kind] {
			return
		}
		seen[e.Kind] = true
		out = append(out, e.Kind.String())
	})
	return out
}
