package server

// Crash-safe job journal: an append-only JSON-lines write-ahead log of
// job state transitions (submit, start, retry, done, fail, cancel),
// fsync'd on every append. A restarted server replays the journal and
// re-enqueues every job whose last recorded state is non-terminal —
// sound because simulation is deterministic and requests are journaled
// in canonical (normalized) form, so a re-run produces byte-identical
// results under the same content address. Result payloads are NOT
// journaled: a replayed terminal job keeps its terminal state and
// cause, and an identical resubmission recomputes the payload through
// the cache.
//
// Replay is tolerant by construction: a crash can leave a torn final
// line, so decoding stops at the first malformed line and keeps
// everything before it (locked in by FuzzReplayJournal). Clean
// shutdown compacts the journal down to the submit records of any
// still-unfinished jobs (normally none), so the file does not grow
// across restarts.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"
)

// Journal record types.
const (
	recSubmit = "submit"
	recStart  = "start"
	recRetry  = "retry"
	recDone   = "done"
	recFail   = "fail"
	recCancel = "cancel"
)

// journalRecord is one JSON line of the write-ahead log.
type journalRecord struct {
	T   string    `json:"t"`
	Job string    `json:"job"`
	TS  time.Time `json:"ts"`
	// Submit fields: enough to rebuild the job after a crash.
	Kind      string          `json:"kind,omitempty"`
	Key       string          `json:"key,omitempty"`
	Req       json.RawMessage `json:"req,omitempty"`
	TimeoutMS int64           `json:"timeout_ms,omitempty"`
	// Attempt/Cause annotate start, retry, and failure records.
	Attempt int    `json:"attempt,omitempty"`
	Cause   string `json:"cause,omitempty"`
}

// journal is the append handle. All methods are safe on a nil receiver
// (journaling disabled) and after kill() (simulated crash: appends stop
// reaching the file, exactly as if the process had died).
type journal struct {
	mu     sync.Mutex
	f      *os.File
	path   string
	killed bool
}

// openJournal opens (creating if needed) the journal at path for
// appending.
func openJournal(path string) (*journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("server: open journal: %w", err)
	}
	return &journal{f: f, path: path}, nil
}

// append writes one record and fsyncs, so an acknowledged transition
// survives power loss. Errors are returned for the caller to log; the
// serving path must not die because a disk did.
func (j *journal) append(rec journalRecord) error {
	if j == nil {
		return nil
	}
	rec.TS = time.Now().UTC()
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.killed || j.f == nil {
		return nil
	}
	if _, err := j.f.Write(append(line, '\n')); err != nil {
		return err
	}
	return j.f.Sync()
}

// kill simulates a hard process death for the chaos harness and for
// expired drains: every subsequent append silently vanishes, leaving
// the on-disk journal exactly as a SIGKILL would have — so unfinished
// jobs keep their last durable state and are replayed on restart.
func (j *journal) kill() {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.killed = true
	j.mu.Unlock()
}

// close releases the file handle.
func (j *journal) close() {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f != nil {
		j.f.Close()
		j.f = nil
	}
}

// compact rewrites the journal to hold only the submit records of the
// given unfinished jobs (normally none after a clean drain), via a
// temp-file rename so a crash mid-compaction loses nothing.
func (j *journal) compact(live []journalRecord) error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.killed {
		return nil // a "dead" journal must keep its crash-time contents
	}
	tmp := j.path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	for _, rec := range live {
		line, merr := json.Marshal(rec)
		if merr != nil {
			f.Close()
			os.Remove(tmp)
			return merr
		}
		if _, werr := f.Write(append(line, '\n')); werr != nil {
			f.Close()
			os.Remove(tmp)
			return werr
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, j.path); err != nil {
		return err
	}
	if j.f != nil {
		j.f.Close()
	}
	j.f, err = os.OpenFile(j.path, os.O_WRONLY|os.O_APPEND, 0o644)
	return err
}

// replayedJob is one job reconstructed from the journal: its last
// durable state plus everything needed to re-enqueue it if that state
// is non-terminal.
type replayedJob struct {
	ID      string
	Kind    string
	Key     string
	Req     json.RawMessage
	Timeout time.Duration
	Created time.Time
	// State is the last journaled state: queued, running, retrying, or a
	// terminal state.
	State    JobState
	Attempts int
	Cause    string
}

// replayJournal decodes the journal at path into per-job final states,
// in submission order, plus the highest job ID seen (so a restarted
// server's ID counter never collides). A missing file is an empty
// journal. Malformed or truncated trailing data ends the replay at the
// last good line — never an error, never a panic.
func replayJournal(path string) ([]replayedJob, uint64, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("server: open journal for replay: %w", err)
	}
	defer f.Close()

	byID := make(map[string]*replayedJob)
	var order []string
	var maxID uint64
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24) // canonical requests can be large (full machine configs)
	for sc.Scan() {
		var rec journalRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			break // torn tail from a crash mid-append: keep what we have
		}
		if rec.Job == "" {
			break
		}
		var n uint64
		if _, err := fmt.Sscanf(rec.Job, "j-%d", &n); err == nil && n > maxID {
			maxID = n
		}
		switch rec.T {
		case recSubmit:
			if rec.Kind == "" || len(rec.Req) == 0 {
				continue // malformed but parseable line: skip defensively
			}
			if _, dup := byID[rec.Job]; dup {
				continue // duplicate submit: first one wins
			}
			byID[rec.Job] = &replayedJob{
				ID:      rec.Job,
				Kind:    rec.Kind,
				Key:     rec.Key,
				Req:     append(json.RawMessage(nil), rec.Req...),
				Timeout: time.Duration(rec.TimeoutMS) * time.Millisecond,
				Created: rec.TS,
				State:   StateQueued,
			}
			order = append(order, rec.Job)
		case recStart:
			if r, ok := byID[rec.Job]; ok && !r.State.terminal() {
				r.State = StateRunning
				r.Attempts = rec.Attempt
			}
		case recRetry:
			if r, ok := byID[rec.Job]; ok && !r.State.terminal() {
				r.State = StateRetrying
				r.Attempts = rec.Attempt
				r.Cause = rec.Cause
			}
		case recDone:
			if r, ok := byID[rec.Job]; ok {
				r.State = StateDone
			}
		case recFail:
			if r, ok := byID[rec.Job]; ok {
				r.State = StateFailed
				r.Cause = rec.Cause
				r.Attempts = rec.Attempt
			}
		case recCancel:
			if r, ok := byID[rec.Job]; ok {
				r.State = StateCanceled
				r.Cause = rec.Cause
			}
		}
	}
	out := make([]replayedJob, 0, len(order))
	for _, id := range order {
		out = append(out, *byID[id])
	}
	return out, maxID, nil
}
