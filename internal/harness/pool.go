package harness

// Bounded worker pool shared by every experiment in the package. Grids,
// campaigns, and sweeps all fan out through forEach, so the number of
// concurrent simulations is capped (by default at GOMAXPROCS) no matter
// how many cells an experiment has — a figure is ~30 simulations, and
// each one owns an 8 MiB memory image, so unbounded fan-out both
// oversubscribes the CPU and spikes memory.
//
// Determinism: workers only write results into caller-provided slots
// indexed by job number; callers assemble tables from those slots in
// index order afterwards. Each job builds its own injector/PRNG from
// fixed seeds. Output is therefore byte-identical at any parallelism,
// which TestParallelDeterminism locks in.

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// forEach runs fn(i) for every i in [0, n) on a pool of `parallel`
// worker goroutines and returns the lowest-index error, if any.
// parallel <= 0 selects runtime.GOMAXPROCS(0); parallel == 1 runs
// inline on the calling goroutine with no pool at all.
func forEach(n, parallel int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	if parallel > n {
		parallel = n
	}
	if parallel == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(parallel)
	for w := 0; w < parallel; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
