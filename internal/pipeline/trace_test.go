package pipeline

import (
	"strings"
	"testing"

	"reese/internal/config"
	"reese/internal/fault"
)

func TestPipelineTrace(t *testing.T) {
	var buf strings.Builder
	cpu, err := New(config.Starting().WithReese(), mustProg(t, loopProgram(5)), &fault.AtSeq{Seq: 10, Bit: 2})
	if err != nil {
		t.Fatal(err)
	}
	cpu.SetTrace(&buf)
	if _, err := cpu.Run(0); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"FETCH", "DISPATCH", "ISSUE", "WRITEBACK", "ENTER-RSQ", "DISPATCH-R", "ISSUE-R", "VERIFY", "COMMIT", "FAULT", "MISMATCH", "RECOVERY"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %s event", want)
		}
	}
	// Event ordering sanity for the first instruction: fetch before
	// dispatch before issue.
	iF := strings.Index(out, "FETCH")
	iD := strings.Index(out, "DISPATCH")
	iI := strings.Index(out, "ISSUE")
	if !(iF < iD && iD < iI) {
		t.Error("event order broken")
	}
}

func TestEventKindStrings(t *testing.T) {
	kinds := []EventKind{EvFetch, EvDispatch, EvIssue, EvWriteback, EvEnterRSQ,
		EvDispatchR, EvIssueR, EvVerify, EvCommit, EvMispredict, EvFaultInjected, EvMismatch, EvRecovery}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if seen[s] || strings.HasPrefix(s, "event(") {
			t.Errorf("kind %d stringifies to %q", k, s)
		}
		seen[s] = true
	}
	if EventKind(99).String() != "event(99)" {
		t.Error("unknown kind")
	}
}
