package workload

import (
	"fmt"

	"reese/internal/asm"
	"reese/internal/program"
)

// buildVortex models vortex (an object-oriented database): records move
// between two memory regions with field updates along the way. Each
// transaction reads a 32-byte record, validates a field, updates two
// fields, and writes the record to the other region. Loads and stores
// dominate the instruction mix, with highly predictable branches — the
// memory-bandwidth-bound profile that makes vortex respond to memory
// ports more than to ALUs.
func buildVortex(iters int) (*program.Program, error) {
	const records = 64 // 32-byte records per region
	g := newPRNG(0xD8)
	src := fmt.Sprintf(`
	; vortex stand-in: record store transactions.
main:
	li r20, %d            ; outer iterations
	la r21, regionA
	la r22, regionB
	la r24, index
	li r23, 0             ; checksum
outer:
	li r10, 0             ; transaction counter
	li r14, 0             ; current record index (chained via the index table)
txn_loop:
	; look the record up through the index table — the load feeding the
	; next address is what serialises a database's record stream
	slli r11, r14, 2
	add r11, r11, r24
	lw r14, 0(r11)        ; next record index, loaded (dependent chain)
	slli r11, r14, 5
	; source/destination alternate by pass parity in r20
	andi r1, r20, 1
	beq r1, r0, a_to_b
	add r12, r11, r22     ; src = B
	add r13, r11, r21     ; dst = A
	j do_txn
a_to_b:
	add r12, r11, r21     ; src = A
	add r13, r11, r22     ; dst = B
do_txn:
	; read the 8-word record
	lw r1, 0(r12)
	lw r2, 4(r12)
	lw r3, 8(r12)
	lw r4, 12(r12)
	lw r5, 16(r12)
	lw r6, 20(r12)
	lw r7, 24(r12)
	lw r8, 28(r12)
	; validate: key field must be non-zero, else repair it
	bne r1, r0, valid
	addi r1, r10, 1
valid:
	; update: bump version, mix a payload word
	addi r2, r2, 1
	xor r5, r5, r1
	add r23, r23, r2
	; write the record to the destination region
	sw r1, 0(r13)
	sw r2, 4(r13)
	sw r3, 8(r13)
	sw r4, 12(r13)
	sw r5, 16(r13)
	sw r6, 20(r13)
	sw r7, 24(r13)
	sw r8, 28(r13)
	addi r10, r10, 1
	slti r1, r10, %d
	bne r1, r0, txn_loop
	addi r20, r20, -1
	bne r20, r0, outer
%s
.data
index:
%s
regionA:
%s
regionB:
	.space %d
`, iters, records, emitChecksum("r23"),
		wordListRange(g, records, 0, records-1),
		wordList(g, records*8, 0), records*32)
	return asm.Assemble("vortex", src)
}
