package cluster

// Coordinator write-ahead log: the crash-safety half of the cluster
// contract. The worker-side job journal (internal/server/journal.go)
// makes a single replica's accepted work durable; this file applies
// the same idiom — append-only JSON lines, fsync per record, torn-
// tail-tolerant replay — to the coordinator, whose loss previously
// forfeited an entire campaign.
//
// One campaign is one WAL file, keyed by a resume token:
//
//	<dir>/<token>.wal           the journal
//	<dir>/<token>.shards/       content-addressed shard payload files
//
// Three record types:
//
//	campaign  the canonical Campaign spec plus the resolved shard
//	          windows — journaled once, first, so a resumed run splits
//	          the plan identically even if the worker set changed
//	assign    shard → worker, for post-mortem observability
//	complete  shard → sha256 of its payload file, appended only after
//	          the payload bytes are durably on disk
//
// A restarted coordinator replays the WAL, reloads every completed
// shard whose payload file still hashes to its journaled digest, and
// re-enqueues only the missing windows; merged output is byte-
// identical to an uninterrupted run because the restored payloads are
// the exact bytes the workers produced. Anything suspect — torn tail,
// missing or corrupt payload file, window mismatch — demotes that
// shard to "not done" and it simply re-runs: the WAL can lose work,
// never invent it.

import (
	"bufio"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sync"
	"time"

	"reese/internal/server"
)

// WAL record types.
const (
	walCampaign = "campaign"
	walAssign   = "assign"
	walComplete = "complete"
)

// walRecord is one JSON line of the coordinator journal.
type walRecord struct {
	T  string    `json:"t"`
	TS time.Time `json:"ts"`
	// Campaign fields.
	Spec   json.RawMessage `json:"spec,omitempty"`
	Shards [][2]int        `json:"shards,omitempty"` // [offset, count] per shard
	// Assign/complete fields. Shard deliberately has no omitempty:
	// index 0 is a real shard.
	Shard  int    `json:"shard"`
	Worker string `json:"worker,omitempty"`
	Digest string `json:"digest,omitempty"`
}

// campaignWAL is the append handle for one campaign's journal.
// Appends arrive from every worker loop concurrently; mu serializes
// them so records never interleave mid-line.
type campaignWAL struct {
	path      string
	shardsDir string
	log       *slog.Logger

	mu sync.Mutex
	f  *os.File
}

// walState is a campaign reconstructed from its WAL: the journaled
// spec, the resolved shard windows, and the digests of every durably
// completed shard.
type walState struct {
	spec      json.RawMessage
	windows   [][2]int
	completed map[int]string // shard index → payload file digest
}

// campaignToken returns the durable identity of a campaign: the
// client-chosen resume token, or — when none was given — the hex
// sha256 of the canonical spec, so identical resubmissions of the same
// campaign resume each other automatically.
func campaignToken(req Campaign) string {
	if req.ResumeToken != "" {
		return sanitizeToken(req.ResumeToken)
	}
	raw, err := json.Marshal(canonicalCampaign(req))
	if err != nil {
		return "campaign" // unreachable for a decodable request
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:16])
}

// canonicalCampaign strips the fields that name the campaign rather
// than define it, for token derivation and resume-spec comparison.
func canonicalCampaign(req Campaign) Campaign {
	req.ResumeToken = ""
	return req
}

// sanitizeToken makes a client token safe as a filename component;
// anything exotic is replaced by its hash rather than rejected.
func sanitizeToken(token string) string {
	ok := len(token) > 0 && len(token) <= 100
	for i := 0; ok && i < len(token); i++ {
		c := token[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_', c == '.':
		default:
			ok = false
		}
	}
	if ok {
		return token
	}
	sum := sha256.Sum256([]byte(token))
	return hex.EncodeToString(sum[:16])
}

// openCampaignWAL opens (creating if needed) the WAL for token under
// dir and replays whatever is already there. A nil state means a fresh
// campaign; the caller must journal the campaign record via begin
// before assigning shards.
func openCampaignWAL(dir, token string, log *slog.Logger) (*campaignWAL, *walState, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("cluster: wal dir: %w", err)
	}
	w := &campaignWAL{
		path:      filepath.Join(dir, token+".wal"),
		shardsDir: filepath.Join(dir, token+".shards"),
		log:       log,
	}
	state, err := replayWAL(w.path)
	if err != nil {
		return nil, nil, err
	}
	w.f, err = os.OpenFile(w.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("cluster: open wal: %w", err)
	}
	return w, state, nil
}

// replayWAL decodes the journal into the campaign's durable state. A
// missing file is a fresh campaign; a malformed or torn trailing line
// ends the replay at the last good record. A file without a leading
// campaign record (e.g. only a torn first line survived) replays as
// fresh.
func replayWAL(path string) (*walState, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("cluster: open wal for replay: %w", err)
	}
	defer f.Close()

	var st *walState
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24) // specs carry full machine configs
	for sc.Scan() {
		var rec walRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			break // torn tail from a crash mid-append
		}
		switch rec.T {
		case walCampaign:
			if st != nil {
				continue // duplicate campaign record: first one wins
			}
			if len(rec.Spec) == 0 || len(rec.Shards) == 0 {
				continue
			}
			st = &walState{
				spec:      append(json.RawMessage(nil), rec.Spec...),
				windows:   rec.Shards,
				completed: make(map[int]string),
			}
		case walComplete:
			if st == nil || rec.Shard < 0 || rec.Shard >= len(st.windows) || rec.Digest == "" {
				continue
			}
			st.completed[rec.Shard] = rec.Digest
		case walAssign:
			// Observability only; no durable state.
		}
	}
	return st, nil
}

// append writes one record and fsyncs it. Failures are returned for
// the caller to log: a sick disk degrades durability, never the
// campaign itself.
func (w *campaignWAL) append(rec walRecord) error {
	if w == nil {
		return nil
	}
	rec.TS = time.Now().UTC()
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return errors.New("wal closed")
	}
	if _, err := w.f.Write(append(line, '\n')); err != nil {
		return err
	}
	return w.f.Sync()
}

// begin journals the campaign record: the canonical spec and the
// resolved shard windows. Everything a resumed coordinator needs to
// rebuild the identical plan.
func (w *campaignWAL) begin(req Campaign, specs []server.ShardSpec) error {
	spec, err := json.Marshal(canonicalCampaign(req))
	if err != nil {
		return err
	}
	windows := make([][2]int, len(specs))
	for i, s := range specs {
		windows[i] = [2]int{s.ShardOffset, s.ShardCount}
	}
	return w.append(walRecord{T: walCampaign, Spec: spec, Shards: windows})
}

// appendAssign journals one shard assignment.
func (w *campaignWAL) appendAssign(shard int, worker string) error {
	return w.append(walRecord{T: walAssign, Shard: shard, Worker: worker})
}

// appendComplete persists one shard's payload — bytes first
// (temp + fsync + rename into the content-addressed file), record
// second — so a complete record in the journal always points at a
// durable, verifiable payload.
func (w *campaignWAL) appendComplete(shard int, p *server.ShardPayload) error {
	if w == nil {
		return nil
	}
	raw, err := json.Marshal(p)
	if err != nil {
		return err
	}
	sum := sha256.Sum256(raw)
	digest := hex.EncodeToString(sum[:])
	if err := w.writePayloadFile(digest, raw); err != nil {
		return err
	}
	return w.append(walRecord{T: walComplete, Shard: shard, Digest: digest})
}

// writePayloadFile durably stores one payload under its own hash.
// Serialized by mu so two workers finishing the same reassigned shard
// cannot race on the temp file.
func (w *campaignWAL) writePayloadFile(digest string, raw []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := os.MkdirAll(w.shardsDir, 0o755); err != nil {
		return err
	}
	final := filepath.Join(w.shardsDir, digest+".json")
	if _, err := os.Stat(final); err == nil {
		return nil // content-addressed: already durable
	}
	tmp := final + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(raw); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, final)
}

// loadPayload reads one completed shard's payload back, verifying the
// file still hashes to its journaled digest before trusting a byte of
// it. Any failure returns an error and the shard re-runs.
func (w *campaignWAL) loadPayload(digest string) (*server.ShardPayload, error) {
	raw, err := os.ReadFile(filepath.Join(w.shardsDir, digest+".json"))
	if err != nil {
		return nil, err
	}
	sum := sha256.Sum256(raw)
	if got := hex.EncodeToString(sum[:]); got != digest {
		return nil, fmt.Errorf("payload file hashes to %s, journal says %s", got, digest)
	}
	var p server.ShardPayload
	if err := json.Unmarshal(raw, &p); err != nil {
		return nil, err
	}
	return &p, nil
}

// close releases the journal handle without touching the files — the
// state survives for a future resume.
func (w *campaignWAL) close() {
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return
	}
	w.f.Close()
	w.f = nil
}

// finish removes the campaign's journal and payload files after the
// merged report has been produced — the cluster analog of the job
// journal's compaction on clean drain.
func (w *campaignWAL) finish() {
	if w == nil {
		return
	}
	w.close()
	if err := os.Remove(w.path); err != nil && !os.IsNotExist(err) {
		w.log.Warn("cluster: remove wal", "path", w.path, "err", err)
	}
	if err := os.RemoveAll(w.shardsDir); err != nil {
		w.log.Warn("cluster: remove wal shards", "dir", w.shardsDir, "err", err)
	}
}

// ResumedCampaign names one campaign picked up from the WAL directory
// by ResumeCampaigns.
type ResumedCampaign struct {
	Token      string
	ReportPath string
	Err        error
}

// ResumeCampaigns scans cfg.WALDir for unfinished campaign journals
// and runs each to completion, writing the merged report next to the
// journal as <token>.report.json — how a restarted coordinator
// (`reese-serve -cluster-workers ... -cluster-wal DIR -resume`)
// finishes campaigns whose clients are long gone. Campaigns run
// sequentially: resumed work shares the worker fleet with live
// traffic and must not stampede it.
func ResumeCampaigns(ctx context.Context, cfg Config) []ResumedCampaign {
	var out []ResumedCampaign
	if cfg.WALDir == "" {
		return out
	}
	matches, err := filepath.Glob(filepath.Join(cfg.WALDir, "*.wal"))
	if err != nil {
		return out
	}
	for _, path := range matches {
		token := filepath.Base(path)
		token = token[:len(token)-len(".wal")]
		rc := ResumedCampaign{Token: token}
		st, rerr := replayWAL(path)
		if rerr != nil || st == nil {
			rc.Err = fmt.Errorf("cluster: unreadable wal %s: %v", path, rerr)
			out = append(out, rc)
			continue
		}
		var req Campaign
		if err := json.Unmarshal(st.spec, &req); err != nil {
			rc.Err = fmt.Errorf("cluster: wal %s spec: %w", path, err)
			out = append(out, rc)
			continue
		}
		req.ResumeToken = token
		rep, rerr2 := Run(ctx, cfg, req)
		if rerr2 != nil {
			rc.Err = rerr2
			out = append(out, rc)
			continue
		}
		raw, _ := json.MarshalIndent(rep, "", "  ")
		rc.ReportPath = filepath.Join(cfg.WALDir, token+".report.json")
		if werr := os.WriteFile(rc.ReportPath, append(raw, '\n'), 0o644); werr != nil {
			rc.Err = werr
		}
		out = append(out, rc)
	}
	return out
}
