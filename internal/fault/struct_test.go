package fault

import (
	"testing"

	"reese/internal/emu"
	"reese/internal/isa"
)

func TestStructNamesRoundTrip(t *testing.T) {
	for _, st := range Structures(true) {
		got, ok := ParseStruct(st.String())
		if !ok || got != st {
			t.Errorf("ParseStruct(%q) = %v, %v; want %v, true", st.String(), got, ok, st)
		}
	}
	if _, ok := ParseStruct("no-such-structure"); ok {
		t.Error("ParseStruct accepted garbage")
	}
}

func TestSphereMembership(t *testing.T) {
	in := map[Struct]bool{
		StructResult:       true,
		StructLSQAddr:      true,
		StructLSQStoreData: true,
		StructRSQOperand:   true,
		StructRSQResult:    true,
		StructRegFile:      false,
		StructFetchPC:      false,
		StructComparator:   false,
	}
	for st, want := range in {
		if st.InSphere() != want {
			t.Errorf("%s.InSphere() = %v, want %v", st, st.InSphere(), want)
		}
	}
}

func TestStructuresExcludeRSQWithoutQueue(t *testing.T) {
	for _, st := range Structures(false) {
		if st.NeedsRSQ() {
			t.Errorf("Structures(false) includes RSQ-only structure %s", st)
		}
	}
	have := map[Struct]bool{}
	for _, st := range Structures(true) {
		have[st] = true
	}
	for _, want := range []Struct{StructRSQOperand, StructRSQResult, StructComparator} {
		if !have[want] {
			t.Errorf("Structures(true) missing %s", want)
		}
	}
}

// aluTrace is a comparable-outcome instruction; storeTrace a store.
func aluTrace() emu.Trace {
	return emu.Trace{Inst: isa.Instruction{Op: isa.OpAdd}, Result: 42, HasResult: true}
}

func storeTrace() emu.Trace {
	return emu.Trace{Inst: isa.Instruction{Op: isa.OpSw}, Addr: 0x100, StoreValue: 7}
}

func TestAtStructSkipsForwardToEligibleVictim(t *testing.T) {
	// A store-data fault aimed at seq 0 must hold fire across non-store
	// instructions and land on the first store.
	inj := &AtStruct{Struct: StructLSQStoreData, Seq: 0, Bit: 3}
	for seq := uint64(0); seq < 4; seq++ {
		if _, fired := inj.Decide(seq, aluTrace()); fired {
			t.Fatalf("fired on non-store at seq %d", seq)
		}
	}
	got, fired := inj.Decide(4, storeTrace())
	if !fired {
		t.Fatal("did not fire on the first store")
	}
	if got.Struct != StructLSQStoreData || got.Bit != 3 {
		t.Errorf("injection = %+v", got)
	}
	if !inj.Fired() || inj.FiredSeq() != 4 {
		t.Errorf("Fired = %v, FiredSeq = %d; want true, 4", inj.Fired(), inj.FiredSeq())
	}
	// One-shot: it must never fire again, even on eligible victims (the
	// recovery replay re-presents the same sequence numbers).
	if _, again := inj.Decide(5, storeTrace()); again {
		t.Error("fired twice")
	}
}

// recordingArch captures the architectural corruption calls.
type recordingArch struct {
	pcMask  uint32
	reg     uint8
	regMask uint32
}

func (r *recordingArch) CorruptPC(mask uint32)          { r.pcMask = mask }
func (r *recordingArch) CorruptReg(reg uint8, m uint32) { r.reg, r.regMask = reg, m }

func TestAtStructOracleSites(t *testing.T) {
	arch := &recordingArch{}
	inj := &AtStruct{Struct: StructFetchPC, Seq: 10, Bit: 31}
	if inj.OracleStep(9, arch) {
		t.Error("fired before Seq")
	}
	if !inj.OracleStep(10, arch) {
		t.Fatal("did not fire at Seq")
	}
	if arch.pcMask != 1<<31 {
		t.Errorf("pc mask = %#x, want bit 31", arch.pcMask)
	}
	if inj.OracleStep(11, arch) {
		t.Error("fired twice")
	}

	arch = &recordingArch{}
	reg := &AtStruct{Struct: StructRegFile, Seq: 0, Bit: 5, Reg: 17}
	if !reg.OracleStep(0, arch) {
		t.Fatal("regfile fault did not fire")
	}
	if arch.reg != 17 || arch.regMask != 1<<5 {
		t.Errorf("corrupted r%d with %#x, want r17 with bit 5", arch.reg, arch.regMask)
	}

	// r0 is hardwired zero: a fault aimed there must never fire.
	zero := &AtStruct{Struct: StructRegFile, Seq: 0, Bit: 5, Reg: 0}
	for i := uint64(0); i < 8; i++ {
		if zero.OracleStep(i, &recordingArch{}) {
			t.Fatal("fired on r0")
		}
	}
}

func TestAtStructComparatorFaultBlindsTheLane(t *testing.T) {
	// A comparator fault corrupts the checked copy AND masks the same
	// bit out of the comparison — the defining pairing that makes the
	// corruption commit undetected.
	inj := &AtStruct{Struct: StructComparator, Seq: 0, Bit: 9}
	cor, fired := inj.RSQEnqueue(0, aluTrace())
	if !fired {
		t.Fatal("did not fire")
	}
	if cor.ResultMask != 1<<9 || cor.CompIgnoreMask != 1<<9 {
		t.Errorf("result mask %#x, ignore mask %#x; want bit 9 in both", cor.ResultMask, cor.CompIgnoreMask)
	}

	// A plain RSQ-result fault corrupts the copy but leaves the
	// comparator intact, so the mismatch is catchable.
	res := &AtStruct{Struct: StructRSQResult, Seq: 0, Bit: 9}
	cor, fired = res.RSQEnqueue(0, aluTrace())
	if !fired {
		t.Fatal("rsq-result did not fire")
	}
	if cor.ResultMask != 1<<9 || cor.CompIgnoreMask != 0 {
		t.Errorf("rsq-result masks = %+v, want corrupt bit 9, no ignore", cor)
	}
}

func TestAtStructOperandSlotFollowsReads(t *testing.T) {
	// sw reads rs1 (base) and rs2 (data); the bit parity picks the slot.
	even := &AtStruct{Struct: StructRSQOperand, Seq: 0, Bit: 2}
	cor, fired := even.RSQEnqueue(0, storeTrace())
	if !fired || cor.OperandAMask == 0 || cor.OperandBMask != 0 {
		t.Errorf("even bit: %+v, want operand A corrupted", cor)
	}
	odd := &AtStruct{Struct: StructRSQOperand, Seq: 0, Bit: 3}
	cor, fired = odd.RSQEnqueue(0, storeTrace())
	if !fired || cor.OperandBMask == 0 || cor.OperandAMask != 0 {
		t.Errorf("odd bit: %+v, want operand B corrupted", cor)
	}
}

func TestOutcomeStrings(t *testing.T) {
	want := map[Outcome]string{
		OutcomeDetected:  "detected",
		OutcomeRecovered: "recovered",
		OutcomeSDC:       "sdc",
		OutcomeMasked:    "masked",
		OutcomeHang:      "hang",
	}
	for o, s := range want {
		if o.String() != s {
			t.Errorf("%d.String() = %q, want %q", o, o.String(), s)
		}
	}
}
