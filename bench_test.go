package reese

// One benchmark per table and figure of the paper's evaluation, plus
// simulator-throughput and fault-campaign benches. Each figure bench
// regenerates its table/figure once per iteration and reports the
// headline quantities (average IPCs and the REESE gap) as custom
// metrics, so `go test -bench=.` reproduces the paper's numbers
// alongside the timing.
//
// The per-run instruction budget is modest (the paper used 100 M; see
// EXPERIMENTS.md for why ~10^5 suffices for these workloads). Use
// cmd/reese-sweep -insts to regenerate at larger scale.

import (
	"testing"

	"reese/internal/config"
	"reese/internal/fault"
	"reese/internal/harness"
	"reese/internal/pipeline"
	"reese/internal/workload"
)

// benchOptions is the per-simulation budget for figure benches.
func benchOptions() harness.Options { return harness.Options{Insts: 100_000} }

func BenchmarkTable1StartingConfig(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if harness.Table1() == "" {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable2Workloads(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// Building the six programs is the real work behind Table 2;
		// Rebuild bypasses the build cache so assembly cost is measured.
		for _, s := range workload.All() {
			if _, err := s.Rebuild(2); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func reportFigure(b *testing.B, fig *harness.FigureResult) {
	b.ReportMetric(fig.Average("Baseline"), "baseIPC")
	b.ReportMetric(fig.Average("REESE"), "reeseIPC")
	b.ReportMetric(fig.GapPercent("Baseline", "REESE"), "gap%")
}

func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := harness.Figure2(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		reportFigure(b, fig)
	}
}

func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := harness.Figure3(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		reportFigure(b, fig)
	}
}

func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := harness.Figure4(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		reportFigure(b, fig)
	}
}

func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := harness.Figure5(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		reportFigure(b, fig)
	}
}

func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.Figure6(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		// Report the summary's headline: the mean gap across the four
		// configurations, with and without spares (the paper's
		// "14.0% -> 8.0%" sentence).
		var gap, gapSpared float64
		for _, r := range rows {
			gap += r.GapPercent
			gapSpared += r.SparedGapPct
		}
		b.ReportMetric(gap/float64(len(rows)), "gap%")
		b.ReportMetric(gapSpared/float64(len(rows)), "gap%+2ALU")
	}
}

func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := harness.Figure7(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range points {
			switch p.Label {
			case "RUU=256":
				b.ReportMetric(p.GapPercent, "gap%ruu256")
			case "RUU=256+FUs":
				b.ReportMetric(p.GapPercent, "gap%ruu256+FUs")
			}
		}
	}
}

func BenchmarkFaultCampaign(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := harness.Campaign(harness.CampaignSpec{
			Workload:   "gcc",
			Machine:    config.Starting().WithReese(),
			Injections: 40,
			Seed:       1,
		}, benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Coverage*100, "coverage%")
		b.ReportMetric(r.DetectionLatencyMean, "detect-cycles")
	}
}

func BenchmarkAblationRSQSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := harness.RSQSweep([]int{8, 32}, benchOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationPartialReexec(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.PartialReexecSweep([]int{1, 2}, benchOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// Simulator-throughput benches: simulated instructions per wall-clock
// second for one workload on each machine. These size the tool, not the
// paper.

func benchSimulator(b *testing.B, cfg config.Machine, workloadName string) {
	b.Helper()
	spec, ok := workload.ByName(workloadName)
	if !ok {
		b.Fatal("workload")
	}
	const insts = 100_000
	b.SetBytes(0)
	var totalInsts, totalCycles uint64
	for i := 0; i < b.N; i++ {
		cpu, err := pipeline.New(cfg, spec.MustBuild(spec.DefaultIters*2), fault.None{})
		if err != nil {
			b.Fatal(err)
		}
		res, err := cpu.Run(insts)
		if err != nil {
			b.Fatal(err)
		}
		totalInsts += res.Committed
		totalCycles += res.Cycles
	}
	b.ReportMetric(float64(totalInsts)/b.Elapsed().Seconds(), "sim-insts/s")
	b.ReportMetric(float64(totalCycles)/b.Elapsed().Seconds(), "sim-cycles/s")
}

// BenchmarkSimThroughput is the repo's tracked hot-path benchmark:
// committed instructions per wall-clock second and allocations per run
// for one 100k-instruction simulation. `make bench` appends its results
// to BENCH_pipeline.json so the performance trajectory is recorded
// across PRs.
func BenchmarkSimThroughput(b *testing.B) {
	for _, bm := range []struct {
		name string
		cfg  config.Machine
	}{
		{"baseline", config.Starting()},
		{"reese", config.Starting().WithReese()},
	} {
		b.Run(bm.name, func(b *testing.B) {
			spec, ok := workload.ByName("gcc")
			if !ok {
				b.Fatal("workload gcc missing")
			}
			prog := spec.MustBuild(spec.DefaultIters * 2)
			const insts = 100_000
			b.ReportAllocs()
			b.ResetTimer()
			var totalInsts uint64
			for i := 0; i < b.N; i++ {
				cpu, err := pipeline.New(bm.cfg, prog, fault.None{})
				if err != nil {
					b.Fatal(err)
				}
				res, err := cpu.Run(insts)
				if err != nil {
					b.Fatal(err)
				}
				totalInsts += res.Committed
			}
			b.ReportMetric(float64(totalInsts)/b.Elapsed().Seconds(), "sim-insts/s")
			b.ReportMetric(float64(totalInsts)/float64(b.N), "insts/op")
		})
	}
}

// BenchmarkCampaignThroughput is the second tracked benchmark:
// fault-injection trials per wall-clock second through the
// checkpoint/fork replay engine (golden run memoized, so the steady
// state measured here is pure per-trial cost — fork, suffix simulation,
// splice). `make bench` appends it to BENCH_pipeline.json next to
// BenchmarkSimThroughput.
func BenchmarkCampaignThroughput(b *testing.B) {
	for _, bm := range []struct {
		name string
		cfg  config.Machine
	}{
		{"baseline", config.Starting()},
		{"reese", config.Starting().WithReese()},
	} {
		b.Run(bm.name, func(b *testing.B) {
			spec := harness.CampaignSpec{
				Workload:   "gcc",
				Machine:    bm.cfg,
				Injections: 200,
				Seed:       7,
			}
			// Warm the golden-run memo so iteration 0 doesn't pay (or
			// allocate) the instrumented golden simulation.
			if _, err := harness.Campaign(spec, harness.Options{}); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			var injected uint64
			for i := 0; i < b.N; i++ {
				rep, err := harness.Campaign(spec, harness.Options{})
				if err != nil {
					b.Fatal(err)
				}
				injected += uint64(rep.Injected)
			}
			b.ReportMetric(float64(injected)/b.Elapsed().Seconds(), "injections/s")
		})
	}
}

func BenchmarkSimBaselineGcc(b *testing.B) { benchSimulator(b, config.Starting(), "gcc") }

func BenchmarkSimReeseGcc(b *testing.B) { benchSimulator(b, config.Starting().WithReese(), "gcc") }

func BenchmarkSimBaselineVortex(b *testing.B) { benchSimulator(b, config.Starting(), "vortex") }

func BenchmarkSimReeseVortex(b *testing.B) {
	benchSimulator(b, config.Starting().WithReese(), "vortex")
}

func BenchmarkEmulator(b *testing.B) {
	spec, _ := workload.ByName("gcc")
	prog := spec.MustBuild(spec.DefaultIters)
	b.ResetTimer()
	var n uint64
	for i := 0; i < b.N; i++ {
		m, err := Emulate(prog, 100_000)
		if err != nil {
			b.Fatal(err)
		}
		n += m.InstCount()
	}
	b.ReportMetric(float64(n)/b.Elapsed().Seconds(), "emu-insts/s")
}

func BenchmarkAssembler(b *testing.B) {
	b.ReportAllocs()
	spec, _ := workload.ByName("gcc")
	for i := 0; i < b.N; i++ {
		// Rebuild, not Build: the cache would hide the assembler.
		if _, err := spec.Rebuild(10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSchemeComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, res, err := harness.SchemeComparison(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res["baseline"], "baseIPC")
		b.ReportMetric(res["dup-dispatch"], "dupIPC")
		b.ReportMetric(res["reese"], "reeseIPC")
	}
}

func BenchmarkSimWrongPathGcc(b *testing.B) {
	benchSimulator(b, config.Starting().WithWrongPath(), "gcc")
}

func BenchmarkSimDupDispatchGcc(b *testing.B) {
	benchSimulator(b, config.Starting().WithDupDispatch(), "gcc")
}

func BenchmarkBitGrid(b *testing.B) {
	for i := 0; i < b.N; i++ {
		grid, err := harness.BitGrid(config.Starting().WithReese(), "li", 2_000, harness.Options{Insts: 20_000})
		if err != nil {
			b.Fatal(err)
		}
		detected := 0
		for _, c := range grid {
			if c.Detected {
				detected++
			}
		}
		b.ReportMetric(float64(detected), "bits-detected")
	}
}
