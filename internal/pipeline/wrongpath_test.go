package pipeline

import (
	"fmt"
	"strings"
	"testing"

	"reese/internal/config"
	"reese/internal/fault"
	"reese/internal/workload"
)

// erraticBranches is a loop whose branch direction follows an LCG bit —
// plenty of mispredictions for wrong-path machinery to chew on.
const erraticBranches = `
	li r9, 3000
	li r8, 12345
loop:
	li r7, 1103515245
	mul r8, r8, r7
	addi r8, r8, 12345
	srli r6, r8, 13
	andi r6, r6, 1
	beq r6, r0, skip
	addi r5, r5, 1
	xor r4, r5, r8
skip:
	addi r9, r9, -1
	bne r9, r0, loop
	halt
`

func TestWrongPathCorrectness(t *testing.T) {
	want := oracleCount(t, erraticBranches)
	for _, cfg := range []config.Machine{
		config.Starting().WithWrongPath(),
		config.Starting().WithWrongPath().WithReese(),
	} {
		res := runOn(t, cfg, erraticBranches, nil)
		if !res.Halted {
			t.Fatalf("%s: did not halt", cfg.Name)
		}
		if res.Committed != want {
			t.Errorf("%s: committed %d, want %d — squash must not lose or leak instructions", cfg.Name, res.Committed, want)
		}
		if res.Reese != nil && res.Reese.Mismatches != 0 {
			t.Errorf("%s: clean run mismatched", cfg.Name)
		}
	}
}

func TestWrongPathActivityCounted(t *testing.T) {
	res := runOn(t, config.Starting().WithWrongPath(), erraticBranches, nil)
	if res.Mispredicts == 0 {
		t.Skip("no mispredictions to exercise")
	}
	if res.WrongPathFetched == 0 {
		t.Error("wrong-path instructions should have been fetched")
	}
	if res.WrongPathSquashed == 0 {
		t.Error("wrong-path instructions should have been squashed")
	}
	// Everything fetched down the wrong path is eventually squashed or
	// still in flight at the end; fetched >= squashed.
	if res.WrongPathSquashed > res.WrongPathFetched {
		t.Errorf("squashed %d > fetched %d", res.WrongPathSquashed, res.WrongPathFetched)
	}
	stall := runOn(t, config.Starting(), erraticBranches, nil)
	if stall.WrongPathFetched != 0 {
		t.Error("stall model must not fetch wrong-path instructions")
	}
}

func TestWrongPathCostsAtLeastAsMuchAsStall(t *testing.T) {
	// With the same redirect behaviour, wrong-path execution wastes
	// real resources the stall model doesn't, but it also overlaps the
	// refill; allow ±15% but require the same order of magnitude.
	wp := runOn(t, config.Starting().WithWrongPath(), erraticBranches, nil)
	st := runOn(t, config.Starting(), erraticBranches, nil)
	ratio := float64(wp.Cycles) / float64(st.Cycles)
	if ratio < 0.8 || ratio > 1.3 {
		t.Errorf("wrong-path/stall cycle ratio = %.2f; models should broadly agree", ratio)
	}
}

func TestWrongPathWithFaultsStillRecovers(t *testing.T) {
	want := oracleCount(t, erraticBranches)
	inj := &fault.Periodic{Interval: 3000, Start: 1000}
	res := runOn(t, config.Starting().WithWrongPath().WithReese(), erraticBranches, inj)
	if !res.Halted {
		t.Fatal("did not halt")
	}
	if res.FaultsDetected != res.FaultsInjected {
		t.Errorf("detected %d of %d", res.FaultsDetected, res.FaultsInjected)
	}
	if res.Committed != want {
		t.Errorf("committed %d, want %d", res.Committed, want)
	}
}

func TestWrongPathAllWorkloads(t *testing.T) {
	// Every workload must run identically (committed count) under the
	// wrong-path model.
	for _, name := range []string{"gcc", "li", "vortex", "m88ksim"} {
		name := name
		t.Run(name, func(t *testing.T) {
			res1, err := runWorkload(t, config.Starting(), name)
			if err != nil {
				t.Fatal(err)
			}
			res2, err := runWorkload(t, config.Starting().WithWrongPath(), name)
			if err != nil {
				t.Fatal(err)
			}
			if res1.Committed != res2.Committed {
				t.Errorf("committed differ: stall %d vs wrong-path %d", res1.Committed, res2.Committed)
			}
		})
	}
}

func runWorkload(t *testing.T, cfg config.Machine, name string) (Result, error) {
	t.Helper()
	// Import cycle avoidance: build via the workload registry through a
	// tiny local assembler call is unnecessary — use the registry.
	return runWorkloadImpl(cfg, name)
}

func TestWrongPathTraceShowsSquash(t *testing.T) {
	var buf strings.Builder
	cpu, err := New(config.Starting().WithWrongPath(), mustProg(t, erraticBranches), nil)
	if err != nil {
		t.Fatal(err)
	}
	cpu.SetTrace(&buf)
	if _, err := cpu.Run(2_000); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "SQUASH") {
		t.Error("trace should record squashes")
	}
}

// runWorkloadImpl runs a named workload for a bounded instruction count.
func runWorkloadImpl(cfg config.Machine, name string) (Result, error) {
	spec, ok := workload.ByName(name)
	if !ok {
		return Result{}, fmt.Errorf("unknown workload %q", name)
	}
	prog, err := spec.Build(3)
	if err != nil {
		return Result{}, err
	}
	cpu, err := New(cfg, prog, nil)
	if err != nil {
		return Result{}, err
	}
	return cpu.Run(0)
}
