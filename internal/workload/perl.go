package workload

import (
	"fmt"

	"reese/internal/asm"
	"reese/internal/program"
)

// buildPerl models perl running a word game: a byte-at-a-time scan of
// text, classifying characters, hashing each word, and bumping bucket
// counters. Byte loads and bucket stores dominate; the character-class
// branches are data dependent and moderately hard to predict.
func buildPerl(iters int) (*program.Program, error) {
	const textLen = 1024
	g := newPRNG(0x9E71)
	// Text: mostly lowercase letters with spaces sprinkled in, so word
	// lengths vary unpredictably.
	var text string
	{
		gg := newPRNG(0x7357)
		buf := make([]byte, 0, textLen*5)
		for i := 0; i < textLen; i++ {
			if i%16 == 0 {
				if i > 0 {
					buf = append(buf, '\n')
				}
				buf = append(buf, "\t.byte "...)
			} else {
				buf = append(buf, ", "...)
			}
			var ch uint32
			r := gg.next() % 8
			switch {
			case r < 5:
				ch = 'a' + gg.next()%26
			case r < 6:
				ch = '0' + gg.next()%10
			default:
				ch = ' '
			}
			buf = append(buf, fmt.Sprint(ch)...)
		}
		buf = append(buf, '\n')
		text = string(buf)
	}
	_ = g
	src := fmt.Sprintf(`
	; perl stand-in: text scan, word hashing, bucket counting.
main:
	li r20, %d            ; outer iterations
	la r21, text
	la r22, buckets
	li r23, 0             ; checksum
outer:
	; two scan cursors working the two halves of the text concurrently,
	; with independent word hashes (r11 for stream A, r13 for stream B)
	li r10, 0             ; stream A position
	li r11, 0             ; stream A word hash
	li r13, 0             ; stream B word hash
scan:
	add r1, r10, r21
	lbu r2, 0(r1)
	lbu r14, %[2]d(r1)
	; --- stream A: classify and hash ---
	addi r3, r2, -32      ; ' '
	beq r3, r0, word_end
	addi r3, r2, -48
	sltiu r4, r3, 10      ; digit?
	beq r4, r0, letter
	slli r5, r3, 1        ; digit: add twice its value
	add r11, r11, r5
	j stream_b
letter:
	slli r5, r11, 5       ; hash = hash*31 + ch
	sub r5, r5, r11
	add r11, r5, r2
	j stream_b
word_end:
	beq r11, r0, stream_b ; consecutive spaces
	andi r5, r11, 63      ; bump bucket[hash %% 64]
	slli r5, r5, 2
	add r5, r5, r22
	lw r6, 0(r5)
	addi r6, r6, 1
	sw r6, 0(r5)
	xor r23, r23, r11
	li r11, 0
stream_b:
	; --- stream B: same classifier on the upper half ---
	addi r15, r14, -32
	beq r15, r0, word_end_b
	addi r15, r14, -48
	sltiu r16, r15, 10
	beq r16, r0, letter_b
	slli r17, r15, 1
	add r13, r13, r17
	j advance
letter_b:
	slli r17, r13, 5
	sub r17, r17, r13
	add r13, r17, r14
	j advance
word_end_b:
	beq r13, r0, advance
	andi r17, r13, 63
	slli r17, r17, 2
	add r17, r17, r22
	lw r18, 0(r17)
	addi r18, r18, 1
	sw r18, 0(r17)
	xor r23, r23, r13
	li r13, 0
advance:
	addi r10, r10, 1
	slti r1, r10, %[2]d
	bne r1, r0, scan
	; fold the busiest buckets into the checksum
	li r10, 0
fold:
	slli r1, r10, 2
	add r1, r1, r22
	lw r2, 0(r1)
	slti r3, r2, 8
	bne r3, r0, fold_next
	add r23, r23, r2
fold_next:
	addi r10, r10, 1
	slti r1, r10, 64
	bne r1, r0, fold
	addi r20, r20, -1
	bne r20, r0, outer
%s
.data
text:
%s
.align 4
buckets:
	.space 256
`, iters, textLen/2, emitChecksum("r23"), text)
	return asm.Assemble("perl", src)
}
