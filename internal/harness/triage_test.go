package harness

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"reese/internal/config"
	"reese/internal/fault"
)

// triageTestSpec is a small campaign guaranteed to produce escapes:
// out-of-sphere oracle-site structures (regfile, fetch-pc) on the REESE
// machine yield SDCs and hangs the comparator cannot catch.
func triageTestSpec() CampaignSpec {
	return CampaignSpec{
		Workload: "li",
		Machine:  config.Starting().WithReese(),
		Structures: []fault.Struct{
			fault.StructResult, fault.StructRegFile, fault.StructFetchPC, fault.StructMemWord,
		},
		Injections: 60,
		Seed:       7,
		Triage:     true,
	}
}

// TestTriageReplayDeterminism is the triage property test: the replay
// must reproduce the original trial exactly (outcome, commit digest,
// hang cycle count), every escape must carry a triage record with a
// trace, and the whole campaign — triage attachments included — must be
// byte-identical across parallelism and checkpoint-interval choices.
func TestTriageReplayDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-configuration campaign sweep")
	}
	type variant struct {
		name     string
		parallel int
		interval uint64
	}
	variants := []variant{
		{"p1-default", 1, 0},
		{"p8-default", 8, 0},
		{"p1-ck64", 1, 64},
		{"p8-ck64", 8, 64},
	}
	var refJSONL string
	var refRep *CampaignReport
	for _, v := range variants {
		spec := triageTestSpec()
		spec.CheckpointInterval = v.interval
		rep, err := Campaign(spec, Options{Parallel: v.parallel})
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		var buf bytes.Buffer
		if err := rep.WriteJSONL(&buf); err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		if refJSONL == "" {
			refJSONL, refRep = buf.String(), rep
			continue
		}
		if buf.String() != refJSONL {
			t.Errorf("%s: triaged JSONL differs from %s", v.name, variants[0].name)
		}
		if rep.Triaged != refRep.Triaged || rep.Diverged != refRep.Diverged {
			t.Errorf("%s: triage counts (%d, %d) differ from (%d, %d)",
				v.name, rep.Triaged, rep.Diverged, refRep.Triaged, refRep.Diverged)
		}
	}

	escapes := 0
	for i := range refRep.Trials {
		tr := &refRep.Trials[i]
		switch tr.Outcome {
		case "sdc", "hang":
			escapes++
			if tr.Triage == nil {
				t.Errorf("trial %d (%s, %s): escaped without a triage record", tr.Index, tr.Structure, tr.Outcome)
				continue
			}
			// The replay reproduced the original run exactly: outcome,
			// cycles, committed count, and final digests (ReplayOK is
			// computed from precisely those comparisons).
			if !tr.Triage.ReplayOK {
				t.Errorf("trial %d (%s, %s): triage replay did not reproduce the original", tr.Index, tr.Structure, tr.Outcome)
			}
			if len(tr.Triage.Trace) == 0 {
				t.Errorf("trial %d: triage record has no trace blob", tr.Index)
			} else if !strings.Contains(string(tr.Triage.Trace), `"FAULT`) {
				t.Errorf("trial %d: triage trace has no injection marker", tr.Index)
			}
			if tr.Outcome == "sdc" && tr.Triage.FirstDivergence == nil {
				t.Errorf("trial %d (%s): SDC with no first-divergence attribution", tr.Index, tr.Structure)
			}
			if d := tr.Triage.FirstDivergence; d != nil && d.Seq < tr.Seq {
				t.Errorf("trial %d: first divergence at seq %d precedes the victim seq %d", tr.Index, d.Seq, tr.Seq)
			}
			if tr.Outcome == "hang" && tr.Triage.HangPeriod == 0 {
				t.Errorf("trial %d (%s): hang with no detected loop period", tr.Index, tr.Structure)
			}
		default:
			if tr.Triage != nil {
				t.Errorf("trial %d (%s): non-escape carries a triage record", tr.Index, tr.Outcome)
			}
		}
	}
	if escapes == 0 {
		t.Fatal("campaign produced no escapes; the triage test exercised nothing")
	}
	if refRep.Triaged == 0 || refRep.Diverged == 0 {
		t.Errorf("report triage totals empty: triaged %d, diverged %d", refRep.Triaged, refRep.Diverged)
	}
}

// TestTriageLeavesCampaignUnchanged pins the acceptance contract: a
// triaged campaign's JSONL, minus the triage attachments, is
// byte-identical to the untriaged run of the same spec, and the report
// differs only in the triage counters.
func TestTriageLeavesCampaignUnchanged(t *testing.T) {
	spec := triageTestSpec()
	triaged, err := Campaign(spec, Options{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	spec.Triage = false
	plain, err := Campaign(spec, Options{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(triaged.Trials) != len(plain.Trials) {
		t.Fatalf("trial counts differ: %d vs %d", len(triaged.Trials), len(plain.Trials))
	}
	for i := range triaged.Trials {
		stripped := triaged.Trials[i]
		stripped.Triage = nil
		a, _ := json.Marshal(&stripped)
		b, _ := json.Marshal(&plain.Trials[i])
		if !bytes.Equal(a, b) {
			t.Errorf("trial %d: record differs beyond the triage attachment:\n triaged: %s\n plain:   %s", i, a, b)
		}
	}
	// The untriaged report must not grow triage fields (omitempty keeps
	// its JSON byte-identical to pre-triage builds).
	raw, _ := json.Marshal(plain)
	if bytes.Contains(raw, []byte("triaged")) || bytes.Contains(raw, []byte("diverge")) {
		t.Errorf("untriaged report JSON leaks triage fields: %s", raw)
	}
}
