package harness

import (
	"bytes"
	"strings"
	"testing"

	"reese/internal/config"
	"reese/internal/fault"
)

// The accounting invariant the whole report rests on: every injection
// lands in exactly one outcome bucket, globally and per structure.
func TestCampaignOutcomeAccounting(t *testing.T) {
	rep, err := Campaign(CampaignSpec{
		Workload:   "li",
		Machine:    config.Starting().WithReese(),
		Injections: 160,
		Seed:       7,
	}, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Injected != 160 {
		t.Fatalf("injected %d, want 160", rep.Injected)
	}
	if got := rep.Total(); got != rep.Injected {
		t.Errorf("outcome counts sum to %d, want %d", got, rep.Injected)
	}
	var perStruct uint64
	for _, s := range rep.Structures {
		if got := s.Total(); got != s.Injected {
			t.Errorf("%s: outcome counts sum to %d, want %d injected", s.Structure, got, s.Injected)
		}
		if s.Fired > s.Injected {
			t.Errorf("%s: fired %d > injected %d", s.Structure, s.Fired, s.Injected)
		}
		if s.CoverageLo > s.Coverage || s.Coverage > s.CoverageHi {
			t.Errorf("%s: coverage %.3f outside its own CI [%.3f, %.3f]",
				s.Structure, s.Coverage, s.CoverageLo, s.CoverageHi)
		}
		perStruct += s.Injected
	}
	if perStruct != rep.Injected {
		t.Errorf("per-structure injections sum to %d, want %d", perStruct, rep.Injected)
	}
	if len(rep.Structures) < 4 {
		t.Errorf("sampled %d structures, want at least 4", len(rep.Structures))
	}

	// The sphere of replication argument, measured: in-sphere result
	// faults are fully covered; the comparator's own faults — outside
	// the sphere by construction — are not.
	for _, s := range rep.Structures {
		switch s.Structure {
		case fault.StructResult.String():
			if s.Coverage < 1 {
				t.Errorf("result-structure coverage %.2f, want 1.0", s.Coverage)
			}
		case fault.StructComparator.String():
			if s.Injected > 0 && s.Coverage >= 1 {
				t.Errorf("comparator faults fully covered (%.2f) — the dead-lane model is broken", s.Coverage)
			}
		}
	}
}

// The report must be a pure function of the spec: byte-identical JSONL
// and table whether trials run sequentially or on the pool.
func TestCampaignByteIdenticalAcrossParallelism(t *testing.T) {
	spec := CampaignSpec{
		Workload:   "li",
		Machine:    config.Starting().WithReese(),
		Injections: 60,
		Seed:       0xFACE,
	}
	render := func(parallel int) (string, string) {
		rep, err := Campaign(spec, Options{Parallel: parallel})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rep.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String(), rep.Table()
	}
	seqJSONL, seqTable := render(1)
	parJSONL, parTable := render(8)
	if seqJSONL != parJSONL {
		t.Error("JSONL differs between sequential and parallel execution")
	}
	if seqTable != parTable {
		t.Error("table differs between sequential and parallel execution")
	}
	if got := strings.Count(seqJSONL, "\n"); got != 60 {
		t.Errorf("JSONL has %d lines, want one per injection (60)", got)
	}
}

func TestCampaignRejectsRSQStructuresOnBaseline(t *testing.T) {
	_, err := Campaign(CampaignSpec{
		Workload:   "li",
		Machine:    config.Starting(),
		Structures: []fault.Struct{fault.StructRSQOperand},
		Injections: 5,
	}, testOptions())
	if err == nil {
		t.Fatal("baseline accepted an RSQ-only fault structure")
	}
}

// The baseline has no comparator: every fired fault must end silent
// (SDC or masked) or hung — never detected or recovered. gcc is
// store-heavy, so some corruption must reach architectural state.
func TestCampaignBaselineIsSilent(t *testing.T) {
	rep, err := Campaign(CampaignSpec{
		Workload:   "gcc",
		Machine:    config.Starting(),
		Injections: 60,
		Seed:       99,
	}, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Detected != 0 || rep.Recovered != 0 {
		t.Errorf("baseline detected %d / recovered %d; it has no comparator", rep.Detected, rep.Recovered)
	}
	if rep.SDC+rep.Masked+rep.Hang != rep.Injected {
		t.Errorf("baseline outcomes %+v do not account for all %d injections", rep.OutcomeCounts, rep.Injected)
	}
	if rep.SDC == 0 {
		t.Error("no SDC on the unprotected baseline — faults are not reaching architectural state")
	}
}

// A structure the workload cannot host must be dropped when the list
// was inferred and rejected when it was explicit. li (at campaign
// scale) executes no stores, making it the natural probe.
func TestCampaignStructuresWithoutVictims(t *testing.T) {
	_, err := Campaign(CampaignSpec{
		Workload:   "li",
		Machine:    config.Starting(),
		Structures: []fault.Struct{fault.StructLSQStoreData},
		Injections: 5,
	}, testOptions())
	if err == nil {
		t.Error("explicitly requesting store-data faults on a storeless workload should error")
	}

	rep, err := Campaign(CampaignSpec{
		Workload:   "li",
		Machine:    config.Starting(),
		Injections: 30,
		Seed:       3,
	}, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range rep.Structures {
		if s.Structure == fault.StructLSQStoreData.String() {
			t.Error("defaulted structure list kept a structure with no victims")
		}
	}
	if got := rep.Total(); got != rep.Injected {
		t.Errorf("outcome counts sum to %d, want %d", got, rep.Injected)
	}
}
