package cluster

// The coordinator's own HTTP surface: POST /v1/cluster/faults accepts
// a Campaign, shards it across the configured workers, and streams
// live progress back as it runs — chunked JSONL by default, SSE with
// ?stream=sse. The final frame carries the merged report (or the
// error); everything before it is Event progress frames. Streaming
// instead of poll-the-job fits the coordinator's shape: one request is
// one campaign, and the interesting signal is shard churn while it
// runs, not a terminal blob at the end.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"

	"reese/internal/harness"
)

// resultFrame is the stream's final frame.
type resultFrame struct {
	Type   string                  `json:"type"`
	Report *harness.CampaignReport `json:"report,omitempty"`
	Table  string                  `json:"table,omitempty"`
	Err    string                  `json:"err,omitempty"`
}

// maxCampaignBody bounds a cluster campaign request body.
const maxCampaignBody = 4 << 20

// Handler returns the coordinator endpoint. Mount it on a reese-serve
// mux (Server.Mount) or serve it standalone.
func Handler(cfg Config) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(io.LimitReader(r.Body, maxCampaignBody))
		if err != nil {
			http.Error(w, fmt.Sprintf(`{"error":%q}`, "read request: "+err.Error()), http.StatusBadRequest)
			return
		}
		var req Campaign
		if err := json.Unmarshal(body, &req); err != nil {
			http.Error(w, fmt.Sprintf(`{"error":%q}`, "decode request: "+err.Error()), http.StatusBadRequest)
			return
		}

		sse := r.URL.Query().Get("stream") == "sse"
		if sse {
			w.Header().Set("Content-Type", "text/event-stream")
			w.Header().Set("Cache-Control", "no-cache")
		} else {
			w.Header().Set("Content-Type", "application/x-ndjson")
		}
		w.WriteHeader(http.StatusOK)
		flusher, _ := w.(http.Flusher)

		// Events arrive from every worker goroutine; one writer guard
		// keeps frames whole on the wire.
		var mu sync.Mutex
		writeFrame := func(event string, v any) {
			raw, err := json.Marshal(v)
			if err != nil {
				return
			}
			mu.Lock()
			defer mu.Unlock()
			if sse {
				fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, raw)
			} else {
				w.Write(raw)
				w.Write([]byte("\n"))
			}
			if flusher != nil {
				flusher.Flush()
			}
		}

		runCfg := cfg
		prev := cfg.OnEvent
		runCfg.OnEvent = func(ev Event) {
			if prev != nil {
				prev(ev)
			}
			writeFrame("progress", ev)
		}
		rep, err := Run(r.Context(), runCfg, req)
		if err != nil {
			writeFrame("result", resultFrame{Type: "error", Err: err.Error()})
			return
		}
		writeFrame("result", resultFrame{Type: "result", Report: rep, Table: rep.Table()})
	})
}
