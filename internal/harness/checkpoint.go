package harness

// Checkpoint/fork fast-forward for fault campaigns.
//
// The old campaign engine simulated every trial from cycle 0, even
// though a trial's execution is byte-identical to the uninjected golden
// run until its fault fires, and usually reconverges with the golden
// run shortly after the fault is detected or dies out. This file
// removes both redundancies:
//
//   - One instrumented golden run per (workload, target, machine,
//     interval) takes periodic full-machine snapshots
//     (pipeline.Checkpoint: pipeline + oracle scalars, predictors,
//     caches, queues, plus a copy-on-write page image of architectural
//     memory). Each trial forks from the latest checkpoint that
//     provably precedes its injection point and simulates only the
//     suffix.
//   - At every later golden commit boundary the trial is compared
//     against the golden machine under sequence/cycle normalization
//     (pipeline.CPU.ConvergedWith). Once converged, the rest of the run
//     is spliced from the golden result instead of simulated: final
//     digests are reconstructed by folding the trial's divergent shadow
//     state with the golden suffix, and the cycle count is the golden
//     total shifted by the trial's boundary offset. Trials that never
//     reconverge (SDC, hangs) simply keep simulating — the fallback is
//     always sound.
//
// Everything here preserves the engine's core contract: equal specs
// produce byte-identical reports at any parallelism, and every
// per-trial record matches what a full from-scratch simulation of that
// trial would have produced.

import (
	"bytes"
	"context"
	"fmt"
	"sort"
	"sync"

	"reese/internal/bpred"

	"reese/internal/config"
	"reese/internal/emu"
	"reese/internal/fault"
	"reese/internal/mem"
	"reese/internal/obs"
	"reese/internal/pipeline"
	"reese/internal/program"
	"reese/internal/workload"
)

// DefaultCheckpointInterval is the golden-run snapshot spacing in
// committed instructions when CampaignSpec.CheckpointInterval is 0.
// Smaller intervals shorten the simulated suffix per trial but grow
// snapshot cost and memory; 512 keeps both small at campaign scale.
const DefaultCheckpointInterval = 512

// storeRec is one architectural store of the golden run, in commit
// order — the suffix material for splicing a trial's store digest.
type storeRec struct {
	addr, width, value uint32
}

// destNone marks a dynamic instruction that writes no register.
const destNone = 0xFF

// emuGoldenCache memoizes the emulator-plane golden scan per
// (workload, target): the digest, victim-eligibility lists, store
// trace, and per-instruction destination registers are pure functions
// of those two keys and are shared by every campaign — REESE and
// baseline machines alike.
var emuGoldenCache sync.Map // emuGoldenKey -> *emuGoldenEntry

type emuGoldenKey struct {
	workload string
	target   uint64
}

type emuGoldenEntry struct {
	once sync.Once
	g    *golden
	prog *program.Program
	err  error
}

// goldenForSpec is the memoizing front end to goldenScan. The returned
// golden is shared and must be treated as immutable.
func goldenForSpec(wspec workload.Spec, target uint64) (*golden, *program.Program, error) {
	v, _ := emuGoldenCache.LoadOrStore(emuGoldenKey{wspec.Name, target}, &emuGoldenEntry{})
	e := v.(*emuGoldenEntry)
	e.once.Do(func() {
		e.g, e.prog, e.err = goldenScan(wspec, target)
	})
	return e.g, e.prog, e.err
}

// bundleCache memoizes the instrumented golden pipeline run (snapshots
// and all) per (workload, target, machine, interval). A sweep that runs
// many campaigns on the same configuration — or a server replaying the
// same request — pays for the golden run once per process.
var bundleCache sync.Map // bundleKey -> *bundleEntry

type bundleKey struct {
	workload string
	target   uint64
	machine  uint64
	interval uint64
}

type bundleEntry struct {
	once sync.Once
	b    *campaignBundle
	err  error
}

// machineHash fingerprints a machine configuration for memo keys. The
// %#v rendering covers every field, nested structs included, so two
// configs hash equal only when they simulate identically.
func machineHash(m config.Machine) uint64 {
	return emu.HashBytes([]byte(fmt.Sprintf("%#v", m)))
}

// campaignBundle is everything one (workload, machine) pair's trials
// fork from: the emulator-plane golden, the golden pipeline run's final
// result and digests, the checkpoint chain, and per-boundary metadata
// for splicing.
type campaignBundle struct {
	g    *golden
	prog *program.Program

	// checkpoints[0] is the pre-run state (committed 0, always fork-
	// eligible); the rest land one per crossed interval boundary, at the
	// exact committed counts in marks (marks[i] ==
	// checkpoints[i+1].Committed).
	checkpoints []*pipeline.Checkpoint
	marks       []uint64
	// written[i] is the set of (int, fp) registers the golden run
	// writes at or after checkpoints[i] — the registers whose final
	// value the golden suffix determines regardless of a trial's shadow
	// state at the boundary.
	written [][2]uint32
	// predReads[i] is the set of branch-predictor pattern-table entries
	// the golden run consults at or after checkpoints[i]; convergence at
	// a boundary compares only those entries (recovery replay retrains
	// the tables, so exact equality would reject trials over counters
	// that are never read again). Nil when the predictor cannot log
	// reads.
	predReads []*bpred.ReadSet

	finalRes    pipeline.Result
	finalCommit emu.Digest
	finalOracle emu.Digest
	// finalMem is the golden run's final architectural memory image.
	// Direct memory-plane corruption (a flipped RAM word no instruction
	// ever reloads, a lost write-back) is invisible to the register/
	// store/output digests; trials that run to completion compare their
	// final memory against this image to catch such escapes.
	finalMem *mem.PageImage

	budget uint64

	// workers recycles per-trial machines and memory images: forking
	// into a recycled CPU reuses its slice allocations, and the memory
	// image is restored by page diffing instead of a full 8 MiB copy.
	workers sync.Pool

	// locks recycles lockstep golden emulators for the triage pass
	// (triage.go). lockSnaps (built on first use) holds detached golden
	// emulator scalars at every checkpoint boundary, so a replay's
	// lockstep golden starts at the fork — no per-escape fast-forward
	// from instruction zero — with its memory page-diffed from the
	// checkpoint image like any trial worker.
	locks     sync.Pool
	lockOnce  sync.Once
	lockSnaps []*emu.Machine
	lockErr   error
}

// bundleForSpec builds (or returns the memoized) campaign bundle for a
// defaulted spec.
func bundleForSpec(spec CampaignSpec, wspec workload.Spec) (*campaignBundle, error) {
	key := bundleKey{
		workload: spec.Workload,
		target:   spec.TargetInsts,
		machine:  machineHash(spec.Machine),
		interval: spec.CheckpointInterval,
	}
	v, _ := bundleCache.LoadOrStore(key, &bundleEntry{})
	e := v.(*bundleEntry)
	e.once.Do(func() {
		e.b, e.err = buildBundle(spec, wspec)
	})
	return e.b, e.err
}

// buildBundle runs the instrumented golden pipeline simulation: one
// full run with dirty-tracked memory, snapshotting the whole machine at
// every interval boundary, then derives the splice metadata.
func buildBundle(spec CampaignSpec, wspec workload.Spec) (*campaignBundle, error) {
	g, prog, err := goldenForSpec(wspec, spec.TargetInsts)
	if err != nil {
		return nil, err
	}
	cpu, err := pipeline.New(spec.Machine, prog, fault.None{})
	if err != nil {
		return nil, err
	}
	b := &campaignBundle{
		g:      g,
		prog:   prog,
		budget: 2*g.total + 20_000,
	}

	memory := cpu.OracleMemory()
	memory.EnableDirtyTracking()
	img := mem.SnapshotPages(memory.Bytes(), nil, nil)
	memory.ClearDirty()
	b.checkpoints = append(b.checkpoints, cpu.Snapshot(img))

	// Per-interval predictor read logs; reverse-accumulated into suffix
	// masks below. predEntries is 0 for predictors that cannot log.
	predEntries := cpu.PredReadEntries()
	var intervals []*bpred.ReadSet
	var curReads *bpred.ReadSet
	if predEntries > 0 {
		curReads = bpred.NewReadSet(predEntries)
		cpu.SetPredReadLog(curReads)
	}

	interval := spec.CheckpointInterval
	var hookMarks []uint64
	for m := interval; m < g.total; m += interval {
		hookMarks = append(hookMarks, m)
	}
	cpu.SetBoundaryHook(hookMarks, func(c *pipeline.CPU) bool {
		next := mem.SnapshotPages(memory.Bytes(), memory.DirtyPages(), img)
		memory.ClearDirty()
		img = next
		b.checkpoints = append(b.checkpoints, c.Snapshot(img))
		if curReads != nil {
			intervals = append(intervals, curReads)
			curReads = bpred.NewReadSet(predEntries)
			cpu.SetPredReadLog(curReads)
		}
		return false
	})

	res, err := cpu.Run(b.budget)
	if err != nil {
		return nil, fmt.Errorf("harness: golden pipeline run of %s on %s: %w", spec.Workload, spec.Machine.Name, err)
	}
	b.finalRes = res
	b.finalCommit = cpu.CommitDigest()
	b.finalOracle = cpu.OracleDigest()
	b.finalMem = mem.SnapshotPages(memory.Bytes(), memory.DirtyPages(), img)
	// The splice algebra assumes the golden pipeline run retires the
	// exact architectural work of the emulator reference. A mismatch is
	// a simulator bug; refusing here beats silently misclassifying
	// every spliced trial.
	if b.finalCommit != g.digest || b.finalOracle != g.digest {
		return nil, fmt.Errorf("harness: golden pipeline run of %s on %s diverged from the emulator reference", spec.Workload, spec.Machine.Name)
	}

	b.marks = make([]uint64, 0, len(b.checkpoints)-1)
	for _, ck := range b.checkpoints[1:] {
		b.marks = append(b.marks, ck.Committed)
	}

	// predReads[i]: pattern-table entries consulted at or after
	// checkpoints[i], by reverse union of the interval logs (intervals[j]
	// covers checkpoint j to j+1; the tail after the last checkpoint is
	// appended here).
	if curReads != nil {
		cpu.SetPredReadLog(nil)
		intervals = append(intervals, curReads)
		if len(intervals) != len(b.checkpoints) {
			return nil, fmt.Errorf("harness: %d predictor read intervals for %d checkpoints", len(intervals), len(b.checkpoints))
		}
		b.predReads = make([]*bpred.ReadSet, len(b.checkpoints))
		acc := bpred.NewReadSet(predEntries)
		for i := len(intervals) - 1; i >= 0; i-- {
			intervals[i].OrInto(acc)
			b.predReads[i] = acc.Clone()
		}
	}

	// written[i]: registers the golden run writes at instruction index
	// >= checkpoints[i].Committed, by one backward scan over the
	// per-instruction destination records.
	b.written = make([][2]uint32, len(b.checkpoints))
	var intM, fpM uint32
	bi := len(b.checkpoints) - 1
	for idx := int64(g.total) - 1; idx >= 0; idx-- {
		for bi >= 0 && b.checkpoints[bi].Committed == uint64(idx)+1 {
			b.written[bi] = [2]uint32{intM, fpM}
			bi--
		}
		if r := g.destReg[idx]; r != destNone {
			if g.destFP[idx] {
				fpM |= 1 << (r & 31)
			} else {
				intM |= 1 << (r & 31)
			}
		}
	}
	for bi >= 0 {
		b.written[bi] = [2]uint32{intM, fpM}
		bi--
	}
	return b, nil
}

// forkPoint returns the index of the latest checkpoint a fault aimed at
// seq can fork from. Checkpoint 0 (the pre-run state) is always
// eligible.
func (b *campaignBundle) forkPoint(seq uint64) int {
	for i := len(b.checkpoints) - 1; i > 0; i-- {
		if b.checkpoints[i].ForkEligible(seq) {
			return i
		}
	}
	return 0
}

// boundaryIndex maps a trial's committed count at a boundary hook to
// the matching checkpoint index. A miss (the trial's commit bundle
// overshot the golden boundary by a different amount) means states
// cannot be aligned at this boundary; the caller keeps simulating.
func (b *campaignBundle) boundaryIndex(committed uint64) (int, bool) {
	i := sort.Search(len(b.marks), func(i int) bool { return b.marks[i] >= committed })
	if i < len(b.marks) && b.marks[i] == committed {
		return i + 1, true
	}
	return 0, false
}

// campaignWorker is one recycled trial executor: a fork-destination CPU
// and a memory image restored by page diffing between trials. The
// bundle's locks pool recycles the same type for triage lockstep
// goldens, filling lock instead of cpu.
type campaignWorker struct {
	cpu *pipeline.CPU
	mem *program.Memory
	// prov[p] identifies (by page-content address) which snapshot page
	// the worker's page p currently equals; nil means unknown. Pages the
	// previous trial dirtied are invalidated, so adoption copies only
	// pages that actually differ from the wanted image.
	prov []*byte
	// lock is the recycled lockstep golden emulator (locks pool only).
	lock *emu.Machine
	// rec is the recycled triage flight-recorder ring (locks pool only).
	rec *obs.Recorder
}

// adopt restores the worker's memory to the checkpoint image, copying
// only pages whose provenance differs, and resets dirty tracking so the
// trial's own writes can be diffed at reconvergence boundaries.
func (w *campaignWorker) adopt(prog *program.Program, img *mem.PageImage) error {
	if w.mem == nil {
		m, err := program.LoadMemory(prog)
		if err != nil {
			return err
		}
		w.mem = m
		w.mem.EnableDirtyTracking()
		w.prov = make([]*byte, img.NumPages())
	}
	for p, d := range w.mem.DirtyPages() {
		if d {
			w.prov[p] = nil
		}
	}
	for p := 0; p < img.NumPages(); p++ {
		pg := img.PageAt(p)
		ptr := &pg[0]
		if w.prov[p] == ptr {
			continue
		}
		w.mem.Overwrite(p*mem.PageSize, pg)
		w.prov[p] = ptr
	}
	w.mem.ClearDirty()
	return nil
}

// memConverged reports whether the worker's live memory equals the
// golden boundary image. Only pages the trial wrote since the fork, or
// that the golden run changed between fork and boundary (different page
// identity), can differ; everything else is byte-identical by
// construction and is skipped.
func (w *campaignWorker) memConverged(fork, bound *mem.PageImage) bool {
	dirty := w.mem.DirtyPages()
	live := w.mem.Bytes()
	for p := 0; p < bound.NumPages(); p++ {
		bp := bound.PageAt(p)
		fp := fork.PageAt(p)
		if !dirty[p] && &fp[0] == &bp[0] {
			continue
		}
		lo := p * mem.PageSize
		if !bytes.Equal(live[lo:lo+len(bp)], bp) {
			return false
		}
	}
	return true
}

// memDiff measures how the trial's final memory differs from the
// golden final image: the count of differing 32-bit words and the
// address span [lo, hi] they cover. Pages neither the trial wrote nor
// the golden run changed after the fork are identical by construction
// and are skipped, same as memConverged.
func (w *campaignWorker) memDiff(fork, final *mem.PageImage) (words int, lo, hi uint32) {
	dirty := w.mem.DirtyPages()
	live := w.mem.Bytes()
	lo = ^uint32(0)
	for p := 0; p < final.NumPages(); p++ {
		bp := final.PageAt(p)
		fp := fork.PageAt(p)
		if !dirty[p] && &fp[0] == &bp[0] {
			continue
		}
		base := p * mem.PageSize
		lv := live[base : base+len(bp)]
		if bytes.Equal(lv, bp) {
			continue
		}
		for o := 0; o+4 <= len(bp); o += 4 {
			if lv[o] != bp[o] || lv[o+1] != bp[o+1] || lv[o+2] != bp[o+2] || lv[o+3] != bp[o+3] {
				words++
				a := uint32(base + o)
				if a < lo {
					lo = a
				}
				if a > hi {
					hi = a
				}
			}
		}
	}
	if words == 0 {
		lo = 0
	}
	return words, lo, hi
}

// getWorker pops a recycled worker (or makes a fresh one).
func (b *campaignBundle) getWorker() *campaignWorker {
	if w, ok := b.workers.Get().(*campaignWorker); ok {
		return w
	}
	return &campaignWorker{}
}

// runTrial executes one planned trial by forking from the nearest
// eligible checkpoint, filling in the trial's outcome fields exactly as
// a full from-scratch simulation would have.
func (b *campaignBundle) runTrial(ctx context.Context, t *Trial, opt Options) error {
	return b.runTrialInstr(ctx, t, opt, nil)
}

// runTrialInstr is runTrial with an optional instrumentation hook,
// invoked on the forked machine just before it runs. The triage replay
// (triage.go) arms the flight recorder and the lockstep commit watch
// through it; both are pure observers, so an instrumented run is
// byte-identical to a bare one.
func (b *campaignBundle) runTrialInstr(ctx context.Context, t *Trial, opt Options, instrument func(*pipeline.CPU)) error {
	st, _ := fault.ParseStruct(t.Structure)
	inj := &fault.AtStruct{Struct: st, Seq: t.Seq, Bit: t.Bit, Reg: t.Reg, Addr: t.Addr, Seq2: t.Seq2}

	w := b.getWorker()
	defer b.workers.Put(w)

	fork := b.checkpoints[b.forkPoint(t.Seq)]
	if err := w.adopt(b.prog, fork.Mem); err != nil {
		return err
	}
	cpu, err := fork.Fork(w.mem, inj, w.cpu)
	if err != nil {
		return err
	}
	w.cpu = cpu
	cpu.SetProgress(opt.Progress)
	cpu.SetHangFastForward(true)
	if instrument != nil {
		instrument(cpu)
	}

	// At every golden boundary after the fault fires, try to splice:
	// if the whole machine (micro-architecture, oracle scalars, memory)
	// has reconverged with the golden state, the rest of the run is the
	// golden suffix and needs no simulation.
	splicedAt := -1
	var splicedCommit emu.Digest
	cpu.SetBoundaryHook(b.marks, func(c *pipeline.CPU) bool {
		if !inj.Fired() {
			return false
		}
		bi, ok := b.boundaryIndex(c.Committed())
		if !ok {
			return false
		}
		ck := b.checkpoints[bi]
		var reads *bpred.ReadSet
		if b.predReads != nil {
			reads = b.predReads[bi]
		}
		if !ck.StateConvergedMasked(c, reads) {
			return false
		}
		if !w.memConverged(fork.Mem, ck.Mem) {
			return false
		}
		splicedAt = bi
		splicedCommit = b.spliceCommitDigest(bi, c.CommitDigest())
		return true
	})

	res, err := cpu.RunContext(ctx, b.budget)
	if err != nil {
		return err
	}

	commit, oracle := cpu.CommitDigest(), cpu.OracleDigest()
	if splicedAt >= 0 {
		ck := b.checkpoints[splicedAt]
		// The trial ran [fork, boundary] live; the golden run covers the
		// rest. Total cycles are the golden total shifted by how far the
		// trial's boundary arrival drifted from the golden run's (a
		// recovery replays instructions, so the drift is the recovery
		// penalty and stays in the final count).
		res.Cycles = b.finalRes.Cycles + (res.Cycles - ck.Cycle)
		res.Committed = b.finalRes.Committed
		res.Hanged = false
		commit, oracle = splicedCommit, b.finalOracle
	}

	t.Fired = inj.Fired()
	t.outcome = classify(res, commit, oracle, b.g.digest)
	// Carried for the triage pass: the exact digests classification saw
	// (spliced when the trial spliced) verify a replay byte for byte, the
	// Brent probe's loop period explains hangs, and the injection cycle
	// anchors prefix verification of early-stopped replays.
	t.commitDig, t.oracleDig = commit, oracle
	t.hangPeriod = res.HangPeriod
	t.faultCycle = cpu.FaultCycle()

	// Direct memory-plane corruption can escape every digest: a flipped
	// RAM word nothing reloads, a reverted write-back. Trials that ran
	// live to completion compare their final memory against the golden
	// image; a spliced trial proved its memory golden at the boundary
	// and inherits the golden suffix, so its final memory is golden by
	// construction, a hung trial's memory is mid-flight (the hang
	// verdict already stands on its own), and an early-stopped triage
	// replay's memory is mid-flight too — its caller ignores the
	// classification fields entirely.
	diffWords, diffLo, diffHi := 0, uint32(0), uint32(0)
	trialOut := b.g.out
	if splicedAt < 0 && !res.Hanged && !cpu.StopRequested() {
		diffWords, diffLo, diffHi = w.memDiff(fork.Mem, b.finalMem)
		trialOut = cpu.Output()
	}
	t.diffWords, t.diffLo = diffWords, diffLo
	switch {
	case inj.EccCorrected():
		// SECDED absorbed a single-bit flip: effective, never an escape.
		t.outcome = fault.OutcomeCorrected
	case inj.EccDetected() && t.outcome != fault.OutcomeHang:
		// Double-bit flip flagged detected-uncorrectable by SECDED.
		t.outcome = fault.OutcomeDetected
	case diffWords > 0 && t.outcome == fault.OutcomeMasked:
		t.outcome = fault.OutcomeSDC
	case diffWords > 0 && t.outcome == fault.OutcomeRecovered:
		t.outcome = fault.OutcomeDetected
	}
	t.Outcome = t.outcome.String()
	t.Cycles = res.Cycles
	t.Committed = res.Committed
	t.Latency = 0
	if t.outcome == fault.OutcomeDetected || t.outcome == fault.OutcomeRecovered {
		t.Latency = res.DetectionLatencyMax
	}
	t.Locale = ""
	if t.outcome != fault.OutcomeMasked {
		t.Locale = localize(symptoms{
			eccCorrected: inj.EccCorrected(),
			eccDetected:  inj.EccDetected(),
			detections:   res.FaultsDetected,
			hanged:       t.outcome == fault.OutcomeHang,
			diffWords:    diffWords,
			diffLo:       diffLo,
			diffHi:       diffHi,
		}, b.g.out, trialOut)
	}
	return nil
}

// spliceCommitDigest reconstructs the final commit digest of a trial
// that reconverged at boundary bi, without simulating the suffix:
//
//   - registers the golden run writes in the suffix end at their golden
//     final values; the rest keep the trial's boundary values (this is
//     how a committed-but-dead corruption still surfaces as SDC);
//   - the store digest folds the golden suffix store sequence onto the
//     trial's boundary hash (commit order and values match the golden
//     suffix exactly once converged — only the prefix hash can differ);
//   - output, halt state, and counts are the golden finals (the oracle
//     comparison behind StateConverged requires the boundary output to
//     match byte-for-byte).
func (b *campaignBundle) spliceCommitDigest(bi int, boundary emu.Digest) emu.Digest {
	out := b.finalCommit
	wInt, wFP := b.written[bi][0], b.written[bi][1]
	for r := 0; r < 32; r++ {
		if wInt&(1<<r) == 0 {
			out.Regs[r] = boundary.Regs[r]
		}
		if wFP&(1<<r) == 0 {
			out.FRegs[r] = boundary.FRegs[r]
		}
	}
	h := boundary.StoreHash
	for _, s := range b.g.storeRecs[b.checkpoints[bi].StoreCount:] {
		h = emu.MixStore(h, s.addr, s.width, s.value)
	}
	out.StoreHash = h
	return out
}
