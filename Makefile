# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test vet bench figures faults claims clean

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet
	$(GO) test ./...

# One benchmark per paper table/figure, run once each.
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x .

# Regenerate every table and figure of the paper.
figures:
	$(GO) run ./cmd/reese-sweep -figure all

faults:
	$(GO) run ./cmd/reese-faults

claims:
	$(GO) run ./cmd/reese-sweep -figure claims

clean:
	$(GO) clean ./...
