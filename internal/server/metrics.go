package server

// A minimal stdlib-only metrics registry rendering the Prometheus text
// exposition format (version 0.0.4) for GET /metrics. Three instrument
// kinds cover the serving layer: monotonic counters (with optional
// labels), gauges evaluated at scrape time, and cumulative latency
// histograms. Families render sorted by name and children sorted by
// label value, so the output is deterministic — tests can string-match
// a scrape.

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric (one child of a family,
// with its labels pre-rendered).
type Counter struct {
	labels string // rendered `{k="v",...}` or ""
	n      atomic.Uint64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta uint64) { c.n.Add(delta) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n.Load() }

// counterFamily is a named group of counters sharing label names.
type counterFamily struct {
	name, help string
	labelNames []string
	mu         sync.Mutex
	children   map[string]*Counter
}

// With returns the child counter for the given label values (created on
// first use). len(values) must match the family's label names.
func (f *counterFamily) With(values ...string) *Counter {
	if len(values) != len(f.labelNames) {
		panic(fmt.Sprintf("metrics: %s wants %d labels, got %d", f.name, len(f.labelNames), len(values)))
	}
	key := renderLabels(f.labelNames, values)
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.children[key]
	if !ok {
		c = &Counter{labels: key}
		f.children[key] = c
	}
	return c
}

// gauge is a metric read at scrape time.
type gauge struct {
	name, help string
	read       func() float64
}

// Histogram is a cumulative latency histogram with fixed upper bounds.
type Histogram struct {
	labels  string
	mu      sync.Mutex
	bounds  []float64 // upper bounds, ascending; +Inf implied
	buckets []uint64  // non-cumulative per-bound counts, +Inf last
	sum     float64
	count   uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i]++
	h.sum += v
	h.count++
}

// Count returns the number of samples observed.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// histogramFamily groups histograms by label values.
type histogramFamily struct {
	name, help string
	labelNames []string
	bounds     []float64
	mu         sync.Mutex
	children   map[string]*Histogram
}

// With returns the child histogram for the given label values.
func (f *histogramFamily) With(values ...string) *Histogram {
	if len(values) != len(f.labelNames) {
		panic(fmt.Sprintf("metrics: %s wants %d labels, got %d", f.name, len(f.labelNames), len(values)))
	}
	key := renderLabels(f.labelNames, values)
	f.mu.Lock()
	defer f.mu.Unlock()
	h, ok := f.children[key]
	if !ok {
		h = &Histogram{labels: key, bounds: f.bounds, buckets: make([]uint64, len(f.bounds)+1)}
		f.children[key] = h
	}
	return h
}

// Metrics is the registry behind GET /metrics.
type Metrics struct {
	mu         sync.Mutex
	counters   map[string]*counterFamily
	gauges     map[string]*gauge
	histograms map[string]*histogramFamily
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters:   make(map[string]*counterFamily),
		gauges:     make(map[string]*gauge),
		histograms: make(map[string]*histogramFamily),
	}
}

// CounterFamily registers (or returns) a counter family.
func (m *Metrics) CounterFamily(name, help string, labelNames ...string) *counterFamily {
	m.mu.Lock()
	defer m.mu.Unlock()
	if f, ok := m.counters[name]; ok {
		return f
	}
	f := &counterFamily{name: name, help: help, labelNames: labelNames, children: make(map[string]*Counter)}
	m.counters[name] = f
	return f
}

// Counter registers a label-less counter and returns it.
func (m *Metrics) Counter(name, help string) *Counter {
	return m.CounterFamily(name, help).With()
}

// Gauge registers a gauge whose value is read at every scrape.
func (m *Metrics) Gauge(name, help string, read func() float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.gauges[name] = &gauge{name: name, help: help, read: read}
}

// failureCounters groups the failure-path instruments the self-healing
// job machinery maintains: every retry, panic, deadline expiry,
// watchdog kill, and journal-replayed job is counted, so dashboards can
// tell a degraded-but-recovering service from a dying one. The chaos
// suite asserts these move under injected faults.
type failureCounters struct {
	retried          *Counter
	panicked         *Counter
	deadlineExceeded *Counter
	watchdogKills    *Counter
	journalReplayed  *Counter
}

func newFailureCounters(m *Metrics) *failureCounters {
	return &failureCounters{
		retried: m.Counter("reese_serve_jobs_retried_total",
			"Job attempts rescheduled after a transient failure (panic, deadline, watchdog kill)."),
		panicked: m.Counter("reese_serve_jobs_panicked_total",
			"Job attempts that panicked and were contained by the worker's recover()."),
		deadlineExceeded: m.Counter("reese_serve_jobs_deadline_exceeded_total",
			"Job attempts cancelled by their per-attempt deadline."),
		watchdogKills: m.Counter("reese_serve_watchdog_kills_total",
			"Job attempts killed by the progress watchdog for stalling."),
		journalReplayed: m.Counter("reese_serve_journal_replayed_jobs_total",
			"Unfinished jobs re-enqueued from the journal at startup."),
	}
}

// ShardMetrics are the coordinator-side cluster instruments: shard
// lifecycle counters and the shard-duration histogram. The methods
// match the cluster package's hook interface structurally, so the
// coordinator can record into them without this package importing
// cluster (cmd/reese-serve wires the two together).
type ShardMetrics struct {
	assigned   *Counter
	completed  *Counter
	retried    *Counter
	reassigned *Counter
	corrupted  *Counter
	readmitted *Counter
	resumed    *Counter
	restored   *Counter
	duration   *Histogram
}

// NewShardMetrics registers the cluster shard instruments.
func NewShardMetrics(m *Metrics) *ShardMetrics {
	return &ShardMetrics{
		assigned: m.Counter("reese_serve_shards_assigned_total",
			"Campaign shards assigned to workers by the coordinator."),
		completed: m.Counter("reese_serve_shards_completed_total",
			"Campaign shards completed and merged by the coordinator."),
		retried: m.Counter("reese_serve_shards_retried_total",
			"Shard submissions retried after a 503 or transport error."),
		reassigned: m.Counter("reese_serve_shards_reassigned_total",
			"Shards reassigned to a different worker after worker loss."),
		corrupted: m.Counter("reese_serve_shards_corrupted_total",
			"Shard payloads rejected by the sha256 integrity check and retried."),
		readmitted: m.Counter("reese_serve_workers_readmitted_total",
			"Quarantined workers readmitted after a successful readiness probe."),
		resumed: m.Counter("reese_serve_campaigns_resumed_total",
			"Cluster campaigns resumed from the coordinator write-ahead log."),
		restored: m.Counter("reese_serve_shards_restored_total",
			"Shards served from WAL payload files instead of being re-executed."),
		duration: m.HistogramFamily("reese_serve_shard_duration_seconds",
			"Shard wall time from assignment to completion.", DefaultLatencyBounds).With(),
	}
}

// ShardAssigned counts one shard handed to a worker.
func (s *ShardMetrics) ShardAssigned() { s.assigned.Inc() }

// ShardCompleted counts one merged shard and its wall time.
func (s *ShardMetrics) ShardCompleted(seconds float64) {
	s.completed.Inc()
	s.duration.Observe(seconds)
}

// ShardRetried counts one retried shard submission.
func (s *ShardMetrics) ShardRetried() { s.retried.Inc() }

// ShardReassigned counts one shard moved to a different worker.
func (s *ShardMetrics) ShardReassigned() { s.reassigned.Inc() }

// ShardCorrupted counts one payload rejected by the integrity check.
func (s *ShardMetrics) ShardCorrupted() { s.corrupted.Inc() }

// WorkerReadmitted counts one worker returning from quarantine.
func (s *ShardMetrics) WorkerReadmitted() { s.readmitted.Inc() }

// CampaignResumed counts one campaign picked up from the WAL.
func (s *ShardMetrics) CampaignResumed() { s.resumed.Inc() }

// ShardRestored counts one shard answered from the WAL, not re-run.
func (s *ShardMetrics) ShardRestored() { s.restored.Inc() }

// memSampler caches runtime.ReadMemStats between scrapes:
// ReadMemStats stops the world, so a scrape storm must not turn the
// metrics endpoint into a GC-pressure amplifier.
type memSampler struct {
	mu sync.Mutex
	at time.Time
	ms runtime.MemStats
}

func (s *memSampler) stats() runtime.MemStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	if time.Since(s.at) > time.Second {
		runtime.ReadMemStats(&s.ms)
		s.at = time.Now()
	}
	return s.ms
}

// registerRuntimeMetrics exposes Go runtime health — goroutine count,
// heap in use, and cumulative GC cost — alongside the serving metrics,
// so a leak or GC death spiral shows up on the same dashboard as queue
// depth.
func registerRuntimeMetrics(m *Metrics) {
	s := &memSampler{}
	m.Gauge("go_goroutines", "Live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	m.Gauge("go_heap_alloc_bytes", "Bytes of allocated heap objects (sampled at most once per second).",
		func() float64 { return float64(s.stats().HeapAlloc) })
	m.Gauge("go_heap_objects", "Number of allocated heap objects (sampled at most once per second).",
		func() float64 { return float64(s.stats().HeapObjects) })
	m.Gauge("go_gc_pause_seconds_total", "Cumulative stop-the-world GC pause time.",
		func() float64 { return float64(s.stats().PauseTotalNs) / 1e9 })
	m.Gauge("go_gc_cycles_total", "Completed GC cycles.",
		func() float64 { return float64(s.stats().NumGC) })
}

// DefaultLatencyBounds are the upper bounds (seconds) for request
// latency histograms: sub-millisecond cache hits up to multi-minute
// figure sweeps.
var DefaultLatencyBounds = []float64{.001, .005, .01, .05, .1, .5, 1, 5, 15, 60, 300}

// HistogramFamily registers (or returns) a histogram family.
func (m *Metrics) HistogramFamily(name, help string, bounds []float64, labelNames ...string) *histogramFamily {
	m.mu.Lock()
	defer m.mu.Unlock()
	if f, ok := m.histograms[name]; ok {
		return f
	}
	f := &histogramFamily{name: name, help: help, labelNames: labelNames, bounds: bounds,
		children: make(map[string]*Histogram)}
	m.histograms[name] = f
	return f
}

// Render writes the whole registry in Prometheus text format.
func (m *Metrics) Render(w *strings.Builder) {
	m.mu.Lock()
	counterNames := sortedKeys(m.counters)
	gaugeNames := sortedKeys(m.gauges)
	histNames := sortedKeys(m.histograms)
	m.mu.Unlock()

	for _, name := range counterNames {
		m.mu.Lock()
		f := m.counters[name]
		m.mu.Unlock()
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", f.name, f.help, f.name)
		f.mu.Lock()
		for _, key := range sortedKeys(f.children) {
			fmt.Fprintf(w, "%s%s %d\n", f.name, key, f.children[key].Value())
		}
		f.mu.Unlock()
	}
	for _, name := range gaugeNames {
		m.mu.Lock()
		g := m.gauges[name]
		m.mu.Unlock()
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n", g.name, g.help, g.name, g.name, formatFloat(g.read()))
	}
	for _, name := range histNames {
		m.mu.Lock()
		f := m.histograms[name]
		m.mu.Unlock()
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", f.name, f.help, f.name)
		f.mu.Lock()
		for _, key := range sortedKeys(f.children) {
			h := f.children[key]
			h.mu.Lock()
			cum := uint64(0)
			for i, bound := range h.bounds {
				cum += h.buckets[i]
				fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, withLE(key, formatFloat(bound)), cum)
			}
			cum += h.buckets[len(h.bounds)]
			fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, withLE(key, "+Inf"), cum)
			fmt.Fprintf(w, "%s_sum%s %s\n", f.name, key, formatFloat(h.sum))
			fmt.Fprintf(w, "%s_count%s %d\n", f.name, key, h.count)
			h.mu.Unlock()
		}
		f.mu.Unlock()
	}
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func renderLabels(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", n, values[i])
	}
	b.WriteByte('}')
	return b.String()
}

// withLE splices the le label into an already-rendered label set.
func withLE(labels, le string) string {
	if labels == "" {
		return fmt.Sprintf("{le=%q}", le)
	}
	return labels[:len(labels)-1] + fmt.Sprintf(",le=%q}", le)
}

func formatFloat(v float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%f", v), "0"), ".")
}
