package pipeline

import (
	"testing"

	"reese/internal/config"
	"reese/internal/fault"
	"reese/internal/obs"
)

// checkStallLedger asserts the attribution invariant on every slot
// class: used slots plus per-cause stall counts must exactly equal
// width × cycles — no slot unaccounted, none double-charged.
func checkStallLedger(t *testing.T, res Result) {
	t.Helper()
	for _, sb := range []struct {
		name string
		b    obs.SlotBreakdown
	}{
		{"dispatch", res.Stalls.Dispatch},
		{"issue", res.Stalls.Issue},
		{"commit", res.Stalls.Commit},
	} {
		slots := uint64(sb.b.Width) * res.Cycles
		if sb.b.Slots != slots {
			t.Errorf("%s: Slots = %d, want width %d × cycles %d = %d",
				sb.name, sb.b.Slots, sb.b.Width, res.Cycles, slots)
		}
		if got := sb.b.Used + sb.b.StallSum(); got != slots {
			t.Errorf("%s: used %d + stalls %d = %d, want %d (unattributed slots)",
				sb.name, sb.b.Used, sb.b.StallSum(), got, slots)
		}
	}
	if res.Stalls.Cycles != res.Cycles {
		t.Errorf("Stalls.Cycles = %d, want %d", res.Stalls.Cycles, res.Cycles)
	}
}

func TestStallAttributionInvariant(t *testing.T) {
	src := loopProgram(300)
	configs := map[string]config.Machine{
		"baseline":  config.Starting(),
		"reese":     config.Starting().WithReese(),
		"spared":    config.Starting().WithReese().WithSpares(2, 1),
		"dup":       config.Starting().WithDupDispatch(),
		"wrongpath": config.Starting().WithWrongPath(),
	}
	for name, cfg := range configs {
		t.Run(name, func(t *testing.T) {
			res := runOn(t, cfg, src, nil)
			if !res.Halted {
				t.Fatal("did not halt")
			}
			checkStallLedger(t, res)
			// With no faults, the commit slots that did work are exactly
			// the retired instructions (dup pairs use two slots each).
			want := res.Committed
			if cfg.Reese.Mode == config.ModeDupDispatch {
				want *= 2
			}
			if res.Stalls.Commit.Used != want {
				t.Errorf("commit used = %d, want %d", res.Stalls.Commit.Used, want)
			}
		})
	}
}

func TestStallAttributionInvariantUnderFaults(t *testing.T) {
	// Fault recovery force-retires and replays instructions outside the
	// commit stage; the slot ledger must still balance.
	src := loopProgram(300)
	res := runOn(t, config.Starting().WithReese(), src, &fault.AtSeq{Seq: 40, Bit: 3})
	if res.Recoveries == 0 {
		t.Fatal("fault did not trigger a recovery")
	}
	checkStallLedger(t, res)
}

func TestStallCausesAreInformative(t *testing.T) {
	// A REESE machine must attribute some commit stalls to the recheck
	// pipeline, and a baseline run of a dependent chain must see
	// issue-wait stalls.
	reese := runOn(t, config.Starting().WithReese(), loopProgram(300), nil)
	if reese.Stalls.Commit.Stalls[obs.CauseRecheckPending] == 0 {
		t.Error("REESE run charged no recheck-pending commit stalls")
	}
	dep := `
		li r9, 400
		li r2, 1
	loop:
		mul r2, r2, r9
		mul r2, r2, r9
		addi r9, r9, -1
		bne r9, r0, loop
		halt
	`
	base := runOn(t, config.Starting(), dep, nil)
	if base.Stalls.Commit.Stalls[obs.CauseExecLatency]+base.Stalls.Commit.Stalls[obs.CauseIssueWait] == 0 {
		t.Error("dependent chain charged no latency/operand-wait commit stalls")
	}
	if base.Stalls.Dispatch.Stalls[obs.CauseFetchEmpty] == 0 {
		t.Error("no dispatch fetch-empty stalls on a branchy loop")
	}
}
