// Package fault injects soft errors into the simulated pipeline. The
// original REESE model (§2, §4.2) is a single bit flip in the latched
// outcome of a P-stream instruction — exactly the fault the R-stream
// comparator catches by construction. This package generalizes that to a
// structure-addressed model: an Injection names the microarchitectural
// structure the transient lands in, and the pipeline exposes a narrow
// hook at each site. Structures inside the sphere of replication
// (latched results, LSQ entries, RSQ operand copies) are covered by the
// comparator; structures outside it (the architectural register file
// after commit, the fetch PC, the comparator itself) are not — measuring
// that boundary is the point of a campaign.
package fault

import "reese/internal/emu"

// NoBit is the FaultBit value meaning "no fault".
const NoBit uint8 = 255

// Struct names the microarchitectural structure a fault corrupts.
type Struct uint8

// Fault target structures. StructResult is the zero value so legacy
// Injection literals keep their meaning (a latched-result flip).
const (
	// StructResult flips a bit in the latched P-stream outcome: the
	// destination-register value, or the next-PC for result-less control
	// transfers, or the store value for stores. In-sphere: the paper's
	// original model.
	StructResult Struct = iota
	// StructLSQAddr flips a bit in a load/store effective address held in
	// the LSQ. In-sphere: the R-stream recomputes the address.
	StructLSQAddr
	// StructLSQStoreData flips a bit in the store data held in the LSQ
	// until commit. In-sphere: the comparator checks store values.
	StructLSQStoreData
	// StructRegFile flips a bit in one architectural register after
	// commit. Outside the sphere: both streams read the same corrupted
	// value, so they agree on wrong results.
	StructRegFile
	// StructFetchPC flips a bit in the fetch PC. Outside the sphere: both
	// streams execute the same wrong instruction path.
	StructFetchPC
	// StructRSQOperand flips a bit in an operand value copied into the
	// R-stream Queue at enqueue. The P-stream used the clean value, so the
	// recomputation diverges and the comparator fires — unless the flip is
	// logically masked (e.g. a branch whose direction is unchanged).
	StructRSQOperand
	// StructRSQResult flips a bit in the P-stream outcome stored in the
	// RSQ awaiting comparison — the copy that both feeds the comparator
	// and commits after verification. The recomputation disagrees with
	// it, so the fault is detected and recovery replays the clean trace.
	StructRSQResult
	// StructComparator disables one bit lane of the comparator while
	// corrupting that bit of the checked value — a fault in the checker
	// itself. Outside the sphere: the corruption commits unchecked.
	StructComparator

	// Memory-hierarchy structures — outside the sphere of replication.
	// These fire through the MemSiteInjector hook and carry a victim
	// address (AtStruct.Addr) in addition to the sequence number.

	// StructMemWord flips a bit of one architectural main-memory word.
	StructMemWord
	// StructL1DTag flips a tag bit of the L1D line holding the victim
	// address: the original address pseudo-misses, the aliased address
	// wrong-line hits, and a dirty eviction writes back to the alias.
	StructL1DTag
	// StructL1DDirty clears the dirty bit of the victim L1D line — a
	// lost write-back that silently reverts the line at eviction.
	StructL1DDirty
	// StructL1DData flips a data bit of the word behind a resident L1D
	// line; a clean eviction's refill restores it, a dirty one persists.
	StructL1DData
	// StructL1ITag flips a tag bit of the L1I line holding the victim
	// PC. I-lines are never dirty, so the upset is timing-only.
	StructL1ITag
	// StructL2Line flips one or two adjacent data bits of the word
	// behind a resident L2 line. With SECDED ECC configured on L2,
	// single-bit upsets are corrected (OutcomeCorrected) and double-bit
	// upsets are detected-uncorrectable.
	StructL2Line
	// StructITLB flips a tag bit of the I-TLB entry covering the victim
	// PC's page (translation timing perturbation).
	StructITLB
	// StructDTLB flips a tag bit of the D-TLB entry covering the victim
	// data address's page.
	StructDTLB

	// NumStructs counts the structures above.
	NumStructs
)

var structNames = [NumStructs]string{
	"result", "lsq-addr", "lsq-store-data", "regfile", "fetch-pc",
	"rsq-operand", "rsq-result", "comparator",
	"mem-word", "l1d-tag", "l1d-dirty", "l1d-data", "l1i-tag",
	"l2-line", "itlb-entry", "dtlb-entry",
}

// String returns the campaign-table name of the structure.
func (s Struct) String() string {
	if s < NumStructs {
		return structNames[s]
	}
	return "unknown"
}

// ParseStruct maps a structure name (as printed by String) back to its
// value.
func ParseStruct(name string) (Struct, bool) {
	for i, n := range structNames {
		if n == name {
			return Struct(i), true
		}
	}
	return 0, false
}

// InSphere reports whether the structure lies inside REESE's sphere of
// replication, i.e. whether the comparator is expected to observe a
// corruption there. Campaign smoke tests assert 100% coverage only for
// in-sphere structures.
func (s Struct) InSphere() bool {
	switch s {
	case StructResult, StructLSQAddr, StructLSQStoreData, StructRSQOperand, StructRSQResult:
		return true
	}
	return false
}

// NeedsRSQ reports whether the structure only exists on a machine with
// an R-stream Queue (REESE mode).
func (s Struct) NeedsRSQ() bool {
	switch s {
	case StructRSQOperand, StructRSQResult, StructComparator:
		return true
	}
	return false
}

// InMemHierarchy reports whether the structure lives in the memory
// hierarchy (fires through the MemSiteInjector hook and needs a victim
// address).
func (s Struct) InMemHierarchy() bool {
	switch s {
	case StructMemWord, StructL1DTag, StructL1DDirty, StructL1DData,
		StructL1ITag, StructL2Line, StructITLB, StructDTLB:
		return true
	}
	return false
}

// Level names the physical plane the structure belongs to — the
// ground-truth label the localization pass is scored against. One of
// "ram", "l1", "l2", "tlb", "pipeline".
func (s Struct) Level() string {
	switch s {
	case StructMemWord:
		return "ram"
	case StructL1DTag, StructL1DDirty, StructL1DData, StructL1ITag:
		return "l1"
	case StructL2Line:
		return "l2"
	case StructITLB, StructDTLB:
		return "tlb"
	}
	return "pipeline"
}

// LevelGroup maps a structure to the coarse 3-way localization target
// the symptom classifier predicts: "ram", "cache" (L1/L2/TLB), or
// "pipeline".
func (s Struct) LevelGroup() string {
	switch s.Level() {
	case "ram":
		return "ram"
	case "l1", "l2", "tlb":
		return "cache"
	}
	return "pipeline"
}

// Structures returns the fault targets that exist on a machine,
// depending on whether it has an R-stream Queue.
func Structures(rsq bool) []Struct {
	out := make([]Struct, 0, int(NumStructs))
	for s := Struct(0); s < NumStructs; s++ {
		if s.NeedsRSQ() && !rsq {
			continue
		}
		out = append(out, s)
	}
	return out
}

// Injection describes one fault applied at the writeback latch site.
type Injection struct {
	Struct Struct
	Bit    uint8
	// Reg selects the victim register for StructRegFile.
	Reg uint8
}

// Injector decides, per completing P-stream instruction, whether to
// inject a fault.
type Injector interface {
	// Decide is called once per P-stream completion with the
	// instruction's sequence number and oracle trace. Returning ok=false
	// injects nothing.
	Decide(seq uint64, tr emu.Trace) (Injection, bool)
}

// ArchState is the slice of architectural state an oracle-site fault can
// corrupt. *emu.Machine implements it.
type ArchState interface {
	// CorruptPC XORs mask into the fetch PC.
	CorruptPC(mask uint32)
	// CorruptReg XORs mask into register r (r0 stays hardwired to zero).
	CorruptReg(r uint8, mask uint32)
}

// RSQCorruption describes a fault landing in an R-stream Queue entry at
// enqueue time. Masks are XORed into the stored copies; CompIgnoreMask
// blinds the comparator to those bit lanes (a checker fault). Operand
// masks corrupt only the RSQ's operand copies — the architectural values
// the P-stream used stay clean, so recovery replay is exact.
type RSQCorruption struct {
	OperandAMask   uint32
	OperandBMask   uint32
	ResultMask     uint32
	NextPCMask     uint32
	AddrMask       uint32
	StoreMask      uint32
	CompIgnoreMask uint32
	Bit            uint8
}

// SiteInjector extends Injector with the structure-addressed hook sites.
// The pipeline type-asserts its injector once at construction; plain
// Injectors only see the writeback latch site.
type SiteInjector interface {
	Injector
	// OracleStep is called before each oracle instruction executes, with
	// the oracle's instruction count; a fired fault corrupts architectural
	// state directly (regfile, fetch PC).
	OracleStep(icount uint64, arch ArchState) bool
	// RSQEnqueue is called as each instruction's entry is appended to the
	// R-stream Queue; a fired fault corrupts the stored copies.
	RSQEnqueue(seq uint64, tr emu.Trace) (RSQCorruption, bool)
}

// CacheSel selects a cache level for a memory-hierarchy fault.
type CacheSel uint8

// Cache levels a MemPlane can target.
const (
	SelL1I CacheSel = iota
	SelL1D
	SelL2
)

// FlipResult reports what a data-bit flip did at an (optionally
// ECC-protected) cache level.
type FlipResult uint8

// DataFlip results.
const (
	// FlipNone: the target line is not resident; nothing happened.
	FlipNone FlipResult = iota
	// FlipApplied: the bits were flipped in the architectural word.
	FlipApplied
	// FlipCorrected: SECDED corrected the single-bit upset in place.
	FlipCorrected
	// FlipDetected: SECDED flagged a double-bit upset as detected-
	// uncorrectable; the flips were applied (the data is lost).
	FlipDetected
)

// MemPlane is the memory hierarchy as seen by an injector: the
// architectural word plane plus the timing caches and TLBs. The
// pipeline provides an adapter over its hierarchy and oracle memory.
type MemPlane interface {
	// CorruptWord XORs mask into the architectural memory word at addr.
	CorruptWord(addr, mask uint32) bool
	// TagFlip flips a tag bit of the line holding addr at level l.
	TagFlip(l CacheSel, addr uint32, bit uint8) bool
	// DirtyClear arms/fires a lost write-back on the L1D line at addr.
	// lastSeq is the dynamic index of the block's last golden store; the
	// clear may only fire after it retires (earlier, the block's own
	// later stores would re-dirty the line and always mask the upset).
	DirtyClear(addr uint32, lastSeq uint64) bool
	// DataFlip flips data bit(s) behind a resident line at level l.
	DataFlip(l CacheSel, addr uint32, bits uint8) FlipResult
	// TLBEntryFlip flips a tag bit of the TLB entry covering addr
	// (data=true for the D-TLB, false for the I-TLB).
	TLBEntryFlip(data bool, addr uint32, bit uint8) bool
}

// MemSiteInjector is a SiteInjector that can also fire into the memory
// hierarchy. The pipeline type-asserts for it once and calls MemStep
// through a narrow nil-gated hook, like the other sites.
type MemSiteInjector interface {
	SiteInjector
	// MemStep is called before each oracle instruction executes; a fired
	// fault perturbs the memory hierarchy through mp.
	MemStep(icount uint64, mp MemPlane) bool
}

// None never injects. The zero value is ready to use.
type None struct{}

// Decide implements Injector.
func (None) Decide(uint64, emu.Trace) (Injection, bool) { return Injection{}, false }

// ComparatorObserves reports whether the RSQ comparator has anything to
// check for tr: a register result, a store value, or a control-transfer
// target. halt/out have no comparable outcome. Campaign victim sampling
// uses this to aim comparable-outcome faults at eligible instructions.
func ComparatorObserves(tr emu.Trace) bool {
	op := tr.Inst.Op
	return tr.HasResult || op.IsStore() || op.IsControl()
}

// AtStruct injects one fault into structure Struct at the first eligible
// victim instruction at or after sequence number Seq. "Eligible" depends
// on the structure (a store-data fault needs a store, an address fault a
// memory op, a comparable-outcome fault an instruction the comparator
// observes); skipping forward keeps the injector robust when Seq points
// at an ineligible instruction. Oracle-site structures key on the
// oracle's instruction count instead of the dispatch sequence.
type AtStruct struct {
	Struct Struct
	Seq    uint64
	Bit    uint8
	// Reg is the victim register for StructRegFile (r0 never fires).
	Reg uint8
	// Addr is the victim address for memory-hierarchy structures: the
	// memory word, the cache line, the page — whichever the structure
	// targets.
	Addr uint32
	// Seq2 is used by StructL1DDirty only: the dynamic index of the
	// victim block's last golden store. The campaign plans Seq at the
	// block's first store (so the pre-store snapshot covers every store
	// to the block) and the dirty-clear fires once Seq2 has retired.
	Seq2 uint64

	fired    bool
	firedSeq uint64
	// ECC verdicts recorded when an L2 data flip meets a SECDED code.
	eccCorrected bool
	eccDetected  bool
}

var _ MemSiteInjector = (*AtStruct)(nil)

// Fired reports whether the fault has been injected.
func (a *AtStruct) Fired() bool { return a.fired }

// FiredSeq returns the sequence number (or oracle instruction count) the
// fault actually landed on; valid only once Fired.
func (a *AtStruct) FiredSeq() uint64 { return a.firedSeq }

// EccCorrected reports whether the fault was absorbed by ECC.
func (a *AtStruct) EccCorrected() bool { return a.eccCorrected }

// EccDetected reports whether ECC flagged the fault as detected-
// uncorrectable (the corruption was applied and the data is lost).
func (a *AtStruct) EccDetected() bool { return a.eccDetected }

func (a *AtStruct) mask() uint32 { return 1 << (a.Bit % 32) }

// Decide implements the writeback latch site (result, LSQ address, LSQ
// store data).
func (a *AtStruct) Decide(seq uint64, tr emu.Trace) (Injection, bool) {
	if a.fired || seq < a.Seq {
		return Injection{}, false
	}
	op := tr.Inst.Op
	switch a.Struct {
	case StructResult:
		if !ComparatorObserves(tr) {
			return Injection{}, false
		}
	case StructLSQAddr:
		if !op.IsMem() {
			return Injection{}, false
		}
	case StructLSQStoreData:
		if !op.IsStore() {
			return Injection{}, false
		}
	default:
		return Injection{}, false
	}
	a.fired = true
	a.firedSeq = seq
	return Injection{Struct: a.Struct, Bit: a.Bit % 32}, true
}

// OracleStep implements the architectural site (regfile, fetch PC).
func (a *AtStruct) OracleStep(icount uint64, arch ArchState) bool {
	if a.fired || icount < a.Seq {
		return false
	}
	switch a.Struct {
	case StructFetchPC:
		arch.CorruptPC(a.mask())
	case StructRegFile:
		if a.Reg%32 == 0 {
			return false // r0 is hardwired; nothing to corrupt
		}
		arch.CorruptReg(a.Reg%32, a.mask())
	default:
		return false
	}
	a.fired = true
	a.firedSeq = icount
	return true
}

// RSQEnqueue implements the RSQ site (operand copy, stored P-result,
// comparator lane).
func (a *AtStruct) RSQEnqueue(seq uint64, tr emu.Trace) (RSQCorruption, bool) {
	var c RSQCorruption
	if a.fired || seq < a.Seq || !ComparatorObserves(tr) {
		return c, false
	}
	m := a.mask()
	c.Bit = a.Bit % 32
	op := tr.Inst.Op
	switch a.Struct {
	case StructRSQOperand:
		// Corrupt whichever operand slot the instruction actually reads;
		// when it reads both, the bit's parity picks one.
		r1, r2 := op.ReadsRs1(), op.ReadsRs2()
		switch {
		case r1 && r2 && a.Bit&1 == 1:
			c.OperandBMask = m
		case r2 && !r1:
			c.OperandBMask = m
		default:
			c.OperandAMask = m
		}
	case StructRSQResult, StructComparator:
		// Corrupt the stored copy of whatever field the comparator checks
		// for this instruction kind.
		switch {
		case tr.HasResult:
			c.ResultMask = m
		case op.IsStore():
			c.StoreMask = m
		default: // result-less control transfer
			c.NextPCMask = m
		}
		if a.Struct == StructComparator {
			// A dead comparator lane: the same bit is corrupted AND excluded
			// from the comparison, so the corruption sails through.
			c.CompIgnoreMask = m
		}
	default:
		return RSQCorruption{}, false
	}
	a.fired = true
	a.firedSeq = seq
	return c, true
}

// MemStep implements the memory-hierarchy site. Cache and TLB targets
// need their victim line resident (a lost write-back additionally
// needs it dirty), so the injector polls every oracle step from Seq
// until the hierarchy is in an eligible state; a fault whose line never
// becomes eligible simply never fires and the trial is masked.
func (a *AtStruct) MemStep(icount uint64, mp MemPlane) bool {
	if a.fired || icount < a.Seq {
		return false
	}
	fired := false
	switch a.Struct {
	case StructMemWord:
		fired = mp.CorruptWord(a.Addr&^3, a.mask())
	case StructL1DTag:
		fired = mp.TagFlip(SelL1D, a.Addr, a.Bit)
	case StructL1ITag:
		fired = mp.TagFlip(SelL1I, a.Addr, a.Bit)
	case StructL1DDirty:
		fired = mp.DirtyClear(a.Addr, a.Seq2)
	case StructL1DData:
		fired = mp.DataFlip(SelL1D, a.Addr, a.Bit%32) != FlipNone
	case StructL2Line:
		switch mp.DataFlip(SelL2, a.Addr, a.Bit%64) {
		case FlipApplied:
			fired = true
		case FlipCorrected:
			fired, a.eccCorrected = true, true
		case FlipDetected:
			fired, a.eccDetected = true, true
		}
	case StructITLB:
		fired = mp.TLBEntryFlip(false, a.Addr, a.Bit)
	case StructDTLB:
		fired = mp.TLBEntryFlip(true, a.Addr, a.Bit)
	default:
		return false
	}
	if fired {
		a.fired = true
		a.firedSeq = icount
	}
	return fired
}

// AtSeq injects a single fault into the instruction with the given
// sequence number. The zero Bit flips bit 0.
type AtSeq struct {
	Seq    uint64
	Bit    uint8
	Struct Struct

	fired bool
}

// Decide implements Injector.
func (a *AtSeq) Decide(seq uint64, tr emu.Trace) (Injection, bool) {
	if a.fired || seq != a.Seq {
		return Injection{}, false
	}
	a.fired = true
	return Injection{Bit: a.Bit % 32, Struct: a.Struct}, true
}

// Fired reports whether the fault has been injected.
func (a *AtSeq) Fired() bool { return a.fired }

// Window injects exactly one fault at a sequence number drawn uniformly
// from [Lo, Hi) by a seeded PRNG, with the bit position drawn from the
// same stream. Campaigns sweeping the paper's §4.2 commit-phase windows
// build one Window per trial: the same seed always picks the same
// (seq, bit), so trials are reproducible, and the fired latch means a
// replayed sequence number (REESE recovery re-fetches the faulted
// region) never re-injects.
type Window struct {
	Lo, Hi uint64
	Bit    uint8
	Struct Struct

	seq   uint64
	fired bool
}

// NewWindow builds a Window over [lo, hi) (hi must exceed lo) seeded
// with seed (0 is replaced with a fixed constant, as NewRandom).
func NewWindow(lo, hi, seed uint64) *Window {
	if hi <= lo {
		hi = lo + 1
	}
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	r := &Random{state: seed}
	v := r.next()
	return &Window{
		Lo:  lo,
		Hi:  hi,
		Bit: uint8(r.next()>>32) % 32,
		seq: lo + v%(hi-lo),
	}
}

// Seq returns the chosen injection sequence number.
func (w *Window) Seq() uint64 { return w.seq }

// Fired reports whether the fault has been injected.
func (w *Window) Fired() bool { return w.fired }

// Decide implements Injector.
func (w *Window) Decide(seq uint64, tr emu.Trace) (Injection, bool) {
	if w.fired || seq != w.seq {
		return Injection{}, false
	}
	w.fired = true
	return Injection{Bit: w.Bit % 32, Struct: w.Struct}, true
}

// Periodic injects a fault every Interval instructions, cycling through
// bit positions. It drives fault-injection campaigns.
type Periodic struct {
	// Interval is the sequence-number spacing between injections.
	Interval uint64
	// Start offsets the first injection.
	Start uint64

	injected uint64
}

// Decide implements Injector.
func (p *Periodic) Decide(seq uint64, tr emu.Trace) (Injection, bool) {
	if p.Interval == 0 || seq < p.Start || (seq-p.Start)%p.Interval != 0 {
		return Injection{}, false
	}
	p.injected++
	return Injection{Bit: uint8(p.injected % 32)}, true
}

// Injected returns how many faults have been injected.
func (p *Periodic) Injected() uint64 { return p.injected }

// Random injects faults with a fixed per-instruction probability using a
// deterministic xorshift PRNG, so campaigns are reproducible.
type Random struct {
	// PerInst is the injection probability per instruction, expressed as
	// numerator over 2^32 (e.g. 1<<22 ≈ 1 in 1024).
	PerInst uint32

	state    uint64
	injected uint64
}

// NewRandom builds a Random injector with probability num/2^32 per
// instruction and the given seed (0 is replaced with a fixed constant).
func NewRandom(num uint32, seed uint64) *Random {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &Random{PerInst: num, state: seed}
}

func (r *Random) next() uint64 {
	// xorshift64*.
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Decide implements Injector.
func (r *Random) Decide(seq uint64, tr emu.Trace) (Injection, bool) {
	v := r.next()
	if uint32(v) >= r.PerInst {
		return Injection{}, false
	}
	r.injected++
	return Injection{Bit: uint8(v>>32) % 32}, true
}

// Injected returns how many faults have been injected.
func (r *Random) Injected() uint64 { return r.injected }

// StuckUnit models a permanent fault in one functional unit: every
// operation executed on unit Unit of kind Kind has bit Bit of its result
// flipped. Unlike the transient Injector faults, this corrupts BOTH the
// P-stream and any redundant execution that lands on the same unit —
// the common-mode case that plain re-execution cannot detect and RESO
// (recomputation with shifted operands, the paper's §3 reference [15])
// can.
type StuckUnit struct {
	// Kind is the fu.Kind value of the faulty unit's class.
	Kind uint8
	// Unit is the index within the class.
	Unit int
	// Bit is the flipped result bit.
	Bit uint8
}

// Mask returns the XOR mask the fault applies to a result computed on
// the faulty unit.
func (s StuckUnit) Mask() uint32 { return 1 << (s.Bit % 32) }

// Hits reports whether an operation executed on (kind, unit) is
// affected.
func (s StuckUnit) Hits(kind uint8, unit int) bool {
	return unit >= 0 && s.Kind == kind && s.Unit == unit
}

// Outcome classifies one injected run against its golden reference.
// Every injection lands in exactly one outcome.
type Outcome uint8

// Outcomes, in classification-precedence order: a hang trumps
// detection (the machine never finished), detection splits into
// recovered/not by final-state agreement, and undetected runs split
// into masked/SDC the same way.
const (
	// OutcomeDetected: the comparator fired but the run did not end in
	// the golden architectural state (detection without clean recovery).
	OutcomeDetected Outcome = iota
	// OutcomeRecovered: detected, recovered, and the final state matches
	// the golden run exactly — REESE's full success path.
	OutcomeRecovered
	// OutcomeSDC: silent data corruption — no detection, final state
	// differs from golden.
	OutcomeSDC
	// OutcomeMasked: no detection and no architectural effect; the flip
	// was logically or microarchitecturally masked.
	OutcomeMasked
	// OutcomeHang: the no-commit watchdog terminated the run.
	OutcomeHang
	// OutcomeCorrected: an ECC-protected structure absorbed the upset —
	// corrected in place, no architectural effect, no detection needed.
	// Counted as effective (the fault reached real state) but never as
	// an escape.
	OutcomeCorrected

	// NumOutcomes counts the outcomes above.
	NumOutcomes
)

var outcomeNames = [NumOutcomes]string{"detected", "recovered", "sdc", "masked", "hang", "corrected"}

// String returns the campaign-table name of the outcome.
func (o Outcome) String() string {
	if o < NumOutcomes {
		return outcomeNames[o]
	}
	return "unknown"
}

// Apply corrupts the latched P-stream outcomes of tr according to inj,
// returning the corrupted (result, nextPC, addr, storeValue) tuple. The
// faulted field depends on the target structure and instruction kind,
// mirroring where a transient in the datapath would land.
func Apply(inj Injection, tr emu.Trace) (result, nextPC, addr, storeValue uint32) {
	result = tr.Result
	nextPC = tr.NextPC
	addr = tr.Addr
	storeValue = tr.StoreValue
	mask := uint32(1) << (inj.Bit % 32)
	op := tr.Inst.Op
	switch {
	case inj.Struct == StructLSQAddr && op.IsMem():
		addr ^= mask
	case inj.Struct == StructLSQStoreData && op.IsStore():
		storeValue ^= mask
	case inj.Struct == StructLSQAddr || inj.Struct == StructLSQStoreData:
		// An LSQ fault aimed at a non-memory instruction: nothing to
		// corrupt in the latch plane; fall through to the result so the
		// injection is never silently dropped.
		fallthrough
	case inj.Struct == StructResult:
		switch {
		case op.IsStore():
			storeValue ^= mask
		case op.IsControl() && !tr.HasResult:
			nextPC ^= mask
		case tr.HasResult:
			result ^= mask
		default:
			// halt/out and friends: fault the next PC (control corruption).
			nextPC ^= mask
		}
	default:
		// Oracle- and RSQ-site structures never reach Apply; treat any
		// stray injection as a result fault.
		switch {
		case op.IsStore():
			storeValue ^= mask
		case tr.HasResult:
			result ^= mask
		default:
			nextPC ^= mask
		}
	}
	return result, nextPC, addr, storeValue
}
