package emu

import (
	"math"
	"testing"

	"reese/internal/asm"
	"reese/internal/isa"
	"reese/internal/program"
)

// asmAssemble is a local alias so the FP tests read cleanly.
func asmAssemble(name, src string) (*program.Program, error) {
	return asm.Assemble(name, src)
}

func TestFPProgram(t *testing.T) {
	m := run(t, `
		; compute (3.0 + 1.5) * 2.0 / 4.0 - 0.25 = 2.0
		li r1, 3
		fcvtsw f1, r1         ; 3.0
		li r1, 2
		fcvtsw f2, r1         ; 2.0
		li r1, 4
		fcvtsw f3, r1         ; 4.0
		li r1, 1
		fcvtsw f4, r1
		fdiv f4, f4, f3       ; 0.25
		fdiv f5, f2, f3       ; 0.5
		fmul f5, f5, f1       ; 1.5
		fadd f6, f1, f5       ; 4.5
		fmul f6, f6, f2       ; 9.0
		fdiv f6, f6, f3       ; 2.25
		fsub f6, f6, f4       ; 2.0
		fcvtws r2, f6         ; 2
		; compare path
		feq r3, f6, f2        ; 2.0 == 2.0 -> 1
		flt r4, f4, f6        ; 0.25 < 2.0 -> 1
		halt
	`)
	if got := m.Reg(2); got != 2 {
		t.Errorf("r2 = %d, want 2", got)
	}
	if m.Reg(3) != 1 || m.Reg(4) != 1 {
		t.Errorf("fp compares: r3=%d r4=%d", m.Reg(3), m.Reg(4))
	}
	if got := math.Float32frombits(m.FReg(6)); got != 2.0 {
		t.Errorf("f6 = %v, want 2.0", got)
	}
}

func TestFPLoadsAndStores(t *testing.T) {
	m := run(t, `
		la r1, vals
		lwf f1, 0(r1)
		lwf f2, 4(r1)
		fadd f3, f1, f2
		swf f3, 8(r1)
		lwf f4, 8(r1)
		fcvtws r2, f4
		halt
	.data
	vals:
		.word 0x40200000      ; 2.5
		.word 0x3fc00000      ; 1.5
		.space 4
	`)
	if got := math.Float32frombits(m.FReg(3)); got != 4.0 {
		t.Errorf("f3 = %v, want 4.0", got)
	}
	if got := m.Reg(2); got != 4 {
		t.Errorf("r2 = %d, want 4", got)
	}
	// The stored word is the IEEE pattern for 4.0.
	w, err := m.Mem().ReadWord(m.prog.Symbols["vals"] + 8)
	if err != nil {
		t.Fatal(err)
	}
	if w != math.Float32bits(4.0) {
		t.Errorf("stored bits %#x", w)
	}
}

func TestFPFileSeparation(t *testing.T) {
	// f5 and r5 are distinct storage; f0 is not hardwired to zero.
	m := run(t, `
		li r5, 77
		li r1, 3
		mtf f5, r1
		mff r6, f5
		li r1, 9
		mtf f0, r1
		mff r7, f0
		halt
	`)
	if m.Reg(5) != 77 {
		t.Error("writing f5 must not clobber r5")
	}
	if m.Reg(6) != 3 {
		t.Errorf("r6 = %d", m.Reg(6))
	}
	if m.Reg(7) != 9 {
		t.Errorf("f0 must be writable (not hardwired): r7 = %d", m.Reg(7))
	}
}

func TestFPMovesAreBitExact(t *testing.T) {
	// mtf/mff transport raw bit patterns, not converted values.
	m := run(t, `
		li r1, 0x7fc00001     ; a signalling-ish NaN pattern
		mtf f1, r1
		fmov f2, f1
		mff r2, f2
		halt
	`)
	if m.Reg(2) != 0x7fc00001 {
		t.Errorf("bit pattern %#x survived as %#x", 0x7fc00001, m.Reg(2))
	}
}

func TestFPTraceCarriesBitPatterns(t *testing.T) {
	p, err := asmAssemble("fp-trace", `
		li r1, 2
		fcvtsw f1, r1
		fadd f2, f1, f1
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	var last Trace
	for !m.Halted() {
		tr, err := m.Step()
		if err != nil {
			t.Fatal(err)
		}
		if tr.Inst.Op == isa.OpFadd {
			last = tr
		}
	}
	if math.Float32frombits(last.A) != 2.0 || math.Float32frombits(last.Result) != 4.0 {
		t.Errorf("fadd trace: A=%#x Result=%#x", last.A, last.Result)
	}
	if !last.HasResult {
		t.Error("fadd has a result")
	}
}
