package chaos

// Transport is a seeded network-fault injector implemented as an
// http.RoundTripper: it sits between the cluster coordinator and its
// workers (or any client and any server) and misbehaves the way real
// networks do — dropped connections, added latency, 5xx bursts,
// truncated response bodies, single-bit payload corruption, and timed
// partitions of individual hosts. The teaMPI/SWE line of work treats
// these as the baseline operating condition, not an edge case; the
// cluster layer is tested under this transport to the same standard.
//
// Faults are rolled per request from a seeded PRNG, so a failing run
// reproduces exactly from its seed. Request bodies are never touched:
// a request either reaches the server whole or not at all (a dropped
// or partitioned request errors before the connection is attempted),
// mirroring TCP's all-or-nothing delivery into the server. Response
// corruption happens after the server has done its work — the
// dangerous case, because the side effect (a submitted job) survives
// while the acknowledgement is damaged. Every injection is counted so
// tests can assert the chaos actually landed.

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// TransportConfig sets the per-request fault probabilities. All
// probabilities are independent rolls in [0,1); zero disables that
// fault. The zero value is a transparent transport.
type TransportConfig struct {
	// Seed drives every roll; equal seeds reproduce equal fault
	// schedules against an equal request sequence.
	Seed int64
	// DropProb errors the request before it is sent (connection refused
	// / reset from the client's point of view; the server never sees it).
	DropProb float64
	// LatencyProb delays the request by up to MaxLatency (default 50ms),
	// honoring the request context while sleeping.
	LatencyProb float64
	MaxLatency  time.Duration
	// Err5xxProb short-circuits the request with a synthesized 503
	// carrying a Retry-After header — alternating between the
	// delta-seconds and HTTP-date forms, since servers are allowed to
	// send either and clients must parse both.
	Err5xxProb float64
	// TruncateProb cuts the response body short at a random point — a
	// mid-transfer connection loss after the server committed the work.
	TruncateProb float64
	// CorruptProb flips one random bit of the response body — the
	// payload arrives plausible but wrong, the case only end-to-end
	// integrity checking catches.
	CorruptProb float64
	// Base performs the real round trips (default
	// http.DefaultTransport).
	Base http.RoundTripper
}

// Transport implements http.RoundTripper with injected faults. Safe
// for concurrent use.
type Transport struct {
	cfg TransportConfig

	mu         sync.Mutex
	rng        *rand.Rand
	err5xxDate bool // alternate Retry-After forms across synthesized 503s
	partitions map[string]partitionWindow

	drops       atomic.Int64
	delays      atomic.Int64
	err5xx      atomic.Int64
	truncated   atomic.Int64
	corrupted   atomic.Int64
	partitioned atomic.Int64
}

// partitionWindow marks a host unreachable between from and until.
type partitionWindow struct {
	from, until time.Time
}

// NewTransport builds a seeded chaos transport.
func NewTransport(cfg TransportConfig) *Transport {
	if cfg.Base == nil {
		cfg.Base = http.DefaultTransport
	}
	if cfg.MaxLatency <= 0 {
		cfg.MaxLatency = 50 * time.Millisecond
	}
	return &Transport{
		cfg:        cfg,
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		partitions: make(map[string]partitionWindow),
	}
}

// Partition makes every request to host (the URL's Host, e.g.
// "127.0.0.1:43211") fail as a transport error during [from, until) —
// a network split with a scheduled heal. Re-partitioning a host
// replaces its window.
func (t *Transport) Partition(host string, from, until time.Time) {
	t.mu.Lock()
	t.partitions[host] = partitionWindow{from: from, until: until}
	t.mu.Unlock()
}

// PartitionFor partitions host for the duration d starting now.
func (t *Transport) PartitionFor(host string, d time.Duration) {
	now := time.Now()
	t.Partition(host, now, now.Add(d))
}

// Heal lifts any partition on host immediately.
func (t *Transport) Heal(host string) {
	t.mu.Lock()
	delete(t.partitions, host)
	t.mu.Unlock()
}

// Drops reports how many requests were dropped before sending.
func (t *Transport) Drops() int64 { return t.drops.Load() }

// Delays reports how many requests had latency injected.
func (t *Transport) Delays() int64 { return t.delays.Load() }

// Err5xx reports how many synthesized 503 responses were returned.
func (t *Transport) Err5xx() int64 { return t.err5xx.Load() }

// Truncated reports how many response bodies were cut short.
func (t *Transport) Truncated() int64 { return t.truncated.Load() }

// Corrupted reports how many response bodies had a bit flipped.
func (t *Transport) Corrupted() int64 { return t.corrupted.Load() }

// Partitioned reports how many requests died against a partition.
func (t *Transport) Partitioned() int64 { return t.partitioned.Load() }

// Injected reports the total number of faults injected so far.
func (t *Transport) Injected() int64 {
	return t.Drops() + t.Err5xx() + t.Truncated() + t.Corrupted() + t.Partitioned()
}

// roll draws the per-request fault decisions in one critical section,
// so concurrent requests each consume a deterministic slice of the
// stream (which decisions land on which request still depends on
// request ordering — determinism holds for serial request sequences).
type rollResult struct {
	drop, delay, err5xx, truncate, corrupt bool
	delayFrac, truncFrac                   float64
	corruptBit                             int64
	dateForm                               bool
	retryAfterS                            int
}

func (t *Transport) roll() rollResult {
	t.mu.Lock()
	defer t.mu.Unlock()
	r := rollResult{
		drop:     t.rng.Float64() < t.cfg.DropProb,
		delay:    t.rng.Float64() < t.cfg.LatencyProb,
		err5xx:   t.rng.Float64() < t.cfg.Err5xxProb,
		truncate: t.rng.Float64() < t.cfg.TruncateProb,
		corrupt:  t.rng.Float64() < t.cfg.CorruptProb,
		// Draw the shape parameters unconditionally so the stream of
		// rolls per request has fixed length regardless of outcomes.
		delayFrac:   t.rng.Float64(),
		truncFrac:   t.rng.Float64(),
		corruptBit:  t.rng.Int63(),
		retryAfterS: 1 + t.rng.Intn(3),
	}
	if r.err5xx {
		r.dateForm = t.err5xxDate
		t.err5xxDate = !t.err5xxDate
	}
	return r
}

// partitionedNow reports whether host is inside a partition window.
func (t *Transport) partitionedNow(host string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	w, ok := t.partitions[host]
	if !ok {
		return false
	}
	now := time.Now()
	return !now.Before(w.from) && now.Before(w.until)
}

// RoundTrip applies the fault schedule to one request.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	if t.partitionedNow(req.URL.Host) {
		t.partitioned.Add(1)
		return nil, fmt.Errorf("chaos: host %s partitioned", req.URL.Host)
	}
	r := t.roll()
	if r.drop {
		t.drops.Add(1)
		return nil, fmt.Errorf("chaos: dropped %s %s", req.Method, req.URL.Path)
	}
	if r.delay {
		t.delays.Add(1)
		d := time.Duration(r.delayFrac * float64(t.cfg.MaxLatency))
		select {
		case <-time.After(d):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	if r.err5xx {
		t.err5xx.Add(1)
		return t.synthesize503(req, r), nil
	}
	resp, err := t.cfg.Base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if !r.truncate && !r.corrupt {
		return resp, nil
	}
	// Damaging the body requires owning it: read it fully (bounded),
	// mutate, and hand back a replacement reader.
	body, rerr := io.ReadAll(io.LimitReader(resp.Body, 256<<20))
	resp.Body.Close()
	if rerr != nil {
		return nil, rerr
	}
	if r.truncate && len(body) > 0 {
		t.truncated.Add(1)
		body = body[:int(r.truncFrac*float64(len(body)))]
	}
	if r.corrupt && len(body) > 0 {
		t.corrupted.Add(1)
		bit := r.corruptBit % int64(len(body)*8)
		body[bit/8] ^= 1 << (bit % 8)
	}
	resp.Body = io.NopCloser(bytes.NewReader(body))
	resp.ContentLength = int64(len(body))
	resp.Header.Del("Content-Length")
	return resp, nil
}

// synthesize503 fabricates a 503 without touching the server,
// alternating the Retry-After form between delta-seconds and HTTP-date
// so the client's parser sees both in any burst.
func (t *Transport) synthesize503(req *http.Request, r rollResult) *http.Response {
	h := make(http.Header)
	if r.dateForm {
		h.Set("Retry-After", time.Now().Add(time.Duration(r.retryAfterS)*time.Second).UTC().Format(http.TimeFormat))
	} else {
		h.Set("Retry-After", strconv.Itoa(r.retryAfterS))
	}
	h.Set("Content-Type", "application/json")
	body := []byte(`{"error":"chaos: injected 503 burst"}`)
	return &http.Response{
		Status:        "503 Service Unavailable",
		StatusCode:    http.StatusServiceUnavailable,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        h,
		Body:          io.NopCloser(bytes.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}
