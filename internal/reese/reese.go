// Package reese implements the paper's contribution: the R-stream Queue
// (RSQ) and the redundant-execution machinery around it.
//
// A P-stream instruction that is ready to commit enters the RSQ at the
// tail carrying its opcode, operand values, and P-stream result. Because
// the operands are carried along, R-stream instructions have no data
// dependencies, and because the outcome of every branch is already
// known, they have no control dependencies either (paper §4.4): any
// R-stream instruction at or behind the issue pointer may issue to any
// idle functional unit. When the re-execution finishes, its result is
// compared against the stored P result; on a match the instruction is
// verified and may commit architecturally from the head of the queue, in
// program order. On a mismatch a soft error has been detected.
//
// The scheduler normally gives P-stream instructions priority and lets
// R-stream instructions soak up idle capacity; when RSQ occupancy
// crosses a high-water mark, R-stream instructions take priority so the
// queue drains (the paper's counter-based overflow avoidance, §4.3).
package reese

import (
	"fmt"

	"reese/internal/emu"
	"reese/internal/isa"
)

// Entry is one instruction awaiting or undergoing redundant execution.
type Entry struct {
	// Seq is the instruction's program-order sequence number.
	Seq uint64
	// Trace is the oracle record of the P-stream execution.
	Trace emu.Trace

	// ResultP is the result latched from the P-stream datapath. A fault
	// injector may have corrupted it relative to Trace.
	ResultP uint32
	// NextPCP, AddrP and StoreValueP are the latched control/memory
	// outcomes of the P-stream execution (corruptible likewise).
	NextPCP     uint32
	AddrP       uint32
	StoreValueP uint32
	// FaultBit/FaultCycle record an injected fault (255 = none).
	FaultBit   uint8
	FaultCycle uint64

	// LSQSeq links memory instructions to their load/store queue entry.
	LSQSeq uint64

	// QSeq is the entry's R-stream-Queue order number (assigned at
	// enqueue; the slot key).
	QSeq uint64
	// EnqueuedAt is the cycle the entry entered the queue.
	EnqueuedAt uint64
	// Dispatched is set when the R copy re-enters the pipeline through
	// the dispatch stage (paper §4.3: the scheduler chooses between a
	// decoded P instruction and the head of the R-stream Queue). A
	// dispatched, unfinished copy occupies a window slot.
	Dispatched bool
	// Issued/IssuedAt/DoneAt track the re-execution on its functional
	// unit. Done is set when it has completed and compared. RUnit
	// records which unit ran it (-1 = none).
	Issued   bool
	IssuedAt uint64
	DoneAt   uint64
	Done     bool
	RKind    uint8
	RUnit    int
	// Verified means the comparison succeeded; Mismatch means it failed.
	Verified bool
	Mismatch bool
	// Skipped marks instructions exempted by partial re-execution
	// (paper §7); they verify vacuously.
	Skipped bool

	// RFaultMask is the corruption a permanent functional-unit fault
	// applies to the R-stream execution itself (set at R issue when the
	// copy lands on a stuck unit). Under RESO the recomputation runs on
	// shifted operands, so the same stuck bit lands one position lower
	// after unshifting — which is what makes the fault visible.
	RFaultMask uint32

	// OperandAMask/OperandBMask model a transient in the RSQ's operand
	// copies: the recomputation reads the corrupted operand while
	// Trace.A/B (what the P-stream used, and what recovery replays)
	// stay clean. CompIgnore blinds the comparator to those bit lanes —
	// a fault in the checker itself.
	OperandAMask uint32
	OperandBMask uint32
	CompIgnore   uint32
}

// HasFault reports whether a fault was injected into this instruction's
// P-stream outcome.
func (e *Entry) HasFault() bool { return e.FaultBit != 255 }

// Stats counts R-stream activity.
type Stats struct {
	// Enqueued is the number of instructions that entered the RSQ.
	Enqueued uint64
	// Reexecuted is the number of R-stream executions issued.
	Reexecuted uint64
	// Verified is the number of successful comparisons.
	Verified uint64
	// Mismatches is the number of failed comparisons (detected faults).
	Mismatches uint64
	// Skipped counts instructions exempted by partial re-execution.
	Skipped uint64
	// FullStalls counts cycles in which a completed RUU head could not
	// move into the RSQ because it was full.
	FullStalls uint64
	// PriorityCycles counts cycles the high-water mark gave R-stream
	// instructions scheduling priority.
	PriorityCycles uint64
}

// Queue is the R-stream Queue: a FIFO whose entries issue (possibly out
// of order with respect to completion) and retire in order once
// verified.
type Queue struct {
	slots   []Entry
	size    uint64
	headSeq uint64 // oldest resident (rsq-order sequence)
	nextSeq uint64 // next rsq-order sequence to allocate

	highWater int
	every     int // re-execute 1 in every N instructions (1 = all)
	reso      bool
	stats     Stats
}

// New builds an R-stream Queue.
//
// size is the queue capacity (the paper starts at 32). highWater is the
// occupancy at which R-stream instructions get issue priority; 0 selects
// the default of size-8 (clamped to at least 1). reexecuteEvery enables
// partial re-execution: only one in every N instructions is re-executed
// (0 and 1 both mean every instruction).
func New(size, highWater, reexecuteEvery int) (*Queue, error) {
	if size < 1 {
		return nil, fmt.Errorf("reese: rsq size %d", size)
	}
	if highWater == 0 {
		highWater = size - 8
		if highWater < 1 {
			highWater = 1
		}
	}
	if highWater < 0 || highWater > size {
		return nil, fmt.Errorf("reese: high-water %d out of [1,%d]", highWater, size)
	}
	if reexecuteEvery < 0 {
		return nil, fmt.Errorf("reese: re-execute every %d", reexecuteEvery)
	}
	if reexecuteEvery == 0 {
		reexecuteEvery = 1
	}
	return &Queue{
		slots:     make([]Entry, size),
		size:      uint64(size),
		highWater: highWater,
		every:     reexecuteEvery,
	}, nil
}

// SetRESO enables recomputation with shifted operands (Patel & Fung,
// the paper's reference [15]): the R-stream execution is transformed so
// a permanent fault in a functional unit corrupts the two executions
// differently, making it detectable even when both land on the same
// unit. RESO itself is timing-neutral here (the shift stages are folded
// into the unit's latency).
func (q *Queue) SetRESO(on bool) { q.reso = on }

// RESO reports whether shifted-operand recomputation is enabled.
func (q *Queue) RESO() bool { return q.reso }

// Len returns current occupancy.
func (q *Queue) Len() int { return int(q.nextSeq - q.headSeq) }

// Cap returns the capacity.
func (q *Queue) Cap() int { return int(q.size) }

// Full reports whether the queue can accept no more entries. A full RSQ
// blocks the RUU head — the only way REESE inhibits the P stream.
func (q *Queue) Full() bool { return q.nextSeq-q.headSeq >= q.size }

// Empty reports whether the queue is empty.
func (q *Queue) Empty() bool { return q.nextSeq == q.headSeq }

// PressureHigh reports whether occupancy has crossed the high-water
// mark, giving R-stream instructions priority this cycle.
func (q *Queue) PressureHigh() bool { return q.Len() >= q.highWater }

// NotePriorityCycle records a cycle during which R-stream priority was
// in force (called once per such cycle by the pipeline).
func (q *Queue) NotePriorityCycle() { q.stats.PriorityCycles++ }

// NoteFullStall records a cycle in which the RUU head was blocked by a
// full RSQ.
func (q *Queue) NoteFullStall() { q.stats.FullStalls++ }

// Enqueue adds an instruction leaving the RUU head. Returns nil if full.
func (q *Queue) Enqueue(e Entry, now uint64) *Entry {
	if q.Full() {
		return nil
	}
	slot := &q.slots[q.nextSeq%q.size]
	*slot = e
	slot.QSeq = q.nextSeq
	slot.EnqueuedAt = now
	if q.every > 1 && e.Seq%uint64(q.every) != 0 {
		// Partial re-execution: this instruction is not re-executed and
		// verifies vacuously (coverage is sacrificed, paper §7).
		slot.Skipped = true
		slot.Dispatched = true
		slot.Issued = true
		slot.Done = true
		slot.Verified = true
		q.stats.Skipped++
	}
	q.nextSeq++
	q.stats.Enqueued++
	return slot
}

// NextToDispatch returns the oldest entry whose R copy has not yet been
// dispatched back into the pipeline, or nil. The queue is a FIFO: copies
// re-enter in order.
func (q *Queue) NextToDispatch() *Entry {
	for s := q.headSeq; s < q.nextSeq; s++ {
		e := &q.slots[s%q.size]
		if !e.Dispatched {
			return e
		}
	}
	return nil
}

// MarkDispatched records that e's R copy entered the pipeline.
func (q *Queue) MarkDispatched(e *Entry) {
	e.Dispatched = true
	q.stats.Reexecuted++
}

// MarkIssued records that e's re-execution started at cycle now and
// will finish at done.
func (q *Queue) MarkIssued(e *Entry, now, done uint64) {
	e.Issued = true
	e.IssuedAt = now
	e.DoneAt = done
}

// Resident reports whether qseq is still queued.
func (q *Queue) Resident(qseq uint64) bool {
	return qseq >= q.headSeq && qseq < q.nextSeq
}

// Get returns the resident entry with queue sequence qseq.
func (q *Queue) Get(qseq uint64) *Entry {
	if !q.Resident(qseq) {
		panic(fmt.Sprintf("reese: Get(%d) not resident [%d,%d)", qseq, q.headSeq, q.nextSeq))
	}
	return &q.slots[qseq%q.size]
}

// Scan calls fn for each resident entry in queue order, stopping early
// if fn returns false.
func (q *Queue) Scan(fn func(*Entry) bool) {
	for s := q.headSeq; s < q.nextSeq; s++ {
		if !fn(&q.slots[s%q.size]) {
			return
		}
	}
}

// Head returns the oldest entry, or nil.
func (q *Queue) Head() *Entry {
	if q.Empty() {
		return nil
	}
	return &q.slots[q.headSeq%q.size]
}

// RetireHead removes the verified head entry.
func (q *Queue) RetireHead() Entry {
	if q.Empty() {
		panic("reese: RetireHead on empty queue")
	}
	e := q.slots[q.headSeq%q.size]
	if !e.Verified {
		panic("reese: RetireHead on unverified entry")
	}
	q.headSeq++
	return e
}

// Flush empties the queue (fault recovery clears the RSQ, §4.3).
func (q *Queue) Flush() { q.headSeq = q.nextSeq }

// Stats returns a copy of the counters.
func (q *Queue) Stats() Stats { return q.stats }

// Compare re-executes e's operation from its carried operands and
// compares every latched P-stream outcome with the recomputed one. It
// returns true when they all match. This is the comparator between
// writeback and commit (paper §4.3), and the recomputation uses exactly
// the same semantic functions as the P stream, so a mismatch implies a
// fault.
func (q *Queue) Compare(e *Entry) bool {
	tr := e.Trace
	op := tr.Inst.Op
	// rMask is how a stuck functional unit corrupted the R execution.
	// Without RESO the stuck bit corrupts the recomputation in the same
	// position as it corrupted the P execution; with RESO the
	// recomputation ran on left-shifted operands, so after the final
	// unshift the corruption lands one bit lower (and bit 0 vanishes).
	rMask := e.RFaultMask
	if q.reso {
		rMask >>= 1
	}
	// The R-stream reads its operands from the RSQ's stored copies; a
	// transient in those slots corrupts the recomputation while the
	// architectural values (and recovery replay) stay clean.
	a := tr.A ^ e.OperandAMask
	b := tr.B ^ e.OperandBMask
	// eq is the comparator: bit lanes in CompIgnore are dead (a fault in
	// the checker itself), so corruption there passes unnoticed.
	eq := func(p, r uint32) bool { return (p^r)&^e.CompIgnore == 0 }
	ok := true
	switch {
	case op == isa.OpHalt || op == isa.OpOut:
		// No result to verify.
	case op.IsLoad():
		// The R-stream load re-reads the cache; memory is unchanged
		// between the two executions (stores drain in order), so the
		// true value is the oracle's. Verify both address and value.
		ok = eq(e.AddrP, isa.EffectiveAddress(a, tr.Inst.Imm)) &&
			eq(e.ResultP, tr.Result^rMask)
	case op.IsStore():
		ok = eq(e.AddrP, isa.EffectiveAddress(a, tr.Inst.Imm)) &&
			eq(e.StoreValueP, b^rMask)
	case op.IsBranch():
		taken := isa.BranchTaken(op, a, b)
		next := tr.PC + isa.WordBytes
		if taken {
			next = tr.Inst.BranchTarget(tr.PC)
		}
		ok = eq(e.NextPCP, next)
	case op.IsJump():
		next := tr.Inst.BranchTarget(tr.PC)
		if op.IsIndirect() {
			next = a
		}
		ok = eq(e.NextPCP, next)
		if op == isa.OpJal || op == isa.OpJalr {
			ok = ok && eq(e.ResultP, tr.PC+isa.WordBytes)
		}
	case op.IsFP():
		ok = eq(e.ResultP, isa.EvalFP(op, a, b)^rMask)
	default:
		ok = eq(e.ResultP, isa.EvalALU(op, a, b, tr.Inst.Imm)^rMask)
	}
	e.Done = true
	if ok {
		e.Verified = true
		q.stats.Verified++
	} else {
		e.Mismatch = true
		q.stats.Mismatches++
	}
	return ok
}
