package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"reese/internal/config"
	"reese/internal/harness"
	"reese/internal/server"
)

// hookRecorder implements Hooks, counting every callback.
type hookRecorder struct {
	mu                                       sync.Mutex
	assigned, completed, retried, reassigned int
	corrupted, readmitted, resumed, restored int
}

func (h *hookRecorder) inc(p *int)             { h.mu.Lock(); *p++; h.mu.Unlock() }
func (h *hookRecorder) ShardAssigned()         { h.inc(&h.assigned) }
func (h *hookRecorder) ShardCompleted(float64) { h.inc(&h.completed) }
func (h *hookRecorder) ShardRetried()          { h.inc(&h.retried) }
func (h *hookRecorder) ShardReassigned()       { h.inc(&h.reassigned) }
func (h *hookRecorder) ShardCorrupted()        { h.inc(&h.corrupted) }
func (h *hookRecorder) WorkerReadmitted()      { h.inc(&h.readmitted) }
func (h *hookRecorder) CampaignResumed()       { h.inc(&h.resumed) }
func (h *hookRecorder) ShardRestored()         { h.inc(&h.restored) }

func (h *hookRecorder) snapshot() hookRecorder {
	h.mu.Lock()
	defer h.mu.Unlock()
	return hookRecorder{
		assigned: h.assigned, completed: h.completed, retried: h.retried,
		reassigned: h.reassigned, corrupted: h.corrupted, readmitted: h.readmitted,
		resumed: h.resumed, restored: h.restored,
	}
}

// Retry-After arrives in two RFC 9110 forms; both must parse, and the
// old integer-seconds-only parser's blind spot (HTTP-date) is the case
// that matters, because net/http servers and proxies emit either.
func TestParseRetryAfter(t *testing.T) {
	future := time.Now().Add(90 * time.Second).UTC().Format(http.TimeFormat)
	past := time.Now().Add(-time.Hour).UTC().Format(http.TimeFormat)
	cases := []struct {
		in  string
		ok  bool
		min time.Duration
		max time.Duration
	}{
		{"30", true, 30 * time.Second, 30 * time.Second},
		{" 5 ", true, 5 * time.Second, 5 * time.Second},
		{"0", true, 0, 0},
		{future, true, 80 * time.Second, 91 * time.Second},
		{past, true, 0, 0}, // past dates clamp to zero, not negative
		{"-3", false, 0, 0},
		{"soon", false, 0, 0},
		{"", false, 0, 0},
	}
	for _, c := range cases {
		d, ok := parseRetryAfter(c.in)
		if ok != c.ok {
			t.Errorf("parseRetryAfter(%q) ok=%v, want %v", c.in, ok, c.ok)
			continue
		}
		if ok && (d < c.min || d > c.max) {
			t.Errorf("parseRetryAfter(%q) = %s, want within [%s, %s]", c.in, d, c.min, c.max)
		}
	}
}

// A canceled context must stop the campaign promptly even when every
// worker is answering 503 with a far-future HTTP-date Retry-After —
// the coordinator's backoff sleeps all select on ctx.
func TestClusterCancelPromptlyDuringBackoff(t *testing.T) {
	busy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", time.Now().Add(time.Hour).UTC().Format(http.TimeFormat))
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer busy.Close()

	machine := config.Starting().WithReese()
	cfg := testClusterConfig([]string{busy.URL})
	cfg.MaxAttempts = 1_000_000
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := Run(ctx, cfg, Campaign{Workload: "li", Machine: &machine, Injections: 10, Seed: 1})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("canceled campaign returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled campaign returned %v, want context.Canceled", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("cancellation took %s to land; backoff sleeps are not ctx-aware", elapsed)
	}
}

// corruptingTransport flips one bit inside the first response that
// carries a digest-stamped shard payload, then passes everything else
// through untouched — the deterministic version of in-flight damage.
type corruptingTransport struct {
	mu   sync.Mutex
	done bool
}

func (c *corruptingTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	resp, err := http.DefaultTransport.RoundTrip(req)
	if err != nil {
		return resp, err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if !c.done && bytes.Contains(body, []byte(`"digest"`)) {
		if i := bytes.Index(body, []byte(`"injected"`)); i >= 0 {
			body[i+1] ^= 0x01 // "injected" -> "hnjected": valid JSON, wrong content
			c.done = true
		}
	}
	c.mu.Unlock()
	resp.Body = io.NopCloser(bytes.NewReader(body))
	resp.ContentLength = int64(len(body))
	resp.Header.Del("Content-Length")
	return resp, nil
}

// A payload damaged in flight must be caught by the sha256 check,
// counted, and re-fetched — never merged. The worker's result cache
// answers the retry, so the final report is still byte-identical.
func TestClusterCorruptPayloadRefetched(t *testing.T) {
	machine := config.Starting().WithReese()
	single, err := harness.Campaign(harness.CampaignSpec{
		Workload: "li", Machine: machine, Injections: 20, Seed: 5,
	}, harness.Options{Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := json.Marshal(stripWall(single))

	ct := &corruptingTransport{}
	hooks := &hookRecorder{}
	var corruptedEvents int
	var mu sync.Mutex
	cfg := testClusterConfig(newWorkers(t, 1))
	cfg.Client = &http.Client{Transport: ct, Timeout: 30 * time.Second}
	cfg.Metrics = hooks
	cfg.OnEvent = func(ev Event) {
		if ev.Type == "corrupted" {
			mu.Lock()
			corruptedEvents++
			mu.Unlock()
		}
	}
	rep, err := Run(context.Background(), cfg, Campaign{
		Workload: "li", Machine: &machine, Injections: 20, Seed: 5, ShardSize: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := hooks.snapshot()
	if h.corrupted == 0 {
		t.Fatal("bit-flipped payload was not counted as corrupted — it merged silently or the flip missed")
	}
	mu.Lock()
	if corruptedEvents == 0 {
		t.Error("no corrupted event emitted")
	}
	mu.Unlock()
	gotJSON, _ := json.Marshal(stripWall(rep))
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Errorf("report after in-flight corruption differs from single-process:\n got %s\nwant %s", gotJSON, wantJSON)
	}
}

// partitionTransport fails every request to one host while engaged.
type partitionTransport struct {
	mu      sync.Mutex
	host    string
	blocked bool
}

func (p *partitionTransport) set(blocked bool) {
	p.mu.Lock()
	p.blocked = blocked
	p.mu.Unlock()
}

func (p *partitionTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	p.mu.Lock()
	blocked := p.blocked && req.URL.Host == p.host
	p.mu.Unlock()
	if blocked {
		return nil, fmt.Errorf("chaos: partitioned from %s", p.host)
	}
	return http.DefaultTransport.RoundTrip(req)
}

// A partitioned worker must be quarantined, probed, and readmitted —
// not abandoned forever — and the campaign still merges byte-identical.
func TestClusterWorkerQuarantineAndReadmission(t *testing.T) {
	machine := config.Starting().WithReese()
	const injections = 60
	single, err := harness.Campaign(harness.CampaignSpec{
		Workload: "gcc", Machine: machine, Injections: injections, Seed: 11,
	}, harness.Options{Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := json.Marshal(stripWall(single))

	_, tsA := newWorker(t, server.Config{Workers: 1})
	_, tsB := newWorker(t, server.Config{Workers: 1})

	pt := &partitionTransport{host: strings.TrimPrefix(tsB.URL, "http://"), blocked: true}
	hooks := &hookRecorder{}
	var mu sync.Mutex
	events := map[string]int{}
	cfg := testClusterConfig([]string{tsA.URL, tsB.URL})
	cfg.Client = &http.Client{Transport: pt, Timeout: 30 * time.Second}
	cfg.Metrics = hooks
	cfg.MaxAttempts = 100
	cfg.RetryPause = 5 * time.Millisecond
	cfg.ProbationBase = 5 * time.Millisecond
	cfg.ProbationMax = 20 * time.Millisecond
	cfg.OnEvent = func(ev Event) {
		mu.Lock()
		events[ev.Type]++
		mu.Unlock()
		if ev.Type == "quarantined" {
			pt.set(false) // heal the partition once quarantine is observed
		}
	}
	rep, err := Run(context.Background(), cfg, Campaign{
		Workload: "gcc", Machine: &machine, Injections: injections, Seed: 11, ShardSize: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := hooks.snapshot()
	mu.Lock()
	quarantined, readmitted := events["quarantined"], events["readmitted"]
	mu.Unlock()
	if quarantined == 0 {
		t.Fatal("partitioned worker was never quarantined; the partition did not land")
	}
	if readmitted == 0 || h.readmitted == 0 {
		t.Fatalf("healed worker was never readmitted (events %d, metric %d)", readmitted, h.readmitted)
	}
	gotJSON, _ := json.Marshal(stripWall(rep))
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Error("report after quarantine/readmission differs from single-process")
	}
}

// All workers gone for longer than AllLostTimeout must fail the
// campaign instead of waiting forever.
func TestClusterAllWorkersLostFailsAfterTimeout(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close() // connection refused from the start

	machine := config.Starting().WithReese()
	cfg := testClusterConfig([]string{dead.URL})
	cfg.MaxAttempts = 1_000_000 // force the all-lost path, not attempt exhaustion
	cfg.ProbationBase = 10 * time.Millisecond
	cfg.ProbationMax = 20 * time.Millisecond
	cfg.AllLostTimeout = 300 * time.Millisecond
	start := time.Now()
	_, err := Run(context.Background(), cfg, Campaign{
		Workload: "li", Machine: &machine, Injections: 10, Seed: 1,
	})
	if err == nil {
		t.Fatal("campaign with no reachable workers returned no error")
	}
	if !strings.Contains(err.Error(), "quarantined") {
		t.Fatalf("unexpected failure: %v", err)
	}
	if e := time.Since(start); e > 10*time.Second {
		t.Fatalf("all-lost failsafe took %s", e)
	}
}

// A streaming client that disconnects mid-campaign must cancel the
// campaign and leak no goroutines — for both stream flavors.
func TestClusterHandlerClientDisconnect(t *testing.T) {
	for _, stream := range []string{"", "sse"} {
		t.Run("stream="+map[string]string{"": "jsonl", "sse": "sse"}[stream], func(t *testing.T) {
			cfg := testClusterConfig(newWorkers(t, 1))
			h := Handler(cfg)
			ts := httptest.NewServer(h)
			defer ts.Close()

			before := runtime.NumGoroutine()
			machine := config.Starting().WithReese()
			body, _ := json.Marshal(Campaign{
				Workload: "gcc", Machine: &machine, Injections: 200, Seed: 9, ShardSize: 10,
			})
			url := ts.URL
			if stream != "" {
				url += "?stream=" + stream
			}
			resp, err := http.Post(url, "application/json", bytes.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			// Read one progress frame to prove the campaign is running, then
			// hang up mid-stream.
			buf := make([]byte, 1)
			if _, err := resp.Body.Read(buf); err != nil {
				t.Fatalf("stream produced nothing before disconnect: %v", err)
			}
			resp.Body.Close()

			// The handler's Run uses the request context: the disconnect must
			// cancel the campaign and unwind every goroutine it started.
			deadline := time.Now().Add(15 * time.Second)
			for {
				runtime.GC()
				if g := runtime.NumGoroutine(); g <= before+2 {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("campaign goroutines leaked after client disconnect: %d before, %d after",
						before, runtime.NumGoroutine())
				}
				time.Sleep(50 * time.Millisecond)
			}
		})
	}
}
