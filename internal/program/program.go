// Package program defines the executable image format shared by the
// assembler, the functional emulator, and the pipeline simulator: a text
// segment of SS32 instruction words, an initialised data segment, and an
// entry point. It plays the role of SimpleScalar's program loader.
package program

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"

	"reese/internal/isa"
)

// Default segment layout. Text starts low; data sits above it; the stack
// grows down from StackTop. These are conventions of this toolchain, not
// of the ISA.
const (
	TextBase  uint32 = 0x0000_1000
	DataBase  uint32 = 0x0010_0000
	StackTop  uint32 = 0x007f_fff0
	MemoryTop uint32 = 0x0080_0000 // 8 MiB simulated physical memory
)

// Program is a loadable SS32 executable image.
type Program struct {
	// Name identifies the program in reports (e.g. the workload name).
	Name string
	// Text is the instruction stream, one encoded word per instruction,
	// loaded at TextBase.
	Text []uint32
	// Data is the initialised data segment, loaded at DataBase.
	Data []byte
	// Entry is the address of the first instruction executed.
	Entry uint32
	// Symbols maps label names to addresses (for diagnostics and tests).
	Symbols map[string]uint32

	// decoded caches the pre-decoded text segment. It is rebuilt lazily
	// whenever its length no longer matches Text, so Append during
	// program construction invalidates it naturally. Once a program is
	// being executed its Text must no longer change (see DecodedText).
	decoded atomic.Pointer[DecodedText]
}

// DecodedText is an immutable pre-decoded view of a program's text
// segment: one decoded instruction per text word, built once and shared
// by every emulator and pipeline running the program. Sharing is safe
// because a Program must not be mutated after it first executes — the
// builders (assembler, workload generators) finish the image before
// handing it off.
type DecodedText struct {
	insts []isa.Instruction
	ok    []bool
}

// At returns the decoded instruction at addr, with ok=false when addr is
// outside the text segment, unaligned, or holds an undecodable word.
func (d *DecodedText) At(addr uint32) (isa.Instruction, bool) {
	if addr < TextBase || addr%isa.WordBytes != 0 {
		return isa.Instruction{}, false
	}
	i := (addr - TextBase) / isa.WordBytes
	if i >= uint32(len(d.insts)) || !d.ok[i] {
		return isa.Instruction{}, false
	}
	return d.insts[i], true
}

// Len returns the number of text words covered.
func (d *DecodedText) Len() int { return len(d.insts) }

// Decoded returns the pre-decoded text segment, building it on first use
// (or after the text grew). Concurrent callers may race to build it, but
// every build produces identical contents, so the last store wins
// harmlessly; after the program is built once, this is a single atomic
// load per call.
func (p *Program) Decoded() *DecodedText {
	if d := p.decoded.Load(); d != nil && len(d.insts) == len(p.Text) {
		return d
	}
	d := &DecodedText{
		insts: make([]isa.Instruction, len(p.Text)),
		ok:    make([]bool, len(p.Text)),
	}
	for i, w := range p.Text {
		in, err := isa.Decode(w)
		if err == nil {
			d.insts[i] = in
			d.ok[i] = true
		}
	}
	p.decoded.Store(d)
	return d
}

// New returns an empty program with the default entry point.
func New(name string) *Program {
	return &Program{Name: name, Entry: TextBase, Symbols: make(map[string]uint32)}
}

// TextEnd returns the address one past the last instruction.
func (p *Program) TextEnd() uint32 {
	return TextBase + uint32(len(p.Text))*isa.WordBytes
}

// InText reports whether addr is a valid, word-aligned instruction
// address of this program.
func (p *Program) InText(addr uint32) bool {
	return addr >= TextBase && addr < p.TextEnd() && addr%isa.WordBytes == 0
}

// FetchWord returns the instruction word at addr.
func (p *Program) FetchWord(addr uint32) (uint32, error) {
	if !p.InText(addr) {
		return 0, fmt.Errorf("program %s: instruction fetch outside text: %#08x", p.Name, addr)
	}
	return p.Text[(addr-TextBase)/isa.WordBytes], nil
}

// Fetch decodes the instruction at addr, consulting the pre-decoded
// cache so repeated fetches (every simulated cycle) pay no decode cost.
func (p *Program) Fetch(addr uint32) (isa.Instruction, error) {
	if !p.InText(addr) {
		return isa.Instruction{}, fmt.Errorf("program %s: instruction fetch outside text: %#08x", p.Name, addr)
	}
	d := p.Decoded()
	i := (addr - TextBase) / isa.WordBytes
	if !d.ok[i] {
		// Undecodable word: take the slow path to produce the error.
		return isa.Decode(p.Text[i])
	}
	return d.insts[i], nil
}

// Append encodes and appends an instruction to the text segment,
// returning its address.
func (p *Program) Append(in isa.Instruction) (uint32, error) {
	w, err := isa.Encode(in)
	if err != nil {
		return 0, err
	}
	addr := p.TextEnd()
	p.Text = append(p.Text, w)
	return addr, nil
}

// Disassemble returns the text segment as "addr: instruction" lines.
func (p *Program) Disassemble() []string {
	lines := make([]string, 0, len(p.Text))
	for i, w := range p.Text {
		addr := TextBase + uint32(i)*isa.WordBytes
		in, err := isa.Decode(w)
		if err != nil {
			lines = append(lines, fmt.Sprintf("%#08x: .word %#08x", addr, w))
			continue
		}
		lines = append(lines, fmt.Sprintf("%#08x: %s", addr, in))
	}
	return lines
}

// Memory is a flat byte-addressed little-endian memory image with the
// program loaded. It is the architectural memory used by the functional
// emulator and as the backing store behind the simulated caches.
type Memory struct {
	bytes []byte
	// dirty, when non-nil, flags each dirtyPage-sized page written since
	// the last ClearDirty — the bookkeeping behind copy-on-write machine
	// snapshots (EnableDirtyTracking; see internal/mem's PageImage). The
	// nil check is the only cost paid by untracked memories.
	dirty []bool
}

// dirtyPageShift is log2 of the dirty-tracking page size. It must match
// mem.PageShift — internal/mem consumes the dirty flags but cannot be
// imported here without inverting the dependency between the packages.
const dirtyPageShift = 12

// LoadMemory builds a fresh memory image with p's text and data segments
// in place.
func LoadMemory(p *Program) (*Memory, error) {
	if p.TextEnd() > DataBase {
		return nil, fmt.Errorf("program %s: text segment (%d words) overflows into data base", p.Name, len(p.Text))
	}
	if uint32(len(p.Data)) > StackTop-DataBase {
		return nil, fmt.Errorf("program %s: data segment (%d bytes) overflows into stack", p.Name, len(p.Data))
	}
	m := &Memory{bytes: make([]byte, MemoryTop)}
	for i, w := range p.Text {
		binary.LittleEndian.PutUint32(m.bytes[TextBase+uint32(i)*isa.WordBytes:], w)
	}
	copy(m.bytes[DataBase:], p.Data)
	return m, nil
}

// Size returns the memory size in bytes.
func (m *Memory) Size() uint32 { return uint32(len(m.bytes)) }

func (m *Memory) check(addr, width uint32) error {
	if addr >= m.Size() || addr+width > m.Size() || addr+width < addr {
		return fmt.Errorf("memory access out of range: addr %#08x width %d", addr, width)
	}
	return nil
}

// ReadWord reads the naturally-aligned 32-bit word containing addr.
// Unaligned word accesses are not architecturally supported; callers
// must align.
func (m *Memory) ReadWord(addr uint32) (uint32, error) {
	if addr%4 != 0 {
		return 0, fmt.Errorf("unaligned word read at %#08x", addr)
	}
	if err := m.check(addr, 4); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(m.bytes[addr:]), nil
}

// WriteWord writes a 32-bit word at an aligned address.
func (m *Memory) WriteWord(addr, v uint32) error {
	if addr%4 != 0 {
		return fmt.Errorf("unaligned word write at %#08x", addr)
	}
	if err := m.check(addr, 4); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(m.bytes[addr:], v)
	if m.dirty != nil {
		m.dirty[addr>>dirtyPageShift] = true
	}
	return nil
}

// Read reads width bytes (1, 2, or 4) at addr, little-endian, requiring
// natural alignment. The value is returned in the low bits.
func (m *Memory) Read(addr, width uint32) (uint32, error) {
	if width != 1 && width != 2 && width != 4 {
		return 0, fmt.Errorf("bad access width %d", width)
	}
	if addr%width != 0 {
		return 0, fmt.Errorf("unaligned %d-byte read at %#08x", width, addr)
	}
	if err := m.check(addr, width); err != nil {
		return 0, err
	}
	switch width {
	case 1:
		return uint32(m.bytes[addr]), nil
	case 2:
		return uint32(binary.LittleEndian.Uint16(m.bytes[addr:])), nil
	default:
		return binary.LittleEndian.Uint32(m.bytes[addr:]), nil
	}
}

// Write writes the low width bytes of v at addr, little-endian, requiring
// natural alignment.
func (m *Memory) Write(addr, width, v uint32) error {
	if width != 1 && width != 2 && width != 4 {
		return fmt.Errorf("bad access width %d", width)
	}
	if addr%width != 0 {
		return fmt.Errorf("unaligned %d-byte write at %#08x", width, addr)
	}
	if err := m.check(addr, width); err != nil {
		return err
	}
	switch width {
	case 1:
		m.bytes[addr] = byte(v)
	case 2:
		binary.LittleEndian.PutUint16(m.bytes[addr:], uint16(v))
	default:
		binary.LittleEndian.PutUint32(m.bytes[addr:], v)
	}
	if m.dirty != nil {
		// Accesses are naturally aligned, so a write never crosses a page.
		m.dirty[addr>>dirtyPageShift] = true
	}
	return nil
}

// EnableDirtyTracking starts page-granular write tracking: from now on
// every mutation flags its page in DirtyPages. Idempotent.
func (m *Memory) EnableDirtyTracking() {
	if m.dirty == nil {
		n := (len(m.bytes) + (1 << dirtyPageShift) - 1) >> dirtyPageShift
		m.dirty = make([]bool, n)
	}
}

// DirtyPages returns the live dirty-page flags (nil when tracking is
// off). Callers must not grow it; clearing entries is ClearDirty's job.
func (m *Memory) DirtyPages() []bool { return m.dirty }

// ClearDirty resets every dirty flag (typically right after a snapshot
// captured the flagged pages).
func (m *Memory) ClearDirty() {
	for i := range m.dirty {
		m.dirty[i] = false
	}
}

// Bytes exposes the live backing image for snapshotting. Callers must
// treat it as read-only; all mutation goes through Write/WriteWord so
// dirty tracking stays truthful.
func (m *Memory) Bytes() []byte { return m.bytes }

// Overwrite replaces the page starting at byte offset off with src
// in place, bypassing dirty tracking — forking restores a snapshot
// image and then clears the flags, so the restore itself must not
// pollute them. The memory's size never changes.
func (m *Memory) Overwrite(off int, src []byte) {
	copy(m.bytes[off:], src)
}

// Clone returns an independent copy of the memory image. Used to give the
// pipeline and the oracle emulator separate architectural states.
func (m *Memory) Clone() *Memory {
	b := make([]byte, len(m.bytes))
	copy(b, m.bytes)
	return &Memory{bytes: b}
}

// Equal reports whether two memory images have identical contents.
func (m *Memory) Equal(o *Memory) bool {
	if len(m.bytes) != len(o.bytes) {
		return false
	}
	for i := range m.bytes {
		if m.bytes[i] != o.bytes[i] {
			return false
		}
	}
	return true
}
