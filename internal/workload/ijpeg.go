package workload

import (
	"fmt"

	"reese/internal/asm"
	"reese/internal/program"
)

// buildIjpeg models ijpeg: an integer 1-D DCT-like transform applied to
// 8-sample rows of image blocks, followed by quantisation. The kernel is
// a multiply-accumulate over coefficient tables with streaming loads,
// highly predictable loop branches, and a divide per output — the
// multiply-heavy, regular profile of image compression.
func buildIjpeg(iters int) (*program.Program, error) {
	const rows = 48 // 8-sample rows per image pass
	g := newPRNG(0x1BE6)
	src := fmt.Sprintf(`
	; ijpeg stand-in: 8-point integer transform + quantisation.
main:
	li r20, %d            ; outer iterations (image passes)
	la r21, pixels
	la r22, coeffs
	la r24, quant
	la r25, output
	li r23, 0             ; checksum
outer:
	li r10, 0             ; row index
row_loop:
	; r11 = &pixels[row*8] (bytes: *8)
	slli r1, r10, 3
	add r11, r1, r21
	li r12, 0             ; output coefficient index k
k_loop:
	; acc = sum_i pixels[row*8+i] * coeffs[k*8+i], two taps per pass
	; with independent partial sums (r2 even taps, r13 odd taps)
	li r2, 0
	li r13, 0
	li r3, 0              ; i
	slli r4, r12, 5       ; k*8 words = k*32 bytes
	add r4, r4, r22
mac_loop:
	add r5, r11, r3
	lbu r6, 0(r5)
	lbu r14, 1(r5)
	slli r7, r3, 2
	add r7, r7, r4
	lw r8, 0(r7)
	lw r16, 4(r7)
	mul r9, r6, r8
	mul r17, r14, r16
	add r2, r2, r9
	add r13, r13, r17
	addi r3, r3, 2
	slti r5, r3, 8
	bne r5, r0, mac_loop
	add r2, r2, r13
	; descale and quantise: q = (acc >> 6) / quant[k]
	srai r2, r2, 6
	slli r5, r12, 2
	add r5, r5, r24
	lw r6, 0(r5)
	div r7, r2, r6
	; store output[row*8+k]
	slli r5, r10, 5
	add r5, r5, r25
	slli r6, r12, 2
	add r5, r5, r6
	sw r7, 0(r5)
	add r23, r23, r7
	addi r12, r12, 1
	slti r5, r12, 8
	bne r5, r0, k_loop
	addi r10, r10, 1
	slti r5, r10, %d
	bne r5, r0, row_loop
	addi r20, r20, -1
	bne r20, r0, outer
%s
.data
pixels:
%s
.align 4
coeffs:
%s
quant:
%s
output:
	.space %d
`, iters, rows, emitChecksum("r23"),
		byteList(g, rows*8, 0, 255),
		wordListRange(g, 64, 0, 30), // coefficient magnitudes
		wordListRange(g, 8, 1, 24),  // quantisation divisors (non-zero)
		rows*8*4)
	return asm.Assemble("ijpeg", src)
}
