// Schemes: compare the three redundancy organisations head to head —
// no redundancy, Franklin's duplicate-at-the-scheduler (the comparison
// scheme the paper cites), and REESE's R-stream Queue — and demonstrate
// why the paper's design wins: R-stream copies carry their operands, so
// they are free of the dependencies that make naive duplication
// expensive (§4.4).
package main

import (
	"fmt"
	"log"

	"reese"
)

func run(cfg reese.Config, name string) reese.Result {
	prog, err := reese.Workload(name, 0)
	if err != nil {
		log.Fatal(err)
	}
	res, err := reese.Run(cfg, prog, nil, 150_000)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	schemes := []struct {
		label string
		cfg   reese.Config
	}{
		{"baseline (no redundancy)", reese.StartingConfig()},
		{"duplicate-at-scheduler", reese.StartingConfig().WithDupDispatch()},
		{"REESE (R-stream Queue)", reese.StartingConfig().WithReese()},
	}

	fmt.Println("== performance: every instruction executed twice, three ways ==")
	for _, s := range schemes {
		var sum float64
		for _, w := range reese.WorkloadNames() {
			sum += run(s.cfg, w).IPC
		}
		fmt.Printf("  %-28s average IPC %.3f\n", s.label, sum/float64(len(reese.WorkloadNames())))
	}

	fmt.Println("\n== the common-mode blind spot ==")
	fmt.Println("A transient fault hits one copy; both schemes catch it:")
	for _, s := range schemes[1:] {
		prog, err := reese.Workload("gcc", 0)
		if err != nil {
			log.Fatal(err)
		}
		res, err := reese.Run(s.cfg, prog, reese.FaultAt(5_000, 11), 50_000)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-28s detected %d/%d\n", s.label, res.FaultsDetected, res.FaultsInjected)
	}
	fmt.Println("But a fault corrupting BOTH executions identically (a permanent")
	fmt.Println("fault in a shared structure) only fools the pair comparator:")
	fmt.Println("duplicate copies match each other and retire silently, while")
	fmt.Println("REESE recomputes from the carried operands and still detects it")
	fmt.Println("(see TestDupDispatchCommonModeBlindSpot).")
}
