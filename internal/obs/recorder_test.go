package obs

import (
	"bytes"
	"encoding/json"
	"testing"

	"reese/internal/isa"
)

func TestRecorderWraparound(t *testing.T) {
	r := NewRecorder(4)
	if r.Cap() != 4 || r.Len() != 0 {
		t.Fatalf("fresh recorder cap=%d len=%d", r.Cap(), r.Len())
	}
	for i := 0; i < 10; i++ {
		r.Record(Event{Cycle: uint64(i), Seq: uint64(i), Kind: EvCommit})
	}
	if r.Len() != 4 {
		t.Fatalf("len = %d, want 4", r.Len())
	}
	if r.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", r.Dropped())
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("Events() returned %d", len(evs))
	}
	// The ring keeps the newest 4, oldest first.
	for i, e := range evs {
		if want := uint64(6 + i); e.Cycle != want {
			t.Errorf("event %d cycle = %d, want %d", i, e.Cycle, want)
		}
	}
}

func TestRecorderPartialFill(t *testing.T) {
	r := NewRecorder(8)
	for i := 0; i < 3; i++ {
		r.Record(Event{Cycle: uint64(i)})
	}
	evs := r.Events()
	if len(evs) != 3 || evs[0].Cycle != 0 || evs[2].Cycle != 2 {
		t.Fatalf("partial fill events: %+v", evs)
	}
	if r.Dropped() != 0 {
		t.Fatalf("dropped = %d", r.Dropped())
	}
}

// TestChromeTracePairing feeds a hand-built lifecycle and checks the
// exported slices: fetch→dispatch becomes a fetch-queue slice,
// dispatch→issue a window slice, issue→writeback a slice on the right
// functional-unit lane.
func TestChromeTracePairing(t *testing.T) {
	r := NewRecorder(64)
	in := isa.Instruction{Op: isa.OpAdd, Rd: 3, Rs1: 1, Rs2: 2}
	r.Record(Event{Cycle: 1, Seq: 7, PC: 0x40, Inst: in, Kind: EvFetch})
	r.Record(Event{Cycle: 2, Seq: 7, PC: 0x40, Inst: in, Kind: EvDispatch})
	r.Record(Event{Cycle: 4, Seq: 7, PC: 0x40, Inst: in, Kind: EvIssue, FU: 1, Unit: 0})
	r.Record(Event{Cycle: 5, Seq: 7, PC: 0x40, Inst: in, Kind: EvWriteback, FU: 1, Unit: 0})
	r.Record(Event{Cycle: 6, Seq: 7, PC: 0x40, Inst: in, Kind: EvCommit})

	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("export is not valid JSON")
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   uint64  `json:"ts"`
			Dur  *uint64 `json:"dur"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	type slice struct {
		ts, dur uint64
		tid     int
	}
	var slices []slice
	instants := 0
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "X":
			if e.Dur == nil {
				t.Fatalf("complete event without dur: %+v", e)
			}
			slices = append(slices, slice{e.Ts, *e.Dur, e.Tid})
		case "i":
			instants++
		}
	}
	want := []slice{
		{1, 1, laneFetchQ},   // fetch 1 → dispatch 2
		{2, 2, laneWindow},   // dispatch 2 → issue 4
		{4, 1, fuLane(1, 0)}, // issue 4 → writeback 5 on int-alu 0
	}
	if len(slices) != len(want) {
		t.Fatalf("got %d slices, want %d: %+v", len(slices), len(want), slices)
	}
	for i, w := range want {
		if slices[i] != w {
			t.Errorf("slice %d = %+v, want %+v", i, slices[i], w)
		}
	}
	if instants != 1 { // the commit
		t.Errorf("instants = %d, want 1", instants)
	}
}
