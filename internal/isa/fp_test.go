package isa

import (
	"math"
	"testing"
	"testing/quick"
)

func f32(f float32) uint32   { return math.Float32bits(f) }
func asF32(b uint32) float32 { return math.Float32frombits(b) }

func TestEvalFPArithmetic(t *testing.T) {
	tests := []struct {
		op   Op
		a, b float32
		want float32
	}{
		{OpFadd, 1.5, 2.25, 3.75},
		{OpFsub, 1.5, 2.25, -0.75},
		{OpFmul, 3, 0.5, 1.5},
		{OpFdiv, 7, 2, 3.5},
		{OpFneg, 2.5, 0, -2.5},
		{OpFabs, -2.5, 0, 2.5},
		{OpFmov, 9.75, 0, 9.75},
	}
	for _, tt := range tests {
		got := asF32(EvalFP(tt.op, f32(tt.a), f32(tt.b)))
		if got != tt.want {
			t.Errorf("%s(%v, %v) = %v, want %v", tt.op, tt.a, tt.b, got, tt.want)
		}
	}
}

func TestEvalFPSpecialValues(t *testing.T) {
	inf := float32(math.Inf(1))
	if asF32(EvalFP(OpFdiv, f32(1), f32(0))) != inf {
		t.Error("1/0 should be +Inf")
	}
	nan := EvalFP(OpFdiv, f32(0), f32(0))
	if !math.IsNaN(float64(asF32(nan))) {
		t.Error("0/0 should be NaN")
	}
	// Negating NaN flips the sign bit without trapping.
	if EvalFP(OpFneg, nan, 0) != nan^0x80000000 {
		t.Error("fneg is a sign-bit flip")
	}
}

func TestEvalFPCompares(t *testing.T) {
	tests := []struct {
		op   Op
		a, b float32
		want uint32
	}{
		{OpFeq, 1, 1, 1},
		{OpFeq, 1, 2, 0},
		{OpFlt, 1, 2, 1},
		{OpFlt, 2, 1, 0},
		{OpFle, 2, 2, 1},
		{OpFle, 3, 2, 0},
	}
	for _, tt := range tests {
		if got := EvalFP(tt.op, f32(tt.a), f32(tt.b)); got != tt.want {
			t.Errorf("%s(%v,%v) = %d, want %d", tt.op, tt.a, tt.b, got, tt.want)
		}
	}
	// NaN compares false with everything.
	nan := f32(float32(math.NaN()))
	for _, op := range []Op{OpFeq, OpFlt, OpFle} {
		if EvalFP(op, nan, f32(1)) != 0 {
			t.Errorf("%s(NaN, 1) should be 0", op)
		}
	}
}

func TestEvalFPConversions(t *testing.T) {
	neg7 := ^uint32(0) - 6 // int32(-7) as bits
	if asF32(EvalFP(OpFcvtSW, neg7, 0)) != -7 {
		t.Error("int->float")
	}
	if got := int32(EvalFP(OpFcvtWS, f32(-7.9), 0)); got != -7 {
		t.Errorf("float->int truncation: %d", got)
	}
	if EvalFP(OpFcvtWS, f32(float32(math.NaN())), 0) != 0x7fffffff {
		t.Error("NaN->int saturates")
	}
	if EvalFP(OpFcvtWS, f32(1e20), 0) != 0x7fffffff {
		t.Error("overflow->int saturates positive")
	}
	if EvalFP(OpFcvtWS, f32(-1e20), 0) != 0x80000000 {
		t.Error("overflow->int saturates negative")
	}
}

func TestFPMetadata(t *testing.T) {
	if !OpFadd.IsFP() || OpAdd.IsFP() {
		t.Error("IsFP classification")
	}
	if OpFmul.Class() != ClassFPMult || OpFadd.Class() != ClassFPALU {
		t.Error("FP classes")
	}
	if OpFdiv.OpLatency() <= OpFmul.OpLatency() {
		t.Error("fdiv should be slower than fmul")
	}
	// Operand file routing.
	if OpFadd.DestFile() != FileFP {
		t.Error("fadd dest file")
	}
	r1, r2 := OpFeq.SourceFiles()
	if r1 != FileFP || r2 != FileFP || OpFeq.DestFile() != FileInt {
		t.Error("feq files: FP sources, int dest")
	}
	if OpFcvtSW.DestFile() != FileFP {
		t.Error("fcvtsw writes FP")
	}
	r1, _ = OpFcvtSW.SourceFiles()
	if r1 != FileInt {
		t.Error("fcvtsw reads int")
	}
	if OpLwf.DestFile() != FileFP || !OpLwf.IsLoad() {
		t.Error("lwf is an FP load")
	}
	_, r2 = OpSwf.SourceFiles()
	if r2 != FileFP || !OpSwf.IsStore() {
		t.Error("swf stores an FP value")
	}
}

func TestFPRegNames(t *testing.T) {
	if FPRegName(0) != "f0" || FPRegName(31) != "f31" || FPRegName(7) != "f7" {
		t.Error("FP register names")
	}
}

func TestFPDisassembly(t *testing.T) {
	tests := []struct {
		in   Instruction
		want string
	}{
		{Instruction{Op: OpFadd, Rd: 1, Rs1: 2, Rs2: 3}, "fadd f1, f2, f3"},
		{Instruction{Op: OpFneg, Rd: 1, Rs1: 2}, "fneg f1, f2"},
		{Instruction{Op: OpFeq, Rd: 4, Rs1: 2, Rs2: 3}, "feq r4, f2, f3"},
		{Instruction{Op: OpLwf, Rd: 1, Rs1: 2, Imm: 8}, "lwf f1, 8(r2)"},
		{Instruction{Op: OpSwf, Rs2: 1, Rs1: 2, Imm: -4}, "swf f1, -4(r2)"},
		{Instruction{Op: OpMtf, Rd: 1, Rs1: 5}, "mtf f1, r5"},
		{Instruction{Op: OpMff, Rd: 5, Rs1: 1}, "mff r5, f1"},
	}
	for _, tt := range tests {
		if got := tt.in.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

// Property: EvalFP is deterministic, and fadd/fsub invert (for finite
// values without rounding surprises, checked via exact halves).
func TestEvalFPDeterministic(t *testing.T) {
	f := func(a, b uint32) bool {
		return EvalFP(OpFadd, a, b) == EvalFP(OpFadd, a, b) &&
			EvalFP(OpFmul, a, b) == EvalFP(OpFmul, a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// Property: fneg is an involution; fabs is idempotent.
func TestFPAlgebra(t *testing.T) {
	f := func(a uint32) bool {
		if EvalFP(OpFneg, EvalFP(OpFneg, a, 0), 0) != a {
			return false
		}
		abs := EvalFP(OpFabs, a, 0)
		return EvalFP(OpFabs, abs, 0) == abs
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
