package workload

import (
	"fmt"
	"math"
	"strings"

	"reese/internal/asm"
	"reese/internal/program"
)

// buildFpmix is the floating-point demonstration workload: a SAXPY pass
// (y[i] += a*x[i]) followed by Horner polynomial evaluation over the
// result, with an integer-converted checksum. It is not one of the
// paper's Table 2 benchmarks (the paper studies integer codes only) but
// exercises the FP datapaths Table 1 provisions — FP adders, the FP
// multiplier/divider, and FP loads/stores.
func buildFpmix(iters int) (*program.Program, error) {
	const n = 64
	g := newPRNG(0xF10A7)
	var x strings.Builder
	for i := 0; i < n; i++ {
		if i%8 == 0 {
			if i > 0 {
				x.WriteByte('\n')
			}
			x.WriteString("\t.word ")
		} else {
			x.WriteString(", ")
		}
		// Floats in [0.5, 2.5), encoded as IEEE-754 bits.
		v := 0.5 + float64(g.next()%2048)/1024.0
		fmt.Fprintf(&x, "%d", math.Float32bits(float32(v)))
	}
	x.WriteByte('\n')
	src := fmt.Sprintf(`
	; fpmix: SAXPY + Horner evaluation on the FP datapath.
main:
	li r20, %d            ; outer iterations
	la r21, xs
	la r22, ys
	li r23, 0             ; integer checksum
	; a = 1.5 (constant scale factor)
	li r1, 3
	mtf f10, r1
	li r1, 2
	mtf f11, r1
	fcvtsw f10, r1        ; f10 = 2.0
	li r1, 3
	fcvtsw f11, r1        ; f11 = 3.0
	fdiv f12, f11, f10    ; f12 = 1.5
outer:
	; --- SAXPY: y[i] = y[i] + a*x[i] ---
	li r10, 0
saxpy:
	slli r1, r10, 2
	add r2, r1, r21
	add r3, r1, r22
	lwf f1, 0(r2)
	lwf f2, 0(r3)
	fmul f3, f1, f12
	fadd f2, f2, f3
	swf f2, 0(r3)
	addi r10, r10, 1
	slti r1, r10, %d
	bne r1, r0, saxpy
	; --- Horner: p = ((y0*t + y1)*t + y2)... over the first 8 ys ---
	li r1, 1
	fcvtsw f4, r1         ; t = 1.0 keeps the sum bounded
	lwf f5, 0(r22)        ; p = y[0]
	li r10, 1
horner:
	slli r1, r10, 2
	add r2, r1, r22
	lwf f6, 0(r2)
	fmul f5, f5, f4
	fadd f5, f5, f6
	addi r10, r10, 1
	slti r1, r10, 8
	bne r1, r0, horner
	; fold int(p) into the checksum and rescale ys to stop growth
	fcvtws r4, f5
	add r23, r23, r4
	li r10, 0
rescale:
	slli r1, r10, 2
	add r3, r1, r22
	lwf f2, 0(r3)
	fdiv f2, f2, f10      ; y /= 2
	swf f2, 0(r3)
	addi r10, r10, 1
	slti r1, r10, %d
	bne r1, r0, rescale
	addi r20, r20, -1
	bne r20, r0, outer
%s
.data
xs:
%s
ys:
%s`, iters, n, n, emitChecksum("r23"), x.String(), x.String())
	return asm.Assemble("fpmix", src)
}
