package obs

// Span trees for reese-serve jobs: a lightweight, process-local
// tracing model (no wire protocol, no sampling) that records where a
// job's wall-clock time went — queue wait, each attempt, backoff
// between retries, journal appends, cache lookups. The tree is
// embedded in the job record and served verbatim from
// GET /v1/jobs/{id}, so an operator can read a job's whole history
// from one response.
//
// Concurrency: a Span is NOT internally synchronized. The serving
// layer mutates a job's tree only under the job's lock and hands
// snapshots (Clone) to readers.

import "time"

// Span is one timed region. End is nil while the region is open.
type Span struct {
	Name     string     `json:"name"`
	Start    time.Time  `json:"start"`
	End      *time.Time `json:"end,omitempty"`
	Outcome  string     `json:"outcome,omitempty"`
	Children []*Span    `json:"children,omitempty"`
}

// NewSpan opens a root span.
func NewSpan(name string, at time.Time) *Span {
	return &Span{Name: name, Start: at}
}

// StartChild opens and attaches a child span.
func (s *Span) StartChild(name string, at time.Time) *Span {
	c := &Span{Name: name, Start: at}
	s.Children = append(s.Children, c)
	return c
}

// AddChild attaches an already-finished child region, for work that is
// measured inline (a journal fsync, a cache probe).
func (s *Span) AddChild(name string, start, end time.Time, outcome string) *Span {
	e := end
	c := &Span{Name: name, Start: start, End: &e, Outcome: outcome}
	s.Children = append(s.Children, c)
	return c
}

// Finish closes the span with an outcome ("" for uneventful success).
// Finishing twice keeps the first end time but lets a later, more
// specific outcome overwrite an empty one.
func (s *Span) Finish(at time.Time, outcome string) {
	if s.End == nil {
		e := at
		s.End = &e
	}
	if s.Outcome == "" {
		s.Outcome = outcome
	}
}

// Duration returns the span's length, using now for open spans.
func (s *Span) Duration(now time.Time) time.Duration {
	if s.End != nil {
		return s.End.Sub(s.Start)
	}
	return now.Sub(s.Start)
}

// Clone deep-copies the tree, so a snapshot can leave the job lock.
func (s *Span) Clone() *Span {
	if s == nil {
		return nil
	}
	c := *s
	if s.End != nil {
		e := *s.End
		c.End = &e
	}
	if len(s.Children) > 0 {
		c.Children = make([]*Span, len(s.Children))
		for i, ch := range s.Children {
			c.Children[i] = ch.Clone()
		}
	}
	return &c
}

// Find returns the first child (depth-first, including s itself) with
// the given name, or nil. Test helper more than API.
func (s *Span) Find(name string) *Span {
	if s == nil {
		return nil
	}
	if s.Name == name {
		return s
	}
	for _, ch := range s.Children {
		if f := ch.Find(name); f != nil {
			return f
		}
	}
	return nil
}
