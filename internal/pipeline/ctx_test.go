package pipeline

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"reese/internal/config"
	"reese/internal/fault"
)

// TestRunContextCancel: a cancelled context stops the cycle loop
// mid-run instead of simulating to completion.
func TestRunContextCancel(t *testing.T) {
	// Long enough that the run cannot finish before the poll interval:
	// ~10M dynamic instructions.
	cpu, err := New(config.Starting(), mustProg(t, loopProgram(1_500_000)), fault.None{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := cpu.RunContext(ctx, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext with cancelled ctx: %v, want context.Canceled", err)
	}
	if cpu.Committed() >= 10_000_000 {
		t.Errorf("simulation ran to completion (%d committed) despite cancellation", cpu.Committed())
	}
}

// TestRunContextDeadline: a deadline interrupts a long run promptly.
func TestRunContextDeadline(t *testing.T) {
	cpu, err := New(config.Starting(), mustProg(t, loopProgram(1_500_000)), fault.None{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = cpu.RunContext(ctx, 0)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("RunContext: %v, want context.DeadlineExceeded", err)
	}
	// The check runs every 16k cycles; anything near a second means it
	// never fired.
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("cancellation took %v", elapsed)
	}
}

// TestRunContextBackgroundMatchesRun: threading a context through must
// not perturb results — Run and RunContext(Background) are identical.
func TestRunContextBackgroundMatchesRun(t *testing.T) {
	src := loopProgram(2_000)
	a, err := New(config.Starting().WithReese(), mustProg(t, src), fault.None{})
	if err != nil {
		t.Fatal(err)
	}
	resA, err := a.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(config.Starting().WithReese(), mustProg(t, src), fault.None{})
	if err != nil {
		t.Fatal(err)
	}
	resB, err := b.RunContext(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resA, resB) {
		t.Errorf("Run and RunContext diverge:\n%+v\n%+v", resA, resB)
	}
}
