package ruu

// Snapshot/fork support: deep copies of the in-flight queues. Resident
// entries are value types (emu.Trace and scalars), so copying the slot
// slices captures everything; the circular addressing by sequence number
// is position-independent state that the struct copy carries along.

// CloneInto deep-copies the RUU into dst (allocating when dst is nil),
// reusing dst's slot slice when its capacity allows.
func (r *RUU) CloneInto(dst *RUU) *RUU {
	if dst == nil {
		dst = &RUU{}
	}
	slots := dst.slots
	*dst = *r
	dst.slots = append(slots[:0], r.slots...)
	return dst
}

// CloneInto deep-copies the LSQ into dst (allocating when dst is nil).
func (q *LSQ) CloneInto(dst *LSQ) *LSQ {
	if dst == nil {
		dst = &LSQ{}
	}
	slots := dst.slots
	*dst = *q
	dst.slots = append(slots[:0], q.slots...)
	return dst
}
