// Package reese is a cycle-level reproduction of "REESE: A Method of
// Soft Error Detection in Microprocessors" (Nickel & Somani, DSN 2001).
//
// It bundles a SimpleScalar-style out-of-order superscalar timing
// simulator for the SS32 ISA (fetch with gshare branch prediction,
// register update unit, load/store queue, configurable functional
// units and cache hierarchy) with the paper's contribution: REESE,
// time-redundant execution through an R-stream Queue with a result
// comparator before commit, plus "spare elements" — extra functional
// units that absorb the redundant stream's demand.
//
// This package is the public facade. Typical use:
//
//	cfg := reese.StartingConfig().WithReese().WithSpares(2, 0)
//	prog, _ := reese.Workload("gcc", 0)
//	res, _ := reese.Run(cfg, prog, nil, 200_000)
//	fmt.Printf("IPC %.3f, %d faults detected\n", res.IPC, res.FaultsDetected)
//
// The subsystems live in internal packages; everything a user needs is
// re-exported here. The experiment harness that regenerates the paper's
// tables and figures is exposed through the Figure*, Campaign and
// ablation functions.
package reese

import (
	"fmt"

	"reese/internal/asm"
	"reese/internal/config"
	"reese/internal/emu"
	"reese/internal/fault"
	"reese/internal/fu"
	"reese/internal/harness"
	"reese/internal/pipeline"
	"reese/internal/program"
	"reese/internal/workload"
)

// Config is a complete machine configuration. Build one from
// StartingConfig and the With* methods.
type Config = config.Machine

// Result is the outcome of a timing simulation.
type Result = pipeline.Result

// Program is a loadable SS32 executable image.
type Program = program.Program

// Injector decides which instructions suffer injected soft errors.
// Implementations in this package: NoFaults, FaultAt, PeriodicFaults,
// RandomFaults.
type Injector = fault.Injector

// CPU is a single-use simulated processor instance, for callers that
// want to step or inspect a simulation; most users call Run.
type CPU = pipeline.CPU

// StartingConfig returns the paper's Table 1 starting configuration
// with REESE disabled (the baseline machine).
func StartingConfig() Config { return config.Starting() }

// Workload builds one of the paper's six Table 2 benchmarks (gcc, go,
// ijpeg, li, perl, vortex). iters scales the outer loop; 0 picks a
// default sized for a few hundred thousand instructions.
func Workload(name string, iters int) (*Program, error) {
	spec, ok := workload.ByName(name)
	if !ok {
		return nil, fmt.Errorf("reese: unknown workload %q (have %v)", name, workload.Names())
	}
	return spec.Build(iters)
}

// WorkloadNames returns the six benchmark names in the paper's order.
// Beyond these, Workload also accepts the extras: "compress" and
// "m88ksim" (the two SPEC95int programs the paper omits) and "fpmix"
// (a floating-point kernel for the FP datapaths).
func WorkloadNames() []string { return workload.Names() }

// Assemble translates SS32 assembly into a runnable program. See
// internal/asm for the syntax; examples/customworkload shows typical
// source.
func Assemble(name, source string) (*Program, error) {
	return asm.Assemble(name, source)
}

// New builds a simulated CPU. injector may be nil for fault-free runs.
func New(cfg Config, prog *Program, injector Injector) (*CPU, error) {
	return pipeline.New(cfg, prog, injector)
}

// Run simulates prog on cfg until halt or maxInsts committed
// instructions (0 = no limit). injector may be nil.
func Run(cfg Config, prog *Program, injector Injector, maxInsts uint64) (Result, error) {
	cpu, err := pipeline.New(cfg, prog, injector)
	if err != nil {
		return Result{}, err
	}
	return cpu.Run(maxInsts)
}

// Emulate runs prog on the functional emulator (no timing), returning
// the machine for architectural inspection.
func Emulate(prog *Program, maxInsts uint64) (*emu.Machine, error) {
	m, err := emu.New(prog)
	if err != nil {
		return nil, err
	}
	if _, err := m.Run(maxInsts); err != nil {
		return nil, err
	}
	return m, nil
}

// NoFaults returns an injector that never fires.
func NoFaults() Injector { return fault.None{} }

// FaultAt returns an injector that flips the given bit of the result of
// the n-th committed instruction, once.
func FaultAt(n uint64, bit uint8) Injector { return &fault.AtSeq{Seq: n, Bit: bit} }

// PeriodicFaults returns an injector that fires every interval
// instructions, cycling bit positions.
func PeriodicFaults(interval uint64) Injector { return &fault.Periodic{Interval: interval} }

// RandomFaults returns a deterministic pseudo-random injector firing
// with probability num/2^32 per instruction.
func RandomFaults(num uint32, seed uint64) Injector { return fault.NewRandom(num, seed) }

// Experiment harness re-exports: each regenerates one of the paper's
// tables or figures. See EXPERIMENTS.md for paper-vs-measured results.

// Options control experiment scale (instruction budget per run).
type Options = harness.Options

// FigureResult is a regenerated bar-group figure.
type FigureResult = harness.FigureResult

// DefaultOptions is the scale used by the test suite and benches.
func DefaultOptions() Options { return harness.DefaultOptions() }

// Figure2 regenerates Figure 2 (starting configuration).
func Figure2(opt Options) (*FigureResult, error) { return harness.Figure2(opt) }

// Figure3 regenerates Figure 3 (RUU 32 / LSQ 16).
func Figure3(opt Options) (*FigureResult, error) { return harness.Figure3(opt) }

// Figure4 regenerates Figure 4 (16-wide datapath).
func Figure4(opt Options) (*FigureResult, error) { return harness.Figure4(opt) }

// Figure5 regenerates Figure 5 (4 memory ports).
func Figure5(opt Options) (*FigureResult, error) { return harness.Figure5(opt) }

// Figure6 regenerates Figure 6 (summary across configurations).
func Figure6(opt Options) ([]harness.SummaryRow, error) { return harness.Figure6(opt) }

// Figure7 regenerates Figure 7 (RUU 64/256 with and without doubled
// functional units).
func Figure7(opt Options) ([]harness.Figure7Point, error) { return harness.Figure7(opt) }

// Table1 renders the paper's Table 1 (starting configuration).
func Table1() string { return harness.Table1() }

// Table2 renders the paper's Table 2 (benchmarks and inputs).
func Table2() string { return harness.Table2() }

// CampaignSpec configures a statistical fault-injection campaign; see
// harness.Campaign.
type CampaignSpec = harness.CampaignSpec

// CampaignReport is a campaign's outcome: per-structure coverage with
// Wilson 95% confidence intervals, every injection classified as
// detected, recovered, SDC, masked, or hang against a golden run.
type CampaignReport = harness.CampaignReport

// Campaign runs a seeded statistical fault-injection campaign on one
// workload: faults sampled over (instruction, structure, bit), each
// injected run classified against an uninjected golden execution.
func Campaign(spec CampaignSpec, opt Options) (*CampaignReport, error) {
	return harness.Campaign(spec, opt)
}

// FaultStructures returns the fault-target structures that exist on a
// machine (RSQ structures only when it has an R-stream Queue).
func FaultStructures(rsq bool) []fault.Struct { return fault.Structures(rsq) }

// SpareSearch finds the number of spare integer ALUs needed to bring the
// REESE machine within tolerance of the baseline — the paper's central
// question (§1.1).
func SpareSearch(base Config, maxSpares int, tolerance float64, opt Options) (int, []float64, error) {
	return harness.SpareSearch(base, maxSpares, tolerance, opt)
}

// CheckClaims evaluates the paper's §6.1/§7 headline claims against
// fresh simulations, returning one pass/fail entry per claim.
func CheckClaims(opt Options) ([]harness.Claim, error) { return harness.CheckClaims(opt) }

// BitGrid injects one fault per bit position (0-31) at a fixed point in
// a workload and reports per-position detection — the comparator's
// single-bit completeness demonstrated on pipeline timing.
func BitGrid(cfg Config, workloadName string, atSeq uint64, opt Options) ([]harness.BitGridResult, error) {
	return harness.BitGrid(cfg, workloadName, atSeq, opt)
}

// StuckUnit is a permanent single-bit fault in one functional unit;
// install it on a CPU with SetStuckUnit before Run. Plain re-execution
// misses it when both executions use the faulty unit; a Config built
// with WithRESO detects it (see examples and EXPERIMENTS.md).
type StuckUnit = fault.StuckUnit

// StuckALU returns a permanent fault in integer ALU unit (bit flipped
// in every result it computes).
func StuckALU(unit int, bit uint8) StuckUnit {
	return StuckUnit{Kind: uint8(fu.IntALU), Unit: unit, Bit: bit}
}

// StuckMemPort returns a permanent fault in a memory port.
func StuckMemPort(unit int, bit uint8) StuckUnit {
	return StuckUnit{Kind: uint8(fu.MemPort), Unit: unit, Bit: bit}
}
