package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestCauseNamesRoundTrip(t *testing.T) {
	seen := map[string]bool{}
	for c := StallCause(0); c < NumCauses; c++ {
		s := c.String()
		if s == "" || strings.HasPrefix(s, "cause(") {
			t.Fatalf("cause %d has no name", c)
		}
		if seen[s] {
			t.Fatalf("duplicate cause name %q", s)
		}
		seen[s] = true
		back, ok := CauseByName(s)
		if !ok || back != c {
			t.Fatalf("CauseByName(%q) = %v,%v want %v", s, back, ok, c)
		}
	}
	if _, ok := CauseByName("no-such-cause"); ok {
		t.Fatal("CauseByName accepted garbage")
	}
	if StallCause(200).String() != "cause(200)" {
		t.Fatal("unknown cause formatting")
	}
}

func TestMatrixChargeAndBreakdown(t *testing.T) {
	var m Matrix
	// Simulate 10 cycles of a width-4 / issue-2 machine.
	for i := 0; i < 10; i++ {
		m.Use(SlotCommit, 3)
		m.Charge(SlotCommit, CauseRecheckPending, 1)
		m.Use(SlotIssue, 2) // fully used: nothing to charge
		m.Use(SlotDispatch, 1)
		m.Charge(SlotDispatch, CauseFetchEmpty, 3)
	}
	m.Charge(SlotCommit, CauseNone, 5) // must be ignored
	b := m.Breakdown(10, [NumSlotClasses]int{SlotDispatch: 4, SlotIssue: 2, SlotCommit: 4})
	if b.Cycles != 10 {
		t.Fatalf("cycles = %d", b.Cycles)
	}
	for _, sb := range []SlotBreakdown{b.Dispatch, b.Issue, b.Commit} {
		if sb.Used+sb.StallSum() != sb.Slots {
			t.Errorf("slot ledger broken: used %d + stalls %d != slots %d", sb.Used, sb.StallSum(), sb.Slots)
		}
	}
	if got := b.Commit.Stalls[CauseRecheckPending]; got != 10 {
		t.Errorf("recheck-pending = %d, want 10", got)
	}
	if got := b.Dispatch.Pct(CauseFetchEmpty); got != 75 {
		t.Errorf("dispatch fetch-empty pct = %v, want 75", got)
	}
	if got := b.Issue.UtilPct(); got != 100 {
		t.Errorf("issue util = %v, want 100", got)
	}
}

func TestBreakdownAdd(t *testing.T) {
	var a, b Matrix
	a.Use(SlotCommit, 5)
	a.Charge(SlotCommit, CauseDrain, 3)
	b.Use(SlotCommit, 7)
	b.Charge(SlotCommit, CauseDrain, 1)
	w := [NumSlotClasses]int{SlotDispatch: 4, SlotIssue: 4, SlotCommit: 4}
	sum := a.Breakdown(2, w)
	sum.Add(b.Breakdown(2, w))
	if sum.Cycles != 4 || sum.Commit.Used != 12 || sum.Commit.Stalls[CauseDrain] != 4 {
		t.Fatalf("aggregate wrong: %+v", sum.Commit)
	}
}

func TestSlotBreakdownJSONRoundTrip(t *testing.T) {
	in := SlotBreakdown{Width: 4, Slots: 400, Used: 123}
	in.Stalls[CauseFetchEmpty] = 200
	in.Stalls[CauseRSQFull] = 77
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	if !strings.Contains(s, `"fetch-empty":200`) || !strings.Contains(s, `"rsq-full":77`) {
		t.Fatalf("unexpected JSON: %s", s)
	}
	if strings.Contains(s, "recheck-pending") {
		t.Fatalf("zero causes must be omitted: %s", s)
	}
	var out SlotBreakdown
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip mismatch:\n in  %+v\n out %+v", in, out)
	}
	if err := json.Unmarshal([]byte(`{"width":1,"slots":1,"used":0,"stalls":{"bogus":1}}`), &out); err == nil {
		t.Fatal("unknown cause name must fail to unmarshal")
	}
	pcts := in.CausePcts()
	if len(pcts) != 2 || pcts["fetch-empty"] != 50 {
		t.Fatalf("CausePcts = %v", pcts)
	}
}
