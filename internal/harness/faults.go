package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"reese/internal/config"
	"reese/internal/emu"
	"reese/internal/fault"
	"reese/internal/pipeline"
	"reese/internal/program"
	"reese/internal/stats"
	"reese/internal/workload"
)

// CampaignSpec configures a statistical fault-injection campaign: a
// seeded random sample over (victim instruction, target structure, bit)
// on one workload/machine pair, every injected run classified against an
// uninjected golden execution. The same spec always produces the same
// trials and the same report, byte for byte, regardless of parallelism.
type CampaignSpec struct {
	// Workload names a Table 2 benchmark.
	Workload string `json:"workload"`
	// Machine is the configuration under test.
	Machine config.Machine `json:"machine"`
	// Structures are the fault targets to sample from; empty selects
	// every structure that exists on Machine (RSQ structures only on a
	// REESE machine in RSQ mode).
	Structures []fault.Struct `json:"structures,omitempty"`
	// Injections is the number of trials (0 = 100).
	Injections int `json:"injections,omitempty"`
	// Seed drives victim sampling; equal seeds reproduce exactly.
	Seed uint64 `json:"seed,omitempty"`
	// TargetInsts sizes the program: the workload's iteration count is
	// grown until the golden run commits at least this many instructions
	// before halting (0 = 8000). Runs go to halt, not to a budget, so
	// clean and recovered runs end in identical architectural state.
	TargetInsts uint64 `json:"target_insts,omitempty"`
	// CheckpointInterval is the golden-run snapshot spacing in committed
	// instructions (0 = DefaultCheckpointInterval). Trials fork from the
	// nearest checkpoint before their injection point instead of
	// simulating the prefix; the interval trades snapshot memory against
	// simulated suffix length. Any interval produces byte-identical
	// reports — it only changes wall-clock time.
	CheckpointInterval uint64 `json:"checkpoint_interval,omitempty"`
	// Shard, when non-nil, restricts execution to the trials
	// [Offset, Offset+Count) of the full Injections-trial plan. Because
	// every trial is planned from its own splitmix64-derived substream
	// (see planTrial), a shard plans exactly the trials the
	// single-process campaign would have planned at those indices — the
	// union of the shard reports over any partition of [0, Injections)
	// merges (MergeReports) into the byte-identical single-process
	// report. Shard reports carry their latency histogram
	// (CampaignReport.LatencyHist) so detection-latency aggregates merge
	// exactly too.
	Shard *ShardRange `json:"shard,omitempty"`
	// TrialSink, when non-nil, receives every completed trial in plan
	// order as soon as it (and all lower-indexed trials) finish —
	// streaming JSONL writers see records during the campaign instead of
	// after it. A sink error aborts the campaign.
	TrialSink func(Trial) error `json:"-"`
	// Triage re-runs every trial that classifies as SDC or Hang from its
	// checkpoint with the flight recorder and the lockstep
	// first-divergence watch armed, attaching a TriageRecord (Perfetto
	// trace, first divergent commit, propagation summary) to the trial
	// (see triage.go). Trials that don't escape are untouched, so a
	// triaged campaign's JSONL minus the triage fields is byte-identical
	// to an untriaged run.
	Triage bool `json:"triage,omitempty"`
	// TriageDetected additionally triages detected trials — useful for
	// studying detection latency paths, off by default because detected
	// faults are the common case.
	TriageDetected bool `json:"triage_detected,omitempty"`
	// TriageObserver, when non-nil, is called after each completed triage
	// replay with the trial's outcome and the replay's wall-clock
	// seconds. Called concurrently from trial workers; implementations
	// must be safe for concurrent use.
	TriageObserver func(outcome string, seconds float64) `json:"-"`
}

// ShardRange addresses a contiguous slice of a campaign's trial plan:
// trials [Offset, Offset+Count) of the full Injections-trial plan.
// Plan records that full plan size, so a set of shard reports is
// self-describing: MergeReports can prove the set tiles the whole plan
// — including that the *last* shard is present — from the reports
// alone.
type ShardRange struct {
	Offset int `json:"offset"`
	Count  int `json:"count"`
	Plan   int `json:"plan"`
}

// validate checks the shard against the full plan size.
func (s *ShardRange) validate(injections int) error {
	if s.Count <= 0 {
		return fmt.Errorf("harness: shard count %d must be positive", s.Count)
	}
	if s.Offset < 0 || s.Offset+s.Count > injections {
		return fmt.Errorf("harness: shard [%d,%d) outside the %d-trial plan",
			s.Offset, s.Offset+s.Count, injections)
	}
	if s.Plan != 0 && s.Plan != injections {
		return fmt.Errorf("harness: shard plan size %d disagrees with injections %d", s.Plan, injections)
	}
	return nil
}

// withDefaults fills the zero fields. defaulted reports whether the
// structure list was inferred rather than requested: inferred lists may
// silently drop structures the workload has no victims for (a storeless
// program cannot host a store-data fault), requested ones must not.
func (s CampaignSpec) withDefaults() (_ CampaignSpec, defaulted bool) {
	if s.Injections == 0 {
		s.Injections = 100
	}
	if s.TargetInsts == 0 {
		s.TargetInsts = 8_000
	}
	if s.CheckpointInterval == 0 {
		s.CheckpointInterval = DefaultCheckpointInterval
	}
	if len(s.Structures) == 0 {
		s.Structures = fault.Structures(s.rsq())
		defaulted = true
	}
	return s, defaulted
}

// rsq reports whether the machine has an R-stream Queue (the RSQ fault
// structures only exist there).
func (s CampaignSpec) rsq() bool {
	return s.Machine.Reese.Enabled && s.Machine.Reese.Mode != config.ModeDupDispatch
}

// Trial is one injected run: where the fault landed and what became of
// it. Campaign reports stream one Trial per line as JSONL.
type Trial struct {
	Index     int    `json:"trial"`
	Structure string `json:"structure"`
	// Seq is the victim: the dynamic instruction index (or, for
	// oracle-site structures, the instruction count at corruption).
	Seq uint64 `json:"seq"`
	Bit uint8  `json:"bit"`
	Reg uint8  `json:"reg,omitempty"`
	// Seq2 (dirty-bit faults only) is the dynamic index of the victim
	// block's last golden store; the dirty-clear fires after it retires,
	// so the lost write-back covers every store to the block.
	Seq2 uint64 `json:"seq2,omitempty"`
	// Fired reports the injector actually placed the fault (a fault
	// aimed past the end of execution never fires and counts as masked).
	Fired   bool   `json:"fired"`
	Outcome string `json:"outcome"`
	// Addr is the victim address for memory-hierarchy structures: the
	// targeted memory word, cache line, or page. Zero for pipeline
	// structures.
	Addr uint32 `json:"addr,omitempty"`
	// Locale is the symptom-only localization verdict for non-masked
	// trials: "ram", "cache", or "pipeline" — the classifier's guess at
	// which plane the fault struck, scored against the structure's
	// ground-truth LevelGroup.
	Locale string `json:"locale,omitempty"`
	// Latency is injection-to-detection in cycles, for detected trials.
	Latency   uint64 `json:"latency_cycles,omitempty"`
	Cycles    uint64 `json:"cycles"`
	Committed uint64 `json:"committed"`
	// Triage is the escape-triage attachment (CampaignSpec.Triage): the
	// replay verdict, first divergent commit, and trace metadata. Nil for
	// untriaged trials, so untriaged JSONL is unchanged.
	Triage *TriageRecord `json:"triage,omitempty"`

	outcome fault.Outcome
	// Replay-verification state for the triage pass (checkpoint.go fills
	// these; never serialized): the digests classification saw, the hang
	// loop period, the final-memory diff extent, and the cycle the fault
	// fired.
	commitDig  emu.Digest
	oracleDig  emu.Digest
	hangPeriod uint64
	diffWords  int
	diffLo     uint32
	faultCycle uint64
}

// OutcomeCounts tallies trials per outcome; the six counts always sum
// to the number of injections classified into them.
type OutcomeCounts struct {
	Detected  uint64 `json:"detected"`
	Recovered uint64 `json:"recovered"`
	SDC       uint64 `json:"sdc"`
	Masked    uint64 `json:"masked"`
	Hang      uint64 `json:"hang"`
	// Corrected counts trials an ECC-protected structure absorbed:
	// effective (the fault reached real state) but never an escape.
	Corrected uint64 `json:"corrected"`
}

func (o *OutcomeCounts) add(c fault.Outcome) {
	switch c {
	case fault.OutcomeDetected:
		o.Detected++
	case fault.OutcomeRecovered:
		o.Recovered++
	case fault.OutcomeSDC:
		o.SDC++
	case fault.OutcomeMasked:
		o.Masked++
	case fault.OutcomeHang:
		o.Hang++
	case fault.OutcomeCorrected:
		o.Corrected++
	}
}

// Total sums the six outcome counts.
func (o OutcomeCounts) Total() uint64 {
	return o.Detected + o.Recovered + o.SDC + o.Masked + o.Hang + o.Corrected
}

// StructureCoverage is the per-structure slice of a campaign report.
type StructureCoverage struct {
	Structure string `json:"structure"`
	InSphere  bool   `json:"in_sphere"`
	Injected  uint64 `json:"injected"`
	Fired     uint64 `json:"fired"`
	// Effective is the trials whose fault mattered: injected minus
	// masked. A masked trial's flipped bit was architecturally dead
	// (overwritten result, shifted-out operand bit) — there was nothing
	// to catch, so it belongs in neither coverage numerator nor
	// denominator.
	Effective uint64 `json:"effective"`
	OutcomeCounts
	// Coverage is (detected+recovered+corrected)/effective with its
	// Wilson 95% confidence interval — the probability a consequential
	// fault in this structure is caught (or absorbed by ECC) before it
	// matters. Zero effective trials give coverage 0 with the vacuous
	// interval [0, 1]: no evidence.
	Coverage   float64 `json:"coverage"`
	CoverageLo float64 `json:"coverage_ci_lo"`
	CoverageHi float64 `json:"coverage_ci_hi"`
	// Localized counts this structure's non-masked trials the symptom
	// classifier attributed to a plane; LocCorrect the attributions that
	// match the structure's ground-truth level group.
	Localized  uint64 `json:"localized,omitempty"`
	LocCorrect uint64 `json:"loc_correct,omitempty"`
	// Triaged counts this structure's trials the triage pass replayed;
	// Diverged those with an attributed first divergent commit, and
	// DivergeCycleSum the sum of their injection-to-divergence cycle
	// deltas (an integer sum, so shard merges reproduce the mean
	// exactly). All zero — and omitted — when triage is off.
	Triaged         uint64 `json:"triaged,omitempty"`
	Diverged        uint64 `json:"diverged,omitempty"`
	DivergeCycleSum uint64 `json:"diverge_cycle_sum,omitempty"`
}

// LevelCoverage aggregates a campaign per physical plane — RAM, L1, L2,
// TLB, pipeline — the per-level rollup the localization pass is
// reported against. Derived exactly from the per-structure counts, so
// shard merges reproduce it byte-identically.
type LevelCoverage struct {
	Level string `json:"level"`

	Injected  uint64 `json:"injected"`
	Fired     uint64 `json:"fired"`
	Effective uint64 `json:"effective"`
	OutcomeCounts
	Coverage   float64 `json:"coverage"`
	CoverageLo float64 `json:"coverage_ci_lo"`
	CoverageHi float64 `json:"coverage_ci_hi"`
	// SDCRate is sdc/effective: the probability a consequential fault
	// at this level silently corrupts state.
	SDCRate   float64 `json:"sdc_rate"`
	SDCRateLo float64 `json:"sdc_rate_ci_lo"`
	SDCRateHi float64 `json:"sdc_rate_ci_hi"`
	// LocAccuracy is loc_correct/localized: how often the symptom-only
	// classifier attributed this level's non-masked trials to the right
	// plane group.
	Localized     uint64  `json:"localized"`
	LocCorrect    uint64  `json:"loc_correct"`
	LocAccuracy   float64 `json:"loc_accuracy"`
	LocAccuracyLo float64 `json:"loc_accuracy_ci_lo"`
	LocAccuracyHi float64 `json:"loc_accuracy_ci_hi"`
}

// LatencyCell is one value of a shard report's detection-latency
// histogram: Count detections at exactly Cycles injection-to-detection
// cycles. Width-1 cells make the histogram lossless, so merged
// mean/p95/max are bit-identical to a single-process computation.
type LatencyCell struct {
	Cycles uint64 `json:"cycles"`
	Count  uint64 `json:"count"`
}

// CampaignReport is the outcome of a fault-injection campaign.
type CampaignReport struct {
	Workload string `json:"workload"`
	Config   string `json:"config"`
	Seed     uint64 `json:"seed"`
	// GoldenInsts is the golden run's committed-instruction count (the
	// sampled victim space).
	GoldenInsts uint64 `json:"golden_insts"`

	Injected  uint64 `json:"injected"`
	Fired     uint64 `json:"fired"`
	Effective uint64 `json:"effective"`
	OutcomeCounts
	Coverage   float64 `json:"coverage"`
	CoverageLo float64 `json:"coverage_ci_lo"`
	CoverageHi float64 `json:"coverage_ci_hi"`

	// DetectionLatencyMean/P95/Max summarise cycles from fault injection
	// (P-stream writeback) to comparator detection. This is the paper's
	// Δt argument (§2): the RSQ transit time separates the two
	// executions.
	DetectionLatencyMean float64 `json:"detection_latency_mean"`
	DetectionLatencyP95  uint64  `json:"detection_latency_p95"`
	DetectionLatencyMax  uint64  `json:"detection_latency_max"`

	Structures []StructureCoverage `json:"structures"`

	// Levels rolls the campaign up per physical plane (RAM, L1, L2,
	// TLB, pipeline) with localization accuracy per level; Localized/
	// LocCorrect and LocAccuracy summarize the symptom classifier over
	// all non-masked trials.
	Levels        []LevelCoverage `json:"levels,omitempty"`
	Localized     uint64          `json:"localized,omitempty"`
	LocCorrect    uint64          `json:"loc_correct,omitempty"`
	LocAccuracy   float64         `json:"loc_accuracy,omitempty"`
	LocAccuracyLo float64         `json:"loc_accuracy_ci_lo,omitempty"`
	LocAccuracyHi float64         `json:"loc_accuracy_ci_hi,omitempty"`

	// Triaged/Diverged count trials the escape-triage pass replayed and
	// those with an attributed first divergent commit (sums of the
	// per-structure counts); both zero — and omitted — when triage is
	// off, so untriaged report JSON is unchanged.
	Triaged  uint64 `json:"triaged,omitempty"`
	Diverged uint64 `json:"diverged,omitempty"`

	// Shard echoes the spec's shard range when this report covers only a
	// slice of the plan; LatencyHist is the shard's raw detection-latency
	// distribution, carried so MergeReports can rebuild the merged
	// mean/p95/max exactly. Both are nil on single-process reports.
	Shard       *ShardRange   `json:"shard,omitempty"`
	LatencyHist []LatencyCell `json:"latency_hist,omitempty"`

	// WallSeconds and InjectionsPerSec measure campaign throughput:
	// wall-clock time for planning plus every trial (golden-run
	// construction included on a cold cache), and trials completed per
	// second. Unlike everything else in the report they depend on the
	// host, not just the spec.
	WallSeconds      float64 `json:"wall_seconds,omitempty"`
	InjectionsPerSec float64 `json:"injections_per_sec,omitempty"`

	// Trials carries the raw per-injection records (use WriteJSONL to
	// stream them); excluded from the report's own JSON form.
	Trials []Trial `json:"-"`
}

// WriteJSONL streams one JSON object per trial to w. Output is
// byte-identical for equal specs.
func (r *CampaignReport) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for i := range r.Trials {
		if err := enc.Encode(&r.Trials[i]); err != nil {
			return err
		}
	}
	return nil
}

// Table renders the per-structure coverage breakdown. When the campaign
// ran with triage, a "first div" column reports the mean
// injection-to-first-divergence cycle delta per structure (an exact
// integer-sum mean, so merged shard reports render identically);
// untriaged reports render exactly as before.
func (r *CampaignReport) Table() string {
	cols := []string{"structure", "sphere", "inj", "eff", "det", "rec", "corr", "sdc", "mask", "hang", "coverage", "95% CI"}
	if r.Triaged > 0 {
		cols = append(cols, "first div")
	}
	t := stats.NewTable(
		fmt.Sprintf("Fault campaign: %s on %s (%d injections, seed %d)",
			r.Workload, r.Config, r.Injected, r.Seed),
		cols...)
	for _, s := range r.Structures {
		sphere := "outside"
		if s.InSphere {
			sphere = "in"
		}
		row := []string{s.Structure, sphere,
			fmt.Sprint(s.Injected), fmt.Sprint(s.Effective),
			fmt.Sprint(s.Detected), fmt.Sprint(s.Recovered), fmt.Sprint(s.Corrected),
			fmt.Sprint(s.SDC), fmt.Sprint(s.Masked), fmt.Sprint(s.Hang),
			fmt.Sprintf("%.1f%%", s.Coverage*100),
			fmt.Sprintf("[%.1f%%, %.1f%%]", s.CoverageLo*100, s.CoverageHi*100)}
		if r.Triaged > 0 {
			cell := "-"
			if s.Diverged > 0 {
				cell = fmt.Sprintf("%d cyc", s.DivergeCycleSum/s.Diverged)
			}
			row = append(row, cell)
		}
		t.AddRow(row...)
	}
	return t.String()
}

// LevelsTable renders the per-plane rollup with localization accuracy.
func (r *CampaignReport) LevelsTable() string {
	t := stats.NewTable(
		fmt.Sprintf("Per-level rollup: %s on %s (localization accuracy %.1f%% [%.1f%%, %.1f%%] over %d localized trials)",
			r.Workload, r.Config, r.LocAccuracy*100, r.LocAccuracyLo*100, r.LocAccuracyHi*100, r.Localized),
		"level", "inj", "eff", "coverage", "95% CI", "sdc rate", "95% CI", "loc acc", "95% CI")
	for _, l := range r.Levels {
		t.AddRow(l.Level,
			fmt.Sprint(l.Injected), fmt.Sprint(l.Effective),
			fmt.Sprintf("%.1f%%", l.Coverage*100),
			fmt.Sprintf("[%.1f%%, %.1f%%]", l.CoverageLo*100, l.CoverageHi*100),
			fmt.Sprintf("%.1f%%", l.SDCRate*100),
			fmt.Sprintf("[%.1f%%, %.1f%%]", l.SDCRateLo*100, l.SDCRateHi*100),
			fmt.Sprintf("%.1f%%", l.LocAccuracy*100),
			fmt.Sprintf("[%.1f%%, %.1f%%]", l.LocAccuracyLo*100, l.LocAccuracyHi*100))
	}
	return t.String()
}

// golden is the uninjected reference execution: its final architectural
// digest plus the eligibility lists trial sampling draws victims from,
// plus the commit-order records checkpoint splicing folds with
// (checkpoint.go).
type golden struct {
	digest emu.Digest
	total  uint64
	// observable lists dynamic instruction indices the comparator has an
	// outcome for; mems/stores the memory and store subsets.
	observable []uint64
	mems       []uint64
	stores     []uint64
	// storeRecs is every architectural store in commit order; destReg/
	// destFP record each dynamic instruction's destination register
	// (destNone = no write) — the raw material for splicing a trial's
	// final digest from a reconvergence boundary.
	storeRecs []storeRec
	destReg   []uint8
	destFP    []bool
	// memAddrs is parallel to mems: the effective address of each
	// memory access, the strike address for memory-hierarchy faults
	// sampled over data accesses. pcs records every dynamic
	// instruction's fetch PC (the strike address for I-side faults,
	// which sample the whole stream). out is the golden program output
	// (the localization pass parses PRBS self-check records out of it).
	memAddrs []uint32
	pcs      []uint32
	out      []byte
	// blockStores maps each lostWBGranule-aligned block address to the
	// dynamic indices of its first and last store — the snapshot point
	// and fire gate for dirty-bit (lost write-back) faults.
	blockStores map[uint32][2]uint64
}

// lostWBGranule is the block granularity dirty-bit faults are planned
// at; it matches the 32-byte L1D lines every shipped configuration
// uses.
const lostWBGranule = 32

// victimsFor is the structure's eligible-victim list; sampled is false
// for the architectural sites (regfile, fetch PC), which can strike at
// any point in the instruction stream.
func (g *golden) victimsFor(st fault.Struct) (victims []uint64, sampled bool) {
	switch st {
	case fault.StructResult, fault.StructRSQOperand, fault.StructRSQResult, fault.StructComparator:
		return g.observable, true
	case fault.StructLSQAddr:
		return g.mems, true
	case fault.StructLSQStoreData:
		return g.stores, true
	case fault.StructMemWord, fault.StructL1DTag, fault.StructL1DData,
		fault.StructL2Line, fault.StructDTLB:
		// Data-side memory-hierarchy faults strike the address of a
		// sampled memory access (the parallel memAddrs list carries the
		// address itself).
		return g.mems, true
	case fault.StructL1DDirty:
		// A dirty-bit fault needs a line a store has dirtied.
		return g.stores, true
	}
	return nil, false
}

// goldenScan sizes the program (growing the workload's iteration count
// until the golden run commits at least target instructions) and runs
// it once on the emulator, recording digest and eligibility.
func goldenScan(spec workload.Spec, target uint64) (*golden, *program.Program, error) {
	limit := 4*target + 200_000
	iters := 1
	for {
		prog, err := spec.Build(iters)
		if err != nil {
			return nil, nil, err
		}
		m, err := emu.New(prog)
		if err != nil {
			return nil, nil, err
		}
		g := &golden{}
		for !m.Halted() {
			if m.InstCount() >= limit {
				return nil, nil, fmt.Errorf("harness: workload %s (iters=%d) did not halt within %d insts", spec.Name, iters, limit)
			}
			seq := m.InstCount()
			tr, err := m.Step()
			if err != nil {
				return nil, nil, fmt.Errorf("harness: golden run of %s: %w", spec.Name, err)
			}
			op := tr.Inst.Op
			g.pcs = append(g.pcs, tr.PC)
			if fault.ComparatorObserves(tr) {
				g.observable = append(g.observable, seq)
			}
			if op.IsMem() {
				g.mems = append(g.mems, seq)
				g.memAddrs = append(g.memAddrs, tr.Addr)
			}
			if op.IsStore() {
				g.stores = append(g.stores, seq)
				g.storeRecs = append(g.storeRecs, storeRec{tr.Addr, tr.MemWidth, tr.StoreValue})
				block := tr.Addr &^ (lostWBGranule - 1)
				if g.blockStores == nil {
					g.blockStores = make(map[uint32][2]uint64)
				}
				if fl, ok := g.blockStores[block]; ok {
					g.blockStores[block] = [2]uint64{fl[0], seq}
				} else {
					g.blockStores[block] = [2]uint64{seq, seq}
				}
			}
			dest, fp := uint8(destNone), false
			if r, isFP, ok := tr.DestReg(); ok && (isFP || r != 0) {
				dest, fp = uint8(r), isFP
			}
			g.destReg = append(g.destReg, dest)
			g.destFP = append(g.destFP, fp)
		}
		g.digest = m.Digest()
		g.total = m.InstCount()
		g.out = append([]byte(nil), m.Output()...)
		if g.total >= target || iters >= 4096 {
			return g, prog, nil
		}
		// Grow geometrically toward the target; the extrapolated guess
		// overshoots slightly rather than creeping up one doubling at a
		// time.
		next := iters * 2
		if g.total > 0 {
			if est := int(uint64(iters)*target/g.total) + 1; est > next {
				next = est
			}
		}
		iters = next
	}
}

// classify buckets one injected run against the golden reference. The
// precedence is fixed: a hang trumps everything (the machine never
// finished); a comparator detection splits into recovered/detected by
// whether the final state is exactly golden; an undetected run splits
// into masked/SDC the same way. Both the committed (shadow) digest and
// the oracle digest must match: latch-plane corruption shows up in the
// former, architectural-site corruption in the latter.
func classify(res pipeline.Result, commit, oracle, gold emu.Digest) fault.Outcome {
	clean := commit == gold && oracle == gold
	switch {
	case res.Hanged:
		return fault.OutcomeHang
	case res.FaultsDetected > 0:
		if clean && !res.PermError {
			return fault.OutcomeRecovered
		}
		return fault.OutcomeDetected
	case clean:
		return fault.OutcomeMasked
	default:
		return fault.OutcomeSDC
	}
}

// campaignRNG is the xorshift64* stream behind trial sampling.
type campaignRNG struct{ state uint64 }

func newCampaignRNG(seed uint64) *campaignRNG {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &campaignRNG{state: seed}
}

func (r *campaignRNG) next() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

func (r *campaignRNG) intn(n int) int { return int(r.next() % uint64(n)) }

// splitmix64At returns the i-th output of the splitmix64 sequence
// seeded at seed — the standard gamma-increment-then-mix generator, a
// pure function of (seed, i) with O(1) random access.
func splitmix64At(seed, i uint64) uint64 {
	z := seed + (i+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// trialRNG is trial i's private sampling substream: an xorshift64*
// stream seeded by the i-th splitmix64 output of the campaign seed.
// Deriving each trial's randomness from (seed, i) alone — rather than
// one stream consumed sequentially — is what makes campaigns shardable:
// a worker planning trials [lo, hi) computes exactly the trials the
// single-process plan holds at those indices, without replaying the
// stream for the trials before lo. The union of any partition's shard
// plans therefore equals the single-process plan by construction
// (TestShardPlanUnionEqualsFullPlan pins it).
func trialRNG(seed uint64, i int) *campaignRNG {
	return newCampaignRNG(splitmix64At(seed, uint64(i)))
}

// planTrial derives trial i of the campaign plan from the seed alone:
// structure, victim, bit, and (for register-file faults) the register,
// each drawn from the trial's private substream. Memory-hierarchy
// structures also carry a strike address looked up from the golden
// pools at the sampled victim index — a pure function of the same
// draws, so shard plans stay identical to the single-process plan.
func planTrial(seed uint64, i int, structures []fault.Struct, g *golden) Trial {
	rng := trialRNG(seed, i)
	st := structures[rng.intn(len(structures))]
	var seq, seq2 uint64
	var addr uint32
	if victims, sampled := g.victimsFor(st); sampled {
		k := rng.intn(len(victims))
		seq = victims[k]
		switch st {
		case fault.StructMemWord, fault.StructL1DTag, fault.StructL1DData,
			fault.StructL2Line, fault.StructDTLB:
			addr = g.memAddrs[k]
		case fault.StructL1DDirty:
			// Arm at the block's first store (the snapshot then predates
			// every store to the block) and fire after its last.
			addr = g.storeRecs[k].addr
			fl := g.blockStores[addr&^(lostWBGranule-1)]
			seq, seq2 = fl[0], fl[1]
		}
	} else {
		seq = rng.next() % g.total
		switch st {
		case fault.StructL1ITag, fault.StructITLB:
			addr = g.pcs[seq]
		}
	}
	// L2 lines carry SECDED check bits: the bit draw spans 0..63, where
	// 32..63 encode adjacent double-bit patterns (fault.AtStruct). The
	// wider range is conditional so every pre-existing structure's plan
	// is bit-for-bit what it was before L2 faults existed.
	bitRange := 32
	if st == fault.StructL2Line {
		bitRange = 64
	}
	t := Trial{
		Index:     i,
		Structure: st.String(),
		Seq:       seq,
		Seq2:      seq2,
		Bit:       uint8(rng.intn(bitRange)),
		Addr:      addr,
	}
	if st == fault.StructRegFile {
		t.Reg = uint8(1 + rng.intn(31))
	}
	return t
}

// Campaign runs a statistical fault-injection campaign. Trials are
// planned sequentially from the seed, executed on the shared worker
// pool (opt.Parallel), and reported in plan order, so the report is
// byte-identical however it is scheduled. opt.Insts is ignored — runs
// go to halt, sized by spec.TargetInsts.
//
// Each trial forks from a checkpoint of a memoized golden run and
// simulates only the slice of execution its fault can influence
// (checkpoint.go); the records it produces are byte-identical to full
// from-scratch simulations of every trial.
func Campaign(spec CampaignSpec, opt Options) (*CampaignReport, error) {
	start := time.Now()
	opt = opt.normalize()
	spec, defaulted := spec.withDefaults()
	wspec, ok := workload.ByName(spec.Workload)
	if !ok {
		return nil, fmt.Errorf("unknown workload %q", spec.Workload)
	}
	if err := spec.Machine.Validate(); err != nil {
		return nil, err
	}
	for _, st := range spec.Structures {
		if st >= fault.NumStructs {
			return nil, fmt.Errorf("harness: unknown fault structure %d", st)
		}
		if st.NeedsRSQ() && !spec.rsq() {
			return nil, fmt.Errorf("harness: structure %s requires an R-stream Queue; machine %s has none", st, spec.Machine.Name)
		}
	}

	bundle, err := bundleForSpec(spec, wspec)
	if err != nil {
		return nil, err
	}
	g := bundle.g

	// A structure with no victims in this workload cannot host a fault.
	// Drop it when the list was inferred; reject it when it was asked
	// for explicitly (silently sampling nothing would misreport).
	kept := spec.Structures[:0]
	for _, st := range spec.Structures {
		if v, sampled := g.victimsFor(st); sampled && len(v) == 0 {
			if !defaulted {
				return nil, fmt.Errorf("harness: workload %s has no eligible victims for structure %s", spec.Workload, st)
			}
			continue
		}
		kept = append(kept, st)
	}
	spec.Structures = kept

	// Plan the trials up front. Each trial is a pure function of
	// (seed, index) — see trialRNG — so the plan depends only on the
	// spec, and a shard plans just its own slice of the same plan.
	offset, count := 0, spec.Injections
	if spec.Shard != nil {
		if err := spec.Shard.validate(spec.Injections); err != nil {
			return nil, err
		}
		offset, count = spec.Shard.Offset, spec.Shard.Count
	}
	trials := make([]Trial, count)
	for i := range trials {
		trials[i] = planTrial(spec.Seed, offset+i, spec.Structures, g)
	}

	// Execute. Each trial is independent and forks from the bundle's
	// checkpoint chain; results land in plan order. The sink (when
	// installed) flushes the longest completed prefix so downstream
	// writers stream records in order during the run.
	var (
		sinkMu   sync.Mutex
		sinkDone []bool
		sinkNext int
		sinkErr  error
	)
	if spec.TrialSink != nil {
		sinkDone = make([]bool, len(trials))
	}
	err = forEach(len(trials), opt.Parallel, func(i int) error {
		if err := bundle.runTrial(opt.Ctx, &trials[i], opt); err != nil {
			return err
		}
		// Triage escapes immediately, before the sink flushes the trial,
		// so streamed JSONL records carry their triage attachment inline.
		if spec.Triage && triageWanted(trials[i].outcome, spec.TriageDetected) {
			tstart := time.Now()
			if err := bundle.triageTrial(opt.Ctx, &trials[i], opt); err != nil {
				return err
			}
			if spec.TriageObserver != nil {
				spec.TriageObserver(trials[i].Outcome, time.Since(tstart).Seconds())
			}
		}
		if spec.TrialSink == nil {
			return nil
		}
		sinkMu.Lock()
		defer sinkMu.Unlock()
		sinkDone[i] = true
		for sinkNext < len(trials) && sinkDone[sinkNext] {
			if sinkErr == nil {
				sinkErr = spec.TrialSink(trials[sinkNext])
			}
			sinkNext++
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if sinkErr != nil {
		return nil, fmt.Errorf("harness: trial sink: %w", sinkErr)
	}

	// Aggregate in plan order.
	rep := &CampaignReport{
		Workload:    spec.Workload,
		Config:      spec.Machine.Name,
		Seed:        spec.Seed,
		GoldenInsts: g.total,
		Injected:    uint64(len(trials)),
		Trials:      trials,
	}
	perStruct := make(map[string]*StructureCoverage, len(spec.Structures))
	groupOf := make(map[string]string, len(spec.Structures))
	for _, st := range spec.Structures {
		sc := &StructureCoverage{Structure: st.String(), InSphere: st.InSphere()}
		perStruct[st.String()] = sc
		groupOf[st.String()] = st.LevelGroup()
	}
	lat := stats.NewHistogram(1)
	for i := range trials {
		t := &trials[i]
		sc := perStruct[t.Structure]
		sc.Injected++
		if t.Fired {
			sc.Fired++
			rep.Fired++
		}
		sc.add(t.outcome)
		rep.add(t.outcome)
		if t.outcome == fault.OutcomeDetected || t.outcome == fault.OutcomeRecovered {
			lat.Add(t.Latency)
		}
		if t.Locale != "" {
			sc.Localized++
			if t.Locale == groupOf[t.Structure] {
				sc.LocCorrect++
			}
		}
		if t.Triage != nil {
			sc.Triaged++
			if t.Triage.FirstDivergence != nil {
				sc.Diverged++
				sc.DivergeCycleSum += t.Triage.CyclesToDivergence
			}
		}
	}
	for _, st := range spec.Structures {
		sc := perStruct[st.String()]
		sc.Effective = sc.Injected - sc.Masked
		caught := sc.Detected + sc.Recovered + sc.Corrected
		if sc.Effective > 0 {
			sc.Coverage = float64(caught) / float64(sc.Effective)
		}
		sc.CoverageLo, sc.CoverageHi = stats.Wilson95(caught, sc.Effective)
		rep.Triaged += sc.Triaged
		rep.Diverged += sc.Diverged
		rep.Structures = append(rep.Structures, *sc)
	}
	rep.Effective = rep.Injected - rep.Masked
	caught := rep.Detected + rep.Recovered + rep.Corrected
	if rep.Effective > 0 {
		rep.Coverage = float64(caught) / float64(rep.Effective)
	}
	rep.CoverageLo, rep.CoverageHi = stats.Wilson95(caught, rep.Effective)
	rep.finishLocalization()
	if lat.Count() > 0 {
		rep.DetectionLatencyMean = lat.Mean()
		rep.DetectionLatencyP95 = lat.Percentile(95)
		rep.DetectionLatencyMax = lat.Max()
	}
	if spec.Shard != nil {
		rep.Shard = &ShardRange{Offset: offset, Count: count, Plan: spec.Injections}
		for _, b := range lat.Buckets() {
			rep.LatencyHist = append(rep.LatencyHist, LatencyCell{Cycles: b[0], Count: b[1]})
		}
	}
	rep.WallSeconds = time.Since(start).Seconds()
	if rep.WallSeconds > 0 {
		rep.InjectionsPerSec = float64(rep.Injected) / rep.WallSeconds
	}
	return rep, nil
}

// finishLocalization derives the report's localization totals and the
// per-level rollup from the per-structure counts. Campaign and
// MergeReports both finish through here, so a merged report's
// localization section is byte-identical to the single-process one.
func (r *CampaignReport) finishLocalization() {
	for _, s := range r.Structures {
		r.Localized += s.Localized
		r.LocCorrect += s.LocCorrect
	}
	if r.Localized > 0 {
		r.LocAccuracy = float64(r.LocCorrect) / float64(r.Localized)
		r.LocAccuracyLo, r.LocAccuracyHi = stats.Wilson95(r.LocCorrect, r.Localized)
	}
	r.Levels = computeLevels(r.Structures)
}

// levelOrder fixes the per-level rollup's row order.
var levelOrder = []string{"ram", "l1", "l2", "tlb", "pipeline"}

// computeLevels rolls per-structure coverage up by physical plane
// (fault.Struct.Level). Only levels with injections appear. Pure
// integer sums plus the same Wilson-interval formulas Campaign uses, so
// the rollup is an exact function of the per-structure counts.
func computeLevels(structures []StructureCoverage) []LevelCoverage {
	byLevel := make(map[string]*LevelCoverage)
	for _, s := range structures {
		st, ok := fault.ParseStruct(s.Structure)
		if !ok {
			continue
		}
		lv := byLevel[st.Level()]
		if lv == nil {
			lv = &LevelCoverage{Level: st.Level()}
			byLevel[st.Level()] = lv
		}
		lv.Injected += s.Injected
		lv.Fired += s.Fired
		lv.Detected += s.Detected
		lv.Recovered += s.Recovered
		lv.SDC += s.SDC
		lv.Masked += s.Masked
		lv.Hang += s.Hang
		lv.Corrected += s.Corrected
		lv.Localized += s.Localized
		lv.LocCorrect += s.LocCorrect
	}
	var out []LevelCoverage
	for _, name := range levelOrder {
		lv := byLevel[name]
		if lv == nil || lv.Injected == 0 {
			continue
		}
		lv.Effective = lv.Injected - lv.Masked
		caught := lv.Detected + lv.Recovered + lv.Corrected
		if lv.Effective > 0 {
			lv.Coverage = float64(caught) / float64(lv.Effective)
			lv.SDCRate = float64(lv.SDC) / float64(lv.Effective)
		}
		lv.CoverageLo, lv.CoverageHi = stats.Wilson95(caught, lv.Effective)
		lv.SDCRateLo, lv.SDCRateHi = stats.Wilson95(lv.SDC, lv.Effective)
		if lv.Localized > 0 {
			lv.LocAccuracy = float64(lv.LocCorrect) / float64(lv.Localized)
		}
		lv.LocAccuracyLo, lv.LocAccuracyHi = stats.Wilson95(lv.LocCorrect, lv.Localized)
		out = append(out, *lv)
	}
	return out
}

// MergeReports reassembles the single-process campaign report from a
// complete set of shard reports. The merge is exact, not approximate:
// per-structure outcome counts are integer sums, coverage and its
// Wilson 95% CI are recomputed from the merged counts with the same
// formulas Campaign uses, and the detection-latency aggregates are
// rebuilt from the merged width-1 latency histograms — so for a given
// seed the merged report is byte-identical (JSON, JSONL, and table) to
// running the whole campaign in one process, whatever the shard count
// (TestMergedShardsByteIdentical pins this for 1, 2, and 8 shards).
//
// It validates completeness: the shards must agree on workload, config,
// seed, golden length, and structure list, and their trial indices must
// tile [0, total) exactly — a lost or double-counted shard is an error,
// never a silently wrong report. WallSeconds/InjectionsPerSec are left
// zero for the caller (they belong to the distributed run, not to any
// one shard).
func MergeReports(shards []*CampaignReport) (*CampaignReport, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("harness: merge of zero shard reports")
	}
	ref := shards[0]
	rep := &CampaignReport{
		Workload:    ref.Workload,
		Config:      ref.Config,
		Seed:        ref.Seed,
		GoldenInsts: ref.GoldenInsts,
	}
	for _, s := range shards {
		if s.Shard == nil {
			return nil, fmt.Errorf("harness: merge input is not a shard report (no shard range)")
		}
		if s.Workload != ref.Workload || s.Config != ref.Config || s.Seed != ref.Seed {
			return nil, fmt.Errorf("harness: merging shards of different campaigns (%s/%s/%d vs %s/%s/%d)",
				s.Workload, s.Config, s.Seed, ref.Workload, ref.Config, ref.Seed)
		}
		if s.GoldenInsts != ref.GoldenInsts {
			return nil, fmt.Errorf("harness: shard golden runs disagree (%d vs %d insts) — workers simulated different programs",
				s.GoldenInsts, ref.GoldenInsts)
		}
		if len(s.Structures) != len(ref.Structures) {
			return nil, fmt.Errorf("harness: shard structure lists differ (%d vs %d)", len(s.Structures), len(ref.Structures))
		}
		if s.Shard.Plan != ref.Shard.Plan {
			return nil, fmt.Errorf("harness: shard plan sizes disagree (%d vs %d)", s.Shard.Plan, ref.Shard.Plan)
		}
	}
	// The shard ranges must tile [0, plan) exactly: a lost shard —
	// including the last one — or an overlapping reassignment duplicate
	// is an error here, never a silently wrong report.
	ranges := make([]ShardRange, len(shards))
	for i, s := range shards {
		ranges[i] = *s.Shard
	}
	sort.Slice(ranges, func(i, j int) bool { return ranges[i].Offset < ranges[j].Offset })
	next := 0
	for _, r := range ranges {
		if r.Offset != next {
			return nil, fmt.Errorf("harness: shard set does not tile the plan: trials [%d,%d) missing or double-counted", next, r.Offset)
		}
		next = r.Offset + r.Count
	}
	if next != ref.Shard.Plan {
		return nil, fmt.Errorf("harness: shard set covers %d of %d planned trials", next, ref.Shard.Plan)
	}

	// Per-structure integer sums, in the reference shard's order (every
	// shard ran the same defaulted spec, so the order is identical — the
	// name check below catches a worker that somehow disagreed).
	lat := stats.NewHistogram(1)
	for i := range ref.Structures {
		sc := StructureCoverage{Structure: ref.Structures[i].Structure, InSphere: ref.Structures[i].InSphere}
		for _, s := range shards {
			ss := s.Structures[i]
			if ss.Structure != sc.Structure {
				return nil, fmt.Errorf("harness: shard structure order differs (%s vs %s)", ss.Structure, sc.Structure)
			}
			sc.Injected += ss.Injected
			sc.Fired += ss.Fired
			sc.Detected += ss.Detected
			sc.Recovered += ss.Recovered
			sc.SDC += ss.SDC
			sc.Masked += ss.Masked
			sc.Hang += ss.Hang
			sc.Corrected += ss.Corrected
			sc.Localized += ss.Localized
			sc.LocCorrect += ss.LocCorrect
			sc.Triaged += ss.Triaged
			sc.Diverged += ss.Diverged
			sc.DivergeCycleSum += ss.DivergeCycleSum
		}
		sc.Effective = sc.Injected - sc.Masked
		caught := sc.Detected + sc.Recovered + sc.Corrected
		if sc.Effective > 0 {
			sc.Coverage = float64(caught) / float64(sc.Effective)
		}
		sc.CoverageLo, sc.CoverageHi = stats.Wilson95(caught, sc.Effective)
		rep.Triaged += sc.Triaged
		rep.Diverged += sc.Diverged
		rep.Structures = append(rep.Structures, sc)
	}
	for _, s := range shards {
		rep.Injected += s.Injected
		rep.Fired += s.Fired
		rep.Detected += s.Detected
		rep.Recovered += s.Recovered
		rep.SDC += s.SDC
		rep.Masked += s.Masked
		rep.Hang += s.Hang
		rep.Corrected += s.Corrected
		for _, c := range s.LatencyHist {
			lat.AddN(c.Cycles, c.Count)
		}
		rep.Trials = append(rep.Trials, s.Trials...)
	}
	rep.Effective = rep.Injected - rep.Masked
	caught := rep.Detected + rep.Recovered + rep.Corrected
	if rep.Effective > 0 {
		rep.Coverage = float64(caught) / float64(rep.Effective)
	}
	rep.CoverageLo, rep.CoverageHi = stats.Wilson95(caught, rep.Effective)
	rep.finishLocalization()
	if lat.Count() > 0 {
		rep.DetectionLatencyMean = lat.Mean()
		rep.DetectionLatencyP95 = lat.Percentile(95)
		rep.DetectionLatencyMax = lat.Max()
	}

	// Completeness: trial indices must tile [0, Injected) exactly. This
	// is the zero-lost, zero-double-counted guarantee the reassignment
	// protocol leans on. Shards that shipped no per-trial records (a
	// coordinator merging counts only) skip the check.
	if len(rep.Trials) > 0 {
		if uint64(len(rep.Trials)) != rep.Injected {
			return nil, fmt.Errorf("harness: merged %d trials for %d injections", len(rep.Trials), rep.Injected)
		}
		sort.Slice(rep.Trials, func(i, j int) bool { return rep.Trials[i].Index < rep.Trials[j].Index })
		for i := range rep.Trials {
			if rep.Trials[i].Index != i {
				return nil, fmt.Errorf("harness: merged trial plan has a gap or duplicate at index %d", i)
			}
		}
	}
	return rep, nil
}

// CampaignAll runs the campaign on every workload for both the REESE
// machine and the baseline, and renders the comparison. Campaigns run
// one after another; each parallelizes its own trials on the shared
// pool.
func CampaignAll(injections int, seed uint64, opt Options) (string, []CampaignReport, error) {
	type job struct {
		name string
		cfg  config.Machine
	}
	var jobs []job
	for _, name := range workload.Names() {
		jobs = append(jobs, job{name, config.Starting().WithReese()})
		jobs = append(jobs, job{name, config.Starting()})
	}
	all := make([]CampaignReport, 0, len(jobs))
	for _, j := range jobs {
		r, err := Campaign(CampaignSpec{
			Workload:   j.name,
			Machine:    j.cfg,
			Injections: injections,
			Seed:       seed,
		}, opt)
		if err != nil {
			return "", nil, err
		}
		all = append(all, *r)
	}
	t := stats.NewTable("Fault injection: outcome taxonomy by structure (REESE vs baseline)",
		"bench", "machine", "structure", "inj", "eff", "det", "rec", "sdc", "mask", "hang", "coverage", "95% CI")
	for i, r := range all {
		machine := "baseline"
		if jobs[i].cfg.Reese.Enabled {
			machine = "REESE"
		}
		for _, s := range r.Structures {
			t.AddRow(r.Workload, machine, s.Structure,
				fmt.Sprint(s.Injected), fmt.Sprint(s.Effective),
				fmt.Sprint(s.Detected), fmt.Sprint(s.Recovered),
				fmt.Sprint(s.SDC), fmt.Sprint(s.Masked), fmt.Sprint(s.Hang),
				fmt.Sprintf("%.0f%%", s.Coverage*100),
				fmt.Sprintf("[%.0f%%, %.0f%%]", s.CoverageLo*100, s.CoverageHi*100))
		}
	}
	return t.String(), all, nil
}

// SpareSearch answers the paper's central question directly: how many
// spare integer ALUs does a given configuration need before the REESE
// machine's average IPC comes within tolerance (a fraction, e.g. 0.02)
// of the baseline's? It returns the spare count and the gap at each
// step.
func SpareSearch(base config.Machine, maxSpares int, tolerance float64, opt Options) (int, []float64, error) {
	opt = opt.normalize()
	baseAvg, err := averageIPC(base, opt)
	if err != nil {
		return 0, nil, err
	}
	var gaps []float64
	for n := 0; n <= maxSpares; n++ {
		cfg := base.WithReese()
		if n > 0 {
			cfg = cfg.WithSpares(n, 0)
		}
		avg, err := averageIPC(cfg, opt)
		if err != nil {
			return 0, nil, err
		}
		gap := (baseAvg - avg) / baseAvg
		gaps = append(gaps, gap*100)
		if gap <= tolerance {
			return n, gaps, nil
		}
	}
	return -1, gaps, nil
}

// averageIPC runs cfg on all six workloads (in parallel on the shared
// pool) and returns the mean IPC; summation is in workload order, so
// the value is independent of parallelism.
func averageIPC(cfg config.Machine, opt Options) (float64, error) {
	names := workload.Names()
	ipcs := make([]float64, len(names))
	err := forEach(len(names), opt.Parallel, func(i int) error {
		res, err := runOne(cfg, names[i], opt)
		if err != nil {
			return err
		}
		ipcs[i] = res.IPC
		return nil
	})
	if err != nil {
		return 0, err
	}
	var sum float64
	for _, v := range ipcs {
		sum += v
	}
	return sum / float64(len(names)), nil
}

// RSQSweep is the DESIGN.md §7 ablation: REESE average IPC as a function
// of R-stream Queue size, exposing the paper's "appropriate length"
// sensitivity (§4.3).
func RSQSweep(sizes []int, opt Options) (string, map[int]float64, error) {
	opt = opt.normalize()
	out := make(map[int]float64, len(sizes))
	t := stats.NewTable("Ablation: R-stream Queue size vs average IPC (starting config)",
		"rsq size", "avg IPC", "gap vs baseline %")
	baseAvg, err := averageIPC(config.Starting(), opt)
	if err != nil {
		return "", nil, err
	}
	for _, size := range sizes {
		avg, err := averageIPC(config.Starting().WithReese().WithRSQ(size), opt)
		if err != nil {
			return "", nil, err
		}
		out[size] = avg
		t.AddRow(fmt.Sprint(size), fmt.Sprintf("%.3f", avg),
			fmt.Sprintf("%.1f", stats.PercentDelta(baseAvg, avg)))
	}
	return t.String(), out, nil
}

// PartialReexecSweep is the paper's §7 future-work experiment:
// re-execute only one in every n instructions, trading coverage for
// speed. Coverage is measured with randomly-placed faults (a periodic
// injector would alias with the deterministic skip pattern and report
// all-or-nothing coverage).
func PartialReexecSweep(everies []int, opt Options) (string, error) {
	opt = opt.normalize()
	t := stats.NewTable("Ablation: partial re-execution (paper §7 future work)",
		"re-execute 1/N", "avg IPC", "gap vs baseline %", "coverage of injected faults")
	baseAvg, err := averageIPC(config.Starting(), opt)
	if err != nil {
		return "", err
	}
	for _, n := range everies {
		cfg := config.Starting().WithReese().WithPartialReexec(n)
		avg, err := averageIPC(cfg, opt)
		if err != nil {
			return "", err
		}
		coverage, err := randomFaultCoverage(cfg, "gcc", opt)
		if err != nil {
			return "", err
		}
		t.AddRow(fmt.Sprintf("1/%d", n), fmt.Sprintf("%.3f", avg),
			fmt.Sprintf("%.1f", stats.PercentDelta(baseAvg, avg)),
			fmt.Sprintf("%.0f%%", coverage*100))
	}
	return t.String(), nil
}

// randomFaultCoverage injects randomly-placed faults (roughly one per
// 2000 instructions) and returns the detected fraction.
func randomFaultCoverage(cfg config.Machine, workloadName string, opt Options) (float64, error) {
	spec, ok := workload.ByName(workloadName)
	if !ok {
		return 0, fmt.Errorf("unknown workload %q", workloadName)
	}
	prog, err := spec.Build(spec.DefaultIters * 2)
	if err != nil {
		return 0, err
	}
	inj := fault.NewRandom(1<<32/2000, 0xFEED)
	cpu, err := pipeline.New(cfg, prog, inj)
	if err != nil {
		return 0, err
	}
	res, err := cpu.Run(opt.Insts)
	if err != nil {
		return 0, err
	}
	if res.FaultsInjected == 0 {
		return 0, nil
	}
	return float64(res.FaultsDetected) / float64(res.FaultsInjected), nil
}

// IdleCapacity measures the §4.1 premise: the fraction of issue slots
// and functional units a baseline machine leaves idle.
func IdleCapacity(opt Options) (string, error) {
	opt = opt.normalize()
	t := stats.NewTable("Idle capacity on the baseline (paper §4.1 premise)",
		"bench", "IPC", "of width", "ALU util", "Mult util", "MemPort util")
	for _, name := range workload.Names() {
		res, err := runOne(config.Starting(), name, opt)
		if err != nil {
			return "", err
		}
		t.AddRow(name,
			fmt.Sprintf("%.3f", res.IPC),
			fmt.Sprintf("%.0f%%", res.IPC/float64(config.Starting().Width)*100),
			fmt.Sprintf("%.0f%%", res.ALUUtil*100),
			fmt.Sprintf("%.0f%%", res.MultUtil*100),
			fmt.Sprintf("%.0f%%", res.MemPortUtil*100))
	}
	return t.String(), nil
}

// BitGridResult is one cell of a bit-position injection grid.
type BitGridResult struct {
	Bit      uint8
	Detected bool
	Latency  uint64
	// NotFired marks a cell whose injection never happened — the
	// injection point lay beyond the instructions the run committed — so
	// "not detected" would be meaningless.
	NotFired bool
}

// BitGrid injects one fault per bit position (0-31) at a fixed point in
// the workload and reports detection per position — demonstrating the
// comparator's single-bit completeness on real pipeline timing rather
// than in unit isolation.
func BitGrid(cfg config.Machine, workloadName string, atSeq uint64, opt Options) ([]BitGridResult, error) {
	opt = opt.normalize()
	spec, ok := workload.ByName(workloadName)
	if !ok {
		return nil, fmt.Errorf("unknown workload %q", workloadName)
	}
	out := make([]BitGridResult, 32)
	err := forEach(32, opt.Parallel, func(i int) error {
		bit := uint8(i)
		prog, err := spec.Build(spec.DefaultIters)
		if err != nil {
			return err
		}
		inj := &fault.AtSeq{Seq: atSeq, Bit: bit}
		cpu, err := pipeline.New(cfg, prog, inj)
		if err != nil {
			return err
		}
		res, err := cpu.Run(atSeq + 20_000)
		if err != nil {
			return err
		}
		cell := BitGridResult{Bit: bit}
		if !inj.Fired() {
			// The program ended before the injection point: there is no
			// fault to detect, and reporting a missed detection would be
			// a lie.
			cell.NotFired = true
		} else if res.FaultsDetected == 1 {
			cell.Detected = true
			cell.Latency = uint64(res.DetectionLatencyMean)
		}
		out[i] = cell
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// BitGridTable renders the grid.
func BitGridTable(grid []BitGridResult) string {
	t := stats.NewTable("Fault grid: one bit flip per position (detection + latency)",
		"bit", "detected", "latency (cycles)")
	for _, c := range grid {
		det := "no"
		lat := "-"
		switch {
		case c.NotFired:
			det = "not fired"
		case c.Detected:
			det = "yes"
			lat = fmt.Sprint(c.Latency)
		}
		t.AddRow(fmt.Sprint(c.Bit), det, lat)
	}
	return t.String()
}
