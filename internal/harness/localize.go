package harness

// Symptom-based fault localization: given only what an operator could
// observe about a failed run — which detector fired, whether the
// machine hung, how the final memory image differs from the reference,
// and what the program's own self-checks reported — guess which
// physical plane the fault struck: "ram", "cache", or "pipeline". Each
// non-masked trial's guess is scored against the injected structure's
// ground-truth level group (fault.Struct.LevelGroup), and campaigns
// report the accuracy per level with Wilson intervals.

import "encoding/binary"

// symptoms is everything the classifier may look at. Nothing in here
// identifies the injected structure — that is the ground truth being
// guessed.
type symptoms struct {
	// eccCorrected/eccDetected: the L2 SECDED logic reported a
	// corrected or detected-uncorrectable event.
	eccCorrected bool
	eccDetected  bool
	// detections is the REESE comparator's mismatch count.
	detections uint64
	// hanged reports the watchdog expired.
	hanged bool
	// diffWords counts 32-bit words where the trial's final memory
	// differs from the golden image; diffLo/diffHi bound their
	// addresses. Zero words when the trial hung or spliced (no
	// comparable final image — the other symptoms decide).
	diffWords      int
	diffLo, diffHi uint32
}

// localize is the decision tree. The heuristics lean on fault physics:
// an ECC event can only come from the protected array; REESE watches
// the execution pipeline, so its comparator firing (or the machine
// wedging) points inside the core; a single corrupted word with no
// cache-line structure looks like a RAM strike; a small cluster of
// corrupted words confined to one line's span looks like a cache-line
// casualty (lost or misdirected write-back); damage the program's own
// verify sweep saw but that healed from memory (a transiently wrong
// line) also points at the cache; anything wide or incoherent is
// treated as pipeline wreckage (a wild store stream or corrupted
// control flow).
func localize(s symptoms, goldenOut, trialOut []byte) string {
	switch {
	case s.eccCorrected || s.eccDetected:
		return "cache"
	case s.detections > 0:
		return "pipeline"
	case s.hanged:
		return "pipeline"
	case s.diffWords == 1:
		return "ram"
	case s.diffWords >= 2 && s.diffWords <= 16 && s.diffHi-s.diffLo < 64:
		return "cache"
	case s.diffWords == 0:
		if c, ok := prbsMaxMismatch(goldenOut, trialOut); ok && c >= 1 && c <= 16 {
			return "cache"
		}
		return "pipeline"
	}
	return "pipeline"
}

// prbsMagic mirrors workload/prbs.go: the marker word self-checking
// workloads emit first, followed by three 16-byte verify-pass records
// (mismatch count, first offset, last offset, xor).
const prbsMagic = 0x50524253

// prbsMaxMismatch parses PRBS self-check records out of the trial
// output and returns the largest per-pass mismatch count. ok is false
// when either output lacks the PRBS marker (a non-PRBS workload, or a
// run that died before emitting it).
func prbsMaxMismatch(goldenOut, trialOut []byte) (uint32, bool) {
	const recBytes = 4 + 3*16
	if len(goldenOut) < recBytes || len(trialOut) < recBytes {
		return 0, false
	}
	if binary.LittleEndian.Uint32(goldenOut) != prbsMagic ||
		binary.LittleEndian.Uint32(trialOut) != prbsMagic {
		return 0, false
	}
	var max uint32
	for pass := 0; pass < 3; pass++ {
		if c := binary.LittleEndian.Uint32(trialOut[4+pass*16:]); c > max {
			max = c
		}
	}
	return max, true
}
