package fault

import (
	"testing"
	"testing/quick"

	"reese/internal/emu"
	"reese/internal/isa"
)

func TestNoneNeverFires(t *testing.T) {
	var n None
	for i := uint64(0); i < 1000; i++ {
		if _, ok := n.Decide(i, emu.Trace{}); ok {
			t.Fatal("None injected")
		}
	}
}

func TestAtSeqFiresExactlyOnce(t *testing.T) {
	a := &AtSeq{Seq: 42, Bit: 5}
	fired := 0
	for i := uint64(0); i < 100; i++ {
		if inj, ok := a.Decide(i, emu.Trace{}); ok {
			fired++
			if i != 42 {
				t.Errorf("fired at %d", i)
			}
			if inj.Bit != 5 {
				t.Errorf("bit = %d", inj.Bit)
			}
		}
	}
	if fired != 1 || !a.Fired() {
		t.Errorf("fired %d times", fired)
	}
	// Even if seq 42 repeats (replay), it must not re-fire.
	if _, ok := a.Decide(42, emu.Trace{}); ok {
		t.Error("re-fired on replay")
	}
}

func TestWindowFiresExactlyOnceInsideWindow(t *testing.T) {
	for seed := uint64(1); seed <= 50; seed++ {
		w := NewWindow(1000, 2000, seed)
		if w.Seq() < 1000 || w.Seq() >= 2000 {
			t.Fatalf("seed %d: chose seq %d outside [1000,2000)", seed, w.Seq())
		}
		fired := 0
		for i := uint64(0); i < 3000; i++ {
			if inj, ok := w.Decide(i, emu.Trace{}); ok {
				fired++
				if i != w.Seq() {
					t.Errorf("seed %d: fired at %d, chose %d", seed, i, w.Seq())
				}
				if inj.Bit > 31 {
					t.Errorf("seed %d: bit %d out of range", seed, inj.Bit)
				}
			}
		}
		if fired != 1 || !w.Fired() {
			t.Fatalf("seed %d: fired %d times", seed, fired)
		}
		// A replay of the chosen sequence number (recovery re-fetch) must
		// not re-inject.
		if _, ok := w.Decide(w.Seq(), emu.Trace{}); ok {
			t.Fatalf("seed %d: re-fired on replayed seq", seed)
		}
	}
}

func TestWindowDeterministicAndSpread(t *testing.T) {
	if a, b := NewWindow(0, 1<<20, 7), NewWindow(0, 1<<20, 7); a.Seq() != b.Seq() || a.Bit != b.Bit {
		t.Error("same seed must choose the same (seq, bit)")
	}
	// Different seeds should not collapse onto one target.
	seen := map[uint64]bool{}
	for seed := uint64(1); seed <= 32; seed++ {
		seen[NewWindow(0, 1<<20, seed).Seq()] = true
	}
	if len(seen) < 16 {
		t.Errorf("32 seeds chose only %d distinct sequence numbers", len(seen))
	}
	// Degenerate window still behaves.
	w := NewWindow(5, 5, 3)
	if w.Seq() != 5 {
		t.Errorf("empty window chose %d, want clamped 5", w.Seq())
	}
}

func TestPeriodic(t *testing.T) {
	p := &Periodic{Interval: 10, Start: 5}
	var fires []uint64
	for i := uint64(0); i < 50; i++ {
		if _, ok := p.Decide(i, emu.Trace{}); ok {
			fires = append(fires, i)
		}
	}
	want := []uint64{5, 15, 25, 35, 45}
	if len(fires) != len(want) {
		t.Fatalf("fires = %v", fires)
	}
	for i := range want {
		if fires[i] != want[i] {
			t.Errorf("fires = %v, want %v", fires, want)
		}
	}
	if p.Injected() != 5 {
		t.Errorf("injected = %d", p.Injected())
	}
	zero := &Periodic{}
	if _, ok := zero.Decide(0, emu.Trace{}); ok {
		t.Error("zero interval must never fire")
	}
}

func TestRandomDeterministic(t *testing.T) {
	r1 := NewRandom(1<<28, 7)
	r2 := NewRandom(1<<28, 7)
	for i := uint64(0); i < 2000; i++ {
		_, ok1 := r1.Decide(i, emu.Trace{})
		_, ok2 := r2.Decide(i, emu.Trace{})
		if ok1 != ok2 {
			t.Fatal("same seed must give same decisions")
		}
	}
	if r1.Injected() == 0 {
		t.Error("probability 1/16 over 2000 trials should fire")
	}
	if r1.Injected() != r2.Injected() {
		t.Error("counts differ")
	}
}

func TestRandomRateRoughlyCorrect(t *testing.T) {
	// p = 1/8 per instruction.
	r := NewRandom(1<<29, 123)
	n := uint64(40000)
	for i := uint64(0); i < n; i++ {
		r.Decide(i, emu.Trace{})
	}
	rate := float64(r.Injected()) / float64(n)
	if rate < 0.10 || rate > 0.15 {
		t.Errorf("rate = %.4f, want ~0.125", rate)
	}
}

func TestApplyTargetsResultForALU(t *testing.T) {
	tr := emu.Trace{
		Inst:      isa.Instruction{Op: isa.OpAdd},
		Result:    100,
		NextPC:    200,
		HasResult: true,
	}
	res, next, addr, sv := Apply(Injection{Bit: 3}, tr)
	if res != 100^8 {
		t.Errorf("result = %d", res)
	}
	if next != 200 || addr != 0 || sv != 0 {
		t.Error("other fields must be untouched")
	}
}

func TestApplyTargetsStoreValue(t *testing.T) {
	tr := emu.Trace{
		Inst:       isa.Instruction{Op: isa.OpSw},
		StoreValue: 7,
		Addr:       0x100,
	}
	_, _, addr, sv := Apply(Injection{Bit: 0}, tr)
	if sv != 6 {
		t.Errorf("store value = %d", sv)
	}
	if addr != 0x100 {
		t.Error("address untouched for result-target faults")
	}
}

func TestApplyTargetsAddress(t *testing.T) {
	tr := emu.Trace{
		Inst: isa.Instruction{Op: isa.OpLw},
		Addr: 0x100,
	}
	_, _, addr, _ := Apply(Injection{Bit: 2, Struct: StructLSQAddr}, tr)
	if addr != 0x104 {
		t.Errorf("addr = %#x", addr)
	}
}

func TestApplyTargetsBranchNextPC(t *testing.T) {
	tr := emu.Trace{
		Inst:   isa.Instruction{Op: isa.OpBeq},
		NextPC: 0x200,
		Taken:  true,
	}
	_, next, _, _ := Apply(Injection{Bit: 4}, tr)
	if next != 0x200^16 {
		t.Errorf("nextPC = %#x", next)
	}
}

func TestApplyJalFaultsLinkValue(t *testing.T) {
	tr := emu.Trace{
		Inst:      isa.Instruction{Op: isa.OpJal},
		NextPC:    0x300,
		Result:    0x104,
		HasResult: true,
	}
	res, next, _, _ := Apply(Injection{Bit: 1}, tr)
	if res != 0x104^2 {
		t.Errorf("link = %#x", res)
	}
	if next != 0x300 {
		t.Error("jal target untouched (result carries the fault)")
	}
}

// Property: Apply flips exactly one bit across the four outcome fields.
func TestApplyFlipsExactlyOneBit(t *testing.T) {
	popcount := func(x uint32) int {
		n := 0
		for x != 0 {
			x &= x - 1
			n++
		}
		return n
	}
	ops := []isa.Op{isa.OpAdd, isa.OpLw, isa.OpSw, isa.OpBeq, isa.OpJ, isa.OpJal, isa.OpHalt}
	f := func(opIdx, bit uint8, result, next, addr, sv uint32, tgt bool) bool {
		op := ops[int(opIdx)%len(ops)]
		tr := emu.Trace{
			Inst:       isa.Instruction{Op: op},
			Result:     result,
			NextPC:     next,
			Addr:       addr,
			StoreValue: sv,
			HasResult:  op.WritesRd(),
			Taken:      op.IsControl(),
		}
		inj := Injection{Bit: bit % 32}
		if tgt && op.IsMem() {
			inj.Struct = StructLSQAddr
		}
		r2, n2, a2, s2 := Apply(inj, tr)
		flips := popcount(r2^tr.Result) + popcount(n2^tr.NextPC) + popcount(a2^tr.Addr) + popcount(s2^tr.StoreValue)
		return flips == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 4000}); err != nil {
		t.Error(err)
	}
}
