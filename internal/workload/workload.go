// Package workload provides the six benchmark programs the REESE paper's
// evaluation runs (Table 2: gcc, go, ijpeg, li, perl, vortex from
// SPEC95int). The originals are not redistributable and the PISA
// toolchain is gone, so each is a synthetic SS32 assembly program built
// to match the behavioural signature that drives REESE's results: branch
// density and predictability, load/store fraction, multiply/divide
// usage, and pointer-chasing versus streaming access patterns
// (see DESIGN.md §4).
//
// Programs are parameterised by an outer iteration count and assembled
// at build time; data segments are generated from a seeded PRNG so runs
// are deterministic.
package workload

import (
	"fmt"
	"strings"
	"sync"

	"reese/internal/program"
)

// Spec describes one benchmark program.
type Spec struct {
	// Name matches the paper's Table 2 benchmark name.
	Name string
	// Input names the synthetic input, echoing Table 2's input column.
	Input string
	// Signature summarises the behaviour modelled.
	Signature string
	// DefaultIters is the outer iteration count used when 0 is passed
	// to Build; it yields roughly 200-400k dynamic instructions.
	DefaultIters int
	// build assembles the program.
	build func(iters int) (*program.Program, error)
}

// buildCache memoizes assembled programs by (name, iters). Safe because
// the build field is unexported — every Spec with a given name comes
// from this package's tables and assembles identical source — and
// because a built Program is immutable: running it never mutates it
// (LoadMemory copies text+data into a fresh per-run Memory, and the
// decode cache is append-only), so one shared *program.Program can back
// any number of concurrent simulations.
var buildCache sync.Map // buildKey -> *buildEntry

type buildKey struct {
	name  string
	iters int
}

type buildEntry struct {
	once sync.Once
	prog *program.Program
	err  error
}

// Build assembles the workload with the given outer iteration count
// (0 selects DefaultIters). Results are memoized per (name, iters):
// repeated builds — one per simulation in a sweep — return the same
// immutable *program.Program. Use Rebuild to force a fresh assembly.
func (s Spec) Build(iters int) (*program.Program, error) {
	if iters <= 0 {
		iters = s.DefaultIters
	}
	v, _ := buildCache.LoadOrStore(buildKey{s.Name, iters}, &buildEntry{})
	e := v.(*buildEntry)
	e.once.Do(func() {
		e.prog, e.err = s.build(iters)
		if e.err == nil {
			// Pre-decode while still single-threaded so concurrent
			// simulations share one decode table from the start.
			e.prog.Decoded()
		}
	})
	return e.prog, e.err
}

// Rebuild assembles the workload from scratch, bypassing the build
// cache. Benchmarks measuring assembly cost (and anything that wants a
// private Program) use this.
func (s Spec) Rebuild(iters int) (*program.Program, error) {
	if iters <= 0 {
		iters = s.DefaultIters
	}
	return s.build(iters)
}

// MustBuild is Build panicking on error (the sources are static).
func (s Spec) MustBuild(iters int) *program.Program {
	p, err := s.Build(iters)
	if err != nil {
		panic(fmt.Sprintf("workload %s: %v", s.Name, err))
	}
	return p
}

// All returns the six benchmarks in the paper's order.
func All() []Spec {
	return []Spec{
		{
			Name:         "gcc",
			Input:        "stmt-protoize.i (synthetic: token hashing)",
			Signature:    "irregular control flow, hash-table probing, hard branches",
			DefaultIters: 120,
			build:        buildGcc,
		},
		{
			Name:         "go",
			Input:        "train (synthetic: board evaluation)",
			Signature:    "2-D board scans, dense conditionals, integer ALU heavy",
			DefaultIters: 40,
			build:        buildGo,
		},
		{
			Name:         "ijpeg",
			Input:        "train (synthetic: 8x8 integer DCT)",
			Signature:    "multiply-accumulate kernels, streaming arrays, easy branches",
			DefaultIters: 110,
			build:        buildIjpeg,
		},
		{
			Name:         "li",
			Input:        "train (synthetic: cons-cell traversal)",
			Signature:    "linked-list pointer chasing, tag dispatch, load dominated",
			DefaultIters: 160,
			build:        buildLi,
		},
		{
			Name:         "perl",
			Input:        "scrabbl.pl (synthetic: text scan + hashing)",
			Signature:    "byte scanning, character classification, bucket stores",
			DefaultIters: 70,
			build:        buildPerl,
		},
		{
			Name:         "vortex",
			Input:        "train (synthetic: record store shuffling)",
			Signature:    "object copying between regions, very load/store heavy",
			DefaultIters: 120,
			build:        buildVortex,
		},
	}
}

// Extras returns additional workloads beyond the paper's Table 2
// roster: compress and m88ksim (the two SPEC95int programs the paper's
// evaluation omits), fpmix (a floating-point kernel exercising the
// FP datapaths Table 1 provisions but the integer-only evaluation
// leaves idle), and prbs (a memory-resident self-checking pattern for
// memory-hierarchy fault campaigns).
func Extras() []Spec {
	return []Spec{
		{
			Name:         "prbs",
			Input:        "synthetic: PRBS fill + 3 verify sweeps",
			Signature:    "streaming stores, then read-only verify passes over a resident region",
			DefaultIters: 20,
			build:        buildPRBS,
		},
		{
			Name:         "compress",
			Input:        "synthetic: LZW dictionary compression",
			Signature:    "hash probing, byte loads, shift-heavy bit packing",
			DefaultIters: 40,
			build:        buildCompress,
		},
		{
			Name:         "m88ksim",
			Input:        "synthetic: guest-CPU interpreter",
			Signature:    "jump-table dispatch (indirect jumps), interpreter state in memory",
			DefaultIters: 50,
			build:        buildM88ksim,
		},
		{
			Name:         "fpmix",
			Input:        "synthetic: SAXPY + Horner (FP extension demo)",
			Signature:    "FP multiply-add chains, FP loads/stores, divides",
			DefaultIters: 450,
			build:        buildFpmix,
		},
	}
}

// ByName returns the spec with the given name, searching the Table 2
// roster and the extras.
func ByName(name string) (Spec, bool) {
	for _, s := range All() {
		if s.Name == name {
			return s, true
		}
	}
	for _, s := range Extras() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// Names returns the six benchmark names in paper order.
func Names() []string {
	specs := All()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return names
}

// prng is a small deterministic generator for data-segment contents.
type prng struct{ state uint64 }

func newPRNG(seed uint64) *prng {
	if seed == 0 {
		seed = 0x853c49e6748fea9b
	}
	return &prng{state: seed}
}

func (p *prng) next() uint32 {
	p.state = p.state*6364136223846793005 + 1442695040888963407
	return uint32(p.state >> 33)
}

// byteList renders n pseudo-random bytes as .byte directives, 16 per
// line, each in [lo, hi].
func byteList(g *prng, n int, lo, hi uint32) string {
	var b strings.Builder
	span := hi - lo + 1
	for i := 0; i < n; i++ {
		if i%16 == 0 {
			if i > 0 {
				b.WriteByte('\n')
			}
			b.WriteString("\t.byte ")
		} else {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d", lo+g.next()%span)
	}
	b.WriteByte('\n')
	return b.String()
}

// wordList renders n pseudo-random words as .word directives.
func wordList(g *prng, n int, mod uint32) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		if i%8 == 0 {
			if i > 0 {
				b.WriteByte('\n')
			}
			b.WriteString("\t.word ")
		} else {
			b.WriteString(", ")
		}
		v := g.next()
		if mod != 0 {
			v %= mod
		}
		fmt.Fprintf(&b, "%d", v)
	}
	b.WriteByte('\n')
	return b.String()
}

// wordListRange renders n pseudo-random words in [lo, hi] as .word
// directives.
func wordListRange(g *prng, n int, lo, hi uint32) string {
	var b strings.Builder
	span := hi - lo + 1
	for i := 0; i < n; i++ {
		if i%8 == 0 {
			if i > 0 {
				b.WriteByte('\n')
			}
			b.WriteString("\t.word ")
		} else {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d", lo+g.next()%span)
	}
	b.WriteByte('\n')
	return b.String()
}

// emitChecksum is the common epilogue: emit the 4 checksum bytes held in
// the given register, then halt.
func emitChecksum(reg string) string {
	return fmt.Sprintf(`
	; emit checksum (little-endian) and stop
	out %[1]s
	srli r15, %[1]s, 8
	out r15
	srli r15, %[1]s, 16
	out r15
	srli r15, %[1]s, 24
	out r15
	halt
`, reg)
}
