package workload

import (
	"fmt"
	"strings"

	"reese/internal/asm"
	"reese/internal/program"
)

// buildLi models li (the xlisp interpreter): traversal of cons cells
// with tag dispatch. A pool of 16-byte cells {tag+value, cdr, car, pad}
// forms several interleaved lists; the interpreter loop chases cdr
// pointers, dereferences the car (a dependent load into the pool), and
// dispatches on the tag (number, symbol, pair). Dependent loads dominate
// the mix — the pointer-chasing, cache-latency-bound profile of a Lisp
// system.
func buildLi(iters int) (*program.Program, error) {
	const (
		cells = 256 // cons pool size (cell 0 is nil and never linked)
		lists = 8   // number of interleaved lists
	)
	g := newPRNG(0x115B)
	var pool strings.Builder
	for i := 0; i < cells; i++ {
		tag := g.next() % 3
		val := g.next() % 1000
		cdr := 0
		if i > 0 && i+lists < cells {
			cdr = (i + lists) * 16
		}
		car := int(1+g.next()%(cells-1)) * 16
		fmt.Fprintf(&pool, "\t.word %d, %d, %d, 0\n", tag*1024+val, cdr, car)
	}
	src := fmt.Sprintf(`
	; li stand-in: cons-cell list traversal with tag dispatch.
main:
	li r20, %d            ; outer iterations
	la r21, pool
	li r23, 0             ; checksum (the "accumulator")
outer:
	li r10, 1             ; list pair number (walk lists l and l+1 together)
list_loop:
	slli r11, r10, 4      ; list A head byte offset
	addi r13, r10, 1
	slli r13, r13, 4      ; list B head byte offset
walk:
	; two independent cursors give the interpreter loop its ILP
	add r12, r11, r21     ; r12 = &cellA
	add r14, r13, r21     ; r14 = &cellB
	lw r2, 0(r12)         ; A: tag*1024+value
	lw r16, 0(r14)        ; B: tag*1024+value
	lw r11, 4(r12)        ; A: cdr byte offset (0 = nil)
	lw r13, 4(r14)        ; B: cdr
	lw r5, 8(r12)         ; A: car byte offset
	lw r17, 8(r14)        ; B: car
	add r6, r5, r21
	add r18, r17, r21
	lw r4, 0(r6)          ; A: dependent load through car
	lw r19, 0(r18)        ; B: dependent load through car
	andi r4, r4, 1023
	andi r19, r19, 1023
	; dispatch on A's tag
	srli r3, r2, 10
	beq r3, r0, is_number
	addi r7, r3, -1
	beq r7, r0, is_symbol
	add r23, r23, r5      ; pair: mix in the car pointer itself
	j dispatch_b
is_number:
	add r23, r23, r4
	j dispatch_b
is_symbol:
	xor r23, r23, r4
dispatch_b:
	; dispatch on B's tag
	srli r3, r16, 10
	beq r3, r0, is_number_b
	addi r7, r3, -1
	beq r7, r0, is_symbol_b
	add r23, r23, r17
	j dispatched
is_number_b:
	add r23, r23, r19
	j dispatched
is_symbol_b:
	xor r23, r23, r19
dispatched:
	; continue while either list has cells; a finished list parks on
	; cell 0 (nil), whose cdr is 0, so re-walking it is harmless
	or r7, r11, r13
	bne r7, r0, walk
	addi r10, r10, 2
	slti r1, r10, %d
	bne r1, r0, list_loop
	addi r20, r20, -1
	bne r20, r0, outer
%s
.data
pool:
%s`, iters, lists+1, emitChecksum("r23"), pool.String())
	return asm.Assemble("li", src)
}
