package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"reese/internal/config"
	"reese/internal/harness"
)

// readyz must track the drain state: ready while serving, 503 with a
// Retry-After once shutdown begins — the signal that tells a cluster
// coordinator to stop assigning shards here.
func TestReadyzTracksDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Ready         bool  `json:"ready"`
		QueueDepth    int   `json:"queue_depth"`
		QueueCapacity int   `json:"queue_capacity"`
		ReplayBacklog int64 `json:"replay_backlog"`
	}
	if jerr := json.NewDecoder(resp.Body).Decode(&body); jerr != nil {
		t.Fatal(jerr)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !body.Ready {
		t.Fatalf("fresh server not ready: status %d, body %+v", resp.StatusCode, body)
	}
	if body.QueueCapacity == 0 {
		t.Error("readyz reports no queue capacity")
	}

	s.jobs.mu.Lock()
	s.jobs.draining = true
	s.jobs.mu.Unlock()
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining server answered readyz %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("draining readyz carries no Retry-After")
	}
	s.jobs.mu.Lock()
	s.jobs.draining = false
	s.jobs.mu.Unlock()
}

// The batch endpoint must accept several shards in one round trip, run
// each as a job, and produce payloads that merge to the byte-identical
// single-process report — the worker half of the cluster contract.
func TestBatchShardsMergeExactly(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	machine := config.Starting().WithReese()
	const injections = 30

	shard := func(off, count int) ShardSpec {
		return ShardSpec{
			Workload:    "li",
			Machine:     &machine,
			Injections:  injections,
			Seed:        5,
			ShardOffset: off,
			ShardCount:  count,
		}
	}
	raw, _ := json.Marshal(BatchRequest{Shards: []ShardSpec{shard(0, 10), shard(10, 20)}})
	resp, err := http.Post(ts.URL+"/v1/faults/batch", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		t.Fatalf("batch submit: %d: %s", resp.StatusCode, data)
	}
	var batch BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&batch); err != nil {
		t.Fatal(err)
	}
	if len(batch.Items) != 2 {
		t.Fatalf("batch answered %d items, want 2", len(batch.Items))
	}

	var reports []*harness.CampaignReport
	for i, item := range batch.Items {
		if item.Error != "" {
			t.Fatalf("shard %d rejected: %s", i, item.Error)
		}
		v := awaitJob(t, ts.URL, item.Job.ID)
		if v.State != StateDone {
			t.Fatalf("shard %d job %s ended %s: %s", i, v.ID, v.State, v.Error)
		}
		var p ShardPayload
		if err := json.Unmarshal(v.Result, &p); err != nil {
			t.Fatal(err)
		}
		rep := p.Report
		rep.Trials = p.Trials
		reports = append(reports, &rep)
	}
	merged, err := harness.MergeReports(reports)
	if err != nil {
		t.Fatal(err)
	}
	single, err := harness.Campaign(harness.CampaignSpec{
		Workload:   "li",
		Machine:    machine,
		Injections: injections,
		Seed:       5,
	}, harness.Options{Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	strip := func(r *harness.CampaignReport) *harness.CampaignReport {
		c := *r
		c.WallSeconds = 0
		c.InjectionsPerSec = 0
		return &c
	}
	got, _ := json.Marshal(strip(merged))
	want, _ := json.Marshal(strip(single))
	if !bytes.Equal(got, want) {
		t.Errorf("merged batch shards differ from single-process:\n got %s\nwant %s", got, want)
	}

	// Resubmitting a shard must be answered from the result cache — the
	// idempotency that makes coordinator reassignment double-count-proof.
	raw, _ = json.Marshal(BatchRequest{Shards: []ShardSpec{shard(0, 10)}})
	resp2, err := http.Post(ts.URL+"/v1/faults/batch", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var again BatchResponse
	if err := json.NewDecoder(resp2.Body).Decode(&again); err != nil {
		t.Fatal(err)
	}
	if len(again.Items) != 1 || again.Items[0].Job == nil {
		t.Fatalf("resubmitted shard rejected: %+v", again.Items)
	}
	if !again.Items[0].Job.Cached || again.Items[0].Job.State != StateDone {
		t.Errorf("resubmitted shard not served from cache: %+v", again.Items[0].Job)
	}
}

// A malformed shard must be rejected per-item, not fail the batch.
func TestBatchRejectsBadShardPerItem(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	machine := config.Starting().WithReese()
	good := ShardSpec{Workload: "li", Machine: &machine, Injections: 10, Seed: 1, ShardOffset: 0, ShardCount: 10}
	bad := good
	bad.ShardOffset = 8
	bad.ShardCount = 5 // [8,13) overruns the 10-trial plan
	raw, _ := json.Marshal(BatchRequest{Shards: []ShardSpec{bad, good}})
	resp, err := http.Post(ts.URL+"/v1/faults/batch", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d, want 200 with per-item errors", resp.StatusCode)
	}
	var batch BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&batch); err != nil {
		t.Fatal(err)
	}
	if batch.Items[0].Error == "" || !strings.Contains(batch.Items[0].Error, "outside") {
		t.Errorf("bad shard accepted: %+v", batch.Items[0])
	}
	if batch.Items[1].Job == nil {
		t.Errorf("good shard rejected alongside the bad one: %+v", batch.Items[1])
	}
	if batch.Items[1].Job != nil {
		awaitJob(t, ts.URL, batch.Items[1].Job.ID)
	}
}

// awaitJob long-polls a job to a terminal state.
func awaitJob(t *testing.T, base, id string) JobView {
	t.Helper()
	for i := 0; i < 120; i++ {
		resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s?wait=5s", base, id))
		if err != nil {
			t.Fatal(err)
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		var v JobView
		if err := json.Unmarshal(data, &v); err != nil {
			t.Fatalf("poll %s: %v: %s", id, err, data)
		}
		if v.State.terminal() {
			return v
		}
	}
	t.Fatalf("job %s never finished", id)
	return JobView{}
}
