package server

// Self-healing asynchronous job machinery. Every simulation request
// becomes a Job that moves queued → running → {done, failed, canceled},
// with a retrying detour between failed attempts. A bounded channel is
// the queue (submits fail fast with 503 + Retry-After when it is full —
// backpressure instead of unbounded memory growth) and a fixed worker
// pool drains it, mirroring harness's pool discipline.
//
// The failure story, layer by layer:
//
//   - Containment: each attempt runs under recover(); a panic becomes a
//     structured failure (stack captured in the attempt record) instead
//     of a process crash.
//   - Deadlines: every attempt is bounded by a context deadline —
//     request-supplied via ?timeout=, capped by Config.MaxTimeout,
//     defaulting to Config.JobTimeout.
//   - Watchdog: a progress heartbeat (committed instructions sampled
//     from the running simulation via pipeline.CPU.SetProgress) detects
//     hung attempts and cancels them as retryable.
//   - Retry: transient failures (panic, deadline, watchdog kill) are
//     retried up to Config.MaxRetries times with exponential backoff
//     and jitter; the attempt history, last cause, and next-retry time
//     are visible in GET /v1/jobs/{id}.
//   - Durability: accepted submits and every state transition are
//     appended to the write-ahead journal (journal.go) before they are
//     acknowledged, so a restart replays unfinished jobs.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"reese/internal/obs"
)

// JobState is a job's position in its lifecycle.
type JobState string

// Job lifecycle states.
const (
	StateQueued   JobState = "queued"
	StateRunning  JobState = "running"
	StateRetrying JobState = "retrying"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
)

// terminal reports whether a job in this state will never change again.
func (s JobState) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// jobOutput is what a job's runner produces: the result payload served
// from GET /v1/jobs/{id}, plus the committed-instruction count feeding
// the sim-throughput counter.
type jobOutput struct {
	payload json.RawMessage
	insts   uint64
}

// runFunc executes a job attempt. progress must receive committed-
// instruction deltas so the watchdog can tell slow from hung.
type runFunc func(ctx context.Context, progress *atomic.Uint64) (jobOutput, error)

// maxStackBytes bounds the panic stack stored per attempt record.
const maxStackBytes = 8 << 10

// Job is one queued simulation request.
type Job struct {
	ID   string
	Kind string

	runner *jobRunner
	// run executes one attempt of the simulation.
	run runFunc
	// cacheKey is the request's content address ("" = uncacheable).
	cacheKey string
	// rawReq is the canonical (normalized) request, journaled at submit
	// so a restarted server can rebuild run.
	rawReq json.RawMessage
	// timeout bounds each attempt; maxRetries bounds transient redos.
	timeout    time.Duration
	maxRetries int

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{} // closed when the job reaches a terminal state

	// progress accumulates committed instructions across all attempts —
	// the watchdog heartbeat, also exposed in JobView.
	progress atomic.Uint64

	mu        sync.Mutex
	state     JobState
	created   time.Time
	started   time.Time
	finished  time.Time
	cached    bool
	replayed  bool
	payload   json.RawMessage
	errMsg    string
	attempts  []AttemptView
	nextRetry time.Time
	finalized bool
	// attemptCancel aborts the in-flight attempt only (the job context
	// survives for the retry); watchdogKilled marks why.
	attemptCancel  context.CancelFunc
	watchdogKilled bool
	lastProgress   uint64
	lastProgressAt time.Time
	// spans is the job's trace: a root span covering submit→terminal
	// with a child per phase (queue-wait, each attempt, backoff, journal
	// appends). waitSpan/backoffSpan point at the currently open phase.
	// All three are guarded by mu; snapshots deep-Clone.
	spans       *obs.Span
	waitSpan    *obs.Span
	backoffSpan *obs.Span
}

// snapshot returns a consistent JobView of the current state.
func (j *Job) snapshot() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:       j.ID,
		Kind:     j.Kind,
		State:    j.state,
		Created:  j.created,
		Cached:   j.cached,
		Replayed: j.replayed,
		Error:    j.errMsg,
		Result:   j.payload,
		Attempt:  len(j.attempts),
		Progress: j.progress.Load(),
	}
	if len(j.attempts) > 0 {
		v.Attempts = append([]AttemptView(nil), j.attempts...)
		for i := len(j.attempts) - 1; i >= 0; i-- {
			if c := j.attempts[i].Cause; c != "" {
				v.LastCause = c
				break
			}
		}
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	if j.state == StateRetrying && !j.nextRetry.IsZero() {
		t := j.nextRetry
		v.NextRetry = &t
	}
	if j.spans != nil {
		v.Spans = j.spans.Clone()
	}
	return v
}

// Cancel requests cancellation: a queued job is finished immediately; a
// running attempt's context chain is cancelled and the worker records
// the terminal state when the cycle loop notices; a retrying job's
// pending retry is abandoned.
func (j *Job) Cancel() {
	j.cancel()
	j.mu.Lock()
	queued := j.state == StateQueued && !j.finalized
	j.mu.Unlock()
	if queued {
		j.runner.finalize(j, StateCanceled, context.Canceled.Error(), nil)
	}
}

// errQueueFull is returned by submit when the bounded queue is at
// capacity; handlers translate it to 503 + Retry-After.
var errQueueFull = errors.New("server: job queue full")

// errDraining is returned by submit after Shutdown began; distinct from
// errQueueFull so clients can tell backpressure from termination.
var errDraining = errors.New("server: shutting down, not accepting new jobs")

// panicError is a contained worker panic, carrying the recovered value
// and the goroutine stack for the job record.
type panicError struct {
	val   string
	stack string
}

func (e *panicError) Error() string { return "panic: " + e.val }

// runnerConfig is the jobRunner slice of the server Config, defaults
// already applied.
type runnerConfig struct {
	workers          int
	queueDepth       int
	maxJobs          int
	jobTimeout       time.Duration
	maxTimeout       time.Duration
	maxRetries       int
	retryBackoff     time.Duration
	retryBackoffMax  time.Duration
	watchdogInterval time.Duration
	watchdogStall    time.Duration
	beforeAttempt    func(ctx context.Context, jobID, kind string, attempt int)
}

// jobRunner owns the queue, the worker pool, the watchdog, the retry
// scheduler, and the job registry.
type jobRunner struct {
	queue   chan *Job
	rootCtx context.Context
	cfg     runnerConfig
	journal *journal
	log     *slog.Logger

	mu       sync.Mutex
	draining bool
	drainNow chan struct{} // closed at drain: pending retries fire immediately
	jobs     map[string]*Job
	order    []string // insertion order, for bounded retention
	nextID   atomic.Uint64
	wg       sync.WaitGroup // workers
	liveWG   sync.WaitGroup // jobs, from accepted submit to terminal state
	// pendingRetries counts retry/replay goroutines that may still place
	// a job on the queue; workers drain until it reaches zero at exit.
	pendingRetries atomic.Int64
	// replayBacklog counts journal-replayed jobs not yet back on the
	// queue; /readyz reports not-ready until it reaches zero, so a
	// cluster coordinator never assigns shards to a still-recovering
	// worker.
	replayBacklog atomic.Int64

	queued    atomic.Int64
	running   atomic.Int64
	submitted *counterFamily
	completed *counterFamily
	simInsts  *Counter
	fail      *failureCounters
	// queueWait observes how long each run of a job sat queued before a
	// worker picked it up; attemptSecs observes attempt wall time by
	// outcome (ok, panic, watchdog, deadline, canceled, error).
	queueWait   *Histogram
	attemptSecs *histogramFamily

	// svcEWMA tracks mean attempt seconds, feeding the Retry-After
	// estimate on 503 (load shedding with an honest hint).
	svcMu   sync.Mutex
	svcEWMA float64
}

// newJobRunner starts the worker pool and (when configured) the
// watchdog. rootCtx is the server's lifetime: cancelling it aborts
// every job and ultimately stops the workers.
func newJobRunner(rootCtx context.Context, cfg runnerConfig, jl *journal, log *slog.Logger, m *Metrics) *jobRunner {
	r := &jobRunner{
		queue:     make(chan *Job, cfg.queueDepth),
		rootCtx:   rootCtx,
		cfg:       cfg,
		journal:   jl,
		log:       log,
		drainNow:  make(chan struct{}),
		jobs:      make(map[string]*Job),
		submitted: m.CounterFamily("reese_serve_jobs_submitted_total", "Jobs accepted, by kind.", "kind"),
		completed: m.CounterFamily("reese_serve_jobs_completed_total", "Jobs finished, by kind and terminal state.", "kind", "state"),
		simInsts:  m.Counter("reese_serve_sim_insts_total", "Committed simulated instructions across all jobs (rate() of this is sim-insts/s)."),
		fail:      newFailureCounters(m),
		queueWait: m.HistogramFamily("reese_serve_job_queue_wait_seconds",
			"Time a job spent queued before a worker picked it up (per attempt cycle).", DefaultLatencyBounds).With(),
		attemptSecs: m.HistogramFamily("reese_serve_job_attempt_seconds",
			"Job attempt wall time, by outcome.", DefaultLatencyBounds, "outcome"),
	}
	m.Gauge("reese_serve_jobs_queued", "Jobs waiting in the queue.", func() float64 { return float64(r.queued.Load()) })
	m.Gauge("reese_serve_jobs_running", "Jobs currently simulating.", func() float64 { return float64(r.running.Load()) })
	r.wg.Add(cfg.workers)
	for i := 0; i < cfg.workers; i++ {
		go r.worker()
	}
	if cfg.watchdogStall > 0 {
		go r.watchdog()
	}
	return r
}

// journalAppend logs append failures instead of propagating them: a
// sick disk degrades durability, not availability.
func (r *jobRunner) journalAppend(rec journalRecord) {
	if err := r.journal.append(rec); err != nil {
		r.log.Error("journal append", "type", rec.T, "job", rec.Job, "err", err)
	}
}

// submit registers a job and enqueues it. timeout bounds each attempt
// (0 selects the config default; the cap always applies). The returned
// job is already registered under its ID and journaled.
func (r *jobRunner) submit(kind, cacheKey string, rawReq json.RawMessage, timeout time.Duration, run runFunc) (*Job, error) {
	if timeout <= 0 {
		timeout = r.cfg.jobTimeout
	}
	if timeout > r.cfg.maxTimeout {
		timeout = r.cfg.maxTimeout
	}
	j := &Job{
		ID:         fmt.Sprintf("j-%06d", r.nextID.Add(1)),
		Kind:       kind,
		runner:     r,
		run:        run,
		cacheKey:   cacheKey,
		rawReq:     rawReq,
		timeout:    timeout,
		maxRetries: r.cfg.maxRetries,
		done:       make(chan struct{}),
		state:      StateQueued,
		created:    time.Now(),
	}
	j.ctx, j.cancel = context.WithCancel(r.rootCtx)
	j.spans = obs.NewSpan("job "+kind, j.created)

	r.mu.Lock()
	if r.draining {
		r.mu.Unlock()
		j.cancel()
		return nil, errDraining
	}
	// Journal the submit before the job becomes runnable, so a start
	// record can never precede its submit in the log. The fsync happens
	// under the registry lock: throughput bows to durability here.
	jstart := time.Now()
	r.journalAppend(journalRecord{T: recSubmit, Job: j.ID, Kind: kind, Key: cacheKey,
		Req: rawReq, TimeoutMS: timeout.Milliseconds()})
	if r.journal != nil {
		j.spans.AddChild("journal-append submit", jstart, time.Now(), "")
	}
	j.waitSpan = j.spans.StartChild("queue-wait", time.Now())
	select {
	case r.queue <- j:
	default:
		r.mu.Unlock()
		// The submit record is already durable; mark the job canceled so
		// a replay does not resurrect work the client was told got 503.
		r.journalAppend(journalRecord{T: recCancel, Job: j.ID, Cause: errQueueFull.Error()})
		j.cancel()
		return nil, errQueueFull
	}
	r.liveWG.Add(1)
	r.jobs[j.ID] = j
	r.order = append(r.order, j.ID)
	r.evictLocked()
	r.mu.Unlock()

	r.queued.Add(1)
	r.submitted.With(kind).Inc()
	return j, nil
}

// complete registers an already-finished job (a cache hit): it never
// touches the queue, is immediately terminal, and is not journaled
// (there is nothing to recover).
func (r *jobRunner) complete(kind, cacheKey string, payload json.RawMessage) *Job {
	j := &Job{
		ID:        fmt.Sprintf("j-%06d", r.nextID.Add(1)),
		Kind:      kind,
		runner:    r,
		cacheKey:  cacheKey,
		cancel:    func() {},
		done:      make(chan struct{}),
		state:     StateDone,
		created:   time.Now(),
		finished:  time.Now(),
		cached:    true,
		finalized: true,
		payload:   payload,
	}
	j.spans = obs.NewSpan("job "+kind, j.created)
	j.spans.AddChild("cache-lookup", j.created, j.finished, "hit")
	j.spans.Finish(j.finished, string(StateDone))
	close(j.done)
	r.mu.Lock()
	r.jobs[j.ID] = j
	r.order = append(r.order, j.ID)
	r.evictLocked()
	r.mu.Unlock()
	r.submitted.With(kind).Inc()
	r.completed.With(kind, string(StateDone)).Inc()
	return j
}

// adoptReplayed registers a journal-replayed job. Non-terminal jobs are
// re-enqueued (the caller provides the rebuilt run); terminal jobs keep
// their journaled state — without the result payload, which is not
// persisted: an identical resubmission recomputes it deterministically.
func (r *jobRunner) adoptReplayed(rj replayedJob, run runFunc) *Job {
	j := &Job{
		ID:         rj.ID,
		Kind:       rj.Kind,
		runner:     r,
		run:        run,
		cacheKey:   rj.Key,
		rawReq:     rj.Req,
		timeout:    rj.Timeout,
		maxRetries: r.cfg.maxRetries,
		done:       make(chan struct{}),
		created:    rj.Created,
		replayed:   true,
	}
	if j.timeout <= 0 {
		j.timeout = r.cfg.jobTimeout
	}
	if rj.State.terminal() {
		j.state = rj.State
		j.errMsg = rj.Cause
		j.finished = rj.Created
		j.finalized = true
		j.cancel = func() {}
		close(j.done)
	} else {
		// Whatever the job was mid-flight — queued, running, retrying —
		// it restarts from the queue with a fresh retry budget.
		j.state = StateQueued
		j.ctx, j.cancel = context.WithCancel(r.rootCtx)
		// The pre-crash span tree is gone with the process; start a fresh
		// one marking where it came from.
		now := time.Now()
		j.spans = obs.NewSpan("job "+rj.Kind, now)
		j.spans.AddChild("journal-replay", rj.Created, now, "")
		j.waitSpan = j.spans.StartChild("queue-wait", now)
	}
	r.mu.Lock()
	if !j.state.terminal() {
		r.liveWG.Add(1)
	}
	r.jobs[j.ID] = j
	r.order = append(r.order, j.ID)
	r.mu.Unlock()
	return j
}

// evictLocked drops the oldest terminal jobs once the registry exceeds
// maxJobs, so a long-lived server's job index stays bounded. Live jobs
// are never evicted.
func (r *jobRunner) evictLocked() {
	for len(r.jobs) > r.cfg.maxJobs {
		evicted := false
		for i, id := range r.order {
			j, ok := r.jobs[id]
			if !ok {
				continue
			}
			j.mu.Lock()
			terminal := j.state.terminal()
			j.mu.Unlock()
			if terminal {
				delete(r.jobs, id)
				r.order = append(r.order[:i:i], r.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			return // everything is live; allow temporary overshoot
		}
	}
}

// get looks a job up by ID.
func (r *jobRunner) get(id string) (*Job, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j, ok := r.jobs[id]
	return j, ok
}

// list snapshots every registered job, oldest first.
func (r *jobRunner) list() []JobView {
	r.mu.Lock()
	ids := append([]string(nil), r.order...)
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		if j, ok := r.jobs[id]; ok {
			jobs = append(jobs, j)
		}
	}
	r.mu.Unlock()
	views := make([]JobView, len(jobs))
	for i, j := range jobs {
		views[i] = j.snapshot()
	}
	return views
}

// worker drains the queue until the server root context dies AND no job
// or pending retry can still reach the queue.
func (r *jobRunner) worker() {
	defer r.wg.Done()
	for {
		select {
		case j := <-r.queue:
			r.queued.Add(-1)
			r.runJob(j)
		case <-r.rootCtx.Done():
			// Shutdown or crash: drain stragglers (their cancelled
			// contexts finalize them in microseconds), then leave once no
			// retry goroutine can still land a job on the queue.
			for {
				select {
				case j := <-r.queue:
					r.queued.Add(-1)
					r.runJob(j)
				default:
					if r.pendingRetries.Load() == 0 {
						return
					}
					time.Sleep(time.Millisecond)
				}
			}
		}
	}
}

// finalize records a job's terminal state exactly once: journal, done
// channel, completion counter, live-job accounting. Safe to race — the
// first caller wins, later calls are no-ops.
func (r *jobRunner) finalize(j *Job, state JobState, errMsg string, out *jobOutput) {
	j.mu.Lock()
	if j.finalized {
		j.mu.Unlock()
		return
	}
	j.finalized = true
	j.state = state
	j.finished = time.Now()
	j.errMsg = errMsg
	j.nextRetry = time.Time{}
	if out != nil {
		j.payload = out.payload
	}
	if j.waitSpan != nil {
		j.waitSpan.Finish(j.finished, "")
		j.waitSpan = nil
	}
	if j.backoffSpan != nil {
		j.backoffSpan.Finish(j.finished, "")
		j.backoffSpan = nil
	}
	if j.spans != nil {
		j.spans.Finish(j.finished, string(state))
	}
	attempts := len(j.attempts)
	j.mu.Unlock()

	if out != nil {
		r.simInsts.Add(out.insts)
	}
	switch state {
	case StateDone:
		r.journalAppend(journalRecord{T: recDone, Job: j.ID, Attempt: attempts})
	case StateFailed:
		r.journalAppend(journalRecord{T: recFail, Job: j.ID, Attempt: attempts, Cause: errMsg})
	case StateCanceled:
		r.journalAppend(journalRecord{T: recCancel, Job: j.ID, Cause: errMsg})
	}
	r.completed.With(j.Kind, string(state)).Inc()
	j.cancel() // release the context chain
	close(j.done)
	r.liveWG.Done()
}

// runJob executes one attempt of a job and either finalizes it or
// schedules a retry.
func (r *jobRunner) runJob(j *Job) {
	j.mu.Lock()
	if j.state != StateQueued || j.finalized {
		// Cancelled while queued; whoever cancelled already finalized.
		j.mu.Unlock()
		return
	}
	j.state = StateRunning
	now := time.Now()
	if j.started.IsZero() {
		j.started = now
	}
	attemptNo := len(j.attempts) + 1
	actx, acancel := context.WithTimeout(j.ctx, j.timeout)
	j.attemptCancel = acancel
	j.watchdogKilled = false
	j.lastProgress = j.progress.Load()
	j.lastProgressAt = now
	j.attempts = append(j.attempts, AttemptView{Number: attemptNo, Started: now})
	if j.waitSpan != nil {
		j.waitSpan.Finish(now, "")
		r.queueWait.Observe(j.waitSpan.Duration(now).Seconds())
		j.waitSpan = nil
	}
	var attSpan *obs.Span
	if j.spans != nil {
		attSpan = j.spans.StartChild(fmt.Sprintf("attempt %d", attemptNo), now)
	}
	j.mu.Unlock()

	r.journalAppend(journalRecord{T: recStart, Job: j.ID, Attempt: attemptNo})
	r.running.Add(1)
	out, err := r.runAttempt(j, actx, attemptNo)
	acancel()
	r.running.Add(-1)
	finished := time.Now()
	r.observeService(finished.Sub(now))

	j.mu.Lock()
	watchdogKilled := j.watchdogKilled
	j.attemptCancel = nil
	a := &j.attempts[attemptNo-1]
	t := finished
	a.Finished = &t
	j.mu.Unlock()

	closeAttempt := func(cause, stack string) {
		j.mu.Lock()
		j.attempts[attemptNo-1].Cause = cause
		j.attempts[attemptNo-1].Stack = stack
		j.mu.Unlock()
	}

	// Classify the attempt once; the outcome labels the attempt span and
	// the latency histogram, and drives the retry decision below.
	var pe *panicError
	outcome := "ok"
	switch {
	case err == nil:
	case errors.As(err, &pe):
		outcome = "panic"
	case j.ctx.Err() != nil:
		outcome = "canceled"
	case watchdogKilled:
		outcome = "watchdog"
	case errors.Is(err, context.DeadlineExceeded):
		outcome = "deadline"
	default:
		outcome = "error"
	}
	if attSpan != nil {
		j.mu.Lock()
		attSpan.Finish(finished, outcome)
		j.mu.Unlock()
	}
	r.attemptSecs.With(outcome).Observe(finished.Sub(now).Seconds())

	switch outcome {
	case "ok":
		r.finalize(j, StateDone, "", &out)
	case "panic":
		r.fail.panicked.Inc()
		cause := pe.Error()
		closeAttempt(cause, pe.stack)
		r.retryOrFail(j, attemptNo, cause)
	case "canceled":
		// The whole job was cancelled (DELETE, disconnected waiter,
		// shutdown) — terminal, never retried.
		closeAttempt(err.Error(), "")
		r.finalize(j, StateCanceled, err.Error(), nil)
	case "watchdog":
		r.fail.watchdogKills.Inc()
		cause := fmt.Sprintf("watchdog: no progress for %s at %d committed insts",
			r.cfg.watchdogStall, j.progress.Load())
		closeAttempt(cause, "")
		r.retryOrFail(j, attemptNo, cause)
	case "deadline":
		r.fail.deadlineExceeded.Inc()
		cause := fmt.Sprintf("deadline: attempt exceeded %s: %v", j.timeout, err)
		closeAttempt(cause, "")
		r.retryOrFail(j, attemptNo, cause)
	default:
		// A non-transient simulation error (bad workload, config, …):
		// retrying cannot help.
		closeAttempt(err.Error(), "")
		r.finalize(j, StateFailed, err.Error(), nil)
	}
}

// runAttempt is the contained execution of one attempt: a panic in the
// simulation (or the chaos hook) is converted into a *panicError
// instead of unwinding the worker goroutine.
func (r *jobRunner) runAttempt(j *Job, ctx context.Context, attempt int) (out jobOutput, err error) {
	defer func() {
		if p := recover(); p != nil {
			stack := string(debug.Stack())
			if len(stack) > maxStackBytes {
				stack = stack[:maxStackBytes] + "\n... (truncated)"
			}
			err = &panicError{val: fmt.Sprint(p), stack: stack}
			r.log.Error("job attempt panicked", "job", j.ID, "attempt", attempt, "panic", p)
		}
	}()
	if r.cfg.beforeAttempt != nil {
		r.cfg.beforeAttempt(ctx, j.ID, j.Kind, attempt)
	}
	// A dead context means the attempt was aborted before (or while) the
	// hook ran — never report success built on a cancelled run.
	if cerr := ctx.Err(); cerr != nil {
		return jobOutput{}, cerr
	}
	return j.run(ctx, &j.progress)
}

// retryOrFail schedules another attempt after a transient failure, or
// finalizes the job when the retry budget is spent.
func (r *jobRunner) retryOrFail(j *Job, attemptNo int, cause string) {
	if attemptNo > j.maxRetries {
		r.finalize(j, StateFailed,
			fmt.Sprintf("%s (attempt %d of %d, retries exhausted)", cause, attemptNo, j.maxRetries+1), nil)
		return
	}
	delay := backoffDelay(r.cfg.retryBackoff, r.cfg.retryBackoffMax, attemptNo)
	j.mu.Lock()
	if j.finalized {
		j.mu.Unlock()
		return
	}
	j.state = StateRetrying
	j.errMsg = cause
	j.nextRetry = time.Now().Add(delay)
	if j.spans != nil {
		j.backoffSpan = j.spans.StartChild(fmt.Sprintf("backoff %d", attemptNo), time.Now())
	}
	j.mu.Unlock()
	r.fail.retried.Inc()
	r.journalAppend(journalRecord{T: recRetry, Job: j.ID, Attempt: attemptNo, Cause: cause})
	r.log.Warn("job attempt failed; retrying", "job", j.ID, "attempt", attemptNo, "cause", cause, "backoff", delay.String())
	r.scheduleRetry(j, delay)
}

// backoffDelay is exponential backoff with up-to-50% jitter: base·2^(n-1)
// capped at max, then stretched by [1.0, 1.5) so synchronized failures
// do not thundering-herd the queue.
func backoffDelay(base, max time.Duration, attempt int) time.Duration {
	if base <= 0 {
		return 0
	}
	d := base
	for i := 1; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	return d + time.Duration(rand.Int63n(int64(d)/2+1))
}

// scheduleRetry re-enqueues j after delay. Drain flushes pending
// retries immediately (no point sitting out a backoff while the server
// waits to exit); a cancelled job abandons its retry.
func (r *jobRunner) scheduleRetry(j *Job, delay time.Duration) {
	r.pendingRetries.Add(1)
	r.mu.Lock()
	drainNow := r.drainNow
	if r.draining {
		delay = 0
	}
	r.mu.Unlock()
	go func() {
		defer r.pendingRetries.Add(-1)
		t := time.NewTimer(delay)
		defer t.Stop()
		select {
		case <-t.C:
		case <-drainNow:
		case <-j.ctx.Done():
			r.finalize(j, StateCanceled, context.Cause(j.ctx).Error(), nil)
			return
		}
		j.mu.Lock()
		if j.finalized {
			j.mu.Unlock()
			return
		}
		j.state = StateQueued
		j.nextRetry = time.Time{}
		now := time.Now()
		if j.backoffSpan != nil {
			j.backoffSpan.Finish(now, "")
			j.backoffSpan = nil
		}
		if j.spans != nil {
			j.waitSpan = j.spans.StartChild("queue-wait", now)
		}
		j.mu.Unlock()
		select {
		case r.queue <- j:
			r.queued.Add(1)
		case <-j.ctx.Done():
			r.finalize(j, StateCanceled, context.Cause(j.ctx).Error(), nil)
		}
	}()
}

// enqueueReplayed feeds journal-replayed jobs back onto the queue in
// submission order, off the construction path (the queue may be
// shallower than the replay backlog; workers drain it as we go).
func (r *jobRunner) enqueueReplayed(jobs []*Job) {
	if len(jobs) == 0 {
		return
	}
	r.pendingRetries.Add(1)
	r.replayBacklog.Store(int64(len(jobs)))
	go func() {
		defer r.pendingRetries.Add(-1)
		for _, j := range jobs {
			select {
			case r.queue <- j:
				r.queued.Add(1)
				r.fail.journalReplayed.Inc()
			case <-j.ctx.Done():
				r.finalize(j, StateCanceled, context.Cause(j.ctx).Error(), nil)
			}
			r.replayBacklog.Add(-1)
		}
	}()
}

// isDraining reports whether Shutdown has begun.
func (r *jobRunner) isDraining() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.draining
}

// watchdog periodically samples every running job's progress counter
// and cancels attempts that have stopped advancing: a hung simulation
// is converted into a retryable failure instead of occupying a worker
// forever.
func (r *jobRunner) watchdog() {
	ticker := time.NewTicker(r.cfg.watchdogInterval)
	defer ticker.Stop()
	for {
		select {
		case <-r.rootCtx.Done():
			return
		case <-ticker.C:
		}
		r.mu.Lock()
		jobs := make([]*Job, 0, len(r.jobs))
		for _, j := range r.jobs {
			jobs = append(jobs, j)
		}
		r.mu.Unlock()
		now := time.Now()
		for _, j := range jobs {
			j.mu.Lock()
			if j.state == StateRunning && !j.finalized {
				p := j.progress.Load()
				switch {
				case p != j.lastProgress:
					j.lastProgress = p
					j.lastProgressAt = now
				case now.Sub(j.lastProgressAt) > r.cfg.watchdogStall && !j.watchdogKilled:
					j.watchdogKilled = true
					if j.attemptCancel != nil {
						j.attemptCancel()
					}
					r.log.Warn("watchdog killed stalled attempt", "job", j.ID,
						"stalled_for", now.Sub(j.lastProgressAt).String())
				}
			}
			j.mu.Unlock()
		}
	}
}

// observeService folds one attempt duration into the service-time EWMA.
func (r *jobRunner) observeService(d time.Duration) {
	r.svcMu.Lock()
	s := d.Seconds()
	if r.svcEWMA == 0 {
		r.svcEWMA = s
	} else {
		r.svcEWMA = 0.8*r.svcEWMA + 0.2*s
	}
	r.svcMu.Unlock()
}

// retryAfter estimates when a rejected submitter should try again, from
// the observed queue drain rate: (queue depth / workers + 1) attempts'
// worth of EWMA service time, clamped to [1s, 5m].
func (r *jobRunner) retryAfter() time.Duration {
	r.svcMu.Lock()
	avg := r.svcEWMA
	r.svcMu.Unlock()
	if avg <= 0 {
		avg = 1
	}
	d := time.Duration(avg * (float64(r.queued.Load())/float64(r.cfg.workers) + 1) * float64(time.Second))
	if d < time.Second {
		d = time.Second
	}
	if d > 5*time.Minute {
		d = 5 * time.Minute
	}
	return d
}

// drain stops intake and waits for every live job — queued, running,
// and retrying — to reach a terminal state, or for ctx to expire. The
// caller decides what expiry means (Shutdown treats it as a crash for
// journal purposes, so unfinished work is replayed on restart).
func (r *jobRunner) drain(ctx context.Context) error {
	r.mu.Lock()
	if !r.draining {
		r.draining = true
		close(r.drainNow)
	}
	r.mu.Unlock()
	finished := make(chan struct{})
	go func() {
		r.liveWG.Wait()
		close(finished)
	}()
	select {
	case <-finished:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// compactJournal rewrites the journal down to the submit records of
// still-unfinished jobs (none after a complete drain).
func (r *jobRunner) compactJournal() {
	var live []journalRecord
	r.mu.Lock()
	for _, id := range r.order {
		j, ok := r.jobs[id]
		if !ok {
			continue
		}
		j.mu.Lock()
		if !j.state.terminal() {
			live = append(live, journalRecord{T: recSubmit, Job: j.ID, Kind: j.Kind,
				Key: j.cacheKey, Req: j.rawReq, TimeoutMS: j.timeout.Milliseconds()})
		}
		j.mu.Unlock()
	}
	r.mu.Unlock()
	if err := r.journal.compact(live); err != nil {
		r.log.Error("journal compact", "err", err)
	}
}
