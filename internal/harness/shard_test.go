package harness

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"reese/internal/config"
	"reese/internal/workload"
)

// splitRanges partitions n trials into k near-equal contiguous shards —
// the same arithmetic the cluster coordinator uses.
func splitRanges(n, k int) []ShardRange {
	if k > n {
		k = n
	}
	out := make([]ShardRange, 0, k)
	base, rem := n/k, n%k
	off := 0
	for i := 0; i < k; i++ {
		count := base
		if i < rem {
			count++
		}
		out = append(out, ShardRange{Offset: off, Count: count})
		off += count
	}
	return out
}

// The sharding soundness property: because every trial is planned from
// its own (seed, index) substream, the union of shard plans over any
// partition of [0, n) is the single-process plan — not statistically
// similar, identical. Checked at plan level for 10k trials so the
// property holds at campaign scale, not just at test scale.
func TestShardPlanUnionEqualsFullPlan(t *testing.T) {
	spec, _ := CampaignSpec{
		Workload: "li",
		Machine:  config.Starting().WithReese(),
		Seed:     0xD15C,
	}.withDefaults()
	wspec, ok := workload.ByName(spec.Workload)
	if !ok {
		t.Fatalf("unknown workload %q", spec.Workload)
	}
	g, _, err := goldenForSpec(wspec, spec.TargetInsts)
	if err != nil {
		t.Fatal(err)
	}
	structs := spec.Structures[:0]
	for _, st := range spec.Structures {
		if v, sampled := g.victimsFor(st); sampled && len(v) == 0 {
			continue
		}
		structs = append(structs, st)
	}

	const n = 10_000
	full := make([]Trial, n)
	for i := range full {
		full[i] = planTrial(spec.Seed, i, structs, g)
	}
	for _, shards := range []int{1, 2, 3, 7, 16} {
		var union []Trial
		for _, r := range splitRanges(n, shards) {
			for i := 0; i < r.Count; i++ {
				union = append(union, planTrial(spec.Seed, r.Offset+i, structs, g))
			}
		}
		if !reflect.DeepEqual(union, full) {
			t.Errorf("%d-shard plan union differs from the single-process plan", shards)
		}
	}
}

// stripWall zeroes the host-dependent fields so reports compare on
// content alone.
func stripWall(r *CampaignReport) *CampaignReport {
	c := *r
	c.WallSeconds = 0
	c.InjectionsPerSec = 0
	return &c
}

// The merge-math property the distributed campaign rests on: executing
// the plan as 1, 2, or 8 shards and merging yields a report
// byte-identical to the single-process run — same JSON (tallies, Wilson
// CIs, latency aggregates), same per-trial JSONL, same rendered table.
func TestMergedShardsByteIdentical(t *testing.T) {
	base := CampaignSpec{
		Workload:   "li",
		Machine:    config.Starting().WithReese(),
		Injections: 120,
		Seed:       7,
	}
	single, err := Campaign(base, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(stripWall(single))
	if err != nil {
		t.Fatal(err)
	}
	var wantJSONL bytes.Buffer
	if err := single.WriteJSONL(&wantJSONL); err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 2, 8} {
		var shards []*CampaignReport
		for _, r := range splitRanges(base.Injections, workers) {
			spec := base
			rr := r
			spec.Shard = &rr
			rep, err := Campaign(spec, testOptions())
			if err != nil {
				t.Fatal(err)
			}
			if rep.Injected != uint64(r.Count) {
				t.Fatalf("shard %+v ran %d trials", r, rep.Injected)
			}
			shards = append(shards, rep)
		}
		merged, err := MergeReports(shards)
		if err != nil {
			t.Fatal(err)
		}
		gotJSON, err := json.Marshal(stripWall(merged))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotJSON, wantJSON) {
			t.Errorf("%d-worker merged report JSON differs from single-process:\n got %s\nwant %s",
				workers, gotJSON, wantJSON)
		}
		var gotJSONL bytes.Buffer
		if err := merged.WriteJSONL(&gotJSONL); err != nil {
			t.Fatal(err)
		}
		if gotJSONL.String() != wantJSONL.String() {
			t.Errorf("%d-worker merged JSONL differs from single-process", workers)
		}
		if merged.Table() != single.Table() {
			t.Errorf("%d-worker merged table differs from single-process", workers)
		}
	}
}

// A merge must refuse an incomplete or double-counted shard set — the
// report is either exactly the campaign or an error, never a plausible
// fraction of it.
func TestMergeRejectsLostOrDuplicatedShards(t *testing.T) {
	base := CampaignSpec{
		Workload:   "li",
		Machine:    config.Starting().WithReese(),
		Injections: 40,
		Seed:       11,
	}
	var shards []*CampaignReport
	for _, r := range splitRanges(base.Injections, 4) {
		spec := base
		rr := r
		spec.Shard = &rr
		rep, err := Campaign(spec, testOptions())
		if err != nil {
			t.Fatal(err)
		}
		shards = append(shards, rep)
	}
	if _, err := MergeReports(shards[:3]); err == nil {
		t.Error("merge accepted a shard set with a lost shard")
	}
	if _, err := MergeReports(append(append([]*CampaignReport{}, shards...), shards[1])); err == nil {
		t.Error("merge accepted a double-counted shard")
	}
	if _, err := MergeReports(shards); err != nil {
		t.Errorf("merge rejected a complete shard set: %v", err)
	}
}
