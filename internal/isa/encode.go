package isa

import "fmt"

// Binary encoding of SS32 instruction words.
//
// All instructions are 32 bits:
//
//	[31:26] opcode (the Op constant value)
//	FormatR: [25:21] rd  [20:16] rs1 [15:11] rs2 [10:0] zero
//	FormatI: [25:21] rd  [20:16] rs1 [15:0]  imm16 (sign-extended)
//	FormatS: [25:21] rs2 [20:16] rs1 [15:0]  imm16 (sign-extended)
//	FormatB: [25:21] rs1 [20:16] rs2 [15:0]  imm16 (signed word offset)
//	FormatJ: [25:0]  imm26 (signed word offset)
//	FormatX: [25:0]  zero

const (
	opcodeShift = 26
	rdShift     = 21
	rs1Shift    = 16
	rs2Shift    = 11
	regMask     = 0x1f
	imm16Mask   = 0xffff
	imm26Mask   = 0x03ffffff

	// MaxImm16 and MinImm16 bound signed FormatI/S/B immediates;
	// MaxUimm16 bounds the zero-extended logical immediates.
	MaxImm16  = 1<<15 - 1
	MinImm16  = -(1 << 15)
	MaxUimm16 = 1<<16 - 1
	// MaxImm26 and MinImm26 bound FormatJ offsets.
	MaxImm26 = 1<<25 - 1
	MinImm26 = -(1 << 25)
)

// Encode packs the instruction into a 32-bit SS32 word. It validates
// opcode, register numbers, and immediate range.
func Encode(in Instruction) (uint32, error) {
	if !in.Op.Valid() {
		return 0, fmt.Errorf("isa: encode: invalid opcode %d", in.Op)
	}
	if !in.Rd.Valid() || !in.Rs1.Valid() || !in.Rs2.Valid() {
		return 0, fmt.Errorf("isa: encode %s: register out of range (rd=%d rs1=%d rs2=%d)", in.Op, in.Rd, in.Rs1, in.Rs2)
	}
	w := uint32(in.Op) << opcodeShift
	switch in.Op.Format() {
	case FormatR:
		w |= uint32(in.Rd) << rdShift
		w |= uint32(in.Rs1) << rs1Shift
		w |= uint32(in.Rs2) << rs2Shift
	case FormatI:
		if logicalImm(in.Op) {
			// Logical immediates are zero-extended (as in MIPS), so the
			// li/la pseudo-expansion lui+ori can form any 32-bit value.
			if in.Imm < 0 || in.Imm > MaxUimm16 {
				return 0, fmt.Errorf("isa: encode %s: immediate %d out of unsigned 16-bit range", in.Op, in.Imm)
			}
		} else if in.Imm < MinImm16 || in.Imm > MaxImm16 {
			return 0, fmt.Errorf("isa: encode %s: immediate %d out of 16-bit range", in.Op, in.Imm)
		}
		w |= uint32(in.Rd) << rdShift
		w |= uint32(in.Rs1) << rs1Shift
		w |= uint32(in.Imm) & imm16Mask
	case FormatS:
		if in.Imm < MinImm16 || in.Imm > MaxImm16 {
			return 0, fmt.Errorf("isa: encode %s: immediate %d out of 16-bit range", in.Op, in.Imm)
		}
		w |= uint32(in.Rs2) << rdShift
		w |= uint32(in.Rs1) << rs1Shift
		w |= uint32(in.Imm) & imm16Mask
	case FormatB:
		if in.Imm < MinImm16 || in.Imm > MaxImm16 {
			return 0, fmt.Errorf("isa: encode %s: branch offset %d out of 16-bit range", in.Op, in.Imm)
		}
		w |= uint32(in.Rs1) << rdShift
		w |= uint32(in.Rs2) << rs1Shift
		w |= uint32(in.Imm) & imm16Mask
	case FormatJ:
		if in.Imm < MinImm26 || in.Imm > MaxImm26 {
			return 0, fmt.Errorf("isa: encode %s: jump offset %d out of 26-bit range", in.Op, in.Imm)
		}
		w |= uint32(in.Imm) & imm26Mask
	case FormatX:
		// opcode only
	}
	return w, nil
}

// MustEncode is like Encode but panics on error. It is intended for
// statically known-good instructions (tests, workload construction).
func MustEncode(in Instruction) uint32 {
	w, err := Encode(in)
	if err != nil {
		panic(err)
	}
	return w
}

// Decode unpacks a 32-bit SS32 word. Unknown opcodes yield an error;
// non-zero bits in fields a format does not use are ignored, as real
// hardware would ignore them.
func Decode(w uint32) (Instruction, error) {
	op := Op(w >> opcodeShift)
	if !op.Valid() {
		return Instruction{}, fmt.Errorf("isa: decode: invalid opcode %d in word %#08x", op, w)
	}
	in := Instruction{Op: op}
	switch op.Format() {
	case FormatR:
		in.Rd = Reg(w >> rdShift & regMask)
		in.Rs1 = Reg(w >> rs1Shift & regMask)
		in.Rs2 = Reg(w >> rs2Shift & regMask)
	case FormatI:
		in.Rd = Reg(w >> rdShift & regMask)
		in.Rs1 = Reg(w >> rs1Shift & regMask)
		if logicalImm(op) {
			in.Imm = int32(w & imm16Mask)
		} else {
			in.Imm = signExtend16(w)
		}
	case FormatS:
		in.Rs2 = Reg(w >> rdShift & regMask)
		in.Rs1 = Reg(w >> rs1Shift & regMask)
		in.Imm = signExtend16(w)
	case FormatB:
		in.Rs1 = Reg(w >> rdShift & regMask)
		in.Rs2 = Reg(w >> rs1Shift & regMask)
		in.Imm = signExtend16(w)
	case FormatJ:
		in.Imm = signExtend26(w)
	case FormatX:
		// opcode only
	}
	return in, nil
}

func signExtend16(w uint32) int32 { return int32(int16(w & imm16Mask)) }

// logicalImm reports whether op's immediate is zero-extended (lui's
// immediate is the raw upper half-word, so it is unsigned too).
func logicalImm(op Op) bool {
	switch op {
	case OpAndi, OpOri, OpXori, OpLui:
		return true
	}
	return false
}

func signExtend26(w uint32) int32 {
	v := int32(w & imm26Mask)
	if v&(1<<25) != 0 {
		v -= 1 << 26
	}
	return v
}
