package asm

import (
	"os"
	"path/filepath"
	"testing"

	"reese/internal/emu"
)

// TestExampleAssemblyPrograms assembles and runs every .s file shipped
// under examples/testdata, checking each halts and emits the expected
// output byte(s).
func TestExampleAssemblyPrograms(t *testing.T) {
	want := map[string][]byte{
		"demo.s": {83}, // low byte of 4179, the sum of the 16 generated Fibonacci terms
		"sort.s": {1},                 // sorted correctly
		"gcd.s":  {21},                // gcd(1071, 462)
	}
	dir := filepath.Join("..", "..", "examples", "testdata")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	tested := 0
	for _, ent := range entries {
		if filepath.Ext(ent.Name()) != ".s" {
			continue
		}
		tested++
		name := ent.Name()
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(filepath.Join(dir, name))
			if err != nil {
				t.Fatal(err)
			}
			p, err := Assemble(name, string(src))
			if err != nil {
				t.Fatal(err)
			}
			m, err := emu.New(p)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := m.Run(10_000_000); err != nil {
				t.Fatal(err)
			}
			if !m.Halted() {
				t.Fatal("did not halt")
			}
			if exp, ok := want[name]; ok {
				if string(m.Output()) != string(exp) {
					t.Errorf("output = %v, want %v", m.Output(), exp)
				}
			}
		})
	}
	if tested < 3 {
		t.Errorf("only %d example programs found", tested)
	}
}
