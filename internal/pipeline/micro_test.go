package pipeline

// Cycle-precise microtests: small kernels whose timing can be reasoned
// about by hand pin the timing model down far more tightly than
// whole-benchmark IPC comparisons.

import (
	"testing"

	"reese/internal/config"
	"reese/internal/emu"
	"reese/internal/fault"
	"reese/internal/isa"
)

// microConfig removes cold-start noise: big caches stay, but the tests
// below reason about steady-state loop timing, so they measure long
// loops and divide.
func cyclesPerIteration(t *testing.T, src string, iters int) float64 {
	t.Helper()
	res := runOn(t, config.Starting(), src, nil)
	if !res.Halted {
		t.Fatal("did not halt")
	}
	return float64(res.Cycles) / float64(iters)
}

// TestSerialAddChainRate: a loop-carried chain of dependent adds must
// execute at very close to 1 instruction per cycle — the forwarding
// path's fundamental rate.
func TestSerialAddChainRate(t *testing.T) {
	const iters = 2000
	src := `
		li r9, ` + itoa(iters) + `
		li r1, 0
	loop:
		add r1, r1, r9
		add r1, r1, r9
		add r1, r1, r9
		add r1, r1, r9
		add r1, r1, r9
		add r1, r1, r9
		add r1, r1, r9
		add r1, r1, r9
		addi r9, r9, -1
		bne r9, r0, loop
		halt
	`
	// 8 chained adds per iteration; the addi/bne overlap with the
	// chain. Expect ~8 cycles per iteration, allow up to 10.
	cpi := cyclesPerIteration(t, src, iters)
	if cpi < 7.5 || cpi > 10 {
		t.Errorf("serial chain: %.2f cycles/iteration, want ~8", cpi)
	}
}

// TestDivideLatencyVisible: a loop carried through a divide must run at
// roughly the divide latency per iteration (20 cycles), far slower than
// the same loop with add.
func TestDivideLatencyVisible(t *testing.T) {
	const iters = 500
	div := `
		li r9, ` + itoa(iters) + `
		li r1, 1000000
		li r2, 1
	loop:
		div r1, r1, r2
		addi r9, r9, -1
		bne r9, r0, loop
		halt
	`
	cpi := cyclesPerIteration(t, div, iters)
	if cpi < 18 || cpi > 24 {
		t.Errorf("divide chain: %.2f cycles/iteration, want ~20 (divide latency)", cpi)
	}
}

// TestMultiplyLatencyVisible: same with multiply (3 cycles).
func TestMultiplyLatencyVisible(t *testing.T) {
	const iters = 1000
	mul := `
		li r9, ` + itoa(iters) + `
		li r1, 1
		li r2, 1
	loop:
		mul r1, r1, r2
		addi r9, r9, -1
		bne r9, r0, loop
		halt
	`
	cpi := cyclesPerIteration(t, mul, iters)
	if cpi < 2.5 || cpi > 4.5 {
		t.Errorf("multiply chain: %.2f cycles/iteration, want ~3", cpi)
	}
}

// TestLoadUseLatency: a pointer-chase loop is bound by the L1 hit
// latency (2 cycles) plus address arithmetic.
func TestLoadUseLatency(t *testing.T) {
	const iters = 1000
	src := `
		li r9, ` + itoa(iters) + `
		la r1, cell
	loop:
		lw r1, 0(r1)       ; cell points to itself: serial load chain
		addi r9, r9, -1
		bne r9, r0, loop
		halt
	.data
	cell:
		.word cell
	`
	cpi := cyclesPerIteration(t, src, iters)
	// Each iteration's load depends on the previous load: >= 2 cycles.
	if cpi < 2 || cpi > 4 {
		t.Errorf("load chain: %.2f cycles/iteration, want ~2-3 (L1 hit latency)", cpi)
	}
}

// TestALUThroughputBound: with 4 ALUs and plenty of independent work,
// sustained IPC must approach but never exceed the ALU count + branch
// overhead headroom.
func TestALUThroughputBound(t *testing.T) {
	const iters = 2000
	src := `
		li r9, ` + itoa(iters) + `
	loop:
		add r1, r9, r9
		add r2, r9, r9
		add r3, r9, r9
		add r4, r9, r9
		add r5, r9, r9
		add r6, r9, r9
		xor r7, r9, r9
		or r8, r9, r9
		addi r9, r9, -1
		bne r9, r0, loop
		halt
	`
	res := runOn(t, config.Starting(), src, nil)
	// 10 instructions per iteration, all needing an ALU, 4 ALUs:
	// >= 2.5 cycles per iteration, so IPC <= 4.
	if res.IPC > 4.01 {
		t.Errorf("IPC %.3f exceeds the 4-ALU bound", res.IPC)
	}
	if res.IPC < 3.0 {
		t.Errorf("IPC %.3f too low; expected near the ALU bound for pure independent work", res.IPC)
	}
}

// TestMemPortThroughputBound: 2 memory ports cap a load-only stream at
// 2 loads per cycle.
func TestMemPortThroughputBound(t *testing.T) {
	const iters = 2000
	src := `
		li r9, ` + itoa(iters) + `
		la r1, buf
	loop:
		lw r2, 0(r1)
		lw r3, 4(r1)
		lw r4, 8(r1)
		lw r5, 12(r1)
		addi r9, r9, -1
		bne r9, r0, loop
		halt
	.data
	buf:
		.word 1, 2, 3, 4
	`
	res := runOn(t, config.Starting(), src, nil)
	// 4 loads per iteration over 2 ports: >= 2 cycles per iteration.
	// 6 instructions / >=2 cycles: IPC <= 3.
	if res.IPC > 3.01 {
		t.Errorf("IPC %.3f exceeds the 2-port bound", res.IPC)
	}
	res4 := runOn(t, config.Starting().WithMemPorts(4), src, nil)
	if res4.IPC <= res.IPC {
		t.Errorf("4 ports (%.3f) should beat 2 ports (%.3f) on a load stream", res4.IPC, res.IPC)
	}
}

// TestMispredictPenaltyMagnitude: an always-mispredicted branch pattern
// costs roughly the pipeline depth per occurrence.
func TestMispredictPenaltyMagnitude(t *testing.T) {
	res := runOn(t, config.Starting(), `
		li r9, 2000
		li r8, 0
	loop:
		; alternate taken/not-taken based on an LCG bit (hard pattern
		; for a 12-bit gshare only when the period is long; an LCG's
		; low bits alternate, so use a higher bit)
		li r7, 1103515245
		mul r8, r8, r7
		addi r8, r8, 12345
		srli r6, r8, 13
		andi r6, r6, 1
		beq r6, r0, skip
		addi r5, r5, 1
	skip:
		addi r9, r9, -1
		bne r9, r0, loop
		halt
	`, nil)
	if res.Mispredicts == 0 {
		t.Skip("predictor learned the LCG; cannot measure penalty")
	}
	perMiss := float64(res.FetchBranchStalls) / float64(res.Mispredicts)
	// Resolution takes a handful of cycles (issue wait + execute +
	// redirect); expect a mean stall of 2-20 cycles per miss.
	if perMiss < 2 || perMiss > 20 {
		t.Errorf("branch stall per mispredict = %.1f cycles, implausible", perMiss)
	}
}

// TestFastForward: skipping instructions functionally must advance
// architectural state without charging cycles.
func TestFastForward(t *testing.T) {
	src := loopProgram(5000)
	total := oracleCount(t, src)

	cpu, err := New(config.Starting(), mustProg(t, src), nil)
	if err != nil {
		t.Fatal(err)
	}
	skipped, err := cpu.FastForward(10_000)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 10_000 {
		t.Fatalf("skipped %d", skipped)
	}
	res, err := cpu.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted {
		t.Fatal("did not halt")
	}
	if res.FastForwarded != 10_000 {
		t.Errorf("FastForwarded = %d", res.FastForwarded)
	}
	if res.Committed+res.FastForwarded != total {
		t.Errorf("committed %d + skipped %d != oracle total %d", res.Committed, res.FastForwarded, total)
	}
}

func TestFastForwardPastHalt(t *testing.T) {
	cpu, err := New(config.Starting(), mustProg(t, loopProgram(10)), nil)
	if err != nil {
		t.Fatal(err)
	}
	total := oracleCount(t, loopProgram(10))
	skipped, err := cpu.FastForward(1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != total {
		t.Errorf("skipped %d, want %d (whole program)", skipped, total)
	}
	res, err := cpu.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed != 0 || res.Cycles != 0 {
		t.Errorf("nothing left to time: committed=%d cycles=%d", res.Committed, res.Cycles)
	}
}

func TestFastForwardAfterStartFails(t *testing.T) {
	cpu, err := New(config.Starting(), mustProg(t, loopProgram(100)), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cpu.Run(10); err != nil {
		t.Fatal(err)
	}
	if _, err := cpu.FastForward(10); err == nil {
		t.Error("FastForward after Run should fail")
	}
}

// TestPipelineMatchesEmulatorOutput is the checker-mode integration
// test: the timed machine's architectural effects (program output and
// instruction count) must match an independent functional run, with
// and without REESE, and even under injected-and-recovered faults.
func TestPipelineMatchesEmulatorOutput(t *testing.T) {
	src := `
		li r9, 300
		li r8, 1
	loop:
		mul r8, r8, r9
		andi r8, r8, 0xff
		out r8
		addi r9, r9, -1
		bne r9, r0, loop
		halt
	`
	ref, err := emu.New(mustProg(t, src))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Run(0); err != nil {
		t.Fatal(err)
	}

	for _, tt := range []struct {
		name string
		cfg  config.Machine
		inj  fault.Injector
	}{
		{"baseline", config.Starting(), nil},
		{"reese", config.Starting().WithReese(), nil},
		{"reese+faults", config.Starting().WithReese(), &fault.Periodic{Interval: 200, Start: 100}},
	} {
		t.Run(tt.name, func(t *testing.T) {
			cpu, err := New(tt.cfg, mustProg(t, src), tt.inj)
			if err != nil {
				t.Fatal(err)
			}
			res, err := cpu.Run(0)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Halted {
				t.Fatal("did not halt")
			}
			if res.Committed != ref.InstCount() {
				t.Errorf("committed %d, emulator %d", res.Committed, ref.InstCount())
			}
			if string(cpu.Output()) != string(ref.Output()) {
				t.Errorf("output mismatch: pipeline %d bytes vs emulator %d bytes",
					len(cpu.Output()), len(ref.Output()))
			}
		})
	}
}

// TestReeseEndToEndLatencyAccounting: every verified instruction's
// DoneAt must fall between its enqueue and the current cycle — checked
// implicitly by a run with a tiny RSQ that forces heavy recycling.
func TestTinyMachineStillCorrect(t *testing.T) {
	tiny := config.Starting()
	tiny.RUUSize = 4
	tiny.LSQSize = 2
	tiny.FetchQueueSize = 2
	tiny.Width = 1
	tiny.IssueWidth = 1
	tiny = tiny.WithReese().WithRSQ(4)
	src := loopProgram(100)
	want := oracleCount(t, src)
	res := runOn(t, tiny, src, nil)
	if !res.Halted || res.Committed != want {
		t.Errorf("tiny machine: halted=%v committed=%d want=%d", res.Halted, res.Committed, want)
	}
	if res.IPC > 1.0 {
		t.Errorf("single-issue machine cannot exceed 1 IPC (got %.3f)", res.IPC)
	}
}

// TestHaltDoesNotOvercount: the instruction budget must stop the run
// within one dispatch group of the limit.
func TestOpClassCoverageInPipeline(t *testing.T) {
	// Exercise every opcode class through the timed pipeline at least
	// once, ensuring no class panics or deadlocks under REESE.
	src := `
		li r1, 10
		li r2, 3
		add r3, r1, r2
		sub r3, r1, r2
		mul r3, r1, r2
		mulh r3, r1, r2
		div r3, r1, r2
		divu r3, r1, r2
		rem r3, r1, r2
		remu r3, r1, r2
		and r3, r1, r2
		or r3, r1, r2
		xor r3, r1, r2
		nor r3, r1, r2
		sll r3, r1, r2
		srl r3, r1, r2
		sra r3, r1, r2
		slt r3, r1, r2
		sltu r3, r1, r2
		addi r3, r1, 5
		andi r3, r1, 5
		ori r3, r1, 5
		xori r3, r1, 5
		slti r3, r1, 5
		sltiu r3, r1, 5
		slli r3, r1, 2
		srli r3, r1, 2
		srai r3, r1, 2
		lui r3, 77
		la r4, w
		lw r3, 0(r4)
		lh r3, 0(r4)
		lhu r3, 0(r4)
		lb r3, 0(r4)
		lbu r3, 0(r4)
		sw r1, 4(r4)
		sh r1, 8(r4)
		sb r1, 10(r4)
		beq r1, r1, l1
		nop
	l1:
		bne r1, r2, l2
		nop
	l2:
		blt r2, r1, l3
		nop
	l3:
		bge r1, r2, l4
		nop
	l4:
		bltu r2, r1, l5
		nop
	l5:
		bgeu r1, r2, l6
		nop
	l6:
		j l7
		nop
	l7:
		jal l8
	l8:
		la r5, l9x
		jalr r6, r5
	l9x:
		out r1
		halt
	.data
	w:
		.word 0x8000ffff
		.space 12
	`
	for _, cfg := range []config.Machine{config.Starting(), config.Starting().WithReese()} {
		res := runOn(t, cfg, src, nil)
		if !res.Halted {
			t.Fatalf("%s: did not halt", cfg.Name)
		}
		if res.Reese != nil && res.Reese.Mismatches != 0 {
			t.Errorf("%s: clean run mismatched %d times", cfg.Name, res.Reese.Mismatches)
		}
	}
}

var _ = isa.OpAdd // keep isa imported for documentation references

func TestRSQOccupancyStats(t *testing.T) {
	res := runOn(t, config.Starting().WithReese(), loopProgram(1000), nil)
	if res.RSQOccupancyMean <= 0 {
		t.Error("mean RSQ occupancy should be positive")
	}
	if res.RSQOccupancyMax == 0 || res.RSQOccupancyMax > 32 {
		t.Errorf("max RSQ occupancy = %d", res.RSQOccupancyMax)
	}
	if float64(res.RSQOccupancyMax) < res.RSQOccupancyMean {
		t.Error("max below mean")
	}
	base := runOn(t, config.Starting(), loopProgram(100), nil)
	if base.RSQOccupancyMax != 0 || base.RSQOccupancyMean != 0 {
		t.Error("baseline has no RSQ")
	}
}

func TestCommittedInstructionMix(t *testing.T) {
	src := `
		li r9, 500
		la r8, buf
	loop:
		lw r1, 0(r8)
		sw r1, 4(r8)
		mul r2, r9, r9
		add r3, r9, r9
		addi r9, r9, -1
		bne r9, r0, loop
		halt
	.data
	buf:
		.word 7
		.space 4
	`
	res := runOn(t, config.Starting(), src, nil)
	m := res.Mix
	total := m.IntALU + m.IntMult + m.Load + m.Store + m.Control + m.FP
	if total < 0.99 || total > 1.01 {
		t.Errorf("mix fractions sum to %.3f", total)
	}
	// 7 instructions per iteration: 1 load, 1 store, 1 mul, 3 alu-ish
	// (add+addi within loop... add, addi), 1 branch.
	if m.Load < 0.10 || m.Load > 0.18 {
		t.Errorf("load fraction %.3f, want ~1/7", m.Load)
	}
	if m.Store < 0.10 || m.Store > 0.18 {
		t.Errorf("store fraction %.3f, want ~1/7", m.Store)
	}
	if m.IntMult < 0.10 || m.IntMult > 0.18 {
		t.Errorf("mult fraction %.3f, want ~1/7", m.IntMult)
	}
	if m.Control < 0.10 || m.Control > 0.18 {
		t.Errorf("control fraction %.3f, want ~1/7", m.Control)
	}
	if m.FP != 0 {
		t.Error("no FP in this program")
	}
}

// TestSimulationDeterminism: two identical simulations produce
// bit-identical results — the property every experiment in this repo
// rests on.
func TestSimulationDeterminism(t *testing.T) {
	run := func() Result {
		cpu, err := New(config.Starting().WithReese(), mustProg(t, loopProgram(500)), &fault.Periodic{Interval: 700, Start: 100})
		if err != nil {
			t.Fatal(err)
		}
		res, err := cpu.Run(0)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles || a.Committed != b.Committed || a.Mispredicts != b.Mispredicts ||
		a.FaultsDetected != b.FaultsDetected || a.Recoveries != b.Recoveries {
		t.Errorf("nondeterminism: %+v vs %+v", a, b)
	}
}
