package bpred

import "fmt"

// BTB is a set-associative branch target buffer: it caches the targets of
// taken control transfers so fetch can redirect without decoding.
type BTB struct {
	sets  uint32
	assoc uint32
	tags  []uint32
	tgt   []uint32
	valid []bool
	lru   []uint64
	clock uint64
}

// NewBTB builds a BTB with the given number of sets and associativity.
func NewBTB(sets, assoc uint32) (*BTB, error) {
	if sets == 0 || sets&(sets-1) != 0 {
		return nil, fmt.Errorf("bpred: btb sets %d not a power of two", sets)
	}
	if assoc == 0 {
		return nil, fmt.Errorf("bpred: btb assoc 0")
	}
	n := sets * assoc
	return &BTB{
		sets:  sets,
		assoc: assoc,
		tags:  make([]uint32, n),
		tgt:   make([]uint32, n),
		valid: make([]bool, n),
		lru:   make([]uint64, n),
	}, nil
}

func (b *BTB) set(pc uint32) uint32 { return (pc >> 2) & (b.sets - 1) }
func (b *BTB) tag(pc uint32) uint32 { return (pc >> 2) / b.sets }

// Lookup returns the cached target for the branch at pc, if present.
func (b *BTB) Lookup(pc uint32) (uint32, bool) {
	b.clock++
	base := b.set(pc) * b.assoc
	tag := b.tag(pc)
	for i := uint32(0); i < b.assoc; i++ {
		j := base + i
		if b.valid[j] && b.tags[j] == tag {
			b.lru[j] = b.clock
			return b.tgt[j], true
		}
	}
	return 0, false
}

// Insert records the target of a taken transfer at pc.
func (b *BTB) Insert(pc, target uint32) {
	b.clock++
	base := b.set(pc) * b.assoc
	tag := b.tag(pc)
	victim := base
	for i := uint32(0); i < b.assoc; i++ {
		j := base + i
		if b.valid[j] && b.tags[j] == tag {
			victim = j
			break
		}
		if !b.valid[j] {
			if b.valid[victim] {
				victim = j
			}
			continue
		}
		if b.valid[victim] && b.lru[j] < b.lru[victim] {
			victim = j
		}
	}
	b.tags[victim] = tag
	b.tgt[victim] = target
	b.valid[victim] = true
	b.lru[victim] = b.clock
}

// Clone returns an independent deep copy of the BTB.
func (b *BTB) Clone() *BTB {
	cp := *b
	cp.tags = append([]uint32(nil), b.tags...)
	cp.tgt = append([]uint32(nil), b.tgt...)
	cp.valid = append([]bool(nil), b.valid...)
	cp.lru = append([]uint64(nil), b.lru...)
	return &cp
}

// StateEqualRanked reports whether two BTBs will behave identically from
// here on. Tags, targets and valid bits must match exactly; recency is
// compared by per-set rank order rather than raw lru clocks, because two
// histories that touched a set in the same relative order but at
// different absolute times (e.g. one machine replayed a few fetches
// after a fault recovery) still make every future lookup and victim
// choice identically.
func (b *BTB) StateEqualRanked(o *BTB) bool {
	if o.sets != b.sets || o.assoc != b.assoc {
		return false
	}
	for j := range b.tags {
		if b.valid[j] != o.valid[j] {
			return false
		}
		if b.valid[j] && (b.tags[j] != o.tags[j] || b.tgt[j] != o.tgt[j]) {
			return false
		}
	}
	for set := uint32(0); set < b.sets; set++ {
		base := set * b.assoc
		for i := uint32(0); i < b.assoc; i++ {
			j := base + i
			if !b.valid[j] {
				continue
			}
			// Rank of line j among its set's valid lines: how many are
			// less recently used. O(assoc²) per set with tiny assoc.
			var rb, ro int
			for k := uint32(0); k < b.assoc; k++ {
				jk := base + k
				if b.valid[jk] && b.lru[jk] < b.lru[j] {
					rb++
				}
				if o.valid[jk] && o.lru[jk] < o.lru[j] {
					ro++
				}
			}
			if rb != ro {
				return false
			}
		}
	}
	return true
}

// RAS is a return-address stack predicting jr-via-ra returns. Pushes on
// call (jal/jalr), pops on return.
type RAS struct {
	stack []uint32
	top   int
	size  int
}

// NewRAS builds a return-address stack with the given depth.
func NewRAS(size int) (*RAS, error) {
	if size <= 0 {
		return nil, fmt.Errorf("bpred: ras size %d", size)
	}
	return &RAS{stack: make([]uint32, size), size: size}, nil
}

// Push records a return address (circularly; deep recursion overwrites).
func (r *RAS) Push(addr uint32) {
	r.stack[r.top%r.size] = addr
	r.top++
}

// Pop predicts the next return address.
func (r *RAS) Pop() (uint32, bool) {
	if r.top == 0 {
		return 0, false
	}
	r.top--
	return r.stack[r.top%r.size], true
}

// Depth returns the current logical stack depth.
func (r *RAS) Depth() int { return r.top }

// Clone returns an independent deep copy of the RAS.
func (r *RAS) Clone() *RAS {
	cp := *r
	cp.stack = append([]uint32(nil), r.stack...)
	return &cp
}

// StateEqual reports whether two stacks predict identically from here
// on: same depth and same reachable entries. Slots deeper than size
// below top have been overwritten and can never be popped, so they are
// ignored.
func (r *RAS) StateEqual(o *RAS) bool {
	if o.size != r.size || o.top != r.top {
		return false
	}
	lo := r.top - r.size
	if lo < 0 {
		lo = 0
	}
	for i := lo; i < r.top; i++ {
		if r.stack[i%r.size] != o.stack[i%o.size] {
			return false
		}
	}
	return true
}
