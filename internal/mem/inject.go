package mem

// Fault-injection surface for the timing hierarchy. The caches model
// timing only — data lives in the architectural memory — so a cache
// fault is modeled as (a) an immediate perturbation of the timing state
// (tag bits, dirty bit) or of the architectural word behind the line,
// plus (b) a residue record that settles when the victim line is next
// evicted: a flipped tag becomes a wrong-address write-back, a cleared
// dirty bit becomes a lost write-back, a resident-data flip is reverted
// by a clean refill. At most one fault record is armed per cache (a
// campaign injects a single fault per trial).

// WordPlane is the architectural backing store a cache data fault reads
// and writes. *program.Memory satisfies it.
type WordPlane interface {
	ReadWord(addr uint32) (uint32, error)
	WriteWord(addr, v uint32) error
	Size() uint32
}

// Fault-record kinds.
const (
	frNone uint8 = iota
	frTag        // tag flipped; wrong-address write-back if evicted dirty
	frLostWB     // dirty bit cleared; revert line words if evicted clean
	frData       // resident-data word flipped; clean refill reverts it
)

// faultRec is the residue one injected cache fault leaves until the
// victim line is evicted (or flushed).
type faultRec struct {
	kind    uint8
	pending bool   // frLostWB armed but dirty bit not yet cleared
	idx     uint32 // victim line index (set*assoc + way)
	set     uint32
	origTag uint32   // frTag: pre-flip tag
	waddr   uint32   // frData: flipped word; frLostWB: line base address
	wmask   uint32   // frData: XOR mask applied to the word
	wflip   uint32   // frData: word value immediately after the flip
	snap    []uint32 // frLostWB: architectural line words at arm time
}

// SetWordPlane attaches the architectural memory the cache's data
// faults operate on. The pipeline re-points this after every clone.
func (c *Cache) SetWordPlane(p WordPlane) { c.plane = p }

// locate returns the line index holding addr, or false.
func (c *Cache) locate(addr uint32) (uint32, bool) {
	blockAddr := addr >> c.shiftB
	set := blockAddr & c.maskS
	tag := blockAddr >> c.shiftS
	base := set * c.cfg.Assoc
	for i := uint32(0); i < c.cfg.Assoc; i++ {
		ln := &c.lines[base+i]
		if ln.valid && ln.tag == tag {
			return base + i, true
		}
	}
	return 0, false
}

// InjectTagFlip flips one tag bit of the line holding addr. The line
// keeps answering hits under its corrupted tag (wrong-line hits) while
// the original address pseudo-misses; if the line is evicted dirty, its
// write-back lands at the aliased address — the data words of the
// original block are copied over the aliased block in the architectural
// plane. The flipped bit is bounded so the alias stays inside the
// plane. Returns false if the line is not resident (caller re-polls).
func (c *Cache) InjectTagFlip(addr uint32, bit uint8) bool {
	if c.plane == nil || c.frec.kind != frNone {
		return false
	}
	idx, ok := c.locate(addr)
	if !ok {
		return false
	}
	tagBits := int32(planeBits(c.plane.Size())) - int32(c.shiftB) - int32(c.shiftS)
	if tagBits <= 0 {
		return false
	}
	ln := &c.lines[idx]
	c.frec = faultRec{kind: frTag, idx: idx, set: idx / c.cfg.Assoc, origTag: ln.tag, snap: c.frec.snap[:0]}
	ln.tag ^= 1 << (uint32(bit) % uint32(tagBits))
	return true
}

// InjectDirtyClear models a dirty-bit upset as a lost write-back. The
// caller arms it before the first store to the victim block reaches
// the architectural plane: the first call snapshots the block's words
// (pre-store state). Calls with fire=false only arm; once fire is true
// (the caller has seen the block's last store retire, so no later
// store can re-dirty the line and mask the upset), the record fires
// when the line is resident and dirty, clearing the dirty bit. If the
// line is then evicted clean, the skipped write-back is modeled by
// reverting the block's words to the snapshot — every store to the
// block is lost, which is what an unwritten dirty line costs. Returns
// true when the dirty bit has been cleared.
func (c *Cache) InjectDirtyClear(addr uint32, fire bool) bool {
	if c.plane == nil {
		return false
	}
	base := addr &^ (c.cfg.BlockBytes - 1)
	if c.frec.kind == frNone {
		snap := c.frec.snap[:0]
		for off := uint32(0); off < c.cfg.BlockBytes; off += 4 {
			v, err := c.plane.ReadWord(base + off)
			if err != nil {
				return false
			}
			snap = append(snap, v)
		}
		c.frec = faultRec{kind: frLostWB, pending: true, waddr: base, snap: snap}
	}
	if c.frec.kind != frLostWB || !c.frec.pending || !fire {
		return false
	}
	idx, ok := c.locate(addr)
	if !ok || !c.lines[idx].dirty {
		return false
	}
	c.lines[idx].dirty = false
	c.frec.pending = false
	c.frec.idx = idx
	c.frec.set = idx / c.cfg.Assoc
	return true
}

// InjectDataFlip flips data bits of the architectural word behind a
// resident line. bits selects the upset: bits<32 is a single-bit flip
// of that bit, bits>=32 is an adjacent double-bit flip. With ECC
// configured, a single-bit upset is corrected in place (no state
// change, corrected=true) and a double-bit upset is applied and flagged
// detected-uncorrectable. An applied flip arms a residue record: if the
// line is evicted clean, the refill restores the word (compare-and-
// revert); if evicted dirty, the corruption is written back and
// persists. Returns fired=false if the line is not resident.
func (c *Cache) InjectDataFlip(addr uint32, bits uint8) (fired, corrected, detected bool) {
	if c.plane == nil || c.frec.kind != frNone {
		return false, false, false
	}
	if _, ok := c.locate(addr); !ok {
		return false, false, false
	}
	if c.cfg.ECC && bits < 32 {
		return true, true, false
	}
	var mask uint32
	if bits < 32 {
		mask = 1 << bits
	} else {
		b := uint32(bits) - 32
		mask = 1<<b | 1<<((b+1)%32)
	}
	waddr := addr &^ 3
	v, err := c.plane.ReadWord(waddr)
	if err != nil {
		return false, false, false
	}
	if err := c.plane.WriteWord(waddr, v^mask); err != nil {
		return false, false, false
	}
	idx, _ := c.locate(addr)
	c.frec = faultRec{kind: frData, idx: idx, set: idx / c.cfg.Assoc,
		waddr: waddr, wmask: mask, wflip: v ^ mask, snap: c.frec.snap[:0]}
	return true, false, c.cfg.ECC
}

// FaultArmed reports whether a fault residue (armed or pending) is
// still outstanding on this cache.
func (c *Cache) FaultArmed() bool { return c.frec.kind != frNone }

// settleFault resolves the armed record against the line being evicted.
// Called with the victim line just before it is written back/replaced.
func (c *Cache) settleFault(victim *line) {
	rec := c.frec
	if rec.kind == frLostWB && rec.pending {
		return // never fired; keep waiting
	}
	c.frec = faultRec{snap: rec.snap[:0]}
	if c.plane == nil {
		return
	}
	switch rec.kind {
	case frLostWB:
		if victim.dirty {
			return // re-dirtied: the write-back carries everything
		}
		for i, v := range rec.snap {
			a := rec.waddr + uint32(i)*4
			if cur, err := c.plane.ReadWord(a); err == nil && cur != v {
				c.plane.WriteWord(a, v)
			}
		}
	case frData:
		if victim.dirty {
			return // written back: the corruption persists
		}
		if cur, err := c.plane.ReadWord(rec.waddr); err == nil && cur == rec.wflip {
			c.plane.WriteWord(rec.waddr, cur^rec.wmask)
		}
	case frTag:
		if !victim.dirty {
			return // clean eviction: the flip was timing-only
		}
		origBase := (rec.origTag<<c.shiftS | rec.set) << c.shiftB
		aliasBase := (victim.tag<<c.shiftS | rec.set) << c.shiftB
		for off := uint32(0); off < c.cfg.BlockBytes; off += 4 {
			v, err := c.plane.ReadWord(origBase + off)
			if err != nil {
				return
			}
			if c.plane.WriteWord(aliasBase+off, v) != nil {
				return
			}
		}
	}
}

// planeBits returns the number of significant address bits for a plane
// of the given size (ceil(log2(size))).
func planeBits(size uint32) uint32 {
	var n uint32
	for size > 1 {
		size = (size + 1) >> 1
		n++
	}
	return n
}

// InjectEntryFlip flips a tag bit of the TLB entry translating addr,
// turning future lookups of that page into pseudo-misses (and possibly
// aliased hits for another page). Translation timing is perturbed; the
// architectural translation itself is identity-mapped in this machine
// model, so the upset is timing-visible only. Returns false if no entry
// covers addr (caller re-polls).
func (t *TLB) InjectEntryFlip(addr uint32, bit uint8) bool {
	page := addr / t.cfg.PageBytes
	set := page & (t.sets - 1)
	tag := page / t.sets
	base := set * t.cfg.Assoc
	for i := uint32(0); i < t.cfg.Assoc; i++ {
		ln := &t.lines[base+i]
		if ln.valid && ln.tag == tag {
			ln.tag ^= 1 << (uint32(bit) % 16)
			return true
		}
	}
	return false
}
