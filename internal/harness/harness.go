// Package harness regenerates the REESE paper's evaluation: one
// experiment per table and figure (Tables 1-2, Figures 2-7), plus the
// paper's §6.1 claims, the fault-injection behaviour of §4.2-4.3, and
// the ablations DESIGN.md §7 calls out.
//
// Each experiment runs the six Table 2 workloads on a set of machine
// variants and renders the same rows/series the paper reports. Runs are
// deterministic; variants of one experiment run concurrently.
package harness

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"reese/internal/config"
	"reese/internal/fault"
	"reese/internal/fu"
	"reese/internal/obs"
	"reese/internal/pipeline"
	"reese/internal/stats"
	"reese/internal/workload"
)

// Options control experiment scale.
type Options struct {
	// Insts is the committed-instruction budget per run. The paper ran
	// 100 M; the default 150k keeps a full figure under a second while
	// past the point where the IPC statistics stabilise for these
	// workloads.
	Insts uint64
	// Iters overrides the workloads' outer iteration count (0 = enough
	// for Insts).
	Iters int
	// Parallel bounds concurrent simulations on the shared worker pool
	// (0 = GOMAXPROCS, 1 = strictly sequential). Any setting produces
	// byte-identical results; it only changes wall-clock time.
	Parallel int
	// Ctx, when non-nil, cancels in-flight simulations: every run polls
	// it periodically (pipeline.RunContext) and the experiment returns
	// ctx.Err() instead of grinding through remaining cells. nil means
	// context.Background(). Carried in Options rather than as a separate
	// parameter so the dozens of experiment entry points keep one
	// signature.
	Ctx context.Context
	// Progress, when non-nil, accumulates committed-instruction deltas
	// from every in-flight simulation (pipeline.CPU.SetProgress) — the
	// watchdog heartbeat reese-serve samples to tell a slow experiment
	// from a hung one. The counter is cumulative and monotonic across
	// all cells of a grid or campaign.
	Progress *atomic.Uint64
}

// DefaultOptions returns the scale used by the test suite and benches.
func DefaultOptions() Options { return Options{Insts: 150_000} }

func (o Options) normalize() Options {
	if o.Insts == 0 {
		o.Insts = 150_000
	}
	if o.Ctx == nil {
		o.Ctx = context.Background()
	}
	return o
}

// Cell is one bar of a figure: a (workload, variant) IPC measurement.
type Cell struct {
	Workload string          `json:"workload"`
	Variant  string          `json:"variant"`
	Result   pipeline.Result `json:"result"`
}

// FigureResult is a regenerated figure: a grid of IPC values, one row
// per workload plus the average row the paper's analysis leans on.
// The JSON form (used by reese-serve and reese-sweep -json) is locked
// by the golden-file test in json_test.go.
type FigureResult struct {
	ID       string   `json:"id"`
	Title    string   `json:"title"`
	Variants []string `json:"variants"`
	// IPC[workload][variant] in the order of Workloads()/Variants.
	IPC       map[string]map[string]float64 `json:"ipc"`
	Workloads []string                      `json:"workloads"`
	Cells     []Cell                        `json:"cells,omitempty"`
}

// Average returns the across-workload mean IPC for the given variant.
func (f *FigureResult) Average(variant string) float64 {
	var xs []float64
	for _, w := range f.Workloads {
		xs = append(xs, f.IPC[w][variant])
	}
	return stats.Mean(xs)
}

// GapPercent returns how far variant's average IPC falls below the
// baseline variant's, in percent.
func (f *FigureResult) GapPercent(baseline, variant string) float64 {
	return stats.PercentDelta(f.Average(baseline), f.Average(variant))
}

// Stalls aggregates the slot-attribution ledger for one variant across
// every workload: summed counts keep the ledger invariant (used +
// stalls == slots), so percentages over the aggregate are workload-
// weighted rather than averaged.
func (f *FigureResult) Stalls(variant string) obs.StallBreakdown {
	var agg obs.StallBreakdown
	for _, c := range f.Cells {
		if c.Variant == variant {
			agg.Add(c.Result.Stalls)
		}
	}
	return agg
}

// StallTable renders the commit-slot attribution per variant: why each
// configuration's unused commit slots went unused, aggregated across
// workloads. The commit class is the one that explains an IPC gap — a
// commit slot not used is exactly an instruction not retired.
func (f *FigureResult) StallTable() string {
	headers := append([]string{"cause"}, f.Variants...)
	t := stats.NewTable(fmt.Sprintf("%s: commit-slot stall attribution (%% of slots)", f.ID), headers...)
	breakdowns := make([]obs.SlotBreakdown, len(f.Variants))
	for i, v := range f.Variants {
		breakdowns[i] = f.Stalls(v).Commit
	}
	row := []string{"(used)"}
	for _, b := range breakdowns {
		row = append(row, fmt.Sprintf("%.1f", b.UtilPct()))
	}
	t.AddRow(row...)
	for cause := obs.StallCause(1); cause < obs.NumCauses; cause++ {
		var any uint64
		for _, b := range breakdowns {
			any += b.Stalls[cause]
		}
		if any == 0 {
			continue
		}
		row := []string{cause.String()}
		for _, b := range breakdowns {
			if b.Stalls[cause] == 0 {
				row = append(row, "-")
				continue
			}
			row = append(row, fmt.Sprintf("%.1f", b.Pct(cause)))
		}
		t.AddRow(row...)
	}
	return t.String()
}

// Table renders the figure as an aligned text table with the AV row.
func (f *FigureResult) Table() string {
	headers := append([]string{"bench"}, f.Variants...)
	t := stats.NewTable(fmt.Sprintf("%s: %s (committed IPC)", f.ID, f.Title), headers...)
	for _, w := range f.Workloads {
		row := []string{w}
		for _, v := range f.Variants {
			row = append(row, fmt.Sprintf("%.3f", f.IPC[w][v]))
		}
		t.AddRow(row...)
	}
	avRow := []string{"AV"}
	for _, v := range f.Variants {
		avRow = append(avRow, fmt.Sprintf("%.3f", f.Average(v)))
	}
	t.AddRow(avRow...)
	return t.String()
}

// variant pairs a display label with a machine configuration.
type variant struct {
	label string
	cfg   config.Machine
}

// spareSet returns the five bar groups the paper's Figures 2-4 plot:
// baseline, REESE, and REESE with 1 ALU / 2 ALUs / 2 ALUs + 1 multiplier
// of spare capacity.
func spareSet(base config.Machine) []variant {
	return []variant{
		{"Baseline", base},
		{"REESE", base.WithReese()},
		{"R+1ALU", base.WithReese().WithSpares(1, 0)},
		{"R+2ALU", base.WithReese().WithSpares(2, 0)},
		{"R+2ALU+1Mult", base.WithReese().WithSpares(2, 1)},
	}
}

// runGrid simulates every (workload, variant) pair, in parallel across
// cells, and assembles a FigureResult.
func runGrid(id, title string, variants []variant, opt Options) (*FigureResult, error) {
	opt = opt.normalize()
	names := workload.Names()
	fig := &FigureResult{
		ID:        id,
		Title:     title,
		Workloads: names,
		IPC:       make(map[string]map[string]float64, len(names)),
	}
	for _, v := range variants {
		fig.Variants = append(fig.Variants, v.label)
	}
	for _, w := range names {
		fig.IPC[w] = make(map[string]float64, len(variants))
	}

	type job struct {
		w string
		v variant
	}
	var jobs []job
	for _, w := range names {
		for _, v := range variants {
			jobs = append(jobs, job{w, v})
		}
	}
	// Workers write into per-job slots; the figure is assembled in job
	// order afterwards so the result is independent of scheduling.
	results := make([]pipeline.Result, len(jobs))
	err := forEach(len(jobs), opt.Parallel, func(i int) error {
		res, err := runOne(jobs[i].v.cfg, jobs[i].w, opt)
		if err != nil {
			return fmt.Errorf("%s/%s: %w", jobs[i].w, jobs[i].v.label, err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, j := range jobs {
		fig.IPC[j.w][j.v.label] = results[i].IPC
		fig.Cells = append(fig.Cells, Cell{Workload: j.w, Variant: j.v.label, Result: results[i]})
	}
	sort.Slice(fig.Cells, func(i, k int) bool {
		if fig.Cells[i].Workload != fig.Cells[k].Workload {
			return fig.Cells[i].Workload < fig.Cells[k].Workload
		}
		return fig.Cells[i].Variant < fig.Cells[k].Variant
	})
	return fig, nil
}

func runOne(cfg config.Machine, workloadName string, opt Options) (pipeline.Result, error) {
	// Some callers reach runOne without Options.normalize.
	ctx := opt.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	// Bail before building anything if the experiment is already
	// cancelled — this is what lets a cancelled grid stop scheduling its
	// remaining cells.
	if err := ctx.Err(); err != nil {
		return pipeline.Result{}, err
	}
	spec, ok := workload.ByName(workloadName)
	if !ok {
		return pipeline.Result{}, fmt.Errorf("unknown workload %q", workloadName)
	}
	iters := opt.Iters
	if iters == 0 {
		// Size the program comfortably past the instruction budget
		// (DefaultIters yields roughly 150-400k dynamic instructions).
		scale := int(opt.Insts/150_000) + 2
		iters = spec.DefaultIters * scale
	}
	prog, err := spec.Build(iters)
	if err != nil {
		return pipeline.Result{}, err
	}
	cpu, err := pipeline.New(cfg, prog, fault.None{})
	if err != nil {
		return pipeline.Result{}, err
	}
	cpu.SetProgress(opt.Progress)
	return cpu.RunContext(ctx, opt.Insts)
}

// Figure2 regenerates the paper's Figure 2: REESE versus baseline on the
// Table 1 starting configuration, with the spare-element bar groups.
func Figure2(opt Options) (*FigureResult, error) {
	return runGrid("Figure 2", "initial comparison, Table 1 starting configuration",
		spareSet(config.Starting()), opt)
}

// Figure3 regenerates Figure 3: RUU doubled to 32, LSQ to 16.
func Figure3(opt Options) (*FigureResult, error) {
	return runGrid("Figure 3", "RUU size = 32 and LSQ size = 16",
		spareSet(config.Starting().WithRUU(32)), opt)
}

// Figure4 regenerates Figure 4: the 16-wide datapath (on top of the
// doubled RUU/LSQ, as in the paper's sequence).
func Figure4(opt Options) (*FigureResult, error) {
	return runGrid("Figure 4", "16-wide datapath (RUU 32, LSQ 16)",
		spareSet(config.Starting().WithRUU(32).WithWidth(16)), opt)
}

// Figure5 regenerates Figure 5: additional memory ports (4 instead of
// 2). As in the paper, the 2ALU+1Mult bar is dropped — the extra
// multiplier makes no difference at this point.
func Figure5(opt Options) (*FigureResult, error) {
	base := config.Starting().WithRUU(32).WithWidth(16).WithMemPorts(4)
	variants := []variant{
		{"Baseline", base},
		{"REESE", base.WithReese()},
		{"R+1ALU", base.WithReese().WithSpares(1, 0)},
		{"R+2ALU", base.WithReese().WithSpares(2, 0)},
	}
	return runGrid("Figure 5", "additional memory ports (4)", variants, opt)
}

// SummaryRow is one point of Figure 6: the average REESE-vs-baseline
// picture for one hardware configuration.
type SummaryRow struct {
	Config       string  `json:"config"`
	BaselineIPC  float64 `json:"baseline_ipc"`
	ReeseIPC     float64 `json:"reese_ipc"`
	Spared2IPC   float64 `json:"spared2_ipc"`    // REESE + 2 spare ALUs
	GapPercent   float64 `json:"gap_pct"`        // baseline -> REESE
	SparedGapPct float64 `json:"spared_gap_pct"` // baseline -> REESE+2ALU
	// BaselineStallPct/ReeseStallPct attribute each configuration's
	// unused commit slots by cause (percent of all commit slots,
	// aggregated across workloads) — the "why" behind the gap columns.
	BaselineStallPct map[string]float64 `json:"baseline_stall_pct,omitempty"`
	ReeseStallPct    map[string]float64 `json:"reese_stall_pct,omitempty"`
}

// Figure6 regenerates Figure 6, the summary over the four hardware
// configurations of Figures 2-5.
func Figure6(opt Options) ([]SummaryRow, error) {
	figs := []struct {
		name string
		f    func(Options) (*FigureResult, error)
	}{
		{"None", Figure2},
		{"RUU,LSQ 2X", Figure3},
		{"Ex. Q 2X", Figure4},
		{"MemPorts", Figure5},
	}
	rows := make([]SummaryRow, 0, len(figs))
	for _, fg := range figs {
		fig, err := fg.f(opt)
		if err != nil {
			return nil, err
		}
		row := SummaryRow{
			Config:           fg.name,
			BaselineIPC:      fig.Average("Baseline"),
			ReeseIPC:         fig.Average("REESE"),
			Spared2IPC:       fig.Average("R+2ALU"),
			GapPercent:       fig.GapPercent("Baseline", "REESE"),
			SparedGapPct:     fig.GapPercent("Baseline", "R+2ALU"),
			BaselineStallPct: fig.Stalls("Baseline").Commit.CausePcts(),
			ReeseStallPct:    fig.Stalls("REESE").Commit.CausePcts(),
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Figure6Table renders the summary rows.
func Figure6Table(rows []SummaryRow) string {
	t := stats.NewTable("Figure 6: summary of results (average IPC and REESE gap)",
		"config", "baseline", "REESE", "R+2ALU", "gap%", "gap%+2ALU")
	for _, r := range rows {
		t.AddRowf(r.Config, r.BaselineIPC, r.ReeseIPC, r.Spared2IPC, r.GapPercent, r.SparedGapPct)
	}
	return t.String()
}

// Figure7Point is one x-position of Figure 7.
type Figure7Point struct {
	Label       string  `json:"label"`
	BaselineIPC float64 `json:"baseline_ipc"`
	ReeseIPC    float64 `json:"reese_ipc"`
	Reese2AIPC  float64 `json:"reese2a_ipc"`
	GapPercent  float64 `json:"gap_pct"`
	Gap2APct    float64 `json:"gap2a_pct"`
}

// Figure7 regenerates Figure 7: baseline vs REESE vs REESE+2ALU for
// RUU = 64 and 256, each with and without a doubled functional-unit
// complement. The R-stream Queue grows to 64 on these machines, per the
// paper's §4.3 note that the buffer must be set to an appropriate
// length for the machine (32 entries throttle a 256-entry-RUU REESE by
// themselves).
func Figure7(opt Options) ([]Figure7Point, error) {
	doubled := fu.Config{IntALU: 8, IntMult: 2, MemPort: 4, FPALU: 8, FPMult: 2}
	points := []struct {
		label string
		cfg   config.Machine
	}{
		{"RUU=64", config.Starting().WithRUU(64)},
		{"RUU=64+FUs", config.Starting().WithRUU(64).WithFUs(doubled)},
		{"RUU=256", config.Starting().WithRUU(256)},
		{"RUU=256+FUs", config.Starting().WithRUU(256).WithFUs(doubled)},
	}
	out := make([]Figure7Point, 0, len(points))
	for _, p := range points {
		variants := []variant{
			{"Baseline", p.cfg},
			{"REESE", p.cfg.WithReese().WithRSQ(64)},
			{"R+2ALU", p.cfg.WithReese().WithRSQ(64).WithSpares(2, 0)},
		}
		fig, err := runGrid("Figure 7", p.label, variants, opt)
		if err != nil {
			return nil, err
		}
		out = append(out, Figure7Point{
			Label:       p.label,
			BaselineIPC: fig.Average("Baseline"),
			ReeseIPC:    fig.Average("REESE"),
			Reese2AIPC:  fig.Average("R+2ALU"),
			GapPercent:  fig.GapPercent("Baseline", "REESE"),
			Gap2APct:    fig.GapPercent("Baseline", "R+2ALU"),
		})
	}
	return out, nil
}

// Figure7Table renders the Figure 7 series.
func Figure7Table(points []Figure7Point) string {
	t := stats.NewTable("Figure 7: REESE vs baseline for even more hardware (average IPC)",
		"config", "baseline", "REESE", "R+2ALU", "gap%", "gap%+2ALU")
	for _, p := range points {
		t.AddRowf(p.Label, p.BaselineIPC, p.ReeseIPC, p.Reese2AIPC, p.GapPercent, p.Gap2APct)
	}
	return t.String()
}

// Table1 renders the starting configuration as the paper's Table 1.
func Table1() string {
	m := config.Starting()
	t := stats.NewTable("Table 1: simulator options (starting configuration)", "parameter", "value")
	t.AddRow("Fetch Queue Size", fmt.Sprint(m.FetchQueueSize))
	t.AddRow("Max IPC for Other Pipeline Stages", fmt.Sprint(m.Width))
	t.AddRow("Issue Width", fmt.Sprint(m.IssueWidth))
	t.AddRow("RUU Size", fmt.Sprint(m.RUUSize))
	t.AddRow("LSQ Size", fmt.Sprint(m.LSQSize))
	t.AddRow("Functional Units", fmt.Sprintf("%d IntALU, %d IntMult/Div, %d MemPorts",
		m.FU.IntALU, m.FU.IntMult, m.FU.MemPort))
	t.AddRow("L1 Data Cache", describeCache(m, "dl1"))
	t.AddRow("L1 Inst. Cache", describeCache(m, "il1"))
	t.AddRow("L2 Cache", describeCache(m, "ul2"))
	t.AddRow("Branch Predictor", fmt.Sprintf("gshare, %d-bit history", m.GshareBits))
	t.AddRow("R-stream Queue", fmt.Sprint(m.Reese.RSQSize))
	return t.String()
}

func describeCache(m config.Machine, name string) string {
	switch name {
	case "dl1":
		c := m.Memory.L1D
		return fmt.Sprintf("%d KB, %d-way, %d-cycle hit", c.SizeBytes/1024, c.Assoc, c.HitLatency)
	case "il1":
		c := m.Memory.L1I
		return fmt.Sprintf("%d KB, %d-way, %d-cycle hit", c.SizeBytes/1024, c.Assoc, c.HitLatency)
	default:
		c := m.Memory.L2
		return fmt.Sprintf("%d KB, %d-way, %d-cycle hit", c.SizeBytes/1024, c.Assoc, c.HitLatency)
	}
}

// Table2 renders the benchmark roster as the paper's Table 2.
func Table2() string {
	t := stats.NewTable("Table 2: benchmark programs and inputs", "benchmark", "input", "signature")
	for _, s := range workload.All() {
		t.AddRow(s.Name, s.Input, s.Signature)
	}
	return t.String()
}

// AllFigures runs every figure and returns the rendered report.
func AllFigures(opt Options) (string, error) {
	var b strings.Builder
	b.WriteString(Table1())
	b.WriteByte('\n')
	b.WriteString(Table2())
	b.WriteByte('\n')
	for _, f := range []func(Options) (*FigureResult, error){Figure2, Figure3, Figure4, Figure5} {
		fig, err := f(opt)
		if err != nil {
			return "", err
		}
		b.WriteString(fig.Table())
		b.WriteByte('\n')
	}
	rows, err := Figure6(opt)
	if err != nil {
		return "", err
	}
	b.WriteString(Figure6Table(rows))
	b.WriteByte('\n')
	points, err := Figure7(opt)
	if err != nil {
		return "", err
	}
	b.WriteString(Figure7Table(points))
	return b.String(), nil
}
