package fu

import (
	"testing"

	"reese/internal/isa"
)

func pool(t *testing.T, alu, mult, mem int) *Pool {
	t.Helper()
	p, err := NewPool(Config{IntALU: alu, IntMult: mult, MemPort: mem})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestKindFor(t *testing.T) {
	if KindFor(isa.ClassIntALU) != IntALU {
		t.Error("alu mapping")
	}
	if KindFor(isa.ClassIntMult) != IntMult {
		t.Error("mult mapping")
	}
	if KindFor(isa.ClassMemRead) != MemPort || KindFor(isa.ClassMemWrite) != MemPort {
		t.Error("loads and stores must share memory ports")
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{IntALU: 0, IntMult: 1, MemPort: 1}).Validate(); err == nil {
		t.Error("zero ALUs should be invalid")
	}
	if err := (Config{IntALU: 4, IntMult: 1, MemPort: 2}).Validate(); err != nil {
		t.Errorf("table-1 config rejected: %v", err)
	}
}

func TestAddSpares(t *testing.T) {
	base := Config{IntALU: 4, IntMult: 1, MemPort: 2}
	s := base.AddSpares(2, 1)
	if s.IntALU != 6 || s.IntMult != 2 || s.MemPort != 2 {
		t.Errorf("spares: %+v", s)
	}
	if base.IntALU != 4 {
		t.Error("AddSpares must not mutate the receiver")
	}
}

func TestAcquireExhaustion(t *testing.T) {
	p := pool(t, 2, 1, 1)
	if !p.Acquire(IntALU, 10, 1) || !p.Acquire(IntALU, 10, 1) {
		t.Fatal("two ALUs should be free")
	}
	if p.Acquire(IntALU, 10, 1) {
		t.Fatal("third acquire in same cycle should fail")
	}
	// Next cycle both are free again.
	if p.Free(IntALU, 11) != 2 {
		t.Errorf("free at 11 = %d", p.Free(IntALU, 11))
	}
	s := p.Stats()
	if s.AcquiredFor(IntALU) != 2 || s.DeniedFor(IntALU) != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestOccupancyBlocksReuse(t *testing.T) {
	p := pool(t, 1, 1, 1)
	// Divide occupies its unit for 19 cycles.
	if !p.Acquire(IntMult, 100, 19) {
		t.Fatal("acquire")
	}
	if p.Acquire(IntMult, 110, 1) {
		t.Error("unit should still be busy at 110")
	}
	if !p.Acquire(IntMult, 119, 1) {
		t.Error("unit should be free at 119")
	}
}

func TestAcquireForUsesISALatency(t *testing.T) {
	p := pool(t, 1, 1, 1)
	if !p.AcquireFor(isa.OpDiv, 0) {
		t.Fatal("acquire div")
	}
	// Divide's issue latency is 19: a multiply cannot issue until then.
	if p.AcquireFor(isa.OpMul, 5) {
		t.Error("mult unit should be occupied by divide")
	}
	if !p.AcquireFor(isa.OpMul, uint64(isa.OpDiv.IssueLatency())) {
		t.Error("mult should issue after divide occupancy ends")
	}
}

func TestReset(t *testing.T) {
	p := pool(t, 1, 1, 1)
	p.Acquire(IntMult, 0, 100)
	p.Reset()
	if !p.Acquire(IntMult, 1, 1) {
		t.Error("reset should free all units")
	}
}

func TestUtilization(t *testing.T) {
	p := pool(t, 2, 1, 1)
	p.Acquire(IntALU, 0, 1)
	p.Acquire(IntALU, 1, 1)
	// 2 busy unit-cycles over 2 units × 2 cycles = 0.5.
	if got := p.Utilization(IntALU, 2); got != 0.5 {
		t.Errorf("utilization = %v, want 0.5", got)
	}
	if got := p.Utilization(IntMult, 0); got != 0 {
		t.Errorf("zero-elapsed utilization = %v", got)
	}
}

func TestFreeCount(t *testing.T) {
	p := pool(t, 4, 1, 2)
	if p.Free(IntALU, 0) != 4 || p.Free(MemPort, 0) != 2 {
		t.Error("initial free counts")
	}
	p.Acquire(MemPort, 0, 1)
	if p.Free(MemPort, 0) != 1 {
		t.Error("free after acquire")
	}
}

func TestCount(t *testing.T) {
	p := pool(t, 4, 1, 2)
	if p.Count(IntALU) != 4 || p.Count(IntMult) != 1 || p.Count(MemPort) != 2 {
		t.Error("counts wrong")
	}
}

func TestFPKinds(t *testing.T) {
	if KindFor(isa.ClassFPALU) != FPALU || KindFor(isa.ClassFPMult) != FPMult {
		t.Error("FP class mapping")
	}
	p, err := NewPool(Config{IntALU: 1, IntMult: 1, MemPort: 1, FPALU: 2, FPMult: 1})
	if err != nil {
		t.Fatal(err)
	}
	if p.Count(FPALU) != 2 || p.Count(FPMult) != 1 {
		t.Error("FP unit counts")
	}
	if !p.AcquireFor(isa.OpFadd, 0) || !p.AcquireFor(isa.OpFadd, 0) {
		t.Error("two FP ALUs should acquire")
	}
	if p.AcquireFor(isa.OpFsub, 0) {
		t.Error("third FP ALU acquire should fail")
	}
	// Zero FP units is a legal config (integer-only machine).
	z, err := NewPool(Config{IntALU: 1, IntMult: 1, MemPort: 1})
	if err != nil {
		t.Fatal(err)
	}
	if z.AcquireFor(isa.OpFadd, 0) {
		t.Error("no FP units: acquire must fail")
	}
	if (Config{IntALU: 1, IntMult: 1, MemPort: 1, FPALU: -1}).Validate() == nil {
		t.Error("negative FP count should be invalid")
	}
}

func TestFdivOccupancy(t *testing.T) {
	p, err := NewPool(Config{IntALU: 1, IntMult: 1, MemPort: 1, FPALU: 1, FPMult: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !p.AcquireFor(isa.OpFdiv, 0) {
		t.Fatal("fdiv acquire")
	}
	if p.AcquireFor(isa.OpFmul, 5) {
		t.Error("FP mult unit should be occupied by the divide")
	}
	if !p.AcquireFor(isa.OpFmul, uint64(isa.OpFdiv.IssueLatency())) {
		t.Error("FP mult should issue after divide occupancy")
	}
}
