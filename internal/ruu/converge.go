package ruu

// Convergence comparison for checkpoint/fork fault replay: two machines
// whose windows match under this comparison schedule, issue, and retire
// identically from here on, even when their absolute sequence numbers
// and cycle counts differ (a recovered trial replays instructions, so
// its counters run ahead of the golden run's).
//
// The normalization rules:
//   - sequence references compare relative to each queue's own head; a
//     reference outside the resident window is behaviorally equivalent
//     to "no producer" (depReady treats both as available) and maps to
//     one sentinel;
//   - absolute times compare relative to each machine's own current
//     cycle, with anything at or before "now" collapsing to zero (a
//     deadline in the past is simply "ready");
//   - pure statistics (how a value came to be, not what it will do) are
//     excluded.

// SeqNone is the normalized sentinel for a sequence reference with no
// behavioral meaning (absent, or no longer resident).
const SeqNone = ^uint64(0)

// NormSeq normalizes an RUU sequence reference for convergence
// comparison.
func (r *RUU) NormSeq(s uint64) uint64 {
	if s == NoProducer || !r.Resident(s) {
		return SeqNone
	}
	return s - r.headSeq
}

// NormSeq normalizes an LSQ memory-order sequence reference for
// convergence comparison.
func (q *LSQ) NormSeq(s uint64) uint64 {
	if s == NoProducer || !q.Resident(s) {
		return SeqNone
	}
	return s - q.headSeq
}

func relTime(v, now uint64) uint64 {
	if v <= now {
		return 0
	}
	return v - now
}

// Converged reports whether the (RUU, LSQ) pair of machine A matches
// machine B's under sequence and time normalization. nowA/nowB are the
// machines' current cycles. FUKind/FUUnit are excluded — which unit ran
// a completed instruction has no future effect unless a stuck-unit
// fault is installed, which callers must rule out separately.
func Converged(a, b *RUU, la, lb *LSQ, nowA, nowB uint64) bool {
	if a.size != b.size || la.size != lb.size {
		return false
	}
	if a.Len() != b.Len() || la.Len() != lb.Len() {
		return false
	}
	for i := uint64(0); i < uint64(a.Len()); i++ {
		ea := &a.slots[(a.headSeq+i)%a.size]
		eb := &b.slots[(b.headSeq+i)%b.size]
		if ea.Trace != eb.Trace {
			return false
		}
		if a.NormSeq(ea.Dep1) != b.NormSeq(eb.Dep1) || a.NormSeq(ea.Dep2) != b.NormSeq(eb.Dep2) {
			return false
		}
		if ea.Issued != eb.Issued || ea.Completed != eb.Completed {
			return false
		}
		if relTime(ea.DoneAt, nowA) != relTime(eb.DoneAt, nowB) {
			return false
		}
		if ea.Mispredicted != eb.Mispredicted || ea.BpHistory != eb.BpHistory {
			return false
		}
		if la.NormSeq(ea.LSQSeq) != lb.NormSeq(eb.LSQSeq) {
			return false
		}
		if ea.Dup != eb.Dup || ea.Bogus != eb.Bogus {
			return false
		}
		if ea.Dup && a.NormSeq(ea.PairSeq) != b.NormSeq(eb.PairSeq) {
			return false
		}
		if ea.destIdx != eb.destIdx || a.NormSeq(ea.prevProducer) != b.NormSeq(eb.prevProducer) {
			return false
		}
		if ea.ResultP != eb.ResultP || ea.NextPCP != eb.NextPCP ||
			ea.AddrP != eb.AddrP || ea.StoreValueP != eb.StoreValueP {
			return false
		}
		// An in-flight latched fault must match (a golden snapshot never
		// carries one, so a still-corrupted trial can never splice).
		if ea.FaultBit != eb.FaultBit {
			return false
		}
	}
	for i := range a.producer {
		if a.NormSeq(a.producer[i]) != b.NormSeq(b.producer[i]) {
			return false
		}
	}
	for i := uint64(0); i < uint64(la.Len()); i++ {
		ea := &la.slots[(la.headSeq+i)%la.size]
		eb := &lb.slots[(lb.headSeq+i)%lb.size]
		if ea.IsStore != eb.IsStore || ea.Addr != eb.Addr || ea.Width != eb.Width ||
			ea.Issued != eb.Issued || ea.Forwarded != eb.Forwarded {
			return false
		}
		if a.NormSeq(ea.Seq) != b.NormSeq(eb.Seq) {
			return false
		}
	}
	return true
}
