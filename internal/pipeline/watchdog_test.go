package pipeline

import (
	"testing"

	"reese/internal/config"
	"reese/internal/emu"
	"reese/internal/fault"
)

// A corrupted fetch PC marches the oracle off the text segment: the
// trace stream ends without a halt, nothing commits again, and only the
// no-commit watchdog can end the run. It must terminate promptly and
// classify the run as hanged — not error, not spin to the cycle cap.
func TestWatchdogConvertsFetchPCWedgeToHang(t *testing.T) {
	src := loopProgram(2_000)
	inj := &fault.AtStruct{Struct: fault.StructFetchPC, Seq: 500, Bit: 30}
	cpu, err := New(config.Starting().WithReese(), mustProg(t, src), inj)
	if err != nil {
		t.Fatal(err)
	}
	cpu.SetHangLimit(2_000)
	res, err := cpu.Run(0)
	if err != nil {
		t.Fatalf("a wedge must be a classifiable outcome, not an error: %v", err)
	}
	if !inj.Fired() {
		t.Fatal("fetch-pc fault never fired")
	}
	if !res.Hanged {
		t.Error("watchdog did not flag the wedged run as hanged")
	}
	if res.Halted {
		t.Error("a wedged run cannot also report a clean halt")
	}
	want := oracleCount(t, src)
	if res.Committed >= want {
		t.Errorf("committed %d of %d — the wedge should cut the run short", res.Committed, want)
	}
}

func TestWatchdogQuietOnCleanRuns(t *testing.T) {
	src := loopProgram(300)
	for _, cfg := range []config.Machine{config.Starting(), config.Starting().WithReese()} {
		res := runOn(t, cfg, src, nil)
		if res.Hanged {
			t.Errorf("%s: clean run flagged as hanged", cfg.Name)
		}
		if !res.Halted {
			t.Errorf("%s: clean run did not halt", cfg.Name)
		}
	}
}

// The commit-side shadow digest must agree with an independent emulator
// run on a fault-free simulation — it is the baseline the campaign
// classifier measures SDC against, so any drift here poisons every
// outcome.
func TestCommitDigestMatchesEmulatorOnCleanRun(t *testing.T) {
	src := `
		li r1, 40
		li r2, 1000
	loop:
		add r3, r2, r1
		sw r3, 0(r2)
		lw r4, 0(r2)
		xor r5, r4, r3
		addi r2, r2, 4
		addi r1, r1, -1
		bne r1, r0, loop
		halt
	`
	prog := mustProg(t, src)
	m, err := emu.New(prog)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	want := m.Digest()

	for _, cfg := range []config.Machine{config.Starting(), config.Starting().WithReese()} {
		cpu, err := New(cfg, mustProg(t, src), nil)
		if err != nil {
			t.Fatal(err)
		}
		res, err := cpu.Run(0)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Halted {
			t.Fatalf("%s: did not halt", cfg.Name)
		}
		if got := cpu.CommitDigest(); got != want {
			t.Errorf("%s: commit digest diverges from emulator\n got %+v\nwant %+v", cfg.Name, got, want)
		}
		if got := cpu.OracleDigest(); got != want {
			t.Errorf("%s: oracle digest diverges from emulator\n got %+v\nwant %+v", cfg.Name, got, want)
		}
	}
}

// An in-sphere latch fault must end as recovered: detected by the
// comparator, replayed, and the final state byte-identical to golden.
func TestRecoveredRunRestoresGoldenDigest(t *testing.T) {
	src := loopProgram(500)
	prog := mustProg(t, src)
	m, err := emu.New(prog)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	gold := m.Digest()

	inj := &fault.AtStruct{Struct: fault.StructResult, Seq: 200, Bit: 13}
	cpu, err := New(config.Starting().WithReese(), mustProg(t, src), inj)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cpu.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.FaultsDetected != 1 {
		t.Fatalf("detected %d faults, want 1", res.FaultsDetected)
	}
	if got := cpu.CommitDigest(); got != gold {
		t.Errorf("recovered run's commit digest diverges from golden\n got %+v\nwant %+v", got, gold)
	}
}
