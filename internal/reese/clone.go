package reese

// CloneInto deep-copies the R-stream Queue into dst (allocating when dst
// is nil), reusing dst's slot slice when its capacity allows. Entries
// are value types, so the slice copy captures everything.
func (q *Queue) CloneInto(dst *Queue) *Queue {
	if dst == nil {
		dst = &Queue{}
	}
	slots := dst.slots
	*dst = *q
	dst.slots = append(slots[:0], q.slots...)
	return dst
}
