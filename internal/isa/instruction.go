package isa

import "fmt"

// Reg is a general-purpose register number in [0, 32). Register 0 is
// hardwired to zero: writes to it are discarded.
type Reg uint8

// NumRegs is the number of general-purpose registers.
const NumRegs = 32

// LinkReg is the register implicitly written by jal (the return address).
const LinkReg Reg = 31

// Conventional register aliases used by the assembler and workloads.
const (
	RegZero Reg = 0  // always zero
	RegSP   Reg = 29 // stack pointer (convention only)
	RegGP   Reg = 28 // global pointer (convention only)
	RegRA   Reg = 31 // return address (written by jal/jalr convention)
)

// Valid reports whether r is a legal register number.
func (r Reg) Valid() bool { return r < NumRegs }

// String returns the assembler name of r ("r0".."r31").
func (r Reg) String() string { return fmt.Sprintf("r%d", uint8(r)) }

// WordBytes is the size of a machine word and of an instruction, in bytes.
const WordBytes = 4

// Instruction is a decoded SS32 instruction.
//
// Imm holds the sign-extended immediate. For branches and jumps it is the
// PC-relative offset in *instruction words* (the hardware target is
// PC + 4 + 4*Imm). For shifts-by-immediate only the low 5 bits are used.
type Instruction struct {
	Op  Op
	Rd  Reg
	Rs1 Reg
	Rs2 Reg
	Imm int32
}

// Nop is the canonical no-operation instruction (addi r0, r0, 0).
var Nop = Instruction{Op: OpAddi}

// Dest returns the register written by the instruction and whether one is
// written at all. jal's implicit link register is reported as the
// destination.
func (in Instruction) Dest() (Reg, bool) {
	if !in.Op.WritesRd() {
		return 0, false
	}
	if in.Op == OpJal {
		return LinkReg, true
	}
	return in.Rd, true
}

// Sources returns the registers read by the instruction. The second
// return value of each pair reports whether the source is used.
func (in Instruction) Sources() (rs1 Reg, uses1 bool, rs2 Reg, uses2 bool) {
	return in.Rs1, in.Op.ReadsRs1(), in.Rs2, in.Op.ReadsRs2()
}

// BranchTarget returns the target address of a PC-relative control
// transfer located at pc. It is meaningless for indirect jumps.
func (in Instruction) BranchTarget(pc uint32) uint32 {
	return pc + WordBytes + uint32(in.Imm)*WordBytes
}

// regName renders a register in the given file's assembler syntax.
func regName(r Reg, f RegFile) string {
	if f == FileFP {
		return FPRegName(r)
	}
	return r.String()
}

// String disassembles the instruction.
func (in Instruction) String() string {
	rs1File, rs2File := in.Op.SourceFiles()
	rdName := regName(in.Rd, in.Op.DestFile())
	rs1Name := regName(in.Rs1, rs1File)
	rs2Name := regName(in.Rs2, rs2File)
	switch in.Op.Format() {
	case FormatR:
		switch in.Op {
		case OpJr:
			return fmt.Sprintf("jr %s", rs1Name)
		case OpJalr:
			return fmt.Sprintf("jalr %s, %s", rdName, rs1Name)
		case OpOut:
			return fmt.Sprintf("out %s", rs1Name)
		}
		if !in.Op.ReadsRs2() && in.Op.WritesRd() {
			return fmt.Sprintf("%s %s, %s", in.Op, rdName, rs1Name)
		}
		return fmt.Sprintf("%s %s, %s, %s", in.Op, rdName, rs1Name, rs2Name)
	case FormatI:
		switch {
		case in.Op == OpLui:
			return fmt.Sprintf("lui %s, %d", rdName, in.Imm)
		case in.Op.IsLoad():
			return fmt.Sprintf("%s %s, %d(%s)", in.Op, rdName, in.Imm, rs1Name)
		}
		return fmt.Sprintf("%s %s, %s, %d", in.Op, rdName, rs1Name, in.Imm)
	case FormatS:
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, rs2Name, in.Imm, rs1Name)
	case FormatB:
		return fmt.Sprintf("%s %s, %s, %d", in.Op, rs1Name, rs2Name, in.Imm)
	case FormatJ:
		return fmt.Sprintf("%s %d", in.Op, in.Imm)
	default:
		return in.Op.String()
	}
}
