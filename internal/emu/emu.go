// Package emu is the SS32 functional emulator: it executes programs
// architecturally, one instruction at a time, with no timing model. It is
// the equivalent of SimpleScalar's sim-safe and serves three roles:
//
//   - the oracle that execution-driven timing simulation consults for true
//     values and branch outcomes,
//   - the correctness reference the pipeline's committed state is checked
//     against in tests,
//   - a fast way to run workloads when only architectural results matter.
package emu

import (
	"errors"
	"fmt"

	"reese/internal/isa"
	"reese/internal/program"
)

// ErrHalted is returned by Step once the program has executed halt.
var ErrHalted = errors.New("emu: machine halted")

// Machine is the architectural state of an SS32 processor.
type Machine struct {
	prog *program.Program
	dec  *program.DecodedText
	mem  *program.Memory

	pc    uint32
	regs  [isa.NumRegs]uint32
	fregs [isa.NumRegs]uint32 // FP register file (IEEE-754 bit patterns)

	halted bool
	icount uint64
	output []byte

	// Running digest of the committed-store sequence (see Digest).
	storeHash  uint64
	storeCount uint64
}

// New loads prog into a fresh machine. The stack pointer starts at
// program.StackTop.
func New(prog *program.Program) (*Machine, error) {
	mem, err := program.LoadMemory(prog)
	if err != nil {
		return nil, err
	}
	m := &Machine{prog: prog, dec: prog.Decoded(), mem: mem, pc: prog.Entry, storeHash: DigestSeed}
	m.regs[isa.RegSP] = program.StackTop
	return m, nil
}

// NewWithMemory wraps existing architectural state (used by the pipeline
// to share a memory image with its oracle).
func NewWithMemory(prog *program.Program, mem *program.Memory) *Machine {
	m := &Machine{prog: prog, dec: prog.Decoded(), mem: mem, pc: prog.Entry, storeHash: DigestSeed}
	m.regs[isa.RegSP] = program.StackTop
	return m
}

// PC returns the address of the next instruction to execute.
func (m *Machine) PC() uint32 { return m.pc }

// Reg returns the current value of register r.
func (m *Machine) Reg(r isa.Reg) uint32 { return m.regs[r] }

// SetReg writes register r (writes to r0 are discarded, as in hardware).
func (m *Machine) SetReg(r isa.Reg, v uint32) {
	if r != isa.RegZero {
		m.regs[r] = v
	}
}

// FReg returns the bit pattern of FP register r.
func (m *Machine) FReg(r isa.Reg) uint32 { return m.fregs[r] }

// SetFReg writes FP register r (no register is hardwired in the FP
// file).
func (m *Machine) SetFReg(r isa.Reg, v uint32) { m.fregs[r] = v }

// Mem exposes the architectural memory.
func (m *Machine) Mem() *program.Memory { return m.mem }

// Halted reports whether the program has executed halt.
func (m *Machine) Halted() bool { return m.halted }

// InstCount returns the number of instructions executed so far.
func (m *Machine) InstCount() uint64 { return m.icount }

// Output returns the bytes emitted by "out" instructions.
func (m *Machine) Output() []byte { return m.output }

// FRegFile returns a copy of the FP register file.
func (m *Machine) FRegFile() [isa.NumRegs]uint32 { return m.fregs }

// StoreHash returns the running hash over the store sequence (DigestSeed
// when no store has executed).
func (m *Machine) StoreHash() uint64 { return m.storeHash }

// StoreCount returns the number of stores executed.
func (m *Machine) StoreCount() uint64 { return m.storeCount }

// Clone returns a deep copy of the machine's architectural state that
// reads and writes through memory instead of the original's image. The
// caller supplies memory because machine forking shares page-granular
// memory snapshots separately from the scalar state (see
// pipeline.Checkpoint); program and decode tables are immutable and
// stay shared.
func (m *Machine) Clone(memory *program.Memory) *Machine {
	cp := *m
	cp.mem = memory
	cp.output = append([]byte(nil), m.output...)
	return &cp
}

// CloneInto is Clone reusing dst's allocations when possible. A nil dst
// allocates fresh.
func (m *Machine) CloneInto(dst *Machine, memory *program.Memory) *Machine {
	if dst == nil {
		return m.Clone(memory)
	}
	out := dst.output
	*dst = *m
	dst.mem = memory
	dst.output = append(out[:0], m.output...)
	return dst
}

// Trace describes one architecturally executed instruction. The pipeline
// simulator consumes traces as its oracle stream.
type Trace struct {
	PC   uint32
	Inst isa.Instruction

	// A and B are the source operand values read (zero when unused).
	A, B uint32
	// Result is the value written to the destination register, if any.
	Result uint32
	// HasResult reports whether a register was written.
	HasResult bool

	// NextPC is the address of the following instruction (the branch
	// target for taken control transfers).
	NextPC uint32
	// Taken reports, for control instructions, whether the transfer was
	// taken (always true for jumps).
	Taken bool

	// Addr and MemWidth describe the data-memory access, if any.
	Addr     uint32
	MemWidth uint32
	// StoreValue is the raw value a store writes (before truncation).
	StoreValue uint32

	Halt bool
}

// Step executes one instruction and returns its trace. After halt it
// returns ErrHalted.
func (m *Machine) Step() (Trace, error) {
	if m.halted {
		return Trace{}, ErrHalted
	}
	in, ok := m.dec.At(m.pc)
	if !ok {
		// Out-of-text or undecodable: take the uncached path for the
		// descriptive error.
		var err error
		in, err = m.prog.Fetch(m.pc)
		if err != nil {
			return Trace{}, fmt.Errorf("emu: at pc %#08x: %w", m.pc, err)
		}
	}
	tr := Trace{PC: m.pc, Inst: in, NextPC: m.pc + isa.WordBytes}
	rs1File, rs2File := in.Op.SourceFiles()
	if in.Op.ReadsRs1() {
		if rs1File == isa.FileFP {
			tr.A = m.fregs[in.Rs1]
		} else {
			tr.A = m.regs[in.Rs1]
		}
	}
	if in.Op.ReadsRs2() {
		if rs2File == isa.FileFP {
			tr.B = m.fregs[in.Rs2]
		} else {
			tr.B = m.regs[in.Rs2]
		}
	}

	switch {
	case in.Op == isa.OpHalt:
		m.halted = true
		tr.Halt = true
	case in.Op == isa.OpOut:
		m.output = append(m.output, byte(tr.A))
	case in.Op.IsLoad():
		tr.Addr = isa.EffectiveAddress(tr.A, in.Imm)
		tr.MemWidth = isa.MemWidth(in.Op)
		raw, err := m.mem.Read(tr.Addr, tr.MemWidth)
		if err != nil {
			return Trace{}, fmt.Errorf("emu: at pc %#08x (%s): %w", m.pc, in, err)
		}
		tr.Result = isa.ExtendLoad(in.Op, raw)
		tr.HasResult = true
		if in.Op.DestFile() == isa.FileFP {
			m.SetFReg(in.Rd, tr.Result)
		} else {
			m.SetReg(in.Rd, tr.Result)
		}
	case in.Op.IsStore():
		tr.Addr = isa.EffectiveAddress(tr.A, in.Imm)
		tr.MemWidth = isa.MemWidth(in.Op)
		tr.StoreValue = tr.B
		if err := m.mem.Write(tr.Addr, tr.MemWidth, tr.B); err != nil {
			return Trace{}, fmt.Errorf("emu: at pc %#08x (%s): %w", m.pc, in, err)
		}
		m.storeHash = MixStore(m.storeHash, tr.Addr, tr.MemWidth, tr.B)
		m.storeCount++
	case in.Op.IsBranch():
		tr.Taken = isa.BranchTaken(in.Op, tr.A, tr.B)
		if tr.Taken {
			tr.NextPC = in.BranchTarget(m.pc)
		}
	case in.Op.IsJump():
		tr.Taken = true
		switch in.Op {
		case isa.OpJ:
			tr.NextPC = in.BranchTarget(m.pc)
		case isa.OpJal:
			tr.NextPC = in.BranchTarget(m.pc)
			tr.Result = m.pc + isa.WordBytes
			tr.HasResult = true
			m.SetReg(isa.LinkReg, tr.Result)
		case isa.OpJr:
			tr.NextPC = tr.A
		case isa.OpJalr:
			tr.NextPC = tr.A
			tr.Result = m.pc + isa.WordBytes
			tr.HasResult = true
			m.SetReg(in.Rd, tr.Result)
		}
	case in.Op.IsFP():
		tr.Result = isa.EvalFP(in.Op, tr.A, tr.B)
		tr.HasResult = true
		if in.Op.DestFile() == isa.FileFP {
			m.SetFReg(in.Rd, tr.Result)
		} else {
			m.SetReg(in.Rd, tr.Result)
		}
	default:
		tr.Result = isa.EvalALU(in.Op, tr.A, tr.B, in.Imm)
		tr.HasResult = true
		m.SetReg(in.Rd, tr.Result)
	}

	m.pc = tr.NextPC
	m.icount++
	return tr, nil
}

// Run executes until halt or until maxInsts instructions have executed
// (0 means no limit). It returns the number of instructions executed.
func (m *Machine) Run(maxInsts uint64) (uint64, error) {
	start := m.icount
	for !m.halted {
		if maxInsts > 0 && m.icount-start >= maxInsts {
			break
		}
		if _, err := m.Step(); err != nil {
			return m.icount - start, err
		}
	}
	return m.icount - start, nil
}

// RegFile returns a copy of the register file.
func (m *Machine) RegFile() [isa.NumRegs]uint32 { return m.regs }
