package reese_test

// Runnable documentation examples (go doc / go test run these).

import (
	"fmt"

	"reese"
)

// ExampleRun simulates one benchmark on the baseline machine and on a
// REESE machine with spare elements.
func ExampleRun() {
	prog, _ := reese.Workload("gcc", 0)
	base, _ := reese.Run(reese.StartingConfig(), prog, nil, 100_000)

	prog, _ = reese.Workload("gcc", 0)
	prot, _ := reese.Run(reese.StartingConfig().WithReese().WithSpares(2, 0), prog, nil, 100_000)

	fmt.Printf("baseline hit the instruction budget: %v\n", base.Committed >= 100_000)
	fmt.Printf("REESE verifies every instruction: %v\n", prot.Reese.Verified >= prot.Committed)
	fmt.Printf("REESE is slower: %v\n", prot.IPC < base.IPC)
	// Output:
	// baseline hit the instruction budget: true
	// REESE verifies every instruction: true
	// REESE is slower: true
}

// ExampleAssemble builds and runs a custom SS32 program.
func ExampleAssemble() {
	prog, err := reese.Assemble("triangle", `
		li r1, 10        ; n
		li r2, 0         ; sum
	loop:
		add r2, r2, r1
		addi r1, r1, -1
		bne r1, r0, loop
		out r2           ; emit sum(1..10) = 55
		halt
	`)
	if err != nil {
		panic(err)
	}
	m, _ := reese.Emulate(prog, 0)
	fmt.Println(m.Output()[0])
	// Output: 55
}

// ExampleFaultAt shows a single injected soft error being detected.
func ExampleFaultAt() {
	prog, _ := reese.Workload("li", 0)
	res, _ := reese.Run(reese.StartingConfig().WithReese(), prog, reese.FaultAt(1000, 6), 20_000)
	fmt.Printf("injected=%d detected=%d recoveries=%d\n",
		res.FaultsInjected, res.FaultsDetected, res.Recoveries)
	// Output: injected=1 detected=1 recoveries=1
}
