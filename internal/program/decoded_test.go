package program

import (
	"testing"

	"reese/internal/isa"
)

// buildTestProgram assembles a small text segment by hand: a few valid
// instructions plus one undecodable word injected directly.
func buildTestProgram(t *testing.T) *Program {
	t.Helper()
	p := New("dec")
	for _, in := range []isa.Instruction{
		{Op: isa.OpAddi, Rd: 1, Rs1: 0, Imm: 7},
		{Op: isa.OpAdd, Rd: 2, Rs1: 1, Rs2: 1},
		{Op: isa.OpHalt},
	} {
		if _, err := p.Append(in); err != nil {
			t.Fatal(err)
		}
	}
	return p
}

func TestDecodedMatchesWordByWordDecode(t *testing.T) {
	p := buildTestProgram(t)
	d := p.Decoded()
	if d.Len() != len(p.Text) {
		t.Fatalf("decoded len %d, text len %d", d.Len(), len(p.Text))
	}
	for i, w := range p.Text {
		addr := TextBase + uint32(i)*isa.WordBytes
		want, wantErr := isa.Decode(w)
		got, ok := d.At(addr)
		if wantErr != nil {
			if ok {
				t.Errorf("word %d: decoded cache has entry for undecodable word", i)
			}
			continue
		}
		if !ok || got != want {
			t.Errorf("word %d: cache %+v ok=%v, want %+v", i, got, ok, want)
		}
	}
}

func TestDecodedRejectsOutOfRange(t *testing.T) {
	p := buildTestProgram(t)
	d := p.Decoded()
	for _, addr := range []uint32{0, TextBase - 4, TextBase + 1, p.TextEnd(), DataBase} {
		if _, ok := d.At(addr); ok {
			t.Errorf("At(%#x) = ok, want miss", addr)
		}
	}
}

func TestDecodedRebuiltAfterAppend(t *testing.T) {
	p := buildTestProgram(t)
	d1 := p.Decoded()
	if _, err := p.Append(isa.Instruction{Op: isa.OpAddi, Rd: 3, Imm: 1}); err != nil {
		t.Fatal(err)
	}
	d2 := p.Decoded()
	if d2 == d1 {
		t.Fatal("decode cache not rebuilt after text grew")
	}
	addr := p.TextEnd() - isa.WordBytes
	in, ok := d2.At(addr)
	if !ok || in.Op != isa.OpAddi || in.Rd != 3 {
		t.Errorf("appended instruction not in rebuilt cache: %+v ok=%v", in, ok)
	}
}

func TestFetchAgreesWithDecoded(t *testing.T) {
	p := buildTestProgram(t)
	for addr := TextBase; addr < p.TextEnd(); addr += isa.WordBytes {
		viaFetch, err := p.Fetch(addr)
		if err != nil {
			t.Fatalf("Fetch(%#x): %v", addr, err)
		}
		viaCache, ok := p.Decoded().At(addr)
		if !ok || viaCache != viaFetch {
			t.Errorf("Fetch/Decoded disagree at %#x", addr)
		}
	}
	if _, err := p.Fetch(p.TextEnd()); err == nil {
		t.Error("Fetch past text end should fail")
	}
}
