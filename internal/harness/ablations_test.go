package harness

import (
	"strings"
	"testing"

	"reese/internal/config"
)

func TestPredictorSweep(t *testing.T) {
	tbl, gaps, err := PredictorSweep(Options{Insts: 40_000})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"gshare", "bimodal", "static-taken"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("table missing %q", want)
		}
	}
	// The REESE gap is a property of the execution substrate, not the
	// predictor: it must stay in a sane band for every dynamic
	// predictor (statics change the baseline so much the gap shifts).
	for _, k := range []config.PredictorKind{config.PredGshare, config.PredBimodal, config.PredCombining} {
		if gaps[k] < 3 || gaps[k] > 35 {
			t.Errorf("%s: gap %.1f%% out of band", k, gaps[k])
		}
	}
}

func TestPredictorKindString(t *testing.T) {
	kinds := []config.PredictorKind{
		config.PredGshare, config.PredBimodal, config.PredCombining,
		config.PredStaticTaken, config.PredStaticNotTaken,
	}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "unknown" || seen[s] {
			t.Errorf("kind %d stringifies to %q", k, s)
		}
		seen[s] = true
	}
	if config.PredictorKind(99).String() != "unknown" {
		t.Error("unknown kind")
	}
}

func TestGshareBeatsStaticOnPipeline(t *testing.T) {
	opt := Options{Insts: 40_000}
	g, err := runOne(config.Starting(), "gcc", opt)
	if err != nil {
		t.Fatal(err)
	}
	s, err := runOne(config.Starting().WithPredictor(config.PredStaticNotTaken), "gcc", opt)
	if err != nil {
		t.Fatal(err)
	}
	if g.IPC <= s.IPC {
		t.Errorf("gshare IPC %.3f should beat static-not-taken %.3f", g.IPC, s.IPC)
	}
	if g.BranchAcc <= s.BranchAcc {
		t.Errorf("gshare accuracy %.3f should beat static %.3f", g.BranchAcc, s.BranchAcc)
	}
}

func TestHighWaterSweep(t *testing.T) {
	tbl, res, err := HighWaterSweep([]int{4, 31}, Options{Insts: 40_000})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tbl, "high water") {
		t.Errorf("table:\n%s", tbl)
	}
	// A very low mark gives R-stream priority almost always, starving
	// the P stream: it must not beat the near-full mark.
	if res[4] > res[31] {
		t.Errorf("high-water 4 (%.3f IPC) should not beat 31 (%.3f)", res[4], res[31])
	}
}

func TestDetectionLatencyVsRSQ(t *testing.T) {
	tbl, res, err := DetectionLatencyVsRSQ([]int{8, 64}, Options{Insts: 60_000})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tbl, "rsq size") {
		t.Errorf("table:\n%s", tbl)
	}
	// The paper's §2 Δt argument: a longer queue separates the P and R
	// executions further.
	if res[8] >= res[64] {
		t.Errorf("detection latency should grow with RSQ size: rsq8=%.1f rsq64=%.1f", res[8], res[64])
	}
	if res[8] <= 0 {
		t.Error("latency must be positive")
	}
}

func TestWrongPathSweep(t *testing.T) {
	tbl, err := WrongPathSweep(Options{Insts: 40_000})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"stall", "wrong-path", "gap %"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("table missing %q:\n%s", want, tbl)
		}
	}
}

func TestSchemeComparison(t *testing.T) {
	tbl, res, err := SchemeComparison(Options{Insts: 60_000})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tbl, "REESE") || !strings.Contains(tbl, "duplicate-at-scheduler") {
		t.Errorf("table:\n%s", tbl)
	}
	if res["reese"] <= res["dup-dispatch"] {
		t.Errorf("REESE (%.3f) should beat duplicate-at-scheduler (%.3f) — §4.4's point",
			res["reese"], res["dup-dispatch"])
	}
	if res["baseline"] <= res["reese"] {
		t.Errorf("baseline (%.3f) should beat REESE (%.3f)", res["baseline"], res["reese"])
	}
}

func TestPermanentFaultCoverage(t *testing.T) {
	tbl, err := PermanentFaultCoverage(Options{Insts: 40_000})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"RESO", "silent corruption", "reported to the user"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("table missing %q:\n%s", want, tbl)
		}
	}
}
