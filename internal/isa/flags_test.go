package isa

import "testing"

// TestOpFlagsMatchTables cross-checks the init-time flag table against
// the opTable ground truth and the switch-based FP classification the
// table is derived from, for every opcode.
func TestOpFlagsMatchTables(t *testing.T) {
	for op := Op(0); op < numOps; op++ {
		info := &opTable[op]
		if got, want := op.IsLoad(), op != OpInvalid && info.class == ClassMemRead; got != want {
			t.Errorf("%v.IsLoad() = %v, want %v", op, got, want)
		}
		if got, want := op.IsStore(), op != OpInvalid && info.class == ClassMemWrite; got != want {
			t.Errorf("%v.IsStore() = %v, want %v", op, got, want)
		}
		if got, want := op.IsBranch(), op != OpInvalid && info.format == FormatB; got != want {
			t.Errorf("%v.IsBranch() = %v, want %v", op, got, want)
		}
		if got, want := op.IsJump(), op == OpJ || op == OpJal || op == OpJr || op == OpJalr; got != want {
			t.Errorf("%v.IsJump() = %v, want %v", op, got, want)
		}
		if got, want := op.IsIndirect(), op == OpJr || op == OpJalr; got != want {
			t.Errorf("%v.IsIndirect() = %v, want %v", op, got, want)
		}
		if got, want := op.IsFP(), isFPSlow(op); got != want {
			t.Errorf("%v.IsFP() = %v, want %v", op, got, want)
		}
		if got, want := op.ReadsRs1(), op != OpInvalid && info.reads[0]; got != want {
			t.Errorf("%v.ReadsRs1() = %v, want %v", op, got, want)
		}
		if got, want := op.ReadsRs2(), op != OpInvalid && info.reads[1]; got != want {
			t.Errorf("%v.ReadsRs2() = %v, want %v", op, got, want)
		}
		if got, want := op.WritesRd(), op != OpInvalid && info.writes; got != want {
			t.Errorf("%v.WritesRd() = %v, want %v", op, got, want)
		}
		if got, want := op.IsMem(), op.IsLoad() || op.IsStore(); got != want {
			t.Errorf("%v.IsMem() = %v, want %v", op, got, want)
		}
		if got, want := op.IsControl(), op.IsBranch() || op.IsJump(); got != want {
			t.Errorf("%v.IsControl() = %v, want %v", op, got, want)
		}
	}
	// Out-of-range opcodes classify as nothing.
	if bad := Op(200); bad.IsLoad() || bad.IsFP() || bad.ReadsRs1() {
		t.Error("out-of-range opcode classified as something")
	}
}
