package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"reese/internal/harness"
	"reese/internal/pipeline"
	"reese/internal/workload"
)

// testInsts keeps figure cells fast; results still exercise the full
// grid machinery.
const testInsts = 5_000

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body any) JobView {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", strings.NewReader(string(raw)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST %s: status %d: %s", url, resp.StatusCode, data)
	}
	var v JobView
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatalf("POST %s: decode %q: %v", url, data, err)
	}
	return v
}

// postJSONAny is postJSON for jobs expected to end badly: a waited-out
// failed job answers 500 with the JobView as its body.
func postJSONAny(t *testing.T, url string, body any) (JobView, int) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", strings.NewReader(string(raw)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var v JobView
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatalf("POST %s: decode %q: %v", url, data, err)
	}
	return v, resp.StatusCode
}

func getJob(t *testing.T, base, id string) JobView {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func scrapeMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	return string(data)
}

// TestFigureEndToEnd is the acceptance-criteria test: a figure
// requested over HTTP (submit → poll → result) must render the
// byte-identical table an in-process harness call produces.
func TestFigureEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// Asynchronous submit, then poll until done.
	v := postJSON(t, ts.URL+"/v1/figure", FigureRequest{Figure: "2", Insts: testInsts})
	if v.State != StateQueued && v.State != StateRunning && v.State != StateDone {
		t.Fatalf("fresh job in state %q", v.State)
	}
	deadline := time.Now().Add(2 * time.Minute)
	for !v.State.terminal() {
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %q at deadline", v.ID, v.State)
		}
		time.Sleep(50 * time.Millisecond)
		v = getJob(t, ts.URL, v.ID)
	}
	if v.State != StateDone {
		t.Fatalf("job %s finished %q: %s", v.ID, v.State, v.Error)
	}
	var payload FigurePayload
	if err := json.Unmarshal(v.Result, &payload); err != nil {
		t.Fatal(err)
	}

	want, err := harness.Figure2(harness.Options{Insts: testInsts})
	if err != nil {
		t.Fatal(err)
	}
	if payload.Table != want.Table() {
		t.Errorf("HTTP figure table differs from in-process harness call\n got:\n%s\nwant:\n%s", payload.Table, want.Table())
	}
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := json.Marshal(payload.Figure)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotJSON) != string(wantJSON) {
		t.Error("HTTP figure series differs from in-process harness call")
	}
}

// TestCacheHit locks in the second identical request being served from
// the cache with the hit counter incremented and identical bytes.
func TestCacheHit(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	req := RunRequest{Workload: "li", Insts: testInsts}
	first := postJSON(t, ts.URL+"/v1/run?wait=120s", req)
	if first.State != StateDone {
		t.Fatalf("first run finished %q: %s", first.State, first.Error)
	}
	if first.Cached {
		t.Fatal("first request claims to be cached")
	}

	second := postJSON(t, ts.URL+"/v1/run?wait=120s", req)
	if second.State != StateDone {
		t.Fatalf("second run finished %q: %s", second.State, second.Error)
	}
	if !second.Cached {
		t.Error("second identical request was not served from cache")
	}
	if string(first.Result) != string(second.Result) {
		t.Error("cached result differs from computed result")
	}
	if second.ID == first.ID {
		t.Error("cache hit reused the first job's ID")
	}

	// A semantically identical sparse spelling must hit too (defaults
	// are canonicalized into the key).
	sparse := postJSON(t, ts.URL+"/v1/run?wait=120s",
		map[string]any{"workload": "li", "insts": testInsts, "iters": 0})
	if !sparse.Cached {
		t.Error("sparse spelling of the same request missed the cache")
	}

	metrics := scrapeMetrics(t, ts.URL)
	if !strings.Contains(metrics, "reese_serve_cache_hits_total 2") {
		t.Errorf("metrics missing cache_hits_total 2:\n%s", grepMetrics(metrics, "cache"))
	}
	if !strings.Contains(metrics, "reese_serve_cache_misses_total 1") {
		t.Errorf("metrics missing cache_misses_total 1:\n%s", grepMetrics(metrics, "cache"))
	}

	// The run result must match a direct pipeline computation bit for
	// bit (determinism is what makes the cache sound).
	var got pipeline.Result
	if err := json.Unmarshal(second.Result, &got); err != nil {
		t.Fatal(err)
	}
	if got.Workload != "li" || got.Committed == 0 || got.IPC == 0 {
		t.Errorf("suspicious cached result: %+v", got)
	}
}

// TestClientDisconnectCancelsRun locks the cancellation path: a
// synchronous (waiting) submitter that disconnects stops its
// simulation mid-run.
func TestClientDisconnectCancelsRun(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	// A run long enough that it cannot finish before we disconnect:
	// a large program and a large budget.
	spec, _ := workload.ByName("gcc")
	body, _ := json.Marshal(RunRequest{
		Workload: "gcc",
		Insts:    40_000_000,
		Iters:    spec.DefaultIters * 400,
	})
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		ts.URL+"/v1/run?wait=120s", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")

	done := make(chan error, 1)
	go func() {
		_, derr := http.DefaultClient.Do(req)
		done <- derr
	}()

	// Give the job time to enter the cycle loop, then vanish.
	waitFor(t, 10*time.Second, func() bool { return s.jobs.running.Load() == 1 })
	cancel()
	if derr := <-done; derr == nil {
		t.Fatal("expected the disconnected request to error")
	}

	// The simulation must stop promptly — the context check is every
	// 16k cycles, so anything beyond a couple of seconds means the
	// cancellation never reached the cycle loop.
	waitFor(t, 5*time.Second, func() bool { return s.jobs.running.Load() == 0 })

	views := s.jobs.list()
	if len(views) != 1 {
		t.Fatalf("expected 1 job, have %d", len(views))
	}
	if views[0].State != StateCanceled {
		t.Errorf("job state %q after disconnect, want %q (err: %s)", views[0].State, StateCanceled, views[0].Error)
	}

	metrics := scrapeMetrics(t, ts.URL)
	want := `reese_serve_jobs_completed_total{kind="run",state="canceled"} 1`
	if !strings.Contains(metrics, want) {
		t.Errorf("metrics missing %q:\n%s", want, grepMetrics(metrics, "jobs"))
	}
}

// TestJobTimeout: a ?timeout= bound expires the attempt; with retries
// disabled the job fails for good with a deadline cause and a single
// recorded attempt. (Deadline expiry is a transient failure now — see
// TestRetryAfterDeadline for the retrying path.)
func TestJobTimeout(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxRetries: -1})
	spec, _ := workload.ByName("perl")
	v, _ := postJSONAny(t, ts.URL+"/v1/run?timeout=150ms&wait=60s", RunRequest{
		Workload: "perl",
		Insts:    40_000_000,
		Iters:    spec.DefaultIters * 400,
	})
	if v.State != StateFailed {
		t.Errorf("timed-out job state %q, want %q (err: %s)", v.State, StateFailed, v.Error)
	}
	if !strings.Contains(v.LastCause, "deadline") {
		t.Errorf("last cause %q, want a deadline cause", v.LastCause)
	}
	if v.Attempt != 1 || len(v.Attempts) != 1 {
		t.Errorf("attempt count %d (%d records), want exactly 1 with retries disabled", v.Attempt, len(v.Attempts))
	}
}

// TestRetryAfterDeadline: with a retry budget, a deadline expiry is
// retried with backoff — attempt history, last cause, and the retried
// counter are all visible.
func TestRetryAfterDeadline(t *testing.T) {
	_, ts := newTestServer(t, Config{
		MaxRetries:   1,
		RetryBackoff: 20 * time.Millisecond,
	})
	spec, _ := workload.ByName("perl")
	v, code := postJSONAny(t, ts.URL+"/v1/run?timeout=120ms&wait=60s", RunRequest{
		Workload: "perl",
		Insts:    40_000_000,
		Iters:    spec.DefaultIters * 400,
	})
	if code != http.StatusInternalServerError {
		t.Errorf("waited-out failed job answered %d, want 500", code)
	}
	if v.State != StateFailed {
		t.Fatalf("job state %q, want failed after retries exhausted (err: %s)", v.State, v.Error)
	}
	if v.Attempt != 2 || len(v.Attempts) != 2 {
		t.Errorf("attempt count %d (%d records), want 2 (original + 1 retry)", v.Attempt, len(v.Attempts))
	}
	if !strings.Contains(v.Error, "retries exhausted") {
		t.Errorf("error %q does not mention exhausted retries", v.Error)
	}
	for _, a := range v.Attempts {
		if !strings.Contains(a.Cause, "deadline") {
			t.Errorf("attempt %d cause %q, want a deadline cause", a.Number, a.Cause)
		}
	}
	metrics := scrapeMetrics(t, ts.URL)
	for _, want := range []string{
		"reese_serve_jobs_retried_total 1",
		"reese_serve_jobs_deadline_exceeded_total 2",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q:\n%s", want, grepMetrics(metrics, "jobs_"))
		}
	}
}

// TestRetryingJobExposesNextRetry: while a job sits out its backoff,
// GET /v1/jobs/{id} shows state retrying, the attempt count, the last
// cause, and the next-retry time; cancelling it abandons the retry.
func TestRetryingJobExposesNextRetry(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers:      1,
		MaxRetries:   1,
		RetryBackoff: 30 * time.Second, // long enough to observe the retrying state
		BeforeAttempt: func(ctx context.Context, jobID, kind string, attempt int) {
			if attempt == 1 {
				panic("first attempt always fails")
			}
		},
	})
	v := postJSON(t, ts.URL+"/v1/run", RunRequest{Workload: "li", Insts: testInsts})
	deadline := time.Now().Add(10 * time.Second)
	for v.State != StateRetrying {
		if time.Now().After(deadline) {
			t.Fatalf("job %s never entered retrying (state %q)", v.ID, v.State)
		}
		time.Sleep(10 * time.Millisecond)
		v = getJob(t, ts.URL, v.ID)
	}
	if v.NextRetry == nil || !v.NextRetry.After(time.Now()) {
		t.Errorf("retrying job next_retry = %v, want a future time", v.NextRetry)
	}
	if v.Attempt != 1 || !strings.Contains(v.LastCause, "panic: first attempt always fails") {
		t.Errorf("retrying job attempt %d cause %q", v.Attempt, v.LastCause)
	}
	if v.Attempts[0].Stack == "" {
		t.Error("panicked attempt record has no stack")
	}

	// Cancel the parked retry so shutdown doesn't wait out the backoff.
	delReq, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+v.ID, nil)
	resp, err := http.DefaultClient.Do(delReq)
	if err != nil {
		t.Fatal(err)
	}
	var after JobView
	if err := json.NewDecoder(resp.Body).Decode(&after); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if after.State != StateCanceled {
		t.Errorf("cancelled retrying job state %q, want canceled", after.State)
	}
	if after.NextRetry != nil {
		t.Error("terminal job still advertises next_retry")
	}
}

// TestDeleteCancelsQueuedJob: DELETE cancels a job that is still
// waiting behind the workers.
func TestDeleteCancelsQueuedJob(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 8})
	spec, _ := workload.ByName("go")
	long := RunRequest{Workload: "go", Insts: 40_000_000, Iters: spec.DefaultIters * 400}

	running := postJSON(t, ts.URL+"/v1/run", long)
	waitFor(t, 10*time.Second, func() bool { return s.jobs.running.Load() == 1 })
	queued := postJSON(t, ts.URL+"/v1/run", RunRequest{Workload: "go", Insts: 39_999_999, Iters: long.Iters})
	if queued.State != StateQueued {
		t.Fatalf("second job state %q, want queued", queued.State)
	}

	delReq, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+queued.ID, nil)
	resp, err := http.DefaultClient.Do(delReq)
	if err != nil {
		t.Fatal(err)
	}
	var v JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if v.State != StateCanceled {
		t.Errorf("deleted job state %q, want canceled", v.State)
	}

	// Clean up the long runner too so Shutdown is quick.
	delReq, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+running.ID, nil)
	if resp, err := http.DefaultClient.Do(delReq); err == nil {
		resp.Body.Close()
	}
}

// TestQueueBackpressure: a full queue rejects submits with 503.
func TestQueueBackpressure(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	spec, _ := workload.ByName("vortex")
	long := func(insts uint64) []byte {
		raw, _ := json.Marshal(RunRequest{Workload: "vortex", Insts: insts, Iters: spec.DefaultIters * 400})
		return raw
	}

	first := postJSON(t, ts.URL+"/v1/run", RunRequest{Workload: "vortex", Insts: 40_000_000, Iters: spec.DefaultIters * 400})
	waitFor(t, 10*time.Second, func() bool { return s.jobs.running.Load() == 1 })
	second := postJSON(t, ts.URL+"/v1/run", RunRequest{Workload: "vortex", Insts: 40_000_001, Iters: spec.DefaultIters * 400})
	if second.State != StateQueued {
		t.Fatalf("second job state %q, want queued", second.State)
	}

	resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(string(long(40_000_002))))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("third submit status %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("503 carries no Retry-After header")
	}
	var shed errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&shed); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(shed.Error, "queue full") {
		t.Errorf("503 body %q does not name the queue", shed.Error)
	}
	if shed.RetryAfterMS < 1000 {
		t.Errorf("retry_after_ms %d, want >= 1000 (clamped floor)", shed.RetryAfterMS)
	}

	for _, id := range []string{first.ID, second.ID} {
		delReq, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
		if resp, err := http.DefaultClient.Do(delReq); err == nil {
			resp.Body.Close()
		}
	}
}

// TestGracefulDrain: Shutdown finishes queued work before returning,
// and post-drain submits are refused.
func TestGracefulDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	v := postJSON(t, ts.URL+"/v1/run", RunRequest{Workload: "ijpeg", Insts: testInsts})

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	got := getJob(t, ts.URL, v.ID)
	if got.State != StateDone {
		t.Errorf("job state %q after drain, want done (err: %s)", got.State, got.Error)
	}

	resp, err := http.Post(ts.URL+"/v1/run", "application/json",
		strings.NewReader(`{"workload":"ijpeg"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-drain submit status %d, want 503", resp.StatusCode)
	}
	// Shedding because of shutdown must be distinguishable from
	// backpressure: the client should fail over, not wait out a queue.
	var shed errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&shed); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(shed.Error, "shutting down") {
		t.Errorf("post-drain 503 body %q does not say shutting down", shed.Error)
	}
}

// TestHealthzAndBadRequests covers the probe and input validation.
func TestHealthzAndBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health["status"] != "ok" {
		t.Errorf("healthz status %v", health["status"])
	}

	for _, body := range []string{
		`{"workload":"nonesuch"}`,
		`{"workload":"gcc","insts":999999999999}`,
		`{not json`,
	} {
		resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %s: status %d, want 400", body, resp.StatusCode)
		}
	}
	resp, err = http.Post(ts.URL+"/v1/figure", "application/json", strings.NewReader(`{"figure":"9"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("figure 9: status %d, want 400", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/v1/jobs/j-999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", resp.StatusCode)
	}
}

// TestMetricsExposition asserts the endpoint renders well-formed
// families with the expected names after some traffic.
func TestMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	postJSON(t, ts.URL+"/v1/run?wait=120s", RunRequest{Workload: "gcc", Insts: testInsts})

	metrics := scrapeMetrics(t, ts.URL)
	for _, want := range []string{
		"# TYPE reese_serve_jobs_submitted_total counter",
		`reese_serve_jobs_submitted_total{kind="run"} 1`,
		`reese_serve_jobs_completed_total{kind="run",state="done"} 1`,
		"# TYPE reese_serve_jobs_queued gauge",
		"# TYPE reese_serve_jobs_running gauge",
		"# TYPE reese_serve_cache_hits_total counter",
		"# TYPE reese_serve_sim_insts_total counter",
		"# TYPE reese_serve_http_request_duration_seconds histogram",
		`reese_serve_http_requests_total{path="/v1/run",code="200"} 1`,
		`reese_serve_http_request_duration_seconds_bucket{path="/v1/run",le="+Inf"} 1`,
		"# TYPE reese_serve_job_queue_wait_seconds histogram",
		"reese_serve_job_queue_wait_seconds_count 1",
		"# TYPE reese_serve_job_attempt_seconds histogram",
		`reese_serve_job_attempt_seconds_count{outcome="ok"} 1`,
		"# TYPE go_goroutines gauge",
		"# TYPE go_heap_alloc_bytes gauge",
		"# TYPE go_gc_pause_seconds_total gauge",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	// sim_insts_total must reflect the committed instructions.
	var insts uint64
	if _, err := fmt.Sscanf(findLine(metrics, "reese_serve_sim_insts_total "), "reese_serve_sim_insts_total %d", &insts); err != nil {
		t.Fatalf("parse sim_insts_total: %v", err)
	}
	// Commit retires up to Width instructions per cycle, so the budget
	// can overshoot by a cycle's worth.
	if insts == 0 || insts > testInsts+64 {
		t.Errorf("sim_insts_total %d, want (0, %d]", insts, testInsts+64)
	}
}

// TestJobSpans locks the span tree served from GET /v1/jobs/{id}: a
// completed job carries a closed root span with a queue-wait child and
// one attempt child per execution, outcomes filled in; a cache hit
// carries its cache-lookup span instead.
func TestJobSpans(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	req := RunRequest{Workload: "perl", Insts: testInsts}
	v := postJSON(t, ts.URL+"/v1/run?wait=120s", req)
	if v.State != StateDone {
		t.Fatalf("run finished %q: %s", v.State, v.Error)
	}
	if v.Spans == nil {
		t.Fatal("done job has no span tree")
	}
	if v.Spans.Name != "job run" || v.Spans.End == nil || v.Spans.Outcome != string(StateDone) {
		t.Errorf("root span %q end=%v outcome=%q, want closed 'job run' with outcome done",
			v.Spans.Name, v.Spans.End, v.Spans.Outcome)
	}
	qw := v.Spans.Find("queue-wait")
	if qw == nil || qw.End == nil {
		t.Errorf("queue-wait span missing or open: %+v", qw)
	}
	att := v.Spans.Find("attempt 1")
	if att == nil || att.End == nil || att.Outcome != "ok" {
		t.Errorf("attempt 1 span missing/open/mislabeled: %+v", att)
	}
	if att != nil && qw != nil && att.Start.Before(qw.Start) {
		t.Error("attempt started before the job was queued")
	}

	// The same spans must come back on a later poll (snapshot clones,
	// not aliases).
	polled := getJob(t, ts.URL, v.ID)
	if polled.Spans == nil || polled.Spans.Find("attempt 1") == nil {
		t.Error("polled job view lost its span tree")
	}

	// A cache hit is a different trace: no queue-wait, a cache-lookup
	// child with outcome "hit".
	hit := postJSON(t, ts.URL+"/v1/run?wait=120s", req)
	if !hit.Cached {
		t.Fatal("second identical request missed the cache")
	}
	if hit.Spans == nil {
		t.Fatal("cached job has no span tree")
	}
	if cl := hit.Spans.Find("cache-lookup"); cl == nil || cl.Outcome != "hit" {
		t.Errorf("cache-lookup span missing or mislabeled: %+v", cl)
	}
	if hit.Spans.Find("queue-wait") != nil {
		t.Error("cached job claims to have waited in the queue")
	}
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not met before deadline")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func grepMetrics(metrics, substr string) string {
	var out []string
	for _, line := range strings.Split(metrics, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

func findLine(metrics, prefix string) string {
	for _, line := range strings.Split(metrics, "\n") {
		if strings.HasPrefix(line, prefix) {
			return line
		}
	}
	return ""
}
