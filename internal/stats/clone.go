package stats

// Clone returns an independent deep copy of the histogram (snapshot
// support: forked machines carry their own detection-latency
// distributions).
func (h *Histogram) Clone() *Histogram {
	cp := *h
	cp.buckets = make(map[uint64]uint64, len(h.buckets))
	for k, v := range h.buckets {
		cp.buckets[k] = v
	}
	return &cp
}

// ExtrapolateFrom scales the histogram as if the observations recorded
// since prev repeated n more times (hang fast-forward over a periodic
// detection/recovery livelock: each period re-records the same latency
// values, so buckets, count and sum grow linearly while min and max are
// already saturated by the first occurrence).
func (h *Histogram) ExtrapolateFrom(prev *Histogram, n uint64) {
	if n == 0 || h.count == prev.count {
		return
	}
	for k, v := range h.buckets {
		h.buckets[k] = v + (v-prev.buckets[k])*n
	}
	h.count += (h.count - prev.count) * n
	h.sum += (h.sum - prev.sum) * n
}
