package obs

// The flight recorder: a fixed-size ring buffer of per-instruction
// lifecycle events. Recording is a bounds-checked array store — no
// allocation, no formatting — so it can stay armed on long runs and be
// dumped only when something interesting happens (a comparator hit, a
// stall plateau, an operator request). The dump renders as Chrome
// trace-event JSON, loadable in Perfetto or chrome://tracing, with one
// lane per pipeline structure and per functional unit.

import (
	"fmt"
	"io"
	"strconv"

	"reese/internal/isa"
)

// EventKind labels a pipeline lifecycle event. It is shared with
// package pipeline's line-oriented trace (pipeline.EventKind is an
// alias of this type).
type EventKind uint8

// Pipeline lifecycle events.
const (
	EvFetch EventKind = iota
	EvDispatch
	EvIssue
	EvWriteback
	EvEnterRSQ
	EvDispatchR
	EvIssueR
	EvVerify
	EvCommit
	EvMispredict
	EvFaultInjected
	EvMismatch
	EvRecovery
	EvDivergence

	// NumEventKinds sizes per-kind arrays.
	NumEventKinds
)

var eventNames = [NumEventKinds]string{
	EvFetch:         "FETCH",
	EvDispatch:      "DISPATCH",
	EvIssue:         "ISSUE",
	EvWriteback:     "WRITEBACK",
	EvEnterRSQ:      "ENTER-RSQ",
	EvDispatchR:     "DISPATCH-R",
	EvIssueR:        "ISSUE-R",
	EvVerify:        "VERIFY",
	EvCommit:        "COMMIT",
	EvMispredict:    "MISPREDICT",
	EvFaultInjected: "FAULT",
	EvMismatch:      "MISMATCH",
	EvRecovery:      "RECOVERY",
	EvDivergence:    "DIVERGENCE",
}

func (k EventKind) String() string {
	if int(k) < len(eventNames) {
		return eventNames[k]
	}
	return fmt.Sprintf("event(%d)", uint8(k))
}

// Event is one recorded lifecycle point. It is pointer-free and fixed
// size so the ring buffer is a flat array the GC never scans into.
type Event struct {
	Cycle uint64
	Seq   uint64 // RUU sequence number (0 before dispatch assigns one)
	PC    uint32
	Inst  isa.Instruction
	Kind  EventKind
	// FU is the functional-unit kind + 1 (0 = no unit involved); Unit
	// is the instance index within the kind.
	FU   uint8
	Unit int16
}

// Recorder is the ring buffer. Not safe for concurrent use — it
// belongs to one CPU's cycle loop.
type Recorder struct {
	buf     []Event
	next    int
	n       int
	dropped uint64
	// scratch is WriteChromeTrace's event-emission buffer, kept on the
	// recorder so a pooled recorder dumping hundreds of rings reuses one
	// allocation. The dump copies it into the caller's writer before
	// returning, so it never aliases an exported blob.
	scratch []byte
}

// NewRecorder allocates a recorder holding the last capacity events.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = 1
	}
	return &Recorder{buf: make([]Event, capacity)}
}

// Record appends an event, overwriting the oldest when full. O(1), no
// allocation.
func (r *Recorder) Record(e Event) {
	r.buf[r.next] = e
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
	}
	if r.n < len(r.buf) {
		r.n++
	} else {
		r.dropped++
	}
}

// Reset empties the ring for reuse without reallocating or zeroing the
// backing array (stale entries are unreachable once n is 0). The triage
// pass recycles one recorder per pooled replay worker instead of
// allocating a fresh ring per escape.
func (r *Recorder) Reset() {
	r.next, r.n, r.dropped = 0, 0, 0
}

// Len reports how many events are held.
func (r *Recorder) Len() int { return r.n }

// Cap reports the ring capacity.
func (r *Recorder) Cap() int { return len(r.buf) }

// Dropped reports how many events were overwritten by wraparound.
func (r *Recorder) Dropped() uint64 { return r.dropped }

// Events returns the held events oldest-first (a copy).
func (r *Recorder) Events() []Event {
	out := make([]Event, 0, r.n)
	r.Scan(func(e Event) { out = append(out, e) })
	return out
}

// Scan calls fn for each held event, oldest-first, without copying the
// ring. The exporter and the triage pass iterate large rings hundreds of
// times per campaign; a copy per pass is measurable.
func (r *Recorder) Scan(fn func(Event)) {
	start := r.next - r.n
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < r.n; i++ {
		j := start + i
		if j >= len(r.buf) {
			j -= len(r.buf)
		}
		fn(r.buf[j])
	}
}

// ---------------------------------------------------------------------
// Chrome trace-event export
// ---------------------------------------------------------------------

// Trace lanes (Chrome trace "thread" ids). Functional-unit lanes start
// at fuLaneBase and encode kind and unit so every physical unit gets
// its own row.
const (
	laneEvents   = 0 // instants: mispredicts, faults, mismatches, recoveries
	laneFetchQ   = 1 // fetch → dispatch
	laneWindow   = 2 // dispatch → issue (operand wait + scheduling)
	laneRSQ      = 3 // RSQ entry → R-dispatch (recheck wait)
	laneCommit   = 4 // commit instants
	fuLaneBase   = 16
	fuLaneStride = 16 // units per kind lane block
)

// fuKindNames mirrors internal/fu's kind order; obs stays decoupled
// from that package so the recorder can be tested standalone.
var fuKindNames = [...]string{"int-alu", "int-mult", "mem-port", "fp-alu", "fp-mult"}

func fuLane(fu uint8, unit int16) int {
	return fuLaneBase + int(fu-1)*fuLaneStride + int(unit)
}

func fuLaneName(fu uint8, unit int16) string {
	kind := "fu"
	if int(fu-1) < len(fuKindNames) {
		kind = fuKindNames[fu-1]
	}
	return fmt.Sprintf("%s %d", kind, unit)
}

// appendJSONString appends s as a quoted JSON string. Event names are
// mnemonics and lane labels (plain ASCII), so the escape cases almost
// never fire, but the writer stays correct for arbitrary input.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	b = appendEscaped(b, s)
	return append(b, '"')
}

// appendEscaped appends s with JSON string escaping, no quotes.
func appendEscaped(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			b = append(b, '\\', c)
		case c < 0x20:
			b = append(b, fmt.Sprintf(`\u%04x`, c)...)
		default:
			b = append(b, c)
		}
	}
	return b
}

// seqState is the per-instruction pairing state the exporter threads
// between lifecycle events to turn points into duration slices.
type seqState struct {
	fetch, dispatch, issue, rsqEnter, rIssue uint64
	haveFetch, haveDispatch, haveIssue       bool
	haveRSQEnter, haveRIssue                 bool
	fu                                       uint8
	unit                                     int16
}

// WriteChromeTrace renders the held events as Chrome trace-event JSON
// ("JSON Object Format"), loadable in Perfetto. One lane per pipeline
// structure (fetch queue, window, RSQ), one per functional unit, plus
// instant lanes for commits and notable events. Cycle stamps map to
// microseconds so a 1-cycle stage shows as 1µs.
//
// The JSON is emitted by hand, compact, into a grown byte slice: the
// exporter sits on the fault-triage hot path (hundreds of full-ring
// dumps per campaign), where encoding/json's reflection, per-event
// maps, and indenting dominated the whole triage pass. Disassembly and
// PC strings repeat across every lifecycle event of an instruction, so
// both are memoized per dump.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	// Lane names, indexed by tid; "" means the lane never appeared.
	// A flat array keeps the per-writeback-event name registration to an
	// index test (the Sprintf only runs once per distinct unit).
	var lanes [fuLaneBase + len(fuKindNames)*fuLaneStride]string
	lanes[laneEvents] = "events"
	lanes[laneFetchQ] = "fetch-queue"
	lanes[laneWindow] = "window"
	lanes[laneCommit] = "commit"
	// Sequence numbers in a held ring are dense: each event carries one
	// of at most r.n distinct seqs drawn from a contiguous stretch of the
	// program. Pair by direct indexing into one zeroed slab — a map here
	// costs a hashed lookup per event, which dominated the dump on the
	// triage hot path. A map fallback covers pathological spans (a marker
	// with a far-off seq).
	var minSeq, maxSeq uint64
	empty := true
	r.Scan(func(e Event) {
		if empty {
			minSeq, maxSeq, empty = e.Seq, e.Seq, false
			return
		}
		if e.Seq < minSeq {
			minSeq = e.Seq
		}
		if e.Seq > maxSeq {
			maxSeq = e.Seq
		}
	})
	var st func(seq uint64) *seqState
	if span := maxSeq - minSeq + 1; !empty && span <= uint64(2*len(r.buf)+16) {
		slab := make([]seqState, span)
		st = func(seq uint64) *seqState { return &slab[seq-minSeq] }
	} else {
		states := make(map[uint64]*seqState, 1024)
		var slab []seqState
		st = func(seq uint64) *seqState {
			if s, ok := states[seq]; ok {
				return s
			}
			if len(slab) == cap(slab) {
				slab = make([]seqState, 0, 512)
			}
			slab = append(slab, seqState{})
			s := &slab[len(slab)-1]
			states[seq] = s
			return s
		}
	}

	names := make(map[isa.Instruction]string, 256)
	pcs := make(map[uint32]string, 256)

	// Every event entry is emitted comma-first; the lane-metadata block
	// written ahead of them is never empty, so the array stays valid.
	if cap(r.scratch) < 96*r.n {
		r.scratch = make([]byte, 0, 96*r.n)
	}
	evbuf := r.scratch[:0]
	slice := func(name, suffix string, lane int, from, to uint64, seq uint64, pc string) {
		evbuf = append(evbuf, `,{"name":`...)
		evbuf = appendName(evbuf, "", name, suffix)
		evbuf = append(evbuf, `,"ph":"X","ts":`...)
		evbuf = strconv.AppendUint(evbuf, from, 10)
		evbuf = append(evbuf, `,"dur":`...)
		evbuf = strconv.AppendUint(evbuf, to-from, 10)
		evbuf = append(evbuf, `,"pid":1,"tid":`...)
		evbuf = strconv.AppendInt(evbuf, int64(lane), 10)
		evbuf = appendArgs(evbuf, seq, pc)
	}
	instant := func(prefix, name string, lane int, at uint64, seq uint64, pc string) {
		evbuf = append(evbuf, `,{"name":`...)
		evbuf = appendName(evbuf, prefix, name, "")
		evbuf = append(evbuf, `,"ph":"i","ts":`...)
		evbuf = strconv.AppendUint(evbuf, at, 10)
		evbuf = append(evbuf, `,"pid":1,"tid":`...)
		evbuf = strconv.AppendInt(evbuf, int64(lane), 10)
		evbuf = append(evbuf, `,"s":"t"`...)
		evbuf = appendArgs(evbuf, seq, pc)
	}

	r.Scan(func(e Event) {
		name, ok := names[e.Inst]
		if !ok {
			name = e.Inst.String()
			names[e.Inst] = name
		}
		pc, ok := pcs[e.PC]
		if !ok {
			pc = fmt.Sprintf("%#08x", e.PC)
			pcs[e.PC] = pc
		}
		switch e.Kind {
		case EvFetch:
			s := st(e.Seq)
			s.fetch, s.haveFetch = e.Cycle, true
		case EvDispatch:
			s := st(e.Seq)
			if s.haveFetch {
				slice(name, "", laneFetchQ, s.fetch, e.Cycle, e.Seq, pc)
			}
			s.dispatch, s.haveDispatch = e.Cycle, true
		case EvIssue:
			s := st(e.Seq)
			if s.haveDispatch {
				slice(name, "", laneWindow, s.dispatch, e.Cycle, e.Seq, pc)
			}
			s.issue, s.haveIssue = e.Cycle, true
			s.fu, s.unit = e.FU, e.Unit
		case EvWriteback:
			s := st(e.Seq)
			if s.haveIssue && s.fu > 0 {
				lane := fuLane(s.fu, s.unit)
				if lanes[lane] == "" {
					lanes[lane] = fuLaneName(s.fu, s.unit)
				}
				slice(name, "", lane, s.issue, e.Cycle, e.Seq, pc)
			}
		case EvEnterRSQ:
			s := st(e.Seq)
			s.rsqEnter, s.haveRSQEnter = e.Cycle, true
		case EvDispatchR:
			s := st(e.Seq)
			if s.haveRSQEnter {
				lanes[laneRSQ] = "rsq"
				slice(name, " (rsq wait)", laneRSQ, s.rsqEnter, e.Cycle, e.Seq, pc)
			}
		case EvIssueR:
			s := st(e.Seq)
			s.rIssue, s.haveRIssue = e.Cycle, true
			s.fu, s.unit = e.FU, e.Unit
		case EvVerify:
			s := st(e.Seq)
			if s.haveRIssue && s.fu > 0 {
				lane := fuLane(s.fu, s.unit)
				if lanes[lane] == "" {
					lanes[lane] = fuLaneName(s.fu, s.unit)
				}
				slice(name, " (R)", lane, s.rIssue, e.Cycle, e.Seq, pc)
			}
		case EvCommit:
			instant("", name, laneCommit, e.Cycle, e.Seq, pc)
		default:
			instant(e.Kind.String()+" ", name, laneEvents, e.Cycle, e.Seq, pc)
		}
	})
	r.scratch = evbuf // keep any growth for the next dump

	// Lane-name metadata, smallest tid first for deterministic output.
	head := make([]byte, 0, 1024)
	head = append(head, `{"traceEvents":[`...)
	first := true
	for tid := range lanes {
		name := lanes[tid]
		if name == "" {
			continue
		}
		if !first {
			head = append(head, ',')
		}
		first = false
		head = append(head, `{"name":"thread_name","ph":"M","ts":0,"pid":1,"tid":`...)
		head = strconv.AppendInt(head, int64(tid), 10)
		head = append(head, `,"args":{"name":`...)
		head = appendJSONString(head, name)
		head = append(head, `}}`...)
	}
	if _, err := w.Write(head); err != nil {
		return err
	}
	if _, err := w.Write(evbuf); err != nil {
		return err
	}
	// otherData surfaces the recorder's own health alongside the events:
	// a trace that wrapped is a partial record, and the only honest place
	// to say so is inside the artifact itself.
	tail := make([]byte, 0, 160)
	tail = append(tail, `],"displayTimeUnit":"ms","otherData":{"recorder_capacity":`...)
	tail = strconv.AppendInt(tail, int64(r.Cap()), 10)
	tail = append(tail, `,"recorder_dropped":`...)
	tail = strconv.AppendUint(tail, r.Dropped(), 10)
	tail = append(tail, `,"recorder_events":`...)
	tail = strconv.AppendInt(tail, int64(r.Len()), 10)
	tail = append(tail, `,"wrapped":`...)
	tail = strconv.AppendBool(tail, r.Dropped() > 0)
	tail = append(tail, "}}\n"...)
	_, err := w.Write(tail)
	return err
}

// appendName quotes prefix+name+suffix as one JSON string.
func appendName(b []byte, prefix, name, suffix string) []byte {
	b = append(b, '"')
	if prefix != "" {
		b = appendEscaped(b, prefix)
	}
	b = appendEscaped(b, name)
	if suffix != "" {
		b = appendEscaped(b, suffix)
	}
	return append(b, '"')
}

// appendArgs closes an event entry with its args object.
func appendArgs(b []byte, seq uint64, pc string) []byte {
	b = append(b, `,"args":{"pc":"`...)
	b = append(b, pc...)
	b = append(b, `","seq":`...)
	b = strconv.AppendUint(b, seq, 10)
	return append(b, `}}`...)
}
