package server

// Asynchronous job machinery: every simulation request becomes a Job
// that moves queued → running → {done, failed, canceled}. A bounded
// channel is the queue (submits fail fast with 503 when it is full —
// backpressure instead of unbounded memory growth) and a fixed worker
// pool drains it, mirroring harness's pool discipline: the number of
// concurrent simulations is capped no matter how many requests arrive.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// JobState is a job's position in its lifecycle.
type JobState string

// Job lifecycle states.
const (
	StateQueued   JobState = "queued"
	StateRunning  JobState = "running"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
)

// terminal reports whether a job in this state will never change again.
func (s JobState) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// jobOutput is what a job's runner produces: the result payload served
// from GET /v1/jobs/{id}, plus the committed-instruction count feeding
// the sim-throughput counter.
type jobOutput struct {
	payload json.RawMessage
	insts   uint64
}

// Job is one queued simulation request.
type Job struct {
	ID   string
	Kind string

	// run executes the simulation under the job's context.
	run func(ctx context.Context) (jobOutput, error)
	// cacheKey is the request's content address ("" = uncacheable).
	cacheKey string

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{} // closed when the job reaches a terminal state

	mu       sync.Mutex
	state    JobState
	created  time.Time
	started  time.Time
	finished time.Time
	cached   bool
	payload  json.RawMessage
	errMsg   string
}

// snapshot returns a consistent JobView of the current state.
func (j *Job) snapshot() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:      j.ID,
		Kind:    j.Kind,
		State:   j.state,
		Created: j.created,
		Cached:  j.cached,
		Error:   j.errMsg,
		Result:  j.payload,
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	return v
}

// Cancel requests cancellation: a queued job is finished immediately;
// a running job's context is cancelled and the worker records the
// terminal state when the cycle loop notices.
func (j *Job) Cancel() {
	j.cancel()
	j.mu.Lock()
	if j.state == StateQueued {
		j.state = StateCanceled
		j.errMsg = context.Canceled.Error()
		j.finished = time.Now()
		close(j.done)
	}
	j.mu.Unlock()
}

// errQueueFull is returned by submit when the bounded queue is at
// capacity; handlers translate it to 503.
var errQueueFull = errors.New("server: job queue full")

// errDraining is returned by submit after Shutdown began.
var errDraining = errors.New("server: draining, not accepting jobs")

// jobRunner owns the queue, the worker pool, and the job registry.
type jobRunner struct {
	queue   chan *Job
	rootCtx context.Context

	mu       sync.Mutex
	draining bool
	jobs     map[string]*Job
	order    []string // insertion order, for bounded retention
	maxJobs  int
	nextID   atomic.Uint64
	wg       sync.WaitGroup

	queued    atomic.Int64
	running   atomic.Int64
	submitted *counterFamily
	completed *counterFamily
	simInsts  *Counter
}

// newJobRunner starts workers goroutines draining a queue of depth
// queueDepth. rootCtx is the server's lifetime: cancelling it aborts
// every job.
func newJobRunner(rootCtx context.Context, workers, queueDepth, maxJobs int, m *Metrics) *jobRunner {
	r := &jobRunner{
		queue:     make(chan *Job, queueDepth),
		rootCtx:   rootCtx,
		jobs:      make(map[string]*Job),
		maxJobs:   maxJobs,
		submitted: m.CounterFamily("reese_serve_jobs_submitted_total", "Jobs accepted, by kind.", "kind"),
		completed: m.CounterFamily("reese_serve_jobs_completed_total", "Jobs finished, by kind and terminal state.", "kind", "state"),
		simInsts:  m.Counter("reese_serve_sim_insts_total", "Committed simulated instructions across all jobs (rate() of this is sim-insts/s)."),
	}
	m.Gauge("reese_serve_jobs_queued", "Jobs waiting in the queue.", func() float64 { return float64(r.queued.Load()) })
	m.Gauge("reese_serve_jobs_running", "Jobs currently simulating.", func() float64 { return float64(r.running.Load()) })
	r.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go r.worker()
	}
	return r
}

// submit registers a job and enqueues it. base is the context the job's
// lifetime derives from (the server root for detached jobs, the HTTP
// request for interactive ones); timeout > 0 additionally bounds the
// run. The returned job is already registered under its ID.
func (r *jobRunner) submit(base context.Context, kind, cacheKey string, timeout time.Duration,
	run func(ctx context.Context) (jobOutput, error)) (*Job, error) {

	var ctx context.Context
	var cancel context.CancelFunc
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(base, timeout)
	} else {
		ctx, cancel = context.WithCancel(base)
	}
	j := &Job{
		ID:       fmt.Sprintf("j-%06d", r.nextID.Add(1)),
		Kind:     kind,
		run:      run,
		cacheKey: cacheKey,
		ctx:      ctx,
		cancel:   cancel,
		done:     make(chan struct{}),
		state:    StateQueued,
		created:  time.Now(),
	}

	r.mu.Lock()
	if r.draining {
		r.mu.Unlock()
		cancel()
		return nil, errDraining
	}
	r.jobs[j.ID] = j
	r.order = append(r.order, j.ID)
	r.evictLocked()
	r.mu.Unlock()

	select {
	case r.queue <- j:
		r.queued.Add(1)
		r.submitted.With(kind).Inc()
		return j, nil
	default:
		r.mu.Lock()
		delete(r.jobs, j.ID)
		r.order = r.order[:len(r.order)-1]
		r.mu.Unlock()
		cancel()
		return nil, errQueueFull
	}
}

// complete registers an already-finished job (a cache hit): it never
// touches the queue and is immediately terminal.
func (r *jobRunner) complete(kind, cacheKey string, payload json.RawMessage) *Job {
	j := &Job{
		ID:       fmt.Sprintf("j-%06d", r.nextID.Add(1)),
		Kind:     kind,
		cacheKey: cacheKey,
		cancel:   func() {},
		done:     make(chan struct{}),
		state:    StateDone,
		created:  time.Now(),
		finished: time.Now(),
		cached:   true,
		payload:  payload,
	}
	close(j.done)
	r.mu.Lock()
	r.jobs[j.ID] = j
	r.order = append(r.order, j.ID)
	r.evictLocked()
	r.mu.Unlock()
	r.submitted.With(kind).Inc()
	r.completed.With(kind, string(StateDone)).Inc()
	return j
}

// evictLocked drops the oldest terminal jobs once the registry exceeds
// maxJobs, so a long-lived server's job index stays bounded. Live jobs
// are never evicted.
func (r *jobRunner) evictLocked() {
	for len(r.jobs) > r.maxJobs {
		evicted := false
		for i, id := range r.order {
			j, ok := r.jobs[id]
			if !ok {
				continue
			}
			j.mu.Lock()
			terminal := j.state.terminal()
			j.mu.Unlock()
			if terminal {
				delete(r.jobs, id)
				r.order = append(r.order[:i:i], r.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			return // everything is live; allow temporary overshoot
		}
	}
}

// get looks a job up by ID.
func (r *jobRunner) get(id string) (*Job, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j, ok := r.jobs[id]
	return j, ok
}

// list snapshots every registered job, oldest first.
func (r *jobRunner) list() []JobView {
	r.mu.Lock()
	ids := append([]string(nil), r.order...)
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		if j, ok := r.jobs[id]; ok {
			jobs = append(jobs, j)
		}
	}
	r.mu.Unlock()
	views := make([]JobView, len(jobs))
	for i, j := range jobs {
		views[i] = j.snapshot()
	}
	return views
}

// worker drains the queue until it is closed (shutdown) and empty.
func (r *jobRunner) worker() {
	defer r.wg.Done()
	for j := range r.queue {
		r.queued.Add(-1)
		r.runJob(j)
	}
}

// runJob executes one job and records its terminal state.
func (r *jobRunner) runJob(j *Job) {
	j.mu.Lock()
	if j.state != StateQueued {
		// Cancelled while queued; Cancel already finished it.
		j.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	j.mu.Unlock()
	r.running.Add(1)
	defer r.running.Add(-1)
	defer j.cancel() // release the context's timer, if any

	out, err := j.run(j.ctx)

	j.mu.Lock()
	j.finished = time.Now()
	switch {
	case err == nil:
		j.state = StateDone
		j.payload = out.payload
		r.simInsts.Add(out.insts)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		j.state = StateCanceled
		j.errMsg = err.Error()
	default:
		j.state = StateFailed
		j.errMsg = err.Error()
	}
	state := j.state
	j.mu.Unlock()
	r.completed.With(j.Kind, string(state)).Inc()
	close(j.done)
}

// drain stops intake and waits for queued and running jobs to finish,
// or for ctx to expire — in which case remaining jobs are cancelled via
// the server root context by the caller.
func (r *jobRunner) drain(ctx context.Context) error {
	r.mu.Lock()
	already := r.draining
	r.draining = true
	r.mu.Unlock()
	if !already {
		close(r.queue)
	}
	finished := make(chan struct{})
	go func() {
		r.wg.Wait()
		close(finished)
	}()
	select {
	case <-finished:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
