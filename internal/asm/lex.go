package asm

import (
	"fmt"
	"strconv"
	"strings"

	"reese/internal/isa"
)

// stripComment removes ;, # and // comments, respecting string literals.
func stripComment(line string) string {
	inStr := false
	for i := 0; i < len(line); i++ {
		c := line[i]
		if c == '"' {
			inStr = !inStr
			continue
		}
		if inStr {
			if c == '\\' {
				i++
			}
			continue
		}
		if c == ';' || c == '#' {
			return strings.TrimSpace(line[:i])
		}
		if c == '/' && i+1 < len(line) && line[i+1] == '/' {
			return strings.TrimSpace(line[:i])
		}
	}
	return strings.TrimSpace(line)
}

// splitStatement splits "mnem a, b, c" into the mnemonic and its
// comma-separated arguments, respecting string literals.
func splitStatement(line string) (string, []string) {
	mnem := line
	rest := ""
	if i := strings.IndexAny(line, " \t"); i >= 0 {
		mnem, rest = line[:i], strings.TrimSpace(line[i+1:])
	}
	mnem = strings.ToLower(mnem)
	if rest == "" {
		return mnem, nil
	}
	var args []string
	var cur strings.Builder
	inStr := false
	for i := 0; i < len(rest); i++ {
		c := rest[i]
		switch {
		case c == '"':
			inStr = !inStr
			cur.WriteByte(c)
		case inStr && c == '\\' && i+1 < len(rest):
			cur.WriteByte(c)
			i++
			cur.WriteByte(rest[i])
		case !inStr && c == ',':
			args = append(args, strings.TrimSpace(cur.String()))
			cur.Reset()
		default:
			cur.WriteByte(c)
		}
	}
	if s := strings.TrimSpace(cur.String()); s != "" {
		args = append(args, s)
	}
	return mnem, args
}

var regAliases = map[string]isa.Reg{
	"zero": isa.RegZero,
	"gp":   isa.RegGP,
	"sp":   isa.RegSP,
	"ra":   isa.RegRA,
}

func parseReg(s string, line int) (isa.Reg, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	if r, ok := regAliases[s]; ok {
		return r, nil
	}
	if len(s) >= 2 && s[0] == 'r' {
		n, err := strconv.Atoi(s[1:])
		if err == nil && n >= 0 && n < isa.NumRegs {
			return isa.Reg(n), nil
		}
	}
	return 0, errf(line, "bad register %q", s)
}

// parseFReg parses an FP register name ("f0".."f31").
func parseFReg(s string, line int) (isa.Reg, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	if len(s) >= 2 && s[0] == 'f' {
		n, err := strconv.Atoi(s[1:])
		if err == nil && n >= 0 && n < isa.NumRegs {
			return isa.Reg(n), nil
		}
	}
	return 0, errf(line, "bad FP register %q (want f0..f31)", s)
}

// parseRegIn parses a register name in the given file.
func parseRegIn(s string, file isa.RegFile, line int) (isa.Reg, error) {
	if file == isa.FileFP {
		return parseFReg(s, line)
	}
	return parseReg(s, line)
}

// parseMemOperand parses "offset(base)" starting at args[i]. The offset
// may be omitted ("(r2)" means 0).
func parseMemOperand(args []string, i, line int) (int32, isa.Reg, error) {
	if i >= len(args) {
		return 0, 0, errf(line, "missing memory operand")
	}
	s := strings.TrimSpace(args[i])
	open := strings.Index(s, "(")
	close_ := strings.LastIndex(s, ")")
	if open < 0 || close_ < open {
		return 0, 0, errf(line, "bad memory operand %q (want off(reg))", s)
	}
	var off int32
	if offStr := strings.TrimSpace(s[:open]); offStr != "" {
		v, err := parseInt32(offStr)
		if err != nil {
			return 0, 0, errf(line, "bad memory offset %q", offStr)
		}
		off = v
	}
	base, err := parseReg(s[open+1:close_], line)
	if err != nil {
		return 0, 0, err
	}
	return off, base, nil
}

func parseInt64(s string) (int64, error) {
	s = strings.TrimSpace(s)
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	v, err := strconv.ParseUint(strings.TrimPrefix(s, "+"), 0, 64)
	if err != nil {
		return 0, err
	}
	if neg {
		return -int64(v), nil
	}
	return int64(v), nil
}

func parseInt32(s string) (int32, error) {
	v, err := parseInt64(s)
	if err != nil {
		return 0, err
	}
	if v < -(1<<31) || v > 1<<32-1 {
		return 0, fmt.Errorf("constant %s out of 32-bit range", s)
	}
	return int32(uint32(v)), nil
}

func parseUint(s string) (uint32, error) {
	v, err := strconv.ParseUint(strings.TrimSpace(s), 0, 32)
	if err != nil {
		return 0, err
	}
	return uint32(v), nil
}

// parseString decodes a double-quoted string literal with \n, \t, \0, \\
// and \" escapes.
func parseString(s string) (string, error) {
	s = strings.TrimSpace(s)
	if len(s) < 2 || s[0] != '"' || s[len(s)-1] != '"' {
		return "", fmt.Errorf("expected quoted string, got %q", s)
	}
	body := s[1 : len(s)-1]
	var out strings.Builder
	for i := 0; i < len(body); i++ {
		c := body[i]
		if c != '\\' {
			out.WriteByte(c)
			continue
		}
		i++
		if i >= len(body) {
			return "", fmt.Errorf("trailing backslash in string")
		}
		switch body[i] {
		case 'n':
			out.WriteByte('\n')
		case 't':
			out.WriteByte('\t')
		case '0':
			out.WriteByte(0)
		case '\\':
			out.WriteByte('\\')
		case '"':
			out.WriteByte('"')
		default:
			return "", fmt.Errorf("unknown escape \\%c", body[i])
		}
	}
	return out.String(), nil
}
