// Package isa defines SS32, the 32-bit RISC instruction set architecture
// simulated by this repository.
//
// SS32 stands in for the SimpleScalar PISA instruction set used by the
// REESE paper (Nickel & Somani, DSN 2001). It is a small load/store ISA
// with 32 general-purpose registers, fixed 32-bit instruction words, and
// the operation classes the paper's machine model distinguishes: integer
// ALU operations, integer multiply/divide, memory reads and writes, and
// control transfers.
//
// The package provides binary encoding and decoding, a disassembler, and
// per-opcode metadata (instruction format, functional-unit class, and
// default execution latencies) that the pipeline model consumes.
package isa

import "fmt"

// Op identifies an SS32 operation. The zero value is OpInvalid.
type Op uint8

// SS32 opcodes. The numeric values are the 6-bit primary opcode field of
// the binary encoding; they are part of the ISA and must not be
// renumbered.
const (
	OpInvalid Op = iota

	// Register-register arithmetic and logic (FormatR).
	OpAdd
	OpSub
	OpMul
	OpMulh
	OpDiv
	OpDivu
	OpRem
	OpRemu
	OpAnd
	OpOr
	OpXor
	OpNor
	OpSll
	OpSrl
	OpSra
	OpSlt
	OpSltu

	// Register-immediate arithmetic and logic (FormatI).
	OpAddi
	OpAndi
	OpOri
	OpXori
	OpSlti
	OpSltiu
	OpSlli
	OpSrli
	OpSrai
	OpLui

	// Loads (FormatI: rd <- mem[rs1+imm]).
	OpLw
	OpLh
	OpLhu
	OpLb
	OpLbu

	// Stores (FormatS: mem[rs1+imm] <- rs2).
	OpSw
	OpSh
	OpSb

	// Conditional branches (FormatB: PC-relative word offset).
	OpBeq
	OpBne
	OpBlt
	OpBge
	OpBltu
	OpBgeu

	// Unconditional control transfers.
	OpJ    // FormatJ: PC-relative word offset
	OpJal  // FormatJ: link in r31
	OpJr   // FormatR: jump to rs1
	OpJalr // FormatR: jump to rs1, link in rd

	// System operations.
	OpHalt // stop the machine
	OpOut  // append low byte of rs1 to the machine's output buffer

	// Single-precision floating point (FormatR unless noted); see
	// fp.go. fN register names are used where an operand lives in the
	// FP file.
	OpFadd   // fd <- fs1 + fs2
	OpFsub   // fd <- fs1 - fs2
	OpFmul   // fd <- fs1 * fs2
	OpFdiv   // fd <- fs1 / fs2
	OpFneg   // fd <- -fs1
	OpFabs   // fd <- |fs1|
	OpFmov   // fd <- fs1
	OpFcvtSW // fd <- float(rs1)
	OpFcvtWS // rd <- int(fs1)
	OpFeq    // rd <- fs1 == fs2
	OpFlt    // rd <- fs1 < fs2
	OpFle    // rd <- fs1 <= fs2
	OpLwf    // FormatI: fd <- mem[rs1+imm]
	OpSwf    // FormatS: mem[rs1+imm] <- fs2
	OpMtf    // fd <- rs1 (move int to FP file)
	OpMff    // rd <- fs1 (move FP to int file)

	numOps // sentinel; keep last
)

// NumOps is the number of defined opcodes (excluding OpInvalid).
const NumOps = int(numOps) - 1

// The primary opcode field is 6 bits; this fails to compile if an
// opcode is added beyond the encodable range.
const _opcodeSpaceGuard = uint(63 - (numOps - 1))

// Format describes the operand layout of an instruction word.
type Format uint8

// Instruction formats.
const (
	FormatR Format = iota // rd, rs1, rs2
	FormatI               // rd, rs1, imm16
	FormatS               // rs1, rs2, imm16 (stores)
	FormatB               // rs1, rs2, imm16 (branches, word offset)
	FormatJ               // imm26 (jumps, word offset)
	FormatX               // no operands (halt) or special
)

// Class is the functional-unit class an operation executes on. It is the
// resource the pipeline's issue stage must acquire.
type Class uint8

// Functional-unit classes, mirroring SimpleScalar's resource classes.
const (
	ClassNone     Class = iota
	ClassIntALU         // integer add/sub/logic/shift/compare/branch resolve
	ClassIntMult        // integer multiply/divide
	ClassMemRead        // load: needs a memory port
	ClassMemWrite       // store: needs a memory port
	ClassFPALU          // FP add/sub/convert/compare/move
	ClassFPMult         // FP multiply/divide
)

func (c Class) String() string {
	switch c {
	case ClassNone:
		return "none"
	case ClassIntALU:
		return "int-alu"
	case ClassIntMult:
		return "int-mult"
	case ClassMemRead:
		return "mem-read"
	case ClassMemWrite:
		return "mem-write"
	case ClassFPALU:
		return "fp-alu"
	case ClassFPMult:
		return "fp-mult"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// opInfo is the static metadata for one opcode.
type opInfo struct {
	name   string
	format Format
	class  Class

	// opLat is the execution latency in cycles (result available opLat
	// cycles after issue). issueLat is the occupancy: cycles before the
	// functional unit can accept another operation. These follow the
	// SimpleScalar 2.0 defaults the paper used: ALU 1/1, multiply 3/1,
	// divide 20/19, loads 1 cycle address generation + cache access.
	opLat    uint8
	issueLat uint8

	reads  [2]bool // reads rs1, rs2
	writes bool    // writes rd

	// Register files of the operands (zero value FileInt).
	rs1File, rs2File, rdFile RegFile
}

var opTable = [numOps]opInfo{
	OpInvalid: {name: "invalid", format: FormatX, class: ClassNone, opLat: 1, issueLat: 1},

	OpAdd:  {name: "add", format: FormatR, class: ClassIntALU, opLat: 1, issueLat: 1, reads: [2]bool{true, true}, writes: true},
	OpSub:  {name: "sub", format: FormatR, class: ClassIntALU, opLat: 1, issueLat: 1, reads: [2]bool{true, true}, writes: true},
	OpMul:  {name: "mul", format: FormatR, class: ClassIntMult, opLat: 3, issueLat: 1, reads: [2]bool{true, true}, writes: true},
	OpMulh: {name: "mulh", format: FormatR, class: ClassIntMult, opLat: 3, issueLat: 1, reads: [2]bool{true, true}, writes: true},
	OpDiv:  {name: "div", format: FormatR, class: ClassIntMult, opLat: 20, issueLat: 19, reads: [2]bool{true, true}, writes: true},
	OpDivu: {name: "divu", format: FormatR, class: ClassIntMult, opLat: 20, issueLat: 19, reads: [2]bool{true, true}, writes: true},
	OpRem:  {name: "rem", format: FormatR, class: ClassIntMult, opLat: 20, issueLat: 19, reads: [2]bool{true, true}, writes: true},
	OpRemu: {name: "remu", format: FormatR, class: ClassIntMult, opLat: 20, issueLat: 19, reads: [2]bool{true, true}, writes: true},
	OpAnd:  {name: "and", format: FormatR, class: ClassIntALU, opLat: 1, issueLat: 1, reads: [2]bool{true, true}, writes: true},
	OpOr:   {name: "or", format: FormatR, class: ClassIntALU, opLat: 1, issueLat: 1, reads: [2]bool{true, true}, writes: true},
	OpXor:  {name: "xor", format: FormatR, class: ClassIntALU, opLat: 1, issueLat: 1, reads: [2]bool{true, true}, writes: true},
	OpNor:  {name: "nor", format: FormatR, class: ClassIntALU, opLat: 1, issueLat: 1, reads: [2]bool{true, true}, writes: true},
	OpSll:  {name: "sll", format: FormatR, class: ClassIntALU, opLat: 1, issueLat: 1, reads: [2]bool{true, true}, writes: true},
	OpSrl:  {name: "srl", format: FormatR, class: ClassIntALU, opLat: 1, issueLat: 1, reads: [2]bool{true, true}, writes: true},
	OpSra:  {name: "sra", format: FormatR, class: ClassIntALU, opLat: 1, issueLat: 1, reads: [2]bool{true, true}, writes: true},
	OpSlt:  {name: "slt", format: FormatR, class: ClassIntALU, opLat: 1, issueLat: 1, reads: [2]bool{true, true}, writes: true},
	OpSltu: {name: "sltu", format: FormatR, class: ClassIntALU, opLat: 1, issueLat: 1, reads: [2]bool{true, true}, writes: true},

	OpAddi:  {name: "addi", format: FormatI, class: ClassIntALU, opLat: 1, issueLat: 1, reads: [2]bool{true, false}, writes: true},
	OpAndi:  {name: "andi", format: FormatI, class: ClassIntALU, opLat: 1, issueLat: 1, reads: [2]bool{true, false}, writes: true},
	OpOri:   {name: "ori", format: FormatI, class: ClassIntALU, opLat: 1, issueLat: 1, reads: [2]bool{true, false}, writes: true},
	OpXori:  {name: "xori", format: FormatI, class: ClassIntALU, opLat: 1, issueLat: 1, reads: [2]bool{true, false}, writes: true},
	OpSlti:  {name: "slti", format: FormatI, class: ClassIntALU, opLat: 1, issueLat: 1, reads: [2]bool{true, false}, writes: true},
	OpSltiu: {name: "sltiu", format: FormatI, class: ClassIntALU, opLat: 1, issueLat: 1, reads: [2]bool{true, false}, writes: true},
	OpSlli:  {name: "slli", format: FormatI, class: ClassIntALU, opLat: 1, issueLat: 1, reads: [2]bool{true, false}, writes: true},
	OpSrli:  {name: "srli", format: FormatI, class: ClassIntALU, opLat: 1, issueLat: 1, reads: [2]bool{true, false}, writes: true},
	OpSrai:  {name: "srai", format: FormatI, class: ClassIntALU, opLat: 1, issueLat: 1, reads: [2]bool{true, false}, writes: true},
	OpLui:   {name: "lui", format: FormatI, class: ClassIntALU, opLat: 1, issueLat: 1, writes: true},

	OpLw:  {name: "lw", format: FormatI, class: ClassMemRead, opLat: 1, issueLat: 1, reads: [2]bool{true, false}, writes: true},
	OpLh:  {name: "lh", format: FormatI, class: ClassMemRead, opLat: 1, issueLat: 1, reads: [2]bool{true, false}, writes: true},
	OpLhu: {name: "lhu", format: FormatI, class: ClassMemRead, opLat: 1, issueLat: 1, reads: [2]bool{true, false}, writes: true},
	OpLb:  {name: "lb", format: FormatI, class: ClassMemRead, opLat: 1, issueLat: 1, reads: [2]bool{true, false}, writes: true},
	OpLbu: {name: "lbu", format: FormatI, class: ClassMemRead, opLat: 1, issueLat: 1, reads: [2]bool{true, false}, writes: true},

	OpSw: {name: "sw", format: FormatS, class: ClassMemWrite, opLat: 1, issueLat: 1, reads: [2]bool{true, true}},
	OpSh: {name: "sh", format: FormatS, class: ClassMemWrite, opLat: 1, issueLat: 1, reads: [2]bool{true, true}},
	OpSb: {name: "sb", format: FormatS, class: ClassMemWrite, opLat: 1, issueLat: 1, reads: [2]bool{true, true}},

	OpBeq:  {name: "beq", format: FormatB, class: ClassIntALU, opLat: 1, issueLat: 1, reads: [2]bool{true, true}},
	OpBne:  {name: "bne", format: FormatB, class: ClassIntALU, opLat: 1, issueLat: 1, reads: [2]bool{true, true}},
	OpBlt:  {name: "blt", format: FormatB, class: ClassIntALU, opLat: 1, issueLat: 1, reads: [2]bool{true, true}},
	OpBge:  {name: "bge", format: FormatB, class: ClassIntALU, opLat: 1, issueLat: 1, reads: [2]bool{true, true}},
	OpBltu: {name: "bltu", format: FormatB, class: ClassIntALU, opLat: 1, issueLat: 1, reads: [2]bool{true, true}},
	OpBgeu: {name: "bgeu", format: FormatB, class: ClassIntALU, opLat: 1, issueLat: 1, reads: [2]bool{true, true}},

	OpJ:    {name: "j", format: FormatJ, class: ClassIntALU, opLat: 1, issueLat: 1},
	OpJal:  {name: "jal", format: FormatJ, class: ClassIntALU, opLat: 1, issueLat: 1, writes: true},
	OpJr:   {name: "jr", format: FormatR, class: ClassIntALU, opLat: 1, issueLat: 1, reads: [2]bool{true, false}},
	OpJalr: {name: "jalr", format: FormatR, class: ClassIntALU, opLat: 1, issueLat: 1, reads: [2]bool{true, false}, writes: true},

	OpHalt: {name: "halt", format: FormatX, class: ClassIntALU, opLat: 1, issueLat: 1},
	OpOut:  {name: "out", format: FormatR, class: ClassIntALU, opLat: 1, issueLat: 1, reads: [2]bool{true, false}},

	// FP latencies follow SimpleScalar 2.0: FP add 2 (pipelined),
	// multiply 4 (pipelined), divide 12 (non-pipelined).
	OpFadd:   {name: "fadd", format: FormatR, class: ClassFPALU, opLat: 2, issueLat: 1, reads: [2]bool{true, true}, writes: true, rs1File: FileFP, rs2File: FileFP, rdFile: FileFP},
	OpFsub:   {name: "fsub", format: FormatR, class: ClassFPALU, opLat: 2, issueLat: 1, reads: [2]bool{true, true}, writes: true, rs1File: FileFP, rs2File: FileFP, rdFile: FileFP},
	OpFmul:   {name: "fmul", format: FormatR, class: ClassFPMult, opLat: 4, issueLat: 1, reads: [2]bool{true, true}, writes: true, rs1File: FileFP, rs2File: FileFP, rdFile: FileFP},
	OpFdiv:   {name: "fdiv", format: FormatR, class: ClassFPMult, opLat: 12, issueLat: 11, reads: [2]bool{true, true}, writes: true, rs1File: FileFP, rs2File: FileFP, rdFile: FileFP},
	OpFneg:   {name: "fneg", format: FormatR, class: ClassFPALU, opLat: 2, issueLat: 1, reads: [2]bool{true, false}, writes: true, rs1File: FileFP, rdFile: FileFP},
	OpFabs:   {name: "fabs", format: FormatR, class: ClassFPALU, opLat: 2, issueLat: 1, reads: [2]bool{true, false}, writes: true, rs1File: FileFP, rdFile: FileFP},
	OpFmov:   {name: "fmov", format: FormatR, class: ClassFPALU, opLat: 1, issueLat: 1, reads: [2]bool{true, false}, writes: true, rs1File: FileFP, rdFile: FileFP},
	OpFcvtSW: {name: "fcvtsw", format: FormatR, class: ClassFPALU, opLat: 2, issueLat: 1, reads: [2]bool{true, false}, writes: true, rdFile: FileFP},
	OpFcvtWS: {name: "fcvtws", format: FormatR, class: ClassFPALU, opLat: 2, issueLat: 1, reads: [2]bool{true, false}, writes: true, rs1File: FileFP},
	OpFeq:    {name: "feq", format: FormatR, class: ClassFPALU, opLat: 2, issueLat: 1, reads: [2]bool{true, true}, writes: true, rs1File: FileFP, rs2File: FileFP},
	OpFlt:    {name: "flt", format: FormatR, class: ClassFPALU, opLat: 2, issueLat: 1, reads: [2]bool{true, true}, writes: true, rs1File: FileFP, rs2File: FileFP},
	OpFle:    {name: "fle", format: FormatR, class: ClassFPALU, opLat: 2, issueLat: 1, reads: [2]bool{true, true}, writes: true, rs1File: FileFP, rs2File: FileFP},
	OpLwf:    {name: "lwf", format: FormatI, class: ClassMemRead, opLat: 1, issueLat: 1, reads: [2]bool{true, false}, writes: true, rdFile: FileFP},
	OpSwf:    {name: "swf", format: FormatS, class: ClassMemWrite, opLat: 1, issueLat: 1, reads: [2]bool{true, true}, rs2File: FileFP},
	OpMtf:    {name: "mtf", format: FormatR, class: ClassFPALU, opLat: 1, issueLat: 1, reads: [2]bool{true, false}, writes: true, rdFile: FileFP},
	OpMff:    {name: "mff", format: FormatR, class: ClassFPALU, opLat: 1, issueLat: 1, reads: [2]bool{true, false}, writes: true, rs1File: FileFP},
}

// opFlag bits classify opcodes. They are precomputed into opFlags so the
// hot predicates below (called several times per simulated instruction by
// the pipeline and the emulator) are a single array load and mask instead
// of chained table lookups and comparisons.
type opFlag uint16

const (
	flagLoad opFlag = 1 << iota
	flagStore
	flagBranch
	flagJump
	flagIndirect
	flagFP
	flagReadsRs1
	flagReadsRs2
	flagWritesRd
)

const (
	flagMem     = flagLoad | flagStore
	flagControl = flagBranch | flagJump
)

// opFlags is the flattened per-opcode classification table, derived once
// from opTable at init.
var opFlags = func() [numOps]opFlag {
	var fl [numOps]opFlag
	for op := OpInvalid + 1; op < numOps; op++ {
		info := &opTable[op]
		switch info.class {
		case ClassMemRead:
			fl[op] |= flagLoad
		case ClassMemWrite:
			fl[op] |= flagStore
		}
		if info.format == FormatB {
			fl[op] |= flagBranch
		}
		switch op {
		case OpJ, OpJal, OpJr, OpJalr:
			fl[op] |= flagJump
		}
		switch op {
		case OpJr, OpJalr:
			fl[op] |= flagIndirect
		}
		if isFPSlow(op) {
			fl[op] |= flagFP
		}
		if info.reads[0] {
			fl[op] |= flagReadsRs1
		}
		if info.reads[1] {
			fl[op] |= flagReadsRs2
		}
		if info.writes {
			fl[op] |= flagWritesRd
		}
	}
	return fl
}()

func (op Op) flags() opFlag {
	if op >= numOps {
		return 0
	}
	return opFlags[op]
}

// Valid reports whether op is a defined SS32 opcode.
func (op Op) Valid() bool { return op > OpInvalid && op < numOps }

// String returns the assembler mnemonic for op.
func (op Op) String() string {
	if op >= numOps {
		return fmt.Sprintf("op(%d)", uint8(op))
	}
	return opTable[op].name
}

// Format returns the operand layout of op.
func (op Op) Format() Format {
	if op >= numOps {
		return FormatX
	}
	return opTable[op].format
}

// Class returns the functional-unit class op executes on.
func (op Op) Class() Class {
	if op >= numOps {
		return ClassNone
	}
	return opTable[op].class
}

// OpLatency returns the execution latency in cycles: the number of cycles
// after issue before the result is available for forwarding.
func (op Op) OpLatency() int {
	if op >= numOps {
		return 1
	}
	return int(opTable[op].opLat)
}

// IssueLatency returns the functional-unit occupancy in cycles: how long
// the unit is busy before it can accept another operation.
func (op Op) IssueLatency() int {
	if op >= numOps {
		return 1
	}
	return int(opTable[op].issueLat)
}

// ReadsRs1 reports whether op reads its first source register.
func (op Op) ReadsRs1() bool { return op.flags()&flagReadsRs1 != 0 }

// ReadsRs2 reports whether op reads its second source register.
func (op Op) ReadsRs2() bool { return op.flags()&flagReadsRs2 != 0 }

// WritesRd reports whether op writes a destination register.
func (op Op) WritesRd() bool { return op.flags()&flagWritesRd != 0 }

// IsLoad reports whether op reads data memory.
func (op Op) IsLoad() bool { return op.flags()&flagLoad != 0 }

// IsStore reports whether op writes data memory.
func (op Op) IsStore() bool { return op.flags()&flagStore != 0 }

// IsMem reports whether op accesses data memory.
func (op Op) IsMem() bool { return op.flags()&flagMem != 0 }

// IsBranch reports whether op is a conditional branch.
func (op Op) IsBranch() bool { return op.flags()&flagBranch != 0 }

// IsJump reports whether op is an unconditional control transfer.
func (op Op) IsJump() bool { return op.flags()&flagJump != 0 }

// IsControl reports whether op can redirect the program counter.
func (op Op) IsControl() bool { return op.flags()&flagControl != 0 }

// IsIndirect reports whether op's target comes from a register, so the
// target is unknown until the operand is read.
func (op Op) IsIndirect() bool { return op.flags()&flagIndirect != 0 }

// opsByName maps mnemonics to opcodes for the assembler.
var opsByName = func() map[string]Op {
	m := make(map[string]Op, numOps)
	for op := OpInvalid + 1; op < numOps; op++ {
		m[opTable[op].name] = op
	}
	return m
}()

// OpByName returns the opcode with the given assembler mnemonic.
func OpByName(name string) (Op, bool) {
	op, ok := opsByName[name]
	return op, ok
}

// Ops returns all defined opcodes in numeric order.
func Ops() []Op {
	ops := make([]Op, 0, NumOps)
	for op := OpInvalid + 1; op < numOps; op++ {
		ops = append(ops, op)
	}
	return ops
}
