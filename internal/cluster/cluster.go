// Package cluster distributes a fault-injection campaign across
// reese-serve worker replicas. A coordinator splits the campaign's
// trial plan into contiguous shards — each shard is the exact
// [offset, offset+count) slice of the single-process plan, because the
// harness derives every trial from its own (seed, index) splitmix64
// substream — fans the shards out over the workers' HTTP job API
// (POST /v1/faults/batch), and merges the shard reports with
// harness.MergeReports into a CampaignReport byte-identical to the
// single-process run.
//
// Robustness is part of the contract, not best-effort:
//
//   - A worker answering 503 (full queue, drain) gets its shards back
//     on the queue with the server's Retry-After honored.
//   - A worker that stops answering (killed, partitioned) has its
//     in-flight shards reassigned to the survivors; the poll loop that
//     drives each shard doubles as its heartbeat.
//   - Completion is idempotent: the first result for a shard index
//     wins, later duplicates are dropped, and the merge itself refuses
//     any shard set that does not tile the plan exactly — a lost or
//     double-counted shard is an error, never a silently wrong report.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"reese/internal/config"
	"reese/internal/harness"
	"reese/internal/server"
)

// Campaign is the cluster-level request: a full fault campaign to be
// sharded across workers. The fields mirror server.ShardSpec minus the
// shard window, which the coordinator assigns.
type Campaign struct {
	Workload           string          `json:"workload"`
	Machine            *config.Machine `json:"machine,omitempty"`
	Structures         []string        `json:"structures,omitempty"`
	Injections         int             `json:"injections"`
	Seed               uint64          `json:"seed,omitempty"`
	TargetInsts        uint64          `json:"target_insts,omitempty"`
	CheckpointInterval uint64          `json:"checkpoint_interval,omitempty"`
	// ShardSize overrides the trials-per-shard split (0 = auto: about
	// four shards per worker, so reassignment granularity stays useful).
	ShardSize int `json:"shard_size,omitempty"`
	// Triage re-runs escaped trials (SDC/Hang, plus Detected when
	// TriageDetected is set) on the worker that ran them, with
	// first-divergence attribution; the coordinator reattaches each
	// shard's trace blobs to the merged trial log.
	Triage         bool `json:"triage,omitempty"`
	TriageDetected bool `json:"triage_detected,omitempty"`
	// ResumeToken names this campaign in the coordinator WAL. When the
	// coordinator runs with a WALDir, resubmitting the same token resumes
	// the journaled campaign: completed shards replay from disk, only the
	// missing windows re-run. Empty means the token derives from the spec
	// itself, so identical resubmissions resume automatically.
	ResumeToken string `json:"resume_token,omitempty"`
}

// Hooks receives shard lifecycle counts; server.ShardMetrics satisfies
// it structurally, keeping this package and server import-acyclic.
type Hooks interface {
	ShardAssigned()
	ShardCompleted(seconds float64)
	ShardRetried()
	ShardReassigned()
	// ShardCorrupted counts payloads that failed their end-to-end sha256
	// integrity check and were re-fetched instead of merged.
	ShardCorrupted()
	// WorkerReadmitted counts quarantined workers that answered a
	// probation probe and rejoined the campaign.
	WorkerReadmitted()
	// CampaignResumed counts campaigns whose completed shards were
	// replayed from the coordinator WAL after a restart.
	CampaignResumed()
	// ShardRestored counts individual shards served from the WAL instead
	// of re-executed.
	ShardRestored()
}

// Event is one live-progress notification, streamed to clients as SSE
// or chunked JSONL by Handler.
type Event struct {
	// Type is assigned | completed | retried | reassigned | corrupted |
	// quarantined | readmitted | restored | error. Worker-level events
	// (quarantined, readmitted) carry Shard == -1.
	Type   string `json:"type"`
	Shard  int    `json:"shard"`
	Worker string `json:"worker,omitempty"`
	// CompletedShards/TotalShards and CompletedTrials/TotalTrials track
	// overall progress at the time of the event.
	CompletedShards int `json:"completed_shards"`
	TotalShards     int `json:"total_shards"`
	CompletedTrials int `json:"completed_trials"`
	TotalTrials     int `json:"total_trials"`
	// ElapsedS is seconds since the campaign started.
	ElapsedS float64 `json:"elapsed_s"`
	Err      string  `json:"err,omitempty"`
}

// Config tunes the coordinator; zero values select the defaults.
type Config struct {
	// Workers are the reese-serve replica base URLs (http://host:port).
	Workers []string
	// Client issues all worker HTTP requests (default: 30s timeout).
	Client *http.Client
	// ShardSize is the default trials per shard when the Campaign does
	// not set one (0 = auto).
	ShardSize int
	// Batch caps shards claimed per batch submit (default 4).
	Batch int
	// PollWait is the long-poll duration per job status request — the
	// shard heartbeat interval (default 5s).
	PollWait time.Duration
	// ShardTimeout abandons and reassigns a shard not terminal within
	// this long of its assignment (default 10m).
	ShardTimeout time.Duration
	// MaxAttempts bounds assignments per shard before the campaign
	// fails (default 10).
	MaxAttempts int
	// Metrics receives shard lifecycle counts (optional).
	Metrics Hooks
	// OnEvent receives live progress events (optional).
	OnEvent func(Event)
	// Logger receives coordinator logs (default slog.Default()).
	Logger *slog.Logger
	// WALDir, when non-empty, makes campaigns crash-safe: the spec, the
	// resolved shard windows, and every completed shard payload are
	// journaled there (fsync per record), and a restarted coordinator
	// resumes from the journal instead of starting over. Empty disables
	// the WAL.
	WALDir string
	// RetryPause is the pause after a failed batch round against a
	// worker, so a flapping worker does not spin the queue (default
	// 200ms).
	RetryPause time.Duration
	// ProbationBase/ProbationMax bound the exponential backoff between
	// /readyz probes of a quarantined worker (defaults 500ms and 15s).
	ProbationBase time.Duration
	ProbationMax  time.Duration
	// AllLostTimeout fails the campaign when every worker has been in
	// quarantine continuously for this long with shards still pending —
	// the failsafe against waiting forever on a fleet that is never
	// coming back (default 2m).
	AllLostTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if c.Batch <= 0 {
		c.Batch = 4
	}
	if c.PollWait <= 0 {
		c.PollWait = 5 * time.Second
	}
	if c.ShardTimeout <= 0 {
		c.ShardTimeout = 10 * time.Minute
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 10
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	if c.RetryPause <= 0 {
		c.RetryPause = 200 * time.Millisecond
	}
	if c.ProbationBase <= 0 {
		c.ProbationBase = 500 * time.Millisecond
	}
	if c.ProbationMax <= 0 {
		c.ProbationMax = 15 * time.Second
	}
	if c.AllLostTimeout <= 0 {
		c.AllLostTimeout = 2 * time.Minute
	}
	return c
}

// maxShardCount mirrors the worker-side per-shard trial cap.
const maxShardCount = 5_000

// shardSpecs splits the campaign into contiguous ShardSpecs.
func shardSpecs(req Campaign, workers, defaultSize int) []server.ShardSpec {
	size := req.ShardSize
	if size <= 0 {
		size = defaultSize
	}
	if size <= 0 {
		// Auto: about four shards per worker — small enough that losing a
		// worker forfeits little work, big enough to amortize round trips.
		size = (req.Injections + 4*workers - 1) / (4 * workers)
	}
	if size < 1 {
		size = 1
	}
	if size > maxShardCount {
		size = maxShardCount
	}
	var specs []server.ShardSpec
	for off := 0; off < req.Injections; off += size {
		count := size
		if off+count > req.Injections {
			count = req.Injections - off
		}
		specs = append(specs, server.ShardSpec{
			Workload:           req.Workload,
			Machine:            req.Machine,
			Structures:         req.Structures,
			Injections:         req.Injections,
			Seed:               req.Seed,
			TargetInsts:        req.TargetInsts,
			CheckpointInterval: req.CheckpointInterval,
			ShardOffset:        off,
			ShardCount:         count,
			Triage:             req.Triage,
			TriageDetected:     req.TriageDetected,
		})
	}
	return specs
}

// Run executes the campaign across the configured workers and returns
// the merged report. The report is byte-identical (wall-clock fields
// aside) to the single-process harness.Campaign run with the same
// spec, or Run errors — there is no partial-success mode.
func Run(ctx context.Context, cfg Config, req Campaign) (*harness.CampaignReport, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Workers) == 0 {
		return nil, errors.New("cluster: no workers configured")
	}
	if req.Injections <= 0 {
		return nil, fmt.Errorf("cluster: injections %d out of range", req.Injections)
	}
	specs := shardSpecs(req, len(cfg.Workers), cfg.ShardSize)

	// With a WALDir the campaign is journaled: a fresh run writes its
	// spec and shard windows before assigning anything; a resumed run
	// (same token) takes the windows and completed payloads from disk.
	var wal *campaignWAL
	restored := map[int]*server.ShardPayload{}
	if cfg.WALDir != "" {
		token := campaignToken(req)
		var st *walState
		var err error
		wal, st, err = openCampaignWAL(cfg.WALDir, token, cfg.Logger)
		if err != nil {
			return nil, err
		}
		defer wal.close()
		if st == nil {
			if err := wal.begin(req, specs); err != nil {
				return nil, fmt.Errorf("cluster: journal campaign: %w", err)
			}
		} else {
			spec, err := json.Marshal(canonicalCampaign(req))
			if err != nil {
				return nil, err
			}
			if !bytes.Equal(spec, st.spec) {
				return nil, fmt.Errorf("cluster: resume token %s names a different campaign (spec mismatch); choose a fresh token", token)
			}
			// The journaled windows override the freshly computed split, so
			// the resumed run tiles the plan exactly as the original did even
			// if the worker count or shard-size defaults changed meanwhile.
			specs = specsFromWindows(req, st.windows)
			for idx, digest := range st.completed {
				p, perr := wal.loadPayload(digest)
				if perr != nil {
					cfg.Logger.Warn("cluster: wal payload unusable; shard will re-run", "shard", idx, "err", perr)
					continue
				}
				if p.Report.Shard == nil || p.Report.Shard.Offset != specs[idx].ShardOffset || p.Report.Shard.Count != specs[idx].ShardCount {
					cfg.Logger.Warn("cluster: wal payload window mismatch; shard will re-run", "shard", idx)
					continue
				}
				restored[idx] = p
			}
			if cfg.Metrics != nil {
				cfg.Metrics.CampaignResumed()
			}
			cfg.Logger.Info("cluster: resuming campaign from wal",
				"token", token, "restored", len(restored), "total", len(specs))
		}
	}

	co := &coordinator{
		cfg:        cfg,
		specs:      specs,
		wal:        wal,
		queue:      make(chan int, len(specs)),
		donec:      make(chan struct{}),
		results:    make([]*server.ShardPayload, len(specs)),
		attempts:   make([]int, len(specs)),
		lastWorker: make([]string, len(specs)),
		live:       len(cfg.Workers),
		start:      time.Now(),
	}
	for i := range specs {
		if p, ok := restored[i]; ok {
			co.results[i] = p
			co.completed++
			co.doneTrials += specs[i].ShardCount
			continue
		}
		co.queue <- i
	}
	for i := range specs {
		if restored[i] == nil {
			continue
		}
		if cfg.Metrics != nil {
			cfg.Metrics.ShardRestored()
		}
		co.emit(Event{Type: "restored", Shard: i})
	}
	if co.completed == len(specs) {
		// Every shard was already durable; nothing to assign.
		co.mu.Lock()
		co.closeDoneLocked()
		co.mu.Unlock()
	}
	var wg sync.WaitGroup
	for _, url := range cfg.Workers {
		wg.Add(1)
		go func(url string) {
			defer wg.Done()
			co.workerLoop(ctx, url)
		}(url)
	}
	select {
	case <-co.donec:
	case <-ctx.Done():
		co.fail(ctx.Err())
	}
	wg.Wait()
	co.mu.Lock()
	failure := co.failure
	co.mu.Unlock()
	if failure != nil {
		return nil, failure
	}

	reports := make([]*harness.CampaignReport, len(co.results))
	for i, p := range co.results {
		if p == nil {
			return nil, fmt.Errorf("cluster: shard %d finished without a payload", i)
		}
		rep := p.Report
		rep.Trials = p.Trials
		// Trace blobs travel out-of-band of the trial records (the Trace
		// field is excluded from Trial JSON); reattach them so the merged
		// trial log carries its triage artifacts whole.
		for t := range rep.Trials {
			tr := &rep.Trials[t]
			if tr.Triage == nil {
				continue
			}
			if blob, ok := p.Traces[strconv.Itoa(tr.Index)]; ok {
				tr.Triage.Trace = blob
			}
		}
		reports[i] = &rep
	}
	merged, err := harness.MergeReports(reports)
	if err != nil {
		return nil, fmt.Errorf("cluster: merge: %w", err)
	}
	elapsed := time.Since(co.start).Seconds()
	merged.WallSeconds = elapsed
	if elapsed > 0 {
		merged.InjectionsPerSec = float64(merged.Injected) / elapsed
	}
	// The report exists; the journal has done its job.
	wal.finish()
	return merged, nil
}

// specsFromWindows rebuilds shard specs from journaled [offset, count]
// windows, preserving the original plan split across a resume.
func specsFromWindows(req Campaign, windows [][2]int) []server.ShardSpec {
	specs := make([]server.ShardSpec, len(windows))
	for i, w := range windows {
		specs[i] = server.ShardSpec{
			Workload:           req.Workload,
			Machine:            req.Machine,
			Structures:         req.Structures,
			Injections:         req.Injections,
			Seed:               req.Seed,
			TargetInsts:        req.TargetInsts,
			CheckpointInterval: req.CheckpointInterval,
			ShardOffset:        w[0],
			ShardCount:         w[1],
			Triage:             req.Triage,
			TriageDetected:     req.TriageDetected,
		}
	}
	return specs
}

// coordinator is the shared state of one Run: the shard queue, the
// per-shard bookkeeping, and the completion latch.
type coordinator struct {
	cfg   Config
	specs []server.ShardSpec
	wal   *campaignWAL // nil when Config.WALDir is empty
	queue chan int
	donec chan struct{}
	start time.Time

	mu          sync.Mutex
	results     []*server.ShardPayload
	attempts    []int
	lastWorker  []string
	completed   int
	doneTrials  int
	failure     error
	live        int       // workers not currently quarantined
	noLiveSince time.Time // when live last hit zero; zero value = some worker live
	closed      bool
}

// fail records the first fatal error and releases everyone.
func (c *coordinator) fail(err error) {
	c.mu.Lock()
	if c.failure == nil {
		c.failure = err
	}
	c.closeDoneLocked()
	c.mu.Unlock()
}

func (c *coordinator) closeDoneLocked() {
	if !c.closed {
		c.closed = true
		close(c.donec)
	}
}

func (c *coordinator) emit(ev Event) {
	c.mu.Lock()
	ev.CompletedShards = c.completed
	ev.CompletedTrials = c.doneTrials
	c.mu.Unlock()
	ev.TotalShards = len(c.specs)
	ev.TotalTrials = c.specs[0].Injections
	ev.ElapsedS = time.Since(c.start).Seconds()
	if c.cfg.OnEvent != nil {
		c.cfg.OnEvent(ev)
	}
}

// claim blocks for one pending shard, then drains up to batch-1 more
// without blocking. Returns nil when the campaign is over.
func (c *coordinator) claim(ctx context.Context) []int {
	var idxs []int
	for len(idxs) < c.cfg.Batch {
		if len(idxs) == 0 {
			select {
			case idx := <-c.queue:
				idxs = append(idxs, idx)
			case <-c.donec:
				return nil
			case <-ctx.Done():
				return nil
			}
			continue
		}
		select {
		case idx := <-c.queue:
			idxs = append(idxs, idx)
		default:
			return idxs
		}
	}
	return idxs
}

// requeue puts shards back on the queue after a failed assignment.
// countAttempt distinguishes worker failures (which spend the shard's
// MaxAttempts budget; exhausting it fails the campaign — the
// alternative, dropping the shard, would yield a silently partial
// report, which the merge would reject anyway) from backpressure
// (worker busy/draining), which must never exhaust a healthy campaign
// however long it lasts.
func (c *coordinator) requeue(idxs []int, worker string, cause error, countAttempt bool) {
	for _, idx := range idxs {
		c.mu.Lock()
		done := c.results[idx] != nil
		if countAttempt {
			c.attempts[idx]++
		}
		exhausted := c.attempts[idx] >= c.cfg.MaxAttempts
		c.mu.Unlock()
		if done {
			continue
		}
		if exhausted {
			c.fail(fmt.Errorf("cluster: shard %d failed after %d attempts: %v", idx, c.cfg.MaxAttempts, cause))
			return
		}
		if c.cfg.Metrics != nil {
			c.cfg.Metrics.ShardRetried()
		}
		c.emit(Event{Type: "retried", Shard: idx, Worker: worker, Err: fmt.Sprint(cause)})
		c.queue <- idx
	}
}

// recordAssign notes which worker a shard landed on, counting a
// reassignment when it moved off a previous worker.
func (c *coordinator) recordAssign(idx int, worker string) {
	c.mu.Lock()
	prev := c.lastWorker[idx]
	c.lastWorker[idx] = worker
	c.mu.Unlock()
	if err := c.wal.appendAssign(idx, worker); err != nil {
		c.cfg.Logger.Warn("cluster: wal assign append failed", "shard", idx, "err", err)
	}
	if c.cfg.Metrics != nil {
		c.cfg.Metrics.ShardAssigned()
		if prev != "" && prev != worker {
			c.cfg.Metrics.ShardReassigned()
		}
	}
	if prev != "" && prev != worker {
		c.emit(Event{Type: "reassigned", Shard: idx, Worker: worker})
	} else {
		c.emit(Event{Type: "assigned", Shard: idx, Worker: worker})
	}
}

// complete records a shard result exactly once; duplicates (a shard
// that was reassigned and then finished twice) are dropped here, which
// together with the workers' content-addressed result cache makes
// reassignment double-count-proof.
func (c *coordinator) complete(idx int, p *server.ShardPayload, worker string, since time.Time) {
	c.mu.Lock()
	dup := c.results[idx] != nil
	c.mu.Unlock()
	if dup {
		return
	}
	// Durable before acknowledged: the payload reaches the WAL before the
	// shard counts as complete, so a coordinator crash at any point
	// re-runs the shard rather than losing it. A sick disk degrades
	// durability, never the campaign.
	if err := c.wal.appendComplete(idx, p); err != nil {
		c.cfg.Logger.Warn("cluster: wal complete append failed; crash-safety degraded", "shard", idx, "err", err)
	}
	c.mu.Lock()
	if c.results[idx] != nil {
		c.mu.Unlock()
		return
	}
	c.results[idx] = p
	c.completed++
	c.doneTrials += c.specs[idx].ShardCount
	last := c.completed == len(c.specs)
	if last {
		c.closeDoneLocked()
	}
	c.mu.Unlock()
	if c.cfg.Metrics != nil {
		c.cfg.Metrics.ShardCompleted(time.Since(since).Seconds())
	}
	c.emit(Event{Type: "completed", Shard: idx, Worker: worker})
}

// maxConsecutiveFailures is how many batch rounds in a row may fail
// against one worker before the coordinator quarantines it.
const maxConsecutiveFailures = 3

// workerLoop drives one worker replica: claim shards, submit them as a
// batch, poll each to completion. Transport-level failures count
// against the worker; too many in a row sends it to probation, where
// /readyz probes on exponential backoff decide whether it comes back.
func (c *coordinator) workerLoop(ctx context.Context, url string) {
	failures := 0
	for {
		idxs := c.claim(ctx)
		if idxs == nil {
			return
		}
		if err := c.runBatch(ctx, url, idxs); err != nil {
			failures++
			c.cfg.Logger.Warn("cluster: worker batch failed", "worker", url, "err", err, "failures", failures)
			if failures >= maxConsecutiveFailures {
				if !c.probation(ctx, url) {
					return
				}
				failures = 0
				continue
			}
			// Brief pause so a flapping worker does not spin the queue.
			select {
			case <-time.After(c.cfg.RetryPause):
			case <-c.donec:
				return
			case <-ctx.Done():
				return
			}
			continue
		}
		failures = 0
	}
}

// probation quarantines a worker after repeated batch failures.
// Instead of writing it off forever — the pre-probation behavior, which
// turned every transient partition into a permanent capacity loss — the
// coordinator probes the worker's /readyz on exponential backoff
// (ProbationBase doubling up to ProbationMax) and readmits it the
// moment it answers ready. Returns true to resume the worker's loop,
// false when the campaign ended first. The failsafe: once every worker
// has been quarantined continuously for AllLostTimeout with shards
// still pending, the campaign fails rather than waiting forever on a
// fleet that is never coming back.
func (c *coordinator) probation(ctx context.Context, url string) bool {
	c.mu.Lock()
	c.live--
	if c.live == 0 && c.noLiveSince.IsZero() {
		c.noLiveSince = time.Now()
	}
	c.mu.Unlock()
	c.cfg.Logger.Warn("cluster: quarantining worker", "worker", url)
	c.emit(Event{Type: "quarantined", Shard: -1, Worker: url})

	backoff := c.cfg.ProbationBase
	for {
		select {
		case <-time.After(backoff):
		case <-c.donec:
			return false
		case <-ctx.Done():
			return false
		}
		ok, retryAfter, err := c.ready(ctx, url)
		if err == nil && ok {
			c.mu.Lock()
			c.live++
			c.noLiveSince = time.Time{}
			c.mu.Unlock()
			if c.cfg.Metrics != nil {
				c.cfg.Metrics.WorkerReadmitted()
			}
			c.cfg.Logger.Info("cluster: worker readmitted", "worker", url)
			c.emit(Event{Type: "readmitted", Shard: -1, Worker: url})
			return true
		}
		c.mu.Lock()
		var allLostFor time.Duration
		if c.live == 0 && !c.noLiveSince.IsZero() {
			allLostFor = time.Since(c.noLiveSince)
		}
		pending := c.completed < len(c.specs)
		c.mu.Unlock()
		if pending && allLostFor > c.cfg.AllLostTimeout {
			c.fail(fmt.Errorf("cluster: all workers quarantined for %s with shards still pending", allLostFor.Round(time.Second)))
			return false
		}
		backoff *= 2
		if retryAfter > backoff {
			backoff = retryAfter
		}
		if backoff > c.cfg.ProbationMax {
			backoff = c.cfg.ProbationMax
		}
	}
}

// runBatch submits one claimed batch to a worker and drives every
// accepted shard to a terminal state. A transport error reassigns the
// not-yet-finished shards and reports the worker as failing; a 503
// requeues with the Retry-After honored and reports success (the
// worker is alive, merely busy).
func (c *coordinator) runBatch(ctx context.Context, url string, idxs []int) error {
	// Skip shards that finished elsewhere while these sat in the queue.
	pending := idxs[:0]
	for _, idx := range idxs {
		c.mu.Lock()
		done := c.results[idx] != nil
		c.mu.Unlock()
		if !done {
			pending = append(pending, idx)
		}
	}
	if len(pending) == 0 {
		return nil
	}

	if ready, retryAfter, err := c.ready(ctx, url); err != nil {
		c.requeue(pending, url, err, true)
		return err
	} else if !ready {
		// Backpressure, not failure: the worker answered, it is merely
		// draining or replaying. Does not spend the shards' attempt budget.
		c.requeue(pending, url, errors.New("worker not ready"), false)
		c.sleep(ctx, retryAfter)
		return nil
	}

	batch := server.BatchRequest{Shards: make([]server.ShardSpec, len(pending))}
	for i, idx := range pending {
		batch.Shards[i] = c.specs[idx]
	}
	resp, err := c.postBatch(ctx, url, batch)
	if err != nil {
		var busy *busyError
		if errors.As(err, &busy) {
			// 503 between the readyz gate and the submit (load spike, chaos
			// injection): alive but shedding. Same treatment as not-ready.
			c.requeue(pending, url, err, false)
			c.sleep(ctx, busy.after)
			return nil
		}
		c.requeue(pending, url, err, true)
		return err
	}
	assigned := time.Now()
	var backoff time.Duration
	type assignment struct {
		idx int
		id  string
	}
	var jobs []assignment
	for i, item := range resp.Items {
		idx := pending[i]
		if item.Error != "" {
			c.requeue([]int{idx}, url, errors.New(item.Error), true)
			if d := time.Duration(item.RetryAfterMS) * time.Millisecond; d > backoff {
				backoff = d
			}
			continue
		}
		c.recordAssign(idx, url)
		if item.Job.State == server.StateDone {
			// Cache hit: the worker already ran this shard in a previous
			// assignment; the batch answered with the finished job inline.
			if err := c.adoptResult(idx, item.Job, url, assigned); err != nil {
				c.requeue([]int{idx}, url, err, true)
			}
			continue
		}
		jobs = append(jobs, assignment{idx: idx, id: item.Job.ID})
	}

	for i, a := range jobs {
		if err := c.pollToCompletion(ctx, url, a.idx, a.id, assigned); err != nil {
			// Transport or job failure: give this shard and the rest of the
			// batch back for reassignment — this worker is suspect.
			remaining := make([]int, 0, len(jobs)-i)
			for _, rest := range jobs[i:] {
				remaining = append(remaining, rest.idx)
			}
			c.requeue(remaining, url, err, true)
			return err
		}
	}
	c.sleep(ctx, backoff)
	return nil
}

// pollToCompletion long-polls one job until terminal — the shard's
// heartbeat. A worker that dies mid-shard surfaces here as a transport
// error; a shard stuck past ShardTimeout is abandoned for reassignment.
func (c *coordinator) pollToCompletion(ctx context.Context, url string, idx int, id string, assigned time.Time) error {
	for {
		select {
		case <-c.donec:
			return fmt.Errorf("shard %d: campaign ended while polling", idx)
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
		if time.Since(assigned) > c.cfg.ShardTimeout {
			return fmt.Errorf("shard %d timed out after %s on %s", idx, c.cfg.ShardTimeout, url)
		}
		v, err := c.getJob(ctx, url, id)
		if err != nil {
			var busy *busyError
			if errors.As(err, &busy) {
				// A transient 503 on the poll path (proxy hiccup, chaos
				// injection): the job is still running on the worker; keep
				// the heartbeat going, bounded by ShardTimeout above.
				c.sleep(ctx, busy.after)
				continue
			}
			return err
		}
		switch v.State {
		case server.StateDone:
			return c.adoptResult(idx, v, url, assigned)
		case server.StateFailed:
			return fmt.Errorf("shard %d failed on %s: %s", idx, url, v.Error)
		case server.StateCanceled:
			return fmt.Errorf("shard %d canceled on %s: %s", idx, url, v.Error)
		}
	}
}

// adoptResult decodes a finished job's ShardPayload and records it.
func (c *coordinator) adoptResult(idx int, v *server.JobView, url string, assigned time.Time) error {
	if len(v.Result) == 0 {
		return fmt.Errorf("shard %d: done job %s carries no result", idx, v.ID)
	}
	var p server.ShardPayload
	if err := json.Unmarshal(v.Result, &p); err != nil {
		return fmt.Errorf("shard %d: decode payload: %w", idx, err)
	}
	if p.Report.Shard == nil || p.Report.Shard.Offset != c.specs[idx].ShardOffset || p.Report.Shard.Count != c.specs[idx].ShardCount {
		return fmt.Errorf("shard %d: payload window %+v does not match assignment", idx, p.Report.Shard)
	}
	// End-to-end integrity: the worker stamped the sha256 of the
	// canonical payload before it left the process; recompute it here and
	// refuse anything that was damaged in transit. A mismatch is a
	// retryable transport error — the shard re-fetches (the worker's
	// result cache answers instantly) — never a silent merge of corrupt
	// tallies. Payloads from pre-digest workers (empty field) pass.
	if p.Digest != "" {
		got, err := p.CanonicalDigest()
		if err != nil {
			return fmt.Errorf("shard %d: digest payload: %w", idx, err)
		}
		if got != p.Digest {
			if c.cfg.Metrics != nil {
				c.cfg.Metrics.ShardCorrupted()
			}
			c.emit(Event{Type: "corrupted", Shard: idx, Worker: url})
			return fmt.Errorf("shard %d: payload integrity failure: body hashes to %.12s, worker stamped %.12s (damaged in transit)", idx, got, p.Digest)
		}
	}
	c.complete(idx, &p, url, assigned)
	return nil
}

func (c *coordinator) sleep(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	if d > 5*time.Second {
		d = 5 * time.Second
	}
	select {
	case <-time.After(d):
	case <-c.donec:
	case <-ctx.Done():
	}
}

// ready gates assignment on the worker's /readyz: a draining or
// journal-replaying worker is skipped (with its Retry-After honored)
// rather than loaded up with shards it will shed.
func (c *coordinator) ready(ctx context.Context, url string) (ok bool, retryAfter time.Duration, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/readyz", nil)
	if err != nil {
		return false, 0, err
	}
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return false, 0, err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
	if resp.StatusCode == http.StatusOK {
		return true, 0, nil
	}
	after := time.Second
	if d, ok := parseRetryAfter(resp.Header.Get("Retry-After")); ok {
		after = d
	}
	return false, after, nil
}

func (c *coordinator) postBatch(ctx context.Context, url string, batch server.BatchRequest) (*server.BatchResponse, error) {
	body, err := json.Marshal(batch)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url+"/v1/faults/batch", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode == http.StatusServiceUnavailable {
		return nil, newBusyError(resp)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("batch submit: %s: %s", resp.Status, truncate(raw))
	}
	var out server.BatchResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		return nil, fmt.Errorf("batch submit: decode: %w", err)
	}
	return &out, nil
}

// getJob long-polls one job. The job endpoint answers 200 (terminal),
// 202 (still going), or 500 (failed) — all three carry a JobView.
func (c *coordinator) getJob(ctx context.Context, url, id string) (*server.JobView, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s/v1/jobs/%s?wait=%s", url, id, c.cfg.PollWait), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	switch resp.StatusCode {
	case http.StatusOK, http.StatusAccepted, http.StatusInternalServerError:
	case http.StatusServiceUnavailable:
		return nil, newBusyError(resp)
	default:
		return nil, fmt.Errorf("poll job %s: %s: %s", id, resp.Status, truncate(raw))
	}
	var v server.JobView
	if err := json.Unmarshal(raw, &v); err != nil {
		return nil, fmt.Errorf("poll job %s: decode: %w", id, err)
	}
	return &v, nil
}

func truncate(b []byte) string {
	const max = 256
	if len(b) > max {
		return string(b[:max]) + "…"
	}
	return string(b)
}

// busyError marks a worker that answered 503: alive and reachable,
// refusing work right now. Callers treat it as backpressure — sleep for
// the advertised Retry-After and try again — rather than as a strike
// against the worker or the shard's attempt budget.
type busyError struct {
	status string
	after  time.Duration
}

func newBusyError(resp *http.Response) *busyError {
	after := time.Second
	if d, ok := parseRetryAfter(resp.Header.Get("Retry-After")); ok {
		after = d
	}
	return &busyError{status: resp.Status, after: after}
}

func (e *busyError) Error() string {
	return fmt.Sprintf("worker busy: %s (retry after %s)", e.status, e.after)
}

// parseRetryAfter parses an HTTP Retry-After header in both forms RFC
// 9110 allows: delta-seconds ("30") and HTTP-date ("Fri, 08 Aug 2026
// 07:28:00 GMT"). Dates in the past clamp to zero. Returns false for
// absent or unparseable values.
func parseRetryAfter(s string) (time.Duration, bool) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, false
	}
	if secs, err := strconv.Atoi(s); err == nil {
		if secs < 0 {
			return 0, false
		}
		return time.Duration(secs) * time.Second, true
	}
	if t, err := http.ParseTime(s); err == nil {
		d := time.Until(t)
		if d < 0 {
			d = 0
		}
		return d, true
	}
	return 0, false
}
