// Package stats provides the counters, distributions, and table
// formatting used to report simulation results in the shape of the
// paper's figures.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram is an integer-valued distribution with fixed-width buckets.
type Histogram struct {
	width   uint64
	buckets map[uint64]uint64
	count   uint64
	sum     uint64
	min     uint64
	max     uint64
}

// NewHistogram builds a histogram with the given bucket width (values v
// land in bucket v/width).
func NewHistogram(bucketWidth uint64) *Histogram {
	if bucketWidth == 0 {
		bucketWidth = 1
	}
	return &Histogram{width: bucketWidth, buckets: make(map[uint64]uint64), min: math.MaxUint64}
}

// Add records one observation.
func (h *Histogram) Add(v uint64) {
	h.buckets[v/h.width]++
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// AddN records n observations of value v in one step — the merge
// primitive for recombining histograms that were filled on different
// machines. Adding the buckets of two histograms into a third yields
// exactly the histogram a single pass over all observations would have
// built: count, sum, min, max, and every percentile are reconstructed
// bit-for-bit (the sum is integer arithmetic, so no float re-ordering
// can creep in).
func (h *Histogram) AddN(v, n uint64) {
	if n == 0 {
		return
	}
	h.buckets[v/h.width] += n
	h.count += n
	h.sum += v * n
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Buckets returns the histogram's (bucket start value, count) pairs in
// ascending value order — a serializable form that round-trips through
// AddN. For width-1 histograms the bucket start is the exact observed
// value, so Buckets/AddN reconstruct the distribution losslessly.
func (h *Histogram) Buckets() [][2]uint64 {
	out := make([][2]uint64, 0, len(h.buckets))
	for k, n := range h.buckets {
		out = append(out, [2]uint64{k * h.width, n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the average observation (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Min returns the smallest observation (0 when empty).
func (h *Histogram) Min() uint64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observation.
func (h *Histogram) Max() uint64 { return h.max }

// Percentile returns an upper bound for the p-th percentile (p in
// [0,100]), at bucket granularity.
func (h *Histogram) Percentile(p float64) uint64 {
	if h.count == 0 {
		return 0
	}
	keys := make([]uint64, 0, len(h.buckets))
	for k := range h.buckets {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	need := uint64(math.Ceil(p / 100 * float64(h.count)))
	if need == 0 {
		need = 1
	}
	var seen uint64
	for _, k := range keys {
		seen += h.buckets[k]
		if seen >= need {
			return (k + 1) * h.width
		}
	}
	return (keys[len(keys)-1] + 1) * h.width
}

// Table formats aligned text tables, the output format for every
// regenerated figure.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable builds a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; cells beyond the header count are dropped.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.headers) {
		cells = cells[:len(t.headers)]
	}
	row := make([]string, len(t.headers))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// AddRowf appends a row formatting each value with %v (floats as %.3f).
func (t *Table) AddRowf(cells ...any) {
	strs := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			strs[i] = fmt.Sprintf("%.3f", v)
		case float32:
			strs[i] = fmt.Sprintf("%.3f", v)
		default:
			strs[i] = fmt.Sprint(c)
		}
	}
	t.AddRow(strs...)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Ratio safely divides, returning 0 for a zero denominator.
func Ratio(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}

// PercentDelta returns how much worse b is than a, in percent
// ((a-b)/a*100). Positive means b is slower/lower.
func PercentDelta(a, b float64) float64 {
	if a == 0 {
		return 0
	}
	return (a - b) / a * 100
}

// Mean returns the arithmetic mean of xs (0 when empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Z95 is the standard-normal quantile for a two-sided 95% confidence
// interval.
const Z95 = 1.959963984540054

// Wilson returns the Wilson score interval [lo, hi] for a binomial
// proportion: successes out of n trials at confidence level z (use Z95
// for 95%). Unlike the normal approximation it behaves sensibly at the
// extremes — 0/n and n/n give intervals that don't collapse to a point,
// and n=0 returns the vacuous [0, 1].
func Wilson(successes, n uint64, z float64) (lo, hi float64) {
	if n == 0 {
		return 0, 1
	}
	nn := float64(n)
	p := float64(successes) / nn
	z2 := z * z
	denom := 1 + z2/nn
	center := p + z2/(2*nn)
	margin := z * math.Sqrt(p*(1-p)/nn+z2/(4*nn*nn))
	lo = (center - margin) / denom
	hi = (center + margin) / denom
	// Pin the degenerate endpoints exactly: algebraically lo is 0 at zero
	// successes (and hi is 1 at n of n), but the float evaluation leaves
	// ±1e-18 residue that would make "coverage CI excludes 0" tests lie.
	if successes == 0 {
		lo = 0
	}
	if successes == n {
		hi = 1
	}
	return math.Max(0, lo), math.Min(1, hi)
}

// Wilson95 is Wilson at 95% confidence.
func Wilson95(successes, n uint64) (lo, hi float64) { return Wilson(successes, n, Z95) }
