package harness

import (
	"strings"
	"testing"

	"reese/internal/config"
	"reese/internal/fault"
)

// testOptions keeps unit-test runs quick; the paper-claim tests below
// use larger budgets.
func testOptions() Options { return Options{Insts: 60_000} }

func TestTable1Rendering(t *testing.T) {
	s := Table1()
	for _, want := range []string{"Fetch Queue Size", "16", "RUU Size", "32 KB", "512 KB", "gshare", "4 IntALU, 1 IntMult/Div, 2 MemPorts"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, s)
		}
	}
}

func TestTable2Rendering(t *testing.T) {
	s := Table2()
	for _, want := range []string{"gcc", "go", "ijpeg", "li", "perl", "vortex"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table 2 missing %q", want)
		}
	}
}

func TestFigure2Structure(t *testing.T) {
	fig, err := Figure2(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Workloads) != 6 {
		t.Errorf("workloads = %d", len(fig.Workloads))
	}
	if len(fig.Variants) != 5 {
		t.Errorf("variants = %d, want 5 bar groups", len(fig.Variants))
	}
	for _, w := range fig.Workloads {
		for _, v := range fig.Variants {
			ipc := fig.IPC[w][v]
			if ipc <= 0 || ipc > 8 {
				t.Errorf("%s/%s IPC = %v implausible", w, v, ipc)
			}
		}
	}
	tbl := fig.Table()
	if !strings.Contains(tbl, "AV") || !strings.Contains(tbl, "Figure 2") {
		t.Errorf("table rendering:\n%s", tbl)
	}
}

// TestPaperClaimReeseGapBand checks §6.1: "Average IPC for REESE is only
// 11-16% worse than the baseline without any spare elements." We accept
// a slightly wider band (8-25%) for the synthetic workloads.
func TestPaperClaimReeseGapBand(t *testing.T) {
	fig, err := Figure2(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	gap := fig.GapPercent("Baseline", "REESE")
	if gap < 8 || gap > 25 {
		t.Errorf("REESE average gap = %.1f%%, want within the paper's neighbourhood (8-25%%)", gap)
	}
	// Every workload must individually pay some overhead.
	for _, w := range fig.Workloads {
		if fig.IPC[w]["REESE"] > fig.IPC[w]["Baseline"]*1.02 {
			t.Errorf("%s: REESE (%.3f) should not beat baseline (%.3f)", w, fig.IPC[w]["REESE"], fig.IPC[w]["Baseline"])
		}
	}
}

// TestPaperClaimSparesShrinkGap checks §6.1: spare elements shrink the
// average gap (the paper reports 14.0% -> 8.0% across configurations).
func TestPaperClaimSparesShrinkGap(t *testing.T) {
	fig, err := Figure2(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	gap := fig.GapPercent("Baseline", "REESE")
	gap2 := fig.GapPercent("Baseline", "R+2ALU")
	if gap2 >= gap {
		t.Errorf("2 spare ALUs should shrink the gap: %.1f%% -> %.1f%%", gap, gap2)
	}
}

// TestPaperClaimMultSpareMinor checks §6: "a spare multiplier/divider
// has little effect on average IPC values" — except on the
// multiply-heavy benchmark.
func TestPaperClaimMultSpareMinor(t *testing.T) {
	fig, err := Figure2(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	withoutMult := fig.Average("R+2ALU")
	withMult := fig.Average("R+2ALU+1Mult")
	if delta := (withMult - withoutMult) / withoutMult; delta > 0.05 {
		t.Errorf("spare multiplier moved average IPC by %.1f%%; paper says the effect is small", delta*100)
	}
	// But ijpeg (the mul/div benchmark) should benefit.
	if fig.IPC["ijpeg"]["R+2ALU+1Mult"] <= fig.IPC["ijpeg"]["R+2ALU"] {
		t.Error("ijpeg should benefit from a spare multiplier/divider")
	}
}

// TestPaperClaimMemPortsHelpReese checks §6.1/Figure 5: "the added
// memory ports significantly improved the performance of REESE" — the
// REESE gap with 4 ports must be clearly below the gap with 2.
func TestPaperClaimMemPortsHelpReese(t *testing.T) {
	opt := DefaultOptions()
	f4, err := Figure4(opt)
	if err != nil {
		t.Fatal(err)
	}
	f5, err := Figure5(opt)
	if err != nil {
		t.Fatal(err)
	}
	gap2ports := f4.GapPercent("Baseline", "REESE")
	gap4ports := f5.GapPercent("Baseline", "REESE")
	if gap4ports >= gap2ports {
		t.Errorf("extra memory ports should shrink the REESE gap: %.1f%% (2 ports) -> %.1f%% (4 ports)", gap2ports, gap4ports)
	}
}

// TestPaperClaimFigure7Shape checks §6.1/Figure 7: growing the RUU alone
// leaves a substantial gap; doubling the functional units shrinks it
// dramatically (paper: ~15% -> ~1.5%).
func TestPaperClaimFigure7Shape(t *testing.T) {
	points, err := Figure7(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]Figure7Point{}
	for _, p := range points {
		byLabel[p.Label] = p
	}
	for _, ruu := range []string{"RUU=64", "RUU=256"} {
		plain := byLabel[ruu]
		fus := byLabel[ruu+"+FUs"]
		if plain.GapPercent < 8 {
			t.Errorf("%s: gap %.1f%% — growing the RUU alone should NOT close the gap", ruu, plain.GapPercent)
		}
		if fus.GapPercent >= plain.GapPercent/2 {
			t.Errorf("%s: doubling FUs should cut the gap well below half: %.1f%% -> %.1f%%", ruu, plain.GapPercent, fus.GapPercent)
		}
	}
}

// TestPaperClaimIdleCapacity checks the §4.1 premise: substantial idle
// capacity exists on the baseline (IPC well below peak width).
func TestPaperClaimIdleCapacity(t *testing.T) {
	s, err := IdleCapacity(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "gcc") {
		t.Errorf("idle capacity table:\n%s", s)
	}
	fig, err := Figure2(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	avg := fig.Average("Baseline")
	if frac := avg / float64(config.Starting().Width); frac > 0.7 {
		t.Errorf("baseline uses %.0f%% of peak width; the idle-capacity premise wants well under 70%%", frac*100)
	}
}

func TestFigure6Summary(t *testing.T) {
	rows, err := Figure6(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4 configurations", len(rows))
	}
	tbl := Figure6Table(rows)
	for _, want := range []string{"None", "RUU,LSQ 2X", "Ex. Q 2X", "MemPorts"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("Figure 6 table missing %q", want)
		}
	}
	for _, r := range rows {
		if r.BaselineIPC <= 0 || r.ReeseIPC <= 0 {
			t.Errorf("%s: zero IPC", r.Config)
		}
	}
}

func TestCampaignCoverage(t *testing.T) {
	r, err := Campaign(CampaignSpec{
		Workload:   "gcc",
		Machine:    config.Starting().WithReese(),
		Structures: []fault.Struct{fault.StructResult},
		Injections: 60,
		Seed:       0xBEEF,
	}, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if r.Injected == 0 {
		t.Fatal("campaign injected nothing")
	}
	if r.Coverage < 0.99 {
		t.Errorf("REESE coverage = %.2f, want ~1.0 (all result faults detected)", r.Coverage)
	}
	if r.DetectionLatencyMean <= 0 {
		t.Error("detection latency should be positive")
	}
	if got := r.Total(); got != r.Injected {
		t.Errorf("outcome counts sum to %d, want %d injected", got, r.Injected)
	}

	b, err := Campaign(CampaignSpec{
		Workload:   "gcc",
		Machine:    config.Starting(),
		Structures: []fault.Struct{fault.StructResult},
		Injections: 60,
		Seed:       0xBEEF,
	}, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if b.Detected != 0 {
		t.Errorf("baseline detected %d faults; it has no comparator", b.Detected)
	}
	if silent := b.SDC + b.Masked; silent+b.Hang != b.Injected {
		t.Errorf("baseline: %d of %d faults should commit silently or hang", silent, b.Injected)
	}
}

func TestSpareSearch(t *testing.T) {
	n, gaps, err := SpareSearch(config.Starting(), 4, 0.12, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(gaps) == 0 {
		t.Fatal("no gaps measured")
	}
	if n < 0 {
		t.Logf("tolerance not reached within 4 spares; gaps: %v", gaps)
	}
	// Gaps must not grow as spares are added (within noise).
	for i := 1; i < len(gaps); i++ {
		if gaps[i] > gaps[0]+2 {
			t.Errorf("gap grew with spares: %v", gaps)
		}
	}
}

func TestRSQSweep(t *testing.T) {
	tbl, res, err := RSQSweep([]int{4, 32}, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tbl, "rsq size") {
		t.Errorf("table:\n%s", tbl)
	}
	if res[4] > res[32] {
		t.Errorf("RSQ 4 (%.3f IPC) should not beat RSQ 32 (%.3f)", res[4], res[32])
	}
}

func TestPartialReexecSweep(t *testing.T) {
	tbl, err := PartialReexecSweep([]int{1, 2, 4}, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"1/1", "1/2", "1/4", "coverage"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("partial-reexec table missing %q:\n%s", want, tbl)
		}
	}
}

func TestRunGridRejectsUnknownWorkload(t *testing.T) {
	_, err := runOne(config.Starting(), "nonesuch", testOptions())
	if err == nil {
		t.Error("unknown workload should fail")
	}
}

func TestCheckClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("full claim suite is slow")
	}
	claims, err := CheckClaims(Options{Insts: 80_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(claims) < 8 {
		t.Fatalf("only %d claims checked", len(claims))
	}
	for _, c := range claims {
		if !c.Pass {
			t.Errorf("claim %s failed: paper %s, measured %s", c.ID, c.Paper, c.Measured)
		}
	}
	report := ClaimsReport(claims)
	if !strings.Contains(report, "PASS") || !strings.Contains(report, "claims reproduced") {
		t.Errorf("report rendering:\n%s", report)
	}
}

func TestFigureCSV(t *testing.T) {
	fig, err := Figure2(Options{Insts: 30_000})
	if err != nil {
		t.Fatal(err)
	}
	csv := FigureCSV(fig)
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	// header + 6 workloads + AV
	if len(lines) != 8 {
		t.Fatalf("csv lines = %d:\n%s", len(lines), csv)
	}
	if !strings.HasPrefix(lines[0], "bench,Baseline,REESE") {
		t.Errorf("header = %q", lines[0])
	}
	for _, l := range lines[1:] {
		if strings.Count(l, ",") != len(fig.Variants) {
			t.Errorf("row %q has wrong column count", l)
		}
	}
}
