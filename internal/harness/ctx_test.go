package harness

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestFigureCancellation: a cancelled Options.Ctx aborts a grid instead
// of simulating all its cells.
func TestFigureCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Figure2(Options{Insts: 50_000, Ctx: ctx}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Figure2 with cancelled ctx: %v, want context.Canceled", err)
	}

	start := time.Now()
	ctx2, cancel2 := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel2()
	_, err := Figure2(Options{Insts: 10_000_000, Ctx: ctx2})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Figure2 with deadline: %v, want context.DeadlineExceeded", err)
	}
	// A full 10M-inst figure takes minutes; the deadline must cut the
	// grid short long before that.
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Errorf("cancellation took %v", elapsed)
	}
}
