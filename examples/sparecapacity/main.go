// Spare capacity: the paper's central question (§1.1) — how much spare
// hardware must be added so REESE's soft-error detection costs no
// performance? This example sweeps spare integer ALUs and reports the
// remaining gap, then shows the Figure 7 effect: on a machine with
// plenty of functional units, REESE is nearly free.
package main

import (
	"fmt"
	"log"

	"reese"
	"reese/internal/fu"
)

func main() {
	opt := reese.DefaultOptions()

	fmt.Println("== spare-ALU search on the starting configuration ==")
	n, gaps, err := reese.SpareSearch(reese.StartingConfig(), 4, 0.10, opt)
	if err != nil {
		log.Fatal(err)
	}
	for i, g := range gaps {
		fmt.Printf("  %d spare ALUs: REESE is %.1f%% behind the baseline\n", i, g)
	}
	if n >= 0 {
		fmt.Printf("  -> %d spare ALUs bring the gap within 10%%\n", n)
	} else {
		fmt.Println("  -> 10% not reached; the window, not the ALUs, binds this small machine")
	}

	fmt.Println("\n== the Figure 7 effect: a big machine with doubled functional units ==")
	big := reese.StartingConfig().WithRUU(256).WithFUs(fu.Config{IntALU: 8, IntMult: 2, MemPort: 4})
	for _, cfg := range []reese.Config{big, big.WithReese().WithRSQ(64)} {
		prog, err := reese.Workload("gcc", 0)
		if err != nil {
			log.Fatal(err)
		}
		res, err := reese.Run(cfg, prog, nil, 200_000)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-52s IPC %.3f\n", res.Config, res.IPC)
	}
	fmt.Println("  -> with enough functional units, full duplicate execution is nearly free,")
	fmt.Println("     which is the paper's closing argument: REESE gets cheaper every generation.")
}
