package obs

import (
	"encoding/json"
	"testing"
	"time"
)

func TestSpanTree(t *testing.T) {
	t0 := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	root := NewSpan("job run", t0)
	q := root.StartChild("queue-wait", t0)
	q.Finish(t0.Add(50*time.Millisecond), "")
	a := root.StartChild("attempt 1", t0.Add(50*time.Millisecond))
	root.AddChild("journal-append submit", t0, t0.Add(time.Millisecond), "")
	a.Finish(t0.Add(250*time.Millisecond), "ok")
	root.Finish(t0.Add(300*time.Millisecond), "done")

	if d := q.Duration(t0); d != 50*time.Millisecond {
		t.Fatalf("queue-wait duration %v", d)
	}
	if root.Find("attempt 1") != a {
		t.Fatal("Find missed a child")
	}
	if root.Find("nope") != nil {
		t.Fatal("Find invented a child")
	}

	// Finish is first-wins on time, but a later outcome may fill an
	// empty one.
	a.Finish(t0.Add(time.Hour), "ignored")
	if a.End.Sub(t0) != 250*time.Millisecond || a.Outcome != "ok" {
		t.Fatalf("double finish mutated span: %+v", a)
	}

	clone := root.Clone()
	if clone == root || clone.Children[0] == root.Children[0] {
		t.Fatal("Clone aliases the original")
	}
	clone.Children[0].Outcome = "mutated"
	if root.Children[0].Outcome == "mutated" {
		t.Fatal("mutating the clone reached the original")
	}

	// The tree must survive a JSON round trip (it is served verbatim
	// from GET /v1/jobs/{id} and re-read by the chaos suite).
	data, err := json.Marshal(root)
	if err != nil {
		t.Fatal(err)
	}
	var back Span
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Find("queue-wait") == nil || back.Find("attempt 1").Outcome != "ok" {
		t.Fatalf("round trip lost structure: %s", data)
	}
	if back.Find("open-span") != nil {
		t.Fatal("unexpected child")
	}
}

func TestOpenSpanDuration(t *testing.T) {
	t0 := time.Now()
	s := NewSpan("open", t0)
	if d := s.Duration(t0.Add(time.Second)); d != time.Second {
		t.Fatalf("open duration %v", d)
	}
	if s.End != nil {
		t.Fatal("span closed itself")
	}
}
