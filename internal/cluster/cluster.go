// Package cluster distributes a fault-injection campaign across
// reese-serve worker replicas. A coordinator splits the campaign's
// trial plan into contiguous shards — each shard is the exact
// [offset, offset+count) slice of the single-process plan, because the
// harness derives every trial from its own (seed, index) splitmix64
// substream — fans the shards out over the workers' HTTP job API
// (POST /v1/faults/batch), and merges the shard reports with
// harness.MergeReports into a CampaignReport byte-identical to the
// single-process run.
//
// Robustness is part of the contract, not best-effort:
//
//   - A worker answering 503 (full queue, drain) gets its shards back
//     on the queue with the server's Retry-After honored.
//   - A worker that stops answering (killed, partitioned) has its
//     in-flight shards reassigned to the survivors; the poll loop that
//     drives each shard doubles as its heartbeat.
//   - Completion is idempotent: the first result for a shard index
//     wins, later duplicates are dropped, and the merge itself refuses
//     any shard set that does not tile the plan exactly — a lost or
//     double-counted shard is an error, never a silently wrong report.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"time"

	"reese/internal/config"
	"reese/internal/harness"
	"reese/internal/server"
)

// Campaign is the cluster-level request: a full fault campaign to be
// sharded across workers. The fields mirror server.ShardSpec minus the
// shard window, which the coordinator assigns.
type Campaign struct {
	Workload           string          `json:"workload"`
	Machine            *config.Machine `json:"machine,omitempty"`
	Structures         []string        `json:"structures,omitempty"`
	Injections         int             `json:"injections"`
	Seed               uint64          `json:"seed,omitempty"`
	TargetInsts        uint64          `json:"target_insts,omitempty"`
	CheckpointInterval uint64          `json:"checkpoint_interval,omitempty"`
	// ShardSize overrides the trials-per-shard split (0 = auto: about
	// four shards per worker, so reassignment granularity stays useful).
	ShardSize int `json:"shard_size,omitempty"`
	// Triage re-runs escaped trials (SDC/Hang, plus Detected when
	// TriageDetected is set) on the worker that ran them, with
	// first-divergence attribution; the coordinator reattaches each
	// shard's trace blobs to the merged trial log.
	Triage         bool `json:"triage,omitempty"`
	TriageDetected bool `json:"triage_detected,omitempty"`
}

// Hooks receives shard lifecycle counts; server.ShardMetrics satisfies
// it structurally, keeping this package and server import-acyclic.
type Hooks interface {
	ShardAssigned()
	ShardCompleted(seconds float64)
	ShardRetried()
	ShardReassigned()
}

// Event is one live-progress notification, streamed to clients as SSE
// or chunked JSONL by Handler.
type Event struct {
	// Type is assigned | completed | retried | reassigned | error.
	Type   string `json:"type"`
	Shard  int    `json:"shard"`
	Worker string `json:"worker,omitempty"`
	// CompletedShards/TotalShards and CompletedTrials/TotalTrials track
	// overall progress at the time of the event.
	CompletedShards int `json:"completed_shards"`
	TotalShards     int `json:"total_shards"`
	CompletedTrials int `json:"completed_trials"`
	TotalTrials     int `json:"total_trials"`
	// ElapsedS is seconds since the campaign started.
	ElapsedS float64 `json:"elapsed_s"`
	Err      string  `json:"err,omitempty"`
}

// Config tunes the coordinator; zero values select the defaults.
type Config struct {
	// Workers are the reese-serve replica base URLs (http://host:port).
	Workers []string
	// Client issues all worker HTTP requests (default: 30s timeout).
	Client *http.Client
	// ShardSize is the default trials per shard when the Campaign does
	// not set one (0 = auto).
	ShardSize int
	// Batch caps shards claimed per batch submit (default 4).
	Batch int
	// PollWait is the long-poll duration per job status request — the
	// shard heartbeat interval (default 5s).
	PollWait time.Duration
	// ShardTimeout abandons and reassigns a shard not terminal within
	// this long of its assignment (default 10m).
	ShardTimeout time.Duration
	// MaxAttempts bounds assignments per shard before the campaign
	// fails (default 10).
	MaxAttempts int
	// Metrics receives shard lifecycle counts (optional).
	Metrics Hooks
	// OnEvent receives live progress events (optional).
	OnEvent func(Event)
	// Logger receives coordinator logs (default slog.Default()).
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if c.Batch <= 0 {
		c.Batch = 4
	}
	if c.PollWait <= 0 {
		c.PollWait = 5 * time.Second
	}
	if c.ShardTimeout <= 0 {
		c.ShardTimeout = 10 * time.Minute
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 10
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return c
}

// maxShardCount mirrors the worker-side per-shard trial cap.
const maxShardCount = 5_000

// shardSpecs splits the campaign into contiguous ShardSpecs.
func shardSpecs(req Campaign, workers, defaultSize int) []server.ShardSpec {
	size := req.ShardSize
	if size <= 0 {
		size = defaultSize
	}
	if size <= 0 {
		// Auto: about four shards per worker — small enough that losing a
		// worker forfeits little work, big enough to amortize round trips.
		size = (req.Injections + 4*workers - 1) / (4 * workers)
	}
	if size < 1 {
		size = 1
	}
	if size > maxShardCount {
		size = maxShardCount
	}
	var specs []server.ShardSpec
	for off := 0; off < req.Injections; off += size {
		count := size
		if off+count > req.Injections {
			count = req.Injections - off
		}
		specs = append(specs, server.ShardSpec{
			Workload:           req.Workload,
			Machine:            req.Machine,
			Structures:         req.Structures,
			Injections:         req.Injections,
			Seed:               req.Seed,
			TargetInsts:        req.TargetInsts,
			CheckpointInterval: req.CheckpointInterval,
			ShardOffset:        off,
			ShardCount:         count,
			Triage:             req.Triage,
			TriageDetected:     req.TriageDetected,
		})
	}
	return specs
}

// Run executes the campaign across the configured workers and returns
// the merged report. The report is byte-identical (wall-clock fields
// aside) to the single-process harness.Campaign run with the same
// spec, or Run errors — there is no partial-success mode.
func Run(ctx context.Context, cfg Config, req Campaign) (*harness.CampaignReport, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Workers) == 0 {
		return nil, errors.New("cluster: no workers configured")
	}
	if req.Injections <= 0 {
		return nil, fmt.Errorf("cluster: injections %d out of range", req.Injections)
	}
	specs := shardSpecs(req, len(cfg.Workers), cfg.ShardSize)
	co := &coordinator{
		cfg:        cfg,
		specs:      specs,
		queue:      make(chan int, len(specs)),
		donec:      make(chan struct{}),
		results:    make([]*server.ShardPayload, len(specs)),
		attempts:   make([]int, len(specs)),
		lastWorker: make([]string, len(specs)),
		live:       len(cfg.Workers),
		start:      time.Now(),
	}
	for i := range specs {
		co.queue <- i
	}
	var wg sync.WaitGroup
	for _, url := range cfg.Workers {
		wg.Add(1)
		go func(url string) {
			defer wg.Done()
			co.workerLoop(ctx, url)
		}(url)
	}
	select {
	case <-co.donec:
	case <-ctx.Done():
		co.fail(ctx.Err())
	}
	wg.Wait()
	co.mu.Lock()
	failure := co.failure
	co.mu.Unlock()
	if failure != nil {
		return nil, failure
	}

	reports := make([]*harness.CampaignReport, len(co.results))
	for i, p := range co.results {
		if p == nil {
			return nil, fmt.Errorf("cluster: shard %d finished without a payload", i)
		}
		rep := p.Report
		rep.Trials = p.Trials
		// Trace blobs travel out-of-band of the trial records (the Trace
		// field is excluded from Trial JSON); reattach them so the merged
		// trial log carries its triage artifacts whole.
		for t := range rep.Trials {
			tr := &rep.Trials[t]
			if tr.Triage == nil {
				continue
			}
			if blob, ok := p.Traces[strconv.Itoa(tr.Index)]; ok {
				tr.Triage.Trace = blob
			}
		}
		reports[i] = &rep
	}
	merged, err := harness.MergeReports(reports)
	if err != nil {
		return nil, fmt.Errorf("cluster: merge: %w", err)
	}
	elapsed := time.Since(co.start).Seconds()
	merged.WallSeconds = elapsed
	if elapsed > 0 {
		merged.InjectionsPerSec = float64(merged.Injected) / elapsed
	}
	return merged, nil
}

// coordinator is the shared state of one Run: the shard queue, the
// per-shard bookkeeping, and the completion latch.
type coordinator struct {
	cfg   Config
	specs []server.ShardSpec
	queue chan int
	donec chan struct{}
	start time.Time

	mu         sync.Mutex
	results    []*server.ShardPayload
	attempts   []int
	lastWorker []string
	completed  int
	doneTrials int
	failure    error
	live       int // workers still in their loop
	closed     bool
}

// fail records the first fatal error and releases everyone.
func (c *coordinator) fail(err error) {
	c.mu.Lock()
	if c.failure == nil {
		c.failure = err
	}
	c.closeDoneLocked()
	c.mu.Unlock()
}

func (c *coordinator) closeDoneLocked() {
	if !c.closed {
		c.closed = true
		close(c.donec)
	}
}

func (c *coordinator) emit(ev Event) {
	c.mu.Lock()
	ev.CompletedShards = c.completed
	ev.CompletedTrials = c.doneTrials
	c.mu.Unlock()
	ev.TotalShards = len(c.specs)
	ev.TotalTrials = c.specs[0].Injections
	ev.ElapsedS = time.Since(c.start).Seconds()
	if c.cfg.OnEvent != nil {
		c.cfg.OnEvent(ev)
	}
}

// claim blocks for one pending shard, then drains up to batch-1 more
// without blocking. Returns nil when the campaign is over.
func (c *coordinator) claim(ctx context.Context) []int {
	var idxs []int
	for len(idxs) < c.cfg.Batch {
		if len(idxs) == 0 {
			select {
			case idx := <-c.queue:
				idxs = append(idxs, idx)
			case <-c.donec:
				return nil
			case <-ctx.Done():
				return nil
			}
			continue
		}
		select {
		case idx := <-c.queue:
			idxs = append(idxs, idx)
		default:
			return idxs
		}
	}
	return idxs
}

// requeue puts shards back on the queue after a failed assignment,
// counting attempts; exhausting a shard's budget fails the campaign
// (the alternative — dropping it — would yield a silently partial
// report, which the merge would reject anyway).
func (c *coordinator) requeue(idxs []int, worker string, cause error) {
	for _, idx := range idxs {
		c.mu.Lock()
		done := c.results[idx] != nil
		c.attempts[idx]++
		exhausted := c.attempts[idx] >= c.cfg.MaxAttempts
		c.mu.Unlock()
		if done {
			continue
		}
		if exhausted {
			c.fail(fmt.Errorf("cluster: shard %d failed after %d attempts: %v", idx, c.cfg.MaxAttempts, cause))
			return
		}
		if c.cfg.Metrics != nil {
			c.cfg.Metrics.ShardRetried()
		}
		c.emit(Event{Type: "retried", Shard: idx, Worker: worker, Err: fmt.Sprint(cause)})
		c.queue <- idx
	}
}

// recordAssign notes which worker a shard landed on, counting a
// reassignment when it moved off a previous worker.
func (c *coordinator) recordAssign(idx int, worker string) {
	c.mu.Lock()
	prev := c.lastWorker[idx]
	c.lastWorker[idx] = worker
	c.mu.Unlock()
	if c.cfg.Metrics != nil {
		c.cfg.Metrics.ShardAssigned()
		if prev != "" && prev != worker {
			c.cfg.Metrics.ShardReassigned()
		}
	}
	if prev != "" && prev != worker {
		c.emit(Event{Type: "reassigned", Shard: idx, Worker: worker})
	} else {
		c.emit(Event{Type: "assigned", Shard: idx, Worker: worker})
	}
}

// complete records a shard result exactly once; duplicates (a shard
// that was reassigned and then finished twice) are dropped here, which
// together with the workers' content-addressed result cache makes
// reassignment double-count-proof.
func (c *coordinator) complete(idx int, p *server.ShardPayload, worker string, since time.Time) {
	c.mu.Lock()
	if c.results[idx] != nil {
		c.mu.Unlock()
		return
	}
	c.results[idx] = p
	c.completed++
	c.doneTrials += c.specs[idx].ShardCount
	last := c.completed == len(c.specs)
	if last {
		c.closeDoneLocked()
	}
	c.mu.Unlock()
	if c.cfg.Metrics != nil {
		c.cfg.Metrics.ShardCompleted(time.Since(since).Seconds())
	}
	c.emit(Event{Type: "completed", Shard: idx, Worker: worker})
}

// workerExited accounts for a worker leaving its loop on repeated
// failures; the last one out with shards still pending fails the run.
func (c *coordinator) workerExited() {
	c.mu.Lock()
	c.live--
	dead := c.live == 0 && c.completed < len(c.specs) && c.failure == nil
	c.mu.Unlock()
	if dead {
		c.fail(errors.New("cluster: all workers lost with shards still pending"))
	}
}

// maxConsecutiveFailures is how many batch rounds in a row may fail
// against one worker before the coordinator writes it off.
const maxConsecutiveFailures = 3

// workerLoop drives one worker replica: claim shards, submit them as a
// batch, poll each to completion. Transport-level failures count
// against the worker; too many in a row and its loop exits, leaving
// its shards to the survivors.
func (c *coordinator) workerLoop(ctx context.Context, url string) {
	failures := 0
	for {
		idxs := c.claim(ctx)
		if idxs == nil {
			return
		}
		if err := c.runBatch(ctx, url, idxs); err != nil {
			failures++
			c.cfg.Logger.Warn("cluster: worker batch failed", "worker", url, "err", err, "failures", failures)
			if failures >= maxConsecutiveFailures {
				c.cfg.Logger.Warn("cluster: abandoning worker", "worker", url)
				c.workerExited()
				return
			}
			// Brief pause so a flapping worker does not spin the queue.
			select {
			case <-time.After(200 * time.Millisecond):
			case <-c.donec:
				return
			case <-ctx.Done():
				return
			}
			continue
		}
		failures = 0
	}
}

// runBatch submits one claimed batch to a worker and drives every
// accepted shard to a terminal state. A transport error reassigns the
// not-yet-finished shards and reports the worker as failing; a 503
// requeues with the Retry-After honored and reports success (the
// worker is alive, merely busy).
func (c *coordinator) runBatch(ctx context.Context, url string, idxs []int) error {
	// Skip shards that finished elsewhere while these sat in the queue.
	pending := idxs[:0]
	for _, idx := range idxs {
		c.mu.Lock()
		done := c.results[idx] != nil
		c.mu.Unlock()
		if !done {
			pending = append(pending, idx)
		}
	}
	if len(pending) == 0 {
		return nil
	}

	if ready, retryAfter, err := c.ready(ctx, url); err != nil {
		c.requeue(pending, url, err)
		return err
	} else if !ready {
		c.requeue(pending, url, errors.New("worker not ready"))
		c.sleep(ctx, retryAfter)
		return nil
	}

	batch := server.BatchRequest{Shards: make([]server.ShardSpec, len(pending))}
	for i, idx := range pending {
		batch.Shards[i] = c.specs[idx]
	}
	resp, err := c.postBatch(ctx, url, batch)
	if err != nil {
		c.requeue(pending, url, err)
		return err
	}
	assigned := time.Now()
	var backoff time.Duration
	type assignment struct {
		idx int
		id  string
	}
	var jobs []assignment
	for i, item := range resp.Items {
		idx := pending[i]
		if item.Error != "" {
			c.requeue([]int{idx}, url, errors.New(item.Error))
			if d := time.Duration(item.RetryAfterMS) * time.Millisecond; d > backoff {
				backoff = d
			}
			continue
		}
		c.recordAssign(idx, url)
		if item.Job.State == server.StateDone {
			// Cache hit: the worker already ran this shard in a previous
			// assignment; the batch answered with the finished job inline.
			if err := c.adoptResult(idx, item.Job, url, assigned); err != nil {
				c.requeue([]int{idx}, url, err)
			}
			continue
		}
		jobs = append(jobs, assignment{idx: idx, id: item.Job.ID})
	}

	for i, a := range jobs {
		if err := c.pollToCompletion(ctx, url, a.idx, a.id, assigned); err != nil {
			// Transport or job failure: give this shard and the rest of the
			// batch back for reassignment — this worker is suspect.
			remaining := make([]int, 0, len(jobs)-i)
			for _, rest := range jobs[i:] {
				remaining = append(remaining, rest.idx)
			}
			c.requeue(remaining, url, err)
			return err
		}
	}
	c.sleep(ctx, backoff)
	return nil
}

// pollToCompletion long-polls one job until terminal — the shard's
// heartbeat. A worker that dies mid-shard surfaces here as a transport
// error; a shard stuck past ShardTimeout is abandoned for reassignment.
func (c *coordinator) pollToCompletion(ctx context.Context, url string, idx int, id string, assigned time.Time) error {
	for {
		if time.Since(assigned) > c.cfg.ShardTimeout {
			return fmt.Errorf("shard %d timed out after %s on %s", idx, c.cfg.ShardTimeout, url)
		}
		v, err := c.getJob(ctx, url, id)
		if err != nil {
			return err
		}
		switch v.State {
		case server.StateDone:
			return c.adoptResult(idx, v, url, assigned)
		case server.StateFailed:
			return fmt.Errorf("shard %d failed on %s: %s", idx, url, v.Error)
		case server.StateCanceled:
			return fmt.Errorf("shard %d canceled on %s: %s", idx, url, v.Error)
		}
	}
}

// adoptResult decodes a finished job's ShardPayload and records it.
func (c *coordinator) adoptResult(idx int, v *server.JobView, url string, assigned time.Time) error {
	if len(v.Result) == 0 {
		return fmt.Errorf("shard %d: done job %s carries no result", idx, v.ID)
	}
	var p server.ShardPayload
	if err := json.Unmarshal(v.Result, &p); err != nil {
		return fmt.Errorf("shard %d: decode payload: %w", idx, err)
	}
	if p.Report.Shard == nil || p.Report.Shard.Offset != c.specs[idx].ShardOffset {
		return fmt.Errorf("shard %d: payload window %+v does not match assignment", idx, p.Report.Shard)
	}
	c.complete(idx, &p, url, assigned)
	return nil
}

func (c *coordinator) sleep(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	if d > 5*time.Second {
		d = 5 * time.Second
	}
	select {
	case <-time.After(d):
	case <-c.donec:
	case <-ctx.Done():
	}
}

// ready gates assignment on the worker's /readyz: a draining or
// journal-replaying worker is skipped (with its Retry-After honored)
// rather than loaded up with shards it will shed.
func (c *coordinator) ready(ctx context.Context, url string) (ok bool, retryAfter time.Duration, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/readyz", nil)
	if err != nil {
		return false, 0, err
	}
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return false, 0, err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
	if resp.StatusCode == http.StatusOK {
		return true, 0, nil
	}
	after := time.Second
	if s := resp.Header.Get("Retry-After"); s != "" {
		if d, perr := time.ParseDuration(s + "s"); perr == nil {
			after = d
		}
	}
	return false, after, nil
}

func (c *coordinator) postBatch(ctx context.Context, url string, batch server.BatchRequest) (*server.BatchResponse, error) {
	body, err := json.Marshal(batch)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url+"/v1/faults/batch", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("batch submit: %s: %s", resp.Status, truncate(raw))
	}
	var out server.BatchResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		return nil, fmt.Errorf("batch submit: decode: %w", err)
	}
	return &out, nil
}

// getJob long-polls one job. The job endpoint answers 200 (terminal),
// 202 (still going), or 500 (failed) — all three carry a JobView.
func (c *coordinator) getJob(ctx context.Context, url, id string) (*server.JobView, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s/v1/jobs/%s?wait=%s", url, id, c.cfg.PollWait), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	switch resp.StatusCode {
	case http.StatusOK, http.StatusAccepted, http.StatusInternalServerError:
	default:
		return nil, fmt.Errorf("poll job %s: %s: %s", id, resp.Status, truncate(raw))
	}
	var v server.JobView
	if err := json.Unmarshal(raw, &v); err != nil {
		return nil, fmt.Errorf("poll job %s: decode: %w", id, err)
	}
	return &v, nil
}

func truncate(b []byte) string {
	const max = 256
	if len(b) > max {
		return string(b[:max]) + "…"
	}
	return string(b)
}
