// Package fu models the pool of functional units the issue stage
// allocates from: integer ALUs, integer multiplier/dividers, and memory
// ports. REESE's "spare elements" are extra units added to this pool.
//
// Each unit tracks the cycle until which it is occupied (its issue
// latency); an operation can only issue if a unit of its class is free
// this cycle. Utilisation counters feed the idle-capacity analysis the
// paper's argument rests on (§4.1: 30-40% of hardware idle per cycle).
package fu

import (
	"fmt"

	"reese/internal/isa"
)

// Kind is a pool resource type.
type Kind uint8

// Resource kinds. Loads and stores share memory ports, as in
// SimpleScalar's machine model.
const (
	IntALU Kind = iota
	IntMult
	MemPort
	FPALU
	FPMult
	numKinds
)

func (k Kind) String() string {
	switch k {
	case IntALU:
		return "int-alu"
	case IntMult:
		return "int-mult"
	case MemPort:
		return "mem-port"
	case FPALU:
		return "fp-alu"
	case FPMult:
		return "fp-mult"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// KindFor maps an opcode's class to the pool resource it needs.
func KindFor(class isa.Class) Kind {
	switch class {
	case isa.ClassIntMult:
		return IntMult
	case isa.ClassMemRead, isa.ClassMemWrite:
		return MemPort
	case isa.ClassFPALU:
		return FPALU
	case isa.ClassFPMult:
		return FPMult
	default:
		return IntALU
	}
}

// Config is the number of units of each kind. The paper's Table 1
// starting configuration is 4 integer ALUs, 1 integer multiplier/divider
// and 2 memory ports.
type Config struct {
	IntALU  int
	IntMult int
	MemPort int
	// FPALU and FPMult may be zero for a machine without FP datapaths;
	// running FP code on such a machine deadlocks issue, so configure
	// them if programs use the FP extension (Table 1: same counts as
	// the integer complement).
	FPALU  int
	FPMult int
}

// Validate checks the unit counts.
func (c Config) Validate() error {
	if c.IntALU < 1 || c.IntMult < 1 || c.MemPort < 1 {
		return fmt.Errorf("fu: every integer class needs at least one unit: %+v", c)
	}
	if c.FPALU < 0 || c.FPMult < 0 {
		return fmt.Errorf("fu: negative FP unit count: %+v", c)
	}
	return nil
}

// AddSpares returns a configuration with extra units added — the REESE
// spare elements (paper §4.5).
func (c Config) AddSpares(alus, mults int) Config {
	c.IntALU += alus
	c.IntMult += mults
	return c
}

// Stats counts per-kind pool activity.
type Stats struct {
	// Acquired is the number of successful unit acquisitions.
	Acquired [numKinds]uint64
	// BusyCycles accumulates unit-cycles of occupancy.
	BusyCycles [numKinds]uint64
	// Denied counts issue attempts that found no free unit.
	Denied [numKinds]uint64
}

// AcquiredFor returns successful acquisitions of kind k.
func (s *Stats) AcquiredFor(k Kind) uint64 { return s.Acquired[k] }

// DeniedFor returns failed acquisitions of kind k.
func (s *Stats) DeniedFor(k Kind) uint64 { return s.Denied[k] }

// Pool is the set of functional units.
type Pool struct {
	cfg Config
	// busyUntil[k][i] is the first cycle unit i of kind k is free.
	busyUntil [numKinds][]uint64
	stats     Stats
}

// NewPool builds a functional-unit pool.
func NewPool(cfg Config) (*Pool, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := &Pool{cfg: cfg}
	p.busyUntil[IntALU] = make([]uint64, cfg.IntALU)
	p.busyUntil[IntMult] = make([]uint64, cfg.IntMult)
	p.busyUntil[MemPort] = make([]uint64, cfg.MemPort)
	p.busyUntil[FPALU] = make([]uint64, cfg.FPALU)
	p.busyUntil[FPMult] = make([]uint64, cfg.FPMult)
	return p, nil
}

// Config returns the pool's unit counts.
func (p *Pool) Config() Config { return p.cfg }

// Count returns the number of units of kind k.
func (p *Pool) Count(k Kind) int { return len(p.busyUntil[k]) }

// Free returns how many units of kind k are free at cycle now.
func (p *Pool) Free(k Kind, now uint64) int {
	n := 0
	for _, bu := range p.busyUntil[k] {
		if bu <= now {
			n++
		}
	}
	return n
}

// Acquire tries to claim a unit of kind k at cycle now for issueLat
// cycles. It returns false (and counts a denial) if none is free.
func (p *Pool) Acquire(k Kind, now uint64, issueLat int) bool {
	_, ok := p.AcquireUnit(k, now, issueLat)
	return ok
}

// AcquireUnit is Acquire returning which unit was claimed — needed by
// unit-level fault modelling (a stuck functional unit corrupts exactly
// the operations that execute on it).
func (p *Pool) AcquireUnit(k Kind, now uint64, issueLat int) (int, bool) {
	units := p.busyUntil[k]
	for i := range units {
		if units[i] <= now {
			units[i] = now + uint64(issueLat)
			p.stats.Acquired[k]++
			p.stats.BusyCycles[k] += uint64(issueLat)
			return i, true
		}
	}
	p.stats.Denied[k]++
	return -1, false
}

// AcquireFor is Acquire keyed by an opcode (class and issue latency come
// from the ISA metadata).
func (p *Pool) AcquireFor(op isa.Op, now uint64) bool {
	return p.Acquire(KindFor(op.Class()), now, op.IssueLatency())
}

// Reset clears all occupancy (used on pipeline flush; in-flight
// operations are squashed).
func (p *Pool) Reset() {
	for k := range p.busyUntil {
		for i := range p.busyUntil[k] {
			p.busyUntil[k][i] = 0
		}
	}
}

// Stats returns a copy of the pool's counters.
func (p *Pool) Stats() Stats { return p.stats }

// Utilization returns the mean fraction of kind-k units busy over
// elapsed cycles.
func (p *Pool) Utilization(k Kind, elapsed uint64) float64 {
	n := uint64(len(p.busyUntil[k]))
	if n == 0 || elapsed == 0 {
		return 0
	}
	u := float64(p.stats.BusyCycles[k]) / float64(n*elapsed)
	if u > 1 {
		u = 1
	}
	return u
}
