package workload

import (
	"fmt"
	"strings"

	"reese/internal/asm"
	"reese/internal/program"
)

// buildM88ksim models m88ksim (a Motorola 88100 simulator), the other
// SPEC95int program the paper omits. The kernel is an interpreter: fetch
// a guest instruction word, dispatch through a jump table on the opcode
// (indirect jumps — the pattern that stresses the BTB), execute a simple
// ALU semantic against a memory-resident guest register file, and loop.
func buildM88ksim(iters int) (*program.Program, error) {
	const nGuest = 192 // guest program length in words
	// Guest encoding: [31:28] opcode (0-5), [27:24] rd, [23:20] rs1,
	// [19:16] rs2, [15:0] imm.
	g := newPRNG(0x88100)
	var guest strings.Builder
	for i := 0; i < nGuest; i++ {
		if i%8 == 0 {
			if i > 0 {
				guest.WriteByte('\n')
			}
			guest.WriteString("\t.word ")
		} else {
			guest.WriteString(", ")
		}
		op := g.next() % 6
		rd := g.next() % 16
		rs1 := g.next() % 16
		rs2 := g.next() % 16
		imm := g.next() % 1024
		fmt.Fprintf(&guest, "%d", op<<28|rd<<24|rs1<<20|rs2<<16|imm)
	}
	guest.WriteByte('\n')
	src := fmt.Sprintf(`
	; m88ksim stand-in: guest-CPU interpreter with jump-table dispatch.
main:
	li r20, %d            ; outer iterations
	la r21, guest
	la r22, gregs         ; 16-entry guest register file in memory
	la r24, jumptab
	li r23, 0             ; checksum
outer:
	li r10, 0             ; guest pc (word index)
fetch_guest:
	slli r1, r10, 2
	add r1, r1, r21
	lw r2, 0(r1)          ; guest instruction word
	; decode fields
	srli r3, r2, 28       ; opcode 0..5
	srli r4, r2, 24
	andi r4, r4, 15       ; rd
	srli r5, r2, 20
	andi r5, r5, 15       ; rs1
	srli r6, r2, 16
	andi r6, r6, 15       ; rs2
	andi r7, r2, 0xffff   ; imm
	; operand fetch from the guest register file
	slli r8, r5, 2
	add r8, r8, r22
	lw r8, 0(r8)          ; vs1
	slli r9, r6, 2
	add r9, r9, r22
	lw r9, 0(r9)          ; vs2
	; dispatch through the jump table
	slli r1, r3, 2
	add r1, r1, r24
	lw r1, 0(r1)
	jalr r31, r1
	; store the result (left in r12 by the handler)
	slli r1, r4, 2
	add r1, r1, r22
	sw r12, 0(r1)
	add r23, r23, r12
	addi r10, r10, 1
	slti r1, r10, %d
	bne r1, r0, fetch_guest
	addi r20, r20, -1
	bne r20, r0, outer
%s

	; --- guest instruction handlers (return via jr ra) ---
op_add:
	add r12, r8, r9
	jr ra
op_sub:
	sub r12, r8, r9
	jr ra
op_and:
	and r12, r8, r9
	jr ra
op_or:
	or r12, r8, r9
	jr ra
op_addi:
	add r12, r8, r7
	jr ra
op_shift:
	andi r13, r9, 15
	sll r12, r8, r13
	jr ra
.data
jumptab:
	.word op_add, op_sub, op_and, op_or, op_addi, op_shift
gregs:
	.word 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16
guest:
%s`, iters, nGuest, emitChecksum("r23"), guest.String())
	return asm.Assemble("m88ksim", src)
}
