package asm

import (
	"strings"
	"testing"

	"reese/internal/isa"
	"reese/internal/program"
)

func assemble(t *testing.T, src string) *program.Program {
	t.Helper()
	p, err := Assemble("test", src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return p
}

func decodeAll(t *testing.T, p *program.Program) []isa.Instruction {
	t.Helper()
	out := make([]isa.Instruction, len(p.Text))
	for i, w := range p.Text {
		in, err := isa.Decode(w)
		if err != nil {
			t.Fatalf("decode word %d: %v", i, err)
		}
		out[i] = in
	}
	return out
}

func TestBasicInstructions(t *testing.T) {
	p := assemble(t, `
		add r1, r2, r3
		addi r4, r5, -7
		lw r6, 12(r7)
		sw r6, -4(r7)
		lui r8, 0x1234
		halt
	`)
	ins := decodeAll(t, p)
	want := []isa.Instruction{
		{Op: isa.OpAdd, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: isa.OpAddi, Rd: 4, Rs1: 5, Imm: -7},
		{Op: isa.OpLw, Rd: 6, Rs1: 7, Imm: 12},
		{Op: isa.OpSw, Rs1: 7, Rs2: 6, Imm: -4},
		{Op: isa.OpLui, Rd: 8, Imm: 0x1234},
		{Op: isa.OpHalt},
	}
	if len(ins) != len(want) {
		t.Fatalf("got %d instructions, want %d", len(ins), len(want))
	}
	for i := range want {
		if ins[i] != want[i] {
			t.Errorf("instruction %d: got %v, want %v", i, ins[i], want[i])
		}
	}
}

func TestLabelsAndBranches(t *testing.T) {
	p := assemble(t, `
	main:
		addi r1, r0, 10
	loop:
		addi r1, r1, -1
		bne r1, r0, loop
		beq r0, r0, done
		add r2, r2, r2
	done:
		halt
	`)
	ins := decodeAll(t, p)
	// bne at index 2; target "loop" at index 1 -> offset 1-(2+1) = -2.
	if ins[2].Imm != -2 {
		t.Errorf("backward branch offset = %d, want -2", ins[2].Imm)
	}
	// beq at index 3; target "done" at index 5 -> offset 5-(3+1) = +1.
	if ins[3].Imm != 1 {
		t.Errorf("forward branch offset = %d, want 1", ins[3].Imm)
	}
	if p.Entry != program.TextBase {
		t.Errorf("entry = %#x, want text base (main is first)", p.Entry)
	}
	if got := p.Symbols["done"]; got != program.TextBase+5*4 {
		t.Errorf("symbol done = %#x", got)
	}
}

func TestJumpsAndPseudo(t *testing.T) {
	p := assemble(t, `
		j end
		jal sub
		nop
	sub:
		ret
	end:
		halt
	`)
	ins := decodeAll(t, p)
	if ins[0].Op != isa.OpJ || ins[0].Imm != 3 {
		t.Errorf("j: %v, want offset 3", ins[0])
	}
	if ins[1].Op != isa.OpJal || ins[1].Imm != 1 {
		t.Errorf("jal: %v, want offset 1", ins[1])
	}
	if ins[2] != isa.Nop {
		t.Errorf("nop: %v", ins[2])
	}
	if ins[3].Op != isa.OpJr || ins[3].Rs1 != isa.RegRA {
		t.Errorf("ret: %v", ins[3])
	}
}

func TestLiExpansion(t *testing.T) {
	p := assemble(t, `
		li r1, 100
		li r2, -100
		li r3, 0x12345678
	`)
	ins := decodeAll(t, p)
	if len(ins) != 4 {
		t.Fatalf("got %d instructions, want 4 (small li = 1, big li = 2)", len(ins))
	}
	if ins[0].Op != isa.OpAddi || ins[0].Imm != 100 {
		t.Errorf("small li: %v", ins[0])
	}
	if ins[1].Op != isa.OpAddi || ins[1].Imm != -100 {
		t.Errorf("negative li: %v", ins[1])
	}
	if ins[2].Op != isa.OpLui || ins[2].Imm != 0x1234 {
		t.Errorf("big li hi: %v", ins[2])
	}
	if ins[3].Op != isa.OpOri || ins[3].Imm != 0x5678 {
		t.Errorf("big li lo: %v", ins[3])
	}
}

func TestLaResolvesDataLabel(t *testing.T) {
	p := assemble(t, `
		la r1, table
		lw r2, 0(r1)
		halt
	.data
	table:
		.word 42, 43
	`)
	ins := decodeAll(t, p)
	if ins[0].Op != isa.OpLui || uint32(ins[0].Imm) != program.DataBase>>16 {
		t.Errorf("la hi: %v", ins[0])
	}
	if ins[1].Op != isa.OpOri || uint32(ins[1].Imm) != program.DataBase&0xffff {
		t.Errorf("la lo: %v", ins[1])
	}
	if len(p.Data) != 8 {
		t.Fatalf("data length = %d, want 8", len(p.Data))
	}
	if p.Data[0] != 42 || p.Data[4] != 43 {
		t.Errorf("data contents wrong: % x", p.Data)
	}
}

func TestDataDirectives(t *testing.T) {
	p := assemble(t, `
		halt
	.data
	bytes:
		.byte 1, 2, 3
	.align 4
	words:
		.word 0xdeadbeef
	str:
		.asciiz "hi\n"
	gap:
		.space 5
	end:
		.byte 0xff
	`)
	if got := p.Symbols["bytes"]; got != program.DataBase {
		t.Errorf("bytes at %#x", got)
	}
	if got := p.Symbols["words"]; got != program.DataBase+4 {
		t.Errorf("words at %#x, want aligned to 4", got)
	}
	if got := p.Symbols["str"]; got != program.DataBase+8 {
		t.Errorf("str at %#x", got)
	}
	if got := p.Symbols["gap"]; got != program.DataBase+12 {
		t.Errorf("gap at %#x", got)
	}
	if got := p.Symbols["end"]; got != program.DataBase+17 {
		t.Errorf("end at %#x", got)
	}
	if p.Data[4] != 0xef || p.Data[7] != 0xde {
		t.Errorf("word bytes: % x", p.Data[4:8])
	}
	if string(p.Data[8:11]) != "hi\n" || p.Data[11] != 0 {
		t.Errorf("asciiz bytes: % x", p.Data[8:12])
	}
	if p.Data[17] != 0xff {
		t.Errorf("trailing byte: %x", p.Data[17])
	}
}

func TestWordWithLabelReference(t *testing.T) {
	p := assemble(t, `
		halt
	.data
	ptr:
		.word target
	target:
		.word 7
	`)
	got := uint32(p.Data[0]) | uint32(p.Data[1])<<8 | uint32(p.Data[2])<<16 | uint32(p.Data[3])<<24
	if got != program.DataBase+4 {
		t.Errorf("pointer word = %#x, want %#x", got, program.DataBase+4)
	}
}

func TestRegisterAliases(t *testing.T) {
	p := assemble(t, `
		add r1, sp, zero
		addi sp, sp, -16
		jr ra
	`)
	ins := decodeAll(t, p)
	if ins[0].Rs1 != isa.RegSP || ins[0].Rs2 != isa.RegZero {
		t.Errorf("aliases: %v", ins[0])
	}
	if ins[2].Rs1 != isa.RegRA {
		t.Errorf("ra alias: %v", ins[2])
	}
}

func TestSwappedBranchPseudo(t *testing.T) {
	p := assemble(t, `
	top:
		ble r1, r2, top
		bgt r3, r4, top
		beqz r5, top
		bnez r6, top
	`)
	ins := decodeAll(t, p)
	if ins[0].Op != isa.OpBge || ins[0].Rs1 != 2 || ins[0].Rs2 != 1 {
		t.Errorf("ble: %v", ins[0])
	}
	if ins[1].Op != isa.OpBlt || ins[1].Rs1 != 4 || ins[1].Rs2 != 3 {
		t.Errorf("bgt: %v", ins[1])
	}
	if ins[2].Op != isa.OpBeq || ins[2].Rs1 != 5 || ins[2].Rs2 != isa.RegZero {
		t.Errorf("beqz: %v", ins[2])
	}
	if ins[3].Op != isa.OpBne || ins[3].Rs1 != 6 {
		t.Errorf("bnez: %v", ins[3])
	}
}

func TestMainEntryPoint(t *testing.T) {
	p := assemble(t, `
	helper:
		ret
	main:
		halt
	`)
	if p.Entry != program.TextBase+4 {
		t.Errorf("entry = %#x, want %#x", p.Entry, program.TextBase+4)
	}
}

func TestComments(t *testing.T) {
	p := assemble(t, `
		add r1, r2, r3  ; semicolon comment
		add r1, r2, r3  # hash comment
		add r1, r2, r3  // slash comment
	`)
	if len(p.Text) != 3 {
		t.Errorf("got %d instructions, want 3", len(p.Text))
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"unknown op", "frobnicate r1, r2", "unknown instruction"},
		{"bad register", "add r1, r2, r99", "bad register"},
		{"duplicate label", "x:\nnop\nx:\nnop", "already defined"},
		{"missing operand", "add r1, r2", "missing operand"},
		{"imm range", "addi r1, r0, 40000", "out of 16-bit range"},
		{"bad mem operand", "lw r1, r2", "bad memory operand"},
		{"code in data", ".data\nadd r1, r2, r3", "in .data segment"},
		{"data in text", ".word 5", "in .text segment"},
		{"bad directive", ".bogus 5", "unknown directive"},
		{"undefined branch target", "beq r1, r2, nowhere", "bad target"},
		{"bad string", `.data
.asciiz hi`, "expected quoted string"},
		{"bad align", ".data\n.align 3", "power of two"},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Assemble("t", tt.src)
			if err == nil {
				t.Fatalf("expected error containing %q, got nil", tt.wantSub)
			}
			if !strings.Contains(err.Error(), tt.wantSub) {
				t.Errorf("error %q does not contain %q", err, tt.wantSub)
			}
		})
	}
}

func TestErrorLineNumbers(t *testing.T) {
	_, err := Assemble("t", "nop\nnop\nbogus r1\n")
	if err == nil {
		t.Fatal("want error")
	}
	var ae *Error
	if !asError(err, &ae) {
		t.Fatalf("error type %T", err)
	}
	if ae.Line != 3 {
		t.Errorf("error line = %d, want 3", ae.Line)
	}
}

func asError(err error, target **Error) bool {
	e, ok := err.(*Error)
	if ok {
		*target = e
	}
	return ok
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAssemble should panic on bad source")
		}
	}()
	MustAssemble("bad", "frobnicate")
}

func TestLabelOnSameLineAsInstruction(t *testing.T) {
	p := assemble(t, `
	start: addi r1, r0, 1
		j start
	`)
	ins := decodeAll(t, p)
	if len(ins) != 2 || ins[1].Imm != -2 {
		t.Errorf("label-on-line: %v", ins)
	}
}

func TestFPInstructions(t *testing.T) {
	p := assemble(t, `
		fadd f1, f2, f3
		fneg f4, f5
		feq r6, f7, f8
		fcvtsw f9, r10
		fcvtws r11, f12
		lwf f1, 8(r2)
		swf f3, -4(r4)
		mtf f5, r6
		mff r7, f8
	`)
	ins := decodeAll(t, p)
	want := []isa.Instruction{
		{Op: isa.OpFadd, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: isa.OpFneg, Rd: 4, Rs1: 5},
		{Op: isa.OpFeq, Rd: 6, Rs1: 7, Rs2: 8},
		{Op: isa.OpFcvtSW, Rd: 9, Rs1: 10},
		{Op: isa.OpFcvtWS, Rd: 11, Rs1: 12},
		{Op: isa.OpLwf, Rd: 1, Rs1: 2, Imm: 8},
		{Op: isa.OpSwf, Rs2: 3, Rs1: 4, Imm: -4},
		{Op: isa.OpMtf, Rd: 5, Rs1: 6},
		{Op: isa.OpMff, Rd: 7, Rs1: 8},
	}
	if len(ins) != len(want) {
		t.Fatalf("got %d instructions, want %d", len(ins), len(want))
	}
	for i := range want {
		if ins[i] != want[i] {
			t.Errorf("instruction %d: got %v, want %v", i, ins[i], want[i])
		}
	}
}

func TestFPRegisterFileErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"int reg where fp wanted", "fadd r1, f2, f3"},
		{"fp reg where int wanted", "add f1, r2, r3"},
		{"fp reg in feq dest", "feq f1, f2, f3"},
		{"int source on fcvtws", "fcvtws r1, r2"},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Assemble("t", tt.src); err == nil {
				t.Errorf("%q should fail to assemble", tt.src)
			}
		})
	}
}

func TestEquConstants(t *testing.T) {
	p := assemble(t, `
	.equ N, 10
	.equ BIG, 0x12340000
	.equ OFF, 8
	.equ ALIAS, N
		li r1, N
		li r2, BIG
		lw r3, OFF(r4)
		addi r5, r0, ALIAS
		halt
	.data
	tbl:
		.word N, BIG
		.space N
	`)
	ins := decodeAll(t, p)
	if ins[0].Op != isa.OpAddi || ins[0].Imm != 10 {
		t.Errorf("li with .equ: %v", ins[0])
	}
	if ins[1].Op != isa.OpLui || ins[1].Imm != 0x1234 {
		t.Errorf("big li with .equ: %v", ins[1])
	}
	if ins[3].Op != isa.OpLw || ins[3].Imm != 8 {
		t.Errorf("memory offset with .equ: %v", ins[3])
	}
	if ins[4].Imm != 10 {
		t.Errorf("chained .equ: %v", ins[4])
	}
	if p.Data[0] != 10 {
		t.Errorf(".word with .equ: % x", p.Data[:4])
	}
	if len(p.Data) != 8+10 {
		t.Errorf(".space with .equ: %d bytes", len(p.Data))
	}
}

func TestEquErrors(t *testing.T) {
	for _, src := range []string{
		".equ", ".equ X", ".equ X, Y", ".equ X, 1\n.equ X, 2", ".equ bad name, 1",
	} {
		if _, err := Assemble("t", src); err == nil {
			t.Errorf("%q should fail", src)
		}
	}
}
