// Command reese-load drives a reese-serve topology — worker replicas
// and, optionally, a cluster coordinator — with N concurrent clients
// at a stepped target RPS, and reports the latency distribution and
// saturation curve each step produces. Results append to the same
// tracking file cmd/benchjson maintains, so serving-layer capacity
// accumulates alongside simulator throughput.
//
// Usage:
//
//	reese-load -self 2                         # in-process topology, default steps
//	reese-load -target http://a:8321,http://b:8321 -rps 5,10,20 -step 10s
//	reese-load -self 2 -kind cluster -rps 1,2  # drive the coordinator endpoint
//	reese-load -self 2 -out BENCH_pipeline.json -label "cluster PR"
//
// Each request is unique (the seed varies per request), so latencies
// measure real simulation work, not result-cache hits. A 503 counts as
// shed load — the saturation signal — not as an error.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"reese/internal/chaos"
	"reese/internal/cluster"
	"reese/internal/server"
)

func main() {
	os.Exit(run())
}

// stepResult is one RPS step's measurements.
type stepResult struct {
	TargetRPS   float64 `json:"target_rps"`
	AchievedRPS float64 `json:"achieved_rps"`
	Sent        int     `json:"sent"`
	OK          int     `json:"ok"`
	Shed        int     `json:"shed_503"`
	Errors      int     `json:"errors"`
	ClientFull  int     `json:"client_limited"`
	P50MS       float64 `json:"p50_ms"`
	P99MS       float64 `json:"p99_ms"`
	MaxMS       float64 `json:"max_ms"`
}

func run() int {
	var (
		targets    = flag.String("target", "", "comma-separated base URLs to drive (empty: requires -self)")
		selfN      = flag.Int("self", 0, "start this many in-process worker replicas (plus a coordinator for -kind cluster)")
		kind       = flag.String("kind", "faults", "request kind per client op: run | faults | cluster")
		rpsList    = flag.String("rps", "2,5,10,20", "comma-separated target RPS steps")
		stepDur    = flag.Duration("step", 5*time.Second, "duration of each RPS step")
		clients    = flag.Int("clients", 16, "max in-flight requests (the concurrent client pool)")
		workload   = flag.String("workload", "li", "workload each request simulates")
		insts      = flag.Uint64("insts", 5_000, "instruction budget per -kind run request")
		injections = flag.Int("n", 20, "injections per -kind faults/cluster request")
		out        = flag.String("out", "", "append results to this benchjson tracking file (empty: stdout only)")
		label      = flag.String("label", "", "label stored with each tracked entry")
		chaosSeed  = flag.Int64("chaos-seed", 0, "seed the chaos transport on the load clients (0 disables); with -chaos-* probabilities it injects seeded network faults")
		chaosDrop  = flag.Float64("chaos-drop", 0.05, "per-request drop probability under -chaos-seed")
		chaos5xx   = flag.Float64("chaos-5xx", 0.05, "per-request synthesized-503 probability under -chaos-seed")
		chaosFlip  = flag.Float64("chaos-corrupt", 0.02, "per-response bit-flip probability under -chaos-seed")
	)
	flag.Parse()

	urls := splitList(*targets)
	var coordinatorURL string
	if *selfN > 0 {
		workers, coord, cleanup, err := selfTopology(*selfN, *kind == "cluster")
		if err != nil {
			fmt.Fprintln(os.Stderr, "reese-load:", err)
			return 1
		}
		defer cleanup()
		urls = append(urls, workers...)
		coordinatorURL = coord
	}
	if *kind == "cluster" {
		if coordinatorURL == "" && len(urls) > 0 {
			// Driving an external coordinator: the target IS the coordinator.
			coordinatorURL = urls[0]
		}
		if coordinatorURL == "" {
			fmt.Fprintln(os.Stderr, "reese-load: -kind cluster needs -self or a coordinator -target")
			return 1
		}
	} else if len(urls) == 0 {
		fmt.Fprintln(os.Stderr, "reese-load: nothing to drive; set -target or -self")
		return 1
	}

	steps, err := parseRPS(*rpsList)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reese-load:", err)
		return 1
	}

	client := &http.Client{Timeout: 120 * time.Second}
	var chaosTr *chaos.Transport
	if *chaosSeed != 0 {
		// Chaos mode: the load clients see seeded drops, 503 bursts, and
		// corrupted bodies, proving the service degrades instead of lying.
		chaosTr = chaos.NewTransport(chaos.TransportConfig{
			Seed:        *chaosSeed,
			DropProb:    *chaosDrop,
			Err5xxProb:  *chaos5xx,
			CorruptProb: *chaosFlip,
		})
		client.Transport = chaosTr
		fmt.Printf("chaos transport on: seed %d, drop %.2f, 5xx %.2f, corrupt %.2f\n",
			*chaosSeed, *chaosDrop, *chaos5xx, *chaosFlip)
	}
	gen := &generator{
		urls:        urls,
		coordinator: coordinatorURL,
		kind:        *kind,
		workload:    *workload,
		insts:       *insts,
		injections:  *injections,
		clients:     *clients,
		client:      client,
	}
	var results []stepResult
	for _, rps := range steps {
		res := gen.step(rps, *stepDur)
		results = append(results, res)
		fmt.Printf("rps=%g: sent %d, ok %d, shed %d, errors %d, client-limited %d | achieved %.1f rps, p50 %.1fms p99 %.1fms max %.1fms\n",
			res.TargetRPS, res.Sent, res.OK, res.Shed, res.Errors, res.ClientFull,
			res.AchievedRPS, res.P50MS, res.P99MS, res.MaxMS)
	}
	if chaosTr != nil {
		fmt.Printf("chaos injected %d faults: %d drops, %d 503s, %d corrupted bodies\n",
			chaosTr.Injected(), chaosTr.Drops(), chaosTr.Err5xx(), chaosTr.Corrupted())
	}

	if *out != "" {
		if err := appendEntries(*out, *label, *kind, results); err != nil {
			fmt.Fprintln(os.Stderr, "reese-load:", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "reese-load: appended %d entries to %s\n", len(results), *out)
	}
	for _, r := range results {
		if r.OK == 0 {
			fmt.Fprintln(os.Stderr, "reese-load: a step completed zero requests")
			return 1
		}
	}
	return 0
}

// generator issues paced requests against the topology.
type generator struct {
	urls        []string
	coordinator string
	kind        string
	workload    string
	insts       uint64
	injections  int
	clients     int
	client      *http.Client
	seq         atomic.Uint64
}

// step drives one target RPS for the given duration and collects the
// latency distribution. Pacing is a ticker at the request period; the
// client pool bounds concurrency, and a tick with every client busy is
// recorded as client-limited rather than silently skipped.
func (g *generator) step(rps float64, d time.Duration) stepResult {
	res := stepResult{TargetRPS: rps}
	period := time.Duration(float64(time.Second) / rps)
	slots := make(chan struct{}, g.clients)
	for i := 0; i < g.clients; i++ {
		slots <- struct{}{}
	}
	var (
		mu        sync.Mutex
		latencies []float64
		wg        sync.WaitGroup
	)
	ticker := time.NewTicker(period)
	defer ticker.Stop()
	deadline := time.After(d)
	start := time.Now()
loop:
	for {
		select {
		case <-deadline:
			break loop
		case <-ticker.C:
			select {
			case <-slots:
			default:
				res.ClientFull++
				continue
			}
			res.Sent++
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { slots <- struct{}{} }()
				t0 := time.Now()
				outcome := g.one()
				ms := float64(time.Since(t0).Microseconds()) / 1e3
				mu.Lock()
				defer mu.Unlock()
				switch outcome {
				case "ok":
					latencies = append(latencies, ms)
				case "shed":
					res.Shed++
				default:
					res.Errors++
				}
			}()
		}
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	res.OK = len(latencies)
	if elapsed > 0 {
		res.AchievedRPS = float64(res.OK) / elapsed
	}
	sort.Float64s(latencies)
	res.P50MS = percentile(latencies, 50)
	res.P99MS = percentile(latencies, 99)
	if n := len(latencies); n > 0 {
		res.MaxMS = latencies[n-1]
	}
	return res
}

// one issues a single request and classifies it: ok, shed (503), or
// error. Every request carries a fresh seed (or instruction budget) so
// the server's result cache cannot answer it — the point is to load
// the simulator, not the cache.
func (g *generator) one() string {
	seq := g.seq.Add(1)
	switch g.kind {
	case "run":
		body := fmt.Sprintf(`{"workload":%q,"insts":%d}`, g.workload, g.insts+seq%128)
		return g.post(g.pick(seq)+"/v1/run?wait=60s", body)
	case "cluster":
		body := fmt.Sprintf(`{"workload":%q,"injections":%d,"seed":%d}`, g.workload, g.injections, seq)
		return g.stream(g.coordinator+"/v1/cluster/faults", body)
	default: // faults
		body := fmt.Sprintf(`{"workload":%q,"injections":%d,"seed":%d}`, g.workload, g.injections, seq)
		return g.post(g.pick(seq)+"/v1/faults?wait=60s", body)
	}
}

func (g *generator) pick(seq uint64) string {
	return g.urls[int(seq)%len(g.urls)]
}

// post submits and waits for a terminal job state.
func (g *generator) post(url, body string) string {
	resp, err := g.client.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return "error"
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 64<<20))
	switch resp.StatusCode {
	case http.StatusOK:
		return "ok"
	case http.StatusServiceUnavailable:
		return "shed"
	case http.StatusAccepted:
		// The wait expired with the job still running — the queue is
		// saturated beyond the wait budget; count it as shed, not error.
		return "shed"
	default:
		return "error"
	}
}

// stream drives the coordinator's streaming endpoint to its final
// frame.
func (g *generator) stream(url, body string) string {
	resp, err := g.client.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return "error"
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil || resp.StatusCode != http.StatusOK {
		return "error"
	}
	lines := bytes.Split(bytes.TrimSpace(raw), []byte("\n"))
	var final struct {
		Type string `json:"type"`
	}
	if len(lines) == 0 || json.Unmarshal(lines[len(lines)-1], &final) != nil || final.Type != "result" {
		return "error"
	}
	return "ok"
}

// selfTopology starts in-process worker replicas (and a coordinator
// when asked), so the generator can run hermetically in CI.
func selfTopology(n int, withCoordinator bool) (workers []string, coordinator string, cleanup func(), err error) {
	log := slog.New(slog.NewTextHandler(io.Discard, nil))
	var servers []*server.Server
	var httpServers []*httptest.Server
	for i := 0; i < n; i++ {
		s, serr := server.New(server.Config{Workers: 1, Logger: log})
		if serr != nil {
			err = serr
			return
		}
		ts := httptest.NewServer(s.Handler())
		servers = append(servers, s)
		httpServers = append(httpServers, ts)
		workers = append(workers, ts.URL)
	}
	if withCoordinator {
		coord := cluster.Handler(cluster.Config{Workers: workers, Logger: log})
		ts := httptest.NewServer(coord)
		httpServers = append(httpServers, ts)
		coordinator = ts.URL
	}
	cleanup = func() {
		for _, ts := range httpServers {
			ts.Close()
		}
		for _, s := range servers {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			_ = s.Shutdown(ctx)
			cancel()
		}
	}
	return
}

func splitList(s string) []string {
	var out []string
	for _, v := range strings.Split(s, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, strings.TrimRight(v, "/"))
		}
	}
	return out
}

func parseRPS(s string) ([]float64, error) {
	var out []float64
	for _, v := range splitList(s) {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f <= 0 {
			return nil, fmt.Errorf("bad rps step %q", v)
		}
		out = append(out, f)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no rps steps in %q", s)
	}
	return out, nil
}

// percentile returns the p-th percentile of sorted xs (nearest-rank).
func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	i := int(p/100*float64(len(xs))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(xs) {
		i = len(xs) - 1
	}
	return xs[i]
}

// benchEntry mirrors cmd/benchjson's tracked-entry shape.
type benchEntry struct {
	Label   string             `json:"label,omitempty"`
	Name    string             `json:"name"`
	Iters   int64              `json:"iters"`
	Metrics map[string]float64 `json:"metrics"`
}

type benchFile struct {
	Entries []benchEntry `json:"entries"`
}

// appendEntries adds one tracked entry per RPS step to the benchjson
// file, preserving everything already there.
func appendEntries(path, label, kind string, results []stepResult) error {
	var f benchFile
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &f); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	for _, r := range results {
		f.Entries = append(f.Entries, benchEntry{
			Label: label,
			Name:  fmt.Sprintf("ReeseLoad/%s/rps=%g", kind, r.TargetRPS),
			Iters: int64(r.Sent),
			Metrics: map[string]float64{
				"target_rps":   r.TargetRPS,
				"achieved_rps": r.AchievedRPS,
				"p50_ms":       r.P50MS,
				"p99_ms":       r.P99MS,
				"max_ms":       r.MaxMS,
				"shed_503":     float64(r.Shed),
				"errors":       float64(r.Errors),
			},
		})
	}
	data, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(path, data, 0o644)
}
