package workload

import (
	"fmt"

	"reese/internal/asm"
	"reese/internal/program"
)

// buildCompress models compress95 (LZW compression), one of the two
// SPEC95int programs the paper's evaluation omits. The kernel hashes
// (prefix-code, next-byte) pairs into a chained dictionary, emits codes,
// and packs them into an output bit stream — hash probing plus byte
// loads and shift-heavy bit packing.
func buildCompress(iters int) (*program.Program, error) {
	const (
		textLen  = 768
		hashSize = 512 // power of two
	)
	g := newPRNG(0xC0EC)
	src := fmt.Sprintf(`
	; compress95 stand-in: LZW dictionary compression.
main:
	li r20, %d            ; outer iterations
	la r21, text
	la r22, hashtab       ; hashSize entries: packed (prefix<<9|ch), 0 = empty
	la r24, codes         ; emitted code stream (bit-packed words)
	li r23, 0             ; checksum
outer:
	; reset dictionary state for this pass
	li r10, 0             ; position in text
	li r11, 256           ; next free code
	lbu r12, 0(r21)       ; current prefix = first byte
	addi r10, r10, 1
	li r13, 0             ; bit buffer
	li r14, 0             ; bits in buffer
	li r16, 0             ; output word index
scan:
	add r1, r10, r21
	lbu r2, 0(r1)         ; next byte
	; key = prefix<<9 | ch (prefix codes fit in 21 bits here)
	slli r3, r12, 9
	or r3, r3, r2
	; hash = (key*2654435761) >> 23, masked
	li r4, 0x9e3779b1
	mul r5, r3, r4
	srli r5, r5, 23
	andi r5, r5, %d
probe:
	slli r6, r5, 3        ; 8-byte entries: key, code
	add r6, r6, r22
	lw r7, 0(r6)
	beq r7, r0, miss      ; empty slot: new dictionary entry
	beq r7, r3, hit       ; found (prefix,ch)
	addi r5, r5, 1
	andi r5, r5, %d
	j probe
hit:
	; extend the match: prefix = code of the pair
	lw r12, 4(r6)
	j advance
miss:
	; emit code for prefix, add (prefix,ch) to dictionary
	sw r3, 0(r6)
	sw r11, 4(r6)
	; bit-pack a 12-bit code into the output stream
	sll r7, r12, r14
	or r13, r13, r7
	addi r14, r14, 12
	slti r8, r14, 32
	bne r8, r0, no_flush
	; flush 32 bits
	slli r8, r16, 2
	add r8, r8, r24
	sw r13, 0(r8)
	xor r23, r23, r13
	addi r14, r14, -32
	li r9, 32
	sub r9, r9, r14
	srl r13, r12, r9      ; leftover high bits (approximate repack)
no_flush:
	addi r11, r11, 1
	add r12, r2, r0       ; prefix = ch
	; wrap the output index so the stream buffer never overflows
	addi r16, r16, 1
	andi r16, r16, 127
advance:
	addi r10, r10, 1
	slti r1, r10, %d
	bne r1, r0, scan
	; clear the dictionary between passes (so the work repeats)
	li r10, 0
clear:
	slli r1, r10, 3
	add r1, r1, r22
	sw r0, 0(r1)
	addi r10, r10, 1
	slti r1, r10, %d
	bne r1, r0, clear
	addi r20, r20, -1
	bne r20, r0, outer
%s
.data
text:
%s
.align 8
hashtab:
	.space %d
codes:
	.space 512
`, iters, hashSize-1, hashSize-1, textLen, hashSize,
		emitChecksum("r23"), byteList(g, textLen, 97, 105), hashSize*8)
	return asm.Assemble("compress", src)
}
