; demo.s — a small SS32 program for the reese-asm tool.
; Computes the sum of the first 16 Fibonacci numbers into r5,
; stores the sequence to memory, and emits the low byte.
main:
	li r1, 0            ; fib(i-2)
	li r2, 1            ; fib(i-1)
	li r3, 16           ; count
	li r5, 0            ; sum
	la r6, fibs
loop:
	add r4, r1, r2      ; fib(i)
	sw r4, 0(r6)
	add r5, r5, r4
	add r1, r2, r0
	add r2, r4, r0
	addi r6, r6, 4
	addi r3, r3, -1
	bne r3, r0, loop
	out r5
	halt
.data
fibs:
	.space 64
