package mem

import "fmt"

// TLBConfig describes a translation lookaside buffer.
type TLBConfig struct {
	Name string
	// Entries is the number of TLB entries. Assoc is the associativity
	// (Entries/Assoc sets). PageBytes is the page size.
	Entries   uint32
	Assoc     uint32
	PageBytes uint32
	// MissLatency is the page-walk cost in cycles on a TLB miss
	// (SimpleScalar's default is 30).
	MissLatency int
}

// Validate checks the configuration.
func (c TLBConfig) Validate() error {
	if c.PageBytes == 0 || c.PageBytes&(c.PageBytes-1) != 0 {
		return fmt.Errorf("tlb %s: page size %d not a power of two", c.Name, c.PageBytes)
	}
	if c.Assoc == 0 || c.Entries == 0 || c.Entries%c.Assoc != 0 {
		return fmt.Errorf("tlb %s: bad entries/assoc %d/%d", c.Name, c.Entries, c.Assoc)
	}
	sets := c.Entries / c.Assoc
	if sets&(sets-1) != 0 {
		return fmt.Errorf("tlb %s: set count %d not a power of two", c.Name, sets)
	}
	return nil
}

// TLB models translation timing: a hit is free (folded into the cache
// access), a miss adds MissLatency cycles.
type TLB struct {
	cfg   TLBConfig
	sets  uint32
	lines []line
	clock uint64
	stats CacheStats
}

// NewTLB builds a TLB.
func NewTLB(cfg TLBConfig) (*TLB, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sets := cfg.Entries / cfg.Assoc
	return &TLB{cfg: cfg, sets: sets, lines: make([]line, cfg.Entries)}, nil
}

// Stats returns the TLB's counters.
func (t *TLB) Stats() CacheStats { return t.stats }

// Translate looks up the page containing addr, returning the added
// latency (0 on a hit, MissLatency on a miss).
func (t *TLB) Translate(addr uint32) int {
	t.stats.Accesses++
	t.clock++
	page := addr / t.cfg.PageBytes
	set := page & (t.sets - 1)
	tag := page / t.sets
	base := set * t.cfg.Assoc
	for i := uint32(0); i < t.cfg.Assoc; i++ {
		ln := &t.lines[base+i]
		if ln.valid && ln.tag == tag {
			t.stats.Hits++
			ln.lru = t.clock
			return 0
		}
	}
	t.stats.Misses++
	victim := &t.lines[base]
	for i := uint32(1); i < t.cfg.Assoc && victim.valid; i++ {
		ln := &t.lines[base+i]
		if !ln.valid || ln.lru < victim.lru {
			victim = ln
		}
	}
	*victim = line{tag: tag, valid: true, lru: t.clock}
	return t.cfg.MissLatency
}
