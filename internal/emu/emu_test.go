package emu

import (
	"errors"
	"testing"

	"reese/internal/asm"
	"reese/internal/isa"
	"reese/internal/program"
)

func run(t *testing.T, src string) *Machine {
	t.Helper()
	p, err := asm.Assemble("test", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m, err := New(p)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if _, err := m.Run(1_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !m.Halted() {
		t.Fatal("program did not halt within 1M instructions")
	}
	return m
}

func TestArithmeticProgram(t *testing.T) {
	m := run(t, `
		addi r1, r0, 6
		addi r2, r0, 7
		mul r3, r1, r2
		halt
	`)
	if got := m.Reg(3); got != 42 {
		t.Errorf("r3 = %d, want 42", got)
	}
	if m.InstCount() != 4 {
		t.Errorf("icount = %d, want 4", m.InstCount())
	}
}

func TestLoopSum(t *testing.T) {
	// Sum 1..10 = 55.
	m := run(t, `
		addi r1, r0, 10   ; i
		addi r2, r0, 0    ; sum
	loop:
		add r2, r2, r1
		addi r1, r1, -1
		bne r1, r0, loop
		halt
	`)
	if got := m.Reg(2); got != 55 {
		t.Errorf("sum = %d, want 55", got)
	}
}

func TestMemoryOps(t *testing.T) {
	m := run(t, `
		la r1, buf
		li r2, 0x11223344
		sw r2, 0(r1)
		lw r3, 0(r1)
		lh r4, 0(r1)
		lhu r5, 2(r1)
		lb r6, 3(r1)
		lbu r7, 0(r1)
		sb r2, 8(r1)
		lbu r8, 8(r1)
		sh r2, 12(r1)
		lhu r9, 12(r1)
		halt
	.data
	buf:
		.space 16
	`)
	checks := map[isa.Reg]uint32{
		3: 0x11223344,
		4: 0x3344,
		5: 0x1122,
		6: 0x11,
		7: 0x44,
		8: 0x44,
		9: 0x3344,
	}
	for r, want := range checks {
		if got := m.Reg(r); got != want {
			t.Errorf("r%d = %#x, want %#x", r, got, want)
		}
	}
}

func TestSignExtendingLoads(t *testing.T) {
	m := run(t, `
		la r1, buf
		lb r2, 0(r1)
		lh r3, 0(r1)
		halt
	.data
	buf:
		.word 0xffffffff
	`)
	if m.Reg(2) != 0xffffffff || m.Reg(3) != 0xffffffff {
		t.Errorf("sign extension: r2=%#x r3=%#x", m.Reg(2), m.Reg(3))
	}
}

func TestCallReturn(t *testing.T) {
	m := run(t, `
	main:
		addi r4, r0, 5
		jal double
		add r6, r5, r0
		jal double2
		halt
	double:
		add r5, r4, r4
		jr ra
	double2:
		add r6, r6, r6
		jr ra
	`)
	if got := m.Reg(5); got != 10 {
		t.Errorf("r5 = %d, want 10", got)
	}
	if got := m.Reg(6); got != 20 {
		t.Errorf("r6 = %d, want 20", got)
	}
}

func TestIndirectJump(t *testing.T) {
	m := run(t, `
		la r1, target
		jalr r2, r1
		halt
	target:
		addi r3, r0, 99
		jr r2
	`)
	if got := m.Reg(3); got != 99 {
		t.Errorf("r3 = %d, want 99", got)
	}
}

func TestR0AlwaysZero(t *testing.T) {
	m := run(t, `
		addi r0, r0, 55
		add r1, r0, r0
		halt
	`)
	if m.Reg(0) != 0 || m.Reg(1) != 0 {
		t.Errorf("r0 = %d, r1 = %d; r0 must stay 0", m.Reg(0), m.Reg(1))
	}
}

func TestOutput(t *testing.T) {
	m := run(t, `
		addi r1, r0, 72   ; 'H'
		out r1
		addi r1, r0, 105  ; 'i'
		out r1
		halt
	`)
	if string(m.Output()) != "Hi" {
		t.Errorf("output = %q, want Hi", m.Output())
	}
}

func TestStackConvention(t *testing.T) {
	m := run(t, `
		addi sp, sp, -8
		li r1, 123
		sw r1, 0(sp)
		sw ra, 4(sp)
		lw r2, 0(sp)
		addi sp, sp, 8
		halt
	`)
	if got := m.Reg(2); got != 123 {
		t.Errorf("stack round trip: r2 = %d", got)
	}
	if got := m.Reg(isa.RegSP); got != program.StackTop {
		t.Errorf("sp = %#x, want %#x", got, program.StackTop)
	}
}

func TestStepAfterHalt(t *testing.T) {
	m := run(t, "halt")
	if _, err := m.Step(); !errors.Is(err, ErrHalted) {
		t.Errorf("Step after halt: err = %v, want ErrHalted", err)
	}
}

func TestRunLimit(t *testing.T) {
	p := asm.MustAssemble("spin", "loop: j loop")
	m, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	n, err := m.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Errorf("executed %d, want 100", n)
	}
	if m.Halted() {
		t.Error("spin loop should not halt")
	}
}

func TestTraceFields(t *testing.T) {
	p := asm.MustAssemble("t", `
		addi r1, r0, 3
		addi r2, r0, 3
		beq r1, r2, skip
		nop
	skip:
		la r4, w
		lw r3, 0(r4)
		sw r1, 4(r4)
		halt
	.data
	w:
		.word 77
		.word 0
	`)
	m, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	var traces []Trace
	for !m.Halted() {
		tr, err := m.Step()
		if err != nil {
			t.Fatal(err)
		}
		traces = append(traces, tr)
	}
	// Branch trace.
	br := traces[2]
	if !br.Taken {
		t.Error("beq equal should be taken")
	}
	if br.NextPC != br.Inst.BranchTarget(br.PC) {
		t.Errorf("branch NextPC = %#x", br.NextPC)
	}
	// Load trace.
	ld := traces[5]
	if !ld.Inst.Op.IsLoad() || ld.Addr != program.DataBase || ld.Result != 77 || !ld.HasResult {
		t.Errorf("load trace: %+v", ld)
	}
	// Store trace.
	st := traces[6]
	if !st.Inst.Op.IsStore() || st.Addr != program.DataBase+4 || st.StoreValue != 3 {
		t.Errorf("store trace: %+v", st)
	}
	// Halt trace.
	if !traces[len(traces)-1].Halt {
		t.Error("last trace should be halt")
	}
}

func TestFetchOutsideTextFails(t *testing.T) {
	// Program without halt falls off the end of text.
	p := asm.MustAssemble("t", "nop")
	m, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(0); err == nil {
		t.Error("running off end of text should fail")
	}
}

func TestUnalignedAccessFails(t *testing.T) {
	p := asm.MustAssemble("t", `
		la r1, buf
		lw r2, 1(r1)
		halt
	.data
	buf:
		.space 8
	`)
	m, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(0); err == nil {
		t.Error("unaligned lw should fail")
	}
}

func TestMemoryCloneAndEqual(t *testing.T) {
	p := asm.MustAssemble("t", "halt")
	m1, err := program.LoadMemory(p)
	if err != nil {
		t.Fatal(err)
	}
	m2 := m1.Clone()
	if !m1.Equal(m2) {
		t.Fatal("clone should be equal")
	}
	if err := m2.WriteWord(program.DataBase, 5); err != nil {
		t.Fatal(err)
	}
	if m1.Equal(m2) {
		t.Fatal("write to clone must not affect original")
	}
}

// Recursive fibonacci via the stack exercises call/return and memory.
func TestRecursiveFib(t *testing.T) {
	m := run(t, `
	main:
		addi r4, r0, 10
		jal fib
		halt

	; fib(n): n in r4, result in r5, clobbers r6
	fib:
		slti r6, r4, 2
		beq r6, r0, recurse
		add r5, r4, r0
		jr ra
	recurse:
		addi sp, sp, -12
		sw ra, 0(sp)
		sw r4, 4(sp)
		addi r4, r4, -1
		jal fib
		sw r5, 8(sp)
		lw r4, 4(sp)
		addi r4, r4, -2
		jal fib
		lw r6, 8(sp)
		add r5, r5, r6
		lw ra, 0(sp)
		addi sp, sp, 12
		jr ra
	`)
	if got := m.Reg(5); got != 55 {
		t.Errorf("fib(10) = %d, want 55", got)
	}
}
