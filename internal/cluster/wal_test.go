package cluster

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"reese/internal/config"
	"reese/internal/harness"
	"reese/internal/server"
)

func testWALLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func testPayload(offset, count, plan int) *server.ShardPayload {
	return &server.ShardPayload{
		Report: harness.CampaignReport{
			Shard:    &harness.ShardRange{Offset: offset, Count: count, Plan: plan},
			Injected: uint64(count),
		},
	}
}

// A WAL written by one coordinator must replay in a second one: spec,
// windows, and completed payloads all intact and hash-verified.
func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	machine := config.Starting().WithReese()
	req := Campaign{Workload: "li", Machine: &machine, Injections: 20, Seed: 3}
	specs := shardSpecs(req, 2, 5)

	w, st, err := openCampaignWAL(dir, "round-trip", testWALLogger())
	if err != nil {
		t.Fatal(err)
	}
	if st != nil {
		t.Fatal("fresh WAL replayed prior state")
	}
	if err := w.begin(req, specs); err != nil {
		t.Fatal(err)
	}
	if err := w.appendAssign(0, "http://worker-a"); err != nil {
		t.Fatal(err)
	}
	for _, idx := range []int{0, 2} {
		if err := w.appendComplete(idx, testPayload(specs[idx].ShardOffset, specs[idx].ShardCount, 20)); err != nil {
			t.Fatal(err)
		}
	}
	w.close()

	w2, st2, err := openCampaignWAL(dir, "round-trip", testWALLogger())
	if err != nil {
		t.Fatal(err)
	}
	defer w2.close()
	if st2 == nil {
		t.Fatal("written WAL replayed as fresh")
	}
	spec, _ := json.Marshal(canonicalCampaign(req))
	if string(st2.spec) != string(spec) {
		t.Errorf("replayed spec differs:\n got %s\nwant %s", st2.spec, spec)
	}
	if len(st2.windows) != len(specs) {
		t.Fatalf("replayed %d windows, want %d", len(st2.windows), len(specs))
	}
	for i, sp := range specs {
		if st2.windows[i] != [2]int{sp.ShardOffset, sp.ShardCount} {
			t.Errorf("window %d replayed as %v, want [%d %d]", i, st2.windows[i], sp.ShardOffset, sp.ShardCount)
		}
	}
	if len(st2.completed) != 2 {
		t.Fatalf("replayed %d completed shards, want 2", len(st2.completed))
	}
	for _, idx := range []int{0, 2} {
		p, err := w2.loadPayload(st2.completed[idx])
		if err != nil {
			t.Fatalf("load shard %d: %v", idx, err)
		}
		if p.Report.Shard.Offset != specs[idx].ShardOffset || p.Report.Shard.Count != specs[idx].ShardCount {
			t.Errorf("shard %d payload window %+v", idx, p.Report.Shard)
		}
	}
}

// A crash mid-append leaves a torn final line; replay must stop at the
// last good record instead of erroring or inventing state.
func TestWALTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	machine := config.Starting().WithReese()
	req := Campaign{Workload: "li", Machine: &machine, Injections: 10, Seed: 1}
	specs := shardSpecs(req, 1, 5)

	w, _, err := openCampaignWAL(dir, "torn", testWALLogger())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.begin(req, specs); err != nil {
		t.Fatal(err)
	}
	if err := w.appendComplete(0, testPayload(0, 5, 10)); err != nil {
		t.Fatal(err)
	}
	w.close()

	path := filepath.Join(dir, "torn.wal")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"t":"complete","shard":1,"dig`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st, err := replayWAL(path)
	if err != nil {
		t.Fatalf("torn tail made replay error: %v", err)
	}
	if st == nil {
		t.Fatal("torn tail lost the whole journal")
	}
	if len(st.completed) != 1 {
		t.Fatalf("torn tail replayed %d completed shards, want 1 (the durable one)", len(st.completed))
	}
	if _, ok := st.completed[0]; !ok {
		t.Error("the durable completion (shard 0) did not survive the torn tail")
	}
}

// A payload file damaged on disk must fail its hash check and demote
// the shard to not-done — the WAL can lose work, never corrupt it.
func TestWALCorruptPayloadRejected(t *testing.T) {
	dir := t.TempDir()
	machine := config.Starting().WithReese()
	req := Campaign{Workload: "li", Machine: &machine, Injections: 10, Seed: 1}
	specs := shardSpecs(req, 1, 5)

	w, _, err := openCampaignWAL(dir, "corrupt", testWALLogger())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.begin(req, specs); err != nil {
		t.Fatal(err)
	}
	if err := w.appendComplete(0, testPayload(0, 5, 10)); err != nil {
		t.Fatal(err)
	}

	st, err := replayWAL(filepath.Join(dir, "corrupt.wal"))
	if err != nil || st == nil {
		t.Fatalf("replay: %v", err)
	}
	digest := st.completed[0]
	file := filepath.Join(dir, "corrupt.shards", digest+".json")
	raw, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(file, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	// The file no longer hashes to its name — loadPayload must refuse it.
	sum := sha256.Sum256(raw)
	if hex.EncodeToString(sum[:]) == digest {
		t.Fatal("bit flip did not change the hash; test is broken")
	}
	if _, err := w.loadPayload(digest); err == nil {
		t.Fatal("corrupt payload file loaded without error")
	}
	w.close()
}

// A resume token that names a different campaign must hard-error, not
// silently merge two campaigns' shards.
func TestWALSpecMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	machine := config.Starting().WithReese()
	reqA := Campaign{Workload: "li", Machine: &machine, Injections: 20, Seed: 3, ResumeToken: "shared-token"}
	specs := shardSpecs(reqA, 1, 5)

	w, _, err := openCampaignWAL(dir, campaignToken(reqA), testWALLogger())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.begin(reqA, specs); err != nil {
		t.Fatal(err)
	}
	w.close()

	reqB := reqA
	reqB.Seed = 4 // different campaign, same token
	cfg := testClusterConfig([]string{"http://127.0.0.1:0"})
	cfg.WALDir = dir
	_, err = Run(context.Background(), cfg, reqB)
	if err == nil || !strings.Contains(err.Error(), "different campaign") {
		t.Fatalf("spec mismatch under a reused token returned %v, want a spec-mismatch error", err)
	}
}

// ResumeCampaigns must find an interrupted campaign's journal, finish
// the campaign, and write its merged report next to the journal — the
// `reese-serve -resume` startup path.
func TestResumeCampaignsScansDir(t *testing.T) {
	machine := config.Starting().WithReese()
	walDir := t.TempDir()
	campaign := Campaign{
		Workload: "li", Machine: &machine, Injections: 20, Seed: 3,
		ShardSize: 5, ResumeToken: "orphaned-campaign",
	}

	// Interrupt a campaign after its first completed shard.
	cfg := testClusterConfig(newWorkers(t, 1))
	cfg.WALDir = walDir
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	cfg.OnEvent = func(ev Event) {
		if ev.Type == "completed" {
			once.Do(cancel)
		}
	}
	if _, err := Run(ctx, cfg, campaign); err == nil {
		t.Fatal("interrupted run returned no error; nothing left to resume")
	}

	cfg.OnEvent = nil
	results := ResumeCampaigns(context.Background(), cfg)
	if len(results) != 1 {
		t.Fatalf("ResumeCampaigns found %d campaigns, want 1", len(results))
	}
	rc := results[0]
	if rc.Err != nil {
		t.Fatalf("resume failed: %v", rc.Err)
	}
	if rc.Token != "orphaned-campaign" {
		t.Errorf("resumed token %q", rc.Token)
	}
	raw, err := os.ReadFile(rc.ReportPath)
	if err != nil {
		t.Fatalf("resumed report not written: %v", err)
	}
	var rep harness.CampaignReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("resumed report is not a CampaignReport: %v", err)
	}
	if rep.Injected != 20 {
		t.Errorf("resumed report ran %d injections, want 20", rep.Injected)
	}
	if matches, _ := filepath.Glob(filepath.Join(walDir, "*.wal")); len(matches) != 0 {
		t.Errorf("resumed campaign left WAL files behind: %v", matches)
	}
}

// Tokens become filenames; anything exotic must be hashed, not trusted.
func TestSanitizeToken(t *testing.T) {
	if got := sanitizeToken("ok-token_1.2"); got != "ok-token_1.2" {
		t.Errorf("clean token rewritten to %q", got)
	}
	for _, bad := range []string{"../../etc/passwd", "a b", strings.Repeat("x", 200), ""} {
		got := sanitizeToken(bad)
		if strings.ContainsAny(got, "/\\ ") || len(got) != 32 {
			t.Errorf("sanitizeToken(%q) = %q, want a 32-char hash", bad, got)
		}
	}
}
