package program

import (
	"testing"
	"testing/quick"

	"reese/internal/isa"
)

func TestAppendAndFetch(t *testing.T) {
	p := New("t")
	addr, err := p.Append(isa.Instruction{Op: isa.OpAdd, Rd: 1, Rs1: 2, Rs2: 3})
	if err != nil {
		t.Fatal(err)
	}
	if addr != TextBase {
		t.Errorf("first instruction at %#x", addr)
	}
	in, err := p.Fetch(addr)
	if err != nil {
		t.Fatal(err)
	}
	if in.Op != isa.OpAdd || in.Rd != 1 {
		t.Errorf("fetched %v", in)
	}
	if p.TextEnd() != TextBase+4 {
		t.Errorf("text end %#x", p.TextEnd())
	}
}

func TestFetchOutOfRange(t *testing.T) {
	p := New("t")
	p.Append(isa.Instruction{Op: isa.OpHalt})
	cases := []uint32{TextBase - 4, TextBase + 4, TextBase + 1, 0}
	for _, addr := range cases {
		if _, err := p.FetchWord(addr); err == nil {
			t.Errorf("fetch at %#x should fail", addr)
		}
	}
}

func TestInText(t *testing.T) {
	p := New("t")
	p.Append(isa.Instruction{Op: isa.OpHalt})
	if !p.InText(TextBase) {
		t.Error("first word")
	}
	if p.InText(TextBase + 2) {
		t.Error("unaligned")
	}
	if p.InText(p.TextEnd()) {
		t.Error("past end")
	}
}

func TestAppendRejectsBadInstruction(t *testing.T) {
	p := New("t")
	if _, err := p.Append(isa.Instruction{Op: isa.OpAddi, Imm: 1 << 20}); err == nil {
		t.Error("bad immediate should fail")
	}
}

func TestDisassemble(t *testing.T) {
	p := New("t")
	p.Append(isa.Instruction{Op: isa.OpAdd, Rd: 1, Rs1: 2, Rs2: 3})
	p.Append(isa.Instruction{Op: isa.OpHalt})
	lines := p.Disassemble()
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	if want := "add r1, r2, r3"; !contains(lines[0], want) {
		t.Errorf("line 0 = %q", lines[0])
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(s) > len(sub) && (s[:len(sub)] == sub || contains(s[1:], sub)))
}

func TestLoadMemoryLayout(t *testing.T) {
	p := New("t")
	p.Append(isa.Instruction{Op: isa.OpHalt})
	p.Data = []byte{0xaa, 0xbb}
	m, err := LoadMemory(p)
	if err != nil {
		t.Fatal(err)
	}
	w, err := m.ReadWord(TextBase)
	if err != nil {
		t.Fatal(err)
	}
	if w != isa.MustEncode(isa.Instruction{Op: isa.OpHalt}) {
		t.Error("text not loaded")
	}
	b, err := m.Read(DataBase, 1)
	if err != nil {
		t.Fatal(err)
	}
	if b != 0xaa {
		t.Errorf("data byte = %#x", b)
	}
}

func TestLoadMemoryOverflowChecks(t *testing.T) {
	p := New("t")
	p.Text = make([]uint32, (DataBase-TextBase)/4+1)
	if _, err := LoadMemory(p); err == nil {
		t.Error("text overflow should fail")
	}
	p2 := New("t")
	p2.Data = make([]byte, StackTop-DataBase+1)
	if _, err := LoadMemory(p2); err == nil {
		t.Error("data overflow should fail")
	}
}

func TestMemoryWidthsAndAlignment(t *testing.T) {
	m, _ := LoadMemory(New("t"))
	if err := m.Write(DataBase, 4, 0x11223344); err != nil {
		t.Fatal(err)
	}
	for _, tt := range []struct {
		addr, width, want uint32
	}{
		{DataBase, 4, 0x11223344},
		{DataBase, 2, 0x3344},
		{DataBase + 2, 2, 0x1122},
		{DataBase, 1, 0x44},
		{DataBase + 3, 1, 0x11},
	} {
		got, err := m.Read(tt.addr, tt.width)
		if err != nil {
			t.Fatal(err)
		}
		if got != tt.want {
			t.Errorf("read(%#x,%d) = %#x, want %#x", tt.addr, tt.width, got, tt.want)
		}
	}
	if _, err := m.Read(DataBase+1, 4); err == nil {
		t.Error("unaligned word read should fail")
	}
	if err := m.Write(DataBase+1, 2, 0); err == nil {
		t.Error("unaligned half write should fail")
	}
	if _, err := m.Read(DataBase, 3); err == nil {
		t.Error("bad width should fail")
	}
	if _, err := m.Read(m.Size(), 1); err == nil {
		t.Error("out of range should fail")
	}
	if _, err := m.Read(m.Size()-2, 4); err == nil {
		t.Error("straddling end should fail")
	}
}

// Property: write-then-read round trips for every width at any legal
// aligned address.
func TestMemoryRoundTrip(t *testing.T) {
	m, _ := LoadMemory(New("t"))
	f := func(off uint32, v uint32, w uint8) bool {
		width := []uint32{1, 2, 4}[w%3]
		addr := DataBase + off%4096
		addr -= addr % width
		if err := m.Write(addr, width, v); err != nil {
			return false
		}
		got, err := m.Read(addr, width)
		if err != nil {
			return false
		}
		mask := uint32(1)<<(8*width) - 1
		if width == 4 {
			mask = ^uint32(0)
		}
		return got == v&mask
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
