package reese_test

// Facade tests: exercise the public API exactly as a downstream user
// would, including the README's quickstart flow.

import (
	"strings"
	"testing"

	"reese"
)

func TestQuickstartFlow(t *testing.T) {
	prog, err := reese.Workload("gcc", 0)
	if err != nil {
		t.Fatal(err)
	}
	base, err := reese.Run(reese.StartingConfig(), prog, nil, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	prog, err = reese.Workload("gcc", 0)
	if err != nil {
		t.Fatal(err)
	}
	prot, err := reese.Run(reese.StartingConfig().WithReese().WithSpares(2, 0), prog, nil, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	if base.IPC <= 0 || prot.IPC <= 0 {
		t.Fatal("zero IPC")
	}
	if prot.IPC > base.IPC*1.05 {
		t.Errorf("REESE (%.3f) should not beat baseline (%.3f)", prot.IPC, base.IPC)
	}
	if prot.Reese == nil || prot.Reese.Reexecuted == 0 {
		t.Error("REESE stats missing")
	}
}

func TestWorkloadNamesAndExtras(t *testing.T) {
	names := reese.WorkloadNames()
	if len(names) != 6 {
		t.Fatalf("names = %v", names)
	}
	for _, extra := range []string{"compress", "m88ksim", "fpmix"} {
		if _, err := reese.Workload(extra, 2); err != nil {
			t.Errorf("extra workload %s: %v", extra, err)
		}
	}
	if _, err := reese.Workload("bogus", 0); err == nil {
		t.Error("unknown workload should fail")
	}
}

func TestAssembleAndEmulate(t *testing.T) {
	prog, err := reese.Assemble("t", `
		li r1, 6
		li r2, 7
		mul r3, r1, r2
		out r3
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	m, err := reese.Emulate(prog, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Halted() || len(m.Output()) != 1 || m.Output()[0] != 42 {
		t.Errorf("halted=%v output=%v", m.Halted(), m.Output())
	}
}

func TestInjectorConstructors(t *testing.T) {
	prog, err := reese.Workload("li", 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := reese.Run(reese.StartingConfig().WithReese(), prog, reese.FaultAt(2000, 5), 20_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.FaultsDetected != 1 {
		t.Errorf("detected %d", res.FaultsDetected)
	}
	if reese.NoFaults() == nil || reese.PeriodicFaults(10) == nil || reese.RandomFaults(1<<20, 1) == nil {
		t.Error("injector constructors")
	}
}

func TestTablesRender(t *testing.T) {
	if !strings.Contains(reese.Table1(), "RUU Size") {
		t.Error("Table1")
	}
	if !strings.Contains(reese.Table2(), "vortex") {
		t.Error("Table2")
	}
}

func TestFigure2ViaFacade(t *testing.T) {
	fig, err := reese.Figure2(reese.Options{Insts: 30_000})
	if err != nil {
		t.Fatal(err)
	}
	if fig.GapPercent("Baseline", "REESE") <= 0 {
		t.Error("REESE should cost something")
	}
}

func TestBitGridViaFacade(t *testing.T) {
	if testing.Short() {
		t.Skip("32 simulations")
	}
	grid, err := reese.BitGrid(reese.StartingConfig().WithReese(), "li", 2_000, reese.Options{Insts: 30_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(grid) != 32 {
		t.Fatalf("grid size %d", len(grid))
	}
	for _, c := range grid {
		if !c.Detected {
			t.Errorf("bit %d not detected", c.Bit)
		}
	}
}

func TestCPUStepAPI(t *testing.T) {
	prog, err := reese.Workload("perl", 2)
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := reese.New(reese.StartingConfig(), prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	var sink strings.Builder
	cpu.SetTrace(&sink)
	res, err := cpu.Run(1_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed < 1_000 {
		t.Errorf("committed %d", res.Committed)
	}
	if !strings.Contains(sink.String(), "COMMIT") {
		t.Error("trace should contain commit events")
	}
}

func TestStuckUnitViaFacade(t *testing.T) {
	cfg := reese.StartingConfig().WithReese().WithRESO()
	cfg.FU.IntALU = 1
	prog, err := reese.Workload("gcc", 2)
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := reese.New(cfg, prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	cpu.SetStuckUnit(reese.StuckALU(0, 7))
	res, err := cpu.Run(30_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.FaultsDetected == 0 {
		t.Error("RESO should detect the stuck ALU through the public API")
	}
}
