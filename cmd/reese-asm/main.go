// Command reese-asm assembles SS32 assembly and either emits the binary
// image, disassembles it back, or runs it on the functional emulator.
//
// Usage:
//
//	reese-asm prog.s                 # assemble, report sizes
//	reese-asm -d prog.s              # assemble then disassemble
//	reese-asm -run prog.s            # assemble and run on the emulator
//	reese-asm -run -max 1000 prog.s  # bound the run
package main

import (
	"flag"
	"fmt"
	"os"

	"reese/internal/asm"
	"reese/internal/emu"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		disasm  = flag.Bool("d", false, "print the disassembly")
		execute = flag.Bool("run", false, "run the program on the functional emulator")
		max     = flag.Uint64("max", 10_000_000, "instruction limit for -run")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: reese-asm [-d] [-run] [-max N] prog.s")
		return 2
	}
	path := flag.Arg(0)
	src, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reese-asm:", err)
		return 1
	}
	prog, err := asm.Assemble(path, string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, "reese-asm:", err)
		return 1
	}
	fmt.Printf("%s: %d instructions, %d data bytes, entry %#x\n",
		prog.Name, len(prog.Text), len(prog.Data), prog.Entry)
	if *disasm {
		for _, line := range prog.Disassemble() {
			fmt.Println(line)
		}
	}
	if *execute {
		m, err := emu.New(prog)
		if err != nil {
			fmt.Fprintln(os.Stderr, "reese-asm:", err)
			return 1
		}
		n, err := m.Run(*max)
		if err != nil {
			fmt.Fprintln(os.Stderr, "reese-asm:", err)
			return 1
		}
		fmt.Printf("executed %d instructions, halted=%v\n", n, m.Halted())
		if out := m.Output(); len(out) > 0 {
			fmt.Printf("output (%d bytes): %q\n", len(out), out)
		}
	}
	return 0
}
