// Command benchjson converts `go test -bench` output on stdin into a
// JSON benchmark record and appends it to a tracking file, so the
// repository's performance trajectory accumulates across commits:
//
//	go test -run '^$' -bench BenchmarkSimThroughput -benchmem . | \
//	    go run ./cmd/benchjson -out BENCH_pipeline.json -label my-change
//
// The output file holds {"entries": [...]}; each entry is one benchmark
// line with its standard metrics (ns/op, B/op, allocs/op) and any
// custom b.ReportMetric values (e.g. sim-insts/s) keyed by unit.
//
// With -check the tool becomes a regression gate instead: stdin is
// compared against the newest tracked entry per benchmark name, and the
// exit status is 1 if sim-insts/s dropped more than -max-regress
// percent or allocs/op grew at all. Nothing is appended in this mode —
// it is what `make bench-smoke` and CI run on every change.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Entry is one parsed benchmark result line.
type Entry struct {
	Label   string             `json:"label,omitempty"`
	Name    string             `json:"name"`
	Iters   int64              `json:"iters"`
	Metrics map[string]float64 `json:"metrics"`
}

// File is the tracking file's shape.
type File struct {
	Entries []Entry `json:"entries"`
}

func main() {
	var (
		out        = flag.String("out", "BENCH_pipeline.json", "tracking file to append to (or compare against with -check)")
		label      = flag.String("label", "", "label stored with each entry (e.g. a change description)")
		check      = flag.Bool("check", false, "compare stdin against the newest tracked entry per benchmark; exit 1 on regression, append nothing")
		maxRegress = flag.Float64("max-regress", 5, "percent sim-insts/s drop tolerated in -check mode")
	)
	flag.Parse()
	var err error
	if *check {
		err = runCheck(*out, *maxRegress)
	} else {
		err = run(*out, *label)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(out, label string) error {
	var f File
	if data, err := os.ReadFile(out); err == nil {
		if err := json.Unmarshal(data, &f); err != nil {
			return fmt.Errorf("%s: %w", out, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}

	sc := bufio.NewScanner(os.Stdin)
	added := 0
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass the output through for the terminal
		e, ok := parseLine(line)
		if !ok {
			continue
		}
		e.Label = label
		f.Entries = append(f.Entries, e)
		added++
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if added == 0 {
		return fmt.Errorf("no benchmark lines found on stdin")
	}
	data, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchjson: appended %d entries to %s\n", added, out)
	return nil
}

// runCheck gates a change: each benchmark on stdin is compared against
// its newest tracked entry. Throughput (sim-insts/s) may drop at most
// maxRegress percent; allocs/op may not grow at all — the cycle loop is
// allocation-free by design and a single new allocation per op means
// something landed on the hot path. Campaign benches (those reporting
// injections/s) get a percent allocs budget instead, and their
// throughput delta is reported without gating.
func runCheck(out string, maxRegress float64) error {
	data, err := os.ReadFile(out)
	if err != nil {
		return err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return fmt.Errorf("%s: %w", out, err)
	}
	// Entries are appended chronologically; the last per name wins.
	base := make(map[string]Entry)
	for _, e := range f.Entries {
		base[e.Name] = e
	}

	sc := bufio.NewScanner(os.Stdin)
	checked := 0
	var failures []string
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		e, ok := parseLine(line)
		if !ok {
			continue
		}
		b, ok := base[e.Name]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchjson: %s has no tracked baseline in %s; skipping\n", e.Name, out)
			continue
		}
		checked++
		if bt, nt := b.Metrics["sim-insts/s"], e.Metrics["sim-insts/s"]; bt > 0 {
			drop := 100 * (bt - nt) / bt
			fmt.Fprintf(os.Stderr, "benchjson: %s sim-insts/s %.0f -> %.0f (%+.1f%%)\n", e.Name, bt, nt, -drop)
			if drop > maxRegress {
				failures = append(failures, fmt.Sprintf(
					"%s: sim-insts/s regressed %.1f%% (%.0f -> %.0f, budget %.1f%%)",
					e.Name, drop, bt, nt, maxRegress))
			}
		}
		campaign := e.Metrics["injections/s"] > 0
		if bt, nt := b.Metrics["injections/s"], e.Metrics["injections/s"]; bt > 0 {
			// Informational only: campaign wall time on a loaded runner is
			// too noisy to gate, but the trajectory is tracked.
			fmt.Fprintf(os.Stderr, "benchjson: %s injections/s %.0f -> %.0f (%+.1f%%)\n",
				e.Name, bt, nt, 100*(nt-bt)/bt)
		}
		// The cycle loop is allocation-free by design, so hot-path benches
		// get zero allocs/op growth. Campaign benches allocate per trial
		// and recycle workers through a sync.Pool whose hit rate depends
		// on GC timing; hold those to a percent budget instead.
		allocBudget := 0.0
		if campaign {
			allocBudget = maxRegress
		}
		if ba, na := b.Metrics["allocs/op"], e.Metrics["allocs/op"]; na > ba*(1+allocBudget/100) {
			failures = append(failures, fmt.Sprintf(
				"%s: allocs/op grew %.0f -> %.0f (hot path must stay allocation-free)",
				e.Name, ba, na))
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if checked == 0 {
		return fmt.Errorf("no benchmark lines with a tracked baseline found on stdin")
	}
	if len(failures) > 0 {
		return fmt.Errorf("performance gate failed:\n  %s", strings.Join(failures, "\n  "))
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks within budget (max regress %.1f%%, allocs unchanged)\n", checked, maxRegress)
	return nil
}

// parseLine parses one result line of `go test -bench` output:
//
//	BenchmarkName-8   123   4567 ns/op   89 B/op   2 allocs/op   3.14 custom-unit
//
// i.e. name, iteration count, then value/unit pairs.
func parseLine(line string) (Entry, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Entry{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Entry{}, false
	}
	name := fields[0]
	if maxProcsSuffix(name) > 0 {
		name = name[:strings.LastIndexByte(name, '-')]
	}
	e := Entry{
		Name:    name,
		Iters:   iters,
		Metrics: make(map[string]float64),
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Entry{}, false
		}
		e.Metrics[fields[i+1]] = v
	}
	if len(e.Metrics) == 0 {
		return Entry{}, false
	}
	return e, true
}

// maxProcsSuffix extracts the trailing -N GOMAXPROCS marker from a
// benchmark name (0 when absent).
func maxProcsSuffix(name string) int {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return 0
	}
	n, err := strconv.Atoi(name[i+1:])
	if err != nil {
		return 0
	}
	return n
}
