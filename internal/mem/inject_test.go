package mem

import "testing"

// testPlane is a slice-backed WordPlane standing in for the
// architectural memory.
type testPlane struct{ words []uint32 }

func newTestPlane(bytes uint32) *testPlane {
	p := &testPlane{words: make([]uint32, bytes/4)}
	for i := range p.words {
		p.words[i] = 0x1000_0000 + uint32(i)
	}
	return p
}

func (p *testPlane) ReadWord(addr uint32) (uint32, error)  { return p.words[addr/4], nil }
func (p *testPlane) WriteWord(addr, v uint32) error        { p.words[addr/4] = v; return nil }
func (p *testPlane) Size() uint32                          { return uint32(len(p.words)) * 4 }
func (p *testPlane) word(addr uint32) uint32               { return p.words[addr/4] }

// injectCache builds the 4-set 2-way 32B-block cache the injection
// tests share, attached to a fresh 1 KB plane.
func injectCache(t *testing.T, ecc bool) (*Cache, *testPlane) {
	t.Helper()
	mm := NewMainMemory(10)
	c, err := NewCache(CacheConfig{
		Name: "l1", SizeBytes: 256, BlockBytes: 32, Assoc: 2, HitLatency: 2, ECC: ecc,
	}, mm)
	if err != nil {
		t.Fatal(err)
	}
	p := newTestPlane(1024)
	c.SetWordPlane(p)
	return c, p
}

func TestInjectDataFlipRevertsOnCleanEviction(t *testing.T) {
	c, p := injectCache(t, false)
	orig := p.word(4)
	c.Access(0, false) // resident, clean
	fired, corrected, detected := c.InjectDataFlip(4, 7)
	if !fired || corrected || detected {
		t.Fatalf("flip = (%v,%v,%v), want (true,false,false)", fired, corrected, detected)
	}
	if got := p.word(4); got != orig^(1<<7) {
		t.Fatalf("word after flip = %#x, want %#x", got, orig^(1<<7))
	}
	if !c.FaultArmed() {
		t.Fatal("residue record should be armed")
	}
	// Evict the clean victim: set 0 holds {0x00}; fill the other way and
	// then force a replacement.
	c.Access(0x80, false)
	c.Access(0x100, false) // evicts block 0 (LRU, clean) -> revert
	if got := p.word(4); got != orig {
		t.Errorf("clean eviction should revert flip: word = %#x, want %#x", got, orig)
	}
	if c.FaultArmed() {
		t.Error("residue should be settled after eviction")
	}
}

func TestInjectDataFlipPersistsOnDirtyEviction(t *testing.T) {
	c, p := injectCache(t, false)
	orig := p.word(4)
	c.Access(0, true) // resident, dirty
	if fired, _, _ := c.InjectDataFlip(4, 3); !fired {
		t.Fatal("flip did not fire")
	}
	c.Access(0x80, false)
	c.Access(0x100, false) // evicts block 0 dirty -> write-back carries corruption
	if got := p.word(4); got != orig^(1<<3) {
		t.Errorf("dirty eviction should persist flip: word = %#x, want %#x", got, orig^(1<<3))
	}
	if c.FaultArmed() {
		t.Error("residue should be settled after eviction")
	}
}

func TestInjectDataFlipECCVerdicts(t *testing.T) {
	c, p := injectCache(t, true)
	orig := p.word(4)
	c.Access(0, false)
	// Single-bit upset: corrected in place, no state change, no residue.
	fired, corrected, detected := c.InjectDataFlip(4, 5)
	if !fired || !corrected || detected {
		t.Fatalf("single-bit under ECC = (%v,%v,%v), want (true,true,false)", fired, corrected, detected)
	}
	if p.word(4) != orig || c.FaultArmed() {
		t.Fatal("corrected upset must not change the plane or arm a residue")
	}
	// Adjacent double-bit upset: applied and flagged detected-uncorrectable.
	fired, corrected, detected = c.InjectDataFlip(4, 32)
	if !fired || corrected || !detected {
		t.Fatalf("double-bit under ECC = (%v,%v,%v), want (true,false,true)", fired, corrected, detected)
	}
	if got := p.word(4); got != orig^0b11 {
		t.Errorf("double-bit flip = %#x, want %#x", got, orig^0b11)
	}
}

func TestInjectDirtyClearLostWriteBack(t *testing.T) {
	c, p := injectCache(t, false)
	orig := p.word(4)
	// Arm before the block's first store: snapshot the pre-store words.
	if c.InjectDirtyClear(0, false) {
		t.Fatal("arming call must not fire")
	}
	// The store: architectural write plus a dirtying cache access.
	p.WriteWord(4, 0xDEAD_BEEF)
	c.Access(0, true)
	// Premature fire attempt while the caller hasn't released it.
	if c.InjectDirtyClear(0, false) {
		t.Fatal("fire=false must keep the record pending")
	}
	if !c.InjectDirtyClear(0, true) {
		t.Fatal("fire should clear the resident dirty bit")
	}
	// Clean eviction: the skipped write-back loses the store.
	c.Access(0x80, false)
	c.Access(0x100, false)
	if got := p.word(4); got != orig {
		t.Errorf("lost write-back should revert the store: word = %#x, want %#x", got, orig)
	}
	if c.FaultArmed() {
		t.Error("residue should be settled after eviction")
	}
}

func TestInjectDirtyClearMaskedByRedirty(t *testing.T) {
	c, p := injectCache(t, false)
	c.InjectDirtyClear(0, false)
	p.WriteWord(4, 0xDEAD_BEEF)
	c.Access(0, true)
	if !c.InjectDirtyClear(0, true) {
		t.Fatal("fire should clear the dirty bit")
	}
	// A later store re-dirties the line: the write-back happens after
	// all, so the stored value survives eviction.
	c.Access(0, true)
	c.Access(0x80, false)
	c.Access(0x100, false)
	if got := p.word(4); got != 0xDEAD_BEEF {
		t.Errorf("re-dirtied line must keep the store: word = %#x", got)
	}
}

func TestInjectDirtyClearFireRequiresDirtyResident(t *testing.T) {
	c, _ := injectCache(t, false)
	c.InjectDirtyClear(0, false)
	// Not resident yet: fire must fail and stay pending.
	if c.InjectDirtyClear(0, true) {
		t.Fatal("fire on a non-resident line should fail")
	}
	c.Access(0, false) // resident but clean
	if c.InjectDirtyClear(0, true) {
		t.Fatal("fire on a clean line should fail")
	}
	if !c.FaultArmed() {
		t.Error("record should remain pending until it fires")
	}
}

func TestInjectTagFlipAliasWriteBack(t *testing.T) {
	c, p := injectCache(t, false)
	// Block 0x00 (set 0, tag 0) dirty; flipping tag bit 0 aliases it to
	// tag 1, i.e. block 0x80.
	c.Access(0, true)
	if !c.InjectTagFlip(0, 0) {
		t.Fatal("tag flip should fire on the resident line")
	}
	if c.Probe(0) {
		t.Error("original address should pseudo-miss after the flip")
	}
	if !c.Probe(0x80) {
		t.Error("aliased address should wrong-line hit")
	}
	origBlock := make([]uint32, 8)
	for i := range origBlock {
		origBlock[i] = p.word(uint32(i) * 4)
	}
	// Evict the corrupted line dirty: the write-back lands on the alias.
	c.Access(0x100, false)
	c.Access(0x180, false) // evicts the flipped (LRU) line
	for i := range origBlock {
		if got := p.word(0x80 + uint32(i)*4); got != origBlock[i] {
			t.Errorf("alias word %d = %#x, want %#x (orig block copied)", i, got, origBlock[i])
		}
	}
	if c.FaultArmed() {
		t.Error("residue should be settled after eviction")
	}
}

func TestInjectTagFlipCleanEvictionIsTimingOnly(t *testing.T) {
	c, p := injectCache(t, false)
	aliasOrig := p.word(0x80)
	c.Access(0, false) // clean
	if !c.InjectTagFlip(0, 0) {
		t.Fatal("tag flip should fire")
	}
	c.Access(0x100, false)
	c.Access(0x180, false)
	if got := p.word(0x80); got != aliasOrig {
		t.Errorf("clean eviction must not touch the alias: word = %#x, want %#x", got, aliasOrig)
	}
}

func TestFlushSettlesArmedFault(t *testing.T) {
	c, p := injectCache(t, false)
	orig := p.word(4)
	c.Access(0, false)
	if fired, _, _ := c.InjectDataFlip(4, 2); !fired {
		t.Fatal("flip did not fire")
	}
	c.Flush()
	if got := p.word(4); got != orig {
		t.Errorf("flush of a clean line should revert the flip: word = %#x, want %#x", got, orig)
	}
	if c.FaultArmed() {
		t.Error("flush should settle the residue")
	}
}

func TestSecondInjectionBlockedWhileArmed(t *testing.T) {
	c, _ := injectCache(t, false)
	c.Access(0, false)
	if fired, _, _ := c.InjectDataFlip(4, 2); !fired {
		t.Fatal("first flip did not fire")
	}
	if fired, _, _ := c.InjectDataFlip(8, 3); fired {
		t.Error("second flip must be refused while a record is armed")
	}
	if c.InjectTagFlip(0, 0) {
		t.Error("tag flip must be refused while a record is armed")
	}
}

// CloneInto must deep-copy the residue record — including the lost-
// write-back snapshot slice — so a forked trial and its parent cannot
// alias each other's settle state across checkpoint restore.
func TestCloneDeepCopiesFaultRec(t *testing.T) {
	c, p := injectCache(t, false)
	c.InjectDirtyClear(0, false) // pending record with an 8-word snapshot
	p.WriteWord(4, 0xDEAD_BEEF)
	c.Access(0, true)
	c.InjectDirtyClear(0, true)

	mm := NewMainMemory(10)
	cp := c.CloneInto(nil, mm)
	cp.SetWordPlane(p)
	if !c.StateEqualRanked(cp) {
		t.Fatal("clone should be state-equal to its source")
	}
	// Mutating the source snapshot must not leak into the clone.
	c.frec.snap[0] ^= 0xFFFF
	if c.StateEqualRanked(cp) {
		t.Error("snapshot mutation should break state equality (deep copy)")
	}
	c.frec.snap[0] ^= 0xFFFF
	if !c.StateEqualRanked(cp) {
		t.Fatal("reverting the mutation should restore equality")
	}
	// The clone settles independently of the source.
	cp.Access(0x80, false)
	cp.Access(0x100, false)
	if cp.FaultArmed() {
		t.Error("clone residue should settle on its own eviction")
	}
	if !c.FaultArmed() {
		t.Error("source residue must survive the clone's eviction")
	}
}

// An armed or pending record keeps a cache from comparing equal to a
// clean one — the residue can still mutate the plane at a future
// eviction, so forked-trial splicing must not land before it settles.
func TestFaultRecBlocksStateEqualRanked(t *testing.T) {
	a, p := injectCache(t, false)
	b, _ := injectCache(t, false)
	b.SetWordPlane(p)
	a.Access(0, false)
	b.Access(0, false)
	if !a.StateEqualRanked(b) {
		t.Fatal("identical access streams should be state-equal")
	}
	if fired, _, _ := a.InjectDataFlip(4, 2); !fired {
		t.Fatal("flip did not fire")
	}
	if a.StateEqualRanked(b) {
		t.Error("armed residue must block state equality")
	}
	// Pending (never-fired) lost-write-back records block equality too.
	cB, _ := injectCache(t, false)
	cC, _ := injectCache(t, false)
	cB.Access(0, false)
	cC.Access(0, false)
	cB.InjectDirtyClear(0, false)
	if cB.StateEqualRanked(cC) {
		t.Error("pending lost-write-back record must block state equality")
	}
}

func TestTLBInjectEntryFlip(t *testing.T) {
	tlb, err := NewTLB(TLBConfig{Name: "t", Entries: 4, Assoc: 2, PageBytes: 4096, MissLatency: 30})
	if err != nil {
		t.Fatal(err)
	}
	if tlb.InjectEntryFlip(0, 1) {
		t.Fatal("flip on an empty TLB should miss")
	}
	tlb.Translate(0)
	if lat := tlb.Translate(0); lat != 0 {
		t.Fatalf("warm translate = %d, want 0", lat)
	}
	if !tlb.InjectEntryFlip(0, 1) {
		t.Fatal("flip should hit the resident entry")
	}
	if lat := tlb.Translate(0); lat != 30 {
		t.Errorf("post-flip translate = %d, want 30 (pseudo-miss)", lat)
	}
}
