// Package mem models the simulated memory hierarchy's timing: set-
// associative write-back caches with LRU replacement, a fixed-latency
// main memory, and translation lookaside buffers. It matches the
// hierarchy the REESE paper configures on SimpleScalar (Table 1):
// split 32 KB 2-way L1 caches, a shared 512 KB 4-way L2, and TLBs.
//
// The hierarchy models timing only — data contents live in the
// architectural memory (internal/program.Memory). That mirrors
// SimpleScalar, where cache modules track tags, not data.
package mem

import "fmt"

// Level is anything that can service a memory access: a cache or main
// memory. Access returns the total latency in cycles to satisfy the
// access at this level (including any lower-level misses).
type Level interface {
	// Access services a read (isWrite=false) or write at addr.
	Access(addr uint32, isWrite bool) (latency int)
	// Name identifies the level in statistics output.
	Name() string
}

// CacheConfig describes one cache level.
type CacheConfig struct {
	Name string
	// SizeBytes is total capacity. BlockBytes is the line size. Assoc is
	// the number of ways (1 = direct mapped).
	SizeBytes  uint32
	BlockBytes uint32
	Assoc      uint32
	// HitLatency is the access time in cycles on a hit.
	HitLatency int
	// ECC enables a SECDED code on this level: injected single-bit data
	// faults are corrected in place, double-bit faults are detected but
	// uncorrectable. Timing of the correction is not modeled (modern
	// SECDED corrects in the array access shadow).
	ECC bool
}

// Validate checks the configuration for consistency.
func (c CacheConfig) Validate() error {
	if c.BlockBytes == 0 || c.BlockBytes&(c.BlockBytes-1) != 0 {
		return fmt.Errorf("cache %s: block size %d not a power of two", c.Name, c.BlockBytes)
	}
	if c.Assoc == 0 {
		return fmt.Errorf("cache %s: zero associativity", c.Name)
	}
	if c.SizeBytes == 0 || c.SizeBytes%(c.BlockBytes*c.Assoc) != 0 {
		return fmt.Errorf("cache %s: size %d not divisible by block*assoc", c.Name, c.SizeBytes)
	}
	sets := c.SizeBytes / (c.BlockBytes * c.Assoc)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache %s: set count %d not a power of two", c.Name, sets)
	}
	if c.HitLatency < 1 {
		return fmt.Errorf("cache %s: hit latency %d < 1", c.Name, c.HitLatency)
	}
	return nil
}

// CacheStats counts cache events.
type CacheStats struct {
	Accesses   uint64
	Hits       uint64
	Misses     uint64
	Writebacks uint64
}

// MissRate returns misses/accesses (0 for no accesses).
func (s CacheStats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

type line struct {
	tag   uint32
	valid bool
	dirty bool
	// lru is a per-set logical clock; larger = more recently used.
	lru uint64
}

// Cache is a set-associative, write-back, write-allocate cache with true
// LRU replacement.
type Cache struct {
	cfg    CacheConfig
	next   Level
	sets   uint32
	lines  []line // sets × assoc, row-major
	clock  uint64
	stats  CacheStats
	shiftB uint32 // log2(block size)
	shiftS uint32 // log2(sets)
	maskS  uint32 // sets-1

	// Fault-injection residue (see inject.go). plane is the architectural
	// backing store data faults read and write; frec is the single armed
	// fault record a campaign trial may leave on this cache.
	plane WordPlane
	frec  faultRec
}

var _ Level = (*Cache)(nil)

// NewCache builds a cache in front of next.
func NewCache(cfg CacheConfig, next Level) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if next == nil {
		return nil, fmt.Errorf("cache %s: nil next level", cfg.Name)
	}
	sets := cfg.SizeBytes / (cfg.BlockBytes * cfg.Assoc)
	c := &Cache{
		cfg:    cfg,
		next:   next,
		sets:   sets,
		lines:  make([]line, sets*cfg.Assoc),
		shiftB: log2(cfg.BlockBytes),
		shiftS: log2(sets),
		maskS:  sets - 1,
	}
	return c, nil
}

func log2(v uint32) uint32 {
	var n uint32
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// Name implements Level.
func (c *Cache) Name() string { return c.cfg.Name }

// Config returns the cache's configuration.
func (c *Cache) Config() CacheConfig { return c.cfg }

// Stats returns a copy of the cache's counters.
func (c *Cache) Stats() CacheStats { return c.stats }

// Access implements Level. On a miss the block is fetched from the next
// level (write-allocate); a dirty eviction writes back to the next level,
// charged to this access (a simplification SimpleScalar also makes under
// its default blocking-cache timing).
func (c *Cache) Access(addr uint32, isWrite bool) int {
	c.stats.Accesses++
	c.clock++
	blockAddr := addr >> c.shiftB
	set := blockAddr & c.maskS
	tag := blockAddr >> c.shiftS
	base := set * c.cfg.Assoc

	// Hit?
	for i := uint32(0); i < c.cfg.Assoc; i++ {
		ln := &c.lines[base+i]
		if ln.valid && ln.tag == tag {
			c.stats.Hits++
			ln.lru = c.clock
			if isWrite {
				ln.dirty = true
			}
			return c.cfg.HitLatency
		}
	}

	// Miss: fill an empty way if one exists, else evict the LRU line.
	c.stats.Misses++
	victim := &c.lines[base]
	victimIdx := base
	for i := uint32(1); i < c.cfg.Assoc && victim.valid; i++ {
		ln := &c.lines[base+i]
		if !ln.valid || ln.lru < victim.lru {
			victim = ln
			victimIdx = base + i
		}
	}
	if c.frec.kind != frNone && c.frec.idx == victimIdx && victim.valid {
		c.settleFault(victim)
	}

	latency := c.cfg.HitLatency
	if victim.valid && victim.dirty {
		c.stats.Writebacks++
		// Reconstruct the victim's address for the write-back.
		victimAddr := (victim.tag<<c.shiftS | set) << c.shiftB
		latency += c.next.Access(victimAddr, true)
	}
	latency += c.next.Access(addr, false)

	victim.valid = true
	victim.tag = tag
	victim.dirty = isWrite
	victim.lru = c.clock
	return latency
}

// Probe reports whether addr currently hits in the cache, without
// updating any state. Used by tests and by the pipeline to model
// non-blocking hint checks.
func (c *Cache) Probe(addr uint32) bool {
	blockAddr := addr >> c.shiftB
	set := blockAddr & c.maskS
	tag := blockAddr >> c.shiftS
	base := set * c.cfg.Assoc
	for i := uint32(0); i < c.cfg.Assoc; i++ {
		ln := &c.lines[base+i]
		if ln.valid && ln.tag == tag {
			return true
		}
	}
	return false
}

// Flush invalidates all lines, writing back dirty ones to the next
// level, and returns the number of write-backs performed.
func (c *Cache) Flush() int {
	if c.frec.kind != frNone {
		c.settleFault(&c.lines[c.frec.idx])
	}
	n := 0
	for i := range c.lines {
		if c.lines[i].valid && c.lines[i].dirty {
			n++
			c.stats.Writebacks++
			set := uint32(i) / c.cfg.Assoc
			victimAddr := (c.lines[i].tag<<c.shiftS | set) << c.shiftB
			c.next.Access(victimAddr, true)
		}
		c.lines[i] = line{}
	}
	return n
}

// MainMemory is the bottom of the hierarchy: a fixed-latency DRAM model.
type MainMemory struct {
	// Latency is the access time in cycles (SimpleScalar's default first-
	// chunk latency).
	Latency  int
	accesses uint64
}

var _ Level = (*MainMemory)(nil)

// NewMainMemory returns a memory with the given access latency.
func NewMainMemory(latency int) *MainMemory { return &MainMemory{Latency: latency} }

// Name implements Level.
func (m *MainMemory) Name() string { return "mem" }

// Access implements Level.
func (m *MainMemory) Access(addr uint32, isWrite bool) int {
	m.accesses++
	return m.Latency
}

// Accesses returns how many accesses reached main memory.
func (m *MainMemory) Accesses() uint64 { return m.accesses }
