package workload

import (
	"sync"
	"testing"
)

func TestBuildIsMemoized(t *testing.T) {
	spec, ok := ByName("gcc")
	if !ok {
		t.Fatal("gcc missing")
	}
	p1, err := spec.Build(7)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := spec.Build(7)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("Build(7) twice returned distinct programs; cache miss")
	}
	p3, err := spec.Build(8)
	if err != nil {
		t.Fatal(err)
	}
	if p3 == p1 {
		t.Error("Build(8) returned the iters=7 program")
	}
}

func TestRebuildBypassesCache(t *testing.T) {
	spec, ok := ByName("li")
	if !ok {
		t.Fatal("li missing")
	}
	cached, err := spec.Build(5)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := spec.Rebuild(5)
	if err != nil {
		t.Fatal(err)
	}
	if fresh == cached {
		t.Error("Rebuild returned the cached program")
	}
	if len(fresh.Text) != len(cached.Text) {
		t.Fatalf("Rebuild text %d words, cached %d", len(fresh.Text), len(cached.Text))
	}
	for i := range fresh.Text {
		if fresh.Text[i] != cached.Text[i] {
			t.Fatalf("Rebuild and cached programs diverge at word %d", i)
		}
	}
}

// TestBuildConcurrent exercises the cache under contention; run with
// -race it vets the sync.Once-per-key construction.
func TestBuildConcurrent(t *testing.T) {
	spec, ok := ByName("perl")
	if !ok {
		t.Fatal("perl missing")
	}
	const workers = 16
	progs := make([]interface{}, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			p, err := spec.Build(9)
			if err != nil {
				t.Error(err)
				return
			}
			progs[w] = p
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if progs[w] != progs[0] {
			t.Fatal("concurrent Build returned distinct programs")
		}
	}
}
