// Package pipeline is the cycle-level out-of-order superscalar timing
// simulator — the equivalent of SimpleScalar 2.0's sim-outorder, which
// the REESE paper modified. It models fetch (with gshare branch
// prediction, BTB and return-address stack), dispatch into a Register
// Update Unit and Load/Store Queue, operand-ready issue to a
// functional-unit pool, writeback, and in-order commit. With REESE
// enabled, completed instructions pass through the R-stream Queue and a
// result comparator before retiring (internal/reese).
//
// The simulator is execution-driven: a functional emulator (the oracle)
// runs ahead at fetch time and supplies true values and branch outcomes;
// the pipeline decides *when* everything happens. Branch mispredictions
// stall fetch until the branch resolves — the standard approximation
// that charges the full misprediction penalty without simulating
// wrong-path instructions.
package pipeline

import (
	"context"
	"fmt"
	"io"
	"sync/atomic"

	"reese/internal/bpred"
	"reese/internal/config"
	"reese/internal/emu"
	"reese/internal/fault"
	"reese/internal/fu"
	"reese/internal/isa"
	"reese/internal/mem"
	"reese/internal/obs"
	"reese/internal/program"
	"reese/internal/reese"
	"reese/internal/ruu"
	"reese/internal/stats"
)

// redirectPenalty is the extra front-end refill charged after a branch
// misprediction resolves (on top of waiting for resolution itself).
const redirectPenalty = 2

// recoveryPenalty is the pipeline-drain cost charged when a detected
// fault flushes the machine.
const recoveryPenalty = 4

// DefaultHangLimit is the no-commit watchdog threshold: a run that goes
// this many cycles without retiring a single instruction is declared
// hung and terminated cleanly (Result.Hanged). Even the deepest
// realistic stall (a full window behind an L2-missing load) resolves in
// hundreds of cycles, so 100k cycles of commit silence means a fault
// wedged the machine — e.g. a corrupted fetch PC marching off the text
// segment. SetHangLimit overrides it (tests use small values).
const DefaultHangLimit = 100_000

// fetchEntry is one instruction waiting in the fetch queue.
type fetchEntry struct {
	tr           emu.Trace
	mispredicted bool
	// histSnap is the predictor history this branch's prediction used,
	// carried to resolution so training hits the same table entry.
	histSnap uint32
	// bogus marks wrong-path instructions.
	bogus bool
	// fetchedAt is the cycle the entry entered the queue, carried so the
	// flight recorder can backdate the FETCH event at dispatch time.
	fetchedAt uint64
}

// CPU is one simulated processor instance. Create with New, run with
// Run; a CPU is single-use.
type CPU struct {
	cfg    config.Machine
	oracle *emu.Machine
	prog   *program.Program

	hier *mem.Hierarchy
	pool *fu.Pool
	pred bpred.Predictor
	btb  *bpred.BTB
	ras  *bpred.RAS

	ruu *ruu.RUU
	lsq *ruu.LSQ
	rsq *reese.Queue // nil unless REESE enabled in RSQ mode
	// dupMode selects the duplicate-at-the-scheduler comparison scheme
	// (config.ModeDupDispatch): every instruction dispatches as an
	// adjacent (original, duplicate) pair compared at commit.
	dupMode bool
	// rLive counts dispatched R copies whose comparison has not
	// completed; they occupy window slots (see windowFree).
	rLive int

	injector fault.Injector
	// sites is non-nil when injector also implements the
	// structure-addressed hook sites (oracle step, RSQ enqueue); set once
	// in New so the hot path pays a nil check, not a type assertion.
	sites fault.SiteInjector
	// memSites is non-nil when injector can additionally fire into the
	// memory hierarchy (cache/TLB/memory-word faults); same nil-gated
	// hook pattern as sites.
	memSites fault.MemSiteInjector
	// stuck, when non-nil, is a permanent single-unit fault (see
	// fault.StuckUnit and SetStuckUnit).
	stuck *fault.StuckUnit

	// fetchQ is a fixed-capacity ring buffer (FetchQueueSize entries);
	// fetchHead/fetchLen index it so steady-state fetch never allocates.
	fetchQ    []fetchEntry
	fetchHead int
	fetchLen  int
	// replayQ holds traces to re-fetch after fault recovery, consumed
	// from replayHead; replayScratch is the spare buffer recover() swaps
	// in when rebuilding the queue, so repeated recoveries reuse the
	// same two backing arrays.
	replayQ       []emu.Trace
	replayHead    int
	replayScratch []emu.Trace
	// pending is the real-path trace pushed back by an I-cache miss
	// (valid when hasPending). wpPending is its wrong-path equivalent,
	// kept separate so a wrong-path I-cache miss can never leak a bogus
	// trace into the real stream (it is dropped at squash).
	pending      emu.Trace
	hasPending   bool
	wpPending    emu.Trace
	hasWPPending bool
	// trScratch/wpScratch are the stable homes for the trace handed out
	// by nextTrace/wrongPathTrace each fetch slot, so returning a
	// pointer never forces a heap allocation.
	trScratch emu.Trace
	wpScratch emu.Trace
	// dec is prog's pre-decoded text, consulted by wrong-path fetch.
	dec      *program.DecodedText
	traceW   io.Writer     // pipeline event trace sink (nil = off)
	recorder *obs.Recorder // flight recorder ring (nil = off)

	cycle        uint64
	fetchReadyAt uint64 // I-cache miss / redirect gate
	fetchStalled bool   // waiting on a mispredicted branch to resolve

	// Wrong-path state (config.ModelWrongPath): after a misprediction,
	// fetch decodes down the predicted (wrong) path until the branch
	// resolves and the tail is squashed.
	wrongPath  bool
	wpPC       uint32 // next wrong-path fetch address
	wpLsqMark  uint64 // LSQ position at wrong-path entry (squash point)
	wpHistSnap uint32 // predictor history to restore at squash
	wpMarked   bool   // wpLsqMark captured for the current wrong path
	wpFetched  uint64 // wrong-path instructions fetched (stat)
	wpSquashed uint64 // wrong-path instructions squashed from the window
	oracleDone bool   // oracle reached halt
	done       bool   // halt retired
	permError  bool   // persistent fault: machine stopped

	committed     uint64
	instLimit     uint64
	fastForwarded uint64

	// No-commit watchdog: if hangLimit cycles pass without a single
	// commit, the run terminates cleanly with Result.Hanged set (a fault
	// can wedge the machine; a campaign worker must not wedge with it).
	hangLimit uint64
	hanged    bool
	// Watchdog position — CPU fields rather than RunContext locals so a
	// forked machine (snapshot.go) resumes the golden run's no-commit
	// window exactly where the snapshot left it.
	lastCommitted   uint64
	lastCommitCycle uint64

	// Commit-count boundary hook (snapshot.go): when hookFn is non-nil
	// the cycle loop invokes it once whenever committed first reaches
	// hookMarks[hookIdx]. The golden instrumented run snapshots there;
	// forked trials attempt to splice back onto the golden run there. A
	// true return stops the run.
	hookMarks []uint64
	hookIdx   int
	hookFn    func(*CPU) bool

	// hookHorizon is one past the highest sequence number ever presented
	// to the writeback/RSQ fault-injection sites. A checkpoint is a safe
	// fork point for a fault at seq only if no site call at or beyond seq
	// happened before it (converge.go's fork-eligibility rule).
	hookHorizon uint64

	// hangFF enables the periodicity hang fast-forward (converge.go);
	// ffScratch is its reusable probe snapshot and ffProbeAge the commit-
	// drought depth the probe was captured at (0 = no live probe).
	hangFF     bool
	ffScratch  *CPU
	ffProbeAge uint64
	// hangPeriod is the loop period (cycles) the hang fast-forward
	// proved, 0 when the watchdog fired without a periodicity proof.
	hangPeriod uint64

	// faultCycle is the cycle the injector first fired (0 = not yet) —
	// the anchor for the triage recorder window and divergence deltas.
	faultCycle uint64
	// stopReq makes the running cycle loop return at the end of the
	// current cycle, as a normal (non-error) result (RequestStop).
	stopReq bool
	// recFreeze, when non-zero, freezes the flight recorder recFreeze
	// cycles after faultCycle: the ring then holds a window around the
	// injection instead of the tail of the run. Marker events
	// (fault/mismatch/recovery/divergence) bypass the freeze.
	recFreeze uint64
	// commitWatch, when non-nil, observes every architectural retire in
	// program order with the values actually committed — the triage
	// pass's lockstep tap (SetCommitWatch).
	commitWatch func(seq, cycle uint64, tr emu.Trace, resultP, addrP, storeValueP uint32)

	// Shadow architectural state rebuilt from latched commit values
	// (what the timing machine actually retired, as opposed to the
	// oracle's always-clean state). CommitDigest summarizes it; fault
	// campaigns compare it against a golden run to detect SDC.
	shadowRegs  [isa.NumRegs]uint32
	shadowFRegs [isa.NumRegs]uint32
	storeHash   uint64
	storeCount  uint64

	// progress, when non-nil, receives committed-instruction deltas at
	// every context-check interval — a liveness heartbeat an external
	// watchdog can sample without touching the cycle loop (SetProgress).
	progress     *atomic.Uint64
	progressSeen uint64

	// Fault bookkeeping.
	injected    uint64
	detected    uint64
	silent      uint64 // faults committed without detection (baseline)
	detectLat   *stats.Histogram
	recoveries  uint64
	lastBadPC   uint32
	lastBadLive bool

	// Stall accounting. fetch*/dispatch* are legacy event counters;
	// stalls is the per-slot attribution matrix (every unused dispatch,
	// issue, and commit slot charged to exactly one cause per cycle).
	fetchICacheStallCycles uint64
	fetchBranchStallCycles uint64
	dispatchRUUFull        uint64
	dispatchLSQFull        uint64
	stalls                 obs.Matrix
	// Per-cycle attribution scratch, reset in step: dispCause is the
	// first dispatch-blocking condition seen this cycle; issueNotReady /
	// issueNoFU record what the issue scans skipped over; commitBlock is
	// the cause commit() computed for its unused slots.
	dispCause     obs.StallCause
	issueNotReady bool
	issueNoFU     bool
	commitBlock   obs.StallCause

	// Branch accounting.
	branches    uint64
	mispredicts uint64

	// RSQ occupancy sampling (REESE machines).
	rsqOccSum uint64
	rsqOccMax uint64

	// classCommits counts retired instructions per functional-unit
	// class (the dynamic instruction mix).
	classCommits [8]uint64
}

// Fetch-queue ring-buffer operations. The buffer is sized once in New;
// pushes are bounded by FetchQueueSize checks in fetch().

func (c *CPU) fetchQPush(fe fetchEntry) *fetchEntry {
	i := c.fetchHead + c.fetchLen
	if i >= len(c.fetchQ) {
		i -= len(c.fetchQ)
	}
	c.fetchQ[i] = fe
	c.fetchLen++
	return &c.fetchQ[i]
}

func (c *CPU) fetchQFront() *fetchEntry { return &c.fetchQ[c.fetchHead] }

func (c *CPU) fetchQPop() {
	c.fetchHead++
	if c.fetchHead == len(c.fetchQ) {
		c.fetchHead = 0
	}
	c.fetchLen--
}

// fetchQAt returns the i-th entry from the front (0 = oldest).
func (c *CPU) fetchQAt(i int) *fetchEntry {
	j := c.fetchHead + i
	if j >= len(c.fetchQ) {
		j -= len(c.fetchQ)
	}
	return &c.fetchQ[j]
}

func (c *CPU) fetchQClear() { c.fetchHead, c.fetchLen = 0, 0 }

// New builds a CPU for prog under machine configuration cfg, with
// injector supplying soft errors (pass fault.None{} for none).
func New(cfg config.Machine, prog *program.Program, injector fault.Injector) (*CPU, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	oracle, err := emu.New(prog)
	if err != nil {
		return nil, err
	}
	hier, err := mem.NewHierarchy(cfg.Memory)
	if err != nil {
		return nil, err
	}
	pool, err := fu.NewPool(cfg.FU)
	if err != nil {
		return nil, err
	}
	pred, err := newPredictor(cfg)
	if err != nil {
		return nil, err
	}
	btb, err := bpred.NewBTB(cfg.BTBSets, cfg.BTBAssoc)
	if err != nil {
		return nil, err
	}
	ras, err := bpred.NewRAS(cfg.RASSize)
	if err != nil {
		return nil, err
	}
	r, err := ruu.New(cfg.RUUSize)
	if err != nil {
		return nil, err
	}
	lsq, err := ruu.NewLSQ(cfg.LSQSize)
	if err != nil {
		return nil, err
	}
	c := &CPU{
		cfg:       cfg,
		oracle:    oracle,
		prog:      prog,
		dec:       prog.Decoded(),
		fetchQ:    make([]fetchEntry, cfg.FetchQueueSize),
		hier:      hier,
		pool:      pool,
		pred:      pred,
		btb:       btb,
		ras:       ras,
		ruu:       r,
		lsq:       lsq,
		injector:  injector,
		detectLat: stats.NewHistogram(1),
		hangLimit: DefaultHangLimit,
		storeHash: emu.DigestSeed,
	}
	c.shadowRegs[isa.RegSP] = program.StackTop
	if injector == nil {
		c.injector = fault.None{}
	}
	if s, ok := c.injector.(fault.SiteInjector); ok {
		c.sites = s
	}
	if m, ok := c.injector.(fault.MemSiteInjector); ok {
		c.memSites = m
	}
	c.hier.SetWordPlane(c.oracle.Mem())
	if cfg.Reese.Enabled {
		if cfg.Reese.Mode == config.ModeDupDispatch {
			c.dupMode = true
		} else {
			c.rsq, err = reese.New(cfg.Reese.RSQSize, cfg.Reese.HighWater, cfg.Reese.ReexecuteEvery)
			if err != nil {
				return nil, err
			}
			c.rsq.SetRESO(cfg.Reese.RESO)
		}
	}
	return c, nil
}

// Result is the outcome of a simulation run.
type Result struct {
	Config    string
	Workload  string
	Cycles    uint64
	Committed uint64
	IPC       float64

	Halted    bool
	PermError bool
	// Hanged reports that the no-commit watchdog terminated the run:
	// the machine went DefaultHangLimit (or SetHangLimit) cycles
	// without retiring an instruction.
	Hanged bool
	// HangPeriod is the loop period (cycles) the Brent-style hang
	// fast-forward proved before jumping to the watchdog; 0 when the
	// run did not hang or hung without a periodicity proof.
	HangPeriod uint64 `json:",omitempty"`
	// FastForwarded is the number of instructions skipped functionally
	// before timing began.
	FastForwarded uint64

	Branches          uint64
	Mispredicts       uint64
	BranchAcc         float64
	FetchICacheStalls uint64
	FetchBranchStalls uint64
	DispatchRUUFull   uint64
	DispatchLSQFull   uint64

	// Stalls attributes every unused dispatch/issue/commit slot over
	// the run to one cause (see obs.StallCause; reese-sim -why renders
	// it as a table).
	Stalls obs.StallBreakdown

	// ALUUtil etc. are mean functional-unit utilizations over the run.
	ALUUtil, MultUtil, MemPortUtil float64

	// Mix is the committed dynamic instruction mix by class.
	Mix InstructionMix

	// WrongPathFetched/Squashed count wrong-path activity (only with
	// config.ModelWrongPath).
	WrongPathFetched  uint64
	WrongPathSquashed uint64

	L1I, L1D, L2 mem.CacheStats

	// Reese is non-nil for REESE machines. RSQOccupancyMean/Max sample
	// the queue's fill level per cycle, which is also the machine's
	// P-to-R-stream separation in instructions (the paper's Δt, §2).
	Reese            *reese.Stats
	RSQOccupancyMean float64
	RSQOccupancyMax  uint64

	// Fault-injection outcome.
	FaultsInjected uint64
	FaultsDetected uint64
	FaultsSilent   uint64
	Recoveries     uint64
	// DetectionLatency summarises cycles from injection to detection.
	DetectionLatencyMean float64
	DetectionLatencyMax  uint64
}

// newPredictor builds the configured branch predictor.
func newPredictor(cfg config.Machine) (bpred.Predictor, error) {
	switch cfg.Predictor {
	case config.PredGshare:
		return bpred.NewGshare(cfg.GshareBits)
	case config.PredBimodal:
		return bpred.NewBimodal(cfg.GshareBits)
	case config.PredCombining:
		g, err := bpred.NewGshare(cfg.GshareBits)
		if err != nil {
			return nil, err
		}
		b, err := bpred.NewBimodal(cfg.GshareBits)
		if err != nil {
			return nil, err
		}
		return bpred.NewCombining(g, b, cfg.GshareBits)
	case config.PredStaticTaken:
		return &bpred.Static{Taken: true}, nil
	case config.PredStaticNotTaken:
		return &bpred.Static{}, nil
	default:
		return nil, fmt.Errorf("pipeline: unknown predictor kind %d", cfg.Predictor)
	}
}

// FastForward functionally executes n instructions on the oracle
// before timing simulation begins — SimpleScalar's -fastfwd. The
// skipped instructions update architectural state but cost no cycles
// and leave caches and predictors cold. It must be called before Run.
func (c *CPU) FastForward(n uint64) (uint64, error) {
	if c.cycle != 0 || c.committed != 0 {
		return 0, fmt.Errorf("pipeline: FastForward after simulation started")
	}
	done, err := c.oracle.Run(n)
	if err != nil {
		return done, err
	}
	if c.oracle.Halted() {
		// Nothing left to simulate; mark the stream exhausted so Run
		// terminates immediately.
		c.oracleDone = true
		c.done = true
	}
	c.fastForwarded = done
	return done, nil
}

// Run simulates until the program halts and drains, until maxInsts
// instructions have committed (0 = no limit), or until the safety cycle
// cap trips (which returns an error: it indicates a simulator bug).
func (c *CPU) Run(maxInsts uint64) (Result, error) {
	return c.RunContext(context.Background(), maxInsts)
}

// ctxCheckInterval is how many cycles pass between ctx.Err() polls in
// RunContext. At simulator speed this bounds the cancellation latency
// to well under a millisecond while keeping the check off the per-cycle
// path.
const ctxCheckInterval = 16384

// RunContext is Run with cooperative cancellation: the cycle loop polls
// ctx every ctxCheckInterval cycles and returns ctx.Err() (wrapped) if
// the context is cancelled or times out, so an abandoned request stops
// burning CPU mid-simulation. At the same cadence it publishes the
// committed-instruction count to the SetProgress sink, giving external
// watchdogs a liveness heartbeat.
func (c *CPU) RunContext(ctx context.Context, maxInsts uint64) (Result, error) {
	c.instLimit = maxInsts
	c.stopReq = false
	// Bail before simulating anything on an already-dead context, so a
	// run scheduled after cancellation never reports spurious success.
	if err := ctx.Err(); err != nil {
		return Result{}, fmt.Errorf("pipeline: run cancelled before start: %w", err)
	}
	// Generous deadlock guard: no real run needs more than ~100 cycles
	// per instruction plus slack.
	capCycles := uint64(10_000_000)
	if maxInsts > 0 {
		capCycles = 200*maxInsts + 1_000_000
	}
	nextCtxCheck := c.cycle + ctxCheckInterval
	for !c.done && !c.permError && !c.stopReq {
		if c.instLimit > 0 && c.committed >= c.instLimit {
			break
		}
		if c.cycle > capCycles {
			return Result{}, fmt.Errorf("pipeline: cycle cap %d exceeded at %d committed insts (deadlock?)", capCycles, c.committed)
		}
		if c.cycle >= nextCtxCheck {
			c.reportProgress()
			if err := ctx.Err(); err != nil {
				return Result{}, fmt.Errorf("pipeline: run cancelled at cycle %d (%d committed): %w", c.cycle, c.committed, err)
			}
			nextCtxCheck = c.cycle + ctxCheckInterval
		}
		c.step()
		if c.committed != c.lastCommitted {
			c.lastCommitted = c.committed
			c.lastCommitCycle = c.cycle
			c.ffProbeAge = 0 // drought over; any held probe is stale
		} else if c.hangLimit > 0 {
			d := c.cycle - c.lastCommitCycle
			if d >= c.hangLimit {
				// The machine is wedged (an injected fault can do this — a
				// corrupted fetch PC off the text segment ends the oracle
				// stream, and nothing will ever commit again). Terminate
				// cleanly: Hanged is a classifiable outcome, not an error.
				c.hanged = true
				break
			}
			// Hang fast-forward (converge.go): deep in a commit drought,
			// hold a probe snapshot and compare the live state against it
			// every cycle; a match proves the machine loops with period
			// c.cycle - probe.cycle and the run jumps to the watchdog.
			// The probe refreshes at each power-of-two depth so a period-p
			// loop is caught once the probe is ≥ p cycles old.
			if c.hangFF {
				if c.ffProbeAge > 0 && c.tryHangFastForward(c.ffScratch) {
					c.hanged = true
					break
				}
				if d >= hangProbeMin && d&(d-1) == 0 && d != c.ffProbeAge {
					c.probeSnapshot()
					c.ffProbeAge = d
				}
			}
		}
		if c.hookFn != nil && c.hookIdx < len(c.hookMarks) && c.committed >= c.hookMarks[c.hookIdx] {
			for c.hookIdx < len(c.hookMarks) && c.committed >= c.hookMarks[c.hookIdx] {
				c.hookIdx++
			}
			if c.hookFn(c) {
				break
			}
		}
	}
	c.reportProgress()
	return c.result(), nil
}

// SetHangLimit overrides the no-commit watchdog threshold (0 disables
// it). Call before Run.
func (c *CPU) SetHangLimit(cycles uint64) { c.hangLimit = cycles }

// SetCommitWatch installs an observer invoked at every architectural
// retire, in program order, with the global commit index (seq), the
// retire cycle, the committed trace, and the latched result / store
// address / store value the shadow state is rebuilt from. The observer
// must not mutate the CPU; it is the triage pass's lockstep tap. Call
// before Run; nil disables.
func (c *CPU) SetCommitWatch(fn func(seq, cycle uint64, tr emu.Trace, resultP, addrP, storeValueP uint32)) {
	c.commitWatch = fn
}

// SetRecorderWindow freezes the flight recorder postCycles cycles after
// the injector first fires: the ring then holds the window around the
// injection (ring capacity bounds the pre-context, postCycles the
// post-context) instead of the tail of the run. Marker events —
// fault, mismatch, recovery, divergence — bypass the freeze. 0 (the
// default) records the whole run, wrapping as usual.
func (c *CPU) SetRecorderWindow(postCycles uint64) { c.recFreeze = postCycles }

// FaultCycle returns the cycle at which the injector first fired
// (0 = it never fired).
func (c *CPU) FaultCycle() uint64 { return c.faultCycle }

// RequestStop makes the in-flight Run/RunContext return at the end of
// the current cycle with whatever state the machine has, as a normal
// (non-error) result. Observer callbacks use it to end an instrumented
// replay the moment they have what they need — a triage replay whose
// attribution is settled skips the rest of the trial. The request is
// cleared when the next run starts.
func (c *CPU) RequestStop() { c.stopReq = true }

// StopRequested reports whether RequestStop ended the last run early.
func (c *CPU) StopRequested() bool { return c.stopReq }

// SetProgress installs a shared committed-instruction counter: the
// cycle loop adds its commit deltas to p at every context-check
// interval, so a watchdog sampling p can tell a slow simulation from a
// hung one. Several CPUs may share one counter (a figure grid); the sum
// stays monotonic. Call before Run; a nil p disables reporting.
func (c *CPU) SetProgress(p *atomic.Uint64) { c.progress = p }

func (c *CPU) reportProgress() {
	if c.progress != nil && c.committed > c.progressSeen {
		c.progress.Add(c.committed - c.progressSeen)
		c.progressSeen = c.committed
	}
}

// step advances one cycle, running stages in reverse pipeline order so
// every stage sees the previous cycle's state of its upstream neighbour.
// Each stage reports how many of its slots did work; the remainder is
// charged to a single stall cause (chargeStalls), so per-cause counts
// always reconcile against width × cycles.
func (c *CPU) step() {
	c.dispCause = obs.CauseNone
	c.issueNotReady, c.issueNoFU = false, false
	nCommit := c.commit()
	c.writeback()
	nIssue := c.issue()
	nDisp := c.dispatch()
	c.fetch()
	c.chargeStalls(nDisp, nIssue, nCommit)
	if c.rsq != nil {
		occ := uint64(c.rsq.Len())
		c.rsqOccSum += occ
		if occ > c.rsqOccMax {
			c.rsqOccMax = occ
		}
	}
	c.cycle++
}

// chargeStalls closes the cycle's slot ledger: used slots are banked
// and every unused slot is charged to the one cause its stage
// determined. Pure integer arithmetic — no allocation, always on.
func (c *CPU) chargeStalls(nDisp, nIssue, nCommit int) {
	c.stalls.Use(obs.SlotDispatch, nDisp)
	c.stalls.Use(obs.SlotIssue, nIssue)
	c.stalls.Use(obs.SlotCommit, nCommit)
	if nDisp < c.cfg.Width {
		c.stalls.Charge(obs.SlotDispatch, c.dispatchCause(), c.cfg.Width-nDisp)
	}
	if nIssue < c.cfg.IssueWidth {
		c.stalls.Charge(obs.SlotIssue, c.issueCause(), c.cfg.IssueWidth-nIssue)
	}
	if nCommit < c.cfg.Width {
		c.stalls.Charge(obs.SlotCommit, c.commitBlock, c.cfg.Width-nCommit)
	}
}

// Cycle returns the current cycle number.
func (c *CPU) Cycle() uint64 { return c.cycle }

// Committed returns the number of architecturally retired instructions.
func (c *CPU) Committed() uint64 { return c.committed }

// Output returns the bytes the program has emitted via "out"
// instructions (architectural state, produced by the oracle).
func (c *CPU) Output() []byte { return c.oracle.Output() }

// SetStuckUnit installs a permanent fault in one functional unit: every
// result computed on it has one bit flipped, in the P stream and in any
// redundant execution that lands on the same unit. Call before Run.
func (c *CPU) SetStuckUnit(s fault.StuckUnit) { c.stuck = &s }

func (c *CPU) result() Result {
	res := Result{
		Config:        c.cfg.Name,
		Workload:      c.prog.Name,
		Cycles:        c.cycle,
		Committed:     c.committed,
		Halted:        c.done,
		PermError:     c.permError,
		Hanged:        c.hanged,
		HangPeriod:    c.hangPeriod,
		FastForwarded: c.fastForwarded,

		Branches:    c.branches,
		Mispredicts: c.mispredicts,

		FetchICacheStalls: c.fetchICacheStallCycles,
		FetchBranchStalls: c.fetchBranchStallCycles,
		DispatchRUUFull:   c.dispatchRUUFull,
		DispatchLSQFull:   c.dispatchLSQFull,

		ALUUtil:     c.pool.Utilization(fu.IntALU, c.cycle),
		MultUtil:    c.pool.Utilization(fu.IntMult, c.cycle),
		MemPortUtil: c.pool.Utilization(fu.MemPort, c.cycle),

		L1I: c.hier.L1I.Stats(),
		L1D: c.hier.L1D.Stats(),
		L2:  c.hier.L2.Stats(),

		WrongPathFetched:  c.wpFetched,
		WrongPathSquashed: c.wpSquashed,

		FaultsInjected: c.injected,
		FaultsDetected: c.detected,
		FaultsSilent:   c.silent,
		Recoveries:     c.recoveries,
	}
	if c.cycle > 0 {
		res.IPC = float64(c.committed) / float64(c.cycle)
	}
	if c.branches > 0 {
		res.BranchAcc = 1 - float64(c.mispredicts)/float64(c.branches)
	}
	if c.rsq != nil {
		s := c.rsq.Stats()
		res.Reese = &s
		res.RSQOccupancyMax = c.rsqOccMax
		if c.cycle > 0 {
			res.RSQOccupancyMean = float64(c.rsqOccSum) / float64(c.cycle)
		}
	}
	if c.detectLat.Count() > 0 {
		res.DetectionLatencyMean = c.detectLat.Mean()
		res.DetectionLatencyMax = c.detectLat.Max()
	}
	res.Stalls = c.stalls.Breakdown(c.cycle, [obs.NumSlotClasses]int{
		obs.SlotDispatch: c.cfg.Width,
		obs.SlotIssue:    c.cfg.IssueWidth,
		obs.SlotCommit:   c.cfg.Width,
	})
	res.Mix = c.mix()
	return res
}

// DetectionLatencies exposes the detection-latency histogram for
// campaign analysis.
func (c *CPU) DetectionLatencies() *stats.Histogram { return c.detectLat }

// CommitDigest summarizes the architectural work the timing machine
// actually committed: shadow register files rebuilt from latched
// writeback values and a running hash of the committed-store sequence.
// Unlike the oracle (which always executes cleanly unless an
// oracle-site fault corrupts it), the shadow state sees latch-plane
// corruption that slipped past detection — comparing this digest
// against an uninjected golden run's is how a campaign finds SDC.
// Output bytes come from the oracle stream (out executes at oracle
// time); for runs that reach halt the two agree.
func (c *CPU) CommitDigest() emu.Digest {
	return emu.Digest{
		Committed:  c.committed,
		Halted:     c.done,
		Regs:       c.shadowRegs,
		FRegs:      c.shadowFRegs,
		OutLen:     uint64(len(c.oracle.Output())),
		OutHash:    emu.HashBytes(c.oracle.Output()),
		StoreCount: c.storeCount,
		StoreHash:  c.storeHash,
	}
}

// OracleDigest summarizes the oracle's own final architectural state.
// Oracle-site faults (regfile, fetch PC) corrupt this plane; latch
// faults never do. Campaigns compare both digests against golden.
func (c *CPU) OracleDigest() emu.Digest { return c.oracle.Digest() }

// InstructionMix is the dynamic mix of committed instructions, as
// fractions of the total.
type InstructionMix struct {
	IntALU  float64
	IntMult float64
	Load    float64
	Store   float64
	Control float64
	FP      float64
}

func (c *CPU) mix() InstructionMix {
	if c.committed == 0 {
		return InstructionMix{}
	}
	tot := float64(c.committed)
	return InstructionMix{
		IntALU:  float64(c.classCommits[0]) / tot,
		IntMult: float64(c.classCommits[1]) / tot,
		Load:    float64(c.classCommits[2]) / tot,
		Store:   float64(c.classCommits[3]) / tot,
		Control: float64(c.classCommits[4]) / tot,
		FP:      float64(c.classCommits[5]) / tot,
	}
}
