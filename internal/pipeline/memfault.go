package pipeline

// hierPlane adapts the CPU's memory hierarchy and architectural memory
// to the fault.MemPlane interface the memory-site injector fires
// through. It is a one-word value, so passing it as an interface does
// not allocate on the hot path.

import "reese/internal/fault"

type hierPlane struct{ c *CPU }

var _ fault.MemPlane = hierPlane{}

func (p hierPlane) cache(l fault.CacheSel) interface {
	InjectTagFlip(addr uint32, bit uint8) bool
	InjectDataFlip(addr uint32, bits uint8) (bool, bool, bool)
} {
	switch l {
	case fault.SelL1I:
		return p.c.hier.L1I
	case fault.SelL2:
		return p.c.hier.L2
	}
	return p.c.hier.L1D
}

// CorruptWord implements fault.MemPlane: XOR mask into the
// architectural word. Goes through the dirty-tracked write path, so
// copy-on-write page snapshots and fork-replay page comparisons see it.
func (p hierPlane) CorruptWord(addr, mask uint32) bool {
	m := p.c.oracle.Mem()
	v, err := m.ReadWord(addr)
	if err != nil {
		return false
	}
	return m.WriteWord(addr, v^mask) == nil
}

// TagFlip implements fault.MemPlane.
func (p hierPlane) TagFlip(l fault.CacheSel, addr uint32, bit uint8) bool {
	return p.cache(l).InjectTagFlip(addr, bit)
}

// DirtyClear implements fault.MemPlane. The clear may only fire after
// the block's last golden store (dynamic index lastSeq) has retired —
// earlier, the block's own remaining stores would re-dirty the line
// and mask the upset unconditionally.
func (p hierPlane) DirtyClear(addr uint32, lastSeq uint64) bool {
	return p.c.hier.L1D.InjectDirtyClear(addr, p.c.Committed() > lastSeq)
}

// DataFlip implements fault.MemPlane.
func (p hierPlane) DataFlip(l fault.CacheSel, addr uint32, bits uint8) fault.FlipResult {
	fired, corrected, detected := p.cache(l).InjectDataFlip(addr, bits)
	switch {
	case !fired:
		return fault.FlipNone
	case corrected:
		return fault.FlipCorrected
	case detected:
		return fault.FlipDetected
	}
	return fault.FlipApplied
}

// TLBEntryFlip implements fault.MemPlane.
func (p hierPlane) TLBEntryFlip(data bool, addr uint32, bit uint8) bool {
	if data {
		return p.c.hier.DTLB.InjectEntryFlip(addr, bit)
	}
	return p.c.hier.ITLB.InjectEntryFlip(addr, bit)
}
