package workload

import (
	"testing"

	"reese/internal/emu"
	"reese/internal/isa"
)

func TestAllSixBenchmarks(t *testing.T) {
	specs := All()
	if len(specs) != 6 {
		t.Fatalf("got %d benchmarks, want 6 (paper Table 2)", len(specs))
	}
	want := []string{"gcc", "go", "ijpeg", "li", "perl", "vortex"}
	for i, s := range specs {
		if s.Name != want[i] {
			t.Errorf("benchmark %d = %q, want %q", i, s.Name, want[i])
		}
		if s.Input == "" || s.Signature == "" {
			t.Errorf("%s: missing metadata", s.Name)
		}
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("gcc"); !ok {
		t.Error("gcc not found")
	}
	if _, ok := ByName("nonesuch"); ok {
		t.Error("bogus name found")
	}
	if len(Names()) != 6 {
		t.Error("Names() length")
	}
}

// runToHalt executes a workload at small scale on the functional
// emulator, returning the machine for inspection.
func runToHalt(t *testing.T, s Spec, iters int) *emu.Machine {
	t.Helper()
	p, err := s.Build(iters)
	if err != nil {
		t.Fatalf("%s: build: %v", s.Name, err)
	}
	m, err := emu.New(p)
	if err != nil {
		t.Fatalf("%s: load: %v", s.Name, err)
	}
	if _, err := m.Run(50_000_000); err != nil {
		t.Fatalf("%s: run: %v", s.Name, err)
	}
	if !m.Halted() {
		t.Fatalf("%s: did not halt", s.Name)
	}
	return m
}

func TestWorkloadsRunAndHalt(t *testing.T) {
	for _, s := range All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			m := runToHalt(t, s, 2)
			if len(m.Output()) != 4 {
				t.Errorf("checksum output = %d bytes, want 4", len(m.Output()))
			}
		})
	}
}

func TestWorkloadsDeterministic(t *testing.T) {
	for _, s := range All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			m1 := runToHalt(t, s, 2)
			m2 := runToHalt(t, s, 2)
			if string(m1.Output()) != string(m2.Output()) {
				t.Errorf("output differs across runs: % x vs % x", m1.Output(), m2.Output())
			}
			if m1.InstCount() != m2.InstCount() {
				t.Errorf("instruction count differs: %d vs %d", m1.InstCount(), m2.InstCount())
			}
		})
	}
}

func TestDefaultItersGiveEnoughWork(t *testing.T) {
	if testing.Short() {
		t.Skip("full-length workloads")
	}
	for _, s := range All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			m := runToHalt(t, s, 0)
			if m.InstCount() < 150_000 {
				t.Errorf("%s default run = %d instructions, want >= 150k", s.Name, m.InstCount())
			}
		})
	}
}

// instrMix tallies the dynamic operation mix of a workload.
func instrMix(t *testing.T, s Spec, iters int) map[isa.Class]float64 {
	t.Helper()
	p, err := s.Build(iters)
	if err != nil {
		t.Fatal(err)
	}
	m, err := emu.New(p)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[isa.Class]uint64{}
	var branches, total uint64
	for !m.Halted() {
		tr, err := m.Step()
		if err != nil {
			t.Fatal(err)
		}
		counts[tr.Inst.Op.Class()]++
		if tr.Inst.Op.IsControl() {
			branches++
		}
		total++
		if total > 20_000_000 {
			t.Fatal("runaway")
		}
	}
	mix := map[isa.Class]float64{}
	for k, v := range counts {
		mix[k] = float64(v) / float64(total)
	}
	mix[isa.ClassNone] = float64(branches) / float64(total) // control fraction
	return mix
}

// TestBehaviouralSignatures checks each stand-in exhibits the behaviour
// profile DESIGN.md assigns it — this is what makes the substitution for
// SPEC95 defensible.
func TestBehaviouralSignatures(t *testing.T) {
	mixes := map[string]map[isa.Class]float64{}
	for _, s := range All() {
		mixes[s.Name] = instrMix(t, s, 2)
	}

	// ijpeg is the multiply/divide-heavy benchmark.
	for _, name := range []string{"gcc", "li", "perl", "vortex"} {
		if mixes["ijpeg"][isa.ClassIntMult] <= mixes[name][isa.ClassIntMult] {
			t.Errorf("ijpeg mult fraction (%.3f) should exceed %s (%.3f)",
				mixes["ijpeg"][isa.ClassIntMult], name, mixes[name][isa.ClassIntMult])
		}
	}
	// vortex is the most store-heavy.
	for _, name := range []string{"gcc", "go", "ijpeg", "li", "perl"} {
		if mixes["vortex"][isa.ClassMemWrite] <= mixes[name][isa.ClassMemWrite] {
			t.Errorf("vortex store fraction (%.3f) should exceed %s (%.3f)",
				mixes["vortex"][isa.ClassMemWrite], name, mixes[name][isa.ClassMemWrite])
		}
	}
	// li is load dominated: highest load fraction.
	for _, name := range []string{"gcc", "go", "ijpeg", "vortex"} {
		if mixes["li"][isa.ClassMemRead] <= mixes[name][isa.ClassMemRead] {
			t.Errorf("li load fraction (%.3f) should exceed %s (%.3f)",
				mixes["li"][isa.ClassMemRead], name, mixes[name][isa.ClassMemRead])
		}
	}
	// Every workload has a meaningful branch fraction (> 5%).
	for name, mix := range mixes {
		if mix[isa.ClassNone] < 0.05 {
			t.Errorf("%s control fraction %.3f too low to be realistic", name, mix[isa.ClassNone])
		}
	}
	// Memory traffic exists everywhere (loads at least).
	for name, mix := range mixes {
		if mix[isa.ClassMemRead] <= 0 {
			t.Errorf("%s has no loads", name)
		}
	}
}

func TestChecksumsNonTrivial(t *testing.T) {
	seen := map[string]string{}
	for _, s := range All() {
		m := runToHalt(t, s, 2)
		sum := string(m.Output())
		if sum == "\x00\x00\x00\x00" {
			t.Errorf("%s checksum is zero — suspicious", s.Name)
		}
		for prev, ps := range seen {
			if ps == sum {
				t.Errorf("%s and %s share a checksum — copy/paste bug?", s.Name, prev)
			}
		}
		seen[s.Name] = sum
	}
}

func TestIterationScaling(t *testing.T) {
	for _, s := range All() {
		m2 := runToHalt(t, s, 2)
		m4 := runToHalt(t, s, 4)
		if m4.InstCount() <= m2.InstCount() {
			t.Errorf("%s: 4 iters (%d insts) should exceed 2 iters (%d)", s.Name, m4.InstCount(), m2.InstCount())
		}
	}
}

func TestFpmixExtra(t *testing.T) {
	spec, ok := ByName("fpmix")
	if !ok {
		t.Fatal("fpmix not found")
	}
	m1 := runToHalt(t, spec, 10)
	m2 := runToHalt(t, spec, 10)
	if string(m1.Output()) != string(m2.Output()) {
		t.Error("fpmix not deterministic")
	}
	if len(m1.Output()) != 4 {
		t.Errorf("checksum = %d bytes", len(m1.Output()))
	}
	// fpmix must not appear in the Table 2 roster.
	for _, s := range All() {
		if s.Name == "fpmix" {
			t.Error("fpmix leaked into Table 2")
		}
	}
	if len(Extras()) == 0 {
		t.Error("Extras empty")
	}
}

func TestFpmixUsesFPClasses(t *testing.T) {
	spec, _ := ByName("fpmix")
	mix := instrMix(t, spec, 5)
	if mix[isa.ClassFPALU] == 0 {
		t.Error("fpmix should use FP ALU ops")
	}
	if mix[isa.ClassFPMult] == 0 {
		t.Error("fpmix should use FP multiplier/divider ops")
	}
}

func TestExtrasRunAndVerifyUnderReese(t *testing.T) {
	for _, s := range Extras() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			m := runToHalt(t, s, 3)
			// prbs emits its magic word plus three 16-byte verify
			// records; the rest emit a 4-byte checksum.
			want := 4
			if s.Name == "prbs" {
				want = 52
			}
			if len(m.Output()) != want {
				t.Errorf("output = %d bytes, want %d", len(m.Output()), want)
			}
			m2 := runToHalt(t, s, 3)
			if string(m.Output()) != string(m2.Output()) {
				t.Error("not deterministic")
			}
		})
	}
}

func TestM88ksimUsesIndirectJumps(t *testing.T) {
	spec, ok := ByName("m88ksim")
	if !ok {
		t.Fatal("m88ksim not registered")
	}
	p, err := spec.Build(2)
	if err != nil {
		t.Fatal(err)
	}
	m, err := emu.New(p)
	if err != nil {
		t.Fatal(err)
	}
	indirect := 0
	for !m.Halted() {
		tr, err := m.Step()
		if err != nil {
			t.Fatal(err)
		}
		if tr.Inst.Op.IsIndirect() {
			indirect++
		}
	}
	if indirect < 100 {
		t.Errorf("m88ksim executed only %d indirect jumps; the interpreter dispatch is its point", indirect)
	}
}
