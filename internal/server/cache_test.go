package server

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestResultCacheLRU(t *testing.T) {
	m := NewMetrics()
	c := newResultCache(2, m)

	if _, ok := c.get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.put("a", json.RawMessage(`1`))
	c.put("b", json.RawMessage(`2`))
	if v, ok := c.get("a"); !ok || string(v) != "1" {
		t.Fatalf("a: %q %v", v, ok)
	}
	// a is now most recent; inserting c must evict b.
	c.put("c", json.RawMessage(`3`))
	if _, ok := c.get("b"); ok {
		t.Error("b survived eviction")
	}
	if _, ok := c.get("a"); !ok {
		t.Error("a was evicted despite being recently used")
	}
	if _, ok := c.get("c"); !ok {
		t.Error("c missing")
	}
	if c.evictions.Value() != 1 {
		t.Errorf("evictions %d, want 1", c.evictions.Value())
	}
	hits, misses := c.stats()
	if hits != 3 || misses != 2 {
		t.Errorf("hits/misses %d/%d, want 3/2", hits, misses)
	}

	// Overwriting an existing key must not grow the cache.
	c.put("c", json.RawMessage(`33`))
	if v, _ := c.get("c"); string(v) != "33" {
		t.Errorf("overwrite lost: %s", v)
	}
	if len(c.entries) != 2 {
		t.Errorf("entries %d, want 2", len(c.entries))
	}
}

func TestResultCacheDisabled(t *testing.T) {
	c := newResultCache(-1, NewMetrics())
	c.put("a", json.RawMessage(`1`))
	if _, ok := c.get("a"); ok {
		t.Error("disabled cache stored an entry")
	}
}

func TestCacheKeyCanonical(t *testing.T) {
	k1, err := cacheKey("run", RunRequest{Workload: "gcc", Insts: 1000})
	if err != nil {
		t.Fatal(err)
	}
	k2, err := cacheKey("run", RunRequest{Workload: "gcc", Insts: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Error("identical requests hash differently")
	}
	k3, _ := cacheKey("run", RunRequest{Workload: "gcc", Insts: 1001})
	if k1 == k3 {
		t.Error("different requests collide")
	}
	// Kind separates endpoint namespaces even for identical bodies.
	k4, _ := cacheKey("figure", RunRequest{Workload: "gcc", Insts: 1000})
	if k1 == k4 {
		t.Error("kinds share a namespace")
	}
}

func TestMetricsRender(t *testing.T) {
	m := NewMetrics()
	m.Counter("test_total", "A counter.").Add(3)
	m.CounterFamily("test_labeled_total", "Labeled.", "kind").With("x").Inc()
	m.Gauge("test_gauge", "A gauge.", func() float64 { return 1.5 })
	h := m.HistogramFamily("test_seconds", "A histogram.", []float64{0.1, 1}, "path").With("/p")
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	m.Render(&b)
	out := b.String()
	for _, want := range []string{
		"# HELP test_total A counter.\n# TYPE test_total counter\ntest_total 3\n",
		"test_labeled_total{kind=\"x\"} 1\n",
		"# TYPE test_gauge gauge\ntest_gauge 1.5\n",
		"test_seconds_bucket{path=\"/p\",le=\"0.1\"} 1\n",
		"test_seconds_bucket{path=\"/p\",le=\"1\"} 2\n",
		"test_seconds_bucket{path=\"/p\",le=\"+Inf\"} 3\n",
		"test_seconds_sum{path=\"/p\"} 5.55\n",
		"test_seconds_count{path=\"/p\"} 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}

	// Rendering is deterministic (sorted families and children).
	var b2 strings.Builder
	m.Render(&b2)
	if out != b2.String() {
		t.Error("two renders differ")
	}
}
