package ruu

import (
	"testing"
	"testing/quick"

	"reese/internal/emu"
	"reese/internal/isa"
)

func trace(op isa.Op, rd, rs1, rs2 isa.Reg) emu.Trace {
	return emu.Trace{Inst: isa.Instruction{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2}}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(1); err == nil {
		t.Error("size 1 should fail")
	}
	if _, err := NewLSQ(0); err == nil {
		t.Error("lsq size 0 should fail")
	}
}

func TestDispatchFillAndDrain(t *testing.T) {
	r, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if e := r.Dispatch(trace(isa.OpAdd, 1, 2, 3), NoProducer); e == nil {
			t.Fatalf("dispatch %d failed", i)
		}
	}
	if !r.Full() || r.Len() != 4 {
		t.Error("should be full")
	}
	if r.Dispatch(trace(isa.OpAdd, 1, 2, 3), NoProducer) != nil {
		t.Error("dispatch into full RUU should fail")
	}
	for i := 0; i < 4; i++ {
		r.RemoveHead()
	}
	if !r.Empty() {
		t.Error("should be empty")
	}
}

func TestDependencyWiring(t *testing.T) {
	r, _ := New(8)
	producer := r.Dispatch(trace(isa.OpAdd, 5, 1, 2), NoProducer)
	consumer := r.Dispatch(trace(isa.OpSub, 6, 5, 3), NoProducer)
	if consumer.Dep1 != producer.Seq {
		t.Errorf("consumer Dep1 = %d, want %d", consumer.Dep1, producer.Seq)
	}
	if consumer.Dep2 != NoProducer {
		t.Errorf("consumer Dep2 = %d, want none (r3 has no producer)", consumer.Dep2)
	}
	// Not ready until the producer completes.
	if r.OperandsReady(consumer, 10) {
		t.Error("consumer should wait for producer")
	}
	producer.Issued = true
	producer.Completed = true
	producer.DoneAt = 12
	if r.OperandsReady(consumer, 11) {
		t.Error("result not available before DoneAt")
	}
	if !r.OperandsReady(consumer, 12) {
		t.Error("result should forward at DoneAt")
	}
}

func TestLatestProducerWins(t *testing.T) {
	r, _ := New(8)
	r.Dispatch(trace(isa.OpAdd, 5, 1, 2), NoProducer)
	second := r.Dispatch(trace(isa.OpSub, 5, 1, 2), NoProducer)
	consumer := r.Dispatch(trace(isa.OpXor, 6, 5, 0), NoProducer)
	if consumer.Dep1 != second.Seq {
		t.Errorf("consumer should depend on the latest writer of r5")
	}
}

func TestR0NeverTracked(t *testing.T) {
	r, _ := New(8)
	r.Dispatch(trace(isa.OpAdd, 0, 1, 2), NoProducer) // writes r0: discarded
	consumer := r.Dispatch(trace(isa.OpAdd, 3, 0, 0), NoProducer)
	if consumer.Dep1 != NoProducer || consumer.Dep2 != NoProducer {
		t.Error("reads of r0 must never have producers")
	}
}

func TestProducerLeavingRUUMakesOperandReady(t *testing.T) {
	r, _ := New(8)
	p := r.Dispatch(trace(isa.OpAdd, 5, 1, 2), NoProducer)
	p.Issued, p.Completed = true, true
	r.RemoveHead()
	consumer := r.Dispatch(trace(isa.OpSub, 6, 5, 3), NoProducer)
	if consumer.Dep1 != NoProducer {
		t.Error("departed producer should not be referenced")
	}
	if !r.OperandsReady(consumer, 0) {
		t.Error("operand from departed producer is architectural")
	}
}

func TestSlotReuseAfterWrap(t *testing.T) {
	r, _ := New(4)
	for i := 0; i < 20; i++ {
		e := r.Dispatch(trace(isa.OpAdd, 1, 1, 1), NoProducer)
		if e == nil {
			t.Fatal("dispatch failed")
		}
		if e.Seq != uint64(i) {
			t.Errorf("seq = %d, want %d", e.Seq, i)
		}
		got := r.RemoveHead()
		if got.Seq != uint64(i) {
			t.Errorf("removed seq = %d, want %d", got.Seq, i)
		}
	}
}

func TestFlushClearsProducers(t *testing.T) {
	r, _ := New(8)
	r.Dispatch(trace(isa.OpAdd, 5, 1, 2), NoProducer)
	r.Flush()
	if !r.Empty() {
		t.Error("flush should empty the RUU")
	}
	consumer := r.Dispatch(trace(isa.OpSub, 6, 5, 3), NoProducer)
	if consumer.Dep1 != NoProducer {
		t.Error("flushed producer must not be referenced")
	}
}

func TestScanOrder(t *testing.T) {
	r, _ := New(8)
	for i := 0; i < 5; i++ {
		r.Dispatch(trace(isa.OpAdd, 1, 2, 3), NoProducer)
	}
	var seqs []uint64
	r.Scan(func(e *Entry) bool {
		seqs = append(seqs, e.Seq)
		return true
	})
	for i := 1; i < len(seqs); i++ {
		if seqs[i] != seqs[i-1]+1 {
			t.Errorf("scan out of order: %v", seqs)
		}
	}
	// Early stop.
	n := 0
	r.Scan(func(e *Entry) bool {
		n++
		return false
	})
	if n != 1 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestJalWiresLinkRegister(t *testing.T) {
	r, _ := New(8)
	jal := r.Dispatch(emu.Trace{Inst: isa.Instruction{Op: isa.OpJal}}, NoProducer)
	consumer := r.Dispatch(trace(isa.OpJr, 0, isa.LinkReg, 0), NoProducer)
	if consumer.Dep1 != jal.Seq {
		t.Error("jr ra should depend on jal's link write")
	}
}

// Property: after any sequence of dispatch/remove operations the RUU's
// occupancy equals dispatches minus removals and never exceeds capacity.
func TestOccupancyInvariant(t *testing.T) {
	f := func(ops []bool) bool {
		r, _ := New(8)
		disp, rem := 0, 0
		for _, dispatch := range ops {
			if dispatch {
				if e := r.Dispatch(trace(isa.OpAdd, 1, 2, 3), NoProducer); e != nil {
					disp++
				}
			} else if !r.Empty() {
				r.RemoveHead()
				rem++
			}
			if r.Len() != disp-rem || r.Len() > r.Cap() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// --- LSQ tests ---

func memTrace(op isa.Op, addr, width uint32) emu.Trace {
	return emu.Trace{Inst: isa.Instruction{Op: op}, Addr: addr, MemWidth: width}
}

func TestLSQBasics(t *testing.T) {
	q, err := NewLSQ(4)
	if err != nil {
		t.Fatal(err)
	}
	st := q.Dispatch(memTrace(isa.OpSw, 100, 4), 0)
	ld := q.Dispatch(memTrace(isa.OpLw, 100, 4), 1)
	if !st.IsStore || ld.IsStore {
		t.Error("store/load classification")
	}
	if q.Len() != 2 {
		t.Errorf("len = %d", q.Len())
	}
	// Load blocked while the store's address is unknown.
	if got := q.CheckLoad(ld.MemSeq); got != LoadBlocked {
		t.Errorf("disposition = %v, want blocked", got)
	}
	st.Issued = true
	if got := q.CheckLoad(ld.MemSeq); got != LoadForward {
		t.Errorf("disposition = %v, want forward", got)
	}
}

func TestLSQNonOverlappingStoreDoesNotForward(t *testing.T) {
	q, _ := NewLSQ(4)
	st := q.Dispatch(memTrace(isa.OpSw, 100, 4), 0)
	ld := q.Dispatch(memTrace(isa.OpLw, 200, 4), 1)
	st.Issued = true
	if got := q.CheckLoad(ld.MemSeq); got != LoadFromCache {
		t.Errorf("disposition = %v, want cache", got)
	}
}

func TestLSQPartialOverlapForwards(t *testing.T) {
	q, _ := NewLSQ(4)
	st := q.Dispatch(memTrace(isa.OpSw, 100, 4), 0)
	st.Issued = true
	// Byte load inside the stored word.
	ld := q.Dispatch(memTrace(isa.OpLb, 102, 1), 1)
	if got := q.CheckLoad(ld.MemSeq); got != LoadForward {
		t.Errorf("disposition = %v, want forward (overlap)", got)
	}
	// Adjacent but non-overlapping byte.
	ld2 := q.Dispatch(memTrace(isa.OpLb, 104, 1), 2)
	if got := q.CheckLoad(ld2.MemSeq); got != LoadFromCache {
		t.Errorf("disposition = %v, want cache (adjacent)", got)
	}
}

func TestLSQLaterUnissuedStoreStillBlocks(t *testing.T) {
	q, _ := NewLSQ(8)
	s1 := q.Dispatch(memTrace(isa.OpSw, 100, 4), 0)
	q.Dispatch(memTrace(isa.OpSw, 200, 4), 1) // unissued
	ld := q.Dispatch(memTrace(isa.OpLw, 100, 4), 2)
	s1.Issued = true
	if got := q.CheckLoad(ld.MemSeq); got != LoadBlocked {
		t.Errorf("disposition = %v, want blocked (unknown address between)", got)
	}
}

func TestLSQFullAndFlush(t *testing.T) {
	q, _ := NewLSQ(2)
	q.Dispatch(memTrace(isa.OpLw, 0, 4), 0)
	q.Dispatch(memTrace(isa.OpLw, 4, 4), 1)
	if !q.Full() {
		t.Error("should be full")
	}
	if q.Dispatch(memTrace(isa.OpLw, 8, 4), 2) != nil {
		t.Error("dispatch into full LSQ should fail")
	}
	q.Flush()
	if !q.Empty() {
		t.Error("flush should empty")
	}
}

func TestLSQRemoveHeadOrder(t *testing.T) {
	q, _ := NewLSQ(4)
	q.Dispatch(memTrace(isa.OpSw, 0, 4), 10)
	q.Dispatch(memTrace(isa.OpLw, 4, 4), 11)
	e := q.RemoveHead()
	if e.Seq != 10 || !e.IsStore {
		t.Errorf("head = %+v", e)
	}
	if q.Head().Seq != 11 {
		t.Errorf("new head = %+v", q.Head())
	}
}

func TestTruncateAfterRestoresCreateVector(t *testing.T) {
	r, _ := New(8)
	// Producer chain: p1 writes r5; p2 (squashed) also writes r5.
	p1 := r.Dispatch(trace(isa.OpAdd, 5, 1, 2), NoProducer)
	branch := r.Dispatch(trace(isa.OpBeq, 0, 5, 0), NoProducer)
	p2 := r.Dispatch(trace(isa.OpSub, 5, 1, 2), NoProducer) // wrong path
	r.Dispatch(trace(isa.OpXor, 6, 5, 0), NoProducer)       // wrong path
	_ = p2
	r.TruncateAfter(branch.Seq)
	if r.Len() != 2 {
		t.Fatalf("len = %d, want 2", r.Len())
	}
	// A new consumer of r5 must depend on p1 again, not the squashed p2.
	consumer := r.Dispatch(trace(isa.OpOr, 7, 5, 0), NoProducer)
	if consumer.Dep1 != p1.Seq {
		t.Errorf("consumer Dep1 = %d, want %d (rollback failed)", consumer.Dep1, p1.Seq)
	}
}

func TestTruncateAfterNestedWriters(t *testing.T) {
	r, _ := New(8)
	p1 := r.Dispatch(trace(isa.OpAdd, 3, 1, 2), NoProducer)
	keep := r.Dispatch(trace(isa.OpAdd, 4, 1, 2), NoProducer)
	// Two squashed writers of the same register: rollback must unwind
	// both, in reverse, landing back on p1.
	r.Dispatch(trace(isa.OpSub, 3, 1, 2), NoProducer)
	r.Dispatch(trace(isa.OpXor, 3, 1, 2), NoProducer)
	r.TruncateAfter(keep.Seq)
	consumer := r.Dispatch(trace(isa.OpOr, 7, 3, 0), NoProducer)
	if consumer.Dep1 != p1.Seq {
		t.Errorf("consumer Dep1 = %d, want %d", consumer.Dep1, p1.Seq)
	}
}

func TestTruncateAfterNoop(t *testing.T) {
	r, _ := New(4)
	e := r.Dispatch(trace(isa.OpAdd, 1, 2, 3), NoProducer)
	r.TruncateAfter(e.Seq) // nothing younger
	if r.Len() != 1 {
		t.Errorf("len = %d", r.Len())
	}
}

func TestLSQTruncateTo(t *testing.T) {
	q, _ := NewLSQ(8)
	q.Dispatch(memTrace(isa.OpLw, 0, 4), 0)
	mark := q.NextSeq()
	q.Dispatch(memTrace(isa.OpSw, 4, 4), 1)
	q.Dispatch(memTrace(isa.OpLw, 8, 4), 2)
	q.TruncateTo(mark)
	if q.Len() != 1 {
		t.Errorf("len = %d, want 1", q.Len())
	}
	// Truncating below the head clamps.
	q.RemoveHead()
	q.TruncateTo(0)
	if q.Len() != 0 {
		t.Errorf("len = %d", q.Len())
	}
}
