// Package config defines machine configurations: the paper's Table 1
// "starting configuration" and the per-figure variants of the evaluation
// (larger RUU/LSQ, wider datapath, extra memory ports, spare functional
// units).
package config

import (
	"fmt"

	"reese/internal/fu"
	"reese/internal/mem"
)

// Machine is a complete processor configuration.
type Machine struct {
	Name string

	// FetchQueueSize is the instruction fetch queue depth (Table 1: 16).
	FetchQueueSize int
	// Width is the maximum instructions per cycle for the in-order
	// pipeline stages: fetch, dispatch, and commit (Table 1: "max IPC
	// for other pipeline stages" = 8).
	Width int
	// IssueWidth is the maximum instructions issued to functional units
	// per cycle (Table 1 sets 8, like the other stages). P-stream and
	// R-stream instructions compete for these slots.
	IssueWidth int
	// RUUSize is the register update unit capacity (Table 1: 16).
	RUUSize int
	// LSQSize is the load/store queue capacity (Table 1: 8, always half
	// the RUU in the paper's sweeps).
	LSQSize int

	// FU is the functional-unit complement.
	FU fu.Config

	// Memory is the cache hierarchy.
	Memory mem.HierarchyConfig

	// Predictor selects the branch predictor kind. The zero value is
	// PredGshare (the paper's Table 1 choice).
	Predictor PredictorKind
	// GshareBits sizes the predictor tables (and history for gshare).
	GshareBits uint32
	// BTBSets and BTBAssoc size the branch target buffer.
	BTBSets, BTBAssoc uint32
	// RASSize is the return-address stack depth.
	RASSize int

	// ModelWrongPath, when set, fetches and executes down mispredicted
	// paths (consuming fetch/dispatch/issue bandwidth, window slots,
	// functional units, and I-cache bandwidth) and squashes them at
	// resolution — instead of the default stall-until-resolve
	// approximation. Off by default: the paper-figure configurations
	// use the stall model.
	ModelWrongPath bool

	// Reese holds the REESE-specific knobs; Reese.Enabled selects the
	// REESE machine over the baseline.
	Reese ReeseConfig
}

// PredictorKind selects a branch-predictor implementation.
type PredictorKind uint8

// Predictor kinds.
const (
	// PredGshare is McFarling's gshare (Table 1's choice).
	PredGshare PredictorKind = iota
	// PredBimodal is a PC-indexed 2-bit counter table.
	PredBimodal
	// PredCombining combines gshare and bimodal with a chooser.
	PredCombining
	// PredStaticTaken always predicts taken.
	PredStaticTaken
	// PredStaticNotTaken always predicts not taken.
	PredStaticNotTaken
)

func (k PredictorKind) String() string {
	switch k {
	case PredGshare:
		return "gshare"
	case PredBimodal:
		return "bimodal"
	case PredCombining:
		return "combining"
	case PredStaticTaken:
		return "static-taken"
	case PredStaticNotTaken:
		return "static-nottaken"
	default:
		return "unknown"
	}
}

// MarshalText encodes the kind as its name, so a Machine serialised to
// JSON (the reese-serve API) says "gshare" rather than 0.
func (k PredictorKind) MarshalText() ([]byte, error) {
	if k > PredStaticNotTaken {
		return nil, fmt.Errorf("config: unknown predictor kind %d", uint8(k))
	}
	return []byte(k.String()), nil
}

// UnmarshalText accepts the names String/MarshalText produce.
func (k *PredictorKind) UnmarshalText(text []byte) error {
	for cand := PredGshare; cand <= PredStaticNotTaken; cand++ {
		if string(text) == cand.String() {
			*k = cand
			return nil
		}
	}
	return fmt.Errorf("config: unknown predictor kind %q", text)
}

// RedundancyMode selects how redundant execution is organised.
type RedundancyMode uint8

// Redundancy modes.
const (
	// ModeRSQ is the paper's contribution: redundant copies issue from
	// the R-stream Queue carrying their operands and results, free of
	// data and control dependencies (§4.2-4.4).
	ModeRSQ RedundancyMode = iota
	// ModeDupDispatch is the cited comparison scheme (Franklin [24]):
	// every instruction is duplicated at the dynamic scheduler. The
	// copy inherits the original's register dependencies, so it
	// schedules no better than the original — the behaviour REESE's
	// dependency-free R stream improves on (§4.4).
	ModeDupDispatch
)

func (m RedundancyMode) String() string {
	if m == ModeDupDispatch {
		return "dup-dispatch"
	}
	return "rsq"
}

// MarshalText encodes the mode as its name ("rsq" / "dup-dispatch").
func (m RedundancyMode) MarshalText() ([]byte, error) {
	if m > ModeDupDispatch {
		return nil, fmt.Errorf("config: unknown redundancy mode %d", uint8(m))
	}
	return []byte(m.String()), nil
}

// UnmarshalText accepts the names String/MarshalText produce.
func (m *RedundancyMode) UnmarshalText(text []byte) error {
	switch string(text) {
	case "rsq":
		*m = ModeRSQ
	case "dup-dispatch":
		*m = ModeDupDispatch
	default:
		return fmt.Errorf("config: unknown redundancy mode %q", text)
	}
	return nil
}

// ReeseConfig are the knobs of the paper's mechanism.
type ReeseConfig struct {
	// Enabled turns on redundant execution with the R-stream Queue.
	Enabled bool
	// Mode selects the redundancy organisation (default ModeRSQ).
	Mode RedundancyMode
	// RSQSize is the R-stream Queue capacity (paper §4.3: initially 32).
	RSQSize int
	// HighWater is the RSQ occupancy at which R-stream instructions get
	// scheduling priority over P-stream instructions, implementing the
	// paper's counter-based overflow avoidance. 0 means "size - width".
	HighWater int
	// ReexecuteEvery re-executes only one in every N instructions
	// (paper §7 future work). 1 (or 0) means every instruction.
	ReexecuteEvery int
	// RESO runs the R stream as recomputation with shifted operands
	// (the paper's §3 reference [15]), extending coverage to permanent
	// functional-unit faults.
	RESO bool
}

// Validate checks the configuration for consistency.
func (m Machine) Validate() error {
	if m.FetchQueueSize < 1 {
		return fmt.Errorf("config %s: fetch queue size %d", m.Name, m.FetchQueueSize)
	}
	if m.Width < 1 {
		return fmt.Errorf("config %s: width %d", m.Name, m.Width)
	}
	if m.IssueWidth < 1 {
		return fmt.Errorf("config %s: issue width %d", m.Name, m.IssueWidth)
	}
	if m.RUUSize < 2 {
		return fmt.Errorf("config %s: RUU size %d", m.Name, m.RUUSize)
	}
	if m.LSQSize < 1 {
		return fmt.Errorf("config %s: LSQ size %d", m.Name, m.LSQSize)
	}
	if err := m.FU.Validate(); err != nil {
		return fmt.Errorf("config %s: %w", m.Name, err)
	}
	if m.GshareBits == 0 {
		return fmt.Errorf("config %s: gshare bits 0", m.Name)
	}
	if m.Reese.Enabled {
		if m.Reese.RSQSize < 1 {
			return fmt.Errorf("config %s: RSQ size %d", m.Name, m.Reese.RSQSize)
		}
		if m.Reese.ReexecuteEvery < 0 {
			return fmt.Errorf("config %s: re-execute every %d", m.Name, m.Reese.ReexecuteEvery)
		}
	}
	return nil
}

// Starting returns the paper's Table 1 starting configuration (baseline:
// REESE disabled).
func Starting() Machine {
	return Machine{
		Name:           "table1-starting",
		FetchQueueSize: 16,
		Width:          8,
		IssueWidth:     8,
		RUUSize:        16,
		LSQSize:        8,
		// Table 1: 4 IntAdd, 1 IntM/D, "Same for FP".
		FU: fu.Config{IntALU: 4, IntMult: 1, MemPort: 2, FPALU: 4, FPMult: 1},
		Memory: mem.HierarchyConfig{
			// 32 KB 2-way L1 data cache, 2-cycle hit (Table 1).
			L1D: mem.CacheConfig{Name: "dl1", SizeBytes: 32 * 1024, BlockBytes: 32, Assoc: 2, HitLatency: 2},
			// 32 KB 2-way L1 instruction cache, 2-cycle hit (Table 1).
			L1I: mem.CacheConfig{Name: "il1", SizeBytes: 32 * 1024, BlockBytes: 32, Assoc: 2, HitLatency: 2},
			// 512 KB 4-way shared L2, 12-cycle hit (Table 1).
			L2: mem.CacheConfig{Name: "ul2", SizeBytes: 512 * 1024, BlockBytes: 64, Assoc: 4, HitLatency: 12},
			// SimpleScalar 2.0 defaults for TLBs and memory.
			ITLB:       mem.TLBConfig{Name: "itlb", Entries: 16, Assoc: 4, PageBytes: 4096, MissLatency: 30},
			DTLB:       mem.TLBConfig{Name: "dtlb", Entries: 32, Assoc: 4, PageBytes: 4096, MissLatency: 30},
			MemLatency: 18,
		},
		GshareBits: 12,
		BTBSets:    512,
		BTBAssoc:   4,
		RASSize:    8,
		Reese: ReeseConfig{
			Enabled:        false,
			RSQSize:        32,
			ReexecuteEvery: 1,
		},
	}
}

// WithName returns a copy renamed to name.
func (m Machine) WithName(name string) Machine {
	m.Name = name
	return m
}

// WithReese returns a copy with REESE enabled.
func (m Machine) WithReese() Machine {
	m.Reese.Enabled = true
	m.Name += "+reese"
	return m
}

// WithSpares returns a copy with spare functional units added (only
// meaningful for REESE machines, but legal on any).
func (m Machine) WithSpares(alus, mults int) Machine {
	m.FU = m.FU.AddSpares(alus, mults)
	if alus > 0 {
		m.Name += fmt.Sprintf("+%dALU", alus)
	}
	if mults > 0 {
		m.Name += fmt.Sprintf("+%dMult", mults)
	}
	return m
}

// WithRUU returns a copy with the RUU resized; the LSQ follows at half
// the RUU size, as in all the paper's sweeps.
func (m Machine) WithRUU(size int) Machine {
	m.RUUSize = size
	m.LSQSize = size / 2
	m.Name += fmt.Sprintf("+ruu%d", size)
	return m
}

// WithWidth returns a copy with the datapath width changed (Figure 4
// doubles it from 8 to 16); the issue width scales with it.
func (m Machine) WithWidth(w int) Machine {
	m.Width = w
	m.IssueWidth = w
	m.Name += fmt.Sprintf("+w%d", w)
	return m
}

// WithMemPorts returns a copy with the memory-port count changed
// (Figure 5 doubles it from 2 to 4).
func (m Machine) WithMemPorts(n int) Machine {
	m.FU.MemPort = n
	m.Name += fmt.Sprintf("+mp%d", n)
	return m
}

// WithFUs returns a copy with the functional-unit complement replaced
// (Figure 7's "more FUs" points double the whole complement).
func (m Machine) WithFUs(c fu.Config) Machine {
	m.FU = c
	m.Name += fmt.Sprintf("+fu(%d,%d,%d)", c.IntALU, c.IntMult, c.MemPort)
	return m
}

// WithDupDispatch returns a copy running the duplicate-at-the-scheduler
// comparison scheme instead of the R-stream Queue.
func (m Machine) WithDupDispatch() Machine {
	m.Reese.Enabled = true
	m.Reese.Mode = ModeDupDispatch
	m.Name += "+dupdispatch"
	return m
}

// WithWrongPath returns a copy that models wrong-path execution after
// branch mispredictions (ablation; the default is the stall model).
func (m Machine) WithWrongPath() Machine {
	m.ModelWrongPath = true
	m.Name += "+wrongpath"
	return m
}

// WithPredictor returns a copy using a different branch predictor
// (ablation; the paper uses gshare throughout).
func (m Machine) WithPredictor(k PredictorKind) Machine {
	m.Predictor = k
	m.Name += "+" + k.String()
	return m
}

// WithRSQHighWater returns a copy with the R-priority threshold changed
// (ablation on the paper's counter logic, §4.3).
func (m Machine) WithRSQHighWater(hw int) Machine {
	m.Reese.HighWater = hw
	m.Name += fmt.Sprintf("+hw%d", hw)
	return m
}

// WithRSQ returns a copy with the R-stream Queue resized (ablation).
func (m Machine) WithRSQ(size int) Machine {
	m.Reese.RSQSize = size
	m.Name += fmt.Sprintf("+rsq%d", size)
	return m
}

// WithRESO returns a copy whose R stream recomputes with shifted
// operands (detects permanent functional-unit faults; reference [15]).
func (m Machine) WithRESO() Machine {
	m.Reese.RESO = true
	m.Name += "+reso"
	return m
}

// WithPartialReexec returns a copy re-executing one in every n
// instructions (paper §7 future work; n=1 is full coverage).
func (m Machine) WithPartialReexec(n int) Machine {
	m.Reese.ReexecuteEvery = n
	m.Name += fmt.Sprintf("+partial%d", n)
	return m
}
