package pipeline

import (
	"testing"

	"reese/internal/config"
	"reese/internal/fault"
)

func TestDupDispatchCorrectness(t *testing.T) {
	src := loopProgram(500)
	want := oracleCount(t, src)
	res := runOn(t, config.Starting().WithDupDispatch(), src, nil)
	if !res.Halted {
		t.Fatal("did not halt")
	}
	if res.Committed != want {
		t.Errorf("committed %d, want %d", res.Committed, want)
	}
}

func TestDupDispatchDetectsFaults(t *testing.T) {
	src := loopProgram(300)
	want := oracleCount(t, src)
	inj := &fault.AtSeq{Seq: 200, Bit: 9}
	res := runOn(t, config.Starting().WithDupDispatch(), src, inj)
	if res.FaultsInjected != 1 {
		t.Fatalf("injected %d", res.FaultsInjected)
	}
	if res.FaultsDetected != 1 {
		t.Errorf("detected %d, want 1", res.FaultsDetected)
	}
	if res.Committed != want {
		t.Errorf("committed %d, want %d after recovery", res.Committed, want)
	}
	if res.DetectionLatencyMean <= 0 {
		t.Error("detection latency should be positive")
	}
}

// TestDupDispatchSlowerThanReese quantifies the paper's §4.4 argument:
// a dependency-inheriting duplicate stream (Franklin [24], the cited
// comparison) holds its window slots for the original's full latency
// and schedules no better, while REESE's R-stream copies carry their
// operands and vacate quickly. On real window-bound workloads REESE
// must beat duplicate-at-dispatch.
func TestDupDispatchSlowerThanReese(t *testing.T) {
	var reeseC, dupC uint64
	for _, name := range []string{"gcc", "li"} {
		r, err := runWorkloadImpl(config.Starting().WithReese(), name)
		if err != nil {
			t.Fatal(err)
		}
		d, err := runWorkloadImpl(config.Starting().WithDupDispatch(), name)
		if err != nil {
			t.Fatal(err)
		}
		reeseC += r.Cycles
		dupC += d.Cycles
	}
	if reeseC >= dupC {
		t.Errorf("REESE (%d cycles) should beat duplicate-at-dispatch (%d): the R stream has no dependencies",
			reeseC, dupC)
	}
}

func TestDupDispatchOnWorkloads(t *testing.T) {
	for _, name := range []string{"gcc", "vortex"} {
		name := name
		t.Run(name, func(t *testing.T) {
			res, err := runWorkloadImpl(config.Starting().WithDupDispatch(), name)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Halted {
				t.Fatal("did not halt")
			}
			base, err := runWorkloadImpl(config.Starting(), name)
			if err != nil {
				t.Fatal(err)
			}
			if res.Committed != base.Committed {
				t.Errorf("committed %d vs baseline %d", res.Committed, base.Committed)
			}
			if res.Cycles <= base.Cycles {
				t.Errorf("dup-dispatch should be slower than baseline")
			}
		})
	}
}

func TestDupDispatchWithWrongPath(t *testing.T) {
	want := oracleCount(t, erraticBranches)
	res := runOn(t, config.Starting().WithDupDispatch().WithWrongPath(), erraticBranches, nil)
	if !res.Halted || res.Committed != want {
		t.Errorf("halted=%v committed=%d want=%d", res.Halted, res.Committed, want)
	}
}

// TestDupDispatchCommonModeBlindSpot documents pure duplication's
// weakness: a fault that corrupts both copies identically (a permanent
// fault hitting the same computation twice) passes the pair comparator
// and retires silently. REESE's comparator recomputes from the carried
// operands, so the same fault is detected and escalated (§4.3).
func TestDupDispatchCommonModeBlindSpot(t *testing.T) {
	src := loopProgram(50)
	prog := mustProg(t, src)
	pc := prog.Symbols["loop"]
	cpu, err := New(config.Starting().WithDupDispatch(), prog, &stuckAtPC{pc: pc})
	if err != nil {
		t.Fatal(err)
	}
	res, err := cpu.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.PermError {
		t.Error("identically-corrupted pairs cannot be distinguished; no permanent-error stop expected")
	}
	if res.FaultsSilent == 0 {
		t.Error("common-mode corruption should retire silently (and be counted)")
	}

	// The same fault on the REESE machine is detected every time and
	// escalates to a permanent-error stop.
	prog2 := mustProg(t, src)
	cpu2, err := New(config.Starting().WithReese(), prog2, &stuckAtPC{pc: pc})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := cpu2.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.PermError {
		t.Error("REESE should detect the recurring fault and stop")
	}
}
