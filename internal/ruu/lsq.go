package ruu

import (
	"fmt"

	"reese/internal/emu"
)

// LSQEntry is one in-flight memory instruction in the load/store queue.
type LSQEntry struct {
	// MemSeq is the memory-order sequence number (slot key).
	MemSeq uint64
	// Seq is the owning instruction's RUU sequence number.
	Seq uint64
	// IsStore distinguishes stores from loads.
	IsStore bool
	// Addr and Width describe the access (known from the oracle; the
	// timing model releases them when the instruction issues).
	Addr  uint32
	Width uint32

	// Issued is set when the owning instruction issues (address and, for
	// stores, data are then known to the queue).
	Issued bool
	// Forwarded marks loads satisfied by store-to-load forwarding.
	Forwarded bool
}

// LSQ is the load/store queue: memory instructions in program order.
// Entries are freed at commit (baseline) or after R-stream verification
// (REESE), which is what makes the LSQ a REESE pressure point.
type LSQ struct {
	slots   []LSQEntry
	size    uint64
	headSeq uint64
	nextSeq uint64
}

// NewLSQ builds a load/store queue with the given capacity.
func NewLSQ(size int) (*LSQ, error) {
	if size < 1 {
		return nil, fmt.Errorf("ruu: lsq size %d too small", size)
	}
	return &LSQ{slots: make([]LSQEntry, size), size: uint64(size)}, nil
}

// Len returns the number of resident entries.
func (q *LSQ) Len() int { return int(q.nextSeq - q.headSeq) }

// Cap returns the capacity.
func (q *LSQ) Cap() int { return int(q.size) }

// Full reports whether dispatch of a memory instruction must stall.
func (q *LSQ) Full() bool { return q.nextSeq-q.headSeq >= q.size }

// Empty reports whether the queue is empty.
func (q *LSQ) Empty() bool { return q.nextSeq == q.headSeq }

// Resident reports whether memSeq is still queued.
func (q *LSQ) Resident(memSeq uint64) bool {
	return memSeq >= q.headSeq && memSeq < q.nextSeq
}

// Get returns the resident entry with sequence memSeq.
func (q *LSQ) Get(memSeq uint64) *LSQEntry {
	if !q.Resident(memSeq) {
		panic(fmt.Sprintf("ruu: LSQ.Get(%d) not resident [%d,%d)", memSeq, q.headSeq, q.nextSeq))
	}
	return &q.slots[memSeq%q.size]
}

// Dispatch allocates the tail entry for the memory instruction in tr.
// It returns nil if the queue is full.
func (q *LSQ) Dispatch(tr emu.Trace, seq uint64) *LSQEntry {
	if q.Full() {
		return nil
	}
	ms := q.nextSeq
	e := &q.slots[ms%q.size]
	*e = LSQEntry{
		MemSeq:  ms,
		Seq:     seq,
		IsStore: tr.Inst.Op.IsStore(),
		Addr:    tr.Addr,
		Width:   tr.MemWidth,
	}
	q.nextSeq = ms + 1
	return e
}

// overlap reports whether two accesses touch any common byte.
func overlap(a1 uint32, w1 uint32, a2 uint32, w2 uint32) bool {
	return a1 < a2+w2 && a2 < a1+w1
}

// LoadDisposition classifies how a load may proceed.
type LoadDisposition uint8

// Load dispositions.
const (
	// LoadBlocked: an earlier store's address is still unknown; the load
	// must wait (conservative memory disambiguation).
	LoadBlocked LoadDisposition = iota
	// LoadForward: an earlier resident store to an overlapping address
	// supplies the value directly (1-cycle forwarding).
	LoadForward
	// LoadFromCache: no conflicts; the load accesses the data cache.
	LoadFromCache
)

// CheckLoad decides the disposition of the load with sequence memSeq
// against all earlier resident stores.
func (q *LSQ) CheckLoad(memSeq uint64) LoadDisposition {
	e := q.Get(memSeq)
	disp := LoadFromCache
	for ms := q.headSeq; ms < memSeq; ms++ {
		s := &q.slots[ms%q.size]
		if !s.IsStore {
			continue
		}
		if !s.Issued {
			// Unknown address: conservatively block.
			return LoadBlocked
		}
		if overlap(s.Addr, s.Width, e.Addr, e.Width) {
			// Youngest matching store wins; keep scanning so a later
			// unissued store can still block.
			disp = LoadForward
		}
	}
	return disp
}

// RemoveHead pops the oldest entry.
func (q *LSQ) RemoveHead() LSQEntry {
	if q.Empty() {
		panic("ruu: RemoveHead on empty LSQ")
	}
	e := q.slots[q.headSeq%q.size]
	q.headSeq++
	return e
}

// Head returns the oldest entry, or nil when empty.
func (q *LSQ) Head() *LSQEntry {
	if q.Empty() {
		return nil
	}
	return &q.slots[q.headSeq%q.size]
}

// Flush discards all entries.
func (q *LSQ) Flush() { q.headSeq = q.nextSeq }

// TruncateTo squashes every entry with sequence >= memSeq (the
// wrong-path tail).
func (q *LSQ) TruncateTo(memSeq uint64) {
	if memSeq < q.headSeq {
		memSeq = q.headSeq
	}
	if memSeq < q.nextSeq {
		q.nextSeq = memSeq
	}
}

// NextSeq returns the sequence number the next dispatched memory
// instruction will receive.
func (q *LSQ) NextSeq() uint64 { return q.nextSeq }
