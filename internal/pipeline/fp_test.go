package pipeline

import (
	"testing"

	"reese/internal/config"
	"reese/internal/fault"
	"reese/internal/fu"
	"reese/internal/workload"
)

// fpLoop is a small FP kernel: a multiply-add recurrence plus FP memory
// traffic, rescaled to stay finite.
func fpLoop(iters int) string {
	return `
		li r9, ` + itoa(iters) + `
		li r1, 2
		fcvtsw f1, r1        ; 2.0
		li r1, 1
		fcvtsw f2, r1        ; acc = 1.0
		la r8, buf
	loop:
		fmul f3, f2, f1
		fadd f2, f3, f2
		swf f2, 0(r8)
		lwf f4, 0(r8)
		fdiv f2, f2, f1      ; keep the accumulator bounded
		fdiv f2, f2, f1
		addi r9, r9, -1
		bne r9, r0, loop
		fcvtws r2, f2
		out r2
		halt
	.data
	buf:
		.space 8
	`
}

func TestFPThroughBaselinePipeline(t *testing.T) {
	src := fpLoop(500)
	want := oracleCount(t, src)
	res := runOn(t, config.Starting(), src, nil)
	if !res.Halted || res.Committed != want {
		t.Fatalf("halted=%v committed=%d want=%d", res.Halted, res.Committed, want)
	}
}

func TestFPThroughReesePipeline(t *testing.T) {
	src := fpLoop(500)
	want := oracleCount(t, src)
	res := runOn(t, config.Starting().WithReese(), src, nil)
	if !res.Halted || res.Committed != want {
		t.Fatalf("halted=%v committed=%d want=%d", res.Halted, res.Committed, want)
	}
	if res.Reese.Mismatches != 0 {
		t.Errorf("clean FP run mismatched %d times — FP comparator broken", res.Reese.Mismatches)
	}
	if res.Reese.Verified != want {
		t.Errorf("verified %d of %d FP-program instructions", res.Reese.Verified, want)
	}
}

func TestFPFaultDetected(t *testing.T) {
	src := fpLoop(300)
	want := oracleCount(t, src)
	inj := &fault.AtSeq{Seq: 500, Bit: 22} // a mantissa bit
	res := runOn(t, config.Starting().WithReese(), src, inj)
	if res.FaultsInjected != 1 || res.FaultsDetected != 1 {
		t.Errorf("FP fault: injected=%d detected=%d", res.FaultsInjected, res.FaultsDetected)
	}
	if res.Committed != want {
		t.Errorf("committed %d, want %d after recovery", res.Committed, want)
	}
}

func TestFPDivNonPipelined(t *testing.T) {
	// Back-to-back dependent FP divides run at the divide latency.
	src := `
		li r9, 300
		li r1, 1
		fcvtsw f1, r1
		li r1, 2
		fcvtsw f2, r1
	loop:
		fdiv f1, f1, f2
		fmul f1, f1, f2      ; undo, keeping the value at 1.0
		addi r9, r9, -1
		bne r9, r0, loop
		halt
	`
	res := runOn(t, config.Starting(), src, nil)
	cpi := float64(res.Cycles) / 300
	// fdiv 12 + fmul 4 dependent: ~16 cycles per iteration.
	if cpi < 13 || cpi > 20 {
		t.Errorf("FP divide chain: %.1f cycles/iteration, want ~16", cpi)
	}
}

func TestFPUnitsSeparateFromInteger(t *testing.T) {
	// An FP-heavy loop and integer work overlap: the FP units are a
	// separate resource, so mixing both should beat running the FP part
	// on a machine where integer work also competes... verify simply
	// that FP work does not consume integer ALUs: integer-only IPC of a
	// mixed loop stays high.
	src := `
		li r9, 1000
		li r1, 3
		fcvtsw f1, r1
	loop:
		fmul f2, f1, f1
		fadd f3, f2, f1
		add r2, r9, r9
		add r3, r9, r9
		add r4, r9, r9
		add r5, r9, r9
		addi r9, r9, -1
		bne r9, r0, loop
		halt
	`
	res := runOn(t, config.Starting(), src, nil)
	// The control: the same loop with the FP pair replaced by integer
	// multiplies, which must share the single integer multiplier and
	// the ALUs. If FP ops ran on integer resources the two loops would
	// perform alike; with separate FP units the FP version wins.
	intSrc := `
		li r9, 1000
		li r1, 3
	loop:
		mul r6, r1, r1
		mul r7, r6, r1
		add r2, r9, r9
		add r3, r9, r9
		add r4, r9, r9
		add r5, r9, r9
		addi r9, r9, -1
		bne r9, r0, loop
		halt
	`
	intRes := runOn(t, config.Starting(), intSrc, nil)
	if res.IPC <= intRes.IPC {
		t.Errorf("mixed FP/int IPC %.3f should beat int-mult version %.3f (separate FP units)", res.IPC, intRes.IPC)
	}
}

func TestMachineWithoutFPUnitsRejectsFPProgramGracefully(t *testing.T) {
	cfg := config.Starting()
	cfg.FU = fu.Config{IntALU: 4, IntMult: 1, MemPort: 2} // no FP units
	cpu, err := New(cfg, mustProg(t, fpLoop(10)), nil)
	if err != nil {
		t.Fatal(err)
	}
	// The FP instructions can never issue, so nothing commits past the
	// integer prologue; the no-commit watchdog must terminate the run
	// and flag it as hanged instead of spinning to the cycle cap.
	res, err := cpu.Run(1000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Hanged {
		t.Error("running FP code with no FP units should trip the no-commit watchdog (Result.Hanged)")
	}
}

func TestFpmixWorkloadOnBothMachines(t *testing.T) {
	spec, ok := workload.ByName("fpmix")
	if !ok {
		t.Fatal("fpmix not registered")
	}
	for _, cfg := range []config.Machine{config.Starting(), config.Starting().WithReese()} {
		prog := spec.MustBuild(20)
		cpu, err := New(cfg, prog, nil)
		if err != nil {
			t.Fatal(err)
		}
		res, err := cpu.Run(0)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Halted {
			t.Fatalf("%s: fpmix did not halt", cfg.Name)
		}
		if res.Reese != nil && res.Reese.Mismatches != 0 {
			t.Errorf("%s: fpmix mismatches %d", cfg.Name, res.Reese.Mismatches)
		}
	}
}
