// Package chaos is the fault-injection harness for reese-serve. It
// drives a live server (httptest, real HTTP) through worker panics,
// hung attempts, client disconnects, and kill/restart cycles, then
// asserts the self-healing invariants: every accepted job reaches a
// terminal state, no job is lost or duplicated, done jobs carry
// cache-verifiable results, and the journal replays cleanly after
// every crash.
//
// The package itself holds the reusable machinery — the seeded fault
// injector that plugs into server.Config.BeforeAttempt and a minimal
// API client; the scenarios live in chaos_test.go.
package chaos

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"reese/internal/server"
)

// Injector decides, per job attempt, whether to misbehave: panic (a
// worker crash the server must contain) or stall (a hang the watchdog
// must kill). Rolls come from a seeded PRNG so a failing run can be
// reproduced; counts of what was actually injected are kept so tests
// can reconcile them against the server's failure metrics.
type Injector struct {
	mu        sync.Mutex
	rng       *rand.Rand
	panicProb float64
	stallProb float64
	// firstOnly restricts injection to attempt 1, guaranteeing retries
	// succeed — the deterministic recovery scenarios. When false every
	// attempt rolls, and jobs may legitimately exhaust their retries.
	firstOnly bool

	panics atomic.Int64
	stalls atomic.Int64
}

// NewInjector seeds an injector. panicProb and panicProb+stallProb
// partition [0,1): a roll below panicProb panics, below the sum stalls,
// otherwise the attempt runs normally.
func NewInjector(seed int64, panicProb, stallProb float64, firstAttemptOnly bool) *Injector {
	return &Injector{
		rng:       rand.New(rand.NewSource(seed)),
		panicProb: panicProb,
		stallProb: stallProb,
		firstOnly: firstAttemptOnly,
	}
}

// Hook is the server.Config.BeforeAttempt plug. A stall blocks until
// the attempt's context dies (deadline, watchdog, or cancel) — exactly
// what a livelocked simulation looks like from the worker's side.
func (i *Injector) Hook(ctx context.Context, jobID, kind string, attempt int) {
	if i.firstOnly && attempt > 1 {
		return
	}
	i.mu.Lock()
	roll := i.rng.Float64()
	i.mu.Unlock()
	switch {
	case roll < i.panicProb:
		i.panics.Add(1)
		panic(fmt.Sprintf("chaos: injected panic (%s %s attempt %d)", kind, jobID, attempt))
	case roll < i.panicProb+i.stallProb:
		i.stalls.Add(1)
		<-ctx.Done()
	}
}

// Panics reports how many panics the injector has thrown.
func (i *Injector) Panics() int64 { return i.panics.Load() }

// Stalls reports how many attempts the injector has hung.
func (i *Injector) Stalls() int64 { return i.stalls.Load() }

// Client is a minimal reese-serve API client for the chaos suite.
type Client struct {
	Base string
	HTTP *http.Client
}

// NewClient wraps a server base URL.
func NewClient(base string) *Client {
	return &Client{Base: base, HTTP: http.DefaultClient}
}

// Submit POSTs a request body to /v1/<kind> (plus an optional raw query
// like "wait=30s") and decodes the JobView. Any 2xx is success; other
// statuses return an error carrying the body.
func (c *Client) Submit(kind string, body any, query string) (server.JobView, error) {
	raw, err := json.Marshal(body)
	if err != nil {
		return server.JobView{}, err
	}
	url := c.Base + "/v1/" + kind
	if query != "" {
		url += "?" + query
	}
	resp, err := c.HTTP.Post(url, "application/json", strings.NewReader(string(raw)))
	if err != nil {
		return server.JobView{}, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return server.JobView{}, err
	}
	var v server.JobView
	if jerr := json.Unmarshal(data, &v); jerr == nil && v.ID != "" {
		// Failed jobs answer a waited submit with 500 + the JobView; that
		// is a delivered outcome, not a transport error.
		return v, nil
	}
	return server.JobView{}, fmt.Errorf("POST %s: status %d: %s", url, resp.StatusCode, data)
}

// Job GETs one job by ID.
func (c *Client) Job(id string) (server.JobView, error) {
	resp, err := c.HTTP.Get(c.Base + "/v1/jobs/" + id)
	if err != nil {
		return server.JobView{}, err
	}
	defer resp.Body.Close()
	var v server.JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return server.JobView{}, fmt.Errorf("GET job %s: %w", id, err)
	}
	return v, nil
}

// Jobs GETs the full job list.
func (c *Client) Jobs() ([]server.JobView, error) {
	resp, err := c.HTTP.Get(c.Base + "/v1/jobs")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var vs []server.JobView
	if err := json.NewDecoder(resp.Body).Decode(&vs); err != nil {
		return nil, err
	}
	return vs, nil
}

// AwaitTerminal polls a job until it reaches a terminal state or the
// timeout expires.
func (c *Client) AwaitTerminal(id string, timeout time.Duration) (server.JobView, error) {
	deadline := time.Now().Add(timeout)
	for {
		v, err := c.Job(id)
		if err != nil {
			return v, err
		}
		if v.State == server.StateDone || v.State == server.StateFailed || v.State == server.StateCanceled {
			return v, nil
		}
		if time.Now().After(deadline) {
			return v, fmt.Errorf("job %s still %q after %s", id, v.State, timeout)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// Counter scrapes /metrics and sums every sample of the named counter
// family (label-less counters have exactly one).
func (c *Client) Counter(name string) (uint64, error) {
	resp, err := c.HTTP.Get(c.Base + "/metrics")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, err
	}
	var total uint64
	found := false
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, name) {
			continue
		}
		rest := line[len(name):]
		if !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "{") {
			continue // a longer family name sharing the prefix
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		n, perr := strconv.ParseUint(fields[len(fields)-1], 10, 64)
		if perr != nil {
			continue
		}
		total += n
		found = true
	}
	if !found {
		return 0, fmt.Errorf("metric %s not exposed", name)
	}
	return total, nil
}
