package isa

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestOpTableComplete(t *testing.T) {
	for _, op := range Ops() {
		if op.String() == "" || strings.HasPrefix(op.String(), "op(") {
			t.Errorf("op %d has no mnemonic", op)
		}
		if op.Class() == ClassNone {
			t.Errorf("op %s has no functional-unit class", op)
		}
		if op.OpLatency() < 1 {
			t.Errorf("op %s has latency %d < 1", op, op.OpLatency())
		}
		if op.IssueLatency() < 1 {
			t.Errorf("op %s has issue latency %d < 1", op, op.IssueLatency())
		}
	}
}

func TestOpByNameRoundTrip(t *testing.T) {
	for _, op := range Ops() {
		got, ok := OpByName(op.String())
		if !ok {
			t.Fatalf("OpByName(%q) not found", op.String())
		}
		if got != op {
			t.Errorf("OpByName(%q) = %v, want %v", op.String(), got, op)
		}
	}
	if _, ok := OpByName("bogus"); ok {
		t.Error("OpByName accepted unknown mnemonic")
	}
}

func TestOpClassification(t *testing.T) {
	tests := []struct {
		op                              Op
		load, store, branch, jump, ctrl bool
	}{
		{OpAdd, false, false, false, false, false},
		{OpLw, true, false, false, false, false},
		{OpSb, false, true, false, false, false},
		{OpBeq, false, false, true, false, true},
		{OpJ, false, false, false, true, true},
		{OpJalr, false, false, false, true, true},
		{OpHalt, false, false, false, false, false},
	}
	for _, tt := range tests {
		if got := tt.op.IsLoad(); got != tt.load {
			t.Errorf("%s.IsLoad() = %v", tt.op, got)
		}
		if got := tt.op.IsStore(); got != tt.store {
			t.Errorf("%s.IsStore() = %v", tt.op, got)
		}
		if got := tt.op.IsBranch(); got != tt.branch {
			t.Errorf("%s.IsBranch() = %v", tt.op, got)
		}
		if got := tt.op.IsJump(); got != tt.jump {
			t.Errorf("%s.IsJump() = %v", tt.op, got)
		}
		if got := tt.op.IsControl(); got != tt.ctrl {
			t.Errorf("%s.IsControl() = %v", tt.op, got)
		}
	}
}

func TestMultClassLatencies(t *testing.T) {
	if OpMul.Class() != ClassIntMult || OpDiv.Class() != ClassIntMult {
		t.Fatal("mul/div must use the IntMult class")
	}
	if OpMul.OpLatency() >= OpDiv.OpLatency() {
		t.Errorf("divide (%d) should be slower than multiply (%d)", OpDiv.OpLatency(), OpMul.OpLatency())
	}
	if OpDiv.IssueLatency() <= 1 {
		t.Error("divide should not be fully pipelined")
	}
}

// randomInstruction builds a random but encodable instruction.
func randomInstruction(r *rand.Rand) Instruction {
	ops := Ops()
	in := Instruction{
		Op:  ops[r.Intn(len(ops))],
		Rd:  Reg(r.Intn(NumRegs)),
		Rs1: Reg(r.Intn(NumRegs)),
		Rs2: Reg(r.Intn(NumRegs)),
	}
	switch in.Op.Format() {
	case FormatI, FormatS, FormatB:
		if logicalImm(in.Op) {
			in.Imm = int32(r.Intn(MaxUimm16 + 1))
		} else {
			in.Imm = int32(r.Intn(MaxImm16-MinImm16+1)) + MinImm16
		}
	case FormatJ:
		in.Imm = int32(r.Intn(MaxImm26-MinImm26+1)) + MinImm26
	}
	return in
}

// normalize zeroes the fields a format does not encode, so round-trip
// comparison is meaningful.
func normalize(in Instruction) Instruction {
	out := Instruction{Op: in.Op}
	switch in.Op.Format() {
	case FormatR:
		out.Rd, out.Rs1, out.Rs2 = in.Rd, in.Rs1, in.Rs2
	case FormatI:
		out.Rd, out.Rs1, out.Imm = in.Rd, in.Rs1, in.Imm
	case FormatS, FormatB:
		out.Rs1, out.Rs2, out.Imm = in.Rs1, in.Rs2, in.Imm
	case FormatJ:
		out.Imm = in.Imm
	}
	return out
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		in := normalize(randomInstruction(r))
		w, err := Encode(in)
		if err != nil {
			t.Fatalf("Encode(%v): %v", in, err)
		}
		got, err := Decode(w)
		if err != nil {
			t.Fatalf("Decode(%#08x): %v", w, err)
		}
		if got != in {
			t.Fatalf("round trip: encoded %+v, decoded %+v (word %#08x)", in, got, w)
		}
	}
}

func TestDecodeRejectsInvalidOpcode(t *testing.T) {
	// Opcode 0 is the only invalid encoding: the FP extension filled
	// the 6-bit opcode space exactly (the compile-time guard in
	// opcodes.go keeps it that way).
	if _, err := Decode(0); err == nil {
		t.Error("Decode(0) should fail: opcode 0 is invalid")
	}
}

func TestEncodeRejectsOutOfRange(t *testing.T) {
	cases := []Instruction{
		{Op: OpInvalid},
		{Op: OpAddi, Imm: MaxImm16 + 1},
		{Op: OpAddi, Imm: MinImm16 - 1},
		{Op: OpSw, Imm: MaxImm16 + 1},
		{Op: OpJ, Imm: MaxImm26 + 1},
		{Op: OpJ, Imm: MinImm26 - 1},
		{Op: OpAdd, Rd: NumRegs},
		{Op: OpAdd, Rs1: 200},
	}
	for _, in := range cases {
		if _, err := Encode(in); err == nil {
			t.Errorf("Encode(%+v) should fail", in)
		}
	}
}

func TestSignExtension(t *testing.T) {
	w := MustEncode(Instruction{Op: OpAddi, Rd: 1, Rs1: 2, Imm: -1})
	in, err := Decode(w)
	if err != nil {
		t.Fatal(err)
	}
	if in.Imm != -1 {
		t.Errorf("imm16 sign extension: got %d, want -1", in.Imm)
	}
	w = MustEncode(Instruction{Op: OpJ, Imm: -100})
	in, err = Decode(w)
	if err != nil {
		t.Fatal(err)
	}
	if in.Imm != -100 {
		t.Errorf("imm26 sign extension: got %d, want -100", in.Imm)
	}
}

func TestDest(t *testing.T) {
	if d, ok := (Instruction{Op: OpJal}).Dest(); !ok || d != LinkReg {
		t.Errorf("jal dest = %v,%v; want r31,true", d, ok)
	}
	if _, ok := (Instruction{Op: OpSw}).Dest(); ok {
		t.Error("store should have no destination")
	}
	if d, ok := (Instruction{Op: OpAdd, Rd: 5}).Dest(); !ok || d != 5 {
		t.Errorf("add dest = %v,%v; want r5,true", d, ok)
	}
}

func TestBranchTarget(t *testing.T) {
	in := Instruction{Op: OpBeq, Imm: 3}
	if got := in.BranchTarget(100); got != 100+4+12 {
		t.Errorf("BranchTarget = %d, want %d", got, 116)
	}
	in.Imm = -1
	if got := in.BranchTarget(100); got != 100 {
		t.Errorf("backward BranchTarget = %d, want 100", got)
	}
}

func TestEvalALUBasics(t *testing.T) {
	var (
		neg1 = ^uint32(0)
		neg3 = ^uint32(0) - 2
		neg7 = ^uint32(0) - 6
	)
	tests := []struct {
		op      Op
		a, b    uint32
		imm     int32
		want    uint32
		comment string
	}{
		{OpAdd, 2, 3, 0, 5, "add"},
		{OpSub, 2, 3, 0, 0xffffffff, "sub wraps"},
		{OpMul, 7, 6, 0, 42, "mul"},
		{OpMulh, 0x80000000, 2, 0, 0xffffffff, "mulh signed high"},
		{OpDiv, 7, 2, 0, 3, "div"},
		{OpDiv, neg7, 2, 0, neg3, "signed div"},
		{OpDiv, 5, 0, 0, ^uint32(0), "div by zero"},
		{OpDiv, 0x80000000, neg1, 0, 0x80000000, "div overflow"},
		{OpDivu, 7, 2, 0, 3, "divu"},
		{OpRem, 7, 2, 0, 1, "rem"},
		{OpRem, 5, 0, 0, 5, "rem by zero"},
		{OpRem, 0x80000000, neg1, 0, 0, "rem overflow"},
		{OpRemu, 7, 3, 0, 1, "remu"},
		{OpAnd, 0b1100, 0b1010, 0, 0b1000, "and"},
		{OpOr, 0b1100, 0b1010, 0, 0b1110, "or"},
		{OpXor, 0b1100, 0b1010, 0, 0b0110, "xor"},
		{OpNor, 0, 0, 0, ^uint32(0), "nor"},
		{OpSll, 1, 4, 0, 16, "sll"},
		{OpSll, 1, 36, 0, 16, "sll masks shamt"},
		{OpSrl, 0x80000000, 31, 0, 1, "srl"},
		{OpSra, 0x80000000, 31, 0, ^uint32(0), "sra"},
		{OpSlt, neg1, 0, 0, 1, "slt"},
		{OpSltu, neg1, 0, 0, 0, "sltu"},
		{OpAddi, 10, 0, -3, 7, "addi"},
		{OpAndi, 0xff, 0, 0x0f, 0x0f, "andi"},
		{OpOri, 0xf0, 0, 0x0f, 0xff, "ori"},
		{OpXori, 0xff, 0, 0x0f, 0xf0, "xori"},
		{OpSlti, 5, 0, 6, 1, "slti"},
		{OpSltiu, 5, 0, 4, 0, "sltiu"},
		{OpSlli, 1, 0, 3, 8, "slli"},
		{OpSrli, 16, 0, 2, 4, "srli"},
		{OpSrai, 0x80000000, 0, 1, 0xc0000000, "srai"},
		{OpLui, 0, 0, 0x1234, 0x12340000, "lui"},
	}
	for _, tt := range tests {
		if got := EvalALU(tt.op, tt.a, tt.b, tt.imm); got != tt.want {
			t.Errorf("%s: EvalALU(%s, %#x, %#x, %d) = %#x, want %#x", tt.comment, tt.op, tt.a, tt.b, tt.imm, got, tt.want)
		}
	}
}

func TestBranchTaken(t *testing.T) {
	neg1 := ^uint32(0)
	tests := []struct {
		op   Op
		a, b uint32
		want bool
	}{
		{OpBeq, 1, 1, true},
		{OpBeq, 1, 2, false},
		{OpBne, 1, 2, true},
		{OpBlt, neg1, 0, true},
		{OpBlt, 0, neg1, false},
		{OpBge, 0, 0, true},
		{OpBltu, neg1, 0, false},
		{OpBltu, 0, neg1, true},
		{OpBgeu, neg1, 0, true},
	}
	for _, tt := range tests {
		if got := BranchTaken(tt.op, tt.a, tt.b); got != tt.want {
			t.Errorf("BranchTaken(%s, %#x, %#x) = %v, want %v", tt.op, tt.a, tt.b, got, tt.want)
		}
	}
}

func TestMemWidthAndExtend(t *testing.T) {
	if MemWidth(OpLw) != 4 || MemWidth(OpLh) != 2 || MemWidth(OpSb) != 1 || MemWidth(OpAdd) != 0 {
		t.Error("MemWidth wrong")
	}
	if got := ExtendLoad(OpLb, 0x80); got != 0xffffff80 {
		t.Errorf("lb sign extend = %#x", got)
	}
	if got := ExtendLoad(OpLbu, 0x80); got != 0x80 {
		t.Errorf("lbu zero extend = %#x", got)
	}
	if got := ExtendLoad(OpLh, 0x8000); got != 0xffff8000 {
		t.Errorf("lh sign extend = %#x", got)
	}
	if got := ExtendLoad(OpLhu, 0x8000); got != 0x8000 {
		t.Errorf("lhu zero extend = %#x", got)
	}
}

// Property: EvalALU is deterministic — re-evaluating the same operation on
// the same operands always yields the same result. This is the property
// REESE's comparator depends on: without an injected fault, P and R
// executions must agree bit-for-bit.
func TestEvalALUDeterministic(t *testing.T) {
	ops := Ops()
	f := func(opIdx uint8, a, b uint32, imm int16) bool {
		op := ops[int(opIdx)%len(ops)]
		x := EvalALU(op, a, b, int32(imm))
		y := EvalALU(op, a, b, int32(imm))
		return x == y
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// Property: add/sub and shift pairs invert each other where defined.
func TestEvalALUAlgebra(t *testing.T) {
	f := func(a, b uint32) bool {
		if EvalALU(OpSub, EvalALU(OpAdd, a, b, 0), b, 0) != a {
			return false
		}
		if EvalALU(OpXor, EvalALU(OpXor, a, b, 0), b, 0) != a {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: div/rem satisfy a = q*b + r for non-zero, non-overflow cases.
func TestDivRemIdentity(t *testing.T) {
	f := func(a, b uint32) bool {
		if b == 0 {
			return true
		}
		if int32(a) == -1<<31 && int32(b) == -1 {
			return true
		}
		q := EvalALU(OpDiv, a, b, 0)
		r := EvalALU(OpRem, a, b, 0)
		return int32(q)*int32(b)+int32(r) == int32(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestDisassembly(t *testing.T) {
	tests := []struct {
		in   Instruction
		want string
	}{
		{Instruction{Op: OpAdd, Rd: 1, Rs1: 2, Rs2: 3}, "add r1, r2, r3"},
		{Instruction{Op: OpAddi, Rd: 1, Rs1: 2, Imm: -5}, "addi r1, r2, -5"},
		{Instruction{Op: OpLw, Rd: 4, Rs1: 29, Imm: 8}, "lw r4, 8(r29)"},
		{Instruction{Op: OpSw, Rs2: 4, Rs1: 29, Imm: -4}, "sw r4, -4(r29)"},
		{Instruction{Op: OpBeq, Rs1: 1, Rs2: 2, Imm: 10}, "beq r1, r2, 10"},
		{Instruction{Op: OpJ, Imm: -3}, "j -3"},
		{Instruction{Op: OpJr, Rs1: 31}, "jr r31"},
		{Instruction{Op: OpJalr, Rd: 31, Rs1: 5}, "jalr r31, r5"},
		{Instruction{Op: OpLui, Rd: 7, Imm: 16}, "lui r7, 16"},
		{Instruction{Op: OpHalt}, "halt"},
		{Instruction{Op: OpOut, Rs1: 3}, "out r3"},
	}
	for _, tt := range tests {
		if got := tt.in.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestRegString(t *testing.T) {
	if RegZero.String() != "r0" || LinkReg.String() != "r31" {
		t.Error("register names wrong")
	}
	if !Reg(31).Valid() || Reg(32).Valid() {
		t.Error("register validity wrong")
	}
}
