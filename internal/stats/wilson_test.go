package stats

import (
	"math"
	"testing"
)

func TestWilsonDegenerateCases(t *testing.T) {
	// No observations: the interval must be vacuous, not NaN.
	lo, hi := Wilson95(0, 0)
	if lo != 0 || hi != 1 {
		t.Errorf("Wilson95(0, 0) = [%v, %v], want [0, 1]", lo, hi)
	}

	// Zero successes pin the lower bound to 0 exactly; the upper bound
	// must still be positive (we cannot rule the event out).
	lo, hi = Wilson95(0, 50)
	if lo != 0 {
		t.Errorf("Wilson95(0, 50) lo = %v, want 0", lo)
	}
	if hi <= 0 || hi >= 0.2 {
		t.Errorf("Wilson95(0, 50) hi = %v, want small positive", hi)
	}

	// All successes mirror that at the top.
	lo, hi = Wilson95(50, 50)
	if math.Abs(hi-1) > 1e-12 {
		t.Errorf("Wilson95(50, 50) hi = %v, want 1", hi)
	}
	if lo >= 1 || lo <= 0.8 {
		t.Errorf("Wilson95(50, 50) lo = %v, want just below 1", lo)
	}
}

func TestWilsonContainsPointEstimate(t *testing.T) {
	for _, tc := range []struct{ k, n uint64 }{
		{1, 10}, {5, 10}, {9, 10}, {50, 100}, {997, 1000},
	} {
		lo, hi := Wilson95(tc.k, tc.n)
		p := float64(tc.k) / float64(tc.n)
		if p < lo || p > hi {
			t.Errorf("Wilson95(%d, %d) = [%v, %v] excludes p̂=%v", tc.k, tc.n, lo, hi, p)
		}
		if lo < 0 || hi > 1 {
			t.Errorf("Wilson95(%d, %d) = [%v, %v] escapes [0,1]", tc.k, tc.n, lo, hi)
		}
	}
}

func TestWilsonNarrowsWithSampleSize(t *testing.T) {
	lo1, hi1 := Wilson95(8, 10)
	lo2, hi2 := Wilson95(800, 1000)
	if (hi2 - lo2) >= (hi1 - lo1) {
		t.Errorf("interval should narrow with n: n=10 width %v, n=1000 width %v", hi1-lo1, hi2-lo2)
	}
}

func TestWilsonKnownValue(t *testing.T) {
	// Classic reference point: 50% at n=100 with z=1.96 gives roughly
	// [0.404, 0.596].
	lo, hi := Wilson(50, 100, Z95)
	if math.Abs(lo-0.404) > 0.005 || math.Abs(hi-0.596) > 0.005 {
		t.Errorf("Wilson(50, 100) = [%v, %v], want ≈[0.404, 0.596]", lo, hi)
	}
}
