// Fault injection: flip bits in instruction results mid-flight and
// watch REESE detect and recover, while the undefended baseline commits
// silent data corruption. This is the paper's §4.2-4.3 behaviour.
package main

import (
	"fmt"
	"log"

	"reese"
)

func main() {
	// One surgical fault: bit 7 of the 5000th instruction's result.
	fmt.Println("== single injected fault ==")
	for _, withReese := range []bool{false, true} {
		cfg := reese.StartingConfig()
		if withReese {
			cfg = cfg.WithReese()
		}
		prog, err := reese.Workload("li", 0)
		if err != nil {
			log.Fatal(err)
		}
		res, err := reese.Run(cfg, prog, reese.FaultAt(5000, 7), 100_000)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s injected=%d detected=%d silent=%d recoveries=%d\n",
			res.Config, res.FaultsInjected, res.FaultsDetected, res.FaultsSilent, res.Recoveries)
		if res.FaultsDetected > 0 {
			fmt.Printf("%-28s detected %.0f cycles after the bit flipped (the P->R separation of paper §2)\n",
				"", res.DetectionLatencyMean)
		}
	}

	// A storm of faults: one every 2000 instructions.
	fmt.Println("\n== periodic fault storm (every 2000 instructions) ==")
	prog, err := reese.Workload("li", 0)
	if err != nil {
		log.Fatal(err)
	}
	res, err := reese.Run(reese.StartingConfig().WithReese(), prog, reese.PeriodicFaults(2000), 100_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("REESE: %d/%d faults detected, %d recoveries, IPC %.3f\n",
		res.FaultsDetected, res.FaultsInjected, res.Recoveries, res.IPC)
	fmt.Printf("program still completed %d instructions correctly\n", res.Committed)

	// The statistical campaign API samples faults over (instruction,
	// structure, bit) and classifies each against a golden run.
	fmt.Println("\n== campaign (REESE vs baseline on vortex) ==")
	for _, cfg := range []reese.Config{reese.StartingConfig().WithReese(), reese.StartingConfig()} {
		c, err := reese.Campaign(reese.CampaignSpec{
			Workload:   "vortex",
			Machine:    cfg,
			Injections: 60,
			Seed:       7,
		}, reese.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s coverage %.0f%% [%.0f%%, %.0f%%]  detected=%d recovered=%d sdc=%d masked=%d hang=%d\n",
			c.Config, c.Coverage*100, c.CoverageLo*100, c.CoverageHi*100,
			c.Detected, c.Recovered, c.SDC, c.Masked, c.Hang)
	}
}
