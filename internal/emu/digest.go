package emu

import "reese/internal/isa"

// DigestSeed is the FNV-1a offset basis every running digest hash starts
// from; the pipeline's committed-store shadow hash must start from the
// same value to be comparable.
const DigestSeed uint64 = 1469598103934665603

const fnvPrime uint64 = 1099511628211

// mixWord folds one little-endian word into a running FNV-1a hash.
func mixWord(h uint64, w uint32) uint64 {
	for i := 0; i < 4; i++ {
		h ^= uint64(byte(w >> (8 * i)))
		h *= fnvPrime
	}
	return h
}

// MixStore folds one committed store (address, width, raw value) into a
// running FNV-1a hash. Both the emulator and the pipeline's commit stage
// use this, so their store traces hash identically when the committed
// store sequences match.
func MixStore(h uint64, addr, width, value uint32) uint64 {
	h = mixWord(h, addr)
	h = mixWord(h, width)
	return mixWord(h, value)
}

// HashBytes returns the FNV-1a hash of bs, seeded with DigestSeed.
func HashBytes(bs []byte) uint64 {
	h := DigestSeed
	for _, b := range bs {
		h ^= uint64(b)
		h *= fnvPrime
	}
	return h
}

// Digest summarizes a run's architectural outcome: final register files,
// program output, and the full committed-store sequence (as a running
// hash, so no allocation grows with run length). Two runs committed the
// same architectural work iff their Digests are equal — it is a
// comparable struct, so == does the whole check. Fault campaigns compare
// an injected run's digest against the uninjected golden run's to
// classify the outcome.
type Digest struct {
	Committed  uint64
	Halted     bool
	Regs       [isa.NumRegs]uint32
	FRegs      [isa.NumRegs]uint32
	OutLen     uint64
	OutHash    uint64
	StoreCount uint64
	StoreHash  uint64
}

// Digest captures the machine's current architectural summary.
func (m *Machine) Digest() Digest {
	return Digest{
		Committed:  m.icount,
		Halted:     m.halted,
		Regs:       m.regs,
		FRegs:      m.fregs,
		OutLen:     uint64(len(m.output)),
		OutHash:    HashBytes(m.output),
		StoreCount: m.storeCount,
		StoreHash:  m.storeHash,
	}
}

// CorruptPC XORs mask into the fetch PC — a transient in the
// sequencer, outside REESE's sphere of replication. Implements
// fault.ArchState.
func (m *Machine) CorruptPC(mask uint32) { m.pc ^= mask }

// CorruptReg XORs mask into architectural register r. Writes to r0 are
// discarded, as in hardware. Implements fault.ArchState.
func (m *Machine) CorruptReg(r uint8, mask uint32) {
	reg := isa.Reg(r % isa.NumRegs)
	if reg != isa.RegZero {
		m.regs[reg] ^= mask
	}
}

// DestReg reports which register file entry Step wrote tr.Result to,
// mirroring Step's write rules (jal links into LinkReg, FP ops and FP
// loads write the FP file). ok is false when no register was written.
// The pipeline's commit stage uses this to maintain a shadow register
// file from latched values.
func (tr *Trace) DestReg() (r isa.Reg, fp bool, ok bool) {
	if !tr.HasResult {
		return 0, false, false
	}
	op := tr.Inst.Op
	switch {
	case op == isa.OpJal:
		return isa.LinkReg, false, true
	case op == isa.OpJalr:
		return tr.Inst.Rd, false, true
	case op.IsLoad() || op.IsFP():
		return tr.Inst.Rd, op.DestFile() == isa.FileFP, true
	default:
		return tr.Inst.Rd, false, true
	}
}
