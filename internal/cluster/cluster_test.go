package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"reese/internal/config"
	"reese/internal/fault"
	"reese/internal/harness"
	"reese/internal/server"
)

// newWorker starts one in-process reese-serve replica.
func newWorker(t *testing.T, cfg server.Config) (*server.Server, *httptest.Server) {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, ts
}

func newWorkers(t *testing.T, n int) []string {
	t.Helper()
	urls := make([]string, n)
	for i := range urls {
		_, ts := newWorker(t, server.Config{Workers: 1})
		urls[i] = ts.URL
	}
	return urls
}

func testClusterConfig(workers []string) Config {
	return Config{
		Workers:  workers,
		PollWait: 200 * time.Millisecond,
		Logger:   slog.New(slog.NewTextHandler(io.Discard, nil)),
	}
}

// stripWall zeroes the host-dependent fields so reports compare on
// content alone.
func stripWall(r *harness.CampaignReport) *harness.CampaignReport {
	c := *r
	c.WallSeconds = 0
	c.InjectionsPerSec = 0
	return &c
}

// The cluster-level determinism contract, end to end over real HTTP:
// the same campaign run through 1 or 2 worker replicas merges to a
// report byte-identical to the single-process harness run — tallies,
// Wilson CIs, latency aggregates, per-trial JSONL, rendered table.
func TestClusterByteIdenticalToSingleProcess(t *testing.T) {
	machine := config.Starting().WithReese()
	base := harness.CampaignSpec{
		Workload:   "li",
		Machine:    machine,
		Injections: 60,
		Seed:       7,
	}
	single, err := harness.Campaign(base, harness.Options{Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(stripWall(single))
	if err != nil {
		t.Fatal(err)
	}
	var wantJSONL bytes.Buffer
	if err := single.WriteJSONL(&wantJSONL); err != nil {
		t.Fatal(err)
	}

	for _, n := range []int{1, 2} {
		cfg := testClusterConfig(newWorkers(t, n))
		rep, err := Run(context.Background(), cfg, Campaign{
			Workload:   "li",
			Machine:    &machine,
			Injections: 60,
			Seed:       7,
		})
		if err != nil {
			t.Fatalf("%d workers: %v", n, err)
		}
		gotJSON, err := json.Marshal(stripWall(rep))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotJSON, wantJSON) {
			t.Errorf("%d-worker cluster report differs from single-process:\n got %s\nwant %s", n, gotJSON, wantJSON)
		}
		var gotJSONL bytes.Buffer
		if err := rep.WriteJSONL(&gotJSONL); err != nil {
			t.Fatal(err)
		}
		if gotJSONL.String() != wantJSONL.String() {
			t.Errorf("%d-worker cluster JSONL differs from single-process", n)
		}
		if rep.Table() != single.Table() {
			t.Errorf("%d-worker cluster table differs from single-process", n)
		}
	}
}

// The robustness contract: killing a worker mid-campaign loses nothing
// and double-counts nothing — its shards are reassigned to the
// survivor and the merged report is still byte-identical to the
// single-process run. This is the `make cluster-smoke` test.
func TestClusterKillWorkerSmoke(t *testing.T) {
	machine := config.Starting().WithReese()
	const injections = 40
	single, err := harness.Campaign(harness.CampaignSpec{
		Workload:   "gcc",
		Machine:    machine,
		Injections: injections,
		Seed:       11,
	}, harness.Options{Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(stripWall(single))
	if err != nil {
		t.Fatal(err)
	}

	_, tsA := newWorker(t, server.Config{Workers: 1})
	_, tsB := newWorker(t, server.Config{Workers: 1})

	var (
		kill       sync.Once
		mu         sync.Mutex
		reassigned int
		retried    int
	)
	cfg := testClusterConfig([]string{tsA.URL, tsB.URL})
	cfg.MaxAttempts = 50 // the kill causes churn, not a campaign failure
	cfg.OnEvent = func(ev Event) {
		mu.Lock()
		switch ev.Type {
		case "reassigned":
			reassigned++
		case "retried":
			retried++
		}
		mu.Unlock()
		// The first shard assigned to worker B triggers its death: sever
		// every open connection (poll heartbeats included), then close the
		// listener so reconnects are refused — a hard kill.
		if ev.Worker == tsB.URL && ev.Type == "assigned" {
			kill.Do(func() {
				go func() {
					tsB.CloseClientConnections()
					tsB.Close()
				}()
			})
		}
	}
	rep, err := Run(context.Background(), cfg, Campaign{
		Workload:   "gcc",
		Machine:    &machine,
		Injections: injections,
		Seed:       11,
		ShardSize:  5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Injected != injections {
		t.Fatalf("merged report ran %d of %d injections", rep.Injected, injections)
	}
	var total uint64
	for _, sr := range rep.Structures {
		total += sr.Total()
	}
	if total != injections {
		t.Fatalf("merged outcome counts sum to %d, want %d (lost or double-counted shards)", total, injections)
	}
	gotJSON, err := json.Marshal(stripWall(rep))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Errorf("post-kill merged report differs from single-process:\n got %s\nwant %s", gotJSON, wantJSON)
	}
	mu.Lock()
	defer mu.Unlock()
	t.Logf("worker kill churn: %d reassigned, %d retried", reassigned, retried)
	if reassigned == 0 && retried == 0 {
		t.Error("worker kill caused no shard churn; the kill did not land mid-campaign")
	}
}

// The full-size acceptance run: a 10,000-injection gcc campaign
// sharded over 4 worker replicas must merge byte-identical to the
// single-process same-seed run. Minutes of wall time, so it only runs
// when asked for explicitly:
//
//	REESE_CLUSTER_ACCEPTANCE=1 go test ./internal/cluster/ -run Acceptance -v -timeout 30m
func TestClusterAcceptance10kGcc(t *testing.T) {
	if os.Getenv("REESE_CLUSTER_ACCEPTANCE") == "" {
		t.Skip("set REESE_CLUSTER_ACCEPTANCE=1 to run the 10k-injection acceptance campaign")
	}
	machine := config.Starting().WithReese()
	const injections = 10_000
	single, err := harness.Campaign(harness.CampaignSpec{
		Workload:   "gcc",
		Machine:    machine,
		Injections: injections,
		Seed:       7,
	}, harness.Options{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("single-process: %d injections in %.1fs (%.0f inj/s)",
		single.Injected, single.WallSeconds, single.InjectionsPerSec)
	wantJSON, err := json.Marshal(stripWall(single))
	if err != nil {
		t.Fatal(err)
	}

	cfg := testClusterConfig(newWorkers(t, 4))
	rep, err := Run(context.Background(), cfg, Campaign{
		Workload:   "gcc",
		Machine:    &machine,
		Injections: injections,
		Seed:       7,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("4-worker cluster: %d injections in %.1fs (%.0f inj/s)",
		rep.Injected, rep.WallSeconds, rep.InjectionsPerSec)
	gotJSON, err := json.Marshal(stripWall(rep))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Error("4-worker 10k-injection report differs from single-process")
	}
	if rep.Table() != single.Table() {
		t.Error("4-worker 10k-injection table differs from single-process")
	}
}

// The streaming endpoint: progress frames then a result frame, as
// chunked JSONL, with the same report the blocking API returns.
func TestClusterHandlerStreamsJSONL(t *testing.T) {
	cfg := testClusterConfig(newWorkers(t, 2))
	h := Handler(cfg)
	ts := httptest.NewServer(h)
	defer ts.Close()

	machine := config.Starting().WithReese()
	body, _ := json.Marshal(Campaign{
		Workload:   "li",
		Machine:    &machine,
		Injections: 20,
		Seed:       3,
	})
	resp, err := http.Post(ts.URL, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) < 2 {
		t.Fatalf("stream carried %d frames, want progress + result", len(lines))
	}
	var progress Event
	if err := json.Unmarshal([]byte(lines[0]), &progress); err != nil {
		t.Fatalf("first frame is not an event: %v", err)
	}
	if progress.TotalTrials != 20 {
		t.Errorf("progress frame reports %d total trials, want 20", progress.TotalTrials)
	}
	var final resultFrame
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &final); err != nil {
		t.Fatalf("final frame: %v", err)
	}
	if final.Type != "result" || final.Report == nil {
		t.Fatalf("final frame %q carries no report (err %q)", final.Type, final.Err)
	}
	if final.Report.Injected != 20 {
		t.Errorf("streamed report ran %d injections, want 20", final.Report.Injected)
	}
	if final.Table == "" {
		t.Error("streamed result carries no rendered table")
	}
}

// The triage contract across the cluster: a triaged distributed
// campaign merges to the byte-identical trial log of the triaged
// single-process run, and the coordinator reattaches every shard's
// trace blobs so the merged escapes carry their artifacts whole.
func TestClusterTriagePropagates(t *testing.T) {
	machine := config.Starting().WithReese()
	structs := []fault.Struct{
		fault.StructResult, fault.StructRegFile, fault.StructFetchPC, fault.StructMemWord,
	}
	single, err := harness.Campaign(harness.CampaignSpec{
		Workload:   "li",
		Machine:    machine,
		Structures: structs,
		Injections: 40,
		Seed:       7,
		Triage:     true,
	}, harness.Options{Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	var wantJSONL bytes.Buffer
	if err := single.WriteJSONL(&wantJSONL); err != nil {
		t.Fatal(err)
	}

	cfg := testClusterConfig(newWorkers(t, 2))
	rep, err := Run(context.Background(), cfg, Campaign{
		Workload:   "li",
		Machine:    &machine,
		Structures: []string{"result", "regfile", "fetch-pc", "mem-word"},
		Injections: 40,
		Seed:       7,
		Triage:     true,
		ShardSize:  10,
	})
	if err != nil {
		t.Fatal(err)
	}
	var gotJSONL bytes.Buffer
	if err := rep.WriteJSONL(&gotJSONL); err != nil {
		t.Fatal(err)
	}
	if gotJSONL.String() != wantJSONL.String() {
		t.Error("triaged cluster JSONL differs from triaged single-process run")
	}
	if rep.Triaged != single.Triaged || rep.Diverged != single.Diverged {
		t.Errorf("cluster triage totals (%d, %d) differ from single-process (%d, %d)",
			rep.Triaged, rep.Diverged, single.Triaged, single.Diverged)
	}
	triaged := 0
	for i := range rep.Trials {
		tr := &rep.Trials[i]
		if tr.Triage == nil {
			continue
		}
		triaged++
		if len(tr.Triage.Trace) == 0 {
			t.Errorf("trial %d: merged triage record lost its trace blob", tr.Index)
		} else if !bytes.Contains(tr.Triage.Trace, []byte(`"FAULT`)) {
			t.Errorf("trial %d: reattached trace has no injection marker", tr.Index)
		}
	}
	if triaged == 0 {
		t.Fatal("cluster campaign triaged nothing; the test exercised nothing")
	}
}
