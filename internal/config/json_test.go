package config

import (
	"encoding/json"
	"reflect"
	"testing"

	"reese/internal/fu"
)

// TestMachineJSONRoundTrip locks in that a Machine survives JSON
// encode → decode unchanged, for the starting configuration and for a
// variant exercising every knob the builders can set. Any field the
// reese-serve API would silently drop (unexported, shadowed, or badly
// tagged) breaks equality here.
func TestMachineJSONRoundTrip(t *testing.T) {
	doubled := fu.Config{IntALU: 8, IntMult: 2, MemPort: 4, FPALU: 8, FPMult: 2}
	machines := []Machine{
		Starting(),
		Starting().WithReese(),
		Starting().WithRUU(64).WithWidth(16).WithMemPorts(4).WithFUs(doubled).
			WithReese().WithRSQ(64).WithRSQHighWater(48).WithSpares(2, 1).
			WithPartialReexec(4).WithRESO().WithWrongPath().
			WithPredictor(PredCombining),
		Starting().WithDupDispatch(),
		Starting().WithPredictor(PredStaticNotTaken),
	}
	for _, m := range machines {
		data, err := json.Marshal(m)
		if err != nil {
			t.Fatalf("%s: marshal: %v", m.Name, err)
		}
		var back Machine
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("%s: unmarshal: %v", m.Name, err)
		}
		if !reflect.DeepEqual(m, back) {
			t.Errorf("%s: round trip changed the machine\n got: %+v\nwant: %+v\njson: %s", m.Name, back, m, data)
		}
		if err := back.Validate(); err != nil {
			t.Errorf("%s: decoded machine fails validation: %v", m.Name, err)
		}
	}
}

// TestPredictorKindTextRoundTrip covers every kind name, including
// rejection of unknown names.
func TestPredictorKindTextRoundTrip(t *testing.T) {
	for k := PredGshare; k <= PredStaticNotTaken; k++ {
		text, err := k.MarshalText()
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		var back PredictorKind
		if err := back.UnmarshalText(text); err != nil {
			t.Fatalf("%s: %v", text, err)
		}
		if back != k {
			t.Errorf("round trip %v -> %s -> %v", k, text, back)
		}
	}
	var k PredictorKind
	if err := k.UnmarshalText([]byte("perceptron")); err == nil {
		t.Error("unknown predictor name accepted")
	}
	var m RedundancyMode
	if err := m.UnmarshalText([]byte("triple")); err == nil {
		t.Error("unknown redundancy mode accepted")
	}
}
