package chaos

// The chaos scenarios: each builds a real server on httptest, injects
// a class of failure, and asserts the self-healing contract from the
// outside — through the HTTP API and the metrics endpoint only.

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"reese/internal/server"
	"reese/internal/workload"
)

// chaosInsts keeps each simulation fast; recovery, not throughput, is
// under test.
const chaosInsts = 3_000

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// fastRetries makes backoff negligible so scenarios finish quickly.
func fastRetries(cfg server.Config) server.Config {
	cfg.Logger = quietLogger()
	cfg.RetryBackoff = 10 * time.Millisecond
	cfg.RetryBackoffMax = 100 * time.Millisecond
	return cfg
}

func startServer(t *testing.T, cfg server.Config) (*server.Server, *Client, func()) {
	t.Helper()
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	stopped := false
	stop := func() {
		if stopped {
			return
		}
		stopped = true
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown left live jobs (zombie workers?): %v", err)
		}
	}
	t.Cleanup(stop)
	return s, NewClient(ts.URL), stop
}

func mustCounter(t *testing.T, c *Client, name string) uint64 {
	t.Helper()
	n, err := c.Counter(name)
	if err != nil {
		t.Fatalf("counter %s: %v", name, err)
	}
	return n
}

// TestPanicIsolation is the acceptance scenario: a job whose attempt
// panics fails cleanly — with the cause and stack on the record — and
// the same server then runs a normal job to completion. The process
// never dies with it.
func TestPanicIsolation(t *testing.T) {
	var panicNext atomic.Bool
	panicNext.Store(true)
	_, c, _ := startServer(t, fastRetries(server.Config{
		Workers:    1,
		MaxRetries: -1, // no retries: the contained panic must surface as the job's failure
		BeforeAttempt: func(ctx context.Context, jobID, kind string, attempt int) {
			if panicNext.Load() {
				panic("chaos: boom")
			}
		},
	}))

	bad, err := c.Submit("run", server.RunRequest{Workload: "li", Insts: chaosInsts}, "wait=60s")
	if err != nil {
		t.Fatal(err)
	}
	if bad.State != server.StateFailed {
		t.Fatalf("panicking job state %q, want failed (err: %s)", bad.State, bad.Error)
	}
	if !strings.Contains(bad.Error, "panic: chaos: boom") {
		t.Errorf("failure cause %q does not carry the panic value", bad.Error)
	}
	if len(bad.Attempts) != 1 || !strings.Contains(bad.Attempts[0].Stack, "chaos") {
		t.Error("attempt record is missing the recovered stack")
	}

	panicNext.Store(false)
	good, err := c.Submit("run", server.RunRequest{Workload: "li", Insts: chaosInsts + 1}, "wait=60s")
	if err != nil {
		t.Fatal(err)
	}
	if good.State != server.StateDone {
		t.Fatalf("job after a contained panic finished %q: %s — the worker did not survive", good.State, good.Error)
	}
	if n := mustCounter(t, c, "reese_serve_jobs_panicked_total"); n != 1 {
		t.Errorf("jobs_panicked_total = %d, want 1", n)
	}
}

// TestPanicRetrySucceeds: with retry budget, first-attempt panics are
// transparent — the job still completes, and the attempt history shows
// the contained crash.
func TestPanicRetrySucceeds(t *testing.T) {
	inj := NewInjector(42, 1.0, 0, true) // panic every first attempt
	_, c, _ := startServer(t, fastRetries(server.Config{
		Workers:       2,
		MaxRetries:    2,
		BeforeAttempt: inj.Hook,
	}))

	const n = 4
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		v, err := c.Submit("run", server.RunRequest{Workload: "gcc", Insts: chaosInsts + uint64(i)}, "")
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = v.ID
	}
	for _, id := range ids {
		v, err := c.AwaitTerminal(id, time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		if v.State != server.StateDone {
			t.Errorf("job %s finished %q after panic+retry: %s", id, v.State, v.Error)
		}
		if v.Attempt != 2 {
			t.Errorf("job %s took %d attempts, want 2 (panic, then success)", id, v.Attempt)
		}
		if v.LastCause == "" || !strings.Contains(v.LastCause, "panic") {
			t.Errorf("job %s last cause %q, want the contained panic", id, v.LastCause)
		}
	}
	if got := mustCounter(t, c, "reese_serve_jobs_panicked_total"); got != uint64(inj.Panics()) || got != n {
		t.Errorf("jobs_panicked_total = %d, injector threw %d, want %d", got, inj.Panics(), n)
	}
	if got := mustCounter(t, c, "reese_serve_jobs_retried_total"); got != n {
		t.Errorf("jobs_retried_total = %d, want %d", got, n)
	}
}

// TestWatchdogKillsStalledAttempt: a hung attempt (no progress) is
// killed by the watchdog and retried to success.
func TestWatchdogKillsStalledAttempt(t *testing.T) {
	inj := NewInjector(7, 0, 1.0, true) // stall every first attempt
	_, c, _ := startServer(t, fastRetries(server.Config{
		Workers:          1,
		MaxRetries:       1,
		WatchdogInterval: 20 * time.Millisecond,
		WatchdogStall:    200 * time.Millisecond,
		BeforeAttempt:    inj.Hook,
	}))

	v, err := c.Submit("run", server.RunRequest{Workload: "ijpeg", Insts: chaosInsts}, "wait=60s")
	if err != nil {
		t.Fatal(err)
	}
	if v.State != server.StateDone {
		t.Fatalf("stalled job finished %q: %s", v.State, v.Error)
	}
	if v.Attempt != 2 {
		t.Errorf("stalled job took %d attempts, want 2", v.Attempt)
	}
	if !strings.Contains(v.LastCause, "watchdog") {
		t.Errorf("last cause %q, want a watchdog kill", v.LastCause)
	}
	if got := mustCounter(t, c, "reese_serve_watchdog_kills_total"); got != 1 {
		t.Errorf("watchdog_kills_total = %d, want 1", got)
	}
	// The killed attempt must be visible in the job's span tree exactly
	// as it happened: attempt 1 closed with the watchdog outcome, a
	// backoff span between the attempts, and attempt 2 closed ok.
	if v.Spans == nil {
		t.Fatal("watchdog-killed job carries no span tree")
	}
	if a1 := v.Spans.Find("attempt 1"); a1 == nil || a1.End == nil || a1.Outcome != "watchdog" {
		t.Errorf("attempt 1 span missing/open/mislabeled: %+v", a1)
	}
	if b := v.Spans.Find("backoff 1"); b == nil || b.End == nil {
		t.Errorf("backoff span missing or open: %+v", b)
	}
	if a2 := v.Spans.Find("attempt 2"); a2 == nil || a2.Outcome != "ok" {
		t.Errorf("attempt 2 span missing or mislabeled: %+v", a2)
	}
}

// TestClientDisconnectMidRun: a waiting submitter that vanishes takes
// its job down with it — terminal canceled, worker freed.
func TestClientDisconnectMidRun(t *testing.T) {
	_, c, _ := startServer(t, fastRetries(server.Config{Workers: 1}))

	spec, _ := workload.ByName("go")
	body, _ := json.Marshal(server.RunRequest{
		Workload: "go", Insts: 40_000_000, Iters: spec.DefaultIters * 400,
	})
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.Base+"/v1/run?wait=120s", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	done := make(chan struct{})
	go func() {
		defer close(done)
		if resp, derr := http.DefaultClient.Do(req); derr == nil {
			resp.Body.Close()
		}
	}()

	// Wait until the job is actually simulating, then vanish.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n, _ := c.Counter("reese_serve_jobs_running"); n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started running")
		}
		time.Sleep(10 * time.Millisecond)
	}
	cancel()
	<-done

	jobs, err := c.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 {
		t.Fatalf("have %d jobs, want 1", len(jobs))
	}
	v, err := c.AwaitTerminal(jobs[0].ID, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if v.State != server.StateCanceled {
		t.Errorf("abandoned job state %q, want canceled", v.State)
	}
}

// TestChaosSweepAllTerminal is the soak: many jobs under probabilistic
// panics and stalls on every attempt. The invariant is not that all
// succeed — retry budgets can exhaust — but that every accepted job
// reaches a terminal state, successes carry cache-verified results,
// failures carry causes, and the metrics reconcile with what the
// injector actually threw.
func TestChaosSweepAllTerminal(t *testing.T) {
	inj := NewInjector(1234, 0.35, 0.15, false)
	_, c, _ := startServer(t, fastRetries(server.Config{
		Workers:          2,
		MaxRetries:       4,
		WatchdogInterval: 20 * time.Millisecond,
		WatchdogStall:    200 * time.Millisecond,
		BeforeAttempt:    inj.Hook,
	}))

	const n = 10
	reqs := make([]server.RunRequest, n)
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		reqs[i] = server.RunRequest{Workload: "perl", Insts: chaosInsts + uint64(i)}
		v, err := c.Submit("run", reqs[i], "")
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = v.ID
	}

	states := map[server.JobState]int{}
	for i, id := range ids {
		v, err := c.AwaitTerminal(id, 2*time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		states[v.State]++
		switch v.State {
		case server.StateDone:
			if len(v.Result) == 0 {
				t.Errorf("done job %s has no result", id)
			}
			// Cache-verify: an identical resubmission must be served from
			// the cache with byte-identical payload — the result survived
			// the chaos uncorrupted.
			again, err := c.Submit("run", reqs[i], "wait=60s")
			if err != nil {
				t.Fatal(err)
			}
			if !again.Cached || string(again.Result) != string(v.Result) {
				t.Errorf("job %s result not cache-verified (cached=%v)", id, again.Cached)
			}
		case server.StateFailed:
			if v.LastCause == "" || !strings.Contains(v.Error, "retries exhausted") {
				t.Errorf("failed job %s: error %q cause %q — failures must be explained", id, v.Error, v.LastCause)
			}
			if v.Attempt != 5 {
				t.Errorf("failed job %s used %d attempts, want the full budget of 5", id, v.Attempt)
			}
		default:
			t.Errorf("job %s in non-terminal state %q after await", id, v.State)
		}
	}
	t.Logf("sweep: %d done, %d failed; injector threw %d panics, %d stalls",
		states[server.StateDone], states[server.StateFailed], inj.Panics(), inj.Stalls())
	if states[server.StateDone] == 0 {
		t.Error("chaos sweep completed no jobs at all")
	}

	if got := mustCounter(t, c, "reese_serve_jobs_panicked_total"); got != uint64(inj.Panics()) {
		t.Errorf("jobs_panicked_total = %d, injector threw %d", got, inj.Panics())
	}
	if got := mustCounter(t, c, "reese_serve_watchdog_kills_total"); got != uint64(inj.Stalls()) {
		t.Errorf("watchdog_kills_total = %d, injector stalled %d", got, inj.Stalls())
	}
	retried := mustCounter(t, c, "reese_serve_jobs_retried_total")
	transient := uint64(inj.Panics() + inj.Stalls())
	if retried > transient {
		t.Errorf("jobs_retried_total = %d exceeds transient failures %d", retried, transient)
	}
	if transient > 0 && retried == 0 {
		t.Error("transient failures occurred but nothing was retried")
	}
}

// TestKillRestartCycles: repeated hard kills with work in flight. Every
// generation replays the journal, and the final (calm) generation
// completes every job ever accepted — none lost, none duplicated, the
// journal never corrupts.
func TestKillRestartCycles(t *testing.T) {
	journalPath := filepath.Join(t.TempDir(), "jobs.wal")
	var block atomic.Bool
	block.Store(true)
	cfg := fastRetries(server.Config{
		Workers:     1,
		JournalPath: journalPath,
		BeforeAttempt: func(ctx context.Context, jobID, kind string, attempt int) {
			if block.Load() {
				<-ctx.Done()
			}
		},
	})

	// Generation 0: accept 4 jobs, all wedged, then die.
	s0, c0, _ := startServer(t, cfg)
	const n = 4
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		v, err := c0.Submit("run", server.RunRequest{Workload: "vortex", Insts: chaosInsts + uint64(i)}, "")
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = v.ID
	}
	awaitRunning(t, c0, 1)
	s0.Crash()

	// Generation 1: replays all 4, wedges again, dies again.
	s1, c1, _ := startServer(t, cfg)
	if got := mustCounter(t, c1, "reese_serve_journal_replayed_jobs_total"); got != n {
		t.Fatalf("gen 1 replayed %d jobs, want %d", got, n)
	}
	awaitRunning(t, c1, 1)
	s1.Crash()

	// Generation 2: calm. Everything accepted in generation 0 must now
	// finish.
	block.Store(false)
	_, c2, stop2 := startServer(t, cfg)
	if got := mustCounter(t, c2, "reese_serve_journal_replayed_jobs_total"); got != n {
		t.Fatalf("gen 2 replayed %d jobs, want %d", got, n)
	}
	for _, id := range ids {
		v, err := c2.AwaitTerminal(id, 2*time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		if v.State != server.StateDone {
			t.Errorf("job %s finished %q after two crashes: %s", id, v.State, v.Error)
		}
		if !v.Replayed {
			t.Errorf("job %s not marked replayed", id)
		}
	}
	jobs, err := c2.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != n {
		t.Errorf("generation 2 has %d jobs, want exactly the %d accepted (lost or duplicated work)", len(jobs), n)
	}

	// Clean shutdown compacts; a fourth generation starts with an empty
	// journal and no ghost jobs.
	stop2()
	_, c3, _ := startServer(t, cfg)
	jobs, err = c3.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 0 {
		t.Errorf("after clean shutdown + compaction, generation 3 sees %d jobs, want 0", len(jobs))
	}
}

// awaitRunning polls the running gauge until it reaches want.
func awaitRunning(t *testing.T, c *Client, want uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n, _ := c.Counter("reese_serve_jobs_running"); n == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("jobs never started running")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
