package fu

// CloneInto deep-copies the pool into dst (allocating when dst is nil),
// reusing dst's occupancy slices when their capacity allows.
func (p *Pool) CloneInto(dst *Pool) *Pool {
	if dst == nil {
		dst = &Pool{}
	}
	var prev [numKinds][]uint64
	for k := range dst.busyUntil {
		prev[k] = dst.busyUntil[k]
	}
	*dst = *p
	for k := range p.busyUntil {
		dst.busyUntil[k] = append(prev[k][:0], p.busyUntil[k]...)
	}
	return dst
}

// StateEqualAt reports whether two pools schedule identically from their
// respective current cycles onward. Occupancy is absolute-time state, so
// each deadline is normalized to a remaining-busy count relative to the
// pool's own "now" (anything at or before now is simply free).
func (p *Pool) StateEqualAt(o *Pool, nowP, nowO uint64) bool {
	if p.cfg != o.cfg {
		return false
	}
	for k := range p.busyUntil {
		a, b := p.busyUntil[k], o.busyUntil[k]
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			var ra, rb uint64
			if a[i] > nowP {
				ra = a[i] - nowP
			}
			if b[i] > nowO {
				rb = b[i] - nowO
			}
			if ra != rb {
				return false
			}
		}
	}
	return true
}

// ExtrapolateStats advances the pool counters as if the machine
// repeated its last cycle n more times: prev is the counter snapshot
// one cycle ago. Used by the hang fast-forward.
func (p *Pool) ExtrapolateStats(prev Stats, n uint64) {
	for k := range p.stats.Acquired {
		p.stats.Acquired[k] += (p.stats.Acquired[k] - prev.Acquired[k]) * n
		p.stats.BusyCycles[k] += (p.stats.BusyCycles[k] - prev.BusyCycles[k]) * n
		p.stats.Denied[k] += (p.stats.Denied[k] - prev.Denied[k]) * n
	}
}
