package harness

import (
	"fmt"
	"strings"

	"reese/internal/config"
	"reese/internal/fault"
)

// Claim is one checkable statement from the paper's §6.1/§7 analysis.
type Claim struct {
	ID        string
	Statement string
	Paper     string
	Measured  string
	Pass      bool
}

// CheckClaims evaluates the paper's headline claims against fresh
// simulations and reports each as pass/fail. This is the runnable
// version of the TestPaperClaim* suite, for the command line.
func CheckClaims(opt Options) ([]Claim, error) {
	opt = opt.normalize()
	var claims []Claim

	fig2, err := Figure2(opt)
	if err != nil {
		return nil, err
	}
	gap := fig2.GapPercent("Baseline", "REESE")
	claims = append(claims, Claim{
		ID:        "gap-band",
		Statement: "REESE average IPC is 11-16% below baseline without spares (starting config)",
		Paper:     "11-16%",
		Measured:  fmt.Sprintf("%.1f%%", gap),
		Pass:      gap >= 8 && gap <= 25,
	})

	gap2 := fig2.GapPercent("Baseline", "R+2ALU")
	claims = append(claims, Claim{
		ID:        "spares-help",
		Statement: "Two spare integer ALUs shrink the gap",
		Paper:     "14.0% -> 8.0% (average over configs)",
		Measured:  fmt.Sprintf("%.1f%% -> %.1f%%", gap, gap2),
		Pass:      gap2 < gap,
	})

	multGain := (fig2.Average("R+2ALU+1Mult") - fig2.Average("R+2ALU")) / fig2.Average("R+2ALU") * 100
	ijpegGain := fig2.IPC["ijpeg"]["R+2ALU+1Mult"] - fig2.IPC["ijpeg"]["R+2ALU"]
	claims = append(claims, Claim{
		ID:        "mult-minor",
		Statement: "A spare multiplier/divider has little average effect (it helps only the mul/div-heavy benchmark)",
		Paper:     "\"little effect on average IPC values\"",
		Measured:  fmt.Sprintf("average %+.1f%%, ijpeg %+.3f IPC", multGain, ijpegGain),
		Pass:      multGain < 5 && ijpegGain > 0,
	})

	fig4, err := Figure4(opt)
	if err != nil {
		return nil, err
	}
	fig5, err := Figure5(opt)
	if err != nil {
		return nil, err
	}
	g4 := fig4.GapPercent("Baseline", "REESE")
	g5 := fig5.GapPercent("Baseline", "REESE")
	claims = append(claims, Claim{
		ID:        "ports-help",
		Statement: "Added memory ports significantly improve REESE",
		Paper:     "\"significantly improved the performance of REESE\"",
		Measured:  fmt.Sprintf("gap %.1f%% (2 ports) -> %.1f%% (4 ports)", g4, g5),
		Pass:      g5 < g4,
	})

	points, err := Figure7(opt)
	if err != nil {
		return nil, err
	}
	byLabel := map[string]Figure7Point{}
	for _, p := range points {
		byLabel[p.Label] = p
	}
	p256 := byLabel["RUU=256"]
	p256f := byLabel["RUU=256+FUs"]
	claims = append(claims, Claim{
		ID:        "ruu-alone",
		Statement: "Growing only the RUU leaves a substantial gap",
		Paper:     "~15% at RUU 64/256",
		Measured:  fmt.Sprintf("%.1f%% at RUU 256", p256.GapPercent),
		Pass:      p256.GapPercent >= 8,
	})
	claims = append(claims, Claim{
		ID:        "fus-close",
		Statement: "Doubling the functional units shrinks the gap dramatically",
		Paper:     "-> ~1.5%",
		Measured:  fmt.Sprintf("%.1f%% -> %.1f%%", p256.GapPercent, p256f.GapPercent),
		Pass:      p256f.GapPercent < p256.GapPercent/2,
	})

	// Result-structure faults only: the paper's original model, where
	// REESE promises complete coverage.
	cr, err := Campaign(CampaignSpec{
		Workload:   "gcc",
		Machine:    config.Starting().WithReese(),
		Structures: []fault.Struct{fault.StructResult},
		Injections: 100,
		Seed:       0xC1A1,
	}, opt)
	if err != nil {
		return nil, err
	}
	claims = append(claims, Claim{
		ID:        "detection",
		Statement: "REESE detects injected result faults and recovers",
		Paper:     "(design goal, §4.2-4.3)",
		Measured:  fmt.Sprintf("coverage %.0f%%, mean latency %.1f cycles", cr.Coverage*100, cr.DetectionLatencyMean),
		Pass:      cr.Coverage > 0.99,
	})

	base, err := Campaign(CampaignSpec{
		Workload:   "gcc",
		Machine:    config.Starting(),
		Structures: []fault.Struct{fault.StructResult},
		Injections: 100,
		Seed:       0xC1A1,
	}, opt)
	if err != nil {
		return nil, err
	}
	silent := base.SDC + base.Masked
	claims = append(claims, Claim{
		ID:        "baseline-silent",
		Statement: "The unprotected baseline commits the same faults silently",
		Paper:     "(implied)",
		Measured:  fmt.Sprintf("%d of %d faults committed undetected (%d SDC, %d masked)", silent, base.Injected, base.SDC, base.Masked),
		Pass:      base.Detected == 0 && base.Recovered == 0 && silent+base.Hang == base.Injected,
	})

	return claims, nil
}

// ClaimsReport renders the claim checks.
func ClaimsReport(claims []Claim) string {
	var b strings.Builder
	b.WriteString("Paper-claim checks (see EXPERIMENTS.md for discussion)\n")
	b.WriteString(strings.Repeat("-", 72))
	b.WriteByte('\n')
	pass := 0
	for _, c := range claims {
		status := "FAIL"
		if c.Pass {
			status = "PASS"
			pass++
		}
		fmt.Fprintf(&b, "[%s] %s: %s\n", status, c.ID, c.Statement)
		fmt.Fprintf(&b, "       paper: %s\n", c.Paper)
		fmt.Fprintf(&b, "       measured: %s\n", c.Measured)
	}
	fmt.Fprintf(&b, "%d/%d claims reproduced\n", pass, len(claims))
	return b.String()
}

// FigureCSV renders a figure as CSV (one row per workload, one column
// per variant), for plotting.
func FigureCSV(f *FigureResult) string {
	var b strings.Builder
	b.WriteString("bench")
	for _, v := range f.Variants {
		b.WriteString(",")
		b.WriteString(v)
	}
	b.WriteByte('\n')
	rows := append([]string{}, f.Workloads...)
	for _, w := range rows {
		b.WriteString(w)
		for _, v := range f.Variants {
			fmt.Fprintf(&b, ",%.4f", f.IPC[w][v])
		}
		b.WriteByte('\n')
	}
	b.WriteString("AV")
	for _, v := range f.Variants {
		fmt.Fprintf(&b, ",%.4f", f.Average(v))
	}
	b.WriteByte('\n')
	return b.String()
}
