package mem

// Snapshot/fork support: deep copies of the timing hierarchy and the
// rank-normalized state comparison fork-based fault replay uses to
// decide that a trial machine has reconverged with the golden run.

// CloneInto deep-copies the cache into dst (allocating when dst is nil),
// rewiring the copy's next level to next. dst's line slice is reused
// when its capacity allows, so per-fork steady state allocates nothing.
func (c *Cache) CloneInto(dst *Cache, next Level) *Cache {
	if dst == nil {
		dst = &Cache{}
	}
	lines := dst.lines
	snap := dst.frec.snap
	*dst = *c
	dst.lines = append(lines[:0], c.lines...)
	dst.frec.snap = append(snap[:0], c.frec.snap...)
	dst.next = next
	return dst
}

// CloneInto deep-copies the TLB into dst (allocating when dst is nil).
func (t *TLB) CloneInto(dst *TLB) *TLB {
	if dst == nil {
		dst = &TLB{}
	}
	lines := dst.lines
	*dst = *t
	dst.lines = append(lines[:0], t.lines...)
	return dst
}

// Clone returns a copy of the main-memory model.
func (m *MainMemory) Clone() *MainMemory {
	cp := *m
	return &cp
}

// CloneInto deep-copies the whole hierarchy into dst (allocating when
// dst is nil), preserving the internal wiring (L1I/L1D share the copied
// L2, which fronts the copied main memory).
func (h *Hierarchy) CloneInto(dst *Hierarchy) *Hierarchy {
	if dst == nil {
		dst = &Hierarchy{}
	}
	dst.Mem = h.Mem.Clone()
	dst.L2 = h.L2.CloneInto(dst.L2, dst.Mem)
	dst.L1I = h.L1I.CloneInto(dst.L1I, dst.L2)
	dst.L1D = h.L1D.CloneInto(dst.L1D, dst.L2)
	dst.ITLB = h.ITLB.CloneInto(dst.ITLB)
	dst.DTLB = h.DTLB.CloneInto(dst.DTLB)
	return dst
}

// linesEqualRanked compares two line arrays of the same geometry for
// future-equivalent state: tags, valid and dirty bits must match
// exactly, while recency is compared by per-set rank order rather than
// raw lru clock values. Two machines whose accesses touched a set in
// the same relative order — but at different absolute clocks, e.g.
// because one replayed a few instructions after a fault recovery — hit,
// miss, and evict identically from here on, which is all forked-trial
// convergence needs.
func linesEqualRanked(a, b []line, assoc uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for j := range a {
		if a[j].valid != b[j].valid {
			return false
		}
		if a[j].valid && (a[j].tag != b[j].tag || a[j].dirty != b[j].dirty) {
			return false
		}
	}
	n := uint32(len(a))
	for base := uint32(0); base < n; base += assoc {
		for i := uint32(0); i < assoc; i++ {
			j := base + i
			if !a[j].valid {
				continue
			}
			var ra, rb int
			for k := uint32(0); k < assoc; k++ {
				jk := base + k
				if a[jk].valid && a[jk].lru < a[j].lru {
					ra++
				}
				if b[jk].valid && b[jk].lru < b[j].lru {
					rb++
				}
			}
			if ra != rb {
				return false
			}
		}
	}
	return true
}

// StateEqualRanked reports whether two same-configured caches behave
// identically from here on (statistics counters are deliberately not
// part of the comparison — they record the past, not the future).
func (c *Cache) StateEqualRanked(o *Cache) bool {
	if c.cfg != o.cfg {
		return false
	}
	if !faultRecEqual(c.frec, o.frec) {
		return false
	}
	return linesEqualRanked(c.lines, o.lines, c.cfg.Assoc)
}

// faultRecEqual compares injection residue. A cache carrying an armed
// (or pending) record can still mutate the architectural plane at a
// future eviction, so it is never future-equivalent to a clean golden
// cache — this is what keeps forked-trial splicing from landing before
// a memory fault has settled.
func faultRecEqual(a, b faultRec) bool {
	if a.kind != b.kind || a.pending != b.pending {
		return false
	}
	if a.kind == frNone {
		return true
	}
	if a.idx != b.idx || a.set != b.set || a.origTag != b.origTag ||
		a.waddr != b.waddr || a.wmask != b.wmask || a.wflip != b.wflip ||
		len(a.snap) != len(b.snap) {
		return false
	}
	for i := range a.snap {
		if a.snap[i] != b.snap[i] {
			return false
		}
	}
	return true
}

// StateEqualRanked reports whether two same-configured TLBs behave
// identically from here on.
func (t *TLB) StateEqualRanked(o *TLB) bool {
	if t.cfg != o.cfg {
		return false
	}
	return linesEqualRanked(t.lines, o.lines, t.cfg.Assoc)
}

// StateEqualRanked compares every level of two hierarchies.
func (h *Hierarchy) StateEqualRanked(o *Hierarchy) bool {
	return h.L1I.StateEqualRanked(o.L1I) &&
		h.L1D.StateEqualRanked(o.L1D) &&
		h.L2.StateEqualRanked(o.L2) &&
		h.ITLB.StateEqualRanked(o.ITLB) &&
		h.DTLB.StateEqualRanked(o.DTLB)
}

// ExtrapolateStats advances the cache counters as if the machine
// repeated its last cycle n more times: prev is the counter snapshot
// one cycle ago. Used by the hang fast-forward.
func (c *Cache) ExtrapolateStats(prev CacheStats, n uint64) {
	c.stats.Accesses += (c.stats.Accesses - prev.Accesses) * n
	c.stats.Hits += (c.stats.Hits - prev.Hits) * n
	c.stats.Misses += (c.stats.Misses - prev.Misses) * n
	c.stats.Writebacks += (c.stats.Writebacks - prev.Writebacks) * n
}
